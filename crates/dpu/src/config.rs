//! DPU configuration: the baseline microarchitecture of Table I plus every
//! extension knob used by the paper's case studies.

use pim_cache::CacheConfig;
use pim_dram::DramConfig;
use pim_isa::MemLayout;
use pim_mmu::MmuConfig;

/// Maximum hardware tasklets per DPU.
pub const MAX_TASKLETS: u32 = 24;

/// ILP-enhancing microarchitecture features (paper §V-B, Fig 12).
///
/// The features are *additive* in the paper's ablation:
/// `Base → +D → +D+R → +D+R+S → +D+R+S+F`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IlpFeatures {
    /// **D** — data forwarding: replaces the revolver gap with true
    /// dependence checking. Independent same-tasklet instructions may
    /// dispatch back-to-back; dependent ones wait for the producer's
    /// forwarding point.
    pub data_forwarding: bool,
    /// **R** — unified register file with doubled read bandwidth: removes
    /// the even/odd structural hazard.
    pub unified_rf: bool,
    /// **S** — 2-way superscalar in-order issue (from distinct tasklets).
    pub superscalar: bool,
    /// **F** — doubles the core frequency to 700 MHz.
    pub double_frequency: bool,
}

impl IlpFeatures {
    /// All features enabled (`D+R+S+F`).
    #[must_use]
    pub fn all() -> Self {
        IlpFeatures {
            data_forwarding: true,
            unified_rf: true,
            superscalar: true,
            double_frequency: true,
        }
    }

    /// A short label such as `"Base+DRS"` for reports.
    #[must_use]
    pub fn label(&self) -> String {
        let mut s = String::from("Base");
        let tags = [
            (self.data_forwarding, 'D'),
            (self.unified_rf, 'R'),
            (self.superscalar, 'S'),
            (self.double_frequency, 'F'),
        ];
        if tags.iter().any(|(on, _)| *on) {
            s.push('+');
            for (on, c) in tags {
                if on {
                    s.push(c);
                }
            }
        }
        s
    }
}

/// SIMT vector-processing extension (paper §V-A, Fig 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimtConfig {
    /// Vector width: tasklets grouped per warp (paper: 16).
    pub warp_width: u32,
    /// Enable the memory address coalescer (`+AC`), merging the grouped
    /// scalar accesses that fall in the same burst/stream into fewer memory
    /// transactions.
    pub coalescing: bool,
    /// Scratchpad bank groups available to the vector unit: with the
    /// coalescer, a warp's loads/stores to `k` distinct 64 B segments
    /// occupy `ceil(k / wram_ports)` port slots (a vector design point
    /// provisions banked WRAM bandwidth); without it every lane's access
    /// serializes individually.
    pub wram_ports: u32,
}

impl Default for SimtConfig {
    fn default() -> Self {
        SimtConfig { warp_width: 16, coalescing: false, wram_ports: 4 }
    }
}

/// How loads/stores are backed (paper §V-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoryMode {
    /// The baseline **scratchpad-centric** model: loads/stores address the
    /// 64 KB WRAM; MRAM is reached only through DMA.
    Scratchpad,
    /// The **cache-centric** model: loads/stores address a flat,
    /// DRAM-backed space through an on-demand data cache; instruction
    /// fetch goes through an instruction cache; DMA instructions are
    /// rejected (programs are authored for the flat space).
    Cached {
        /// Instruction-cache geometry (paper: 24 KB, 8-way).
        icache: CacheConfig,
        /// Data-cache geometry (paper: 64 KB, 8-way).
        dcache: CacheConfig,
    },
}

/// DMA-engine parameters.
///
/// The engine interface — not the DRAM bank — is what limits MRAM-to-WRAM
/// bandwidth to the 600–700 MB/s the paper measures (§V-B notes bank-level
/// bandwidth is much higher; the interface is "simply a design point pursued
/// by UPMEM-PIM architects").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DmaConfig {
    /// Peak interface throughput in bytes per core cycle. The default of
    /// 2.0 B/cycle at 350 MHz equals the 700 MB/s theoretical maximum; bank
    /// timing overheads bring the achieved rate to the ≈600 MB/s that prior
    /// work measured on real hardware (Fig 5 caption).
    pub interface_bytes_per_cycle: f64,
    /// Fixed per-request engine setup latency in core cycles. Makes small
    /// DMA transfers proportionally expensive, as on the real device.
    pub setup_cycles: u32,
}

impl Default for DmaConfig {
    fn default() -> Self {
        DmaConfig { interface_bytes_per_cycle: 2.0, setup_cycles: 24 }
    }
}

/// Which scalar executor runs a launch. All tiers produce byte-identical
/// simulated statistics by construction — the tier is purely a
/// simulator-speed switch, pinned by the differential suites and the
/// pim-fuzz gauntlet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecTier {
    /// The reference per-cycle loop: re-derives every scheduling fact from
    /// the [`pim_isa::Instruction`] enum each cycle, advances the memory
    /// engine every iteration. Slow; exists so the other tiers have a
    /// simple executor to be differentially tested against.
    Naive,
    /// The pre-decoded loop (PR 4): launch-time [`pim_isa::DecodedProgram`]
    /// side tables, event-driven tasklet wakeup, allocation-free steady
    /// state.
    Fast,
    /// The block-compiled loop (the default): the program is split into
    /// basic blocks and lowered once per load into a flat table of
    /// monomorphic op functions with pre-extracted operands, so the
    /// steady-state loop dispatches with one indexed load and one indirect
    /// call — no `Instruction` match, no per-launch re-decode.
    Compiled,
}

/// Full configuration of one simulated DPU (paper Table I defaults).
#[derive(Debug, Clone, PartialEq)]
pub struct DpuConfig {
    /// Core frequency in MHz (Table I: 350).
    pub freq_mhz: u32,
    /// Pipeline depth in stages (Table I: 14).
    pub pipeline_depth: u32,
    /// Revolver scheduling constraint: minimum cycles between consecutive
    /// dispatches of the same tasklet (Table I: 11).
    pub revolver_cycles: u32,
    /// Number of tasklets launched.
    pub n_tasklets: u32,
    /// Memory capacities (Table I: 24 KB / 64 KB / 64 MB, 256 atomic bits).
    pub layout: MemLayout,
    /// ILP feature set (all off for the baseline).
    pub ilp: IlpFeatures,
    /// Cycles after issue at which an ALU result can be forwarded
    /// (effective only with `ilp.data_forwarding`).
    pub forward_alu_latency: u32,
    /// Cycles after issue at which a WRAM load result can be forwarded.
    pub forward_load_latency: u32,
    /// SIMT extension; `None` for the baseline scalar pipeline.
    pub simt: Option<SimtConfig>,
    /// Scratchpad-centric (baseline) or cache-centric memory model.
    pub memory_mode: MemoryMode,
    /// MMU in front of MRAM (DMA) accesses; `None` for the MMU-less
    /// baseline.
    pub mmu: Option<MmuConfig>,
    /// DRAM bank configuration.
    pub dram: DramConfig,
    /// DMA engine configuration.
    pub dma: DmaConfig,
    /// MRAM-bandwidth scaling factor (Fig 13's ×1–×4, Fig 11's 4×/16×):
    /// multiplies both the DRAM frequency and the DMA interface rate.
    pub mram_bw_scale: f64,
    /// Abort the simulation after this many core cycles (guards against
    /// deadlocked kernels).
    pub max_cycles: u64,
    /// Window (in cycles) for the TLP-over-time trace (paper Fig 8: 10,000).
    pub tlp_window: u64,
    /// Collect the first N issued instructions into
    /// [`crate::DpuRunStats::trace`] for debugging (0 disables tracing).
    pub trace_limit: usize,
    /// Capacity of the structured event ring buffer (`pim-trace`): the DPU
    /// retains the most recent N [`pim_trace::TraceEvent`]s of a launch,
    /// readable through [`crate::Dpu::take_trace`]. 0 (the default) keeps
    /// the hot path on the zero-cost `NullSink`.
    pub event_trace_capacity: usize,
    /// Replay every launch through the `pim-ref` functional oracle and
    /// fail with [`crate::SimError::OracleDivergence`] if the final
    /// WRAM/MRAM state differs (differential testing; scratchpad-centric
    /// runs only — the oracle does not model the flat cached space).
    pub oracle_check: bool,
    /// Force the naive per-cycle scheduling loop: no pre-decoded side
    /// tables, no event-driven wakeup caching, and the memory engine is
    /// advanced every iteration. Timing-identical to the optimized loop by
    /// construction — exists only so differential tests can pin that
    /// equivalence. Slow; never enable outside tests. Kept alongside
    /// [`DpuConfig::exec_tier`] for compatibility: when set it overrides
    /// the tier to [`ExecTier::Naive`] (see
    /// [`DpuConfig::effective_exec_tier`]).
    pub naive_loop: bool,
    /// Which scalar executor runs launches (see [`ExecTier`]). Defaults to
    /// [`ExecTier::Compiled`]; simulated counts are byte-identical across
    /// tiers.
    pub exec_tier: ExecTier,
    /// Maximum DPUs per batch of the rank-scale SoA batch executor
    /// (`pim_dpu::batch`). 0 (the default) keeps every launch on the
    /// per-DPU path; a positive value makes host-side set launches
    /// (`PimSystem::launch_all`) route through
    /// `PimSystem::launch_all_batched` with this batch size. Purely a
    /// simulator-implementation switch, like [`DpuConfig::naive_loop`]:
    /// simulated timing and statistics are byte-identical either way.
    pub batch_dpus: u32,
}

impl DpuConfig {
    /// The paper's baseline UPMEM-PIM configuration (Table I) with
    /// `n_tasklets` tasklets.
    #[must_use]
    pub fn paper_baseline(n_tasklets: u32) -> Self {
        assert!(
            (1..=MAX_TASKLETS).contains(&n_tasklets),
            "n_tasklets must be in 1..={MAX_TASKLETS}"
        );
        DpuConfig {
            freq_mhz: 350,
            pipeline_depth: 14,
            revolver_cycles: 11,
            n_tasklets,
            layout: MemLayout::default(),
            ilp: IlpFeatures::default(),
            forward_alu_latency: 3,
            forward_load_latency: 4,
            simt: None,
            memory_mode: MemoryMode::Scratchpad,
            mmu: None,
            dram: DramConfig::ddr4_2400(),
            dma: DmaConfig::default(),
            mram_bw_scale: 1.0,
            max_cycles: 20_000_000_000,
            tlp_window: 10_000,
            trace_limit: 0,
            event_trace_capacity: 0,
            oracle_check: false,
            naive_loop: false,
            exec_tier: ExecTier::Compiled,
            batch_dpus: 0,
        }
    }

    /// Forces the naive per-cycle scheduling loop (differential testing of
    /// the hot-path optimizations; see [`DpuConfig::naive_loop`]).
    #[must_use]
    pub fn with_naive_loop(mut self) -> Self {
        self.naive_loop = true;
        self
    }

    /// Selects the scalar executor tier (see [`ExecTier`]). Keeps the
    /// legacy [`DpuConfig::naive_loop`] flag consistent so code reading
    /// either field observes the same choice.
    #[must_use]
    pub fn with_exec_tier(mut self, tier: ExecTier) -> Self {
        self.exec_tier = tier;
        self.naive_loop = tier == ExecTier::Naive;
        self
    }

    /// The tier a launch actually runs under: [`DpuConfig::naive_loop`]
    /// (the older switch) overrides [`DpuConfig::exec_tier`] to
    /// [`ExecTier::Naive`].
    #[must_use]
    pub fn effective_exec_tier(&self) -> ExecTier {
        if self.naive_loop {
            ExecTier::Naive
        } else {
            self.exec_tier
        }
    }

    /// Routes host-side set launches through the SoA batch executor with
    /// batches of at most `batch_dpus` DPUs (see [`DpuConfig::batch_dpus`]).
    ///
    /// # Panics
    ///
    /// Panics if `batch_dpus` is zero (use the default configuration for
    /// the per-DPU path).
    #[must_use]
    pub fn with_batched(mut self, batch_dpus: u32) -> Self {
        assert!(batch_dpus > 0, "batch size must be at least 1 DPU");
        self.batch_dpus = batch_dpus;
        self
    }

    /// Enables structured event tracing with a ring of `capacity` events.
    #[must_use]
    pub fn with_event_trace(mut self, capacity: usize) -> Self {
        self.event_trace_capacity = capacity;
        self
    }

    /// Enables the per-launch functional-oracle divergence check.
    #[must_use]
    pub fn with_oracle_check(mut self) -> Self {
        self.oracle_check = true;
        self
    }

    /// Applies an ILP feature set, including the frequency doubling of `F`.
    #[must_use]
    pub fn with_ilp(mut self, ilp: IlpFeatures) -> Self {
        self.ilp = ilp;
        self.freq_mhz = if ilp.double_frequency { 700 } else { 350 };
        self
    }

    /// Enables the SIMT vector front-end.
    #[must_use]
    pub fn with_simt(mut self, simt: SimtConfig) -> Self {
        self.simt = Some(simt);
        self
    }

    /// Switches to the cache-centric memory model with the paper's §V-D
    /// cache geometries.
    #[must_use]
    pub fn with_paper_caches(mut self) -> Self {
        self.memory_mode = MemoryMode::Cached {
            icache: CacheConfig::paper_icache(),
            dcache: CacheConfig::paper_dcache(),
        };
        self
    }

    /// Adds the paper's §V-C MMU in front of MRAM accesses.
    #[must_use]
    pub fn with_paper_mmu(mut self) -> Self {
        self.mmu = Some(MmuConfig::paper());
        self
    }

    /// Scales MRAM bandwidth by `factor` (DRAM frequency and DMA interface
    /// together), the knob of Fig 11's `+4x/16x` and Fig 13's `×1–×4`.
    #[must_use]
    pub fn with_mram_bw_scale(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "bandwidth scale must be positive");
        self.mram_bw_scale = factor;
        self
    }

    /// Issue width of the pipeline (2 with the `S` feature, 1 otherwise).
    #[must_use]
    pub fn issue_ways(&self) -> u32 {
        if self.ilp.superscalar {
            2
        } else {
            1
        }
    }

    /// Peak scalar-instruction throughput per cycle: the normalization
    /// denominator of the paper's compute-utilization plots (Fig 5: 1 for
    /// the baseline; Fig 11: 16 for SIMT designs).
    #[must_use]
    pub fn max_ipc(&self) -> u32 {
        if let Some(simt) = &self.simt {
            simt.warp_width
        } else {
            self.issue_ways()
        }
    }

    /// DRAM-clock cycles per core cycle after bandwidth scaling.
    #[must_use]
    pub fn dram_per_core_ratio(&self) -> f64 {
        (self.dram.freq_mhz * self.mram_bw_scale) / f64::from(self.freq_mhz)
    }

    /// Effective DMA interface rate in bytes per core cycle after bandwidth
    /// scaling.
    #[must_use]
    pub fn interface_rate(&self) -> f64 {
        self.dma.interface_bytes_per_cycle * self.mram_bw_scale
    }

    /// Validates internal consistency (e.g. SIMT requires the scratchpad
    /// memory model, tasklet count within hardware limits).
    ///
    /// # Panics
    ///
    /// Panics on inconsistent combinations; construction helpers keep the
    /// configuration valid, so this only fires on hand-rolled configs.
    pub fn assert_valid(&self) {
        assert!(
            (1..=MAX_TASKLETS).contains(&self.n_tasklets),
            "n_tasklets must be in 1..={MAX_TASKLETS}"
        );
        if let Some(simt) = self.simt {
            assert!(
                matches!(self.memory_mode, MemoryMode::Scratchpad),
                "the SIMT case study uses the scratchpad-centric memory model"
            );
            assert!(simt.warp_width >= 1, "warp width must be at least 1");
        }
        if self.mmu.is_some() {
            assert!(
                matches!(self.memory_mode, MemoryMode::Scratchpad),
                "the MMU case study applies to the baseline DMA path"
            );
        }
        assert!(self.revolver_cycles >= 1);
        assert!(self.mram_bw_scale > 0.0);
    }
}

impl Default for DpuConfig {
    fn default() -> Self {
        Self::paper_baseline(16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table_i() {
        let c = DpuConfig::paper_baseline(16);
        assert_eq!(c.freq_mhz, 350);
        assert_eq!(c.pipeline_depth, 14);
        assert_eq!(c.revolver_cycles, 11);
        assert_eq!(c.layout.wram_bytes, 64 * 1024);
        assert_eq!(c.max_ipc(), 1);
        c.assert_valid();
    }

    #[test]
    fn ilp_labels() {
        assert_eq!(IlpFeatures::default().label(), "Base");
        assert_eq!(IlpFeatures::all().label(), "Base+DRSF");
        let d = IlpFeatures { data_forwarding: true, ..IlpFeatures::default() };
        assert_eq!(d.label(), "Base+D");
    }

    #[test]
    fn f_feature_doubles_frequency() {
        let c = DpuConfig::paper_baseline(16).with_ilp(IlpFeatures::all());
        assert_eq!(c.freq_mhz, 700);
        assert_eq!(c.issue_ways(), 2);
        // Memory becomes relatively slower: fewer DRAM cycles per core cycle.
        assert!(c.dram_per_core_ratio() < DpuConfig::paper_baseline(16).dram_per_core_ratio());
    }

    #[test]
    fn simt_max_ipc_is_warp_width() {
        let c = DpuConfig::paper_baseline(16).with_simt(SimtConfig::default());
        assert_eq!(c.max_ipc(), 16);
        c.assert_valid();
    }

    #[test]
    fn bandwidth_scaling_raises_ratio_and_interface() {
        let base = DpuConfig::paper_baseline(16);
        let fast = base.clone().with_mram_bw_scale(4.0);
        assert!((fast.dram_per_core_ratio() - 4.0 * base.dram_per_core_ratio()).abs() < 1e-9);
        assert!((fast.interface_rate() - 4.0 * base.interface_rate()).abs() < 1e-9);
    }

    #[test]
    fn default_interface_rate_is_700_mbps() {
        let c = DpuConfig::paper_baseline(16);
        // 2 B/cycle × 350 MHz = 700 MB/s.
        let mbps = c.interface_rate() * f64::from(c.freq_mhz);
        assert!((mbps - 700.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "scratchpad-centric")]
    fn simt_with_caches_is_invalid() {
        let c = DpuConfig::paper_baseline(16).with_paper_caches().with_simt(SimtConfig::default());
        c.assert_valid();
    }

    #[test]
    #[should_panic(expected = "n_tasklets")]
    fn zero_tasklets_invalid() {
        let _ = DpuConfig::paper_baseline(0);
    }
}
