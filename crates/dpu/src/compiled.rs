//! Launch-time block compilation: threaded-code op tables over basic
//! blocks.
//!
//! The fast scalar loop (PR 4) removed per-cycle allocation and re-decoding
//! from the hot path, but every issued instruction still pays a copy of the
//! 16-byte [`Instruction`] enum, a second copy of its [`DecodedInstr`] side
//! entry, and a full `match` over the enum inside
//! [`ArchState::execute`] — including nested `Operand`/`AluOp` matches that
//! re-discriminate operands whose shape was fixed at load time.
//!
//! This module compiles a program once per load into a [`CompiledKernel`]:
//! the program is split into basic blocks ([`BlockMap`]) and each block's
//! instructions are lowered into a span of one flat table of
//! [`CompiledOp`]s — a *monomorphic* function pointer plus pre-extracted
//! operands (register indices, immediate, branch target) and the decoded
//! scheduling facts (source mask, destination, RF-hazard cost, class
//! index). The steady-state executor then dispatches with one indexed load
//! and one indirect call; no enum is matched and no operand is
//! re-discriminated.
//!
//! Correctness bar: every op function must be *observationally identical*
//! to [`ArchState::execute`] on the same state — same register/memory
//! writes, same [`Effect`], same [`SimError`] variant with the same fields,
//! and the same error precedence. The unit tests at the bottom run every op
//! shape (including each error path) through both and compare.

use pim_isa::{
    AddressSpace, AluOp, BlockMap, Cond, DecodedInstr, DecodedProgram, InstrClass, Instruction,
    Operand, Width,
};

use crate::error::SimError;
use crate::exec::{ArchState, Effect};

/// `flags` bit: blocking MRAM↔WRAM DMA.
pub(crate) const F_DMA: u8 = 1 << 0;
/// `flags` bit: WRAM load (forwards at load latency).
pub(crate) const F_LOAD: u8 = 1 << 1;
/// `flags` bit: WRAM store.
pub(crate) const F_STORE: u8 = 1 << 2;
/// `flags` bit: `dst` holds a destination register index.
pub(crate) const F_DST: u8 = 1 << 3;

/// A monomorphic op function: executes one pre-lowered instruction for
/// `tasklet` at `pc`, reading operands out of its [`CompiledOp`].
pub(crate) type OpFn = fn(&mut ArchState, u32, u32, &CompiledOp) -> Result<Effect, SimError>;

/// One instruction, lowered to a direct-threaded table entry.
///
/// The field meanings depend on the op function: `a` is the destination
/// register (or the `wram` register of a DMA, or the stored register of a
/// store), `b` the first source (base / `mram` / `ra`), `c` the second
/// source register when the operand is a register, and `imm` the immediate
/// when it is not. `target` is the static control-transfer target.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CompiledOp {
    /// The monomorphic executor for this instruction shape.
    pub exec: OpFn,
    /// Immediate operand / load-store offset.
    pub imm: i32,
    /// Static branch/jump target.
    pub target: u32,
    /// Bit `i` set when `r<i>` is a source (scoreboard lookups).
    pub src_mask: u32,
    /// Basic block containing this instruction (see [`BlockMap`]).
    pub block: u32,
    /// First register field (destination / wram / stored value).
    pub a: u8,
    /// Second register field (ra / base / mram).
    pub b: u8,
    /// Third register field (rb / len), when the operand is a register.
    pub c: u8,
    /// Destination register index; meaningful when [`F_DST`] is set.
    pub dst: u8,
    /// Extra issue slots from same-bank register-file reads.
    pub rf_hazard: u8,
    /// Pre-computed index into [`InstrClass::ALL`] for mix accounting.
    pub class_idx: u8,
    /// [`F_DMA`] | [`F_LOAD`] | [`F_STORE`] | [`F_DST`].
    pub flags: u8,
}

impl CompiledOp {
    #[inline(always)]
    pub(crate) fn is_dma(&self) -> bool {
        self.flags & F_DMA != 0
    }

    #[inline(always)]
    pub(crate) fn is_load(&self) -> bool {
        self.flags & F_LOAD != 0
    }

    #[inline(always)]
    pub(crate) fn dst(&self) -> Option<u8> {
        if self.flags & F_DST != 0 {
            Some(self.dst)
        } else {
            None
        }
    }
}

/// A program compiled once per [`crate::Dpu::load_program`] and reused
/// across every relaunch (and shared with SoA batch groups through an
/// `Arc`): the original instruction stream (trace text, event emission,
/// cache-mode address probing), the decoded side table (kept for the fast
/// tier and the batch sweep path), the basic-block partition, and the flat
/// threaded-code op table.
#[derive(Debug)]
pub(crate) struct CompiledKernel {
    /// The instruction stream as loaded.
    pub instrs: Vec<Instruction>,
    /// Decoded per-PC side table (fast-tier loop, batch scoreboard).
    pub decoded: DecodedProgram,
    /// Basic-block partition of the program.
    pub blocks: BlockMap,
    /// Flat per-PC op table; blocks occupy contiguous spans.
    pub ops: Vec<CompiledOp>,
}

impl CompiledKernel {
    /// Compiles an instruction stream: builds the block map, then lowers
    /// each block's instructions into the op table.
    pub(crate) fn compile(instrs: &[Instruction]) -> Self {
        let blocks = BlockMap::build(instrs);
        let mut ops = Vec::with_capacity(instrs.len());
        for block in 0..blocks.len() as u32 {
            let (start, end) = blocks.span(block);
            for pc in start..end {
                ops.push(compile_op(&instrs[pc as usize], block));
            }
        }
        CompiledKernel {
            instrs: instrs.to_vec(),
            decoded: DecodedProgram::decode(instrs),
            blocks,
            ops,
        }
    }
}

#[inline(always)]
fn rg(s: &ArchState, t: u32, r: u8) -> u32 {
    s.regs[t as usize][r as usize]
}

#[inline(always)]
fn setr(s: &mut ArchState, t: u32, r: u8, v: u32) {
    s.regs[t as usize][r as usize] = v;
}

macro_rules! alu_fns {
    ($($rr:ident $ri:ident $variant:ident),* $(,)?) => {
        $(
            fn $rr(s: &mut ArchState, t: u32, _pc: u32, op: &CompiledOp) -> Result<Effect, SimError> {
                let a = rg(s, t, op.b);
                let b = rg(s, t, op.c);
                setr(s, t, op.a, AluOp::$variant.eval(a, b));
                Ok(Effect::Advance)
            }
            fn $ri(s: &mut ArchState, t: u32, _pc: u32, op: &CompiledOp) -> Result<Effect, SimError> {
                let a = rg(s, t, op.b);
                setr(s, t, op.a, AluOp::$variant.eval(a, op.imm as u32));
                Ok(Effect::Advance)
            }
        )*
    };
}

alu_fns!(
    alu_add_rr alu_add_ri Add,
    alu_sub_rr alu_sub_ri Sub,
    alu_and_rr alu_and_ri And,
    alu_or_rr alu_or_ri Or,
    alu_xor_rr alu_xor_ri Xor,
    alu_sll_rr alu_sll_ri Sll,
    alu_srl_rr alu_srl_ri Srl,
    alu_sra_rr alu_sra_ri Sra,
    alu_mul_rr alu_mul_ri Mul,
    alu_div_rr alu_div_ri Div,
    alu_rem_rr alu_rem_ri Rem,
    alu_slt_rr alu_slt_ri Slt,
    alu_sltu_rr alu_sltu_ri Sltu,
    alu_min_rr alu_min_ri Min,
    alu_max_rr alu_max_ri Max,
);

fn alu_fn(op: AluOp, reg_operand: bool) -> OpFn {
    match (op, reg_operand) {
        (AluOp::Add, true) => alu_add_rr,
        (AluOp::Add, false) => alu_add_ri,
        (AluOp::Sub, true) => alu_sub_rr,
        (AluOp::Sub, false) => alu_sub_ri,
        (AluOp::And, true) => alu_and_rr,
        (AluOp::And, false) => alu_and_ri,
        (AluOp::Or, true) => alu_or_rr,
        (AluOp::Or, false) => alu_or_ri,
        (AluOp::Xor, true) => alu_xor_rr,
        (AluOp::Xor, false) => alu_xor_ri,
        (AluOp::Sll, true) => alu_sll_rr,
        (AluOp::Sll, false) => alu_sll_ri,
        (AluOp::Srl, true) => alu_srl_rr,
        (AluOp::Srl, false) => alu_srl_ri,
        (AluOp::Sra, true) => alu_sra_rr,
        (AluOp::Sra, false) => alu_sra_ri,
        (AluOp::Mul, true) => alu_mul_rr,
        (AluOp::Mul, false) => alu_mul_ri,
        (AluOp::Div, true) => alu_div_rr,
        (AluOp::Div, false) => alu_div_ri,
        (AluOp::Rem, true) => alu_rem_rr,
        (AluOp::Rem, false) => alu_rem_ri,
        (AluOp::Slt, true) => alu_slt_rr,
        (AluOp::Slt, false) => alu_slt_ri,
        (AluOp::Sltu, true) => alu_sltu_rr,
        (AluOp::Sltu, false) => alu_sltu_ri,
        (AluOp::Min, true) => alu_min_rr,
        (AluOp::Min, false) => alu_min_ri,
        (AluOp::Max, true) => alu_max_rr,
        (AluOp::Max, false) => alu_max_ri,
    }
}

/// Alignment + WRAM-bounds check shared by the load/store op functions.
/// Mirrors `ArchState::check_ls` exactly, including error precedence.
#[inline(always)]
fn check_ls(s: &ArchState, addr: u32, bytes: u32, tasklet: u32, pc: u32) -> Result<(), SimError> {
    if !addr.is_multiple_of(bytes) {
        return Err(SimError::Unaligned { addr, align: bytes, tasklet, pc });
    }
    if u64::from(addr) + u64::from(bytes) > u64::from(s.ls_space) {
        return Err(SimError::OutOfBounds {
            space: AddressSpace::Wram,
            addr,
            len: bytes,
            tasklet,
            pc,
        });
    }
    Ok(())
}

macro_rules! load_fns {
    ($($name:ident $bytes:literal |$s:ident, $a:ident| $read:expr),* $(,)?) => {
        $(
            fn $name(s: &mut ArchState, t: u32, pc: u32, op: &CompiledOp) -> Result<Effect, SimError> {
                let addr = rg(s, t, op.b).wrapping_add(op.imm as u32);
                check_ls(s, addr, $bytes, t, pc)?;
                let $a = addr as usize;
                let $s = &*s;
                let v = $read;
                setr(s, t, op.a, v);
                Ok(Effect::Advance)
            }
        )*
    };
}

load_fns!(
    load_bu 1 |s, a| u32::from(s.wram[a]),
    load_bs 1 |s, a| s.wram[a] as i8 as i32 as u32,
    load_hu 2 |s, a| u32::from(u16::from_le_bytes([s.wram[a], s.wram[a + 1]])),
    load_hs 2 |s, a| u16::from_le_bytes([s.wram[a], s.wram[a + 1]]) as i16 as i32 as u32,
    load_w 4 |s, a| u32::from_le_bytes([s.wram[a], s.wram[a + 1], s.wram[a + 2], s.wram[a + 3]]),
);

fn store_b(s: &mut ArchState, t: u32, pc: u32, op: &CompiledOp) -> Result<Effect, SimError> {
    let addr = rg(s, t, op.b).wrapping_add(op.imm as u32);
    check_ls(s, addr, 1, t, pc)?;
    let v = rg(s, t, op.a);
    s.wram[addr as usize] = v as u8;
    Ok(Effect::Advance)
}

fn store_h(s: &mut ArchState, t: u32, pc: u32, op: &CompiledOp) -> Result<Effect, SimError> {
    let addr = rg(s, t, op.b).wrapping_add(op.imm as u32);
    check_ls(s, addr, 2, t, pc)?;
    let v = rg(s, t, op.a);
    let a = addr as usize;
    s.wram[a..a + 2].copy_from_slice(&(v as u16).to_le_bytes());
    Ok(Effect::Advance)
}

fn store_w(s: &mut ArchState, t: u32, pc: u32, op: &CompiledOp) -> Result<Effect, SimError> {
    let addr = rg(s, t, op.b).wrapping_add(op.imm as u32);
    check_ls(s, addr, 4, t, pc)?;
    let v = rg(s, t, op.a);
    let a = addr as usize;
    s.wram[a..a + 4].copy_from_slice(&v.to_le_bytes());
    Ok(Effect::Advance)
}

/// DMA validation + functional copy, shared by the four DMA op functions.
/// Mirrors the `Ldma`/`Sdma` arm of `ArchState::execute` exactly,
/// including the error precedence (length, alignment, WRAM bounds, MRAM
/// bounds).
#[inline(always)]
fn dma_common(
    s: &mut ArchState,
    t: u32,
    pc: u32,
    w: u32,
    m: u32,
    l: i32,
    write: bool,
) -> Result<Effect, SimError> {
    if l <= 0 {
        return Err(SimError::BadDmaLength { len: l, tasklet: t, pc });
    }
    let l = l as u32;
    if !w.is_multiple_of(4) || !m.is_multiple_of(4) || !l.is_multiple_of(4) {
        let addr = if !w.is_multiple_of(4) { w } else { m };
        return Err(SimError::Unaligned { addr, align: 4, tasklet: t, pc });
    }
    if u64::from(w) + u64::from(l) > u64::from(s.ls_space) {
        return Err(SimError::OutOfBounds {
            space: AddressSpace::Wram,
            addr: w,
            len: l,
            tasklet: t,
            pc,
        });
    }
    if !s.layout.contains(AddressSpace::Mram, m, l) {
        return Err(SimError::OutOfBounds {
            space: AddressSpace::Mram,
            addr: m,
            len: l,
            tasklet: t,
            pc,
        });
    }
    let (wi, mi, li) = (w as usize, m as usize, l as usize);
    if write {
        s.mram[mi..mi + li].copy_from_slice(&s.wram[wi..wi + li]);
    } else {
        s.wram[wi..wi + li].copy_from_slice(&s.mram[mi..mi + li]);
    }
    Ok(Effect::Dma { mram: m, len: l, write })
}

fn ldma_r(s: &mut ArchState, t: u32, pc: u32, op: &CompiledOp) -> Result<Effect, SimError> {
    let (w, m, l) = (rg(s, t, op.a), rg(s, t, op.b), rg(s, t, op.c) as i32);
    dma_common(s, t, pc, w, m, l, false)
}

fn ldma_i(s: &mut ArchState, t: u32, pc: u32, op: &CompiledOp) -> Result<Effect, SimError> {
    let (w, m) = (rg(s, t, op.a), rg(s, t, op.b));
    dma_common(s, t, pc, w, m, op.imm, false)
}

fn sdma_r(s: &mut ArchState, t: u32, pc: u32, op: &CompiledOp) -> Result<Effect, SimError> {
    let (w, m, l) = (rg(s, t, op.a), rg(s, t, op.b), rg(s, t, op.c) as i32);
    dma_common(s, t, pc, w, m, l, true)
}

fn sdma_i(s: &mut ArchState, t: u32, pc: u32, op: &CompiledOp) -> Result<Effect, SimError> {
    let (w, m) = (rg(s, t, op.a), rg(s, t, op.b));
    dma_common(s, t, pc, w, m, op.imm, true)
}

macro_rules! branch_fns {
    ($($rr:ident $ri:ident $variant:ident),* $(,)?) => {
        $(
            fn $rr(s: &mut ArchState, t: u32, _pc: u32, op: &CompiledOp) -> Result<Effect, SimError> {
                let a = rg(s, t, op.b);
                let b = rg(s, t, op.c);
                if Cond::$variant.eval(a, b) {
                    Ok(Effect::Jump(op.target))
                } else {
                    Ok(Effect::Advance)
                }
            }
            fn $ri(s: &mut ArchState, t: u32, _pc: u32, op: &CompiledOp) -> Result<Effect, SimError> {
                let a = rg(s, t, op.b);
                if Cond::$variant.eval(a, op.imm as u32) {
                    Ok(Effect::Jump(op.target))
                } else {
                    Ok(Effect::Advance)
                }
            }
        )*
    };
}

branch_fns!(
    br_eq_rr br_eq_ri Eq,
    br_ne_rr br_ne_ri Ne,
    br_lt_rr br_lt_ri Lt,
    br_ge_rr br_ge_ri Ge,
    br_ltu_rr br_ltu_ri Ltu,
    br_geu_rr br_geu_ri Geu,
);

fn branch_fn(cond: Cond, reg_operand: bool) -> OpFn {
    match (cond, reg_operand) {
        (Cond::Eq, true) => br_eq_rr,
        (Cond::Eq, false) => br_eq_ri,
        (Cond::Ne, true) => br_ne_rr,
        (Cond::Ne, false) => br_ne_ri,
        (Cond::Lt, true) => br_lt_rr,
        (Cond::Lt, false) => br_lt_ri,
        (Cond::Ge, true) => br_ge_rr,
        (Cond::Ge, false) => br_ge_ri,
        (Cond::Ltu, true) => br_ltu_rr,
        (Cond::Ltu, false) => br_ltu_ri,
        (Cond::Geu, true) => br_geu_rr,
        (Cond::Geu, false) => br_geu_ri,
    }
}

fn op_movi(s: &mut ArchState, t: u32, _pc: u32, op: &CompiledOp) -> Result<Effect, SimError> {
    setr(s, t, op.a, op.imm as u32);
    Ok(Effect::Advance)
}

fn op_tid(s: &mut ArchState, t: u32, _pc: u32, op: &CompiledOp) -> Result<Effect, SimError> {
    let rebased = t - s.tid_base[t as usize];
    setr(s, t, op.a, rebased);
    Ok(Effect::Advance)
}

fn op_jump(_s: &mut ArchState, _t: u32, _pc: u32, op: &CompiledOp) -> Result<Effect, SimError> {
    Ok(Effect::Jump(op.target))
}

fn op_jal(s: &mut ArchState, t: u32, pc: u32, op: &CompiledOp) -> Result<Effect, SimError> {
    setr(s, t, op.a, pc + 1);
    Ok(Effect::Jump(op.target))
}

fn op_jr(s: &mut ArchState, t: u32, _pc: u32, op: &CompiledOp) -> Result<Effect, SimError> {
    Ok(Effect::Jump(rg(s, t, op.b)))
}

#[inline(always)]
fn acquire_common(s: &mut ArchState, t: u32, pc: u32, bit: u32) -> Result<Effect, SimError> {
    let slot =
        s.atomic.get_mut(bit as usize).ok_or(SimError::BadAtomicBit { bit, tasklet: t, pc })?;
    if *slot {
        Ok(Effect::AcquireRetry)
    } else {
        *slot = true;
        Ok(Effect::Advance)
    }
}

#[inline(always)]
fn release_common(s: &mut ArchState, t: u32, pc: u32, bit: u32) -> Result<Effect, SimError> {
    let slot =
        s.atomic.get_mut(bit as usize).ok_or(SimError::BadAtomicBit { bit, tasklet: t, pc })?;
    *slot = false;
    Ok(Effect::Advance)
}

fn acquire_r(s: &mut ArchState, t: u32, pc: u32, op: &CompiledOp) -> Result<Effect, SimError> {
    let bit = rg(s, t, op.b);
    acquire_common(s, t, pc, bit)
}

fn acquire_i(s: &mut ArchState, t: u32, pc: u32, op: &CompiledOp) -> Result<Effect, SimError> {
    acquire_common(s, t, pc, op.imm as u32)
}

fn release_r(s: &mut ArchState, t: u32, pc: u32, op: &CompiledOp) -> Result<Effect, SimError> {
    let bit = rg(s, t, op.b);
    release_common(s, t, pc, bit)
}

fn release_i(s: &mut ArchState, t: u32, pc: u32, op: &CompiledOp) -> Result<Effect, SimError> {
    release_common(s, t, pc, op.imm as u32)
}

fn op_stop(_s: &mut ArchState, _t: u32, _pc: u32, _op: &CompiledOp) -> Result<Effect, SimError> {
    Ok(Effect::Stop)
}

fn op_nop(_s: &mut ArchState, _t: u32, _pc: u32, _op: &CompiledOp) -> Result<Effect, SimError> {
    Ok(Effect::Advance)
}

/// Lowers one instruction into its table entry.
fn compile_op(instr: &Instruction, block: u32) -> CompiledOp {
    let d = DecodedInstr::new(instr);
    let class_idx = InstrClass::ALL
        .iter()
        .position(|c| *c == d.class)
        .expect("InstrClass::ALL covers every class") as u8;
    let mut op = CompiledOp {
        exec: op_nop,
        imm: 0,
        target: 0,
        src_mask: d.src_mask,
        block,
        a: 0,
        b: 0,
        c: 0,
        dst: d.dst.unwrap_or(0),
        rf_hazard: d.rf_hazard,
        class_idx,
        flags: 0,
    };
    if d.dst.is_some() {
        op.flags |= F_DST;
    }
    if d.is_dma {
        op.flags |= F_DMA;
    }
    if d.is_load {
        op.flags |= F_LOAD;
    }
    if matches!(instr, Instruction::Store { .. }) {
        op.flags |= F_STORE;
    }
    match *instr {
        Instruction::Nop => op.exec = op_nop,
        Instruction::Stop => op.exec = op_stop,
        Instruction::Alu { op: aop, rd, ra, rb } => {
            op.a = rd.index();
            op.b = ra.index();
            match rb {
                Operand::Reg(r) => {
                    op.c = r.index();
                    op.exec = alu_fn(aop, true);
                }
                Operand::Imm(i) => {
                    op.imm = i;
                    op.exec = alu_fn(aop, false);
                }
            }
        }
        Instruction::Movi { rd, imm } => {
            op.a = rd.index();
            op.imm = imm;
            op.exec = op_movi;
        }
        Instruction::Tid { rd } => {
            op.a = rd.index();
            op.exec = op_tid;
        }
        Instruction::Load { width, signed, rd, base, offset } => {
            op.a = rd.index();
            op.b = base.index();
            op.imm = offset;
            op.exec = match (width, signed) {
                (Width::Byte, false) => load_bu,
                (Width::Byte, true) => load_bs,
                (Width::Half, false) => load_hu,
                (Width::Half, true) => load_hs,
                (Width::Word, _) => load_w,
            };
        }
        Instruction::Store { width, rs, base, offset } => {
            op.a = rs.index();
            op.b = base.index();
            op.imm = offset;
            op.exec = match width {
                Width::Byte => store_b,
                Width::Half => store_h,
                Width::Word => store_w,
            };
        }
        Instruction::Ldma { wram, mram, len } | Instruction::Sdma { wram, mram, len } => {
            let write = matches!(instr, Instruction::Sdma { .. });
            op.a = wram.index();
            op.b = mram.index();
            match len {
                Operand::Reg(r) => {
                    op.c = r.index();
                    op.exec = if write { sdma_r } else { ldma_r };
                }
                Operand::Imm(i) => {
                    op.imm = i;
                    op.exec = if write { sdma_i } else { ldma_i };
                }
            }
        }
        Instruction::Branch { cond, ra, rb, target } => {
            op.b = ra.index();
            op.target = target;
            match rb {
                Operand::Reg(r) => {
                    op.c = r.index();
                    op.exec = branch_fn(cond, true);
                }
                Operand::Imm(i) => {
                    op.imm = i;
                    op.exec = branch_fn(cond, false);
                }
            }
        }
        Instruction::Jump { target } => {
            op.target = target;
            op.exec = op_jump;
        }
        Instruction::Jal { rd, target } => {
            op.a = rd.index();
            op.target = target;
            op.exec = op_jal;
        }
        Instruction::Jr { ra } => {
            op.b = ra.index();
            op.exec = op_jr;
        }
        Instruction::Acquire { bit } => match bit {
            Operand::Reg(r) => {
                op.b = r.index();
                op.exec = acquire_r;
            }
            Operand::Imm(i) => {
                op.imm = i;
                op.exec = acquire_i;
            }
        },
        Instruction::Release { bit } => match bit {
            Operand::Reg(r) => {
                op.b = r.index();
                op.exec = release_r;
            }
            Operand::Imm(i) => {
                op.imm = i;
                op.exec = release_i;
            }
        },
    }
    op
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_isa::{MemLayout, Reg};

    fn state() -> ArchState {
        // A small MRAM keeps the per-case state clones (and the Debug
        // renderings compared below) cheap; every address these tests
        // touch fits in 64 KB, and both sides see the same layout so the
        // bounds checks stay equivalent.
        let layout = MemLayout { mram_bytes: 64 * 1024, ..MemLayout::default() };
        let mut s = ArchState::new(layout, 4, 64 * 1024);
        // Non-trivial starting material so op results are distinguishable.
        for t in 0..4usize {
            for r in 0..24usize {
                s.regs[t][r] = (t as u32) * 100 + r as u32;
            }
        }
        for (i, b) in s.wram.iter_mut().enumerate().take(4096) {
            *b = (i % 251) as u8;
        }
        for (i, b) in s.mram.iter_mut().enumerate().take(4096) {
            *b = (i % 241) as u8;
        }
        s.tid_base = vec![0, 0, 2, 2];
        s
    }

    /// Every instruction shape (including every error path) must behave
    /// identically through the compiled op function and the interpreter.
    fn assert_compiled_matches(instr: &Instruction, prep: impl Fn(&mut ArchState)) {
        let op = compile_op(instr, 0);
        for t in 0..4u32 {
            for pc in [0u32, 7] {
                let mut want_state = state();
                prep(&mut want_state);
                want_state.pc[t as usize] = pc;
                let want = want_state.execute(t, instr);

                let mut got_state = state();
                prep(&mut got_state);
                got_state.pc[t as usize] = pc;
                let got = (op.exec)(&mut got_state, t, pc, &op);

                assert_eq!(got, want, "effect/error mismatch for {instr} (t={t}, pc={pc})");
                assert_eq!(
                    format!("{got_state:?}"),
                    format!("{want_state:?}"),
                    "state mismatch for {instr} (t={t}, pc={pc})"
                );
            }
        }
    }

    #[test]
    fn every_alu_shape_matches_the_interpreter() {
        for aluop in AluOp::ALL {
            for rb in [Operand::Reg(Reg::r(6)), Operand::Imm(-3), Operand::Imm(35)] {
                let instr = Instruction::Alu { op: aluop, rd: Reg::r(4), ra: Reg::r(1), rb };
                assert_compiled_matches(&instr, |_| ());
                // Division/shift edge material: zero and negative operands.
                assert_compiled_matches(&instr, |s| {
                    for t in 0..4usize {
                        s.regs[t][1] = 0x8000_0001;
                        s.regs[t][6] = 0;
                    }
                });
            }
        }
    }

    #[test]
    fn every_branch_shape_matches_the_interpreter() {
        for cond in Cond::ALL {
            for rb in [Operand::Reg(Reg::r(2)), Operand::Imm(101)] {
                let instr = Instruction::Branch { cond, ra: Reg::r(1), rb, target: 9 };
                assert_compiled_matches(&instr, |_| ());
                assert_compiled_matches(&instr, |s| {
                    for t in 0..4usize {
                        s.regs[t][1] = 101;
                        s.regs[t][2] = s.regs[t][1];
                    }
                });
            }
        }
    }

    #[test]
    fn loads_and_stores_match_including_faults() {
        for width in [Width::Byte, Width::Half, Width::Word] {
            for signed in [false, true] {
                let load =
                    Instruction::Load { width, signed, rd: Reg::r(5), base: Reg::r(3), offset: 8 };
                assert_compiled_matches(&load, |_| ());
                // Misaligned and out-of-bounds bases.
                assert_compiled_matches(&load, |s| {
                    for t in 0..4usize {
                        s.regs[t][3] = 1;
                    }
                });
                assert_compiled_matches(&load, |s| {
                    for t in 0..4usize {
                        s.regs[t][3] = 64 * 1024 - 2;
                    }
                });
            }
            let store = Instruction::Store { width, rs: Reg::r(2), base: Reg::r(3), offset: 16 };
            assert_compiled_matches(&store, |_| ());
            assert_compiled_matches(&store, |s| {
                for t in 0..4usize {
                    s.regs[t][3] = u32::MAX - 1;
                }
            });
        }
    }

    #[test]
    fn dma_shapes_match_including_every_error_precedence() {
        for make in [
            |len| Instruction::Ldma { wram: Reg::r(1), mram: Reg::r(2), len },
            |len| Instruction::Sdma { wram: Reg::r(1), mram: Reg::r(2), len },
        ] {
            for len in [
                Operand::Imm(64),
                Operand::Imm(0),
                Operand::Imm(-8),
                Operand::Imm(6),
                Operand::Reg(Reg::r(3)),
            ] {
                let instr = make(len);
                // Aligned, in-bounds.
                assert_compiled_matches(&instr, |s| {
                    for t in 0..4usize {
                        s.regs[t][1] = 64;
                        s.regs[t][2] = 128;
                        s.regs[t][3] = 32;
                    }
                });
                // Misaligned WRAM vs misaligned MRAM (addr selection).
                assert_compiled_matches(&instr, |s| {
                    for t in 0..4usize {
                        s.regs[t][1] = 66;
                        s.regs[t][2] = 128;
                        s.regs[t][3] = 32;
                    }
                });
                assert_compiled_matches(&instr, |s| {
                    for t in 0..4usize {
                        s.regs[t][1] = 64;
                        s.regs[t][2] = 130;
                        s.regs[t][3] = 32;
                    }
                });
                // WRAM out of bounds, then MRAM out of bounds.
                assert_compiled_matches(&instr, |s| {
                    for t in 0..4usize {
                        s.regs[t][1] = 64 * 1024 - 4;
                        s.regs[t][2] = 128;
                        s.regs[t][3] = 64;
                    }
                });
                assert_compiled_matches(&instr, |s| {
                    for t in 0..4usize {
                        s.regs[t][1] = 64;
                        s.regs[t][2] = u32::MAX - 3;
                        s.regs[t][3] = 64;
                    }
                });
            }
        }
    }

    #[test]
    fn control_sync_and_misc_shapes_match() {
        let shapes = vec![
            Instruction::Nop,
            Instruction::Stop,
            Instruction::Movi { rd: Reg::r(9), imm: -42 },
            Instruction::Tid { rd: Reg::r(0) },
            Instruction::Jump { target: 5 },
            Instruction::Jal { rd: Reg::r(23), target: 2 },
            Instruction::Jr { ra: Reg::r(23) },
            Instruction::Acquire { bit: Operand::Imm(3) },
            Instruction::Release { bit: Operand::Imm(3) },
            Instruction::Acquire { bit: Operand::Reg(Reg::r(4)) },
            Instruction::Release { bit: Operand::Reg(Reg::r(4)) },
            // Runtime atomic bit out of range.
            Instruction::Acquire { bit: Operand::Imm(100_000) },
            Instruction::Release { bit: Operand::Imm(100_000) },
        ];
        for instr in &shapes {
            assert_compiled_matches(instr, |_| ());
            assert_compiled_matches(instr, |s| {
                s.atomic[3] = true;
                for t in 0..4usize {
                    s.regs[t][4] = 3;
                }
            });
        }
    }

    #[test]
    fn compiled_kernel_mirrors_decoded_facts_and_blocks() {
        let instrs = vec![
            Instruction::Tid { rd: Reg::r(0) },
            Instruction::Branch { cond: Cond::Ne, ra: Reg::r(0), rb: Operand::Imm(0), target: 4 },
            Instruction::Movi { rd: Reg::r(1), imm: 7 },
            Instruction::Jump { target: 4 },
            Instruction::Stop,
        ];
        let k = CompiledKernel::compile(&instrs);
        assert_eq!(k.ops.len(), instrs.len());
        assert_eq!(k.decoded.len(), instrs.len());
        for (pc, instr) in instrs.iter().enumerate() {
            let op = &k.ops[pc];
            let d = k.decoded.get(pc as u32).unwrap();
            assert_eq!(op.src_mask, d.src_mask, "pc {pc}");
            assert_eq!(op.dst(), d.dst, "pc {pc}");
            assert_eq!(op.rf_hazard, d.rf_hazard, "pc {pc}");
            assert_eq!(InstrClass::ALL[op.class_idx as usize], d.class, "pc {pc}");
            assert_eq!(op.is_dma(), d.is_dma, "pc {pc}");
            assert_eq!(op.is_load(), d.is_load, "pc {pc}");
            assert_eq!(op.block, k.blocks.block_of(pc as u32), "pc {pc}");
            assert_eq!((op.flags & F_STORE != 0), matches!(instr, Instruction::Store { .. }));
        }
        // Ops are stored in program order, so block spans index the table
        // directly.
        let (start, end) = k.blocks.span(k.blocks.block_of(2));
        assert_eq!((start, end), (2, 4));
    }
}
