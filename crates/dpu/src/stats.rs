//! Run statistics: everything the paper's characterization figures read.

use pim_cache::CacheStats;
use pim_dram::DramStats;
use pim_isa::InstrClass;
use pim_mmu::MmuStats;

/// Why the issue stage was idle on a given cycle (paper Fig 6's non-black
/// bars).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdleCause {
    /// Every live tasklet was waiting on the memory system (DMA, cache
    /// fill, instruction fetch).
    Memory,
    /// At least one tasklet was gated only by the pipeline scheduling
    /// constraint (the revolver window, or — with data forwarding — an
    /// unforwarded dependence).
    Revolver,
    /// The issue slot was consumed by the structural hazard at the split
    /// even/odd register file.
    Rf,
}

/// One issued instruction, captured when tracing is enabled
/// ([`crate::DpuConfig::trace_limit`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Core cycle of issue.
    pub cycle: u64,
    /// Issuing tasklet (for SIMT: the lane).
    pub tasklet: u32,
    /// Program counter (instruction index) of the issued instruction.
    pub pc: u32,
    /// Disassembled instruction text.
    pub text: String,
}

impl std::fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{:>8}] t{:02} pc={:<5} {}", self.cycle, self.tasklet, self.pc, self.text)
    }
}

/// Statistics collected over one kernel execution on one DPU.
#[derive(Debug, Clone, Default)]
pub struct DpuRunStats {
    /// Total core cycles from launch to the last tasklet's `stop`.
    pub cycles: u64,
    /// Cycles with at least one instruction issued (Fig 6's black bar).
    pub active_cycles: u64,
    /// Idle cycles attributed to memory waits. Fractional: on a cycle
    /// where tasklets idle for different reasons, the cycle is split
    /// proportionally by thread state (the paper "categorize\[s\] each
    /// thread's status based on the reason for its stall").
    pub idle_memory: f64,
    /// Idle cycles attributed to the revolver/pipeline scheduling
    /// constraint (fractional, see [`DpuRunStats::idle_memory`]).
    pub idle_revolver: f64,
    /// Idle cycles attributed to the even/odd register-file hazard
    /// (fractional, see [`DpuRunStats::idle_memory`]).
    pub idle_rf: f64,
    /// Instructions executed (for SIMT: one per active lane), total.
    pub instructions: u64,
    /// Instructions executed by class (Fig 9's instruction mix).
    pub class_counts: [u64; 6],
    /// Instructions executed per tasklet.
    pub per_tasklet_instructions: Vec<u64>,
    /// Cycle at which each tasklet executed `stop` (0 if it never ran) —
    /// per-tenant completion times for the multi-tenancy study.
    pub tasklet_stop_cycle: Vec<u64>,
    /// `tlp_histogram[k]` = cycles on which exactly `k` tasklets were
    /// issuable (Fig 7).
    pub tlp_histogram: Vec<u64>,
    /// Average issuable-tasklet count per window of
    /// [`DpuRunStats::tlp_window`] cycles (Fig 8's TLP-over-time trace).
    pub tlp_timeline: Vec<f32>,
    /// Window length of the timeline, in cycles.
    pub tlp_window: u64,
    /// DRAM bank statistics (bytes read feed Fig 16 and Fig 5's bandwidth
    /// axis).
    pub dram: DramStats,
    /// Instruction-cache statistics (cache-centric mode only).
    pub icache: Option<CacheStats>,
    /// Data-cache statistics (cache-centric mode only).
    pub dcache: Option<CacheStats>,
    /// MMU/TLB statistics (MMU-enabled runs only).
    pub mmu: Option<MmuStats>,
    /// DMA requests issued.
    pub dma_requests: u64,
    /// The first [`crate::DpuConfig::trace_limit`] issued instructions
    /// (empty when tracing is disabled).
    pub trace: Vec<TraceEntry>,
    /// Core frequency the run was clocked at, for time conversion.
    pub freq_mhz: u32,
    /// Peak scalar-instruction throughput (1 scalar, 2 superscalar, warp
    /// width for SIMT) — the compute-utilization denominator.
    pub max_ipc: u32,
    /// DMA-interface peak rate in bytes per core cycle — the
    /// bandwidth-utilization denominator.
    pub interface_bytes_per_cycle: f64,
}

impl DpuRunStats {
    /// Accumulates another launch's statistics into this one — used when a
    /// workload runs as multiple kernel launches (e.g. BFS levels, the
    /// two-pass SCAN kernels) and a figure needs whole-workload numbers.
    ///
    /// Counters and histograms add; the TLP timeline concatenates;
    /// configuration fields (`freq_mhz`, `max_ipc`, …) are taken from the
    /// first non-empty side and assumed identical across launches.
    pub fn merge(&mut self, other: &DpuRunStats) {
        self.cycles += other.cycles;
        self.active_cycles += other.active_cycles;
        self.idle_memory += other.idle_memory;
        self.idle_revolver += other.idle_revolver;
        self.idle_rf += other.idle_rf;
        self.instructions += other.instructions;
        for (a, b) in self.class_counts.iter_mut().zip(&other.class_counts) {
            *a += b;
        }
        if self.per_tasklet_instructions.len() < other.per_tasklet_instructions.len() {
            self.per_tasklet_instructions.resize(other.per_tasklet_instructions.len(), 0);
        }
        for (a, b) in self.per_tasklet_instructions.iter_mut().zip(&other.per_tasklet_instructions)
        {
            *a += b;
        }
        if self.tasklet_stop_cycle.len() < other.tasklet_stop_cycle.len() {
            self.tasklet_stop_cycle.resize(other.tasklet_stop_cycle.len(), 0);
        }
        for (a, b) in self.tasklet_stop_cycle.iter_mut().zip(&other.tasklet_stop_cycle) {
            *a = (*a).max(*b);
        }
        if self.tlp_histogram.len() < other.tlp_histogram.len() {
            self.tlp_histogram.resize(other.tlp_histogram.len(), 0);
        }
        for (a, b) in self.tlp_histogram.iter_mut().zip(&other.tlp_histogram) {
            *a += b;
        }
        self.tlp_timeline.extend_from_slice(&other.tlp_timeline);
        if self.tlp_window == 0 {
            self.tlp_window = other.tlp_window;
        }
        self.dram.merge(&other.dram);
        match (&mut self.icache, &other.icache) {
            (Some(a), Some(b)) => a.merge(b),
            (slot @ None, Some(b)) => *slot = Some(*b),
            _ => {}
        }
        match (&mut self.dcache, &other.dcache) {
            (Some(a), Some(b)) => a.merge(b),
            (slot @ None, Some(b)) => *slot = Some(*b),
            _ => {}
        }
        match (&mut self.mmu, &other.mmu) {
            (Some(a), Some(b)) => a.merge(b),
            (slot @ None, Some(b)) => *slot = Some(*b),
            _ => {}
        }
        self.dma_requests += other.dma_requests;
        self.trace.extend(other.trace.iter().cloned());
        if self.freq_mhz == 0 {
            self.freq_mhz = other.freq_mhz;
            self.max_ipc = other.max_ipc;
            self.interface_bytes_per_cycle = other.interface_bytes_per_cycle;
        }
    }

    /// Records one executed instruction of the given class for `tasklet`.
    pub(crate) fn count_instruction(&mut self, class: InstrClass, tasklet: u32) {
        let idx = InstrClass::ALL.iter().position(|c| *c == class).expect("class in ALL");
        self.count_instruction_idx(idx, tasklet);
    }

    /// [`DpuRunStats::count_instruction`] with the [`InstrClass::ALL`]
    /// index pre-computed (the block-compiled executor stores it in the op
    /// table so the hot path skips the class scan). Identical accounting.
    pub(crate) fn count_instruction_idx(&mut self, idx: usize, tasklet: u32) {
        self.instructions += 1;
        self.class_counts[idx] += 1;
        if let Some(slot) = self.per_tasklet_instructions.get_mut(tasklet as usize) {
            *slot += 1;
        }
    }

    /// Fraction of instructions in `class`.
    #[must_use]
    pub fn class_fraction(&self, class: InstrClass) -> f64 {
        if self.instructions == 0 {
            return 0.0;
        }
        let idx = InstrClass::ALL.iter().position(|c| *c == class).expect("class in ALL");
        self.class_counts[idx] as f64 / self.instructions as f64
    }

    /// Executed instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Compute utilization in `[0, 1]`: IPC over the configuration's peak
    /// IPC (Fig 5's left axis; Fig 11 uses peak 16 for SIMT points).
    #[must_use]
    pub fn compute_utilization(&self) -> f64 {
        if self.max_ipc == 0 {
            0.0
        } else {
            self.ipc() / f64::from(self.max_ipc)
        }
    }

    /// MRAM read-bandwidth utilization in `[0, 1]`: bytes read from the
    /// bank over the DMA interface's peak over the run (Fig 5's right axis).
    #[must_use]
    pub fn mram_read_utilization(&self) -> f64 {
        if self.cycles == 0 || self.interface_bytes_per_cycle == 0.0 {
            return 0.0;
        }
        self.dram.bytes_read as f64 / (self.cycles as f64 * self.interface_bytes_per_cycle)
    }

    /// Wall-clock nanoseconds the run represents at the configured
    /// frequency.
    #[must_use]
    pub fn time_ns(&self) -> f64 {
        if self.freq_mhz == 0 {
            0.0
        } else {
            self.cycles as f64 * 1000.0 / f64::from(self.freq_mhz)
        }
    }

    /// Fractions of runtime `(active, idle_memory, idle_revolver, idle_rf)`
    /// — the stacked bars of Fig 6.
    #[must_use]
    pub fn breakdown(&self) -> (f64, f64, f64, f64) {
        if self.cycles == 0 {
            return (0.0, 0.0, 0.0, 0.0);
        }
        let c = self.cycles as f64;
        (
            self.active_cycles as f64 / c,
            self.idle_memory / c,
            self.idle_revolver / c,
            self.idle_rf / c,
        )
    }

    /// Mean issuable-tasklet count over the run (Fig 7's right axis).
    #[must_use]
    pub fn mean_issuable(&self) -> f64 {
        let cycles: u64 = self.tlp_histogram.iter().sum();
        if cycles == 0 {
            return 0.0;
        }
        let weighted: u64 = self.tlp_histogram.iter().enumerate().map(|(k, n)| k as u64 * n).sum();
        weighted as f64 / cycles as f64
    }

    /// Internal accounting helper: records `span` cycles with `issuable`
    /// issuable tasklets into the histogram and timeline accumulator.
    pub(crate) fn record_tlp_span(
        &mut self,
        issuable: usize,
        span: u64,
        window_acc: &mut (u64, u64),
    ) {
        if let Some(slot) = self.tlp_histogram.get_mut(issuable) {
            *slot += span;
        }
        // Timeline: accumulate (cycles, issuable-cycles) and flush whole
        // windows.
        let (ref mut filled, ref mut sum) = *window_acc;
        let mut remaining = span;
        while remaining > 0 {
            let take = remaining.min(self.tlp_window - *filled);
            *filled += take;
            *sum += take * issuable as u64;
            remaining -= take;
            if *filled == self.tlp_window {
                self.tlp_timeline.push(*sum as f32 / self.tlp_window as f32);
                *filled = 0;
                *sum = 0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> DpuRunStats {
        DpuRunStats {
            tlp_histogram: vec![0; 25],
            tlp_window: 10,
            per_tasklet_instructions: vec![0; 4],
            max_ipc: 1,
            freq_mhz: 350,
            interface_bytes_per_cycle: 2.0,
            ..DpuRunStats::default()
        }
    }

    #[test]
    fn instruction_counting_by_class() {
        let mut s = stats();
        s.count_instruction(InstrClass::Arithmetic, 0);
        s.count_instruction(InstrClass::Arithmetic, 1);
        s.count_instruction(InstrClass::Dma, 0);
        assert_eq!(s.instructions, 3);
        assert!((s.class_fraction(InstrClass::Arithmetic) - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(s.per_tasklet_instructions, vec![2, 1, 0, 0]);
    }

    #[test]
    fn ipc_and_utilization() {
        let mut s = stats();
        s.cycles = 100;
        s.instructions = 50;
        assert!((s.ipc() - 0.5).abs() < 1e-9);
        assert!((s.compute_utilization() - 0.5).abs() < 1e-9);
        s.dram.bytes_read = 100;
        // 100 bytes / (100 cycles × 2 B/cycle) = 0.5.
        assert!((s.mram_read_utilization() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn time_conversion() {
        let mut s = stats();
        s.cycles = 350;
        assert!((s.time_ns() - 1000.0).abs() < 1e-9, "350 cycles at 350 MHz = 1 µs");
    }

    #[test]
    fn breakdown_sums_to_one_when_attributed() {
        let mut s = stats();
        s.cycles = 10;
        s.active_cycles = 4;
        s.idle_memory = 3.0;
        s.idle_revolver = 2.0;
        s.idle_rf = 1.0;
        let (a, m, r, f) = s.breakdown();
        assert!((a + m + r + f - 1.0).abs() < 1e-9);
    }

    #[test]
    fn tlp_span_recording_and_windows() {
        let mut s = stats();
        let mut acc = (0, 0);
        s.record_tlp_span(4, 15, &mut acc); // fills one window (avg 4), 5 left
        s.record_tlp_span(0, 5, &mut acc); // completes second window: (5*4+5*0)/10 = 2
        assert_eq!(s.tlp_timeline, vec![4.0, 2.0]);
        assert_eq!(s.tlp_histogram[4], 15);
        assert_eq!(s.tlp_histogram[0], 5);
        assert!((s.mean_issuable() - 3.0).abs() < 1e-9);
    }
}
