//! Architectural state and functional (execute-at-issue) instruction
//! semantics, shared by the scalar and SIMT front-ends.

use pim_isa::{AddressSpace, Instruction, MemLayout, Operand, Reg, Width};

use crate::error::SimError;

/// What happened when an instruction executed, for the scheduler to act on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Effect {
    /// Fall through to the next instruction.
    Advance,
    /// Control transfer to an absolute instruction index.
    Jump(u32),
    /// `acquire` failed: the tasklet busy-waits (PC unchanged, instruction
    /// still counts as executed — it occupied a pipeline slot).
    AcquireRetry,
    /// A DMA transfer was initiated (functional copy already performed);
    /// the tasklet blocks until the memory engine completes it.
    Dma {
        /// MRAM byte address.
        mram: u32,
        /// Transfer length in bytes.
        len: u32,
        /// `true` for WRAM→MRAM (`sdma`).
        write: bool,
    },
    /// The tasklet terminated.
    Stop,
}

/// The DPU's architectural state: memories and per-tasklet register files.
#[derive(Debug, Clone)]
pub(crate) struct ArchState {
    /// Scratchpad contents. In cache-centric mode this is the *flat* data
    /// space (may exceed the physical 64 KB WRAM).
    pub wram: Vec<u8>,
    /// Per-bank DRAM contents.
    pub mram: Vec<u8>,
    /// The atomic bit region.
    pub atomic: Vec<bool>,
    /// Per-tasklet register files.
    pub regs: Vec<[u32; 24]>,
    /// Per-tasklet program counters.
    pub pc: Vec<u32>,
    /// Per-tasklet tasklet-id rebase (multi-tenant co-location: each tenant
    /// observes ids `0..n`). Zero for single-tenant runs.
    pub tid_base: Vec<u32>,
    /// Physical memory capacities (bounds checking).
    pub layout: MemLayout,
    /// Size of the load/store-addressable space (WRAM capacity in
    /// scratchpad mode; the flat-space size in cache-centric mode).
    pub ls_space: u32,
}

impl ArchState {
    pub(crate) fn new(layout: MemLayout, n_tasklets: u32, ls_space: u32) -> Self {
        ArchState {
            wram: vec![0; ls_space as usize],
            mram: vec![0; layout.mram_bytes as usize],
            atomic: vec![false; layout.atomic_bits as usize],
            regs: vec![[0; 24]; n_tasklets as usize],
            pc: vec![0; n_tasklets as usize],
            tid_base: vec![0; n_tasklets as usize],
            layout,
            ls_space,
        }
    }

    #[inline]
    pub(crate) fn reg(&self, tasklet: u32, r: Reg) -> u32 {
        self.regs[tasklet as usize][r.index() as usize]
    }

    #[inline]
    pub(crate) fn set_reg(&mut self, tasklet: u32, r: Reg, v: u32) {
        self.regs[tasklet as usize][r.index() as usize] = v;
    }

    #[inline]
    pub(crate) fn operand(&self, tasklet: u32, op: Operand) -> u32 {
        match op {
            Operand::Reg(r) => self.reg(tasklet, r),
            Operand::Imm(i) => i as u32,
        }
    }

    /// The effective address of a load/store for `tasklet`, if the
    /// instruction is one. Used by the cache-centric front-end to consult
    /// the data cache before execution.
    pub(crate) fn ls_addr(&self, tasklet: u32, instr: &Instruction) -> Option<(u32, bool)> {
        match *instr {
            Instruction::Load { base, offset, .. } => {
                Some((self.reg(tasklet, base).wrapping_add(offset as u32), false))
            }
            Instruction::Store { base, offset, .. } => {
                Some((self.reg(tasklet, base).wrapping_add(offset as u32), true))
            }
            _ => None,
        }
    }

    fn check_ls(&self, addr: u32, width: Width, tasklet: u32, pc: u32) -> Result<(), SimError> {
        let bytes = width.bytes();
        if !addr.is_multiple_of(bytes) {
            return Err(SimError::Unaligned { addr, align: bytes, tasklet, pc });
        }
        if u64::from(addr) + u64::from(bytes) > u64::from(self.ls_space) {
            return Err(SimError::OutOfBounds {
                space: AddressSpace::Wram,
                addr,
                len: bytes,
                tasklet,
                pc,
            });
        }
        Ok(())
    }

    /// Executes `instr` for `tasklet` (functional semantics only — no
    /// timing). The caller updates the PC according to the returned
    /// [`Effect`].
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] for out-of-bounds or misaligned accesses, bad
    /// DMA parameters, or runtime-computed atomic bits out of range.
    pub(crate) fn execute(
        &mut self,
        tasklet: u32,
        instr: &Instruction,
    ) -> Result<Effect, SimError> {
        let pc = self.pc[tasklet as usize];
        match *instr {
            Instruction::Nop => Ok(Effect::Advance),
            Instruction::Stop => Ok(Effect::Stop),
            Instruction::Alu { op, rd, ra, rb } => {
                let a = self.reg(tasklet, ra);
                let b = self.operand(tasklet, rb);
                self.set_reg(tasklet, rd, op.eval(a, b));
                Ok(Effect::Advance)
            }
            Instruction::Movi { rd, imm } => {
                self.set_reg(tasklet, rd, imm as u32);
                Ok(Effect::Advance)
            }
            Instruction::Tid { rd } => {
                let rebased = tasklet - self.tid_base[tasklet as usize];
                self.set_reg(tasklet, rd, rebased);
                Ok(Effect::Advance)
            }
            Instruction::Load { width, signed, rd, base, offset } => {
                let addr = self.reg(tasklet, base).wrapping_add(offset as u32);
                self.check_ls(addr, width, tasklet, pc)?;
                let a = addr as usize;
                let v = match (width, signed) {
                    (Width::Byte, false) => u32::from(self.wram[a]),
                    (Width::Byte, true) => self.wram[a] as i8 as i32 as u32,
                    (Width::Half, false) => {
                        u32::from(u16::from_le_bytes([self.wram[a], self.wram[a + 1]]))
                    }
                    (Width::Half, true) => {
                        u16::from_le_bytes([self.wram[a], self.wram[a + 1]]) as i16 as i32 as u32
                    }
                    (Width::Word, _) => u32::from_le_bytes([
                        self.wram[a],
                        self.wram[a + 1],
                        self.wram[a + 2],
                        self.wram[a + 3],
                    ]),
                };
                self.set_reg(tasklet, rd, v);
                Ok(Effect::Advance)
            }
            Instruction::Store { width, rs, base, offset } => {
                let addr = self.reg(tasklet, base).wrapping_add(offset as u32);
                self.check_ls(addr, width, tasklet, pc)?;
                let v = self.reg(tasklet, rs);
                let a = addr as usize;
                match width {
                    Width::Byte => self.wram[a] = v as u8,
                    Width::Half => self.wram[a..a + 2].copy_from_slice(&(v as u16).to_le_bytes()),
                    Width::Word => self.wram[a..a + 4].copy_from_slice(&v.to_le_bytes()),
                }
                Ok(Effect::Advance)
            }
            Instruction::Ldma { wram, mram, len } | Instruction::Sdma { wram, mram, len } => {
                let write = matches!(instr, Instruction::Sdma { .. });
                let w = self.reg(tasklet, wram);
                let m = self.reg(tasklet, mram);
                let l = self.operand(tasklet, len) as i32;
                if l <= 0 {
                    return Err(SimError::BadDmaLength { len: l, tasklet, pc });
                }
                let l = l as u32;
                if !w.is_multiple_of(4) || !m.is_multiple_of(4) || !l.is_multiple_of(4) {
                    let addr = if !w.is_multiple_of(4) { w } else { m };
                    return Err(SimError::Unaligned { addr, align: 4, tasklet, pc });
                }
                if u64::from(w) + u64::from(l) > u64::from(self.ls_space) {
                    return Err(SimError::OutOfBounds {
                        space: AddressSpace::Wram,
                        addr: w,
                        len: l,
                        tasklet,
                        pc,
                    });
                }
                if !self.layout.contains(AddressSpace::Mram, m, l) {
                    return Err(SimError::OutOfBounds {
                        space: AddressSpace::Mram,
                        addr: m,
                        len: l,
                        tasklet,
                        pc,
                    });
                }
                // Functional copy happens at issue; timing is modelled by
                // the memory engine while the tasklet blocks.
                let (wi, mi, li) = (w as usize, m as usize, l as usize);
                if write {
                    self.mram[mi..mi + li].copy_from_slice(&self.wram[wi..wi + li]);
                } else {
                    self.wram[wi..wi + li].copy_from_slice(&self.mram[mi..mi + li]);
                }
                Ok(Effect::Dma { mram: m, len: l, write })
            }
            Instruction::Branch { cond, ra, rb, target } => {
                let a = self.reg(tasklet, ra);
                let b = self.operand(tasklet, rb);
                if cond.eval(a, b) {
                    Ok(Effect::Jump(target))
                } else {
                    Ok(Effect::Advance)
                }
            }
            Instruction::Jump { target } => Ok(Effect::Jump(target)),
            Instruction::Jal { rd, target } => {
                self.set_reg(tasklet, rd, pc + 1);
                Ok(Effect::Jump(target))
            }
            Instruction::Jr { ra } => Ok(Effect::Jump(self.reg(tasklet, ra))),
            Instruction::Acquire { bit } => {
                let b = self.operand(tasklet, bit);
                let slot = self.atomic.get_mut(b as usize).ok_or(SimError::BadAtomicBit {
                    bit: b,
                    tasklet,
                    pc,
                })?;
                if *slot {
                    Ok(Effect::AcquireRetry)
                } else {
                    *slot = true;
                    Ok(Effect::Advance)
                }
            }
            Instruction::Release { bit } => {
                let b = self.operand(tasklet, bit);
                let slot = self.atomic.get_mut(b as usize).ok_or(SimError::BadAtomicBit {
                    bit: b,
                    tasklet,
                    pc,
                })?;
                *slot = false;
                Ok(Effect::Advance)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_isa::{AluOp, Cond};

    fn state() -> ArchState {
        ArchState::new(MemLayout::default(), 2, 64 * 1024)
    }

    #[test]
    fn alu_and_movi_update_registers() {
        let mut s = state();
        s.execute(0, &Instruction::Movi { rd: Reg::r(1), imm: 7 }).unwrap();
        s.execute(
            0,
            &Instruction::Alu { op: AluOp::Add, rd: Reg::r(2), ra: Reg::r(1), rb: Operand::Imm(5) },
        )
        .unwrap();
        assert_eq!(s.reg(0, Reg::r(2)), 12);
        // Tasklet 1's registers are untouched.
        assert_eq!(s.reg(1, Reg::r(2)), 0);
    }

    #[test]
    fn tid_reads_tasklet_id() {
        let mut s = state();
        s.execute(1, &Instruction::Tid { rd: Reg::r(0) }).unwrap();
        assert_eq!(s.reg(1, Reg::r(0)), 1);
    }

    #[test]
    fn loads_and_stores_round_trip_all_widths() {
        let mut s = state();
        s.set_reg(0, Reg::r(0), 100);
        s.set_reg(0, Reg::r(1), 0xAABB_CCDD);
        s.execute(
            0,
            &Instruction::Store { width: Width::Word, rs: Reg::r(1), base: Reg::r(0), offset: 0 },
        )
        .unwrap();
        s.execute(
            0,
            &Instruction::Load {
                width: Width::Word,
                signed: false,
                rd: Reg::r(2),
                base: Reg::r(0),
                offset: 0,
            },
        )
        .unwrap();
        assert_eq!(s.reg(0, Reg::r(2)), 0xAABB_CCDD);
        s.execute(
            0,
            &Instruction::Load {
                width: Width::Byte,
                signed: true,
                rd: Reg::r(3),
                base: Reg::r(0),
                offset: 3,
            },
        )
        .unwrap();
        assert_eq!(s.reg(0, Reg::r(3)), 0xAAu8 as i8 as i32 as u32);
        s.execute(
            0,
            &Instruction::Load {
                width: Width::Half,
                signed: false,
                rd: Reg::r(4),
                base: Reg::r(0),
                offset: 2,
            },
        )
        .unwrap();
        assert_eq!(s.reg(0, Reg::r(4)), 0xAABB);
    }

    #[test]
    fn misaligned_word_access_faults() {
        let mut s = state();
        s.set_reg(0, Reg::r(0), 2);
        let e = s
            .execute(
                0,
                &Instruction::Load {
                    width: Width::Word,
                    signed: false,
                    rd: Reg::r(1),
                    base: Reg::r(0),
                    offset: 0,
                },
            )
            .unwrap_err();
        assert!(matches!(e, SimError::Unaligned { addr: 2, align: 4, .. }));
    }

    #[test]
    fn out_of_bounds_store_faults() {
        let mut s = state();
        s.set_reg(0, Reg::r(0), 64 * 1024 - 2);
        let e = s
            .execute(
                0,
                &Instruction::Store {
                    width: Width::Word,
                    rs: Reg::r(1),
                    base: Reg::r(0),
                    offset: 0,
                },
            )
            .unwrap_err();
        // 64K-2 is not 4-aligned either, but bounds uses the aligned check
        // first only when aligned; here alignment fails first.
        assert!(matches!(e, SimError::Unaligned { .. } | SimError::OutOfBounds { .. }));
    }

    #[test]
    fn dma_copies_functionally_and_reports_effect() {
        let mut s = state();
        s.mram[1000..1008].copy_from_slice(&[1, 2, 3, 4, 5, 6, 7, 8]);
        s.set_reg(0, Reg::r(0), 16); // wram
        s.set_reg(0, Reg::r(1), 1000); // mram
        let eff = s
            .execute(
                0,
                &Instruction::Ldma { wram: Reg::r(0), mram: Reg::r(1), len: Operand::Imm(8) },
            )
            .unwrap();
        assert_eq!(eff, Effect::Dma { mram: 1000, len: 8, write: false });
        assert_eq!(&s.wram[16..24], &[1, 2, 3, 4, 5, 6, 7, 8]);
        // And back out with sdma.
        let eff = s
            .execute(
                0,
                &Instruction::Sdma { wram: Reg::r(0), mram: Reg::r(1), len: Operand::Imm(8) },
            )
            .unwrap();
        assert_eq!(eff, Effect::Dma { mram: 1000, len: 8, write: true });
    }

    #[test]
    fn dma_with_zero_length_faults() {
        let mut s = state();
        let e = s
            .execute(
                0,
                &Instruction::Ldma { wram: Reg::r(0), mram: Reg::r(1), len: Operand::Imm(0) },
            )
            .unwrap_err();
        assert!(matches!(e, SimError::BadDmaLength { len: 0, .. }));
    }

    #[test]
    fn branches_and_jumps() {
        let mut s = state();
        s.set_reg(0, Reg::r(0), 5);
        let taken = s
            .execute(
                0,
                &Instruction::Branch {
                    cond: Cond::Lt,
                    ra: Reg::r(0),
                    rb: Operand::Imm(10),
                    target: 42,
                },
            )
            .unwrap();
        assert_eq!(taken, Effect::Jump(42));
        let not_taken = s
            .execute(
                0,
                &Instruction::Branch {
                    cond: Cond::Geu,
                    ra: Reg::r(0),
                    rb: Operand::Imm(10),
                    target: 42,
                },
            )
            .unwrap();
        assert_eq!(not_taken, Effect::Advance);
        s.pc[0] = 7;
        let call = s.execute(0, &Instruction::Jal { rd: Reg::r(23), target: 99 }).unwrap();
        assert_eq!(call, Effect::Jump(99));
        assert_eq!(s.reg(0, Reg::r(23)), 8);
        let ret = s.execute(0, &Instruction::Jr { ra: Reg::r(23) }).unwrap();
        assert_eq!(ret, Effect::Jump(8));
    }

    #[test]
    fn acquire_release_semantics() {
        let mut s = state();
        assert_eq!(
            s.execute(0, &Instruction::Acquire { bit: Operand::Imm(3) }).unwrap(),
            Effect::Advance
        );
        // Second acquire (other tasklet) busy-waits.
        assert_eq!(
            s.execute(1, &Instruction::Acquire { bit: Operand::Imm(3) }).unwrap(),
            Effect::AcquireRetry
        );
        s.execute(0, &Instruction::Release { bit: Operand::Imm(3) }).unwrap();
        assert_eq!(
            s.execute(1, &Instruction::Acquire { bit: Operand::Imm(3) }).unwrap(),
            Effect::Advance
        );
    }

    #[test]
    fn runtime_atomic_bit_out_of_range_faults() {
        let mut s = state();
        s.set_reg(0, Reg::r(0), 999);
        let e = s.execute(0, &Instruction::Acquire { bit: Operand::Reg(Reg::r(0)) }).unwrap_err();
        assert!(matches!(e, SimError::BadAtomicBit { bit: 999, .. }));
    }
}
