//! Multi-tenant co-location (paper §V-C, "transparency").
//!
//! The paper argues that UPMEM's scratchpad-centric programming model makes
//! transparent multi-tenancy impossible: co-located kernels both allocate
//! the same physical WRAM, so running two programs on one DPU "requires
//! non-trivial amount of changes to both co-located programs". This module
//! implements exactly that machinery so the claim can be *measured*:
//!
//! * tenants must be built with disjoint WRAM/atomic partitions
//!   ([`pim_asm::KernelBuilder::with_partition`] — the intrusive program
//!   change the paper decries);
//! * [`colocate`] validates the partitions, concatenates the instruction
//!   streams (shifting control-flow targets), and produces per-tasklet
//!   entry points and tasklet-id rebasing so each tenant still observes
//!   ids `0..n`;
//! * under the scratchpad model the combined WRAM footprint must fit 64 KB
//!   — [`colocate`] fails with [`ColocateError::WramOverflow`] when it
//!   does not, reproducing the paper's negative result; under the
//!   cache-centric model the flat space absorbs both tenants.

use std::error::Error;
use std::fmt;

use pim_asm::DpuProgram;
use pim_isa::{Instruction, MemLayout};

/// One co-located tenant: a partition-built program plus the tasklets it
/// receives.
#[derive(Debug, Clone, Copy)]
pub struct Tenant<'a> {
    /// The tenant's program (built with a disjoint WRAM/atomic partition).
    pub program: &'a DpuProgram,
    /// Number of hardware tasklets assigned to this tenant.
    pub n_tasklets: u32,
}

/// Why two programs cannot share a DPU.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColocateError {
    /// Two tenants' WRAM images overlap (they were not partition-built).
    WramOverlap {
        /// First tenant index.
        a: usize,
        /// Second tenant index.
        b: usize,
    },
    /// The combined WRAM footprint exceeds the physical scratchpad — the
    /// paper's §V-C transparency failure.
    WramOverflow {
        /// Combined footprint in bytes.
        bytes: u32,
        /// Physical WRAM capacity.
        capacity: u32,
    },
    /// Two tenants' atomic-bit ranges overlap.
    AtomicOverlap {
        /// First tenant index.
        a: usize,
        /// Second tenant index.
        b: usize,
    },
    /// The merged instruction streams exceed IRAM.
    IramOverflow {
        /// Combined instruction count.
        instrs: usize,
        /// IRAM capacity in instructions.
        capacity: u32,
    },
    /// More tasklets were assigned than the hardware provides.
    TooManyTasklets {
        /// Combined tasklet count.
        total: u32,
    },
}

impl fmt::Display for ColocateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColocateError::WramOverlap { a, b } => {
                write!(f, "tenants {a} and {b} overlap in WRAM (not partition-built)")
            }
            ColocateError::WramOverflow { bytes, capacity } => write!(
                f,
                "co-located WRAM footprint of {bytes} bytes exceeds the {capacity}-byte scratchpad"
            ),
            ColocateError::AtomicOverlap { a, b } => {
                write!(f, "tenants {a} and {b} overlap in the atomic region")
            }
            ColocateError::IramOverflow { instrs, capacity } => {
                write!(f, "merged text of {instrs} instructions exceeds IRAM capacity {capacity}")
            }
            ColocateError::TooManyTasklets { total } => {
                write!(f, "{total} tasklets assigned, hardware has {}", crate::MAX_TASKLETS)
            }
        }
    }
}

impl Error for ColocateError {}

/// A merged multi-tenant image ready for [`crate::Dpu::load_colocated`].
#[derive(Debug, Clone)]
pub struct Colocated {
    /// The merged program (concatenated text, union WRAM image).
    pub program: DpuProgram,
    /// Per-tasklet entry instruction index.
    pub entry: Vec<u32>,
    /// Per-tasklet tasklet-id rebase (subtracted by `tid`).
    pub tid_base: Vec<u32>,
    /// Per-tasklet owning tenant.
    pub tenant_of: Vec<usize>,
    /// Per-tenant tasklet ranges, for reading per-tenant statistics.
    pub tasklets_of: Vec<std::ops::Range<usize>>,
}

impl Colocated {
    /// Total tasklets across tenants.
    #[must_use]
    pub fn n_tasklets(&self) -> u32 {
        self.entry.len() as u32
    }

    /// Per-tenant finish cycle: the max of `tasklet_stop_cycle` (from
    /// [`crate::DpuRunStats`]) over each tenant's tasklet range. A tenant
    /// with no tasklets (or stop cycles missing from the slice) finishes
    /// at cycle 0.
    #[must_use]
    pub fn tenant_finish_cycles(&self, tasklet_stop_cycle: &[u64]) -> Vec<u64> {
        self.tasklets_of
            .iter()
            .map(|r| {
                r.clone().filter_map(|t| tasklet_stop_cycle.get(t)).copied().max().unwrap_or(0)
            })
            .collect()
    }
}

/// Merges partition-built tenants into one loadable image.
///
/// `allow_wram_overflow` lifts the scratchpad-capacity check for the
/// cache-centric memory model, whose flat space absorbs any footprint —
/// the paper's proposed fix for transparent multi-tenancy.
///
/// # Errors
///
/// Returns a [`ColocateError`] when the tenants cannot share the DPU.
pub fn colocate(
    tenants: &[Tenant<'_>],
    layout: &MemLayout,
    allow_wram_overflow: bool,
) -> Result<Colocated, ColocateError> {
    assert!(!tenants.is_empty(), "colocate needs at least one tenant");
    let total_tasklets: u32 = tenants.iter().map(|t| t.n_tasklets).sum();
    if total_tasklets > crate::MAX_TASKLETS {
        return Err(ColocateError::TooManyTasklets { total: total_tasklets });
    }
    // Validate WRAM and atomic partition disjointness, pairwise.
    for (a, ta) in tenants.iter().enumerate() {
        for (b, tb) in tenants.iter().enumerate().skip(a + 1) {
            let (a0, a1) = (ta.program.wram_base, ta.program.wram_bytes());
            let (b0, b1) = (tb.program.wram_base, tb.program.wram_bytes());
            if a0 < b1 && b0 < a1 && a1 > a0 && b1 > b0 {
                return Err(ColocateError::WramOverlap { a, b });
            }
            let (m0, m1) =
                (ta.program.atomic_base, ta.program.atomic_base + ta.program.atomic_bits_used);
            let (n0, n1) =
                (tb.program.atomic_base, tb.program.atomic_base + tb.program.atomic_bits_used);
            if m0 < n1 && n0 < m1 && m1 > m0 && n1 > n0 {
                return Err(ColocateError::AtomicOverlap { a, b });
            }
        }
    }
    let footprint = tenants.iter().map(|t| t.program.wram_bytes()).max().unwrap_or(0);
    if !allow_wram_overflow && footprint > layout.wram_bytes {
        return Err(ColocateError::WramOverflow { bytes: footprint, capacity: layout.wram_bytes });
    }
    let total_instrs: usize = tenants.iter().map(|t| t.program.instrs.len()).sum();
    if total_instrs as u32 > layout.iram_instrs() {
        return Err(ColocateError::IramOverflow {
            instrs: total_instrs,
            capacity: layout.iram_instrs(),
        });
    }
    // Merge: concatenate text (shifting targets), union the WRAM images,
    // prefix symbols with `t{i}.`.
    let mut program = DpuProgram {
        wram_init: vec![0; footprint as usize],
        wram_base: 0,
        ..DpuProgram::default()
    };
    let mut entry = Vec::with_capacity(total_tasklets as usize);
    let mut tid_base = Vec::with_capacity(total_tasklets as usize);
    let mut tenant_of = Vec::with_capacity(total_tasklets as usize);
    let mut tasklets_of = Vec::with_capacity(tenants.len());
    let mut next_tid = 0u32;
    for (i, t) in tenants.iter().enumerate() {
        let off = program.instrs.len() as u32;
        for instr in &t.program.instrs {
            program.instrs.push(match *instr {
                Instruction::Branch { cond, ra, rb, target } => {
                    Instruction::Branch { cond, ra, rb, target: target + off }
                }
                Instruction::Jump { target } => Instruction::Jump { target: target + off },
                Instruction::Jal { rd, target } => Instruction::Jal { rd, target: target + off },
                other => other,
            });
        }
        let base = t.program.wram_base as usize;
        program.wram_init[base..base + t.program.wram_init.len()]
            .copy_from_slice(&t.program.wram_init);
        for (name, sym) in &t.program.symbols {
            program.symbols.insert(format!("t{i}.{name}"), *sym);
        }
        program.heap_base = program.heap_base.max(t.program.heap_base);
        tasklets_of.push(next_tid as usize..(next_tid + t.n_tasklets) as usize);
        for _ in 0..t.n_tasklets {
            entry.push(off);
            tid_base.push(next_tid);
        }
        tenant_of.extend(std::iter::repeat_n(i, t.n_tasklets as usize));
        next_tid += t.n_tasklets;
    }
    Ok(Colocated { program, entry, tid_base, tenant_of, tasklets_of })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_asm::KernelBuilder;

    fn tenant_kernel(base: u32, atomic: u32, marker: i32) -> DpuProgram {
        let mut k = KernelBuilder::with_partition(base, atomic);
        let out = k.global_zeroed("out", 4);
        let bit = k.alloc_atomic_bit();
        let [t, p] = k.regs(["t", "p"]);
        k.acquire(bit as i32);
        k.tid(t);
        k.add(t, t, marker);
        k.movi(p, out as i32);
        k.sw(t, p, 0);
        k.release(bit as i32);
        k.stop();
        k.build().unwrap()
    }

    #[test]
    fn colocate_merges_disjoint_tenants() {
        let a = tenant_kernel(0, 0, 100);
        let b = tenant_kernel(1024, 8, 200);
        let merged = colocate(
            &[Tenant { program: &a, n_tasklets: 2 }, Tenant { program: &b, n_tasklets: 3 }],
            &MemLayout::default(),
            false,
        )
        .unwrap();
        assert_eq!(merged.n_tasklets(), 5);
        assert_eq!(merged.entry[0], 0);
        assert_eq!(merged.entry[2], a.instrs.len() as u32);
        assert_eq!(merged.tid_base, vec![0, 0, 2, 2, 2]);
        assert_eq!(merged.tenant_of, vec![0, 0, 1, 1, 1]);
        assert!(merged.program.symbol("t0.out").is_some());
        assert!(merged.program.symbol("t1.out").is_some());
        assert_ne!(
            merged.program.symbol("t0.out").unwrap().addr,
            merged.program.symbol("t1.out").unwrap().addr
        );
    }

    #[test]
    fn overlapping_wram_is_rejected() {
        let a = tenant_kernel(0, 0, 1);
        let b = tenant_kernel(0, 8, 2); // same partition!
        let err = colocate(
            &[Tenant { program: &a, n_tasklets: 1 }, Tenant { program: &b, n_tasklets: 1 }],
            &MemLayout::default(),
            false,
        )
        .unwrap_err();
        assert_eq!(err, ColocateError::WramOverlap { a: 0, b: 1 });
    }

    #[test]
    fn overlapping_atomics_are_rejected() {
        let a = tenant_kernel(0, 0, 1);
        let b = tenant_kernel(1024, 0, 2); // same atomic bits
        let err = colocate(
            &[Tenant { program: &a, n_tasklets: 1 }, Tenant { program: &b, n_tasklets: 1 }],
            &MemLayout::default(),
            false,
        )
        .unwrap_err();
        assert_eq!(err, ColocateError::AtomicOverlap { a: 0, b: 1 });
    }

    #[test]
    fn wram_overflow_is_the_papers_negative_result() {
        // Tenant A keeps a large working set; tenant B's partition must
        // start past it and spills beyond the 64 KB scratchpad. Building B
        // at all requires the relaxed linker (the flexible-linker feature
        // of §III-A); co-locating under scratchpads must still fail.
        let a = tenant_kernel(0, 0, 1);
        let b = {
            let mut k = KernelBuilder::with_partition(60 * 1024, 8);
            let buf = k.global_zeroed("buf", 8 * 1024); // spills past 64 KB
            let p = k.reg("p");
            k.movi(p, buf as i32);
            k.stop();
            k.build_with(&pim_asm::LinkOptions {
                allow_wram_overflow: true,
                ..pim_asm::LinkOptions::default()
            })
            .unwrap()
        };
        let err = colocate(
            &[Tenant { program: &a, n_tasklets: 1 }, Tenant { program: &b, n_tasklets: 1 }],
            &MemLayout::default(),
            false,
        )
        .unwrap_err();
        assert!(matches!(err, ColocateError::WramOverflow { .. }));
        // The cache-centric escape hatch: the flat space absorbs it.
        assert!(colocate(
            &[Tenant { program: &a, n_tasklets: 1 }, Tenant { program: &b, n_tasklets: 1 }],
            &MemLayout::default(),
            true,
        )
        .is_ok());
    }

    #[test]
    fn too_many_tasklets_rejected() {
        let a = tenant_kernel(0, 0, 1);
        let b = tenant_kernel(1024, 8, 2);
        let err = colocate(
            &[Tenant { program: &a, n_tasklets: 16 }, Tenant { program: &b, n_tasklets: 16 }],
            &MemLayout::default(),
            false,
        )
        .unwrap_err();
        assert_eq!(err, ColocateError::TooManyTasklets { total: 32 });
    }

    #[test]
    fn control_flow_targets_are_shifted() {
        let mk = |base: u32, atomic: u32| {
            let mut k = KernelBuilder::with_partition(base, atomic);
            let r = k.reg("r");
            k.movi(r, 3);
            let top = k.label_here("top");
            k.sub(r, r, 1);
            k.branch(pim_isa::Cond::Ne, r, 0, &top);
            k.stop();
            k.build().unwrap()
        };
        let a = mk(0, 0);
        let b = mk(1024, 0);
        let merged = colocate(
            &[Tenant { program: &a, n_tasklets: 1 }, Tenant { program: &b, n_tasklets: 1 }],
            &MemLayout::default(),
            false,
        )
        .unwrap();
        let off = a.instrs.len();
        match merged.program.instrs[off + 2] {
            Instruction::Branch { target, .. } => {
                assert_eq!(target as usize, off + 1, "tenant 1's loop target must shift")
            }
            ref other => panic!("expected branch, got {other}"),
        }
    }
}
