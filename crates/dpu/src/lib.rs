//! # pim-dpu
//!
//! The cycle-level DPU performance simulator at the heart of the framework
//! — the Rust counterpart of the paper's PIMulator backend.
//!
//! The baseline model reproduces UPMEM's DPU microarchitecture as the paper
//! characterizes it (§II-A, Table I):
//!
//! * a 14-stage in-order pipeline with **fine-grained multithreading** over
//!   up to 24 tasklets;
//! * the **revolver** scheduling constraint — consecutive instructions of
//!   the same tasklet dispatch at least 11 cycles apart, which is how the
//!   hardware avoids forwarding/interlock circuitry;
//! * the **even/odd register-file** structural hazard — two same-bank
//!   source operands cost an extra issue slot;
//! * **scratchpad-centric** memory: single-cycle WRAM loads/stores, with
//!   MRAM reachable only through blocking DMA transfers that flow through a
//!   cycle-level DDR4 bank and a fixed-rate DMA interface;
//! * cycle-exact **stall attribution** (memory / revolver / RF), issuable-
//!   thread tracking in space and time, and instruction-mix accounting —
//!   the measurements behind the paper's Figures 5–9.
//!
//! Every case-study extension of the paper is a configuration knob:
//! [`IlpFeatures`] (D/R/S/F of Fig 12), [`SimtConfig`] (§V-A),
//! [`MemoryMode::Cached`] (§V-D), MMU via [`DpuConfig::with_paper_mmu`]
//! (§V-C), and MRAM-bandwidth scaling via
//! [`DpuConfig::with_mram_bw_scale`] (Fig 13).
//!
//! # Example
//!
//! ```
//! use pim_asm::KernelBuilder;
//! use pim_dpu::{Dpu, DpuConfig};
//! use pim_isa::Cond;
//!
//! // A kernel where each tasklet atomically increments a shared counter.
//! let mut k = KernelBuilder::new();
//! let addr = k.global_zeroed("counter", 4);
//! let [p, v] = k.regs(["p", "v"]);
//! k.acquire(0);
//! k.movi(p, addr as i32);
//! k.lw(v, p, 0);
//! k.add(v, v, 1);
//! k.sw(v, p, 0);
//! k.release(0);
//! k.stop();
//! let program = k.build().unwrap();
//!
//! let mut dpu = Dpu::new(DpuConfig::paper_baseline(8));
//! dpu.load_program(&program).unwrap();
//! let stats = dpu.launch().unwrap();
//! let out = dpu.read_wram_symbol("counter");
//! assert_eq!(i32::from_le_bytes(out.try_into().unwrap()), 8);
//! assert!(stats.cycles > 0);
//! ```

pub mod batch;
mod compiled;
pub mod config;
pub mod dpu;
pub mod error;
mod exec;
pub mod fault;
mod mem;
#[cfg(feature = "mutation-hooks")]
pub mod mutation;
mod simt;
pub mod stats;
pub mod tenancy;

pub use batch::{run_batch, soa_eligible};
pub use config::{
    DmaConfig, DpuConfig, ExecTier, IlpFeatures, MemoryMode, SimtConfig, MAX_TASKLETS,
};
pub use dpu::Dpu;
pub use error::SimError;
pub use fault::FaultKind;
pub use stats::{DpuRunStats, IdleCause, TraceEntry};
pub use tenancy::{colocate, ColocateError, Colocated, Tenant};
