//! The simulated DPU: program/data loading, launch, and the cycle-level
//! scalar pipeline front-end (the SIMT front-end lives in `crate::simt`).

use std::sync::Arc;

use pim_asm::DpuProgram;
use pim_cache::Cache;
use pim_isa::{AddressSpace, InstrClass, Instruction};
use pim_mmu::{Mmu, PageTable};
use pim_trace::{DpuTrace, NullSink, RingSink, StallCause, TraceEvent, TraceSink};

use crate::compiled::{CompiledKernel, F_LOAD, F_STORE};
use crate::config::{DpuConfig, ExecTier, MemoryMode};
use crate::error::SimError;
use crate::exec::{ArchState, Effect};
use crate::mem::{MemEngine, Segment};
use crate::stats::DpuRunStats;

/// Execution status of one tasklet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TaskletStatus {
    /// Schedulable (possibly gated by the revolver window or a dependence).
    Ready,
    /// Waiting on the memory engine (DMA, cache fill, instruction fill).
    Blocked,
    /// Executed `stop`.
    Stopped,
}

/// A single simulated DPU.
///
/// Typical host-side flow (mirroring the UPMEM host API the paper shows in
/// Fig 2): construct, [`Dpu::load_program`], stage inputs with
/// [`Dpu::write_mram`] / [`Dpu::write_wram_symbol`], [`Dpu::launch`], then
/// read results back with [`Dpu::read_mram`].
///
/// # Example
///
/// ```
/// use pim_asm::assemble;
/// use pim_dpu::{Dpu, DpuConfig};
///
/// let program = assemble(
///     ".text\n movi r0, 41\n add r0, r0, 1\n stop\n",
/// ).unwrap();
/// let mut dpu = Dpu::new(DpuConfig::paper_baseline(1));
/// dpu.load_program(&program).unwrap();
/// let stats = dpu.launch().unwrap();
/// assert_eq!(stats.instructions, 3);
/// ```
#[derive(Debug)]
pub struct Dpu {
    pub(crate) cfg: DpuConfig,
    pub(crate) program: Option<DpuProgram>,
    pub(crate) state: ArchState,
    /// Per-tasklet entry instruction index (multi-tenant co-location).
    pub(crate) entry: Vec<u32>,
    /// Per-tasklet tasklet-id rebase (multi-tenant co-location).
    pub(crate) tid_base: Vec<u32>,
    /// Structured event ring, present when `cfg.event_trace_capacity > 0`.
    trace: Option<RingSink>,
    /// One-shot injected fault consumed by the next launch (see
    /// [`crate::fault`]); `None` in normal operation.
    armed_fault: Option<crate::fault::FaultKind>,
    /// Launch-time artifacts (decoded side tables + block-compiled op
    /// table), built on first use after [`Dpu::load_program`] and reused
    /// across every relaunch of the same program. Shared with SoA batch
    /// groups through the `Arc`.
    kernel_cache: Option<Arc<CompiledKernel>>,
}

impl Dpu {
    /// Creates a DPU with zeroed memories.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is internally inconsistent (see
    /// [`DpuConfig::assert_valid`]).
    #[must_use]
    pub fn new(cfg: DpuConfig) -> Self {
        cfg.assert_valid();
        let ls_space = cfg.layout.wram_bytes;
        let state = ArchState::new(cfg.layout, cfg.n_tasklets, ls_space);
        let trace = (cfg.event_trace_capacity > 0).then(|| RingSink::new(cfg.event_trace_capacity));
        Dpu {
            cfg,
            program: None,
            state,
            entry: Vec::new(),
            tid_base: Vec::new(),
            trace,
            armed_fault: None,
            kernel_cache: None,
        }
    }

    /// Arms a one-shot injected fault: the next launch through a host
    /// launch path fails with the kind's typed [`SimError`] instead of
    /// running the kernel. Overwrites any previously armed fault.
    pub fn arm_fault(&mut self, kind: crate::fault::FaultKind) {
        self.armed_fault = Some(kind);
    }

    /// Takes (and disarms) the armed fault, if any. The host launch
    /// boundary calls this before dispatching a kernel; faults are
    /// one-shot so a retry of the same DPU can succeed.
    pub fn take_armed_fault(&mut self) -> Option<crate::fault::FaultKind> {
        self.armed_fault.take()
    }

    /// The currently armed fault, if any (not consumed).
    #[must_use]
    pub fn armed_fault(&self) -> Option<crate::fault::FaultKind> {
        self.armed_fault
    }

    /// Takes the structured events retained by the last launch, or `None`
    /// when event tracing is disabled (`event_trace_capacity == 0`).
    pub fn take_trace(&mut self) -> Option<DpuTrace> {
        self.trace.as_mut().map(RingSink::take)
    }

    /// The DPU's configuration.
    #[must_use]
    pub fn config(&self) -> &DpuConfig {
        &self.cfg
    }

    /// The loaded program, if any.
    #[must_use]
    pub fn program(&self) -> Option<&DpuProgram> {
        self.program.as_ref()
    }

    /// Loads a program: instructions into IRAM and the initial data image
    /// into WRAM (or, in cache-centric mode, into the flat data space).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OutOfBounds`] if the instruction stream exceeds
    /// IRAM or the data image does not fit the load/store-addressable space.
    pub fn load_program(&mut self, program: &DpuProgram) -> Result<(), SimError> {
        let cached = matches!(self.cfg.memory_mode, MemoryMode::Cached { .. });
        if !cached && program.instrs.len() as u32 > self.cfg.layout.iram_instrs() {
            // The hardware linker would refuse this; hand-built programs
            // can reach here without passing `DpuProgram::validate`. The
            // cache-centric model is exempt: its I-cache turns IRAM into a
            // cache over MRAM-resident text.
            return Err(SimError::OutOfBounds {
                space: AddressSpace::Iram,
                addr: 0,
                len: program.iram_bytes(),
                tasklet: 0,
                pc: 0,
            });
        }
        if let MemoryMode::Cached { .. } = self.cfg.memory_mode {
            // The flat space grows to cover the image.
            let need = program.wram_bytes().max(self.cfg.layout.wram_bytes);
            self.ensure_flat_space(need);
        }
        let base = program.wram_base as usize;
        let end = base + program.wram_init.len();
        if end > self.state.wram.len() {
            return Err(SimError::OutOfBounds {
                space: AddressSpace::Wram,
                addr: program.wram_base,
                len: program.wram_init.len() as u32,
                tasklet: 0,
                pc: 0,
            });
        }
        self.state.wram[base..end].copy_from_slice(&program.wram_init);
        self.program = Some(program.clone());
        self.entry.clear();
        self.tid_base.clear();
        self.kernel_cache = None;
        Ok(())
    }

    /// The launch-time artifacts for the loaded program — decoded side
    /// tables and the block-compiled op table — building them on first use
    /// and reusing the cached `Arc` on every relaunch (chained multi-launch
    /// kernels compile once per [`Dpu::load_program`], not once per
    /// launch).
    ///
    /// # Panics
    ///
    /// Panics if no program is loaded (callers check).
    pub(crate) fn kernel_artifacts(&mut self) -> Arc<CompiledKernel> {
        if let Some(k) = &self.kernel_cache {
            return Arc::clone(k);
        }
        let program = self.program.as_ref().expect("program loaded");
        let k = Arc::new(CompiledKernel::compile(&program.instrs));
        self.kernel_cache = Some(Arc::clone(&k));
        k
    }

    /// Loads a merged multi-tenant image (paper §V-C): each tasklet starts
    /// at its tenant's entry point and observes tenant-local tasklet ids.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OutOfBounds`] if the merged data image does not
    /// fit the load/store space.
    ///
    /// # Panics
    ///
    /// Panics if the co-location's tasklet count differs from this DPU's
    /// configured `n_tasklets`.
    pub fn load_colocated(
        &mut self,
        colocated: &crate::tenancy::Colocated,
    ) -> Result<(), SimError> {
        assert_eq!(
            colocated.n_tasklets(),
            self.cfg.n_tasklets,
            "co-location tasklet count must match the DPU configuration"
        );
        self.load_program(&colocated.program)?;
        self.entry = colocated.entry.clone();
        self.tid_base = colocated.tid_base.clone();
        Ok(())
    }

    /// Grows the flat load/store space (cache-centric mode) to at least
    /// `bytes`, rounded up to a cache line.
    pub(crate) fn ensure_flat_space(&mut self, bytes: u32) {
        let rounded = bytes.div_ceil(64) * 64;
        if (self.state.wram.len() as u32) < rounded {
            self.state.wram.resize(rounded as usize, 0);
            self.state.ls_space = rounded;
        }
    }

    /// Copies bytes into MRAM.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds MRAM.
    pub fn write_mram(&mut self, addr: u32, data: &[u8]) {
        let a = addr as usize;
        self.state.mram[a..a + data.len()].copy_from_slice(data);
    }

    /// Reads bytes from MRAM.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds MRAM.
    #[must_use]
    pub fn read_mram(&self, addr: u32, len: u32) -> Vec<u8> {
        let a = addr as usize;
        self.state.mram[a..a + len as usize].to_vec()
    }

    /// Reads bytes from MRAM into a reused buffer (cleared first) —
    /// the allocation-free counterpart of [`Dpu::read_mram`] for host-side
    /// readback loops.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds MRAM.
    pub fn read_mram_into(&self, addr: u32, len: u32, out: &mut Vec<u8>) {
        let a = addr as usize;
        out.clear();
        out.extend_from_slice(&self.state.mram[a..a + len as usize]);
    }

    /// Copies bytes into the load/store space (WRAM, or the flat space in
    /// cache-centric mode, growing it as needed).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds WRAM in scratchpad mode.
    pub fn write_wram(&mut self, addr: u32, data: &[u8]) {
        if let MemoryMode::Cached { .. } = self.cfg.memory_mode {
            self.ensure_flat_space(addr + data.len() as u32);
        }
        let a = addr as usize;
        self.state.wram[a..a + data.len()].copy_from_slice(data);
    }

    /// Reads bytes from the load/store space.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    #[must_use]
    pub fn read_wram(&self, addr: u32, len: u32) -> Vec<u8> {
        let a = addr as usize;
        self.state.wram[a..a + len as usize].to_vec()
    }

    /// Writes into a named WRAM symbol of the loaded program (the host-side
    /// `dpu_push_xfer(..., "symbol", ...)` of the SDK).
    ///
    /// # Panics
    ///
    /// Panics if no program is loaded, the symbol is unknown, or `data`
    /// exceeds the symbol's size.
    pub fn write_wram_symbol(&mut self, name: &str, data: &[u8]) {
        let sym = *self
            .program
            .as_ref()
            .expect("no program loaded")
            .symbol(name)
            .unwrap_or_else(|| panic!("unknown WRAM symbol `{name}`"));
        assert!(
            data.len() as u32 <= sym.size,
            "{} bytes exceed symbol `{name}` of {} bytes",
            data.len(),
            sym.size
        );
        self.write_wram(sym.addr, data);
    }

    /// Reads a named WRAM symbol of the loaded program.
    ///
    /// # Panics
    ///
    /// Panics if no program is loaded or the symbol is unknown.
    #[must_use]
    pub fn read_wram_symbol(&self, name: &str) -> Vec<u8> {
        let sym = *self
            .program
            .as_ref()
            .expect("no program loaded")
            .symbol(name)
            .unwrap_or_else(|| panic!("unknown WRAM symbol `{name}`"));
        self.read_wram(sym.addr, sym.size)
    }

    /// Reads a named WRAM symbol into a reused buffer (cleared first) —
    /// the allocation-free counterpart of [`Dpu::read_wram_symbol`].
    ///
    /// # Panics
    ///
    /// Panics if no program is loaded or the symbol is unknown.
    pub fn read_wram_symbol_into(&self, name: &str, out: &mut Vec<u8>) {
        let sym = *self
            .program
            .as_ref()
            .expect("no program loaded")
            .symbol(name)
            .unwrap_or_else(|| panic!("unknown WRAM symbol `{name}`"));
        let a = sym.addr as usize;
        out.clear();
        out.extend_from_slice(&self.state.wram[a..a + sym.size as usize]);
    }

    /// Runs the loaded kernel to completion on `n_tasklets` tasklets and
    /// returns the run's statistics.
    ///
    /// Tasklet register files, PCs, and the atomic region are reset; WRAM
    /// and MRAM contents persist from before the launch (the host stages
    /// inputs there).
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] if the kernel faults or exceeds the cycle
    /// limit.
    pub fn launch(&mut self) -> Result<DpuRunStats, SimError> {
        if self.program.is_none() {
            return Err(SimError::NoProgram);
        }
        let mut mem = self.reset_launch_state();
        // The oracle snapshot must see the post-reset, pre-run state.
        let oracle = self.build_oracle();
        let result = if let Some(mut ring) = self.trace.take() {
            mem.set_row_event_recording(true);
            let r = if self.cfg.simt.is_some() {
                crate::simt::run_simt(self, mem, &mut ring)
            } else {
                self.run_scalar(mem, &mut ring)
            };
            self.trace = Some(ring);
            r
        } else {
            let mut sink = NullSink;
            if self.cfg.simt.is_some() {
                crate::simt::run_simt(self, mem, &mut sink)
            } else {
                self.run_scalar(mem, &mut sink)
            }
        };
        if result.is_ok() {
            if let Some(oracle) = oracle {
                self.check_against_oracle(oracle)?;
            }
        }
        result
    }

    /// Resets per-launch architectural state (register files, PCs, atomic
    /// bits) and builds a fresh memory engine for the run. Shared between
    /// [`Dpu::launch`] and the batched SoA executor (`crate::batch`), which
    /// resets every member of a batch before stepping any of them.
    pub(crate) fn reset_launch_state(&mut self) -> MemEngine {
        let n = self.cfg.n_tasklets as usize;
        self.state.regs = vec![[0; 24]; n];
        self.state.pc = (0..n).map(|t| self.entry.get(t).copied().unwrap_or(0)).collect();
        self.state.tid_base = (0..n).map(|t| self.tid_base.get(t).copied().unwrap_or(0)).collect();
        for b in &mut self.state.atomic {
            *b = false;
        }
        let mmu = self.cfg.mmu.map(|mc| {
            let pages = self.cfg.layout.mram_bytes / mc.page_bytes;
            Mmu::new(mc, PageTable::identity(pages))
        });
        MemEngine::new(
            self.cfg.dram.scaled(self.cfg.mram_bw_scale),
            mmu,
            self.cfg.dram_per_core_ratio(),
            self.cfg.interface_rate(),
            self.cfg.dma.setup_cycles,
        )
    }

    /// Snapshots the pre-run state into a `pim-ref` interpreter when the
    /// oracle check is enabled (scratchpad-centric runs only: the oracle
    /// does not model the flat cached space).
    pub(crate) fn build_oracle(&self) -> Option<pim_ref::RefInterpreter> {
        if !self.cfg.oracle_check || !matches!(self.cfg.memory_mode, MemoryMode::Scratchpad) {
            return None;
        }
        let program = self.program.as_ref().expect("checked in launch");
        let mut oracle =
            pim_ref::RefInterpreter::with_layout(program, self.cfg.layout, self.cfg.n_tasklets);
        oracle.wram.copy_from_slice(&self.state.wram);
        oracle.mram.copy_from_slice(&self.state.mram);
        for t in 0..self.cfg.n_tasklets as usize {
            oracle.set_entry(t as u32, self.state.pc[t], self.state.tid_base[t]);
        }
        Some(oracle)
    }

    /// Runs the oracle to completion and compares the final WRAM/MRAM state
    /// byte for byte against the simulator's.
    pub(crate) fn check_against_oracle(
        &self,
        mut oracle: pim_ref::RefInterpreter,
    ) -> Result<(), SimError> {
        // The oracle interprets one instruction per step; any kernel that
        // finishes under the cycle limit finishes well under this budget.
        let budget = self.cfg.max_cycles.min(500_000_000);
        oracle
            .run(budget)
            .map_err(|detail| SimError::OracleDivergence { detail })
            .map(|_steps| ())?;
        let diff = |name: &str, got: &[u8], want: &[u8]| -> Result<(), SimError> {
            match got.iter().zip(want).position(|(g, w)| g != w) {
                None => Ok(()),
                Some(at) => Err(SimError::OracleDivergence {
                    detail: format!(
                        "{name} diverges at {at:#x}: simulator {:#04x}, oracle {:#04x}",
                        got[at], want[at]
                    ),
                }),
            }
        };
        diff("WRAM", &self.state.wram, &oracle.wram)?;
        diff("MRAM", &self.state.mram, &oracle.mram)
    }

    /// Fresh statistics shell for a run.
    pub(crate) fn new_stats(&self) -> DpuRunStats {
        DpuRunStats {
            tlp_histogram: vec![0; self.cfg.n_tasklets as usize + 1],
            tlp_timeline: Vec::new(),
            tlp_window: self.cfg.tlp_window,
            per_tasklet_instructions: vec![0; self.cfg.n_tasklets as usize],
            tasklet_stop_cycle: vec![0; self.cfg.n_tasklets as usize],
            freq_mhz: self.cfg.freq_mhz,
            max_ipc: self.cfg.max_ipc(),
            interface_bytes_per_cycle: self.cfg.interface_rate(),
            ..DpuRunStats::default()
        }
    }

    /// Result-forwarding latency of an instruction (data-forwarding mode).
    fn forward_latency(&self, instr: &Instruction) -> u64 {
        match instr {
            Instruction::Load { .. } => u64::from(self.cfg.forward_load_latency),
            _ => u64::from(self.cfg.forward_alu_latency),
        }
    }

    /// The MRAM address backing the instruction stream in cache-centric
    /// mode (timing only; 256 KB below the top of the bank).
    pub(crate) fn iram_backing_base(&self) -> u32 {
        self.cfg.layout.mram_bytes - 256 * 1024
    }

    /// The scalar (baseline / ILP-extended) cycle loop. Generic over the
    /// trace sink so the `NullSink` instantiation compiles the event
    /// emission away entirely.
    ///
    /// Dispatches on [`DpuConfig::effective_exec_tier`]: the block-compiled
    /// loop (the default), the pre-decoded fast loop, or the per-cycle
    /// reference loop the differential tests pin both against. All three
    /// produce byte-identical timing and statistics.
    fn run_scalar<S: TraceSink>(
        &mut self,
        mem: MemEngine,
        sink: &mut S,
    ) -> Result<DpuRunStats, SimError> {
        match self.cfg.effective_exec_tier() {
            ExecTier::Naive => self.run_scalar_naive(mem, sink),
            ExecTier::Fast => self.run_scalar_fast(mem, sink),
            ExecTier::Compiled => self.run_scalar_compiled(mem, sink),
        }
    }

    /// The optimized scalar cycle loop.
    ///
    /// Relative to [`Dpu::run_scalar_naive`] (the timing-equivalent
    /// reference), three mechanical changes — none of which alter any
    /// simulated time:
    ///
    /// 1. a [`pim_isa::DecodedProgram`] side table answers source-mask /
    ///    dest / class / hazard queries with flat lookups instead of
    ///    re-matching the `Instruction` enum (and allocating `Vec<Reg>`)
    ///    every cycle;
    /// 2. event-driven wakeup: `ready_at[t]` caches each tasklet's earliest
    ///    issue cycle (`max(next_issue, operand forwarding)`, `u64::MAX`
    ///    while blocked or stopped) and `wake` holds a lower bound on their
    ///    minimum, so the per-cycle issuable scan is skipped outright while
    ///    `now < wake` and never inspects operands;
    /// 3. the steady-state loop performs no heap allocation: memory
    ///    completions drain into a reused buffer, DMA segments are stack
    ///    arrays, and `MemEngine::advance` is skipped while the engine is
    ///    provably inert.
    #[allow(clippy::too_many_lines)]
    fn run_scalar_fast<S: TraceSink>(
        &mut self,
        mut mem: MemEngine,
        sink: &mut S,
    ) -> Result<DpuRunStats, SimError> {
        const NREGS: usize = pim_isa::NUM_GP_REGS as usize;
        let n = self.cfg.n_tasklets as usize;
        let kernel = self.kernel_artifacts();
        let decoded = &kernel.decoded;
        let n_instrs = kernel.instrs.len() as u32;
        let fwd = self.cfg.ilp.data_forwarding;
        let unified_rf = self.cfg.ilp.unified_rf;
        let ways = self.cfg.issue_ways() as usize;
        let gap: u64 = if fwd { 1 } else { u64::from(self.cfg.revolver_cycles) };
        let fwd_alu = u64::from(self.cfg.forward_alu_latency);
        let fwd_load = u64::from(self.cfg.forward_load_latency);
        // Seeded bug for the mutation self-check: sampled once per launch
        // so the hot loop stays branch-predictable and default behavior is
        // untouched while the switch is off.
        #[cfg(feature = "mutation-hooks")]
        let drop_rf_hazard = crate::mutation::scoreboard_bug();

        let (mut icache, mut dcache) = match self.cfg.memory_mode {
            MemoryMode::Scratchpad => (None, None),
            MemoryMode::Cached { icache, dcache } => {
                (Some(Cache::new(icache)), Some(Cache::new(dcache)))
            }
        };
        let cached = icache.is_some();
        let iram_base = self.iram_backing_base();

        let mut stats = self.new_stats();
        let mut window_acc = (0u64, 0u64);
        let mut status = vec![TaskletStatus::Ready; n];
        let mut next_issue = vec![0u64; n];
        // Forwarding scoreboard, flattened to one contiguous allocation:
        // register `r` of tasklet `t` is ready at `reg_ready[t*NREGS + r]`.
        let mut reg_ready = vec![0u64; n * NREGS];
        let mut skip_dcache = vec![false; n];
        // Event-driven wakeup state: `ready_at[t]` is exact for Ready
        // tasklets and `u64::MAX` otherwise; `wake` is a lower bound on
        // `min(ready_at)`, re-tightened whenever an idle span is computed.
        let mut ready_at = vec![0u64; n];
        let mut wake: u64 = 0;
        let mut done_buf: Vec<(u64, u64)> = Vec::with_capacity(n);
        let mut live = n;
        let mut now: u64 = 0;
        let mut rf_block: u64 = 0;
        let mut rr: usize = 0;
        let mut issuable: Vec<usize> = Vec::with_capacity(n);

        // Cycle at which every operand of the instruction at `pc` is
        // forwardable, given one tasklet's scoreboard row (0 without the
        // data-forwarding feature, mirroring the reference loop).
        let deps_ready_at = |pc: u32, row: &[u64]| -> u64 {
            if !fwd {
                return 0;
            }
            match decoded.get(pc) {
                Some(d) => {
                    let mut mask = d.src_mask;
                    let mut latest = 0u64;
                    while mask != 0 {
                        latest = latest.max(row[mask.trailing_zeros() as usize]);
                        mask &= mask - 1;
                    }
                    latest
                }
                None => 0,
            }
        };

        loop {
            if live == 0 {
                break;
            }
            if now >= self.cfg.max_cycles {
                return Err(SimError::CycleLimit { limit: self.cfg.max_cycles });
            }
            // 1. Memory completions (skipped while the engine holds no
            // outstanding request — `advance` would be a no-op).
            if mem.is_active() {
                mem.advance(now);
                if sink.enabled() {
                    mem.drain_row_events(sink);
                }
                mem.drain_done_into(&mut done_buf);
                for &(token, at) in &done_buf {
                    let t = token as usize;
                    status[t] = TaskletStatus::Ready;
                    next_issue[t] = next_issue[t].max(at + 1);
                    let row = &reg_ready[t * NREGS..(t + 1) * NREGS];
                    ready_at[t] = next_issue[t].max(deps_ready_at(self.state.pc[t], row));
                    wake = wake.min(ready_at[t]);
                    if sink.enabled() {
                        sink.emit(TraceEvent::DmaEnd { cycle: at, tasklet: t as u32 });
                    }
                }
            }
            // 2. Issuable set — `ready_at[t] = max(next_issue[t], operand
            // forwarding)` for Ready tasklets and `u64::MAX` otherwise, so
            // one compare replaces the status/window/operand triple; while
            // `now < wake` the set is provably empty and the scan skipped.
            issuable.clear();
            if now >= wake {
                for (t, &at) in ready_at.iter().enumerate() {
                    if now >= at {
                        issuable.push(t);
                    }
                }
            }
            // 3. Register-file structural block.
            if rf_block > 0 {
                stats.record_tlp_span(issuable.len(), 1, &mut window_acc);
                stats.idle_rf += 1.0;
                if sink.enabled() {
                    sink.emit(TraceEvent::Stall {
                        cycle: now,
                        cycles: 1,
                        cause: StallCause::RegisterFile,
                    });
                }
                rf_block -= 1;
                now += 1;
                continue;
            }
            // 4. Nothing to issue: attribute the idle span across the
            // per-tasklet wait reasons (paper Fig 6 categorizes by thread
            // status), then fast-forward to the next possible event.
            if issuable.is_empty() {
                let n_sched = status.iter().filter(|s| **s == TaskletStatus::Ready).count() as f64;
                let n_mem = status.iter().filter(|s| **s == TaskletStatus::Blocked).count() as f64;
                // Blocked/stopped tasklets sit at u64::MAX, so the plain
                // minimum is the Ready minimum — and the exact `wake`.
                let mut next = ready_at.iter().copied().min().unwrap_or(u64::MAX);
                wake = next;
                if let Some(e) = mem.next_event(now) {
                    next = next.min(e);
                }
                let next = if next == u64::MAX || next <= now { now + 1 } else { next };
                let span = (next - now).min(self.cfg.max_cycles - now);
                stats.record_tlp_span(0, span, &mut window_acc);
                let tot = (n_sched + n_mem).max(1.0);
                stats.idle_memory += span as f64 * n_mem / tot;
                stats.idle_revolver += span as f64 * n_sched / tot;
                if sink.enabled() {
                    sink.emit(TraceEvent::Stall {
                        cycle: now,
                        cycles: span,
                        cause: if n_mem >= n_sched {
                            StallCause::Memory
                        } else {
                            StallCause::Revolver
                        },
                    });
                }
                now += span;
                continue;
            }
            stats.record_tlp_span(issuable.len(), 1, &mut window_acc);
            // 5. Issue up to `ways` instructions, round-robin.
            let start = issuable.iter().position(|&t| t >= rr).unwrap_or(0);
            let mut issued = 0usize;
            for k in 0..issuable.len() {
                if issued == ways {
                    break;
                }
                let t = issuable[(start + k) % issuable.len()];
                if status[t] != TaskletStatus::Ready {
                    continue;
                }
                let pc = self.state.pc[t];
                if pc >= n_instrs {
                    return Err(SimError::PcOutOfRange { pc, tasklet: t as u32 });
                }
                // Instruction fetch through the I-cache (cache-centric mode).
                if let Some(ic) = icache.as_mut() {
                    let fetch_addr = iram_base + pc * pim_isa::layout::IRAM_INSTR_BYTES;
                    let out = ic.access(fetch_addr, false);
                    if !out.hit {
                        status[t] = TaskletStatus::Blocked;
                        ready_at[t] = u64::MAX;
                        let line = out.fill_line.expect("miss has a fill");
                        let bytes = ic.config().line_bytes;
                        if sink.enabled() {
                            sink.emit(TraceEvent::DmaBegin {
                                cycle: now,
                                tasklet: t as u32,
                                mram: line,
                                bytes,
                                write: false,
                            });
                        }
                        mem.issue(t as u64, &[Segment { addr: line, bytes, write: false }], now);
                        continue;
                    }
                }
                let instr = kernel.instrs[pc as usize];
                let d = *decoded.get(pc).expect("pc bounds-checked above");
                if cached && d.is_dma {
                    return Err(SimError::DmaInCachedMode { pc, tasklet: t as u32 });
                }
                // Data access through the D-cache (cache-centric mode).
                if let Some(dc) = dcache.as_mut() {
                    if let Some((addr, write)) = self.state.ls_addr(t as u32, &instr) {
                        if skip_dcache[t] {
                            skip_dcache[t] = false;
                        } else {
                            let out = dc.access(addr, write);
                            if !out.hit {
                                status[t] = TaskletStatus::Blocked;
                                ready_at[t] = u64::MAX;
                                skip_dcache[t] = true;
                                let line_bytes = dc.config().line_bytes;
                                let fill = Segment {
                                    addr: out.fill_line.expect("miss has a fill"),
                                    bytes: line_bytes,
                                    write: false,
                                };
                                let mut segs = [fill, fill];
                                let mut n_segs = 1;
                                if let Some(wb) = out.writeback_line {
                                    segs[1] = Segment { addr: wb, bytes: line_bytes, write: true };
                                    n_segs = 2;
                                }
                                let segs = &segs[..n_segs];
                                if sink.enabled() {
                                    sink.emit(TraceEvent::DmaBegin {
                                        cycle: now,
                                        tasklet: t as u32,
                                        mram: segs[0].addr,
                                        bytes: segs.iter().map(|s| s.bytes).sum(),
                                        write: false,
                                    });
                                }
                                mem.issue(t as u64, segs, now);
                                continue;
                            }
                        }
                    }
                }
                // Register-file structural hazard (even/odd banks).
                let hazard = if unified_rf { 0 } else { u64::from(d.rf_hazard) };
                #[cfg(feature = "mutation-hooks")]
                let hazard = if drop_rf_hazard { 0 } else { hazard };
                if stats.trace.len() < self.cfg.trace_limit {
                    stats.trace.push(crate::stats::TraceEntry {
                        cycle: now,
                        tasklet: t as u32,
                        pc,
                        text: instr.to_string(),
                    });
                }
                let effect = self.state.execute(t as u32, &instr)?;
                stats.count_instruction(d.class, t as u32);
                if sink.enabled() {
                    sink.emit(TraceEvent::InstrRetire {
                        cycle: now,
                        tasklet: t as u32,
                        pc,
                        class: d.class,
                    });
                    match instr {
                        Instruction::Acquire { bit } => sink.emit(TraceEvent::BarrierAcquire {
                            cycle: now,
                            tasklet: t as u32,
                            bit: self.state.operand(t as u32, bit),
                            acquired: effect != Effect::AcquireRetry,
                        }),
                        Instruction::Release { bit } => sink.emit(TraceEvent::BarrierRelease {
                            cycle: now,
                            tasklet: t as u32,
                            bit: self.state.operand(t as u32, bit),
                        }),
                        _ => {}
                    }
                }
                next_issue[t] = now + gap;
                if fwd {
                    if let Some(rd) = d.dst {
                        let lat = if d.is_load { fwd_load } else { fwd_alu };
                        reg_ready[t * NREGS + rd as usize] = now + lat;
                    }
                }
                match effect {
                    Effect::Advance => self.state.pc[t] = pc + 1,
                    Effect::Jump(target) => self.state.pc[t] = target,
                    Effect::AcquireRetry => {}
                    Effect::Stop => {
                        status[t] = TaskletStatus::Stopped;
                        stats.tasklet_stop_cycle[t] = now;
                        live -= 1;
                    }
                    Effect::Dma { mram, len, write } => {
                        self.state.pc[t] = pc + 1;
                        status[t] = TaskletStatus::Blocked;
                        if sink.enabled() {
                            sink.emit(TraceEvent::DmaBegin {
                                cycle: now,
                                tasklet: t as u32,
                                mram,
                                bytes: len,
                                write,
                            });
                        }
                        mem.issue(t as u64, &[Segment { addr: mram, bytes: len, write }], now);
                    }
                }
                // Refresh the wakeup entry for the new PC / issue window.
                if status[t] == TaskletStatus::Ready {
                    let row = &reg_ready[t * NREGS..(t + 1) * NREGS];
                    ready_at[t] = next_issue[t].max(deps_ready_at(self.state.pc[t], row));
                    wake = wake.min(ready_at[t]);
                } else {
                    ready_at[t] = u64::MAX;
                }
                issued += 1;
                rr = t + 1;
                if hazard > 0 {
                    // The split register file blocks the issue stage.
                    rf_block = hazard;
                    break;
                }
            }
            if issued > 0 {
                stats.active_cycles += 1;
            } else {
                // Every candidate stalled on a cache fill this cycle.
                stats.idle_memory += 1.0;
                if sink.enabled() {
                    sink.emit(TraceEvent::Stall {
                        cycle: now,
                        cycles: 1,
                        cause: StallCause::Memory,
                    });
                }
            }
            now += 1;
        }
        stats.cycles = now;
        stats.dram = *mem.bank().stats();
        stats.mmu = mem.mmu().map(|m| *m.stats());
        stats.icache = icache.map(|c| *c.stats());
        stats.dcache = dcache.map(|c| *c.stats());
        stats.dma_requests = mem.requests_issued;
        Ok(stats)
    }

    /// The block-compiled scalar cycle loop ([`ExecTier::Compiled`], the
    /// default tier).
    ///
    /// A timing-exact transliteration of [`Dpu::run_scalar_fast`] — every
    /// statistic, trace entry, and event is computed at the same point with
    /// the same formula — with the interpretation cost compiled away:
    ///
    /// 1. the program is lowered once per [`Dpu::load_program`] into a
    ///    [`CompiledKernel`]: a flat table of monomorphic op functions
    ///    (basic block by basic block) with operands, scheduling facts, and
    ///    the instruction-class index pre-extracted — so the steady-state
    ///    issue path performs one indexed load plus one indirect call
    ///    instead of two per-PC table copies and a nested `Instruction` /
    ///    `Operand` match;
    /// 2. the kernel artifact is `Arc`-cached across relaunches: chained
    ///    multi-launch workloads (MLP-Q / ATTN) pay for decoding and
    ///    compilation once, and launches no longer clone the program image;
    /// 3. the issuable set is a bitmask (`n_tasklets <= 24`): the TLP
    ///    histogram takes a popcount and round-robin selection walks set
    ///    bits with `trailing_zeros`, visiting the same tasklets in the
    ///    same order as the fast loop's vector scan.
    #[allow(clippy::too_many_lines)]
    fn run_scalar_compiled<S: TraceSink>(
        &mut self,
        mut mem: MemEngine,
        sink: &mut S,
    ) -> Result<DpuRunStats, SimError> {
        const NREGS: usize = pim_isa::NUM_GP_REGS as usize;
        let n = self.cfg.n_tasklets as usize;
        let kernel = self.kernel_artifacts();
        let ops = &kernel.ops[..];
        let n_instrs = ops.len() as u32;
        let fwd = self.cfg.ilp.data_forwarding;
        let unified_rf = self.cfg.ilp.unified_rf;
        let ways = self.cfg.issue_ways() as usize;
        let gap: u64 = if fwd { 1 } else { u64::from(self.cfg.revolver_cycles) };
        let fwd_alu = u64::from(self.cfg.forward_alu_latency);
        let fwd_load = u64::from(self.cfg.forward_load_latency);
        // Seeded bug for the mutation self-check: sampled once per launch
        // (same point as the fast loop) so the two tiers inject identically.
        #[cfg(feature = "mutation-hooks")]
        let drop_rf_hazard = crate::mutation::scoreboard_bug();

        let (mut icache, mut dcache) = match self.cfg.memory_mode {
            MemoryMode::Scratchpad => (None, None),
            MemoryMode::Cached { icache, dcache } => {
                (Some(Cache::new(icache)), Some(Cache::new(dcache)))
            }
        };
        let cached = icache.is_some();
        let iram_base = self.iram_backing_base();

        let mut stats = self.new_stats();
        let mut window_acc = (0u64, 0u64);
        let mut status = vec![TaskletStatus::Ready; n];
        let mut next_issue = vec![0u64; n];
        // Forwarding scoreboard, flattened to one contiguous allocation:
        // register `r` of tasklet `t` is ready at `reg_ready[t*NREGS + r]`.
        let mut reg_ready = vec![0u64; n * NREGS];
        let mut skip_dcache = vec![false; n];
        // Event-driven wakeup state, exactly as in the fast loop.
        let mut ready_at = vec![0u64; n];
        let mut wake: u64 = 0;
        let mut done_buf: Vec<(u64, u64)> = Vec::with_capacity(n);
        let mut live = n;
        let mut now: u64 = 0;
        let mut rf_block: u64 = 0;
        let mut rr: usize = 0;

        // Cycle at which every operand of the instruction at `pc` is
        // forwardable — identical to the fast loop's computation, reading
        // the pre-extracted source mask from the op table.
        let deps_ready_at = |pc: u32, row: &[u64]| -> u64 {
            if !fwd {
                return 0;
            }
            match ops.get(pc as usize) {
                Some(op) => {
                    let mut mask = op.src_mask;
                    let mut latest = 0u64;
                    while mask != 0 {
                        latest = latest.max(row[mask.trailing_zeros() as usize]);
                        mask &= mask - 1;
                    }
                    latest
                }
                None => 0,
            }
        };

        loop {
            if live == 0 {
                break;
            }
            if now >= self.cfg.max_cycles {
                return Err(SimError::CycleLimit { limit: self.cfg.max_cycles });
            }
            // 1. Memory completions (skipped while the engine holds no
            // outstanding request — `advance` would be a no-op).
            if mem.is_active() {
                mem.advance(now);
                if sink.enabled() {
                    mem.drain_row_events(sink);
                }
                mem.drain_done_into(&mut done_buf);
                for &(token, at) in &done_buf {
                    let t = token as usize;
                    status[t] = TaskletStatus::Ready;
                    next_issue[t] = next_issue[t].max(at + 1);
                    let row = &reg_ready[t * NREGS..(t + 1) * NREGS];
                    ready_at[t] = next_issue[t].max(deps_ready_at(self.state.pc[t], row));
                    wake = wake.min(ready_at[t]);
                    if sink.enabled() {
                        sink.emit(TraceEvent::DmaEnd { cycle: at, tasklet: t as u32 });
                    }
                }
            }
            // 2. Issuable set as a bitmask (bit `t` = tasklet `t` can
            // issue). Same membership as the fast loop's vector.
            let mut issuable: u32 = 0;
            if now >= wake {
                for (t, &at) in ready_at.iter().enumerate() {
                    if now >= at {
                        issuable |= 1 << t;
                    }
                }
            }
            let n_issuable = issuable.count_ones() as usize;
            // 3. Register-file structural block.
            if rf_block > 0 {
                stats.record_tlp_span(n_issuable, 1, &mut window_acc);
                stats.idle_rf += 1.0;
                if sink.enabled() {
                    sink.emit(TraceEvent::Stall {
                        cycle: now,
                        cycles: 1,
                        cause: StallCause::RegisterFile,
                    });
                }
                rf_block -= 1;
                now += 1;
                continue;
            }
            // 4. Nothing to issue: attribute the idle span across the
            // per-tasklet wait reasons (paper Fig 6 categorizes by thread
            // status), then fast-forward to the next possible event.
            if issuable == 0 {
                let n_sched = status.iter().filter(|s| **s == TaskletStatus::Ready).count() as f64;
                let n_mem = status.iter().filter(|s| **s == TaskletStatus::Blocked).count() as f64;
                // Blocked/stopped tasklets sit at u64::MAX, so the plain
                // minimum is the Ready minimum — and the exact `wake`.
                let mut next = ready_at.iter().copied().min().unwrap_or(u64::MAX);
                wake = next;
                if let Some(e) = mem.next_event(now) {
                    next = next.min(e);
                }
                let next = if next == u64::MAX || next <= now { now + 1 } else { next };
                let span = (next - now).min(self.cfg.max_cycles - now);
                stats.record_tlp_span(0, span, &mut window_acc);
                let tot = (n_sched + n_mem).max(1.0);
                stats.idle_memory += span as f64 * n_mem / tot;
                stats.idle_revolver += span as f64 * n_sched / tot;
                if sink.enabled() {
                    sink.emit(TraceEvent::Stall {
                        cycle: now,
                        cycles: span,
                        cause: if n_mem >= n_sched {
                            StallCause::Memory
                        } else {
                            StallCause::Revolver
                        },
                    });
                }
                now += span;
                continue;
            }
            stats.record_tlp_span(n_issuable, 1, &mut window_acc);
            // 5. Issue up to `ways` instructions, round-robin: walk set
            // bits at or above `rr` first, then wrap to the low bits —
            // the same cyclic order as the fast loop's vector rotation.
            let lo_mask = (1u32 << rr) - 1;
            let mut pending_hi = issuable & !lo_mask;
            let mut pending_lo = issuable & lo_mask;
            let mut issued = 0usize;
            loop {
                if issued == ways {
                    break;
                }
                let t = if pending_hi != 0 {
                    let t = pending_hi.trailing_zeros() as usize;
                    pending_hi &= pending_hi - 1;
                    t
                } else if pending_lo != 0 {
                    let t = pending_lo.trailing_zeros() as usize;
                    pending_lo &= pending_lo - 1;
                    t
                } else {
                    break;
                };
                if status[t] != TaskletStatus::Ready {
                    continue;
                }
                let pc = self.state.pc[t];
                if pc >= n_instrs {
                    return Err(SimError::PcOutOfRange { pc, tasklet: t as u32 });
                }
                // Instruction fetch through the I-cache (cache-centric mode).
                if let Some(ic) = icache.as_mut() {
                    let fetch_addr = iram_base + pc * pim_isa::layout::IRAM_INSTR_BYTES;
                    let out = ic.access(fetch_addr, false);
                    if !out.hit {
                        status[t] = TaskletStatus::Blocked;
                        ready_at[t] = u64::MAX;
                        let line = out.fill_line.expect("miss has a fill");
                        let bytes = ic.config().line_bytes;
                        if sink.enabled() {
                            sink.emit(TraceEvent::DmaBegin {
                                cycle: now,
                                tasklet: t as u32,
                                mram: line,
                                bytes,
                                write: false,
                            });
                        }
                        mem.issue(t as u64, &[Segment { addr: line, bytes, write: false }], now);
                        continue;
                    }
                }
                let op = &ops[pc as usize];
                // The op table is laid out block-by-block; every entry must
                // carry the block id its pc belongs to.
                debug_assert_eq!(op.block, kernel.blocks.block_of(pc));
                if cached && op.is_dma() {
                    return Err(SimError::DmaInCachedMode { pc, tasklet: t as u32 });
                }
                // Data access through the D-cache (cache-centric mode). The
                // effective address comes from the pre-extracted base/offset
                // (identical to `ArchState::ls_addr` on the instruction).
                if let Some(dc) = dcache.as_mut() {
                    if op.flags & (F_LOAD | F_STORE) != 0 {
                        let addr = self.state.regs[t][op.b as usize].wrapping_add(op.imm as u32);
                        let write = op.flags & F_STORE != 0;
                        if skip_dcache[t] {
                            skip_dcache[t] = false;
                        } else {
                            let out = dc.access(addr, write);
                            if !out.hit {
                                status[t] = TaskletStatus::Blocked;
                                ready_at[t] = u64::MAX;
                                skip_dcache[t] = true;
                                let line_bytes = dc.config().line_bytes;
                                let fill = Segment {
                                    addr: out.fill_line.expect("miss has a fill"),
                                    bytes: line_bytes,
                                    write: false,
                                };
                                let mut segs = [fill, fill];
                                let mut n_segs = 1;
                                if let Some(wb) = out.writeback_line {
                                    segs[1] = Segment { addr: wb, bytes: line_bytes, write: true };
                                    n_segs = 2;
                                }
                                let segs = &segs[..n_segs];
                                if sink.enabled() {
                                    sink.emit(TraceEvent::DmaBegin {
                                        cycle: now,
                                        tasklet: t as u32,
                                        mram: segs[0].addr,
                                        bytes: segs.iter().map(|s| s.bytes).sum(),
                                        write: false,
                                    });
                                }
                                mem.issue(t as u64, segs, now);
                                continue;
                            }
                        }
                    }
                }
                // Register-file structural hazard (even/odd banks).
                let hazard = if unified_rf { 0 } else { u64::from(op.rf_hazard) };
                #[cfg(feature = "mutation-hooks")]
                let hazard = if drop_rf_hazard { 0 } else { hazard };
                if stats.trace.len() < self.cfg.trace_limit {
                    stats.trace.push(crate::stats::TraceEntry {
                        cycle: now,
                        tasklet: t as u32,
                        pc,
                        text: kernel.instrs[pc as usize].to_string(),
                    });
                }
                let effect = (op.exec)(&mut self.state, t as u32, pc, op)?;
                stats.count_instruction_idx(op.class_idx as usize, t as u32);
                if sink.enabled() {
                    sink.emit(TraceEvent::InstrRetire {
                        cycle: now,
                        tasklet: t as u32,
                        pc,
                        class: InstrClass::ALL[op.class_idx as usize],
                    });
                    match kernel.instrs[pc as usize] {
                        Instruction::Acquire { bit } => sink.emit(TraceEvent::BarrierAcquire {
                            cycle: now,
                            tasklet: t as u32,
                            bit: self.state.operand(t as u32, bit),
                            acquired: effect != Effect::AcquireRetry,
                        }),
                        Instruction::Release { bit } => sink.emit(TraceEvent::BarrierRelease {
                            cycle: now,
                            tasklet: t as u32,
                            bit: self.state.operand(t as u32, bit),
                        }),
                        _ => {}
                    }
                }
                next_issue[t] = now + gap;
                if fwd {
                    if let Some(rd) = op.dst() {
                        let lat = if op.is_load() { fwd_load } else { fwd_alu };
                        reg_ready[t * NREGS + rd as usize] = now + lat;
                    }
                }
                match effect {
                    Effect::Advance => self.state.pc[t] = pc + 1,
                    Effect::Jump(target) => self.state.pc[t] = target,
                    Effect::AcquireRetry => {}
                    Effect::Stop => {
                        status[t] = TaskletStatus::Stopped;
                        stats.tasklet_stop_cycle[t] = now;
                        live -= 1;
                    }
                    Effect::Dma { mram, len, write } => {
                        self.state.pc[t] = pc + 1;
                        status[t] = TaskletStatus::Blocked;
                        if sink.enabled() {
                            sink.emit(TraceEvent::DmaBegin {
                                cycle: now,
                                tasklet: t as u32,
                                mram,
                                bytes: len,
                                write,
                            });
                        }
                        mem.issue(t as u64, &[Segment { addr: mram, bytes: len, write }], now);
                    }
                }
                // Refresh the wakeup entry for the new PC / issue window.
                if status[t] == TaskletStatus::Ready {
                    let row = &reg_ready[t * NREGS..(t + 1) * NREGS];
                    ready_at[t] = next_issue[t].max(deps_ready_at(self.state.pc[t], row));
                    wake = wake.min(ready_at[t]);
                } else {
                    ready_at[t] = u64::MAX;
                }
                issued += 1;
                rr = t + 1;
                if hazard > 0 {
                    // The split register file blocks the issue stage.
                    rf_block = hazard;
                    break;
                }
            }
            if issued > 0 {
                stats.active_cycles += 1;
            } else {
                // Every candidate stalled on a cache fill this cycle.
                stats.idle_memory += 1.0;
                if sink.enabled() {
                    sink.emit(TraceEvent::Stall {
                        cycle: now,
                        cycles: 1,
                        cause: StallCause::Memory,
                    });
                }
            }
            now += 1;
        }
        stats.cycles = now;
        stats.dram = *mem.bank().stats();
        stats.mmu = mem.mmu().map(|m| *m.stats());
        stats.icache = icache.map(|c| *c.stats());
        stats.dcache = dcache.map(|c| *c.stats());
        stats.dma_requests = mem.requests_issued;
        Ok(stats)
    }

    /// The naive per-cycle reference loop ([`DpuConfig::naive_loop`]).
    ///
    /// Re-derives everything from the `Instruction` enum each iteration —
    /// operand lists via `srcs()`, hazards via `rf_hazard_cycles()` — with
    /// no wakeup caching and an unconditional memory-engine advance. Kept
    /// deliberately close to the original loop so the differential tests
    /// pin the optimized loop's timing against an independent computation
    /// of the same schedule. Slow; only differential tests should run it.
    #[allow(clippy::too_many_lines)]
    fn run_scalar_naive<S: TraceSink>(
        &mut self,
        mut mem: MemEngine,
        sink: &mut S,
    ) -> Result<DpuRunStats, SimError> {
        const NREGS: usize = pim_isa::NUM_GP_REGS as usize;
        let n = self.cfg.n_tasklets as usize;
        let program = self.program.clone().expect("checked in launch");
        let n_instrs = program.instrs.len() as u32;
        let fwd = self.cfg.ilp.data_forwarding;
        let unified_rf = self.cfg.ilp.unified_rf;
        let ways = self.cfg.issue_ways() as usize;
        let gap: u64 = if fwd { 1 } else { u64::from(self.cfg.revolver_cycles) };

        let (mut icache, mut dcache) = match self.cfg.memory_mode {
            MemoryMode::Scratchpad => (None, None),
            MemoryMode::Cached { icache, dcache } => {
                (Some(Cache::new(icache)), Some(Cache::new(dcache)))
            }
        };
        let cached = icache.is_some();
        let iram_base = self.iram_backing_base();

        let mut stats = self.new_stats();
        let mut window_acc = (0u64, 0u64);
        let mut status = vec![TaskletStatus::Ready; n];
        let mut next_issue = vec![0u64; n];
        let mut reg_ready = vec![0u64; n * NREGS];
        let mut skip_dcache = vec![false; n];
        let mut done_buf: Vec<(u64, u64)> = Vec::new();
        let mut live = n;
        let mut now: u64 = 0;
        let mut rf_block: u64 = 0;
        let mut rr: usize = 0;
        let mut issuable: Vec<usize> = Vec::with_capacity(n);

        // True when tasklet `t`'s next instruction has all operands
        // forwarded (always true without data forwarding).
        let deps_ready_at = |t: usize, pc: u32, reg_ready: &[u64]| -> u64 {
            if !fwd {
                return 0;
            }
            match program.instrs.get(pc as usize) {
                Some(i) => i
                    .srcs()
                    .iter()
                    .map(|r| reg_ready[t * NREGS + r.index() as usize])
                    .max()
                    .unwrap_or(0),
                None => 0,
            }
        };

        loop {
            if live == 0 {
                break;
            }
            if now >= self.cfg.max_cycles {
                return Err(SimError::CycleLimit { limit: self.cfg.max_cycles });
            }
            // 1. Memory completions.
            mem.advance(now);
            if sink.enabled() {
                mem.drain_row_events(sink);
            }
            mem.drain_done_into(&mut done_buf);
            for &(token, at) in &done_buf {
                let t = token as usize;
                status[t] = TaskletStatus::Ready;
                next_issue[t] = next_issue[t].max(at + 1);
                if sink.enabled() {
                    sink.emit(TraceEvent::DmaEnd { cycle: at, tasklet: t as u32 });
                }
            }
            // 2. Issuable set.
            issuable.clear();
            for t in 0..n {
                if status[t] == TaskletStatus::Ready
                    && now >= next_issue[t]
                    && now >= deps_ready_at(t, self.state.pc[t], &reg_ready)
                {
                    issuable.push(t);
                }
            }
            // 3. Register-file structural block.
            if rf_block > 0 {
                stats.record_tlp_span(issuable.len(), 1, &mut window_acc);
                stats.idle_rf += 1.0;
                if sink.enabled() {
                    sink.emit(TraceEvent::Stall {
                        cycle: now,
                        cycles: 1,
                        cause: StallCause::RegisterFile,
                    });
                }
                rf_block -= 1;
                now += 1;
                continue;
            }
            // 4. Nothing to issue: attribute the idle span across the
            // per-tasklet wait reasons (paper Fig 6 categorizes by thread
            // status), then fast-forward to the next possible event.
            if issuable.is_empty() {
                let n_sched = status.iter().filter(|s| **s == TaskletStatus::Ready).count() as f64;
                let n_mem = status.iter().filter(|s| **s == TaskletStatus::Blocked).count() as f64;
                let mut next = u64::MAX;
                for t in 0..n {
                    if status[t] == TaskletStatus::Ready {
                        let ready =
                            next_issue[t].max(deps_ready_at(t, self.state.pc[t], &reg_ready));
                        next = next.min(ready);
                    }
                }
                if let Some(e) = mem.next_event(now) {
                    next = next.min(e);
                }
                let next = if next == u64::MAX || next <= now { now + 1 } else { next };
                let span = (next - now).min(self.cfg.max_cycles - now);
                stats.record_tlp_span(0, span, &mut window_acc);
                let tot = (n_sched + n_mem).max(1.0);
                stats.idle_memory += span as f64 * n_mem / tot;
                stats.idle_revolver += span as f64 * n_sched / tot;
                if sink.enabled() {
                    sink.emit(TraceEvent::Stall {
                        cycle: now,
                        cycles: span,
                        cause: if n_mem >= n_sched {
                            StallCause::Memory
                        } else {
                            StallCause::Revolver
                        },
                    });
                }
                now += span;
                continue;
            }
            stats.record_tlp_span(issuable.len(), 1, &mut window_acc);
            // 5. Issue up to `ways` instructions, round-robin.
            let start = issuable.iter().position(|&t| t >= rr).unwrap_or(0);
            let mut issued = 0usize;
            for k in 0..issuable.len() {
                if issued == ways {
                    break;
                }
                let t = issuable[(start + k) % issuable.len()];
                if status[t] != TaskletStatus::Ready {
                    continue;
                }
                let pc = self.state.pc[t];
                if pc >= n_instrs {
                    return Err(SimError::PcOutOfRange { pc, tasklet: t as u32 });
                }
                // Instruction fetch through the I-cache (cache-centric mode).
                if let Some(ic) = icache.as_mut() {
                    let fetch_addr = iram_base + pc * pim_isa::layout::IRAM_INSTR_BYTES;
                    let out = ic.access(fetch_addr, false);
                    if !out.hit {
                        status[t] = TaskletStatus::Blocked;
                        let line = out.fill_line.expect("miss has a fill");
                        let bytes = ic.config().line_bytes;
                        if sink.enabled() {
                            sink.emit(TraceEvent::DmaBegin {
                                cycle: now,
                                tasklet: t as u32,
                                mram: line,
                                bytes,
                                write: false,
                            });
                        }
                        mem.issue(t as u64, &[Segment { addr: line, bytes, write: false }], now);
                        continue;
                    }
                }
                let instr = program.instrs[pc as usize];
                if cached && instr.is_dma() {
                    return Err(SimError::DmaInCachedMode { pc, tasklet: t as u32 });
                }
                // Data access through the D-cache (cache-centric mode).
                if let Some(dc) = dcache.as_mut() {
                    if let Some((addr, write)) = self.state.ls_addr(t as u32, &instr) {
                        if skip_dcache[t] {
                            skip_dcache[t] = false;
                        } else {
                            let out = dc.access(addr, write);
                            if !out.hit {
                                status[t] = TaskletStatus::Blocked;
                                skip_dcache[t] = true;
                                let line_bytes = dc.config().line_bytes;
                                let mut segs = vec![Segment {
                                    addr: out.fill_line.expect("miss has a fill"),
                                    bytes: line_bytes,
                                    write: false,
                                }];
                                if let Some(wb) = out.writeback_line {
                                    segs.push(Segment { addr: wb, bytes: line_bytes, write: true });
                                }
                                if sink.enabled() {
                                    sink.emit(TraceEvent::DmaBegin {
                                        cycle: now,
                                        tasklet: t as u32,
                                        mram: segs[0].addr,
                                        bytes: segs.iter().map(|s| s.bytes).sum(),
                                        write: false,
                                    });
                                }
                                mem.issue(t as u64, &segs, now);
                                continue;
                            }
                        }
                    }
                }
                // Register-file structural hazard (even/odd banks).
                let hazard = if unified_rf { 0 } else { u64::from(instr.rf_hazard_cycles()) };
                if stats.trace.len() < self.cfg.trace_limit {
                    stats.trace.push(crate::stats::TraceEntry {
                        cycle: now,
                        tasklet: t as u32,
                        pc,
                        text: instr.to_string(),
                    });
                }
                let effect = self.state.execute(t as u32, &instr)?;
                stats.count_instruction(instr.class(), t as u32);
                if sink.enabled() {
                    sink.emit(TraceEvent::InstrRetire {
                        cycle: now,
                        tasklet: t as u32,
                        pc,
                        class: instr.class(),
                    });
                    match instr {
                        Instruction::Acquire { bit } => sink.emit(TraceEvent::BarrierAcquire {
                            cycle: now,
                            tasklet: t as u32,
                            bit: self.state.operand(t as u32, bit),
                            acquired: effect != Effect::AcquireRetry,
                        }),
                        Instruction::Release { bit } => sink.emit(TraceEvent::BarrierRelease {
                            cycle: now,
                            tasklet: t as u32,
                            bit: self.state.operand(t as u32, bit),
                        }),
                        _ => {}
                    }
                }
                next_issue[t] = now + gap;
                if fwd {
                    if let Some(rd) = instr.dst() {
                        reg_ready[t * NREGS + rd.index() as usize] =
                            now + self.forward_latency(&instr);
                    }
                }
                match effect {
                    Effect::Advance => self.state.pc[t] = pc + 1,
                    Effect::Jump(target) => self.state.pc[t] = target,
                    Effect::AcquireRetry => {}
                    Effect::Stop => {
                        status[t] = TaskletStatus::Stopped;
                        stats.tasklet_stop_cycle[t] = now;
                        live -= 1;
                    }
                    Effect::Dma { mram, len, write } => {
                        self.state.pc[t] = pc + 1;
                        status[t] = TaskletStatus::Blocked;
                        if sink.enabled() {
                            sink.emit(TraceEvent::DmaBegin {
                                cycle: now,
                                tasklet: t as u32,
                                mram,
                                bytes: len,
                                write,
                            });
                        }
                        mem.issue(t as u64, &[Segment { addr: mram, bytes: len, write }], now);
                    }
                }
                issued += 1;
                rr = t + 1;
                if hazard > 0 {
                    // The split register file blocks the issue stage.
                    rf_block = hazard;
                    break;
                }
            }
            if issued > 0 {
                stats.active_cycles += 1;
            } else {
                // Every candidate stalled on a cache fill this cycle.
                stats.idle_memory += 1.0;
                if sink.enabled() {
                    sink.emit(TraceEvent::Stall {
                        cycle: now,
                        cycles: 1,
                        cause: StallCause::Memory,
                    });
                }
            }
            now += 1;
        }
        stats.cycles = now;
        stats.dram = *mem.bank().stats();
        stats.mmu = mem.mmu().map(|m| *m.stats());
        stats.icache = icache.map(|c| *c.stats());
        stats.dcache = dcache.map(|c| *c.stats());
        stats.dma_requests = mem.requests_issued;
        Ok(stats)
    }
}
