//! Fault-injection hooks for mutation self-checks (feature-gated).
//!
//! A conformance fuzzer is only trustworthy if it demonstrably catches the
//! class of bug it exists for. This module provides a single seeded bug —
//! dropping the even/odd register-file structural hazard in the optimized
//! scalar loop — behind a process-global switch that `pim-fuzz --mutate`
//! flips before running a campaign. With the bug armed, the fast loop
//! under-counts issue slots for same-bank source pairs, so any program
//! with an RF hazard diverges from the naive reference loop in cycle
//! counts and stall attribution.
//!
//! The switch defaults to off; builds with `mutation-hooks` enabled but
//! the switch untouched behave identically to builds without the feature
//! (the flag is read once per launch, outside the hot loop).

use std::sync::atomic::{AtomicBool, Ordering};

static SCOREBOARD_BUG: AtomicBool = AtomicBool::new(false);

/// Arms (or disarms) the seeded scoreboard bug: while armed, the
/// optimized scalar loop treats every instruction's register-file hazard
/// cost as zero, as if the even/odd bank conflict check were lost in the
/// pre-decode refactor.
pub fn set_scoreboard_bug(on: bool) {
    SCOREBOARD_BUG.store(on, Ordering::SeqCst);
}

/// Whether the seeded scoreboard bug is currently armed.
#[must_use]
pub fn scoreboard_bug() -> bool {
    SCOREBOARD_BUG.load(Ordering::SeqCst)
}
