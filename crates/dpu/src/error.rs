//! Simulation errors.

use std::error::Error;
use std::fmt;

use pim_isa::AddressSpace;

/// A fatal error detected while simulating a kernel.
///
/// These correspond to conditions that would be undefined behaviour (or a
/// hardware fault) on the real device; the simulator reports them precisely
/// instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A memory access fell outside its address space.
    OutOfBounds {
        /// The address space violated.
        space: AddressSpace,
        /// First byte of the faulting access.
        addr: u32,
        /// Length of the faulting access.
        len: u32,
        /// The tasklet that faulted.
        tasklet: u32,
        /// The faulting program counter (instruction index).
        pc: u32,
    },
    /// A load/store or DMA violated its alignment requirement.
    Unaligned {
        /// First byte of the faulting access.
        addr: u32,
        /// Required alignment in bytes.
        align: u32,
        /// The tasklet that faulted.
        tasklet: u32,
        /// The faulting program counter.
        pc: u32,
    },
    /// The program counter left the loaded program.
    PcOutOfRange {
        /// The invalid program counter.
        pc: u32,
        /// The tasklet that faulted.
        tasklet: u32,
    },
    /// A DMA instruction executed under the cache-centric memory model,
    /// which has no scratchpad to stage into.
    DmaInCachedMode {
        /// The faulting program counter.
        pc: u32,
        /// The tasklet that faulted.
        tasklet: u32,
    },
    /// A DMA transfer had a non-positive length.
    BadDmaLength {
        /// The offending length value.
        len: i32,
        /// The tasklet that faulted.
        tasklet: u32,
        /// The faulting program counter.
        pc: u32,
    },
    /// An atomic-bit index computed at runtime was out of range.
    BadAtomicBit {
        /// The offending bit index.
        bit: u32,
        /// The tasklet that faulted.
        tasklet: u32,
        /// The faulting program counter.
        pc: u32,
    },
    /// The configured cycle limit was reached before all tasklets stopped
    /// (almost always a deadlocked or runaway kernel).
    CycleLimit {
        /// The cycle limit that was hit.
        limit: u64,
    },
    /// No program was loaded before launch.
    NoProgram,
    /// A host-side transfer named a DPU index outside the system
    /// (`try_copy_to_mram`/`try_copy_from_mram`).
    BadDpuIndex {
        /// The offending DPU index.
        dpu: u32,
        /// Number of DPUs in the system.
        n_dpus: u32,
    },
    /// A parallel host transfer supplied the wrong number of per-DPU
    /// chunks (`try_push_to_mram`/`try_push_to_symbol`) — under partial-rank
    /// scheduling a mis-sized batch must surface as an error, not an abort.
    ChunkCountMismatch {
        /// Chunks supplied by the caller.
        chunks: usize,
        /// DPUs in the system (one chunk per DPU is required).
        n_dpus: u32,
    },
    /// The `pim-ref` functional oracle disagreed with the simulator about
    /// the final architectural state (enabled by
    /// [`crate::DpuConfig::with_oracle_check`]).
    OracleDivergence {
        /// Human-readable description of the first divergence.
        detail: String,
    },
    /// An injected transient execution fault (fault-injection campaigns,
    /// [`crate::fault::FaultKind::Transient`]): the launch aborted before
    /// the kernel produced results and may be retried.
    InjectedFault {
        /// The DPU that faulted.
        dpu: u32,
    },
    /// An injected hang ([`crate::fault::FaultKind::Stuck`]): the DPU
    /// never stopped and the host watchdog fired after `timeout_ns`.
    DpuStuck {
        /// The DPU that hung.
        dpu: u32,
        /// The watchdog timeout that fired, ns.
        timeout_ns: u64,
    },
    /// The DPU's whole rank went offline mid-run
    /// ([`crate::fault::FaultKind::RankOffline`]) — every DPU it contains
    /// fails together until the rank rejoins.
    RankOffline {
        /// The DPU whose launch observed the outage.
        dpu: u32,
        /// The offline rank.
        rank: u32,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::OutOfBounds { space, addr, len, tasklet, pc } => write!(
                f,
                "tasklet {tasklet} @pc={pc}: {space} access of {len} bytes at {addr:#x} out of bounds"
            ),
            SimError::Unaligned { addr, align, tasklet, pc } => write!(
                f,
                "tasklet {tasklet} @pc={pc}: access at {addr:#x} violates {align}-byte alignment"
            ),
            SimError::PcOutOfRange { pc, tasklet } => {
                write!(f, "tasklet {tasklet}: program counter {pc} outside program")
            }
            SimError::DmaInCachedMode { pc, tasklet } => write!(
                f,
                "tasklet {tasklet} @pc={pc}: DMA instruction under the cache-centric memory model"
            ),
            SimError::BadDmaLength { len, tasklet, pc } => {
                write!(f, "tasklet {tasklet} @pc={pc}: bad DMA length {len}")
            }
            SimError::BadAtomicBit { bit, tasklet, pc } => {
                write!(f, "tasklet {tasklet} @pc={pc}: atomic bit {bit} out of range")
            }
            SimError::CycleLimit { limit } => {
                write!(f, "cycle limit of {limit} reached before all tasklets stopped")
            }
            SimError::NoProgram => write!(f, "no program loaded"),
            SimError::BadDpuIndex { dpu, n_dpus } => {
                write!(f, "DPU index {dpu} out of range (system has {n_dpus} DPUs)")
            }
            SimError::ChunkCountMismatch { chunks, n_dpus } => write!(
                f,
                "parallel transfer supplied {chunks} chunks for {n_dpus} DPUs (one chunk per DPU)"
            ),
            SimError::OracleDivergence { detail } => {
                write!(f, "functional-oracle divergence: {detail}")
            }
            SimError::InjectedFault { dpu } => {
                write!(f, "DPU {dpu}: injected transient execution fault")
            }
            SimError::DpuStuck { dpu, timeout_ns } => {
                write!(f, "DPU {dpu}: stuck — watchdog fired after {timeout_ns} ns")
            }
            SimError::RankOffline { dpu, rank } => {
                write!(f, "DPU {dpu}: rank {rank} is offline")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::OutOfBounds {
            space: AddressSpace::Wram,
            addr: 0x1_0000,
            len: 4,
            tasklet: 3,
            pc: 17,
        };
        let s = e.to_string();
        assert!(s.contains("tasklet 3"));
        assert!(s.contains("WRAM"));
        assert!(s.contains("0x10000"));
    }
}
