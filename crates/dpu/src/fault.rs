//! Fault-injection hooks at the launch boundary.
//!
//! Sibling of [`crate::mutation`]: a runtime-off switch that costs nothing
//! when untouched, except this one is *per DPU* rather than process-global
//! — a fault campaign fails individual devices, not the build. A
//! [`FaultKind`] armed on a [`crate::Dpu`] makes its **next** launch
//! return the corresponding typed [`SimError`] instead of running the
//! kernel (the host launch paths check the armed slot before dispatch, so
//! no cycles are simulated for a doomed launch). Faults are one-shot:
//! taking the armed kind disarms the DPU, modelling a transient event
//! that a retry can survive.
//!
//! The serving runtime (`pim-serve`) drives these same kinds from a
//! seeded `FaultPlan`, so the errors a scheduler must tolerate are
//! exactly the errors the hardware boundary can produce.

use crate::error::SimError;

/// The kind of fault to inject at the next launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A transient execution fault: the launch aborts immediately and a
    /// retry may succeed.
    Transient,
    /// A hang: the DPU never stops and the host watchdog fires after
    /// `timeout_ns` — the launch costs the full timeout before failing.
    Stuck {
        /// Watchdog timeout, ns.
        timeout_ns: u64,
    },
    /// The DPU's whole rank dropped offline; every launch on it fails
    /// until the rank rejoins.
    RankOffline {
        /// The offline rank.
        rank: u32,
    },
}

impl FaultKind {
    /// The typed [`SimError`] this fault surfaces as on DPU `dpu`.
    #[must_use]
    pub fn into_error(self, dpu: u32) -> SimError {
        match self {
            FaultKind::Transient => SimError::InjectedFault { dpu },
            FaultKind::Stuck { timeout_ns } => SimError::DpuStuck { dpu, timeout_ns },
            FaultKind::RankOffline { rank } => SimError::RankOffline { dpu, rank },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_maps_to_its_typed_error() {
        assert_eq!(FaultKind::Transient.into_error(3), SimError::InjectedFault { dpu: 3 });
        assert_eq!(
            FaultKind::Stuck { timeout_ns: 500 }.into_error(0),
            SimError::DpuStuck { dpu: 0, timeout_ns: 500 }
        );
        assert_eq!(
            FaultKind::RankOffline { rank: 2 }.into_error(129),
            SimError::RankOffline { dpu: 129, rank: 2 }
        );
    }

    #[test]
    fn errors_display_the_fault() {
        let e = FaultKind::Stuck { timeout_ns: 1_000 }.into_error(7);
        let s = e.to_string();
        assert!(s.contains("DPU 7") && s.contains("watchdog"), "{s}");
    }
}
