//! Rank-scale batched execution: one structure-of-arrays executor advances
//! many same-program DPUs per sweep.
//!
//! The execution stack is a multi-level hierarchy:
//!
//! 1. [`pim_isa::DecodedProgram`] — the pre-decoded side tables (source
//!    masks, destinations, hazards) shared by every executor;
//! 2. the compiled kernel (`crate::compiled::CompiledKernel`) — the
//!    threaded-code op table the per-DPU compiled loop executes, cached on
//!    the [`Dpu`] across relaunches;
//! 3. the per-DPU loops (`Dpu::run_scalar_fast` / `run_scalar_compiled`)
//!    — one DPU, one launch, semantics unchanged;
//! 4. this module — N same-program DPUs stepped out of one contiguous
//!    state block, executing through the leader's compiled op table.
//!
//! The flattening PR 4 applied across tasklets is applied here across DPUs:
//! the forwarding scoreboard becomes a single `Vec<u64>` indexed
//! `d*T*24 + t*24 + r`, and every other per-tasklet array (`status`,
//! `next_issue`, `ready_at`, `skip_dcache`) a single `Vec` indexed
//! `d*T + t`. One shared [`CompiledKernel`] (the leader's relaunch cache)
//! serves the whole batch — no per-batch program clone or re-decode —
//! per-DPU reset allocations disappear, and the working set a core
//! touches while sweeping stays contiguous.
//!
//! DPUs share no architectural state during a kernel, so each batch member
//! keeps its own event-driven timeline `now[d]`; a sweep advances every
//! *active* DPU by one scheduling event of its own schedule. Divergence is
//! handled by per-DPU retirement — a DPU that finishes (or faults) simply
//! drops out of the active set. Because each member's step is an exact
//! transliteration of the fast loop's iteration body, batched execution is
//! byte-identical to per-DPU execution: same `DpuRunStats`, same memory
//! end-state, regardless of batch size or membership. The differential
//! tests (`tests/loop_differential.rs`) and the pim-fuzz gauntlet's `batch`
//! invariant pin this.
//!
//! On top of the sweep sits the **lockstep fast path**, where the batched
//! layout pays off: same-program DPUs whose inputs differ only in *data*
//! make identical scheduling decisions (loop trips, DMA shapes, and branch
//! directions usually depend on staged sizes, not values), so while the
//! batch is *timing-convergent* the scheduler, the scoreboard, the memory
//! engine, and the statistics run **once** — on the batch leader — and the
//! followers replay only the functional execution of each issued
//! instruction. Convergence is verified per instruction by comparing every
//! member's [`Effect`] against the leader's (branch direction, DMA
//! address/length, acquire outcome, and stop are all visible there — in
//! scratchpad mode those are the only data-dependent timing inputs). On
//! the first disagreement the shared state is materialized into every
//! member's SoA row (plus a clone of the leader's engine and statistics,
//! identical by the convergence invariant), the divergent cycle is
//! completed per-DPU, and the batch permanently falls back to the sweep.
//! Lockstep is therefore a pure prefix optimization: byte-identical by
//! construction, with the fully-convergent case (the rank-scale sweep,
//! `pim-fuzz` batch cases) never leaving the shared schedule.
//!
//! Configurations the SoA stepper does not model (SIMT front-end, the naive
//! reference loop, event tracing) fall back to [`Dpu::launch`] per member,
//! so [`run_batch`] is total over any population.

use std::sync::Arc;

use pim_cache::Cache;

use crate::compiled::{CompiledKernel, CompiledOp, F_LOAD, F_STORE};
use crate::config::{ExecTier, MemoryMode};
use crate::dpu::{Dpu, TaskletStatus};
use crate::error::SimError;
use crate::exec::Effect;
use crate::mem::{MemEngine, Segment};
use crate::stats::DpuRunStats;

const NREGS: usize = pim_isa::NUM_GP_REGS as usize;

/// Whether a DPU's configuration is modeled by the SoA stepper.
///
/// SIMT front-ends, the naive reference loop, and event-traced runs keep
/// their dedicated loops; [`run_batch`] launches such DPUs individually.
#[must_use]
pub fn soa_eligible(dpu: &Dpu) -> bool {
    dpu.program.is_some()
        && dpu.cfg.simt.is_none()
        && dpu.cfg.effective_exec_tier() != ExecTier::Naive
        && dpu.cfg.event_trace_capacity == 0
}

/// Whether two DPUs can share one batch: both SoA-eligible, identical
/// configuration, identical instruction stream. (Data images, entry points
/// and tasklet-id bases may differ — they live in per-DPU state.)
fn compatible(a: &Dpu, b: &Dpu) -> bool {
    soa_eligible(a)
        && soa_eligible(b)
        && a.cfg == b.cfg
        && a.program.as_ref().map(|p| &p.instrs) == b.program.as_ref().map(|p| &p.instrs)
}

/// Launches every DPU in the slice, batching maximal contiguous runs of
/// same-program, same-configuration DPUs through the SoA stepper and
/// falling back to [`Dpu::launch`] for the rest.
///
/// Returns one result per DPU, in slice order. Timing, statistics, and
/// memory end-state are byte-identical to calling [`Dpu::launch`] on each
/// DPU individually.
pub fn run_batch(dpus: &mut [Dpu]) -> Vec<Result<DpuRunStats, SimError>> {
    let mut results: Vec<Option<Result<DpuRunStats, SimError>>> =
        (0..dpus.len()).map(|_| None).collect();
    let mut i = 0;
    while i < dpus.len() {
        if !soa_eligible(&dpus[i]) {
            results[i] = Some(dpus[i].launch());
            i += 1;
            continue;
        }
        let mut j = i + 1;
        while j < dpus.len() && compatible(&dpus[i], &dpus[j]) {
            j += 1;
        }
        let (group, out) = (&mut dpus[i..j], &mut results[i..j]);
        run_group(group, out);
        i = j;
    }
    results.into_iter().map(|r| r.expect("every DPU got a result")).collect()
}

/// Batch-wide immutable context: the leader's compiled kernel (program,
/// decoded side tables, and threaded-code op table, shared via the
/// relaunch cache) and every configuration-derived constant of the fast
/// loop.
struct BatchShared {
    kernel: Arc<CompiledKernel>,
    n_instrs: u32,
    /// Tasklets per DPU (uniform across the batch).
    n: usize,
    fwd: bool,
    unified_rf: bool,
    ways: usize,
    gap: u64,
    fwd_alu: u64,
    fwd_load: u64,
    cached: bool,
    iram_base: u32,
    max_cycles: u64,
    trace_limit: usize,
    /// Seeded bug for the mutation self-check, sampled once per batch (the
    /// per-DPU loop samples once per launch; the ambient value is
    /// identical, so batch ≡ per-DPU holds under `--mutate` too).
    #[cfg(feature = "mutation-hooks")]
    drop_rf_hazard: bool,
}

impl BatchShared {
    /// Cycle at which every operand of the instruction at `pc` is
    /// forwardable, given one tasklet's scoreboard row.
    fn deps_ready_at(&self, pc: u32, row: &[u64]) -> u64 {
        if !self.fwd {
            return 0;
        }
        match self.kernel.decoded.get(pc) {
            Some(d) => {
                let mut mask = d.src_mask;
                let mut latest = 0u64;
                while mask != 0 {
                    latest = latest.max(row[mask.trailing_zeros() as usize]);
                    mask &= mask - 1;
                }
                latest
            }
            None => 0,
        }
    }
}

/// Mutable SoA state for one batch. Per-tasklet arrays are flattened
/// across DPUs (`[d*T + t]`; the scoreboard `[d*T*24 + t*24 + r]`),
/// per-DPU scalars are plain vectors (`[d]`), and the two scratch buffers
/// are shared by every member (they carry no state across steps).
struct BatchState {
    status: Vec<TaskletStatus>,
    next_issue: Vec<u64>,
    reg_ready: Vec<u64>,
    skip_dcache: Vec<bool>,
    ready_at: Vec<u64>,
    wake: Vec<u64>,
    live: Vec<usize>,
    now: Vec<u64>,
    rf_block: Vec<u64>,
    rr: Vec<usize>,
    window_acc: Vec<(u64, u64)>,
    done_buf: Vec<(u64, u64)>,
    issuable: Vec<usize>,
}

impl BatchState {
    fn new(n_dpus: usize, n_tasklets: usize) -> Self {
        BatchState {
            status: vec![TaskletStatus::Ready; n_dpus * n_tasklets],
            next_issue: vec![0; n_dpus * n_tasklets],
            reg_ready: vec![0; n_dpus * n_tasklets * NREGS],
            skip_dcache: vec![false; n_dpus * n_tasklets],
            ready_at: vec![0; n_dpus * n_tasklets],
            wake: vec![0; n_dpus],
            live: vec![n_tasklets; n_dpus],
            now: vec![0; n_dpus],
            rf_block: vec![0; n_dpus],
            rr: vec![0; n_dpus],
            window_acc: vec![(0, 0); n_dpus],
            done_buf: Vec::with_capacity(n_tasklets),
            issuable: Vec::with_capacity(n_tasklets),
        }
    }
}

/// Runs one compatible group to completion through the SoA stepper.
fn run_group(group: &mut [Dpu], out: &mut [Option<Result<DpuRunStats, SimError>>]) {
    let nd = group.len();
    let cfg = group[0].cfg.clone();
    let n = cfg.n_tasklets as usize;

    // Reset every member before stepping any of them, exactly as a
    // sequence of individual launches would (the oracle snapshot must see
    // the post-reset, pre-run state).
    let mut mems: Vec<MemEngine> = Vec::with_capacity(nd);
    let mut oracles = Vec::with_capacity(nd);
    for dpu in group.iter_mut() {
        mems.push(dpu.reset_launch_state());
        oracles.push(dpu.build_oracle());
    }

    let kernel = group[0].kernel_artifacts();
    let sh = BatchShared {
        n_instrs: kernel.instrs.len() as u32,
        kernel,
        n,
        fwd: cfg.ilp.data_forwarding,
        unified_rf: cfg.ilp.unified_rf,
        ways: cfg.issue_ways() as usize,
        gap: if cfg.ilp.data_forwarding { 1 } else { u64::from(cfg.revolver_cycles) },
        fwd_alu: u64::from(cfg.forward_alu_latency),
        fwd_load: u64::from(cfg.forward_load_latency),
        cached: matches!(cfg.memory_mode, MemoryMode::Cached { .. }),
        iram_base: group[0].iram_backing_base(),
        max_cycles: cfg.max_cycles,
        trace_limit: cfg.trace_limit,
        #[cfg(feature = "mutation-hooks")]
        drop_rf_hazard: crate::mutation::scoreboard_bug(),
    };

    let mut icaches: Vec<Option<Cache>> = Vec::with_capacity(nd);
    let mut dcaches: Vec<Option<Cache>> = Vec::with_capacity(nd);
    for _ in 0..nd {
        match cfg.memory_mode {
            MemoryMode::Scratchpad => {
                icaches.push(None);
                dcaches.push(None);
            }
            MemoryMode::Cached { icache, dcache } => {
                icaches.push(Some(Cache::new(icache)));
                dcaches.push(Some(Cache::new(dcache)));
            }
        }
    }
    let mut stats: Vec<DpuRunStats> = group.iter().map(Dpu::new_stats).collect();
    let mut st = BatchState::new(nd, n);

    // Lockstep fast path (scratchpad mode, uniform entry points): run the
    // shared schedule on the leader until the members' effects disagree.
    // Cached mode stays on the sweep — cache-fill timing depends on
    // per-DPU load/store addresses, which the `Effect` comparison alone
    // does not witness.
    let mut active: Vec<usize>;
    let lockstep = nd > 1
        && !sh.cached
        && group
            .split_first()
            .is_some_and(|(leader, rest)| rest.iter().all(|x| x.state.pc == leader.state.pc));
    if lockstep {
        match run_lockstep(group, &mut mems, &mut stats, &mut oracles, &sh, &mut st, out) {
            LockstepEnd::Finished => return,
            LockstepEnd::Diverged { survivors } => active = survivors,
        }
    } else {
        active = (0..nd).collect();
    }

    // Sweep all active DPUs; retire members as they finish or fault.
    let mut next_active: Vec<usize> = Vec::with_capacity(nd);
    while !active.is_empty() {
        next_active.clear();
        for &d in &active {
            let stepped = step_dpu(
                d,
                &mut group[d],
                &mut mems[d],
                &mut icaches[d],
                &mut dcaches[d],
                &mut stats[d],
                &sh,
                &mut st,
            );
            match stepped {
                Ok(false) => next_active.push(d),
                Ok(true) => {
                    let mut s = std::mem::take(&mut stats[d]);
                    s.cycles = st.now[d];
                    s.dram = *mems[d].bank().stats();
                    s.mmu = mems[d].mmu().map(|m| *m.stats());
                    s.icache = icaches[d].take().map(|c| *c.stats());
                    s.dcache = dcaches[d].take().map(|c| *c.stats());
                    s.dma_requests = mems[d].requests_issued;
                    out[d] = Some(match oracles[d].take() {
                        Some(oracle) => group[d].check_against_oracle(oracle).map(|()| s),
                        None => Ok(s),
                    });
                }
                Err(e) => out[d] = Some(Err(e)),
            }
        }
        std::mem::swap(&mut active, &mut next_active);
    }
}

/// How a lockstep run ended.
enum LockstepEnd {
    /// Every member retired (or errored) inside the shared schedule; `out`
    /// is fully populated.
    Finished,
    /// The members' effects disagreed mid-cycle: the shared state has been
    /// materialized into every member's SoA row and the divergent cycle
    /// completed per-DPU; these members continue under the sweep.
    Diverged {
        /// Members still running (divergence-cycle faults are already in
        /// `out` and excluded here).
        survivors: Vec<usize>,
    },
}

/// Runs a timing-convergent batch on the shared schedule: scheduling,
/// scoreboard, memory-engine, and statistics work happen once — on row 0
/// and the leader's engine/stats — while every member executes each issued
/// instruction functionally. Convergence is checked per instruction by
/// comparing all members' [`Effect`]s; the first disagreement hands off to
/// [`diverge_and_finish_cycle`]. Scratchpad mode only (caller-gated): with
/// no caches, the effect stream is the only data-dependent timing input.
///
/// Every phase is the same transliteration of the per-DPU fast loop that
/// [`step_dpu`] uses, specialized to row 0.
#[allow(clippy::too_many_lines, clippy::too_many_arguments)]
fn run_lockstep(
    group: &mut [Dpu],
    mems: &mut [MemEngine],
    stats: &mut [DpuRunStats],
    oracles: &mut [Option<pim_ref::RefInterpreter>],
    sh: &BatchShared,
    st: &mut BatchState,
    out: &mut [Option<Result<DpuRunStats, SimError>>],
) -> LockstepEnd {
    let nd = group.len();
    let n = sh.n;
    let mut effects: Vec<Result<Effect, SimError>> = Vec::with_capacity(nd);
    loop {
        if st.live[0] == 0 {
            // The whole batch ran one schedule: identical timing statistics
            // for every member, individually-validated functional state.
            for d in 0..nd {
                let mut s = stats[0].clone();
                s.cycles = st.now[0];
                s.dram = *mems[0].bank().stats();
                s.mmu = mems[0].mmu().map(|m| *m.stats());
                s.dma_requests = mems[0].requests_issued;
                out[d] = Some(match oracles[d].take() {
                    Some(oracle) => group[d].check_against_oracle(oracle).map(|()| s),
                    None => Ok(s),
                });
            }
            return LockstepEnd::Finished;
        }
        let now = st.now[0];
        if now >= sh.max_cycles {
            for slot in out.iter_mut() {
                *slot = Some(Err(SimError::CycleLimit { limit: sh.max_cycles }));
            }
            return LockstepEnd::Finished;
        }
        // 1. Memory completions — leader engine only (followers' engines
        // would process the identical request stream and stay cloneable).
        if mems[0].is_active() {
            mems[0].advance(now);
            mems[0].drain_done_into(&mut st.done_buf);
            for &(token, at) in &st.done_buf {
                let t = token as usize;
                st.status[t] = TaskletStatus::Ready;
                st.next_issue[t] = st.next_issue[t].max(at + 1);
                let row = &st.reg_ready[t * NREGS..(t + 1) * NREGS];
                st.ready_at[t] = st.next_issue[t].max(sh.deps_ready_at(group[0].state.pc[t], row));
                st.wake[0] = st.wake[0].min(st.ready_at[t]);
            }
        }
        // 2. Issuable set.
        st.issuable.clear();
        if now >= st.wake[0] {
            for (t, &at) in st.ready_at[..n].iter().enumerate() {
                if now >= at {
                    st.issuable.push(t);
                }
            }
        }
        // 3. Register-file structural block.
        if st.rf_block[0] > 0 {
            stats[0].record_tlp_span(st.issuable.len(), 1, &mut st.window_acc[0]);
            stats[0].idle_rf += 1.0;
            st.rf_block[0] -= 1;
            st.now[0] = now + 1;
            continue;
        }
        // 4. Idle fast-forward.
        if st.issuable.is_empty() {
            let n_sched =
                st.status[..n].iter().filter(|s| **s == TaskletStatus::Ready).count() as f64;
            let n_mem =
                st.status[..n].iter().filter(|s| **s == TaskletStatus::Blocked).count() as f64;
            let mut next = st.ready_at[..n].iter().copied().min().unwrap_or(u64::MAX);
            st.wake[0] = next;
            if let Some(e) = mems[0].next_event(now) {
                next = next.min(e);
            }
            let next = if next == u64::MAX || next <= now { now + 1 } else { next };
            let span = (next - now).min(sh.max_cycles - now);
            stats[0].record_tlp_span(0, span, &mut st.window_acc[0]);
            let tot = (n_sched + n_mem).max(1.0);
            stats[0].idle_memory += span as f64 * n_mem / tot;
            stats[0].idle_revolver += span as f64 * n_sched / tot;
            st.now[0] = now + span;
            continue;
        }
        stats[0].record_tlp_span(st.issuable.len(), 1, &mut st.window_acc[0]);
        // 5. Issue up to `ways` instructions, round-robin: every member
        // executes, the leader keeps the books.
        let start = st.issuable.iter().position(|&t| t >= st.rr[0]).unwrap_or(0);
        let mut issued = 0usize;
        for k in 0..st.issuable.len() {
            if issued == sh.ways {
                break;
            }
            let t = st.issuable[(start + k) % st.issuable.len()];
            if st.status[t] != TaskletStatus::Ready {
                continue;
            }
            let pc = group[0].state.pc[t];
            if pc >= sh.n_instrs {
                for slot in out.iter_mut() {
                    *slot = Some(Err(SimError::PcOutOfRange { pc, tasklet: t as u32 }));
                }
                return LockstepEnd::Finished;
            }
            let op = sh.kernel.ops[pc as usize];
            let hazard = if sh.unified_rf { 0 } else { u64::from(op.rf_hazard) };
            #[cfg(feature = "mutation-hooks")]
            let hazard = if sh.drop_rf_hazard { 0 } else { hazard };
            if stats[0].trace.len() < sh.trace_limit {
                stats[0].trace.push(crate::stats::TraceEntry {
                    cycle: now,
                    tasklet: t as u32,
                    pc,
                    text: sh.kernel.instrs[pc as usize].to_string(),
                });
            }
            effects.clear();
            for dpu in group.iter_mut() {
                effects.push((op.exec)(&mut dpu.state, t as u32, pc, &op));
            }
            let convergent = match &effects[0] {
                Ok(e0) => effects[1..].iter().all(|r| matches!(r, Ok(e) if e == e0)),
                Err(_) => false,
            };
            if !convergent {
                let survivors = diverge_and_finish_cycle(
                    group,
                    mems,
                    stats,
                    sh,
                    st,
                    out,
                    &mut effects,
                    t,
                    pc,
                    op,
                    hazard,
                    start,
                    k + 1,
                    issued,
                );
                return LockstepEnd::Diverged { survivors };
            }
            let effect = match effects[0] {
                Ok(e) => e,
                Err(_) => unreachable!("convergence implies every member is Ok"),
            };
            stats[0].count_instruction_idx(op.class_idx as usize, t as u32);
            st.next_issue[t] = now + sh.gap;
            if sh.fwd {
                if let Some(rd) = op.dst() {
                    let lat = if op.is_load() { sh.fwd_load } else { sh.fwd_alu };
                    st.reg_ready[t * NREGS + rd as usize] = now + lat;
                }
            }
            match effect {
                Effect::Advance => {
                    for dpu in group.iter_mut() {
                        dpu.state.pc[t] = pc + 1;
                    }
                }
                Effect::Jump(target) => {
                    for dpu in group.iter_mut() {
                        dpu.state.pc[t] = target;
                    }
                }
                Effect::AcquireRetry => {}
                Effect::Stop => {
                    st.status[t] = TaskletStatus::Stopped;
                    stats[0].tasklet_stop_cycle[t] = now;
                    st.live[0] -= 1;
                }
                Effect::Dma { mram, len, write } => {
                    for dpu in group.iter_mut() {
                        dpu.state.pc[t] = pc + 1;
                    }
                    st.status[t] = TaskletStatus::Blocked;
                    mems[0].issue(t as u64, &[Segment { addr: mram, bytes: len, write }], now);
                }
            }
            if st.status[t] == TaskletStatus::Ready {
                let row = &st.reg_ready[t * NREGS..(t + 1) * NREGS];
                st.ready_at[t] = st.next_issue[t].max(sh.deps_ready_at(group[0].state.pc[t], row));
                st.wake[0] = st.wake[0].min(st.ready_at[t]);
            } else {
                st.ready_at[t] = u64::MAX;
            }
            issued += 1;
            st.rr[0] = t + 1;
            if hazard > 0 {
                st.rf_block[0] = hazard;
                break;
            }
        }
        if issued > 0 {
            stats[0].active_cycles += 1;
        } else {
            stats[0].idle_memory += 1.0;
        }
        st.now[0] = now + 1;
    }
}

/// Handles the first effect disagreement of a lockstep run: replicates the
/// shared scheduling state (row 0), the leader's engine, and the leader's
/// statistics into every member — all identical by the convergence
/// invariant, captured *before* the divergent instruction's bookkeeping —
/// then finishes the divergent instruction and the rest of its cycle
/// per-DPU. Members whose `execute` faulted retire with their error, per
/// the per-DPU loop's semantics.
///
/// Returns the members that continue under the sweep.
#[allow(clippy::too_many_arguments)]
fn diverge_and_finish_cycle(
    group: &mut [Dpu],
    mems: &mut [MemEngine],
    stats: &mut [DpuRunStats],
    sh: &BatchShared,
    st: &mut BatchState,
    out: &mut [Option<Result<DpuRunStats, SimError>>],
    effects: &mut Vec<Result<Effect, SimError>>,
    t: usize,
    pc: u32,
    op: CompiledOp,
    hazard: u64,
    start: usize,
    next_k: usize,
    issued_before: usize,
) -> Vec<usize> {
    let nd = group.len();
    let n = sh.n;
    let now = st.now[0];
    for d in 1..nd {
        st.status.copy_within(0..n, d * n);
        st.next_issue.copy_within(0..n, d * n);
        st.skip_dcache.copy_within(0..n, d * n);
        st.ready_at.copy_within(0..n, d * n);
        st.reg_ready.copy_within(0..n * NREGS, d * n * NREGS);
        st.wake[d] = st.wake[0];
        st.live[d] = st.live[0];
        st.now[d] = st.now[0];
        st.rf_block[d] = st.rf_block[0];
        st.rr[d] = st.rr[0];
        st.window_acc[d] = st.window_acc[0];
        mems[d] = mems[0].clone();
        stats[d] = stats[0].clone();
    }
    let mut survivors = Vec::with_capacity(nd);
    for (d, res) in effects.drain(..).enumerate() {
        let effect = match res {
            Ok(e) => e,
            Err(e) => {
                out[d] = Some(Err(e));
                continue;
            }
        };
        let tb = d * n;
        let rb = d * n * NREGS;
        // Post-execute bookkeeping of the divergent instruction with this
        // member's own effect (the tail of `step_dpu`'s issue body).
        stats[d].count_instruction_idx(op.class_idx as usize, t as u32);
        st.next_issue[tb + t] = now + sh.gap;
        if sh.fwd {
            if let Some(rd) = op.dst() {
                let lat = if op.is_load() { sh.fwd_load } else { sh.fwd_alu };
                st.reg_ready[rb + t * NREGS + rd as usize] = now + lat;
            }
        }
        match effect {
            Effect::Advance => group[d].state.pc[t] = pc + 1,
            Effect::Jump(target) => group[d].state.pc[t] = target,
            Effect::AcquireRetry => {}
            Effect::Stop => {
                st.status[tb + t] = TaskletStatus::Stopped;
                stats[d].tasklet_stop_cycle[t] = now;
                st.live[d] -= 1;
            }
            Effect::Dma { mram, len, write } => {
                group[d].state.pc[t] = pc + 1;
                st.status[tb + t] = TaskletStatus::Blocked;
                mems[d].issue(t as u64, &[Segment { addr: mram, bytes: len, write }], now);
            }
        }
        if st.status[tb + t] == TaskletStatus::Ready {
            let row = &st.reg_ready[rb + t * NREGS..rb + (t + 1) * NREGS];
            st.ready_at[tb + t] =
                st.next_issue[tb + t].max(sh.deps_ready_at(group[d].state.pc[t], row));
            st.wake[d] = st.wake[d].min(st.ready_at[tb + t]);
        } else {
            st.ready_at[tb + t] = u64::MAX;
        }
        let mut issued = issued_before + 1;
        st.rr[d] = t + 1;
        if hazard > 0 {
            st.rf_block[d] = hazard;
        } else {
            match finish_cycle_tail(
                d,
                &mut group[d],
                &mut mems[d],
                &mut stats[d],
                sh,
                st,
                start,
                next_k,
                issued,
            ) {
                Ok(total) => issued = total,
                Err(e) => {
                    out[d] = Some(Err(e));
                    continue;
                }
            }
        }
        if issued > 0 {
            stats[d].active_cycles += 1;
        } else {
            stats[d].idle_memory += 1.0;
        }
        st.now[d] = now + 1;
        survivors.push(d);
    }
    survivors
}

/// Finishes the remaining round-robin candidates of a divergence cycle for
/// one member — the rest of `step_dpu`'s issue loop, scratchpad-mode
/// specialization, operating on the member's freshly materialized row.
#[allow(clippy::too_many_arguments)]
fn finish_cycle_tail(
    d: usize,
    dpu: &mut Dpu,
    mem: &mut MemEngine,
    stats: &mut DpuRunStats,
    sh: &BatchShared,
    st: &mut BatchState,
    start: usize,
    from_k: usize,
    mut issued: usize,
) -> Result<usize, SimError> {
    let n = sh.n;
    let tb = d * n;
    let rb = d * n * NREGS;
    let now = st.now[d];
    for k in from_k..st.issuable.len() {
        if issued == sh.ways {
            break;
        }
        let t = st.issuable[(start + k) % st.issuable.len()];
        if st.status[tb + t] != TaskletStatus::Ready {
            continue;
        }
        let pc = dpu.state.pc[t];
        if pc >= sh.n_instrs {
            return Err(SimError::PcOutOfRange { pc, tasklet: t as u32 });
        }
        let op = sh.kernel.ops[pc as usize];
        let hazard = if sh.unified_rf { 0 } else { u64::from(op.rf_hazard) };
        #[cfg(feature = "mutation-hooks")]
        let hazard = if sh.drop_rf_hazard { 0 } else { hazard };
        if stats.trace.len() < sh.trace_limit {
            stats.trace.push(crate::stats::TraceEntry {
                cycle: now,
                tasklet: t as u32,
                pc,
                text: sh.kernel.instrs[pc as usize].to_string(),
            });
        }
        let effect = (op.exec)(&mut dpu.state, t as u32, pc, &op)?;
        stats.count_instruction_idx(op.class_idx as usize, t as u32);
        st.next_issue[tb + t] = now + sh.gap;
        if sh.fwd {
            if let Some(rd) = op.dst() {
                let lat = if op.is_load() { sh.fwd_load } else { sh.fwd_alu };
                st.reg_ready[rb + t * NREGS + rd as usize] = now + lat;
            }
        }
        match effect {
            Effect::Advance => dpu.state.pc[t] = pc + 1,
            Effect::Jump(target) => dpu.state.pc[t] = target,
            Effect::AcquireRetry => {}
            Effect::Stop => {
                st.status[tb + t] = TaskletStatus::Stopped;
                stats.tasklet_stop_cycle[t] = now;
                st.live[d] -= 1;
            }
            Effect::Dma { mram, len, write } => {
                dpu.state.pc[t] = pc + 1;
                st.status[tb + t] = TaskletStatus::Blocked;
                mem.issue(t as u64, &[Segment { addr: mram, bytes: len, write }], now);
            }
        }
        if st.status[tb + t] == TaskletStatus::Ready {
            let row = &st.reg_ready[rb + t * NREGS..rb + (t + 1) * NREGS];
            st.ready_at[tb + t] = st.next_issue[tb + t].max(sh.deps_ready_at(dpu.state.pc[t], row));
            st.wake[d] = st.wake[d].min(st.ready_at[tb + t]);
        } else {
            st.ready_at[tb + t] = u64::MAX;
        }
        issued += 1;
        st.rr[d] = t + 1;
        if hazard > 0 {
            st.rf_block[d] = hazard;
            break;
        }
    }
    Ok(issued)
}

/// Advances one batch member by one scheduling event of its own timeline —
/// an exact transliteration of one iteration of the per-DPU fast loop
/// (`Dpu::run_scalar_fast` with the null trace sink), reading and writing
/// the member's slices of the batch SoA arrays.
///
/// Returns `Ok(true)` when the member has finished (all tasklets stopped).
#[allow(clippy::too_many_lines, clippy::too_many_arguments)]
fn step_dpu(
    d: usize,
    dpu: &mut Dpu,
    mem: &mut MemEngine,
    icache: &mut Option<Cache>,
    dcache: &mut Option<Cache>,
    stats: &mut DpuRunStats,
    sh: &BatchShared,
    st: &mut BatchState,
) -> Result<bool, SimError> {
    let n = sh.n;
    let tb = d * n;
    let rb = d * n * NREGS;
    if st.live[d] == 0 {
        return Ok(true);
    }
    let now = st.now[d];
    if now >= sh.max_cycles {
        return Err(SimError::CycleLimit { limit: sh.max_cycles });
    }
    // 1. Memory completions (skipped while the engine holds no
    // outstanding request — `advance` would be a no-op).
    if mem.is_active() {
        mem.advance(now);
        mem.drain_done_into(&mut st.done_buf);
        for &(token, at) in &st.done_buf {
            let t = token as usize;
            st.status[tb + t] = TaskletStatus::Ready;
            st.next_issue[tb + t] = st.next_issue[tb + t].max(at + 1);
            let row = &st.reg_ready[rb + t * NREGS..rb + (t + 1) * NREGS];
            st.ready_at[tb + t] = st.next_issue[tb + t].max(sh.deps_ready_at(dpu.state.pc[t], row));
            st.wake[d] = st.wake[d].min(st.ready_at[tb + t]);
        }
    }
    // 2. Issuable set — scan skipped while `now < wake` proves it empty.
    st.issuable.clear();
    if now >= st.wake[d] {
        for (t, &at) in st.ready_at[tb..tb + n].iter().enumerate() {
            if now >= at {
                st.issuable.push(t);
            }
        }
    }
    // 3. Register-file structural block.
    if st.rf_block[d] > 0 {
        stats.record_tlp_span(st.issuable.len(), 1, &mut st.window_acc[d]);
        stats.idle_rf += 1.0;
        st.rf_block[d] -= 1;
        st.now[d] = now + 1;
        return Ok(false);
    }
    // 4. Nothing to issue: attribute the idle span across the per-tasklet
    // wait reasons, then fast-forward to the next possible event.
    if st.issuable.is_empty() {
        let n_sched =
            st.status[tb..tb + n].iter().filter(|s| **s == TaskletStatus::Ready).count() as f64;
        let n_mem =
            st.status[tb..tb + n].iter().filter(|s| **s == TaskletStatus::Blocked).count() as f64;
        let mut next = st.ready_at[tb..tb + n].iter().copied().min().unwrap_or(u64::MAX);
        st.wake[d] = next;
        if let Some(e) = mem.next_event(now) {
            next = next.min(e);
        }
        let next = if next == u64::MAX || next <= now { now + 1 } else { next };
        let span = (next - now).min(sh.max_cycles - now);
        stats.record_tlp_span(0, span, &mut st.window_acc[d]);
        let tot = (n_sched + n_mem).max(1.0);
        stats.idle_memory += span as f64 * n_mem / tot;
        stats.idle_revolver += span as f64 * n_sched / tot;
        st.now[d] = now + span;
        return Ok(false);
    }
    stats.record_tlp_span(st.issuable.len(), 1, &mut st.window_acc[d]);
    // 5. Issue up to `ways` instructions, round-robin.
    let start = st.issuable.iter().position(|&t| t >= st.rr[d]).unwrap_or(0);
    let mut issued = 0usize;
    for k in 0..st.issuable.len() {
        if issued == sh.ways {
            break;
        }
        let t = st.issuable[(start + k) % st.issuable.len()];
        if st.status[tb + t] != TaskletStatus::Ready {
            continue;
        }
        let pc = dpu.state.pc[t];
        if pc >= sh.n_instrs {
            return Err(SimError::PcOutOfRange { pc, tasklet: t as u32 });
        }
        // Instruction fetch through the I-cache (cache-centric mode).
        if let Some(ic) = icache.as_mut() {
            let fetch_addr = sh.iram_base + pc * pim_isa::layout::IRAM_INSTR_BYTES;
            let out = ic.access(fetch_addr, false);
            if !out.hit {
                st.status[tb + t] = TaskletStatus::Blocked;
                st.ready_at[tb + t] = u64::MAX;
                let line = out.fill_line.expect("miss has a fill");
                let bytes = ic.config().line_bytes;
                mem.issue(t as u64, &[Segment { addr: line, bytes, write: false }], now);
                continue;
            }
        }
        let op = sh.kernel.ops[pc as usize];
        if sh.cached && op.is_dma() {
            return Err(SimError::DmaInCachedMode { pc, tasklet: t as u32 });
        }
        // Data access through the D-cache (cache-centric mode). The
        // effective address comes from the pre-extracted base/offset
        // (identical to `ArchState::ls_addr` on the instruction).
        if let Some(dc) = dcache.as_mut() {
            if op.flags & (F_LOAD | F_STORE) != 0 {
                let addr = dpu.state.regs[t][op.b as usize].wrapping_add(op.imm as u32);
                let write = op.flags & F_STORE != 0;
                if st.skip_dcache[tb + t] {
                    st.skip_dcache[tb + t] = false;
                } else {
                    let out = dc.access(addr, write);
                    if !out.hit {
                        st.status[tb + t] = TaskletStatus::Blocked;
                        st.ready_at[tb + t] = u64::MAX;
                        st.skip_dcache[tb + t] = true;
                        let line_bytes = dc.config().line_bytes;
                        let fill = Segment {
                            addr: out.fill_line.expect("miss has a fill"),
                            bytes: line_bytes,
                            write: false,
                        };
                        let mut segs = [fill, fill];
                        let mut n_segs = 1;
                        if let Some(wb) = out.writeback_line {
                            segs[1] = Segment { addr: wb, bytes: line_bytes, write: true };
                            n_segs = 2;
                        }
                        mem.issue(t as u64, &segs[..n_segs], now);
                        continue;
                    }
                }
            }
        }
        // Register-file structural hazard (even/odd banks).
        let hazard = if sh.unified_rf { 0 } else { u64::from(op.rf_hazard) };
        #[cfg(feature = "mutation-hooks")]
        let hazard = if sh.drop_rf_hazard { 0 } else { hazard };
        if stats.trace.len() < sh.trace_limit {
            stats.trace.push(crate::stats::TraceEntry {
                cycle: now,
                tasklet: t as u32,
                pc,
                text: sh.kernel.instrs[pc as usize].to_string(),
            });
        }
        let effect = (op.exec)(&mut dpu.state, t as u32, pc, &op)?;
        stats.count_instruction_idx(op.class_idx as usize, t as u32);
        st.next_issue[tb + t] = now + sh.gap;
        if sh.fwd {
            if let Some(rd) = op.dst() {
                let lat = if op.is_load() { sh.fwd_load } else { sh.fwd_alu };
                st.reg_ready[rb + t * NREGS + rd as usize] = now + lat;
            }
        }
        match effect {
            Effect::Advance => dpu.state.pc[t] = pc + 1,
            Effect::Jump(target) => dpu.state.pc[t] = target,
            Effect::AcquireRetry => {}
            Effect::Stop => {
                st.status[tb + t] = TaskletStatus::Stopped;
                stats.tasklet_stop_cycle[t] = now;
                st.live[d] -= 1;
            }
            Effect::Dma { mram, len, write } => {
                dpu.state.pc[t] = pc + 1;
                st.status[tb + t] = TaskletStatus::Blocked;
                mem.issue(t as u64, &[Segment { addr: mram, bytes: len, write }], now);
            }
        }
        // Refresh the wakeup entry for the new PC / issue window.
        if st.status[tb + t] == TaskletStatus::Ready {
            let row = &st.reg_ready[rb + t * NREGS..rb + (t + 1) * NREGS];
            st.ready_at[tb + t] = st.next_issue[tb + t].max(sh.deps_ready_at(dpu.state.pc[t], row));
            st.wake[d] = st.wake[d].min(st.ready_at[tb + t]);
        } else {
            st.ready_at[tb + t] = u64::MAX;
        }
        issued += 1;
        st.rr[d] = t + 1;
        if hazard > 0 {
            // The split register file blocks the issue stage.
            st.rf_block[d] = hazard;
            break;
        }
    }
    if issued > 0 {
        stats.active_cycles += 1;
    } else {
        // Every candidate stalled on a cache fill this cycle.
        stats.idle_memory += 1.0;
    }
    st.now[d] = now + 1;
    Ok(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DpuConfig;
    use pim_asm::assemble;

    fn kernel(imm: i32) -> pim_asm::DpuProgram {
        assemble(&format!(".text\n movi r0, {imm}\n add r0, r0, 1\n stop\n")).unwrap()
    }

    #[test]
    fn batch_matches_individual_launches() {
        let cfg = DpuConfig::paper_baseline(4);
        let program = kernel(41);
        let mut batched: Vec<Dpu> = (0..5).map(|_| Dpu::new(cfg.clone())).collect();
        let mut solo: Vec<Dpu> = (0..5).map(|_| Dpu::new(cfg.clone())).collect();
        for dpu in batched.iter_mut().chain(solo.iter_mut()) {
            dpu.load_program(&program).unwrap();
        }
        let batch_stats = run_batch(&mut batched);
        for (b, s) in batch_stats.iter().zip(solo.iter_mut()) {
            let want = s.launch().unwrap();
            assert_eq!(format!("{:?}", b.as_ref().unwrap()), format!("{want:?}"));
        }
    }

    #[test]
    fn mixed_programs_partition_into_runs() {
        let cfg = DpuConfig::paper_baseline(2);
        let (pa, pb) = (kernel(1), kernel(2));
        let mut dpus: Vec<Dpu> = (0..4).map(|_| Dpu::new(cfg.clone())).collect();
        dpus[0].load_program(&pa).unwrap();
        dpus[1].load_program(&pa).unwrap();
        dpus[2].load_program(&pb).unwrap();
        dpus[3].load_program(&pa).unwrap();
        let results = run_batch(&mut dpus);
        assert_eq!(results.len(), 4);
        for r in &results {
            // 3 instructions × 2 tasklets on every DPU, whichever program.
            assert_eq!(r.as_ref().unwrap().instructions, 3 * 2);
        }
    }

    /// Branches on a value pulled from MRAM, so members with different
    /// inputs leave lockstep mid-kernel and must be materialized into
    /// their own SoA rows without losing a cycle of timing fidelity.
    fn divergent_kernel() -> pim_asm::DpuProgram {
        assemble(
            r#"
            .text
            movi r0, 0
            movi r1, 1024
            ldma r1, r0, 8
            lw   r2, 0(r1)
            bne  r2, 0, odd
            movi r3, 100
            add  r3, r3, r2
            sw   r3, 4(r1)
            sdma r1, r0, 8
            stop
        odd:
            movi r3, 7
        spin:
            sub  r3, r3, 1
            bne  r3, 0, spin
            sw   r2, 4(r1)
            sdma r1, r0, 8
            stop
        "#,
        )
        .unwrap()
    }

    #[test]
    fn mid_kernel_divergence_matches_individual_launches() {
        let cfg = DpuConfig::paper_baseline(4);
        let program = divergent_kernel();
        // Members 0-1 take the even path, 2-3 spin on the odd path: the
        // batch starts convergent (identical pcs) and splits at the `bne`.
        let inputs = [0u32, 0, 5, 9];
        let mut batched: Vec<Dpu> = (0..4).map(|_| Dpu::new(cfg.clone())).collect();
        let mut solo: Vec<Dpu> = (0..4).map(|_| Dpu::new(cfg.clone())).collect();
        for (i, dpu) in batched.iter_mut().chain(solo.iter_mut()).enumerate() {
            dpu.load_program(&program).unwrap();
            dpu.write_mram(0, &inputs[i % 4].to_le_bytes());
        }
        let batch_stats = run_batch(&mut batched);
        for ((b, bd), s) in batch_stats.iter().zip(batched.iter()).zip(solo.iter_mut()) {
            let want = s.launch().unwrap();
            assert_eq!(format!("{:?}", b.as_ref().unwrap()), format!("{want:?}"));
            assert_eq!(bd.read_mram(0, 8), s.read_mram(0, 8));
        }
        // The two paths really do take different time.
        let c0 = batch_stats[0].as_ref().unwrap().cycles;
        let c2 = batch_stats[2].as_ref().unwrap().cycles;
        assert_ne!(c0, c2, "odd path must cost different cycles");
    }

    #[test]
    fn unloaded_dpu_reports_no_program() {
        let mut dpus = vec![Dpu::new(DpuConfig::paper_baseline(1))];
        let results = run_batch(&mut dpus);
        assert!(matches!(results[0], Err(SimError::NoProgram)));
    }
}
