//! The DPU's memory engine: DMA requests and cache fills flowing through the
//! (optional) MMU, the cycle-level DDR4 bank, and the fixed-rate DMA
//! interface.
//!
//! Two rate limiters compose here, mirroring the paper's analysis (§V-B):
//!
//! 1. the **DRAM bank** itself (fast: ~16 B per DRAM cycle when streaming
//!    row hits — "several GB/s of bandwidth" at bank level), and
//! 2. the **DMA-engine interface**, a fixed bytes-per-core-cycle pipe that
//!    caps MRAM↔WRAM throughput at the 600–700 MB/s observed on real
//!    hardware.
//!
//! Every request is split into burst-sized bank accesses; each completed
//! burst then occupies the interface for `bytes / rate` core cycles. A
//! request completes when its last burst clears the interface. With the MMU
//! enabled, TLB-missing pages first perform their page-table walk as
//! dependent bank reads before any data burst is enqueued.

use std::collections::HashMap;

use pim_dram::{Access, AccessId, DramBank, DramConfig, RowEventKind};
use pim_mmu::Mmu;
use pim_trace::{TraceEvent, TraceSink};

/// A caller-chosen identifier reported back when a request completes.
pub(crate) type Token = u64;

/// One contiguous piece of a memory request (MRAM byte range).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Segment {
    /// Starting MRAM byte address (virtual when an MMU is configured).
    pub addr: u32,
    /// Length in bytes.
    pub bytes: u32,
    /// Whether this segment writes MRAM.
    pub write: bool,
}

#[derive(Debug, Clone)]
enum Phase {
    /// Waiting for page-walk reads to complete; data segments are held.
    Walk { remaining: usize },
    /// Data bursts are in the bank/interface pipeline.
    Data,
}

#[derive(Debug, Clone)]
struct Request {
    token: Token,
    phase: Phase,
    /// Physical data segments awaiting enqueue (Walk phase only).
    held: Vec<Segment>,
    /// Data bursts not yet through the interface.
    pending: usize,
    /// Latest interface-completion cycle seen so far.
    finish: u64,
    /// Whether every burst has been enqueued and accounted.
    all_enqueued: bool,
}

/// The memory engine. All public times are **core cycles**; the DRAM bank
/// runs in its own clock domain internally. `Clone` exists for the batch
/// executor's lockstep divergence handoff: while a batch is
/// timing-convergent only the leader's engine runs, and followers receive
/// an identical copy when they split off.
#[derive(Debug, Clone)]
pub(crate) struct MemEngine {
    bank: DramBank,
    mmu: Option<Mmu>,
    /// DRAM cycles per core cycle.
    ratio: f64,
    /// Interface throughput in bytes per core cycle.
    iface_rate: f64,
    /// Next core cycle at which the interface is free.
    iface_free_at: u64,
    /// Fixed per-request setup latency in core cycles.
    setup: u32,
    requests: HashMap<u64, Request>,
    next_slot: u64,
    /// Burst → (request slot, is_walk_burst).
    owner: HashMap<AccessId, (u64, bool)>,
    /// Completions ready to report: (token, completion core cycle).
    done: Vec<(Token, u64)>,
    /// Requests issued (for stats).
    pub requests_issued: u64,
    scratch: Vec<AccessId>,
    /// Reusable buffer for walk-completion bookkeeping in `advance`.
    walk_scratch: Vec<(u64, u64)>,
    /// Reusable buffer for MMU-translated segments in `issue`.
    phys_scratch: Vec<Segment>,
}

impl MemEngine {
    pub(crate) fn new(
        dram: DramConfig,
        mmu: Option<Mmu>,
        ratio: f64,
        iface_rate: f64,
        setup: u32,
    ) -> Self {
        assert!(ratio > 0.0 && iface_rate > 0.0);
        MemEngine {
            bank: DramBank::new(dram),
            mmu,
            ratio,
            iface_rate,
            iface_free_at: 0,
            setup,
            requests: HashMap::new(),
            next_slot: 0,
            owner: HashMap::new(),
            done: Vec::new(),
            requests_issued: 0,
            scratch: Vec::new(),
            walk_scratch: Vec::new(),
            phys_scratch: Vec::new(),
        }
    }

    pub(crate) fn bank(&self) -> &DramBank {
        &self.bank
    }

    /// Turns DRAM row-buffer event recording on or off (for tracing).
    pub(crate) fn set_row_event_recording(&mut self, on: bool) {
        self.bank.set_event_recording(on);
    }

    /// Drains recorded row-buffer events into `sink`, converting their
    /// timestamps from DRAM cycles to core cycles.
    pub(crate) fn drain_row_events<S: TraceSink>(&mut self, sink: &mut S) {
        for ev in self.bank.drain_row_events() {
            let cycle = self.to_core(ev.at);
            sink.emit(match ev.kind {
                RowEventKind::Activate => TraceEvent::RowActivate { cycle, row: ev.row },
                RowEventKind::Precharge => TraceEvent::RowPrecharge { cycle, row: ev.row },
            });
        }
    }

    pub(crate) fn mmu(&self) -> Option<&Mmu> {
        self.mmu.as_ref()
    }

    fn to_dram(&self, core: u64) -> u64 {
        (core as f64 * self.ratio) as u64
    }

    fn to_core(&self, dram: u64) -> u64 {
        (dram as f64 / self.ratio).ceil() as u64
    }

    /// Issues a request of one or more MRAM segments at core cycle `now`.
    /// Addresses are virtual when an MMU is configured.
    ///
    /// Allocation-free on the common paths (no MMU, or every page TLB-hits):
    /// translated segments go through a pooled scratch buffer and walk-read
    /// collection only allocates on an actual TLB miss.
    pub(crate) fn issue(&mut self, token: Token, segments: &[Segment], now: u64) {
        debug_assert!(!segments.is_empty());
        self.requests_issued += 1;
        let slot = self.next_slot;
        self.next_slot += 1;
        // Translate (MMU) — collect physical segments plus walk reads.
        let mut walk_reads: Vec<u32> = Vec::new();
        let mut tlb_cycles: u64 = 0;
        let mut physical = std::mem::take(&mut self.phys_scratch);
        physical.clear();
        if let Some(mmu) = self.mmu.as_mut() {
            let page = mmu.config().page_bytes;
            for seg in segments {
                let mut addr = seg.addr;
                let mut left = seg.bytes;
                while left > 0 {
                    let in_page = (page - addr % page).min(left);
                    let t = mmu.translate(addr);
                    tlb_cycles += u64::from(t.cycles);
                    if !t.tlb_hit {
                        walk_reads.extend(&t.walk_reads);
                    }
                    physical.push(Segment { addr: t.paddr, bytes: in_page, write: seg.write });
                    addr += in_page;
                    left -= in_page;
                }
            }
        }
        let start = now + u64::from(self.setup) + tlb_cycles;
        if walk_reads.is_empty() {
            let pending = if self.mmu.is_some() {
                self.enqueue_data(slot, &physical, start)
            } else {
                self.enqueue_data(slot, segments, start)
            };
            self.requests.insert(
                slot,
                Request {
                    token,
                    phase: Phase::Data,
                    held: Vec::new(),
                    pending,
                    finish: start, // at minimum
                    all_enqueued: true,
                },
            );
            self.phys_scratch = physical;
        } else {
            walk_reads.sort_unstable();
            walk_reads.dedup();
            let arrival = self.to_dram(start);
            let remaining = walk_reads.len();
            for pte in &walk_reads {
                let id = self.bank.enqueue(Access::read(*pte, 4), arrival);
                self.owner.insert(id, (slot, true));
            }
            self.requests.insert(
                slot,
                Request {
                    token,
                    phase: Phase::Walk { remaining },
                    held: physical,
                    pending: 0,
                    finish: start,
                    all_enqueued: false,
                },
            );
        }
    }

    /// Splits physical segments into burst-aligned bank accesses enqueued at
    /// core cycle `start`; returns the number of bursts.
    fn enqueue_data(&mut self, slot: u64, segments: &[Segment], start: u64) -> usize {
        let burst = self.bank.config().burst_bytes;
        let arrival = self.to_dram(start);
        let mut count = 0;
        for seg in segments {
            let mut addr = seg.addr;
            let mut left = seg.bytes;
            while left > 0 {
                let chunk = (burst - addr % burst).min(left);
                let access =
                    if seg.write { Access::write(addr, chunk) } else { Access::read(addr, chunk) };
                let id = self.bank.enqueue(access, arrival);
                self.owner.insert(id, (slot, false));
                addr += chunk;
                left -= chunk;
                count += 1;
            }
        }
        count
    }

    /// Drives the engine to core cycle `now`.
    pub(crate) fn advance(&mut self, now: u64) {
        let mut bank_done = std::mem::take(&mut self.scratch);
        bank_done.clear();
        self.bank.advance_to(self.to_dram(now), &mut bank_done);
        let mut walk_finished = std::mem::take(&mut self.walk_scratch);
        walk_finished.clear();
        for id in &bank_done {
            let (slot, is_walk) = self.owner.remove(id).expect("burst has an owner");
            if is_walk {
                let req = self.requests.get_mut(&slot).expect("live request");
                if let Phase::Walk { remaining } = &mut req.phase {
                    *remaining -= 1;
                    if *remaining == 0 {
                        // Walk completion time in core cycles.
                        // (The burst finished by `now`; use `now` — advance is
                        // called at event granularity so this is tight.)
                        walk_finished.push((slot, now));
                    }
                }
            } else {
                // Data burst: account interface occupancy in completion order.
                let req = self.requests.get_mut(&slot).expect("live request");
                let bytes = f64::from(self.bank.config().burst_bytes);
                let occupancy = (bytes / self.iface_rate).ceil() as u64;
                let t = self.iface_free_at.max(now);
                self.iface_free_at = t + occupancy;
                req.finish = req.finish.max(self.iface_free_at);
                req.pending -= 1;
            }
        }
        self.scratch = bank_done;
        self.scratch.clear();
        // Requests whose walk completed: enqueue their data bursts now.
        for (slot, at) in walk_finished.drain(..) {
            let held =
                std::mem::take(&mut self.requests.get_mut(&slot).expect("live request").held);
            let pending = self.enqueue_data(slot, &held, at);
            let req = self.requests.get_mut(&slot).expect("live request");
            req.pending = pending;
            req.phase = Phase::Data;
            req.all_enqueued = true;
            req.finish = req.finish.max(at);
        }
        self.walk_scratch = walk_finished;
        // Report and drop finished requests.
        let done = &mut self.done;
        self.requests.retain(|_, req| {
            if req.all_enqueued && req.pending == 0 && req.finish <= now {
                done.push((req.token, req.finish));
                false
            } else {
                true
            }
        });
    }

    /// Moves the completions accumulated by [`MemEngine::advance`] into
    /// `out` (cleared first), swapping buffers so neither side allocates in
    /// steady state.
    pub(crate) fn drain_done_into(&mut self, out: &mut Vec<(Token, u64)>) {
        out.clear();
        std::mem::swap(&mut self.done, out);
    }

    /// Whether a request is outstanding or a completion is unreported.
    /// When false, [`MemEngine::advance`] is a no-op (the bank holds no
    /// queued or in-flight bursts — every burst belongs to a live request)
    /// and the cycle loop may skip it.
    pub(crate) fn is_active(&self) -> bool {
        !self.requests.is_empty() || !self.done.is_empty()
    }

    /// The next core cycle at which progress may occur, or `None` if idle.
    pub(crate) fn next_event(&self, now: u64) -> Option<u64> {
        let mut next: Option<u64> = None;
        let mut consider = |t: u64| {
            let t = t.max(now + 1);
            next = Some(next.map_or(t, |n| n.min(t)));
        };
        for req in self.requests.values() {
            if req.all_enqueued && req.pending == 0 {
                consider(req.finish);
            }
        }
        if let Some(d) = self.bank.next_event() {
            consider(self.to_core(d));
        }
        next
    }

    /// Whether nothing is queued or in flight.
    #[cfg(test)]
    pub(crate) fn is_idle(&self) -> bool {
        self.requests.is_empty() && self.bank.is_idle()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_mmu::{MmuConfig, PageTable};

    fn engine() -> MemEngine {
        // Baseline: 1200/350 ≈ 3.43 DRAM cycles per core cycle, 2 B/cycle.
        MemEngine::new(DramConfig::ddr4_2400(), None, 1200.0 / 350.0, 2.0, 24)
    }

    fn run_until_done(e: &mut MemEngine, mut now: u64) -> Vec<(Token, u64)> {
        let mut out = Vec::new();
        let mut buf = Vec::new();
        let mut guard = 0;
        loop {
            e.advance(now);
            e.drain_done_into(&mut buf);
            out.extend_from_slice(&buf);
            if e.is_idle() && !out.is_empty() {
                return out;
            }
            match e.next_event(now) {
                Some(n) => now = n,
                None if e.is_idle() => return out,
                None => now += 1,
            }
            guard += 1;
            assert!(guard < 1_000_000, "engine failed to quiesce");
        }
    }

    #[test]
    fn single_small_read_completes() {
        let mut e = engine();
        e.issue(7, &[Segment { addr: 0, bytes: 8, write: false }], 0);
        let done = run_until_done(&mut e, 0);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].0, 7);
        // Setup (24) + bank access (~36 DRAM cyc ≈ 11 core) + interface.
        assert!(done[0].1 >= 24, "completion {} too early", done[0].1);
        assert_eq!(e.bank().stats().bytes_read, 8);
    }

    #[test]
    fn large_transfer_throughput_near_interface_rate() {
        let mut e = engine();
        let bytes = 64 * 1024u32;
        e.issue(1, &[Segment { addr: 0, bytes, write: false }], 0);
        let done = run_until_done(&mut e, 0);
        let cycles = done[0].1;
        let rate = f64::from(bytes) / cycles as f64;
        // Theoretical interface max is 2 B/cycle; bank overheads cost some.
        assert!(
            rate > 1.4 && rate <= 2.0,
            "streaming rate {rate:.2} B/cycle outside the 600–700 MB/s band"
        );
    }

    #[test]
    fn unaligned_transfer_splits_into_partial_bursts() {
        let mut e = engine();
        // 100 bytes starting at byte 60: bursts of 4 + 64 + 32.
        e.issue(2, &[Segment { addr: 60, bytes: 100, write: false }], 0);
        let done = run_until_done(&mut e, 0);
        assert_eq!(done.len(), 1);
        assert_eq!(e.bank().stats().reads, 3);
        assert_eq!(e.bank().stats().bytes_read, 100);
    }

    #[test]
    fn writes_flow_to_bank_as_writes() {
        let mut e = engine();
        e.issue(3, &[Segment { addr: 128, bytes: 64, write: true }], 0);
        run_until_done(&mut e, 0);
        assert_eq!(e.bank().stats().writes, 1);
        assert_eq!(e.bank().stats().bytes_written, 64);
    }

    #[test]
    fn concurrent_requests_share_interface() {
        let mut e = engine();
        // Two 4 KB streams issued together: combined time must reflect the
        // shared 2 B/cycle interface, i.e. ~4096 cycles, not ~2048.
        e.issue(1, &[Segment { addr: 0, bytes: 4096, write: false }], 0);
        e.issue(2, &[Segment { addr: 1 << 20, bytes: 4096, write: false }], 0);
        let done = run_until_done(&mut e, 0);
        let last = done.iter().map(|d| d.1).max().unwrap();
        assert!(last >= 4096, "two 4 KB reads through a 2 B/cycle pipe need ≥4096 cycles");
    }

    #[test]
    fn mmu_walks_then_transfers() {
        let pages = 16 * 1024;
        let mmu = Mmu::new(MmuConfig::paper(), PageTable::identity(pages));
        let mut e = MemEngine::new(DramConfig::ddr4_2400(), Some(mmu), 1200.0 / 350.0, 2.0, 24);
        e.issue(1, &[Segment { addr: 8192, bytes: 64, write: false }], 0);
        let done = run_until_done(&mut e, 0);
        assert_eq!(done.len(), 1);
        // 2 PTE reads + 1 data burst.
        assert_eq!(e.bank().stats().reads, 3);
        assert_eq!(e.mmu().unwrap().stats().tlb_misses, 1);
        // Second access to the same page: TLB hit, single data burst.
        e.issue(2, &[Segment { addr: 8256, bytes: 64, write: false }], done[0].1);
        run_until_done(&mut e, done[0].1);
        assert_eq!(e.mmu().unwrap().stats().tlb_hits, 1);
        assert_eq!(e.bank().stats().reads, 4);
    }

    #[test]
    fn mmu_transfer_crossing_pages_translates_each_page() {
        let mmu = Mmu::new(MmuConfig::paper(), PageTable::identity(16 * 1024));
        let mut e = MemEngine::new(DramConfig::ddr4_2400(), Some(mmu), 1200.0 / 350.0, 2.0, 0);
        // 6000 bytes starting mid-page: touches pages 0 and 1.
        e.issue(1, &[Segment { addr: 2048, bytes: 6000, write: false }], 0);
        run_until_done(&mut e, 0);
        assert_eq!(e.mmu().unwrap().stats().tlb_misses, 2);
    }

    #[test]
    fn walk_delays_data_relative_to_no_mmu() {
        let run = |mmu: Option<Mmu>| {
            let mut e = MemEngine::new(DramConfig::ddr4_2400(), mmu, 1200.0 / 350.0, 2.0, 24);
            e.issue(1, &[Segment { addr: 0, bytes: 2048, write: false }], 0);
            run_until_done(&mut e, 0)[0].1
        };
        let without = run(None);
        let with = run(Some(Mmu::new(MmuConfig::paper(), PageTable::identity(16 * 1024))));
        assert!(with > without, "page walk must add latency ({with} vs {without})");
    }

    #[test]
    fn multi_segment_request_completes_once() {
        let mut e = engine();
        e.issue(
            9,
            &[
                Segment { addr: 0, bytes: 64, write: false },
                Segment { addr: 4096, bytes: 64, write: false },
            ],
            0,
        );
        let done = run_until_done(&mut e, 0);
        assert_eq!(done.len(), 1);
        assert_eq!(e.bank().stats().reads, 2);
    }
}
