//! The SIMT vector front-end (paper §V-A, Fig 11).
//!
//! `warp_width` consecutive tasklets are grouped into a warp that issues one
//! instruction per cycle over the vector lanes. Control divergence is
//! handled with per-lane PCs: the scheduler rotates fairly among the
//! distinct PC groups present in a warp (a progress-guaranteeing
//! approximation of post-Volta independent thread scheduling — a pure
//! min-PC policy would deadlock intra-warp locks, which the PrIM barriers
//! exercise).
//!
//! The front-end is dependency-checked (issue gap of 1 with per-lane
//! operand forwarding) rather than revolver-gated: with at most two warps,
//! an 11-cycle same-warp dispatch gap would cap IPC at `2·W/11` and make
//! the paper's reported SIMT speedups unreachable; the vector design point
//! therefore assumes the forwarding-enabled pipeline (see `DESIGN.md` §5).
//!
//! The **address coalescer** (`+AC`) merges the grouped scalar accesses:
//! per-lane DMA transfers whose address ranges touch are fused into fewer,
//! larger memory-engine requests (amortizing per-request setup and keeping
//! the DRAM row open), and scratchpad accesses falling in the same 64 B
//! segment share one port slot instead of serializing per lane.

use pim_trace::{StallCause, TraceEvent, TraceSink};

use crate::dpu::{Dpu, TaskletStatus};
use crate::error::SimError;
use crate::exec::Effect;
use crate::mem::{MemEngine, Segment};
use crate::stats::DpuRunStats;

struct Warp {
    /// Lane → tasklet index range.
    lanes: std::ops::Range<usize>,
    /// Warp blocked on outstanding memory requests.
    pending_mem: usize,
    /// Earliest cycle the warp may issue again.
    next_issue: u64,
    /// Rotation counter for fair PC-group selection.
    rotation: usize,
}

/// Runs the loaded kernel under the SIMT front-end.
pub(crate) fn run_simt<S: TraceSink>(
    dpu: &mut Dpu,
    mut mem: MemEngine,
    sink: &mut S,
) -> Result<DpuRunStats, SimError> {
    const NREGS: usize = pim_isa::NUM_GP_REGS as usize;
    let cfg = dpu.cfg.clone();
    let simt = cfg.simt.expect("run_simt requires a SIMT config");
    let width = simt.warp_width as usize;
    let n = cfg.n_tasklets as usize;
    // Cached launch artifacts: the instruction stream and decoded side
    // table are built once per program load, not once per launch.
    let kernel = dpu.kernel_artifacts();
    let decoded = &kernel.decoded;
    let n_instrs = kernel.instrs.len() as u32;
    let unified_rf = cfg.ilp.unified_rf;
    let fwd_alu = u64::from(cfg.forward_alu_latency);
    let fwd_load = u64::from(cfg.forward_load_latency);

    let mut warps: Vec<Warp> = (0..n)
        .step_by(width)
        .map(|lo| Warp {
            lanes: lo..(lo + width).min(n),
            pending_mem: 0,
            next_issue: 0,
            rotation: 0,
        })
        .collect();
    let mut status = vec![TaskletStatus::Ready; n];
    // Forwarding scoreboard, flattened: lane `l`, register `r` lives at
    // `reg_ready[l * NREGS + r]` (one allocation, cache-friendly rows).
    let mut reg_ready = vec![0u64; n * NREGS];
    let mut stats = dpu.new_stats();
    let mut window_acc = (0u64, 0u64);
    let mut live = n;
    let mut now: u64 = 0;
    let mut port_block: u64 = 0;
    let mut rr = 0usize;
    // Scratch buffers reused across iterations so the steady-state loop
    // performs no heap allocation.
    let mut issuable: Vec<usize> = Vec::with_capacity(warps.len());
    let mut pcs: Vec<u32> = Vec::with_capacity(width);
    let mut active: Vec<usize> = Vec::with_capacity(width);
    let mut seg_slots: Vec<u32> = Vec::with_capacity(width);
    let mut dma_segments: Vec<Segment> = Vec::with_capacity(width);
    let mut merged: Vec<Segment> = Vec::with_capacity(width);
    let mut done_buf: Vec<(u64, u64)> = Vec::with_capacity(warps.len());

    loop {
        if live == 0 {
            break;
        }
        if now >= cfg.max_cycles {
            return Err(SimError::CycleLimit { limit: cfg.max_cycles });
        }
        if mem.is_active() {
            mem.advance(now);
            if sink.enabled() {
                mem.drain_row_events(sink);
            }
            mem.drain_done_into(&mut done_buf);
            for &(token, at) in &done_buf {
                if sink.enabled() {
                    sink.emit(TraceEvent::DmaEnd { cycle: at, tasklet: token as u32 });
                }
                let w = &mut warps[token as usize];
                w.pending_mem -= 1;
                if w.pending_mem == 0 {
                    w.next_issue = w.next_issue.max(at + 1);
                }
            }
        }
        // Issuable warps (live lanes, no outstanding memory, past gap).
        issuable.clear();
        issuable.extend((0..warps.len()).filter(|&wi| {
            let w = &warps[wi];
            w.pending_mem == 0
                && now >= w.next_issue
                && w.lanes.clone().any(|l| status[l] == TaskletStatus::Ready)
        }));
        let issuable_lanes: usize = issuable
            .iter()
            .map(|&wi| {
                warps[wi].lanes.clone().filter(|&l| status[l] == TaskletStatus::Ready).count()
            })
            .sum();
        if port_block > 0 {
            stats.record_tlp_span(issuable_lanes.min(n), 1, &mut window_acc);
            stats.idle_rf += 1.0;
            if sink.enabled() {
                sink.emit(TraceEvent::Stall {
                    cycle: now,
                    cycles: 1,
                    cause: StallCause::RegisterFile,
                });
            }
            port_block -= 1;
            now += 1;
            continue;
        }
        if issuable.is_empty() {
            // Fractional attribution by lane state, as in the scalar loop.
            let mut lanes_sched = 0f64;
            let mut lanes_mem = 0f64;
            let mut next = u64::MAX;
            for w in &warps {
                let live = w.lanes.clone().filter(|&l| status[l] == TaskletStatus::Ready).count();
                if w.pending_mem == 0 && live > 0 {
                    lanes_sched += live as f64;
                    next = next.min(w.next_issue);
                } else if live > 0 {
                    lanes_mem += live as f64;
                }
            }
            if let Some(e) = mem.next_event(now) {
                next = next.min(e);
            }
            let next = if next == u64::MAX || next <= now { now + 1 } else { next };
            let span = next - now;
            stats.record_tlp_span(0, span, &mut window_acc);
            let tot = (lanes_sched + lanes_mem).max(1.0);
            stats.idle_memory += span as f64 * lanes_mem / tot;
            stats.idle_revolver += span as f64 * lanes_sched / tot;
            if sink.enabled() {
                sink.emit(TraceEvent::Stall {
                    cycle: now,
                    cycles: span,
                    cause: if lanes_mem >= lanes_sched {
                        StallCause::Memory
                    } else {
                        StallCause::Revolver
                    },
                });
            }
            now = next;
            continue;
        }
        stats.record_tlp_span(issuable_lanes.min(n), 1, &mut window_acc);
        // Pick one warp round-robin.
        let wi = *issuable.iter().find(|&&wi| wi >= rr).unwrap_or(&issuable[0]);
        rr = wi + 1;
        // Fair rotation among the distinct PC groups whose operands are
        // forwarded; fall back to a pipeline stall if none is ready.
        pcs.clear();
        pcs.extend(
            warps[wi]
                .lanes
                .clone()
                .filter(|&l| status[l] == TaskletStatus::Ready)
                .map(|l| dpu.state.pc[l]),
        );
        pcs.sort_unstable();
        pcs.dedup();
        let group_ready = |pc: u32, dpu: &Dpu, reg_ready: &[u64]| -> bool {
            let Some(d) = decoded.get(pc) else {
                return true; // fault surfaces at execution
            };
            warps[wi]
                .lanes
                .clone()
                .filter(|&l| status[l] == TaskletStatus::Ready && dpu.state.pc[l] == pc)
                .all(|l| {
                    let mut mask = d.src_mask;
                    while mask != 0 {
                        let r = mask.trailing_zeros() as usize;
                        if reg_ready[l * NREGS + r] > now {
                            return false;
                        }
                        mask &= mask - 1;
                    }
                    true
                })
        };
        let rot = warps[wi].rotation;
        let chosen = (0..pcs.len())
            .map(|k| pcs[(rot + k) % pcs.len()])
            .find(|&pc| group_ready(pc, dpu, &reg_ready));
        warps[wi].rotation = rot.wrapping_add(1);
        let Some(pc) = chosen else {
            // All groups waiting on forwarding: a pipeline stall cycle.
            stats.idle_revolver += 1.0;
            if sink.enabled() {
                sink.emit(TraceEvent::Stall { cycle: now, cycles: 1, cause: StallCause::Revolver });
            }
            now += 1;
            continue;
        };
        if pc >= n_instrs {
            let lane = warps[wi]
                .lanes
                .clone()
                .find(|&l| dpu.state.pc[l] == pc)
                .unwrap_or(warps[wi].lanes.start);
            return Err(SimError::PcOutOfRange { pc, tasklet: lane as u32 });
        }
        let instr = kernel.instrs[pc as usize];
        let d = *decoded.get(pc).expect("pc bounds-checked above");
        active.clear();
        active.extend(
            warps[wi]
                .lanes
                .clone()
                .filter(|&l| status[l] == TaskletStatus::Ready && dpu.state.pc[l] == pc),
        );
        // Structural hazards: split RF banks, and the scratchpad port for
        // vector loads/stores (one slot per 64 B segment with coalescing,
        // one per active lane without).
        let mut hazard = if unified_rf { 0 } else { u64::from(d.rf_hazard) };
        if matches!(instr, pim_isa::Instruction::Load { .. } | pim_isa::Instruction::Store { .. }) {
            let slots = if simt.coalescing {
                // Coalesced accesses occupy one slot per group of
                // `wram_ports` distinct 64 B segments (banked WRAM).
                seg_slots.clear();
                seg_slots.extend(
                    active
                        .iter()
                        .filter_map(|&l| dpu.state.ls_addr(l as u32, &instr).map(|(a, _)| a / 64)),
                );
                seg_slots.sort_unstable();
                seg_slots.dedup();
                (seg_slots.len() as u32).div_ceil(simt.wram_ports.max(1)).max(1) as usize
            } else {
                active.len()
            };
            hazard += slots as u64 - 1;
        }
        // Execute over the active lanes; gather DMA segments.
        dma_segments.clear();
        let mut dma_lane_requests = 0usize;
        for &l in &active {
            if stats.trace.len() < cfg.trace_limit {
                stats.trace.push(crate::stats::TraceEntry {
                    cycle: now,
                    tasklet: l as u32,
                    pc,
                    text: instr.to_string(),
                });
            }
            let effect = dpu.state.execute(l as u32, &instr)?;
            stats.count_instruction(d.class, l as u32);
            if sink.enabled() {
                sink.emit(TraceEvent::InstrRetire {
                    cycle: now,
                    tasklet: l as u32,
                    pc,
                    class: d.class,
                });
                match instr {
                    pim_isa::Instruction::Acquire { bit } => {
                        sink.emit(TraceEvent::BarrierAcquire {
                            cycle: now,
                            tasklet: l as u32,
                            bit: dpu.state.operand(l as u32, bit),
                            acquired: effect != Effect::AcquireRetry,
                        });
                    }
                    pim_isa::Instruction::Release { bit } => {
                        sink.emit(TraceEvent::BarrierRelease {
                            cycle: now,
                            tasklet: l as u32,
                            bit: dpu.state.operand(l as u32, bit),
                        });
                    }
                    _ => {}
                }
            }
            if let Some(rd) = d.dst {
                let lat = if d.is_load { fwd_load } else { fwd_alu };
                reg_ready[l * NREGS + rd as usize] = now + lat;
            }
            match effect {
                Effect::Advance => dpu.state.pc[l] = pc + 1,
                Effect::Jump(t) => dpu.state.pc[l] = t,
                Effect::AcquireRetry => {}
                Effect::Stop => {
                    status[l] = TaskletStatus::Stopped;
                    stats.tasklet_stop_cycle[l] = now;
                    live -= 1;
                }
                Effect::Dma { mram, len, write } => {
                    dpu.state.pc[l] = pc + 1;
                    dma_segments.push(Segment { addr: mram, bytes: len, write });
                    dma_lane_requests += 1;
                }
            }
        }
        if !dma_segments.is_empty() {
            if simt.coalescing {
                // Merge touching ranges of the same direction.
                dma_segments.sort_by_key(|s| (s.write, s.addr));
                merged.clear();
                for s in dma_segments.drain(..) {
                    match merged.last_mut() {
                        Some(prev) if prev.write == s.write && s.addr <= prev.addr + prev.bytes => {
                            let end = (s.addr + s.bytes).max(prev.addr + prev.bytes);
                            prev.bytes = end - prev.addr;
                        }
                        _ => merged.push(s),
                    }
                }
                warps[wi].pending_mem = 1;
                if sink.enabled() {
                    for s in &merged {
                        sink.emit(TraceEvent::DmaBegin {
                            cycle: now,
                            tasklet: wi as u32,
                            mram: s.addr,
                            bytes: s.bytes,
                            write: s.write,
                        });
                    }
                }
                mem.issue(wi as u64, &merged, now);
            } else {
                // One engine request per lane: per-request setup is paid
                // for every scalar transfer, as in the uncoalesced design.
                warps[wi].pending_mem = dma_lane_requests;
                for s in dma_segments.drain(..) {
                    if sink.enabled() {
                        sink.emit(TraceEvent::DmaBegin {
                            cycle: now,
                            tasklet: wi as u32,
                            mram: s.addr,
                            bytes: s.bytes,
                            write: s.write,
                        });
                    }
                    mem.issue(wi as u64, &[s], now);
                }
            }
        }
        warps[wi].next_issue = now + 1;
        if hazard > 0 {
            port_block = hazard;
        }
        stats.active_cycles += 1;
        now += 1;
    }
    stats.cycles = now;
    stats.dram = *mem.bank().stats();
    stats.mmu = mem.mmu().map(|m| *m.stats());
    stats.dma_requests = mem.requests_issued;
    Ok(stats)
}
