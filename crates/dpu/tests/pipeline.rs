//! End-to-end pipeline-behaviour tests: these pin down the timing semantics
//! the paper's characterization figures rest on (revolver stalls, RF
//! hazards, DMA blocking, ILP features, SIMT, caches, MMU).

use pim_asm::{assemble, Barrier, KernelBuilder, Mutex};
use pim_dpu::{Dpu, DpuConfig, IlpFeatures, SimtConfig};
use pim_isa::{AluOp, Cond};

/// A kernel of `n` independent ALU instructions per tasklet, then stop.
fn independent_alu_kernel(n: usize) -> pim_asm::DpuProgram {
    let mut k = KernelBuilder::new();
    let [a, b] = k.regs(["a", "b"]);
    k.movi(a, 1);
    for _ in 0..n {
        // Only `a` is read, and it is written once up front: no RAW chain.
        k.alu(AluOp::Add, b, a, 7);
    }
    k.stop();
    k.build().unwrap()
}

fn run(cfg: DpuConfig, program: &pim_asm::DpuProgram) -> pim_dpu::DpuRunStats {
    let mut dpu = Dpu::new(cfg);
    dpu.load_program(program).unwrap();
    dpu.launch().unwrap()
}

#[test]
fn single_tasklet_is_revolver_bound() {
    let program = independent_alu_kernel(100);
    let stats = run(DpuConfig::paper_baseline(1), &program);
    // Each of the ~102 instructions dispatches 11 cycles after the previous:
    // IPC ≈ 1/11 and the idle cycles are attributed to the revolver.
    assert!(stats.cycles >= 100 * 11, "cycles {} below revolver bound", stats.cycles);
    assert!(
        stats.ipc() < 0.11 && stats.ipc() > 0.08,
        "1-thread IPC {} should be ≈ 1/11",
        stats.ipc()
    );
    let (_, mem, rev, rf) = stats.breakdown();
    assert!(rev > 0.85, "revolver idle fraction {rev} should dominate");
    assert!(mem < 0.05 && rf < 0.05);
}

#[test]
fn sixteen_tasklets_saturate_the_pipeline() {
    let program = independent_alu_kernel(100);
    let stats = run(DpuConfig::paper_baseline(16), &program);
    // 16 > 11 tasklets: the scheduler can fill every slot.
    assert!(stats.ipc() > 0.9, "16-thread IPC {} should approach 1", stats.ipc());
    let (active, ..) = stats.breakdown();
    assert!(active > 0.9);
}

#[test]
fn data_forwarding_unlocks_single_thread_ilp() {
    let program = independent_alu_kernel(100);
    let base = run(DpuConfig::paper_baseline(1), &program);
    let d = IlpFeatures { data_forwarding: true, ..IlpFeatures::default() };
    let fwd = run(DpuConfig::paper_baseline(1).with_ilp(d), &program);
    // Independent instructions now dispatch back-to-back.
    assert!(
        fwd.cycles * 5 < base.cycles,
        "forwarding should speed independent code >5x ({} vs {})",
        fwd.cycles,
        base.cycles
    );
}

#[test]
fn forwarding_respects_true_dependences() {
    // A strict dependence chain: each add consumes the previous result.
    let mut k = KernelBuilder::new();
    let a = k.reg("a");
    k.movi(a, 0);
    for _ in 0..100 {
        k.add(a, a, 1);
    }
    k.stop();
    let program = k.build().unwrap();
    let d = IlpFeatures { data_forwarding: true, ..IlpFeatures::default() };
    let chain = run(DpuConfig::paper_baseline(1).with_ilp(d), &program);
    let indep = run(DpuConfig::paper_baseline(1).with_ilp(d), &independent_alu_kernel(100));
    // The chain waits ~alu_forward_latency per instruction.
    assert!(
        chain.cycles > indep.cycles * 2,
        "dependent chain ({}) must be slower than independent code ({})",
        chain.cycles,
        indep.cycles
    );
    // Functional result intact.
}

#[test]
fn rf_hazard_appears_and_unified_rf_removes_it() {
    // Sources r0 and r2 are both even-bank: structural hazard every time.
    let src = "
        .text
        movi r0, 1
        movi r2, 2
        add r4, r0, r2
        add r6, r0, r2
        add r4, r0, r2
        add r6, r0, r2
        add r4, r0, r2
        add r6, r0, r2
        stop
    ";
    let program = assemble(src).unwrap();
    let base = run(DpuConfig::paper_baseline(16), &program);
    assert!(base.idle_rf > 0.0, "even/even sources must cost RF hazard cycles");
    let r = IlpFeatures { unified_rf: true, ..IlpFeatures::default() };
    let unified = run(DpuConfig::paper_baseline(16).with_ilp(r), &program);
    assert_eq!(unified.idle_rf, 0.0, "unified RF removes the hazard");
    assert!(unified.cycles <= base.cycles);
}

#[test]
fn superscalar_doubles_throughput_with_enough_tlp() {
    let program = independent_alu_kernel(200);
    let drs = IlpFeatures {
        data_forwarding: true,
        unified_rf: true,
        superscalar: true,
        double_frequency: false,
    };
    let base = run(DpuConfig::paper_baseline(16), &program);
    let fast = run(DpuConfig::paper_baseline(16).with_ilp(drs), &program);
    assert!(fast.ipc() > 1.5, "2-way superscalar IPC {} should approach 2", fast.ipc());
    assert!(fast.ipc() > base.ipc() * 1.5);
}

#[test]
fn dma_blocks_and_counts_memory_idle() {
    // Single tasklet ping-ponging small DMA reads: memory-bound.
    let mut k = KernelBuilder::new();
    let [w, m, i] = k.regs(["w", "m", "i"]);
    k.movi(w, 0);
    k.movi(m, 0);
    k.movi(i, 64);
    let top = k.label_here("loop");
    k.ldma(w, m, 8);
    k.sub(i, i, 1);
    k.branch(Cond::Ne, i, 0, &top);
    k.stop();
    let program = k.build().unwrap();
    let stats = run(DpuConfig::paper_baseline(1), &program);
    let (_, mem_frac, ..) = stats.breakdown();
    assert!(mem_frac > 0.4, "small-DMA loop should be memory-idle, got {mem_frac}");
    assert_eq!(stats.dram.bytes_read, 64 * 8);
    assert_eq!(stats.dma_requests, 64);
}

#[test]
fn dma_functional_round_trip_through_mram() {
    let mut k = KernelBuilder::new();
    let buf = k.global_zeroed("buf", 64);
    let [w, m] = k.regs(["w", "m"]);
    k.movi(w, buf as i32);
    k.movi(m, 4096);
    k.ldma(w, m, 64); // MRAM → WRAM
                      // Increment first word.
    let v = k.reg("v");
    k.lw(v, w, 0);
    k.add(v, v, 1);
    k.sw(v, w, 0);
    k.sdma(w, m, 64); // WRAM → MRAM
    k.stop();
    let program = k.build().unwrap();
    let mut dpu = Dpu::new(DpuConfig::paper_baseline(1));
    dpu.load_program(&program).unwrap();
    dpu.write_mram(4096, &41i32.to_le_bytes());
    dpu.launch().unwrap();
    let out = dpu.read_mram(4096, 4);
    assert_eq!(i32::from_le_bytes(out.try_into().unwrap()), 42);
}

#[test]
fn barrier_synchronizes_all_tasklets_repeatedly() {
    // Each tasklet adds its id to a per-round accumulator; rounds separated
    // by barriers. With correct barriers every round sums 0+1+…+7.
    let n = 8u32;
    let rounds = 4;
    let mut k = KernelBuilder::new();
    let bar = Barrier::alloc(&mut k, n);
    let mtx = Mutex::alloc(&mut k);
    let sums = k.global_zeroed("sums", 4 * rounds);
    let [s0, s1, s2] = k.regs(["s0", "s1", "s2"]);
    let [t, p, v] = k.regs(["t", "p", "v"]);
    k.tid(t);
    for r in 0..rounds {
        mtx.lock(&mut k);
        k.movi(p, (sums + 4 * r) as i32);
        k.lw(v, p, 0);
        k.add(v, v, t);
        k.sw(v, p, 0);
        mtx.unlock(&mut k);
        bar.wait(&mut k, [s0, s1, s2]);
    }
    k.stop();
    let program = k.build().unwrap();
    let mut dpu = Dpu::new(DpuConfig::paper_baseline(n));
    dpu.load_program(&program).unwrap();
    let stats = dpu.launch().unwrap();
    let out = dpu.read_wram_symbol("sums");
    for r in 0..rounds as usize {
        let v = i32::from_le_bytes(out[4 * r..4 * r + 4].try_into().unwrap());
        assert_eq!(v, 28, "round {r} sum");
    }
    // Busy-wait spinning must show up as executed instructions.
    assert!(stats.instructions > 0);
}

#[test]
fn mutex_contention_counts_sync_instructions() {
    // All tasklets hammer one counter: acquire retries inflate the sync
    // class, the effect behind the paper's HST-L observation (Fig 9).
    let n = 16u32;
    let mut k = KernelBuilder::new();
    let mtx = Mutex::alloc(&mut k);
    let counter = k.global_zeroed("counter", 4);
    let [p, v, i] = k.regs(["p", "v", "i"]);
    k.movi(i, 8);
    let top = k.label_here("loop");
    mtx.lock(&mut k);
    k.movi(p, counter as i32);
    k.lw(v, p, 0);
    k.add(v, v, 1);
    k.sw(v, p, 0);
    mtx.unlock(&mut k);
    k.sub(i, i, 1);
    k.branch(Cond::Ne, i, 0, &top);
    k.stop();
    let program = k.build().unwrap();
    let mut dpu = Dpu::new(DpuConfig::paper_baseline(n));
    dpu.load_program(&program).unwrap();
    let stats = dpu.launch().unwrap();
    let out = dpu.read_wram_symbol("counter");
    assert_eq!(i32::from_le_bytes(out.try_into().unwrap()), (n * 8) as i32);
    let sync = stats.class_fraction(pim_isa::InstrClass::Sync);
    // 2 sync per critical section minimum; retries push it higher.
    assert!(sync > 0.15, "contended locking should inflate sync mix, got {sync}");
}

#[test]
fn simt_runs_lockstep_and_beats_scalar_on_data_parallel_code() {
    // Per-lane independent arithmetic over disjoint WRAM slots.
    let n = 16u32;
    let mut k = KernelBuilder::new();
    let data = k.global_zeroed("data", 4 * n);
    let [t, p, v, i] = k.regs(["t", "p", "v", "i"]);
    k.tasklet_slot(p, data, 4);
    k.tid(t);
    k.movi(v, 0);
    k.movi(i, 50);
    let top = k.label_here("loop");
    k.add(v, v, t);
    k.sub(i, i, 1);
    k.branch(Cond::Ne, i, 0, &top);
    k.sw(v, p, 0);
    k.stop();
    let program = k.build().unwrap();

    let scalar = run(DpuConfig::paper_baseline(n), &program);
    let mut dpu = Dpu::new(
        DpuConfig::paper_baseline(n)
            .with_simt(SimtConfig { coalescing: true, ..SimtConfig::default() }),
    );
    dpu.load_program(&program).unwrap();
    let simt = dpu.launch().unwrap();
    // Functional: data[t] = 50 * t.
    let out = dpu.read_wram_symbol("data");
    for t in 0..n as usize {
        let v = i32::from_le_bytes(out[4 * t..4 * t + 4].try_into().unwrap());
        assert_eq!(v, 50 * t as i32, "lane {t}");
    }
    assert!(
        simt.ipc() > scalar.ipc() * 2.0,
        "SIMT IPC {} should beat scalar {}",
        simt.ipc(),
        scalar.ipc()
    );
    assert_eq!(simt.max_ipc, 16);
}

#[test]
fn simt_intra_warp_lock_makes_progress() {
    // All 16 lanes of one warp take the same mutex — a min-PC scheduler
    // would deadlock here; the rotation policy must complete.
    let n = 16u32;
    let mut k = KernelBuilder::new();
    let mtx = Mutex::alloc(&mut k);
    let counter = k.global_zeroed("counter", 4);
    let [p, v] = k.regs(["p", "v"]);
    mtx.lock(&mut k);
    k.movi(p, counter as i32);
    k.lw(v, p, 0);
    k.add(v, v, 1);
    k.sw(v, p, 0);
    mtx.unlock(&mut k);
    k.stop();
    let program = k.build().unwrap();
    let mut dpu = Dpu::new(
        DpuConfig::paper_baseline(n)
            .with_simt(SimtConfig { coalescing: false, ..SimtConfig::default() }),
    );
    dpu.load_program(&program).unwrap();
    dpu.launch().unwrap();
    let out = dpu.read_wram_symbol("counter");
    assert_eq!(i32::from_le_bytes(out.try_into().unwrap()), 16);
}

#[test]
fn simt_coalescing_reduces_memory_requests() {
    // Every lane DMAs an adjacent 64 B block: coalescing fuses the warp's
    // 16 transfers into one engine request.
    let n = 16u32;
    let mut k = KernelBuilder::new();
    let buf = k.global_zeroed("buf", 64 * n);
    let [w, m] = k.regs(["w", "m"]);
    k.tasklet_slot(w, buf, 64);
    k.tid(m);
    k.mul(m, m, 64);
    k.ldma(w, m, 64);
    k.stop();
    let program = k.build().unwrap();
    let mk = |coalescing| {
        let mut dpu = Dpu::new(
            DpuConfig::paper_baseline(n)
                .with_simt(SimtConfig { coalescing, ..SimtConfig::default() }),
        );
        dpu.load_program(&program).unwrap();
        dpu.launch().unwrap()
    };
    let no_ac = mk(false);
    let ac = mk(true);
    assert!(ac.dma_requests < no_ac.dma_requests);
    assert_eq!(ac.dram.bytes_read, no_ac.dram.bytes_read, "same bytes either way");
    assert!(ac.cycles <= no_ac.cycles, "coalescing must not slow the warp");
}

#[test]
fn cached_mode_executes_flat_loads_and_counts_cache_traffic() {
    // Walk 32 KB of flat data twice: second pass hits in the 64 KB D-cache.
    let mut k = KernelBuilder::new();
    let data = k.global_zeroed("data", 32 * 1024);
    let sum = k.global_zeroed("sum", 4);
    let [p, v, acc, i] = k.regs(["p", "v", "acc", "i"]);
    k.movi(acc, 0);
    for _pass in 0..2 {
        k.movi(p, data as i32);
        k.movi(i, 32 * 1024 / 4);
        let top = k.label_here("pass");
        k.lw(v, p, 0);
        k.add(acc, acc, v);
        k.add(p, p, 4);
        k.sub(i, i, 1);
        k.branch(Cond::Ne, i, 0, &top);
    }
    k.movi(p, sum as i32);
    k.sw(acc, p, 0);
    k.stop();
    let program = k.build().unwrap();
    let mut dpu = Dpu::new(DpuConfig::paper_baseline(1).with_paper_caches());
    dpu.load_program(&program).unwrap();
    // Fill the data with ones (flat space writes).
    let ones: Vec<u8> = (0..32 * 1024 / 4).flat_map(|_| 1i32.to_le_bytes()).collect();
    dpu.write_wram_symbol("data", &ones);
    let stats = dpu.launch().unwrap();
    let out = dpu.read_wram_symbol("sum");
    assert_eq!(i32::from_le_bytes(out.try_into().unwrap()), 2 * 32 * 1024 / 4);
    let dc = stats.dcache.expect("cache mode collects D-cache stats");
    // First pass misses every 64 B line (512 misses); second pass hits.
    assert!(dc.misses >= 512, "expected cold misses, got {}", dc.misses);
    assert!(dc.hit_rate() > 0.9, "hit rate {} too low", dc.hit_rate());
    assert!(stats.dram.bytes_read >= 32 * 1024);
    assert!(stats.icache.is_some());
}

#[test]
fn dma_rejected_in_cached_mode() {
    let program = assemble(".text\n movi r0, 0\n movi r1, 0\n ldma r0, r1, 64\n stop\n").unwrap();
    let mut dpu = Dpu::new(DpuConfig::paper_baseline(1).with_paper_caches());
    dpu.load_program(&program).unwrap();
    let err = dpu.launch().unwrap_err();
    assert!(matches!(err, pim_dpu::SimError::DmaInCachedMode { .. }));
}

#[test]
fn mmu_preserves_function_and_costs_little_on_streaming_dma() {
    // Stream 64 KB through WRAM in 2 KB chunks (high page locality).
    let mut k = KernelBuilder::new();
    let buf = k.global_zeroed("buf", 2048);
    let [w, m, i] = k.regs(["w", "m", "i"]);
    k.movi(w, buf as i32);
    k.movi(m, 0);
    k.movi(i, 32);
    let top = k.label_here("loop");
    k.ldma(w, m, 2048);
    k.add(m, m, 2048);
    k.sub(i, i, 1);
    k.branch(Cond::Ne, i, 0, &top);
    k.stop();
    let program = k.build().unwrap();
    let base = run(DpuConfig::paper_baseline(1), &program);
    let mut dpu = Dpu::new(DpuConfig::paper_baseline(1).with_paper_mmu());
    dpu.load_program(&program).unwrap();
    let with_mmu = dpu.launch().unwrap();
    let mmu = with_mmu.mmu.expect("MMU stats collected");
    assert_eq!(mmu.tlb_misses, 16, "64 KB touches 16 pages");
    assert!(mmu.hit_rate() > 0.3);
    let slowdown = with_mmu.cycles as f64 / base.cycles as f64;
    assert!(
        slowdown < 1.15,
        "paper reports small MMU overheads for streaming DMA; got {slowdown:.3}"
    );
    assert!(with_mmu.cycles >= base.cycles);
}

#[test]
fn double_frequency_helps_compute_bound_only_modestly_on_memory_bound() {
    let compute = independent_alu_kernel(300);
    let f = IlpFeatures { double_frequency: true, ..IlpFeatures::default() };
    let base = run(DpuConfig::paper_baseline(16), &compute);
    let fast = run(DpuConfig::paper_baseline(16).with_ilp(f), &compute);
    // Compute-bound: same cycle count, half the time.
    assert!(fast.time_ns() < base.time_ns() * 0.6);
    assert_eq!(fast.freq_mhz, 700);
}

#[test]
fn cycle_limit_catches_runaway_kernels() {
    let program = assemble(".text\nspin:\n jump spin\n").unwrap();
    let mut cfg = DpuConfig::paper_baseline(1);
    cfg.max_cycles = 10_000;
    let mut dpu = Dpu::new(cfg);
    dpu.load_program(&program).unwrap();
    assert!(matches!(dpu.launch(), Err(pim_dpu::SimError::CycleLimit { limit: 10_000 })));
}

#[test]
fn tlp_statistics_are_recorded() {
    let program = independent_alu_kernel(100);
    let stats = run(DpuConfig::paper_baseline(4), &program);
    let hist_cycles: u64 = stats.tlp_histogram.iter().sum();
    assert_eq!(hist_cycles, stats.cycles, "histogram covers every cycle");
    assert!(stats.mean_issuable() > 0.0);
    assert_eq!(stats.tlp_histogram.len(), 5, "bins 0..=4 tasklets");
}

#[test]
fn breakdown_is_conserved() {
    let program = independent_alu_kernel(64);
    for n in [1, 4, 16] {
        let stats = run(DpuConfig::paper_baseline(n), &program);
        let covered =
            stats.active_cycles as f64 + stats.idle_memory + stats.idle_revolver + stats.idle_rf;
        assert!(
            (covered - stats.cycles as f64).abs() < 1e-6,
            "attribution must cover all cycles at n={n}: {covered} vs {}",
            stats.cycles
        );
    }
}

#[test]
fn mram_bandwidth_scaling_speeds_memory_bound_kernels() {
    let mut k = KernelBuilder::new();
    let buf = k.global_zeroed("buf", 2048);
    let [w, m, i] = k.regs(["w", "m", "i"]);
    k.movi(w, buf as i32);
    k.movi(m, 0);
    k.movi(i, 256);
    let top = k.label_here("loop");
    k.ldma(w, m, 2048);
    k.add(m, m, 2048);
    k.sub(i, i, 1);
    k.branch(Cond::Ne, i, 0, &top);
    k.stop();
    let program = k.build().unwrap();
    let x1 = run(DpuConfig::paper_baseline(1), &program);
    let x4 = run(DpuConfig::paper_baseline(1).with_mram_bw_scale(4.0), &program);
    let speedup = x1.cycles as f64 / x4.cycles as f64;
    assert!(
        speedup > 2.0,
        "4x MRAM bandwidth should speed a streaming kernel >2x, got {speedup:.2}"
    );
}

#[test]
fn instruction_trace_captures_the_first_issues() {
    let program = assemble(".text\n movi r0, 1\n add r1, r0, 2\n stop\n").unwrap();
    let mut cfg = DpuConfig::paper_baseline(2);
    cfg.trace_limit = 4;
    let mut dpu = Dpu::new(cfg);
    dpu.load_program(&program).unwrap();
    let stats = dpu.launch().unwrap();
    assert_eq!(stats.trace.len(), 4, "trace capped at the limit");
    assert_eq!(stats.trace[0].pc, 0);
    assert_eq!(stats.trace[0].text, "movi r0, 1");
    // Entries are in issue order and the display is readable.
    for w in stats.trace.windows(2) {
        assert!(w[0].cycle <= w[1].cycle);
    }
    assert!(stats.trace[0].to_string().contains("movi"));
    // Tracing off by default.
    let mut dpu = Dpu::new(DpuConfig::paper_baseline(2));
    dpu.load_program(&program).unwrap();
    assert!(dpu.launch().unwrap().trace.is_empty());
}

#[test]
fn semaphore_bounds_concurrency() {
    // 8 tasklets contend on a 2-slot semaphore guarding an occupancy
    // counter; the observed maximum occupancy must never exceed 2.
    use pim_asm::Semaphore;
    let n = 8u32;
    let mut k = KernelBuilder::new();
    let sem = Semaphore::alloc(&mut k, 2);
    let gate = Mutex::alloc(&mut k);
    let occ = k.global_zeroed("occ", 4);
    let max_occ = k.global_zeroed("max_occ", 4);
    let [s0, s1, p, v, m] = k.regs(["s0", "s1", "p", "v", "m"]);
    sem.take(&mut k, [s0, s1]);
    // occ++ and track the max, under a separate mutex.
    gate.lock(&mut k);
    k.movi(p, occ as i32);
    k.lw(v, p, 0);
    k.add(v, v, 1);
    k.sw(v, p, 0);
    k.movi(m, max_occ as i32);
    k.lw(s0, m, 0);
    k.alu(AluOp::Max, s0, s0, v);
    k.sw(s0, m, 0);
    gate.unlock(&mut k);
    // Dwell inside the critical region for a few instructions.
    for _ in 0..6 {
        k.nop();
    }
    gate.lock(&mut k);
    k.movi(p, occ as i32);
    k.lw(v, p, 0);
    k.sub(v, v, 1);
    k.sw(v, p, 0);
    gate.unlock(&mut k);
    sem.give(&mut k, [s0, s1]);
    k.stop();
    let program = k.build().unwrap();
    let mut dpu = Dpu::new(DpuConfig::paper_baseline(n));
    dpu.load_program(&program).unwrap();
    dpu.launch().unwrap();
    let max = i32::from_le_bytes(dpu.read_wram_symbol("max_occ").try_into().unwrap());
    let end = i32::from_le_bytes(dpu.read_wram_symbol("occ").try_into().unwrap());
    assert!((1..=2).contains(&max), "semaphore must bound occupancy to 2, saw {max}");
    assert_eq!(end, 0, "every taker must have left");
}

#[test]
fn runtime_mem_alloc_returns_disjoint_aligned_blocks() {
    use pim_asm::{Barrier, HeapAllocator};
    let n = 8u32;
    let mut k = KernelBuilder::new();
    let heap = HeapAllocator::alloc(&mut k);
    let bar = Barrier::alloc(&mut k, n);
    let ptrs = k.global_zeroed("ptrs", 4 * n);
    let [t, a, sz, s0, s1, p] = k.regs(["t", "a", "sz", "s0", "s1", "p"]);
    k.tid(t);
    let go = k.fresh_label("go");
    k.branch(Cond::Ne, t, 0, &go);
    heap.init(&mut k, 8192, [s0, s1]);
    k.place(&go);
    bar.wait(&mut k, [s0, s1, p]);
    // Every tasklet allocates 20 bytes (rounds to 24).
    k.movi(sz, 20);
    heap.mem_alloc(&mut k, a, sz, s0);
    k.sll(p, t, 2);
    k.add(p, p, ptrs as i32);
    k.sw(a, p, 0);
    k.stop();
    let program = k.build().unwrap();
    let mut dpu = Dpu::new(DpuConfig::paper_baseline(n));
    dpu.load_program(&program).unwrap();
    dpu.launch().unwrap();
    let out = dpu.read_wram_symbol("ptrs");
    let mut ptrs: Vec<u32> =
        out.chunks_exact(4).map(|c| u32::from_le_bytes(c.try_into().unwrap())).collect();
    ptrs.sort_unstable();
    for (i, p) in ptrs.iter().enumerate() {
        assert_eq!(p % 8, 0, "mem_alloc results must be 8-byte aligned");
        assert_eq!(*p, 8192 + i as u32 * 24, "bump allocation must be dense");
    }
}

#[test]
fn oversized_text_rejected_on_load_but_allowed_under_icache() {
    // 5000 instructions exceed the 4096-instruction IRAM.
    let program = pim_asm::DpuProgram {
        instrs: {
            let mut v = vec![pim_isa::Instruction::Nop; 5000];
            v.push(pim_isa::Instruction::Stop);
            v
        },
        ..pim_asm::DpuProgram::default()
    };
    let mut dpu = Dpu::new(DpuConfig::paper_baseline(1));
    assert!(matches!(
        dpu.load_program(&program),
        Err(pim_dpu::SimError::OutOfBounds { space: pim_isa::AddressSpace::Iram, .. })
    ));
    // The cache-centric model runs text from MRAM through the I-cache.
    let mut dpu = Dpu::new(DpuConfig::paper_baseline(1).with_paper_caches());
    dpu.load_program(&program).unwrap();
    let stats = dpu.launch().unwrap();
    assert_eq!(stats.instructions, 5001);
    assert!(stats.icache.unwrap().misses > 0);
}
