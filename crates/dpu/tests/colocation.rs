//! End-to-end multi-tenant execution (paper §V-C): two partition-built
//! kernels share one DPU, each computing into its own WRAM partition with
//! tenant-local tasklet ids, without interfering.

use pim_asm::{Barrier, KernelBuilder, Mutex};
use pim_dpu::{colocate, Dpu, DpuConfig, MemoryMode, Tenant};
use pim_isa::Cond;

/// A tenant whose tasklets sum their (tenant-local) ids into a shared
/// counter, protected by the tenant's own mutex and barrier.
fn counting_tenant(wram_base: u32, atomic_base: u32, n_tasklets: u32) -> pim_asm::DpuProgram {
    counting_tenant_with(wram_base, atomic_base, n_tasklets, false)
}

fn counting_tenant_with(
    wram_base: u32,
    atomic_base: u32,
    n_tasklets: u32,
    relaxed: bool,
) -> pim_asm::DpuProgram {
    let mut k = KernelBuilder::with_partition(wram_base, atomic_base);
    let mtx = Mutex::alloc(&mut k);
    let bar = Barrier::alloc(&mut k, n_tasklets);
    let sum = k.global_zeroed("sum", 4);
    let ntid = k.global_zeroed("ntid", 4);
    let [t, p, v, s0, s1, s2] = k.regs(["t", "p", "v", "s0", "s1", "s2"]);
    k.tid(t);
    mtx.lock(&mut k);
    k.movi(p, sum as i32);
    k.lw(v, p, 0);
    k.add(v, v, t);
    k.sw(v, p, 0);
    mtx.unlock(&mut k);
    bar.wait(&mut k, [s0, s1, s2]);
    // Tasklet 0 also records how many tenant-local ids it saw (n).
    let done = k.fresh_label("done");
    k.branch(Cond::Ne, t, 0, &done);
    k.movi(p, ntid as i32);
    k.movi(v, n_tasklets as i32);
    k.sw(v, p, 0);
    k.place(&done);
    k.stop();
    k.build_with(&pim_asm::LinkOptions {
        allow_wram_overflow: relaxed,
        ..pim_asm::LinkOptions::default()
    })
    .unwrap()
}

#[test]
fn colocated_tenants_compute_independently() {
    let a = counting_tenant(0, 0, 6);
    let b = counting_tenant(4096, 8, 10);
    let merged = colocate(
        &[Tenant { program: &a, n_tasklets: 6 }, Tenant { program: &b, n_tasklets: 10 }],
        &pim_isa::MemLayout::default(),
        false,
    )
    .unwrap();
    let mut dpu = Dpu::new(DpuConfig::paper_baseline(16));
    dpu.load_colocated(&merged).unwrap();
    let stats = dpu.launch().unwrap();
    // Tenant A's tasklets saw local ids 0..6, B's saw 0..10.
    let sum_a = i32::from_le_bytes(dpu.read_wram_symbol("t0.sum").try_into().unwrap());
    let sum_b = i32::from_le_bytes(dpu.read_wram_symbol("t1.sum").try_into().unwrap());
    assert_eq!(sum_a, (0..6).sum::<i32>(), "tenant A must see local ids 0..6");
    assert_eq!(sum_b, (0..10).sum::<i32>(), "tenant B must see local ids 0..10");
    // Per-tenant completion times are recorded.
    let finish_a =
        merged.tasklets_of[0].clone().map(|t| stats.tasklet_stop_cycle[t]).max().unwrap();
    let finish_b =
        merged.tasklets_of[1].clone().map(|t| stats.tasklet_stop_cycle[t]).max().unwrap();
    assert!(finish_a > 0 && finish_b > 0);
    assert!(finish_a.max(finish_b) <= stats.cycles);
}

#[test]
fn colocation_beats_time_slicing_for_complementary_tenants() {
    // A memory-bound streamer and a compute-bound spinner — the paper's
    // BS+TS intuition: complementary resources co-locate well.
    let mem_tenant = |base: u32, bit: u32| {
        let mut k = KernelBuilder::with_partition(base, bit);
        let buf = k.alloc_wram(512, 8);
        let [w, m, i] = k.regs(["w", "m", "i"]);
        k.movi(w, buf as i32);
        k.movi(m, 0);
        k.movi(i, 64);
        let top = k.label_here("loop");
        k.ldma(w, m, 512);
        k.add(m, m, 512);
        k.sub(i, i, 1);
        k.branch(Cond::Ne, i, 0, &top);
        k.stop();
        k.build().unwrap()
    };
    let compute_tenant = |base: u32, bit: u32| {
        let mut k = KernelBuilder::with_partition(base, bit);
        let [a, i] = k.regs(["a", "i"]);
        k.movi(a, 1);
        k.movi(i, 4000);
        let top = k.label_here("loop");
        k.mul(a, a, 3);
        k.sub(i, i, 1);
        k.branch(Cond::Ne, i, 0, &top);
        k.stop();
        k.build().unwrap()
    };
    let run_alone = |p: &pim_asm::DpuProgram, n: u32| {
        let mut dpu = Dpu::new(DpuConfig::paper_baseline(n));
        dpu.load_program(p).unwrap();
        dpu.launch().unwrap().cycles
    };
    let mem = mem_tenant(0, 0);
    let comp = compute_tenant(2048, 8);
    let alone_mem = run_alone(&mem, 8);
    let alone_comp = run_alone(&comp, 8);
    // Co-locate 8+8 tasklets.
    let merged = colocate(
        &[Tenant { program: &mem, n_tasklets: 8 }, Tenant { program: &comp, n_tasklets: 8 }],
        &pim_isa::MemLayout::default(),
        false,
    )
    .unwrap();
    let mut dpu = Dpu::new(DpuConfig::paper_baseline(16));
    dpu.load_colocated(&merged).unwrap();
    let coloc = dpu.launch().unwrap().cycles;
    // Consolidation: one DPU finishing both beats running them back to back.
    assert!(
        coloc < alone_mem + alone_comp,
        "co-location ({coloc}) should beat time-slicing ({} + {})",
        alone_mem,
        alone_comp
    );
}

#[test]
fn colocation_works_under_the_cache_centric_model() {
    // The §V-C escape hatch: oversized combined footprints are fine when
    // loads/stores are cache-backed.
    let a = counting_tenant(0, 0, 4);
    let b = counting_tenant_with(80 * 1024, 8, 4, true); // beyond 64 KB WRAM
    let merged = colocate(
        &[Tenant { program: &a, n_tasklets: 4 }, Tenant { program: &b, n_tasklets: 4 }],
        &pim_isa::MemLayout::default(),
        true,
    )
    .unwrap();
    let cfg = DpuConfig::paper_baseline(8).with_paper_caches();
    assert!(matches!(cfg.memory_mode, MemoryMode::Cached { .. }));
    let mut dpu = Dpu::new(cfg);
    dpu.load_colocated(&merged).unwrap();
    dpu.launch().unwrap();
    let sum_b = i32::from_le_bytes(dpu.read_wram_symbol("t1.sum").try_into().unwrap());
    assert_eq!(sum_b, (0..4).sum::<i32>());
}
