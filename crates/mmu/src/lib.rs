//! # pim-mmu
//!
//! A memory-management-unit model for PIM, reproducing the paper's
//! multi-tenancy case study (§V-C).
//!
//! Commercial PIM devices have no MMU: the DPU addresses WRAM/IRAM/MRAM
//! physically, which both prevents address-space isolation between
//! co-located tenants and forces programmers to hand-derive physical data
//! placement. The paper adds an MMU to PIMulator to quantify the cost of
//! translation and finds it cheap (average 0.8%, max 14.1% slowdown)
//! because DMA transfers are coarse-grained and highly page-local.
//!
//! The model follows the paper exactly: a **single-level, 16-entry,
//! fully-associative TLB** (LRU), **4 KB pages**, a single page-table
//! walker, page tables resident in the DPU's own DRAM bank, and a 1-cycle
//! TLB access.
//!
//! # Example
//!
//! ```
//! use pim_mmu::{Mmu, MmuConfig, PageTable};
//!
//! let table = PageTable::identity(16 * 1024); // 64 MB of 4 KB pages
//! let mut mmu = Mmu::new(MmuConfig::paper(), table);
//! let first = mmu.translate(0x12345);
//! assert!(!first.tlb_hit); // cold TLB: page walk
//! assert_eq!(first.paddr, 0x12345); // identity mapping
//! let second = mmu.translate(0x12346);
//! assert!(second.tlb_hit); // same page
//! ```

use std::fmt;

/// MMU configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MmuConfig {
    /// Page size in bytes (paper: 4 KB).
    pub page_bytes: u32,
    /// Number of fully-associative TLB entries (paper: 16).
    pub tlb_entries: u32,
    /// TLB lookup latency in DPU core cycles (paper: 1).
    pub tlb_hit_cycles: u32,
    /// Page-walk depth: number of dependent page-table reads a TLB miss
    /// performs against the DPU's DRAM bank.
    pub walk_levels: u32,
    /// MRAM byte address where the page-table pages reside.
    pub table_base: u32,
}

impl MmuConfig {
    /// The paper's §V-C configuration: 4 KB pages, single-level 16-entry
    /// fully-associative TLB, 1-cycle TLB access, page tables in the DPU's
    /// local DRAM bank (modelled as a 2-level radix walk).
    #[must_use]
    pub fn paper() -> Self {
        MmuConfig {
            page_bytes: 4096,
            tlb_entries: 16,
            tlb_hit_cycles: 1,
            walk_levels: 2,
            table_base: 63 * 1024 * 1024, // top MiB of the 64 MB bank
        }
    }
}

impl Default for MmuConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// A virtual-page → physical-page mapping.
///
/// The simulator keeps page tables as a flat vector (the timing model — how
/// many DRAM reads a walk performs — is configured separately via
/// [`MmuConfig::walk_levels`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageTable {
    map: Vec<u32>,
}

impl PageTable {
    /// An identity mapping over `pages` pages.
    #[must_use]
    pub fn identity(pages: u32) -> Self {
        PageTable { map: (0..pages).collect() }
    }

    /// A mapping built from an explicit page array (`map[vpn] = ppn`).
    ///
    /// # Panics
    ///
    /// Panics if the map is empty.
    #[must_use]
    pub fn from_map(map: Vec<u32>) -> Self {
        assert!(!map.is_empty(), "page table must map at least one page");
        PageTable { map }
    }

    /// A deterministic non-trivial permutation of `pages` pages, useful for
    /// proving that translation is actually applied (tests) while remaining
    /// reproducible.
    #[must_use]
    pub fn permuted(pages: u32, seed: u32) -> Self {
        // Feistel-like involution-free permutation: reverse within blocks.
        let mut map: Vec<u32> = (0..pages).collect();
        let block = 8.max((seed % 64) + 2);
        for chunk in map.chunks_mut(block as usize) {
            chunk.reverse();
        }
        PageTable { map }
    }

    /// Number of mapped pages.
    #[must_use]
    pub fn pages(&self) -> u32 {
        self.map.len() as u32
    }

    /// Looks up the physical page for a virtual page.
    #[must_use]
    pub fn lookup(&self, vpn: u32) -> Option<u32> {
        self.map.get(vpn as usize).copied()
    }
}

/// The result of translating one virtual address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Translation {
    /// The physical byte address.
    pub paddr: u32,
    /// Whether the TLB hit.
    pub tlb_hit: bool,
    /// Fixed translation cost in core cycles (TLB lookup).
    pub cycles: u32,
    /// MRAM addresses of the page-table entries the walker must read on a
    /// TLB miss (empty on a hit). The caller issues these as dependent DRAM
    /// reads to model walk latency.
    pub walk_reads: Vec<u32>,
}

#[derive(Debug, Clone, Copy)]
struct TlbEntry {
    vpn: u32,
    ppn: u32,
    last_use: u64,
}

/// TLB statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MmuStats {
    /// TLB hits.
    pub tlb_hits: u64,
    /// TLB misses (page walks performed).
    pub tlb_misses: u64,
}

impl MmuStats {
    /// Accumulates another run's counters into this one.
    pub fn merge(&mut self, other: &MmuStats) {
        self.tlb_hits += other.tlb_hits;
        self.tlb_misses += other.tlb_misses;
    }

    /// TLB hit rate in `[0, 1]`, or 0.0 when never accessed.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.tlb_hits + self.tlb_misses;
        if total == 0 {
            0.0
        } else {
            self.tlb_hits as f64 / total as f64
        }
    }
}

/// The MMU: a fully-associative LRU TLB in front of a page table.
#[derive(Debug, Clone)]
pub struct Mmu {
    cfg: MmuConfig,
    table: PageTable,
    tlb: Vec<TlbEntry>,
    clock: u64,
    stats: MmuStats,
}

impl Mmu {
    /// Creates an MMU with a cold TLB.
    #[must_use]
    pub fn new(cfg: MmuConfig, table: PageTable) -> Self {
        Mmu { cfg, table, tlb: Vec::new(), clock: 0, stats: MmuStats::default() }
    }

    /// The MMU configuration.
    #[must_use]
    pub fn config(&self) -> &MmuConfig {
        &self.cfg
    }

    /// Accumulated TLB statistics.
    #[must_use]
    pub fn stats(&self) -> &MmuStats {
        &self.stats
    }

    /// Translates a virtual MRAM address.
    ///
    /// # Panics
    ///
    /// Panics if the virtual address refers to an unmapped page — the
    /// simulated DPU has no fault-handling path, mirroring the real device's
    /// lack of virtual memory machinery; the host runtime sizes the page
    /// table to cover all of MRAM.
    pub fn translate(&mut self, vaddr: u32) -> Translation {
        self.clock += 1;
        let vpn = vaddr / self.cfg.page_bytes;
        let offset = vaddr % self.cfg.page_bytes;
        // TLB lookup.
        if let Some(e) = self.tlb.iter_mut().find(|e| e.vpn == vpn) {
            e.last_use = self.clock;
            let ppn = e.ppn;
            self.stats.tlb_hits += 1;
            return Translation {
                paddr: ppn * self.cfg.page_bytes + offset,
                tlb_hit: true,
                cycles: self.cfg.tlb_hit_cycles,
                walk_reads: Vec::new(),
            };
        }
        // Miss: walk.
        self.stats.tlb_misses += 1;
        let ppn = self.table.lookup(vpn).unwrap_or_else(|| panic!("virtual page {vpn} not mapped"));
        let walk_reads = self.walk_addresses(vpn);
        // Fill (LRU replace).
        if self.tlb.len() < self.cfg.tlb_entries as usize {
            self.tlb.push(TlbEntry { vpn, ppn, last_use: self.clock });
        } else {
            let lru = self.tlb.iter_mut().min_by_key(|e| e.last_use).expect("tlb_entries > 0");
            *lru = TlbEntry { vpn, ppn, last_use: self.clock };
        }
        Translation {
            paddr: ppn * self.cfg.page_bytes + offset,
            tlb_hit: false,
            cycles: self.cfg.tlb_hit_cycles,
            walk_reads,
        }
    }

    /// Invalidate the whole TLB (e.g. between co-located tenants).
    pub fn flush_tlb(&mut self) {
        self.tlb.clear();
    }

    /// The MRAM addresses of the page-table entries read while walking for
    /// `vpn`, one per level, each 4 bytes, laid out as a radix tree under
    /// [`MmuConfig::table_base`].
    fn walk_addresses(&self, vpn: u32) -> Vec<u32> {
        let levels = self.cfg.walk_levels;
        let mut out = Vec::with_capacity(levels as usize);
        // Split the VPN into `levels` digit groups (high digits first), each
        // level's table occupying a 4 KB page region.
        let bits_per_level = 10;
        for level in 0..levels {
            let shift = bits_per_level * (levels - 1 - level);
            let index = (vpn >> shift) & ((1 << bits_per_level) - 1);
            out.push(self.cfg.table_base + level * self.cfg.page_bytes + index * 4);
        }
        out
    }
}

impl fmt::Display for Mmu {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}-entry TLB, {} B pages ({:.1}% hit rate)",
            self.cfg.tlb_entries,
            self.cfg.page_bytes,
            self.stats.hit_rate() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mmu_identity() -> Mmu {
        Mmu::new(MmuConfig::paper(), PageTable::identity(16 * 1024))
    }

    #[test]
    fn identity_translation_preserves_address() {
        let mut m = mmu_identity();
        for addr in [0u32, 1, 4095, 4096, 0x3f_ffff] {
            assert_eq!(m.translate(addr).paddr, addr);
        }
    }

    #[test]
    fn same_page_hits_after_first_access() {
        let mut m = mmu_identity();
        assert!(!m.translate(0x1000).tlb_hit);
        assert!(m.translate(0x1ffc).tlb_hit);
        assert_eq!(m.stats().tlb_hits, 1);
        assert_eq!(m.stats().tlb_misses, 1);
    }

    #[test]
    fn walk_produces_one_read_per_level() {
        let mut m = mmu_identity();
        let t = m.translate(0x5000);
        assert_eq!(t.walk_reads.len(), 2);
        // Both PTE addresses live in the table region.
        for a in &t.walk_reads {
            assert!(*a >= MmuConfig::paper().table_base);
        }
        // Hits perform no reads.
        assert!(m.translate(0x5004).walk_reads.is_empty());
    }

    #[test]
    fn tlb_capacity_and_lru_replacement() {
        let mut m = mmu_identity();
        let page = MmuConfig::paper().page_bytes;
        // Fill all 16 entries with pages 0..16.
        for p in 0..16u32 {
            m.translate(p * page);
        }
        // Touch page 0 so page 1 becomes LRU.
        assert!(m.translate(0).tlb_hit);
        // Insert page 16: must evict page 1.
        assert!(!m.translate(16 * page).tlb_hit);
        assert!(m.translate(0).tlb_hit, "page 0 must survive");
        assert!(!m.translate(page).tlb_hit, "page 1 must have been evicted");
    }

    #[test]
    fn permuted_table_translates_differently() {
        let table = PageTable::permuted(64, 7);
        let cfg = MmuConfig::paper();
        let mut m = Mmu::new(cfg, table.clone());
        // Find some page that moves.
        let moved =
            (0..64).find(|&v| table.lookup(v) != Some(v)).expect("permutation moves a page");
        let t = m.translate(moved * cfg.page_bytes + 12);
        assert_eq!(t.paddr, table.lookup(moved).unwrap() * cfg.page_bytes + 12);
        assert_ne!(t.paddr, moved * cfg.page_bytes + 12);
    }

    #[test]
    fn permuted_table_is_a_permutation() {
        let table = PageTable::permuted(1000, 3);
        let mut seen: Vec<u32> = (0..1000).map(|v| table.lookup(v).unwrap()).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn flush_empties_tlb() {
        let mut m = mmu_identity();
        m.translate(0);
        m.flush_tlb();
        assert!(!m.translate(0).tlb_hit);
    }

    #[test]
    #[should_panic(expected = "not mapped")]
    fn unmapped_page_panics() {
        let mut m = Mmu::new(MmuConfig::paper(), PageTable::identity(1));
        m.translate(4096);
    }

    #[test]
    fn stats_hit_rate() {
        let mut m = mmu_identity();
        assert_eq!(m.stats().hit_rate(), 0.0);
        m.translate(0);
        m.translate(4);
        m.translate(8);
        assert!((m.stats().hit_rate() - 2.0 / 3.0).abs() < 1e-9);
    }
}
