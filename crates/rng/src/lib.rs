//! # pim-rng
//!
//! A tiny, dependency-free, seeded PRNG used everywhere the framework
//! needs randomness: the PrIM dataset generators (DESIGN.md §5.12 requires
//! bit-reproducible figures, so all data is seeded) and the randomized
//! property tests.
//!
//! The container this reproduction builds in has no network access to
//! crates.io, so the usual `rand`/`proptest` crates cannot be fetched;
//! this crate supplies the small slice of their APIs the repository
//! actually uses. The generator is **xoshiro256\*\*** seeded through
//! SplitMix64 — statistically strong for simulation inputs, trivially
//! portable, and stable across platforms and releases (the datasets it
//! produces are part of the repo's reproducibility contract).
//!
//! # Example
//!
//! ```
//! use pim_rng::StdRng;
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let v: Vec<i32> = (0..8).map(|_| rng.gen_range(-100..100)).collect();
//! let again: Vec<i32> = {
//!     let mut rng = StdRng::seed_from_u64(42);
//!     (0..8).map(|_| rng.gen_range(-100..100)).collect()
//! };
//! assert_eq!(v, again);
//! assert!(v.iter().all(|&x| (-100..100).contains(&x)));
//! ```

use std::ops::Range;

/// A seeded xoshiro256\*\* generator with the subset of `rand::rngs::StdRng`
/// API this repository uses.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// Expands `seed` into the full 256-bit state via SplitMix64.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        StdRng { s: [next(), next(), next(), next()] }
    }

    /// The full 256-bit generator state, for checkpointing: a generator
    /// rebuilt with [`StdRng::from_state`] continues the exact stream.
    #[must_use]
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a [`StdRng::state`] snapshot.
    #[must_use]
    pub fn from_state(s: [u64; 4]) -> Self {
        StdRng { s }
    }

    /// The raw xoshiro256\*\* output step.
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// The high 32 bits of [`StdRng::next_u64`].
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform value in `range` (`range` must be non-empty).
    ///
    /// # Panics
    ///
    /// Panics if `range.start >= range.end`.
    pub fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample(self, range.start, range.end)
    }

    /// `true` with probability `numerator / denominator`.
    ///
    /// # Panics
    ///
    /// Panics if `denominator` is zero or smaller than `numerator`.
    pub fn gen_bool_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0 && numerator <= denominator);
        self.below(u64::from(denominator)) < u64::from(numerator)
    }

    /// `rand`-compatible spelling of [`StdRng::gen_bool_ratio`].
    ///
    /// # Panics
    ///
    /// Panics if `denominator` is zero or smaller than `numerator`.
    pub fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        self.gen_bool_ratio(numerator, denominator)
    }

    /// A fair coin flip.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Fills `buf` with uniform bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }

    /// A uniformly chosen element of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "cannot choose from an empty slice");
        &items[self.below(items.len() as u64) as usize]
    }

    /// Debiased uniform value in `0..bound` (Lemire-style rejection on the
    /// modulo threshold).
    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let v = self.next_u64();
            if v >= threshold {
                return v % bound;
            }
        }
    }
}

/// Types [`StdRng::gen_range`] can sample uniformly.
pub trait SampleUniform: Copy {
    /// A uniform value in `lo..hi`.
    fn sample(rng: &mut StdRng, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_signed {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(rng: &mut StdRng, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range requires a non-empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                (lo as $wide).wrapping_add(rng.below(span) as $wide) as $t
            }
        }
    )*};
}

macro_rules! impl_sample_unsigned {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(rng: &mut StdRng, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range requires a non-empty range");
                let span = (hi - lo) as u64;
                lo + rng.below(span) as $t
            }
        }
    )*};
}

impl_sample_signed!(i32 => i64, i64 => i64, i16 => i64, i8 => i64);
impl_sample_unsigned!(u32, usize, u16, u8);

impl SampleUniform for u64 {
    fn sample(rng: &mut StdRng, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range requires a non-empty range");
        lo + rng.below(hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn state_round_trip_continues_the_stream() {
        let mut a = StdRng::seed_from_u64(11);
        for _ in 0..37 {
            a.next_u64();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(-50i32..50);
            assert!((-50..50).contains(&v));
            let u = rng.gen_range(0usize..17);
            assert!(u < 17);
            let w = rng.gen_range(10u64..11);
            assert_eq!(w, 10);
        }
    }

    #[test]
    fn range_covers_extremes() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 4 values should appear in 1000 draws");
    }

    #[test]
    fn ratio_is_roughly_right() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_ratio(1, 4)).count();
        assert!((2000..3000).contains(&hits), "1/4 ratio produced {hits}/10000");
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn signed_full_domain_range_does_not_overflow() {
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..1000 {
            let _ = rng.gen_range(i32::MIN..i32::MAX);
        }
    }

    #[test]
    fn choose_picks_every_element_eventually() {
        let mut rng = StdRng::seed_from_u64(9);
        let items = [10, 20, 30];
        let mut seen = [false; 3];
        for _ in 0..300 {
            let v = *rng.choose(&items);
            seen[items.iter().position(|&x| x == v).unwrap()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
