//! `pimsim` — the command-line front door to the simulator.
//!
//! ```text
//! pimsim asm    <file.s>                     check/assemble, print footprint
//! pimsim disasm <file.s>                     assemble then disassemble
//! pimsim run    <file.s> [options]           assemble and simulate
//!     --tasklets N     tasklets to launch (default 16)
//!     --trace N        print the first N issued instructions
//!     --cache          cache-centric memory model (§V-D)
//!     --mmu            MMU in front of MRAM (§V-C)
//!     --ilp DRSF       any subset of the Fig 12 features
//! pimsim exp    <name|--list> [options]      regenerate a paper figure
//!     --size tiny|single|multi    dataset size
//!     --threads N                 simulation worker threads
//!     --json                      print the JSON document to stdout
//!     --out DIR                   where <name>.json is written
//!     --trace FILE                also write a Chrome trace-event file
//!     --tuned FILE                take execution shapes from a tuned table
//! pimsim trace  <name> [options]             trace a paper figure
//!     --size tiny|single|multi    dataset size
//!     --threads N                 simulation worker threads
//!     --out FILE                  trace file (default results/<name>.trace.json)
//! pimsim bench  [options]                    simulator-throughput micro-harness
//!     --quick                     tiny datasets, 1 rep (CI smoke)
//!     --size tiny|single|multi    dataset size
//!     --reps K                    wall-time repetitions (median reported)
//!     --out FILE                  where BENCH.json is written
//!     --json                      print the JSON document to stdout
//!     --baseline FILE             print speedups vs a previous BENCH.json
//! pimsim fuzz   [options]                    coverage-guided conformance fuzzing
//!     --seed N                    campaign master seed (default 0)
//!     --budget N                  programs to generate (default 96)
//!     --jobs N                    worker threads (never affects results)
//!     --corpus DIR                replay this corpus first; write repros here
//!     --mutate                    arm the seeded scoreboard bug (self-check)
//!     --json                      print the JSON document to stdout
//!     --out FILE                  where the JSON report is written
//! pimsim tune   [options]                    autotune per-workload configs
//!     --quick                     reduced grid (CI smoke)
//!     --size tiny|single|multi    dataset size the sweep runs at
//!     --threads N                 worker threads (never affects the table)
//!     --workloads A,B,...         tune a subset (default: whole suite)
//!     --out FILE                  where the table goes (default results/tuned.json)
//!     --json                      print the JSON document to stdout
//! pimsim serve  <scenario|--list> [options]  run a multi-tenant serving scenario
//!     --seed N                    traffic seed (default 42)
//!     --duration-ms M             simulated run length (scenario default)
//!     --load X                    load multiplier on the base rate
//!     --policy P                  fifo | size_class | weighted_fair
//!     --channel MODE              blocking | broadcast | overlapped
//!     --tuned FILE                apply a tuned table's policy/channel
//!     --faults SPEC               seeded fault campaign, k=v pairs
//!                                 (seed/transient/stuck/timeout_us/retries/
//!                                 backoff_us/outages/outage_ms/rank_dpus)
//!     --checkpoint-every MS       cut serve_<scenario>.ckpt<k>.json snapshots
//!     --resume FILE               continue from a checkpoint document
//!     --threads N                 composition-profiling worker threads
//!     --json                      print the JSON document to stdout
//!     --out DIR                   where serve_<scenario>.json is written
//!     --trace FILE                also write a Chrome trace-event file
//! ```

use std::process::ExitCode;

use pim_asm::{assemble, disassemble};
use pim_dpu::{Dpu, DpuConfig, IlpFeatures};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  pimsim asm    <file.s>\n  pimsim disasm <file.s>\n  pimsim run    <file.s> \
         [--tasklets N] [--trace N] [--cache] [--mmu] [--ilp DRSF]\n  pimsim exp    \
         <name|--list> [--size tiny|single|multi] [--threads N] [--json] [--out DIR] [--trace \
         FILE] [--tuned FILE]\n  pimsim trace  <name> [--size tiny|single|multi] [--threads N] \
         [--out FILE]\n  pimsim bench  [--quick] [--size tiny|single|multi] [--reps K] [--out \
         FILE] [--json] [--baseline FILE]\n  pimsim tune   [--quick] [--size tiny|single|multi] \
         [--threads N] [--workloads A,B,...] [--out FILE] [--json]\n  pimsim serve  \
         <scenario|--list> [--seed N] [--duration-ms M] [--load X] [--policy P] [--channel MODE] \
         [--tuned FILE] [--faults SPEC] [--checkpoint-every MS] [--resume FILE] [--threads N] \
         [--json] [--out DIR] [--trace FILE]\n  pimsim fuzz   [--seed N] [--budget N] [--jobs N] \
         [--corpus DIR] [--mutate] [--json] [--out FILE]"
    );
    ExitCode::from(2)
}

/// `pimsim exp`: the figure-regeneration driver shared with `pim-bench`.
fn exp(args: &[String]) -> ExitCode {
    let Some(name) = args.first() else {
        eprintln!("pimsim exp: which experiment? (try `pimsim exp --list`)");
        return ExitCode::from(2);
    };
    if name == "--list" {
        // Tolerate a closed pipe (`pimsim exp --list | head`).
        use std::io::Write;
        let stdout = std::io::stdout();
        let mut out = stdout.lock();
        for e in pim_bench::experiments() {
            if writeln!(out, "{:26} {}", e.name, e.title).is_err() {
                break;
            }
        }
        return ExitCode::SUCCESS;
    }
    pim_bench::run_with_args(name, &args[1..])
}

/// `pimsim trace`: run an experiment with structured event tracing and
/// write a Chrome trace-event (Perfetto-loadable) file.
fn trace(args: &[String]) -> ExitCode {
    let Some(name) = args.first() else {
        eprintln!("pimsim trace: which experiment? (try `pimsim exp --list`)");
        return ExitCode::from(2);
    };
    pim_bench::run_trace_with_args(name, &args[1..])
}

/// `pimsim serve`: the multi-tenant serving runtime driver.
fn serve(args: &[String]) -> ExitCode {
    let Some(name) = args.first() else {
        eprintln!("pimsim serve: which scenario? (try `pimsim serve --list`)");
        return ExitCode::from(2);
    };
    if name == "--list" {
        // Tolerate a closed pipe (`pimsim serve --list | head`).
        use std::io::Write;
        let stdout = std::io::stdout();
        let mut out = stdout.lock();
        for s in pim_serve::scenarios() {
            if writeln!(out, "{:26} {}", s.name, s.title).is_err() {
                break;
            }
        }
        return ExitCode::SUCCESS;
    }
    pim_bench::run_serve_with_args(name, &args[1..])
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("exp") {
        return exp(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("trace") {
        return trace(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("serve") {
        return serve(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("bench") {
        return pim_bench::perf::run_bench_with_args(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("tune") {
        return pim_bench::tune::run_tune_with_args(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("fuzz") {
        return pim_fuzz::cli::run_with_args(&args[1..]);
    }
    let (Some(cmd), Some(path)) = (args.first(), args.get(1)) else {
        return usage();
    };
    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("pimsim: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let program = match assemble(&src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("pimsim: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match cmd.as_str() {
        "asm" => {
            println!(
                "{path}: {} instructions ({} B of IRAM), {} B of WRAM data, {} symbols",
                program.instrs.len(),
                program.iram_bytes(),
                program.wram_init.len(),
                program.symbols.len()
            );
            for (name, sym) in &program.symbols {
                println!("  {name:<24} {}@{:#x} ({} B)", sym.space, sym.addr, sym.size);
            }
            ExitCode::SUCCESS
        }
        "disasm" => {
            print!("{}", disassemble(&program));
            ExitCode::SUCCESS
        }
        "run" => {
            let mut tasklets = 16u32;
            let mut trace = 0usize;
            let mut cfg_mods: Vec<String> = Vec::new();
            let mut it = args[2..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--tasklets" => {
                        tasklets = it.next().and_then(|v| v.parse().ok()).unwrap_or(16);
                    }
                    "--trace" => {
                        trace = it.next().and_then(|v| v.parse().ok()).unwrap_or(32);
                    }
                    "--cache" | "--mmu" => cfg_mods.push(a.clone()),
                    "--ilp" => {
                        if let Some(v) = it.next() {
                            cfg_mods.push(format!("--ilp={v}"));
                        }
                    }
                    other => {
                        eprintln!("pimsim: unknown option {other}");
                        return usage();
                    }
                }
            }
            let mut cfg = DpuConfig::paper_baseline(tasklets);
            cfg.trace_limit = trace;
            for m in &cfg_mods {
                if m == "--cache" {
                    cfg = cfg.with_paper_caches();
                } else if m == "--mmu" {
                    cfg = cfg.with_paper_mmu();
                } else if let Some(flags) = m.strip_prefix("--ilp=") {
                    let ilp = IlpFeatures {
                        data_forwarding: flags.contains('D'),
                        unified_rf: flags.contains('R'),
                        superscalar: flags.contains('S'),
                        double_frequency: flags.contains('F'),
                    };
                    cfg = cfg.with_ilp(ilp);
                }
            }
            let mut dpu = Dpu::new(cfg);
            if let Err(e) = dpu.load_program(&program) {
                eprintln!("pimsim: load failed: {e}");
                return ExitCode::FAILURE;
            }
            match dpu.launch() {
                Ok(stats) => {
                    for t in &stats.trace {
                        println!("{t}");
                    }
                    let (active, mem, rev, rf) = stats.breakdown();
                    println!(
                        "cycles {} | instructions {} | IPC {:.3} | {:.1} µs @{} MHz",
                        stats.cycles,
                        stats.instructions,
                        stats.ipc(),
                        stats.time_ns() / 1e3,
                        stats.freq_mhz
                    );
                    println!(
                        "active {:.1}% | idle: memory {:.1}%, revolver {:.1}%, RF {:.1}%",
                        active * 100.0,
                        mem * 100.0,
                        rev * 100.0,
                        rf * 100.0
                    );
                    println!(
                        "DRAM: {} B read, {} B written | DMA requests {}",
                        stats.dram.bytes_read, stats.dram.bytes_written, stats.dma_requests
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("pimsim: simulation fault: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}
