//! End-to-end tests of the `pimsim` binary: exit codes, output-path
//! creation, and the `trace` subcommand, driven through real process
//! spawns so the argument parsing and `ExitCode` plumbing are covered.

use std::path::{Path, PathBuf};
use std::process::Command;

use pimulator::report::Json;

fn pimsim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pimsim"))
}

/// A fresh scratch directory per test, cleaned up on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("pimsim-cli-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }

    fn path(&self, rel: &str) -> PathBuf {
        self.0.join(rel)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn parse_file(path: &Path) -> Json {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    Json::parse(&text).unwrap_or_else(|e| panic!("parse {}: {e}", path.display()))
}

#[test]
fn no_arguments_is_a_usage_error() {
    let st = pimsim().status().expect("spawn pimsim");
    assert_eq!(st.code(), Some(2));
}

#[test]
fn unknown_experiment_exits_nonzero() {
    for sub in ["exp", "trace"] {
        let out = pimsim().args([sub, "no_such_experiment"]).output().expect("spawn pimsim");
        assert!(!out.status.success(), "`pimsim {sub} no_such_experiment` must fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("unknown experiment"), "stderr: {stderr}");
        assert!(stderr.contains("fig05_utilization"), "should list alternatives: {stderr}");
    }
}

#[test]
fn exp_list_succeeds_and_names_every_experiment() {
    let out = pimsim().args(["exp", "--list"]).output().expect("spawn pimsim");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for e in pim_bench::experiments() {
        assert!(stdout.contains(e.name), "missing {} in --list", e.name);
    }
}

#[test]
fn exp_out_creates_missing_parent_dirs() {
    let scratch = Scratch::new("exp-out");
    let out_dir = scratch.path("a/b/c");
    let st = pimsim()
        .args(["exp", "fig11_simt", "--size", "tiny", "--threads", "2", "--json", "--out"])
        .arg(&out_dir)
        .output()
        .expect("spawn pimsim");
    assert!(st.status.success(), "stderr: {}", String::from_utf8_lossy(&st.stderr));
    let doc = parse_file(&out_dir.join("fig11_simt.json"));
    let Json::Obj(pairs) = &doc else { panic!("results doc not an object") };
    assert_eq!(pairs[0], ("experiment".to_string(), Json::from("fig11_simt")));
}

#[test]
fn serve_list_succeeds_and_names_every_scenario() {
    let out = pimsim().args(["serve", "--list"]).output().expect("spawn pimsim");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for s in pim_serve::scenarios() {
        assert!(stdout.contains(s.name), "missing {} in --list", s.name);
    }
}

#[test]
fn unknown_scenario_exits_nonzero_and_lists_alternatives() {
    let out = pimsim().args(["serve", "no_such_scenario"]).output().expect("spawn pimsim");
    assert!(!out.status.success(), "`pimsim serve no_such_scenario` must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown scenario"), "stderr: {stderr}");
    assert!(stderr.contains("tiny"), "should list alternatives: {stderr}");
    // Malformed flags fail too, with a usage line.
    let out = pimsim().args(["serve", "tiny", "--policy", "lifo"]).output().expect("spawn pimsim");
    assert!(!out.status.success(), "unknown policy must fail");
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown policy"));
}

#[test]
fn serve_writes_the_results_document() {
    let scratch = Scratch::new("serve-out");
    let out_dir = scratch.path("nested/results");
    let st = pimsim()
        .args(["serve", "tiny", "--duration-ms", "1", "--threads", "2", "--json", "--out"])
        .arg(&out_dir)
        .output()
        .expect("spawn pimsim");
    assert!(st.status.success(), "stderr: {}", String::from_utf8_lossy(&st.stderr));
    let doc = parse_file(&out_dir.join("serve_tiny.json"));
    let Json::Obj(pairs) = &doc else { panic!("results doc not an object") };
    assert_eq!(pairs[0], ("serve".to_string(), Json::from("tiny")));
    for key in ["policy", "tenants", "totals", "timeline", "metrics"] {
        assert!(pairs.iter().any(|(k, _)| k == key), "missing key {key}");
    }
    // stdout under --json is the same document that landed on disk.
    let stdout = String::from_utf8_lossy(&st.stdout);
    assert_eq!(Json::parse(&stdout).expect("stdout parses"), doc);
}

#[test]
fn serve_trace_writes_a_chrome_trace() {
    let scratch = Scratch::new("serve-trace");
    let trace_path = scratch.path("deep/serve.trace.json");
    let out_dir = scratch.path("results");
    let st = pimsim()
        .args(["serve", "tiny", "--duration-ms", "1", "--threads", "2", "--json"])
        .arg("--out")
        .arg(&out_dir)
        .arg("--trace")
        .arg(&trace_path)
        .output()
        .expect("spawn pimsim");
    assert!(st.status.success(), "stderr: {}", String::from_utf8_lossy(&st.stderr));
    let doc = parse_file(&trace_path);
    let Json::Obj(pairs) = &doc else { panic!("trace doc not an object") };
    assert_eq!(pairs[0].0, "traceEvents");
    assert!(matches!(&pairs[0].1, Json::Arr(evs) if !evs.is_empty()));
    let results = parse_file(&out_dir.join("serve_tiny.json"));
    let Json::Obj(pairs) = &results else { panic!("results doc not an object") };
    let trace_field = pairs.iter().find(|(k, _)| k == "trace").expect("trace field");
    assert_eq!(trace_field.1, Json::from(trace_path.display().to_string()));
}

#[test]
fn trace_subcommand_writes_a_chrome_trace_and_records_the_path() {
    let scratch = Scratch::new("trace");
    let trace_path = scratch.path("nested/deep/trace.json");
    let st = pimsim()
        .args(["trace", "fig11_simt", "--size", "tiny", "--threads", "2", "--out"])
        .arg(&trace_path)
        .output()
        .expect("spawn pimsim");
    assert!(st.status.success(), "stderr: {}", String::from_utf8_lossy(&st.stderr));
    let stdout = String::from_utf8_lossy(&st.stdout);
    assert!(stdout.contains("metrics over retained events"), "stdout: {stdout}");
    let doc = parse_file(&trace_path);
    let Json::Obj(pairs) = &doc else { panic!("trace doc not an object") };
    assert_eq!(pairs[0].0, "traceEvents");
    assert!(matches!(&pairs[0].1, Json::Arr(evs) if !evs.is_empty()));

    // `exp --trace` records where the trace went in the results document.
    let out_dir = scratch.path("results");
    let flag_trace = scratch.path("flagged.trace.json");
    let st = pimsim()
        .args(["exp", "fig11_simt", "--size", "tiny", "--threads", "2", "--json"])
        .arg("--out")
        .arg(&out_dir)
        .arg("--trace")
        .arg(&flag_trace)
        .output()
        .expect("spawn pimsim");
    assert!(st.status.success(), "stderr: {}", String::from_utf8_lossy(&st.stderr));
    assert!(flag_trace.is_file());
    let doc = parse_file(&out_dir.join("fig11_simt.json"));
    let Json::Obj(pairs) = &doc else { panic!("results doc not an object") };
    let trace_field = pairs.iter().find(|(k, _)| k == "trace").expect("trace field");
    assert_eq!(trace_field.1, Json::from(flag_trace.display().to_string()));
}

#[test]
fn serve_rejects_non_positive_and_non_finite_load() {
    for bad in ["0", "-1", "inf", "-inf", "NaN"] {
        let out = pimsim().args(["serve", "tiny", "--load", bad]).output().expect("spawn pimsim");
        assert!(!out.status.success(), "--load {bad} must be rejected");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("--load must be a positive finite number"),
            "--load {bad}: stderr: {stderr}"
        );
    }
}

#[test]
fn serve_rejects_a_malformed_fault_spec() {
    for (bad, expect) in
        [("frobnicate=1", "--faults"), ("transient=1001", "--faults"), ("rank_dpus=0", "--faults")]
    {
        let out =
            pimsim().args(["serve", "faulty", "--faults", bad]).output().expect("spawn pimsim");
        assert!(!out.status.success(), "--faults {bad} must be rejected");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains(expect), "--faults {bad}: stderr: {stderr}");
    }
}

#[test]
fn serve_checkpoint_and_resume_reproduce_the_run_byte_for_byte() {
    let scratch = Scratch::new("serve-ckpt");
    let (dir_a, dir_b) = (scratch.path("a"), scratch.path("b"));
    let faults = "seed=5,transient=80,outages=1,outage_ms=1,rank_dpus=4";
    let base = |out_dir: &Path| {
        let mut c = pimsim();
        c.args(["serve", "faulty", "--duration-ms", "4", "--threads", "2", "--faults", faults])
            .arg("--out")
            .arg(out_dir);
        c
    };
    // Full run, cutting a checkpoint every simulated millisecond.
    let st = base(&dir_a).args(["--checkpoint-every", "1"]).output().expect("spawn pimsim");
    assert!(st.status.success(), "stderr: {}", String::from_utf8_lossy(&st.stderr));
    let ckpt = dir_a.join("serve_faulty.ckpt1.json");
    assert!(ckpt.is_file(), "a 4 ms run at 1 ms cadence must cut several checkpoints");
    // Resume from a mid-run cut: the final document must be byte-identical.
    let st = base(&dir_b).arg("--resume").arg(&ckpt).output().expect("spawn pimsim");
    assert!(st.status.success(), "stderr: {}", String::from_utf8_lossy(&st.stderr));
    let a = std::fs::read_to_string(dir_a.join("serve_faulty.json")).unwrap();
    let b = std::fs::read_to_string(dir_b.join("serve_faulty.json")).unwrap();
    assert!(a == b, "resumed results JSON diverged from the uninterrupted run");
    // A checkpoint from a different run identity is refused up front.
    let st = base(&scratch.path("c"))
        .args(["--seed", "43"])
        .arg("--resume")
        .arg(&ckpt)
        .output()
        .expect("spawn pimsim");
    assert!(!st.status.success(), "a seed-43 run must not accept a seed-42 checkpoint");
    let stderr = String::from_utf8_lossy(&st.stderr);
    assert!(stderr.contains("checkpoint does not match this run"), "stderr: {stderr}");
}

#[test]
fn fuzz_unknown_flag_is_a_usage_error() {
    let out = pimsim().args(["fuzz", "--frobnicate"]).output().expect("spawn pimsim");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown flag"), "stderr: {stderr}");
    assert!(stderr.contains("usage: pimsim fuzz"), "stderr: {stderr}");
}

#[test]
fn fuzz_bad_corpus_path_exits_nonzero() {
    let scratch = Scratch::new("fuzz-bad-corpus");
    let missing = scratch.path("no/such/corpus");
    let out = pimsim()
        .args(["fuzz", "--budget", "1", "--corpus"])
        .arg(&missing)
        .output()
        .expect("spawn pimsim");
    assert!(!out.status.success(), "a missing corpus dir must fail the campaign");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot read corpus dir"), "stderr: {stderr}");
}

#[test]
fn fuzz_out_creates_missing_parent_dirs() {
    let scratch = Scratch::new("fuzz-out");
    let out_path = scratch.path("x/y/fuzz.json");
    let st = pimsim()
        .args(["fuzz", "--seed", "3", "--budget", "4", "--jobs", "2", "--json", "--out"])
        .arg(&out_path)
        .output()
        .expect("spawn pimsim");
    assert!(st.status.success(), "stderr: {}", String::from_utf8_lossy(&st.stderr));
    let doc = parse_file(&out_path);
    let Json::Obj(pairs) = &doc else { panic!("fuzz doc not an object") };
    assert_eq!(pairs[0].0, "seed");
    let failures = pairs.iter().find(|(k, _)| k == "failures_seen").expect("failures_seen");
    assert_eq!(failures.1, Json::UInt(0));
    // --json prints the same document to stdout.
    let stdout = String::from_utf8_lossy(&st.stdout);
    assert!(stdout.contains("\"class_hazard_reachable\""), "stdout: {stdout}");
}

#[test]
fn fuzz_mutate_self_check_succeeds_and_prints_a_shrunk_repro() {
    let out = pimsim()
        .args(["fuzz", "--mutate", "--seed", "1", "--budget", "256", "--jobs", "2"])
        .output()
        .expect("spawn pimsim");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("mutation self-check: detected"), "stdout: {stdout}");
    assert!(stdout.contains("shrunk repro ("), "stdout: {stdout}");
}
