//! The parallel experiment job engine.
//!
//! The paper's PIMulator runs at ≈3 KIPS single-threaded and leaves
//! multi-threaded simulation as future work (§III-D). This module closes
//! the harness half of that gap: every figure/table sweep in
//! [`crate::experiments`] is expanded into independent [`SimJob`]s and
//! executed by a [`JobRunner`] on a bounded worker pool, while **results
//! are always returned in job order**, so tables and JSON stay
//! bit-identical to a serial run regardless of worker count or scheduling.
//!
//! Workloads share no mutable state across jobs (each job builds its own
//! `PimSystem`), which is what makes the fan-out safe; determinism comes
//! from the order-restoring collection step, not from scheduling.
//!
//! # Example
//!
//! ```
//! use pimulator::jobs::{JobRunner, SimJob};
//! use pimulator::experiments::baseline;
//! use prim_suite::DatasetSize;
//!
//! let rt = JobRunner::new(Some(2));
//! let jobs = vec![
//!     SimJob::single("VA", DatasetSize::Tiny, baseline(4)),
//!     SimJob::single("RED", DatasetSize::Tiny, baseline(4)),
//! ];
//! let outs = rt.run_sims(&jobs).unwrap();
//! assert_eq!(outs.len(), 2);
//! assert!(outs[0].stats.instructions > 0);
//! ```

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use pim_dpu::{DpuConfig, DpuRunStats, SimError};
use pim_host::ExecutionTimeline;
use pim_trace::SystemTrace;
use prim_suite::{workload_by_name, DatasetSize, RunConfig};

use crate::trace::JobTrace;

/// The number of workers [`JobRunner::new`] uses when none is requested:
/// `std::thread::available_parallelism`, clamped to at least 1.
#[must_use]
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(1, NonZeroUsize::get)
}

/// One independent simulation of a PrIM workload: everything needed to run
/// it end-to-end, plus a `tag` naming the design point it represents
/// (`"Base"`, `"SIMT+AC"`, `"mmu"`, …) so sweep post-processing can group
/// rows without re-deriving labels from configurations.
#[derive(Debug, Clone)]
pub struct SimJob {
    /// PrIM workload name (resolved with [`prim_suite::workload_by_name`]).
    pub workload: String,
    /// Dataset configuration to run at.
    pub size: DatasetSize,
    /// Full run configuration (DPU knobs, DPU count, transfer channel).
    pub run: RunConfig,
    /// Design-point / mode label carried through to the results.
    pub tag: String,
}

impl SimJob {
    /// A single-DPU job with an empty tag.
    #[must_use]
    pub fn single(workload: &str, size: DatasetSize, cfg: DpuConfig) -> Self {
        SimJob {
            workload: workload.to_string(),
            size,
            run: RunConfig::single(cfg),
            tag: String::new(),
        }
    }

    /// A multi-DPU strong-scaling job with an empty tag.
    #[must_use]
    pub fn multi(workload: &str, size: DatasetSize, n_dpus: u32, cfg: DpuConfig) -> Self {
        SimJob {
            workload: workload.to_string(),
            size,
            run: RunConfig::multi(n_dpus, cfg),
            tag: String::new(),
        }
    }

    /// Attaches a design-point tag.
    #[must_use]
    pub fn tagged(mut self, tag: impl Into<String>) -> Self {
        self.tag = tag.into();
        self
    }

    /// Tasklets per DPU of this job.
    #[must_use]
    pub fn threads(&self) -> u32 {
        self.run.dpu.n_tasklets
    }

    /// A label naming this job in trace tracks and result files:
    /// `workload[/tag]@threads`.
    #[must_use]
    pub fn label(&self) -> String {
        if self.tag.is_empty() {
            format!("{}@{}", self.workload, self.threads())
        } else {
            format!("{}/{}@{}", self.workload, self.tag, self.threads())
        }
    }

    /// Runs the job end-to-end and validates the output against the
    /// workload's reference implementation.
    ///
    /// # Errors
    ///
    /// Propagates the simulation fault, if any.
    ///
    /// # Panics
    ///
    /// Panics if the workload name is unknown or the simulated output does
    /// not match the reference (an experiment must never silently report
    /// numbers from a wrong computation).
    pub fn execute(&self) -> Result<SimJobOutput, SimError> {
        let w = workload_by_name(&self.workload)
            .unwrap_or_else(|| panic!("unknown workload `{}`", self.workload));
        let mut run = w.run(self.size, &self.run)?;
        run.validation
            .as_ref()
            .unwrap_or_else(|e| panic!("{} failed validation: {e}", self.workload));
        Ok(SimJobOutput {
            stats: run.merged(),
            per_dpu: run.per_dpu,
            timeline: run.timeline,
            trace: run.trace.take(),
        })
    }
}

/// What one [`SimJob`] produced.
#[derive(Debug, Clone)]
pub struct SimJobOutput {
    /// Statistics merged across every DPU and launch.
    pub stats: DpuRunStats,
    /// Per-DPU statistics.
    pub per_dpu: Vec<DpuRunStats>,
    /// End-to-end transfer/kernel/transfer breakdown.
    pub timeline: ExecutionTimeline,
    /// Structured event trace, present when the runner ran with
    /// [`JobRunner::with_trace`] (or the job's config enabled tracing).
    pub trace: Option<SystemTrace>,
}

/// A bounded scoped-thread worker pool that maps a function over a slice
/// of items and returns results **in item order**.
#[derive(Debug, Clone)]
pub struct JobRunner {
    workers: usize,
    /// Per-DPU event-ring capacity applied to every job when tracing.
    trace_capacity: Option<usize>,
    /// Shared sink harvesting labelled traces out of experiment code that
    /// only looks at stats (see [`JobRunner::collecting_traces`]).
    trace_sink: Option<Arc<Mutex<Vec<JobTrace>>>>,
}

impl JobRunner {
    /// A runner with `workers` threads (`None` ⇒ [`default_workers`]).
    /// Worker counts are clamped to at least 1.
    #[must_use]
    pub fn new(workers: Option<usize>) -> Self {
        JobRunner {
            workers: workers.unwrap_or_else(default_workers).max(1),
            trace_capacity: None,
            trace_sink: None,
        }
    }

    /// A single-worker runner: jobs execute one by one on the caller's
    /// thread, in order — the reference against which parallel runs are
    /// checked for bit-identical output.
    #[must_use]
    pub fn serial() -> Self {
        JobRunner { workers: 1, trace_capacity: None, trace_sink: None }
    }

    /// Enables structured event tracing: every job runs with a per-DPU
    /// event ring of `capacity` entries, and its [`SimJobOutput::trace`] is
    /// populated. Capacity 0 disables tracing again.
    #[must_use]
    pub fn with_trace(mut self, capacity: usize) -> Self {
        self.trace_capacity = (capacity > 0).then_some(capacity);
        self
    }

    /// Like [`JobRunner::with_trace`], but additionally moves every job's
    /// trace out of its [`SimJobOutput`] into a shared collector, labelled
    /// with [`SimJob::label`]. Experiment code that only reads stats can
    /// then run unmodified while the driver harvests the traces afterwards
    /// with [`JobRunner::collected_traces`]. Clones share the collector.
    #[must_use]
    pub fn collecting_traces(mut self, capacity: usize) -> Self {
        self = self.with_trace(capacity);
        self.trace_sink = self.trace_capacity.map(|_| Arc::new(Mutex::new(Vec::new())));
        self
    }

    /// Drains the traces harvested so far, in batch-completion order
    /// (within a batch, in job order).
    #[must_use]
    pub fn collected_traces(&self) -> Vec<JobTrace> {
        self.trace_sink
            .as_ref()
            .map_or_else(Vec::new, |s| std::mem::take(&mut *s.lock().expect("trace sink poisoned")))
    }

    /// The worker cap.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Maps `f` over `items` on at most [`JobRunner::workers`] scoped
    /// threads. `f` receives `(index, item)`. The returned vector is in
    /// item order regardless of which worker ran what.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let n_workers = self.workers.min(items.len());
        if n_workers <= 1 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let cursor = AtomicUsize::new(0);
        let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
        std::thread::scope(|scope| {
            for _ in 0..n_workers {
                scope.spawn(|| {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, f(i, &items[i])));
                    }
                    collected.lock().expect("result sink poisoned").extend(local);
                });
            }
        });
        let mut tagged = collected.into_inner().expect("result sink poisoned");
        tagged.sort_by_key(|(i, _)| *i);
        debug_assert_eq!(tagged.len(), items.len());
        tagged.into_iter().map(|(_, r)| r).collect()
    }

    /// Executes a batch of [`SimJob`]s, returning outputs in job order.
    ///
    /// # Errors
    ///
    /// Returns the fault of the **first job in job order** that failed
    /// (independent of which worker hit a fault first, to keep error
    /// reporting deterministic too).
    pub fn run_sims(&self, jobs: &[SimJob]) -> Result<Vec<SimJobOutput>, SimError> {
        if let Some(capacity) = self.trace_capacity {
            let traced: Vec<SimJob> = jobs
                .iter()
                .map(|job| {
                    let mut job = job.clone();
                    job.run.dpu.event_trace_capacity = capacity;
                    job
                })
                .collect();
            let mut outs: Vec<SimJobOutput> =
                self.map(&traced, |_, job| job.execute()).into_iter().collect::<Result<_, _>>()?;
            if let Some(sink) = &self.trace_sink {
                let mut sink = sink.lock().expect("trace sink poisoned");
                for (job, out) in traced.iter().zip(outs.iter_mut()) {
                    if let Some(trace) = out.trace.take() {
                        sink.push(JobTrace { label: job.label(), trace });
                    }
                }
            }
            return Ok(outs);
        }
        self.map(jobs, |_, job| job.execute()).into_iter().collect()
    }
}

impl Default for JobRunner {
    fn default() -> Self {
        JobRunner::new(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::baseline;

    #[test]
    fn map_preserves_item_order() {
        let rt = JobRunner::new(Some(4));
        let items: Vec<u64> = (0..64).collect();
        let out = rt.map(&items, |i, &x| {
            // Stagger completion so fast jobs finish before slow ones.
            if i % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            x * 10
        });
        assert_eq!(out, (0..64).map(|x| x * 10).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..40).collect();
        let serial = JobRunner::serial().map(&items, |i, &x| x + i as u64);
        let parallel = JobRunner::new(Some(8)).map(&items, |i, &x| x + i as u64);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn worker_counts_are_clamped() {
        assert_eq!(JobRunner::new(Some(0)).workers(), 1);
        assert!(JobRunner::new(None).workers() >= 1);
    }

    #[test]
    fn sim_jobs_run_and_validate() {
        let rt = JobRunner::new(Some(2));
        let jobs = vec![
            SimJob::single("VA", DatasetSize::Tiny, baseline(2)).tagged("a"),
            SimJob::single("RED", DatasetSize::Tiny, baseline(2)).tagged("b"),
            SimJob::multi("VA", DatasetSize::Tiny, 2, baseline(2)),
        ];
        let outs = rt.run_sims(&jobs).unwrap();
        assert_eq!(outs.len(), 3);
        assert!(outs.iter().all(|o| o.stats.instructions > 0));
        assert_eq!(outs[2].per_dpu.len(), 2);
    }

    #[test]
    fn with_trace_populates_outputs() {
        let rt = JobRunner::serial().with_trace(256);
        let outs = rt.run_sims(&[SimJob::single("RED", DatasetSize::Tiny, baseline(2))]).unwrap();
        assert!(outs[0].trace.as_ref().is_some_and(|t| t.event_count() > 0));
    }

    #[test]
    fn collecting_traces_harvests_labelled_traces() {
        let rt = JobRunner::new(Some(2)).collecting_traces(1024);
        let jobs = vec![SimJob::single("VA", DatasetSize::Tiny, baseline(2)).tagged("t")];
        let outs = rt.run_sims(&jobs).unwrap();
        assert!(outs[0].trace.is_none(), "trace moved into the collector");
        let traces = rt.collected_traces();
        assert_eq!(traces.len(), 1);
        assert_eq!(traces[0].label, "VA/t@2");
        assert!(traces[0].trace.event_count() > 0);
        assert!(rt.collected_traces().is_empty(), "collector drains on read");
    }

    #[test]
    fn parallel_sim_results_match_serial_bit_for_bit() {
        let jobs: Vec<SimJob> = ["VA", "RED", "BS", "GEMV"]
            .iter()
            .map(|w| SimJob::single(w, DatasetSize::Tiny, baseline(4)))
            .collect();
        let serial = JobRunner::serial().run_sims(&jobs).unwrap();
        let parallel = JobRunner::new(Some(4)).run_sims(&jobs).unwrap();
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.stats.cycles, p.stats.cycles);
            assert_eq!(s.stats.instructions, p.stats.instructions);
            assert!((s.timeline.total_ns() - p.timeline.total_ns()).abs() < 1e-12);
        }
    }
}
