//! # pimulator
//!
//! The facade of **PIMulator-RS**, a from-scratch Rust reproduction of the
//! simulation framework in *"Pathfinding Future PIM Architectures by
//! Demystifying a Commercial PIM Technology"* (HPCA 2024): a cycle-level
//! simulator for UPMEM-style general-purpose processing-in-memory, its
//! software toolchain, the PrIM benchmark suite, and the paper's four
//! architectural case studies.
//!
//! This crate re-exports the whole stack and adds the **experiment
//! harness** — one function per paper figure/table — plus plain-text report
//! rendering used by the `pim-bench` regeneration binaries.
//!
//! ## The stack
//!
//! | crate | role |
//! |---|---|
//! | [`pim_isa`] | the DPU instruction set (even/odd RF, WRAM-only loads, DMA, `acquire`/`release`) |
//! | [`pim_asm`] | assembler, flexible linker, kernel-builder eDSL, barrier/mutex runtime |
//! | [`pim_dram`] | cycle-level DDR4-2400 bank with FR-FCFS |
//! | [`pim_cache`] | set-associative caches for the §V-D study |
//! | [`pim_mmu`] | TLB + page-walk model for the §V-C study |
//! | [`pim_dpu`] | the cycle-level DPU: revolver pipeline, hazards, DMA engine, SIMT/ILP/cache modes |
//! | [`pim_host`] | host runtime: DPU sets, asymmetric transfers, multi-DPU launches |
//! | [`prim_suite`] | the 16 PrIM workloads with datasets, references, validation |
//!
//! # Example: run a workload and read the paper's metrics
//!
//! ```
//! use pimulator::prelude::*;
//!
//! let gemv = prim_suite::workload_by_name("GEMV").unwrap();
//! let run = gemv
//!     .run(DatasetSize::Tiny, &RunConfig::single(DpuConfig::paper_baseline(16)))
//!     .unwrap();
//! run.validation.as_ref().expect("validated against the reference");
//! let stats = &run.per_dpu[0];
//! println!(
//!     "IPC {:.2}, MRAM read util {:.2}",
//!     stats.ipc(),
//!     stats.mram_read_utilization()
//! );
//! ```

pub mod experiments;
pub mod jobs;
pub mod report;
pub mod trace;

pub use pim_asm;
pub use pim_cache;
pub use pim_dpu;
pub use pim_dram;
pub use pim_host;
pub use pim_isa;
pub use pim_mmu;
pub use pim_ref;
pub use pim_trace;
pub use prim_suite;

/// The most commonly used types, for glob import.
pub mod prelude {
    pub use pim_asm::{assemble, DpuProgram, KernelBuilder};
    pub use pim_dpu::{Dpu, DpuConfig, DpuRunStats, IlpFeatures, MemoryMode, SimError, SimtConfig};
    pub use pim_host::{ExecutionTimeline, PimSystem, TransferConfig};
    pub use prim_suite::{
        all_workloads, workload_by_name, DatasetSize, RunConfig, Workload, WorkloadRun,
    };
}
