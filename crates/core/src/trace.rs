//! Chrome trace-event export for structured simulation traces.
//!
//! Converts the [`pim_trace::SystemTrace`]s harvested from a batch of
//! [`crate::jobs::SimJob`]s into the Chrome trace-event JSON format, which
//! loads directly into `chrome://tracing` and Perfetto. Each job becomes a
//! process (`pid`); within a job, the host transfer channel, every DPU
//! tasklet, and each DPU's stall and DRAM-row activity get their own
//! thread track (`tid`).
//!
//! Timestamps (`ts`) are microseconds: DPU events convert core cycles at
//! the configured frequency, host events are already in nanoseconds.
//!
//! Because the per-DPU ring sink drops its *oldest* events when full, a
//! drained trace may contain `E` (end) events whose `B` (begin) was
//! evicted, or `B` events whose `E` falls outside the ring. The exporter
//! repairs both: orphan ends are skipped and unclosed begins are closed at
//! the track's final timestamp, so the output always has balanced `B`/`E`
//! pairs per track.

use std::collections::BTreeMap;

use pim_trace::{SystemTrace, TraceEvent};

use crate::report::Json;

/// One job's trace, labelled for display.
#[derive(Debug, Clone)]
pub struct JobTrace {
    /// Track-group label (usually [`crate::jobs::SimJob::label`]).
    pub label: String,
    /// The harvested trace.
    pub trace: SystemTrace,
}

/// Thread-id stride reserved per DPU: 36 tasklet tracks (more than the
/// 24-tasklet architectural maximum, and enough for SIMT warp indices),
/// plus the stall and DRAM tracks.
const TRACKS_PER_DPU: u64 = 40;
/// Host transfer track within a job.
const HOST_TRACK: u64 = 0;
/// Offset of the stall track within a DPU's track group.
const STALL_TRACK: u64 = 36;
/// Offset of the DRAM-row track within a DPU's track group.
const DRAM_TRACK: u64 = 37;

/// A trace event before serialization, on one `(pid, tid)` track.
struct Ev {
    ts: f64,
    ph: char,
    name: &'static str,
    /// Duration in µs, for `X` (complete) events.
    dur: Option<f64>,
    args: Vec<(&'static str, Json)>,
}

fn tasklet_tid(dpu: usize, tasklet: u32) -> u64 {
    1 + dpu as u64 * TRACKS_PER_DPU + u64::from(tasklet).min(STALL_TRACK - 1)
}

/// Converts one event into `(tid, Ev)` within a job, or `None` for events
/// this exporter does not visualize.
#[allow(clippy::too_many_lines)]
fn convert(dpu: usize, per_us: f64, event: &TraceEvent) -> Option<(u64, Ev)> {
    let us = |cycle: u64| cycle as f64 / per_us;
    Some(match *event {
        TraceEvent::InstrRetire { cycle, tasklet, pc, class } => (
            tasklet_tid(dpu, tasklet),
            Ev {
                ts: us(cycle),
                ph: 'X',
                name: class.label(),
                dur: Some(1.0 / per_us),
                args: vec![("pc", Json::from(pc))],
            },
        ),
        TraceEvent::Stall { cycle, cycles, cause } => (
            1 + dpu as u64 * TRACKS_PER_DPU + STALL_TRACK,
            Ev {
                ts: us(cycle),
                ph: 'X',
                name: cause.label(),
                dur: Some(cycles as f64 / per_us),
                args: Vec::new(),
            },
        ),
        TraceEvent::DmaBegin { cycle, tasklet, mram, bytes, write } => (
            tasklet_tid(dpu, tasklet),
            Ev {
                ts: us(cycle),
                ph: 'B',
                name: "dma",
                dur: None,
                args: vec![
                    ("mram", Json::from(mram)),
                    ("bytes", Json::from(bytes)),
                    ("write", Json::from(write)),
                ],
            },
        ),
        TraceEvent::DmaEnd { cycle, tasklet } => (
            tasklet_tid(dpu, tasklet),
            Ev { ts: us(cycle), ph: 'E', name: "dma", dur: None, args: Vec::new() },
        ),
        TraceEvent::BarrierAcquire { cycle, tasklet, bit, acquired } => (
            tasklet_tid(dpu, tasklet),
            Ev {
                ts: us(cycle),
                ph: 'i',
                name: if acquired { "acquire" } else { "acquire-retry" },
                dur: None,
                args: vec![("bit", Json::from(bit))],
            },
        ),
        TraceEvent::BarrierRelease { cycle, tasklet, bit } => (
            tasklet_tid(dpu, tasklet),
            Ev {
                ts: us(cycle),
                ph: 'i',
                name: "release",
                dur: None,
                args: vec![("bit", Json::from(bit))],
            },
        ),
        TraceEvent::RowActivate { cycle, row } => (
            1 + dpu as u64 * TRACKS_PER_DPU + DRAM_TRACK,
            Ev {
                ts: us(cycle),
                ph: 'i',
                name: "activate",
                dur: None,
                args: vec![("row", Json::from(row))],
            },
        ),
        TraceEvent::RowPrecharge { cycle, row } => (
            1 + dpu as u64 * TRACKS_PER_DPU + DRAM_TRACK,
            Ev {
                ts: us(cycle),
                ph: 'i',
                name: "precharge",
                dur: None,
                args: vec![("row", Json::from(row))],
            },
        ),
        TraceEvent::HostPush { at_ns, ns, bytes } => (
            HOST_TRACK,
            Ev {
                ts: at_ns / 1000.0,
                ph: 'X',
                name: "host-push",
                dur: Some(ns / 1000.0),
                args: vec![("bytes", Json::from(bytes))],
            },
        ),
        TraceEvent::HostPull { at_ns, ns, bytes } => (
            HOST_TRACK,
            Ev {
                ts: at_ns / 1000.0,
                ph: 'X',
                name: "host-pull",
                dur: Some(ns / 1000.0),
                args: vec![("bytes", Json::from(bytes))],
            },
        ),
    })
}

fn metadata(pid: u64, tid: u64, kind: &str, name: &str) -> Json {
    Json::obj([
        ("name", Json::from(kind)),
        ("ph", Json::from("M")),
        ("pid", Json::from(pid)),
        ("tid", Json::from(tid)),
        ("args", Json::obj([("name", Json::from(name))])),
    ])
}

fn serialize(pid: u64, tid: u64, ev: &Ev) -> Json {
    let mut pairs = vec![
        ("name", Json::from(ev.name)),
        ("ph", Json::from(ev.ph.to_string())),
        ("ts", Json::from(ev.ts)),
        ("pid", Json::from(pid)),
        ("tid", Json::from(tid)),
    ];
    if let Some(dur) = ev.dur {
        pairs.push(("dur", Json::from(dur)));
    }
    if !ev.args.is_empty() {
        pairs.push(("args", Json::obj(ev.args.clone())));
    }
    Json::obj(pairs)
}

/// Renders a batch of job traces as one Chrome trace-event document:
/// `{"traceEvents": [...], "displayTimeUnit": "ms"}`.
///
/// Events within each `(pid, tid)` track are sorted by timestamp (stable,
/// so same-cycle events keep emission order) and `B`/`E` pairs are
/// balanced even when the ring sink dropped events.
#[must_use]
pub fn chrome_trace(jobs: &[JobTrace]) -> Json {
    let mut out: Vec<Json> = Vec::new();
    for (pid, job) in jobs.iter().enumerate() {
        let pid = pid as u64;
        let trace = &job.trace;
        let per_us = f64::from(trace.freq_mhz.max(1));
        let mut tracks: BTreeMap<u64, Vec<Ev>> = BTreeMap::new();
        for event in &trace.host {
            if let Some((tid, ev)) = convert(0, per_us, event) {
                tracks.entry(tid).or_default().push(ev);
            }
        }
        for (d, dpu_trace) in trace.per_dpu.iter().enumerate() {
            for event in &dpu_trace.events {
                if let Some((tid, ev)) = convert(d, per_us, event) {
                    tracks.entry(tid).or_default().push(ev);
                }
            }
        }
        out.push(metadata(pid, HOST_TRACK, "process_name", &job.label));
        for (&tid, events) in &mut tracks {
            let name = track_name(tid);
            out.push(metadata(pid, tid, "thread_name", &name));
            events.sort_by(|a, b| a.ts.total_cmp(&b.ts));
            // Balance B/E: skip ends whose begin was evicted from the ring,
            // then close begins whose end was never recorded.
            let mut open = 0u64;
            let mut last_ts = 0.0f64;
            for ev in events.iter() {
                last_ts = last_ts.max(ev.ts);
                match ev.ph {
                    'B' => {
                        open += 1;
                        out.push(serialize(pid, tid, ev));
                    }
                    'E' if open == 0 => {} // orphan end: begin was dropped
                    'E' => {
                        open -= 1;
                        out.push(serialize(pid, tid, ev));
                    }
                    _ => out.push(serialize(pid, tid, ev)),
                }
            }
            for _ in 0..open {
                let close = Ev { ts: last_ts, ph: 'E', name: "dma", dur: None, args: Vec::new() };
                out.push(serialize(pid, tid, &close));
            }
        }
    }
    Json::obj([("traceEvents", Json::Arr(out)), ("displayTimeUnit", Json::from("ms"))])
}

fn track_name(tid: u64) -> String {
    if tid == HOST_TRACK {
        return "host".to_string();
    }
    let dpu = (tid - 1) / TRACKS_PER_DPU;
    match (tid - 1) % TRACKS_PER_DPU {
        STALL_TRACK => format!("dpu{dpu}/stalls"),
        DRAM_TRACK => format!("dpu{dpu}/dram-row"),
        t => format!("dpu{dpu}/tasklet{t}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_trace::{DpuTrace, StallCause};

    fn sample() -> JobTrace {
        let events = vec![
            TraceEvent::DmaEnd { cycle: 2, tasklet: 0 }, // orphan: begin evicted
            TraceEvent::InstrRetire {
                cycle: 5,
                tasklet: 0,
                pc: 3,
                class: pim_isa::InstrClass::Arithmetic,
            },
            TraceEvent::Stall { cycle: 6, cycles: 4, cause: StallCause::Memory },
            TraceEvent::DmaBegin { cycle: 8, tasklet: 0, mram: 64, bytes: 256, write: false },
            // No DmaEnd: must be closed at the track's final timestamp.
        ];
        JobTrace {
            label: "VA@4".to_string(),
            trace: SystemTrace {
                freq_mhz: 350,
                host: vec![TraceEvent::HostPush { at_ns: 0.0, ns: 100.0, bytes: 4096 }],
                per_dpu: vec![DpuTrace { events, dropped: 1 }],
            },
        }
    }

    fn events(doc: &Json) -> &[Json] {
        match doc {
            Json::Obj(pairs) => match &pairs[0].1 {
                Json::Arr(items) => items,
                other => panic!("traceEvents not an array: {other:?}"),
            },
            other => panic!("not an object: {other:?}"),
        }
    }

    fn field<'j>(ev: &'j Json, key: &str) -> &'j Json {
        match ev {
            Json::Obj(pairs) => &pairs.iter().find(|(k, _)| k == key).expect("field").1,
            other => panic!("event not an object: {other:?}"),
        }
    }

    #[test]
    fn document_shape_and_metadata() {
        let doc = chrome_trace(&[sample()]);
        let evs = events(&doc);
        assert!(evs.len() >= 5);
        assert_eq!(field(&evs[0], "ph"), &Json::from("M"));
        let names: Vec<String> = evs
            .iter()
            .filter(|e| field(e, "ph") == &Json::from("M"))
            .map(|e| match field(field(e, "args"), "name") {
                Json::Str(s) => s.clone(),
                _ => panic!(),
            })
            .collect();
        assert!(names.contains(&"VA@4".to_string()));
        assert!(names.contains(&"host".to_string()));
        assert!(names.contains(&"dpu0/tasklet0".to_string()));
        assert!(names.contains(&"dpu0/stalls".to_string()));
    }

    #[test]
    fn begins_and_ends_balance_per_track() {
        let doc = chrome_trace(&[sample()]);
        let mut depth: BTreeMap<(u64, u64), i64> = BTreeMap::new();
        for ev in events(&doc) {
            let key = match (field(ev, "pid"), field(ev, "tid")) {
                (Json::UInt(p), Json::UInt(t)) => (*p, *t),
                _ => panic!("pid/tid not uints"),
            };
            match field(ev, "ph") {
                Json::Str(s) if s == "B" => *depth.entry(key).or_default() += 1,
                Json::Str(s) if s == "E" => {
                    let d = depth.entry(key).or_default();
                    *d -= 1;
                    assert!(*d >= 0, "E without matching B on {key:?}");
                }
                _ => {}
            }
        }
        assert!(depth.values().all(|&d| d == 0), "unbalanced tracks: {depth:?}");
    }

    #[test]
    fn timestamps_monotonic_per_track() {
        let doc = chrome_trace(&[sample()]);
        let mut last: BTreeMap<(u64, u64), f64> = BTreeMap::new();
        for ev in events(&doc) {
            if field(ev, "ph") == &Json::from("M") {
                continue;
            }
            let key = match (field(ev, "pid"), field(ev, "tid")) {
                (Json::UInt(p), Json::UInt(t)) => (*p, *t),
                _ => panic!(),
            };
            let ts = match field(ev, "ts") {
                Json::Num(x) => *x,
                other => panic!("ts not a number: {other:?}"),
            };
            if let Some(prev) = last.insert(key, ts) {
                assert!(ts >= prev, "ts regressed on {key:?}: {prev} -> {ts}");
            }
        }
    }
}
