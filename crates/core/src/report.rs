//! Plain-text table rendering and a hand-rolled JSON emitter for the
//! figure-regeneration binaries.
//!
//! The JSON side is deliberately dependency-free: experiments emit a
//! [`Json`] tree (object keys keep insertion order, floats use Rust's
//! shortest-round-trip formatting) so that `results/<name>.json` is
//! byte-reproducible across runs and worker counts.

use std::fmt::Write as _;

/// A simple left-padded text table.
///
/// # Example
///
/// ```
/// use pimulator::report::Table;
///
/// let mut t = Table::new(&["workload", "ipc"]);
/// t.row(&["VA", "0.93"]);
/// let s = t.render();
/// assert!(s.contains("workload"));
/// assert!(s.contains("VA"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(header: &[&str]) -> Self {
        Table { header: header.iter().map(ToString::to_string).collect(), rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: &[&str]) {
        assert_eq!(cells.len(), self.header.len(), "row width must match header");
        self.rows.push(cells.iter().map(ToString::to_string).collect());
    }

    /// Appends a row of already-owned cells.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width must match header");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, "{:<width$}", c, width = widths[i] + 2);
            }
            let _ = writeln!(out);
        };
        emit(&mut out, &self.header);
        let rule: usize = widths.iter().map(|w| w + 2).sum();
        let _ = writeln!(out, "{}", "-".repeat(rule.min(120)));
        for row in &self.rows {
            emit(&mut out, row);
        }
        let _ = ncols;
        out
    }
}

/// A JSON value, hand-rolled so the workspace stays dependency-free.
///
/// Object keys preserve insertion order and numbers render with Rust's
/// shortest-round-trip `Display`, so rendering is deterministic: the same
/// tree always serializes to the same bytes.
///
/// # Example
///
/// ```
/// use pimulator::report::Json;
///
/// let j = Json::obj([
///     ("workload", Json::from("VA")),
///     ("ipc", Json::from(0.93)),
///     ("threads", Json::from(16u64)),
/// ]);
/// assert_eq!(j.render(), r#"{"workload":"VA","ipc":0.93,"threads":16}"#);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also the rendering of non-finite floats).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer (renders without a decimal point).
    Int(i64),
    /// An unsigned integer (renders without a decimal point).
    UInt(u64),
    /// A double (non-finite values render as `null`).
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    #[must_use]
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Self {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array from values.
    #[must_use]
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Self {
        Json::Arr(items.into_iter().collect())
    }

    /// Serializes compactly (no whitespace).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Serializes with two-space indentation and a trailing newline — the
    /// format written to `results/<name>.json`.
    #[must_use]
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    /// Parses a JSON document (used by tests to validate emitted files;
    /// the emitter side stays write-only in production paths).
    ///
    /// Numbers without a fraction or exponent parse as `Int`/`UInt`;
    /// everything else parses as `Num`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the byte offset of the first syntax error.
    pub fn parse(s: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Num(x) => write_f64(out, *x),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        const INDENT: &str = "  ";
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i > 0 { ",\n" } else { "\n" });
                    out.push_str(&INDENT.repeat(depth + 1));
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                out.push_str(&INDENT.repeat(depth));
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    out.push_str(if i > 0 { ",\n" } else { "\n" });
                    out.push_str(&INDENT.repeat(depth + 1));
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                out.push_str(&INDENT.repeat(depth));
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

/// Recursive-descent parser behind [`Json::parse`].
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            // Copy each run of unescaped bytes in one step: `"` and `\` are
            // ASCII, so they can never split a multi-byte sequence, and only
            // the run itself needs UTF-8 validation (validating from the
            // cursor to the end of input per character is quadratic in the
            // document size).
            let start = self.pos;
            while self.pos < self.bytes.len() && !matches!(self.bytes[self.pos], b'"' | b'\\') {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| format!("invalid UTF-8 at byte {start}"))?,
            );
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                _ => {
                    // A `\` escape sequence.
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            // Surrogates are not produced by the emitter;
                            // map unpaired ones to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number spans ASCII bytes");
        if !float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>().map(Json::Num).map_err(|_| format!("bad number at byte {start}"))
    }
}

fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        // Shortest round-trip formatting; force a decimal point (or an
        // exponent) so the value reads back as a float. Display never uses
        // exponent notation, so huge magnitudes would expand to hundreds of
        // digits — switch to `{:e}` whenever that form is shorter.
        let s = format!("{x}");
        if s.contains(['.', 'e', 'E']) {
            out.push_str(&s);
        } else {
            let exp = format!("{x:e}");
            if exp.len() < s.len() + 2 {
                out.push_str(&exp);
            } else {
                out.push_str(&s);
                out.push_str(".0");
            }
        }
    } else {
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Self {
        Json::Num(x)
    }
}

impl From<u64> for Json {
    fn from(u: u64) -> Self {
        Json::UInt(u)
    }
}

impl From<u32> for Json {
    fn from(u: u32) -> Self {
        Json::UInt(u64::from(u))
    }
}

impl From<i64> for Json {
    fn from(i: i64) -> Self {
        Json::Int(i)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Json::Bool(b)
    }
}

/// Formats a fraction as a percentage with one decimal.
#[must_use]
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a speedup ratio as `N.NNx`.
#[must_use]
pub fn speedup(x: f64) -> String {
    format!("{x:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["a", "bbbb"]);
        t.row(&["xxxxx", "1"]);
        t.row(&["y", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a "));
        assert!(lines[2].starts_with("xxxxx"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only one"]);
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(0.5), "50.0%");
        assert_eq!(speedup(2.6), "2.60x");
    }

    #[test]
    fn json_renders_compactly_with_ordered_keys() {
        let j = Json::obj([
            ("b", Json::from(1u64)),
            ("a", Json::arr([Json::Null, Json::from(true), Json::from(-3i64)])),
        ]);
        assert_eq!(j.render(), r#"{"b":1,"a":[null,true,-3]}"#);
    }

    #[test]
    fn json_floats_round_trip_and_keep_a_decimal_point() {
        assert_eq!(Json::from(0.1).render(), "0.1");
        assert_eq!(Json::from(3.0).render(), "3.0");
        assert_eq!(Json::from(f64::NAN).render(), "null");
        assert_eq!(Json::from(f64::INFINITY).render(), "null");
        assert_eq!(Json::from(1e300).render(), "1e300");
    }

    #[test]
    fn json_escapes_strings() {
        let j = Json::from("a\"b\\c\nd\u{1}");
        assert_eq!(j.render(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn json_pretty_is_indented_and_ends_with_newline() {
        let j = Json::obj([("xs", Json::arr([Json::from(1u64)])), ("e", Json::arr([]))]);
        assert_eq!(j.render_pretty(), "{\n  \"xs\": [\n    1\n  ],\n  \"e\": []\n}\n");
    }

    #[test]
    fn parse_round_trips_rendered_documents() {
        let j = Json::obj([
            ("s", Json::from("a\"b\\c\nd")),
            ("xs", Json::arr([Json::Null, Json::from(true), Json::from(-3i64)])),
            ("n", Json::from(0.25)),
            ("u", Json::from(123u64)),
            ("empty", Json::obj::<String>([])),
        ]);
        assert_eq!(Json::parse(&j.render()).unwrap(), j);
        assert_eq!(Json::parse(&j.render_pretty()).unwrap(), j);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("1 2").is_err());
    }

    #[test]
    fn parse_handles_numbers_and_escapes() {
        assert_eq!(Json::parse("1e3").unwrap(), Json::Num(1000.0));
        assert_eq!(Json::parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(Json::parse("42").unwrap(), Json::UInt(42));
        assert_eq!(Json::parse("\"\\u0041\\t\"").unwrap(), Json::Str("A\t".to_string()));
    }
}
