//! Plain-text table rendering and a hand-rolled JSON emitter for the
//! figure-regeneration binaries.
//!
//! The JSON side is deliberately dependency-free: experiments emit a
//! [`Json`] tree (object keys keep insertion order, floats use Rust's
//! shortest-round-trip formatting) so that `results/<name>.json` is
//! byte-reproducible across runs and worker counts.

use std::fmt::Write as _;

/// A simple left-padded text table.
///
/// # Example
///
/// ```
/// use pimulator::report::Table;
///
/// let mut t = Table::new(&["workload", "ipc"]);
/// t.row(&["VA", "0.93"]);
/// let s = t.render();
/// assert!(s.contains("workload"));
/// assert!(s.contains("VA"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(header: &[&str]) -> Self {
        Table { header: header.iter().map(ToString::to_string).collect(), rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: &[&str]) {
        assert_eq!(cells.len(), self.header.len(), "row width must match header");
        self.rows.push(cells.iter().map(ToString::to_string).collect());
    }

    /// Appends a row of already-owned cells.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width must match header");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, "{:<width$}", c, width = widths[i] + 2);
            }
            let _ = writeln!(out);
        };
        emit(&mut out, &self.header);
        let rule: usize = widths.iter().map(|w| w + 2).sum();
        let _ = writeln!(out, "{}", "-".repeat(rule.min(120)));
        for row in &self.rows {
            emit(&mut out, row);
        }
        let _ = ncols;
        out
    }
}

/// A JSON value, hand-rolled so the workspace stays dependency-free.
///
/// Object keys preserve insertion order and numbers render with Rust's
/// shortest-round-trip `Display`, so rendering is deterministic: the same
/// tree always serializes to the same bytes.
///
/// # Example
///
/// ```
/// use pimulator::report::Json;
///
/// let j = Json::obj([
///     ("workload", Json::from("VA")),
///     ("ipc", Json::from(0.93)),
///     ("threads", Json::from(16u64)),
/// ]);
/// assert_eq!(j.render(), r#"{"workload":"VA","ipc":0.93,"threads":16}"#);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also the rendering of non-finite floats).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer (renders without a decimal point).
    Int(i64),
    /// An unsigned integer (renders without a decimal point).
    UInt(u64),
    /// A double (non-finite values render as `null`).
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    #[must_use]
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Self {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array from values.
    #[must_use]
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Self {
        Json::Arr(items.into_iter().collect())
    }

    /// Serializes compactly (no whitespace).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Serializes with two-space indentation and a trailing newline — the
    /// format written to `results/<name>.json`.
    #[must_use]
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Num(x) => write_f64(out, *x),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        const INDENT: &str = "  ";
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i > 0 { ",\n" } else { "\n" });
                    out.push_str(&INDENT.repeat(depth + 1));
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                out.push_str(&INDENT.repeat(depth));
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    out.push_str(if i > 0 { ",\n" } else { "\n" });
                    out.push_str(&INDENT.repeat(depth + 1));
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                out.push_str(&INDENT.repeat(depth));
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        // Shortest round-trip formatting; force a decimal point (or an
        // exponent) so the value reads back as a float. Display never uses
        // exponent notation, so huge magnitudes would expand to hundreds of
        // digits — switch to `{:e}` whenever that form is shorter.
        let s = format!("{x}");
        if s.contains(['.', 'e', 'E']) {
            out.push_str(&s);
        } else {
            let exp = format!("{x:e}");
            if exp.len() < s.len() + 2 {
                out.push_str(&exp);
            } else {
                out.push_str(&s);
                out.push_str(".0");
            }
        }
    } else {
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Self {
        Json::Num(x)
    }
}

impl From<u64> for Json {
    fn from(u: u64) -> Self {
        Json::UInt(u)
    }
}

impl From<u32> for Json {
    fn from(u: u32) -> Self {
        Json::UInt(u64::from(u))
    }
}

impl From<i64> for Json {
    fn from(i: i64) -> Self {
        Json::Int(i)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Json::Bool(b)
    }
}

/// Formats a fraction as a percentage with one decimal.
#[must_use]
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a speedup ratio as `N.NNx`.
#[must_use]
pub fn speedup(x: f64) -> String {
    format!("{x:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["a", "bbbb"]);
        t.row(&["xxxxx", "1"]);
        t.row(&["y", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a "));
        assert!(lines[2].starts_with("xxxxx"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only one"]);
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(0.5), "50.0%");
        assert_eq!(speedup(2.6), "2.60x");
    }

    #[test]
    fn json_renders_compactly_with_ordered_keys() {
        let j = Json::obj([
            ("b", Json::from(1u64)),
            ("a", Json::arr([Json::Null, Json::from(true), Json::from(-3i64)])),
        ]);
        assert_eq!(j.render(), r#"{"b":1,"a":[null,true,-3]}"#);
    }

    #[test]
    fn json_floats_round_trip_and_keep_a_decimal_point() {
        assert_eq!(Json::from(0.1).render(), "0.1");
        assert_eq!(Json::from(3.0).render(), "3.0");
        assert_eq!(Json::from(f64::NAN).render(), "null");
        assert_eq!(Json::from(f64::INFINITY).render(), "null");
        assert_eq!(Json::from(1e300).render(), "1e300");
    }

    #[test]
    fn json_escapes_strings() {
        let j = Json::from("a\"b\\c\nd\u{1}");
        assert_eq!(j.render(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn json_pretty_is_indented_and_ends_with_newline() {
        let j = Json::obj([("xs", Json::arr([Json::from(1u64)])), ("e", Json::arr([]))]);
        assert_eq!(j.render_pretty(), "{\n  \"xs\": [\n    1\n  ],\n  \"e\": []\n}\n");
    }
}
