//! Plain-text table rendering for the figure-regeneration binaries.

use std::fmt::Write as _;

/// A simple left-padded text table.
///
/// # Example
///
/// ```
/// use pimulator::report::Table;
///
/// let mut t = Table::new(&["workload", "ipc"]);
/// t.row(&["VA", "0.93"]);
/// let s = t.render();
/// assert!(s.contains("workload"));
/// assert!(s.contains("VA"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(header: &[&str]) -> Self {
        Table { header: header.iter().map(ToString::to_string).collect(), rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: &[&str]) {
        assert_eq!(cells.len(), self.header.len(), "row width must match header");
        self.rows.push(cells.iter().map(ToString::to_string).collect());
    }

    /// Appends a row of already-owned cells.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width must match header");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, "{:<width$}", c, width = widths[i] + 2);
            }
            let _ = writeln!(out);
        };
        emit(&mut out, &self.header);
        let rule: usize = widths.iter().map(|w| w + 2).sum();
        let _ = writeln!(out, "{}", "-".repeat(rule.min(120)));
        for row in &self.rows {
            emit(&mut out, row);
        }
        let _ = ncols;
        out
    }
}

/// Formats a fraction as a percentage with one decimal.
#[must_use]
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a speedup ratio as `N.NNx`.
#[must_use]
pub fn speedup(x: f64) -> String {
    format!("{x:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["a", "bbbb"]);
        t.row(&["xxxxx", "1"]);
        t.row(&["y", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a "));
        assert!(lines[2].starts_with("xxxxx"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only one"]);
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(0.5), "50.0%");
        assert_eq!(speedup(2.6), "2.60x");
    }
}
