//! The experiment harness: one function per figure/table of the paper's
//! evaluation, returning structured rows that the `pim-bench` driver
//! prints and the integration tests sanity-check.
//!
//! Every function takes the [`DatasetSize`] to run at, so the same code
//! regenerates the paper's numbers (`SingleDpu`/`MultiDpu`, Table II) and
//! runs fast in CI (`Tiny`).
//!
//! Each sweep is declared as a flat list of [`SimJob`]s and executed
//! through a [`JobRunner`], so independent simulations fan out across
//! worker threads; results come back in job order, and all derived
//! quantities (speedup baselines, breakdowns) are computed serially from
//! that ordered list — output is bit-identical at any worker count.

use crate::jobs::{JobRunner, SimJob, SimJobOutput};
use pim_dpu::{DpuConfig, IlpFeatures, SimError, SimtConfig};
use pim_isa::InstrClass;
use prim_suite::{all_workloads, DatasetSize};

/// The baseline configuration used by the characterization figures.
#[must_use]
pub fn baseline(threads: u32) -> DpuConfig {
    DpuConfig::paper_baseline(threads)
}

/// Names of all PrIM workloads, in suite order.
fn workload_names() -> Vec<String> {
    all_workloads().iter().map(|w| w.name().to_string()).collect()
}

// ---------------------------------------------------------------------
// Fig 5 — compute & memory-bandwidth utilization
// ---------------------------------------------------------------------

/// One point of Fig 5.
#[derive(Debug, Clone)]
pub struct UtilRow {
    /// Workload name.
    pub workload: String,
    /// Tasklet count.
    pub threads: u32,
    /// IPC over peak IPC (left axis).
    pub compute_util: f64,
    /// MRAM read bandwidth over the interface peak (right axis).
    pub mem_util: f64,
}

/// Fig 5: PrIM compute and MRAM-read-bandwidth utilization at 1/4/16
/// tasklets.
///
/// # Errors
///
/// Propagates the first simulation fault.
pub fn fig05_utilization(
    rt: &JobRunner,
    size: DatasetSize,
    threads: &[u32],
) -> Result<Vec<UtilRow>, SimError> {
    let jobs: Vec<SimJob> = workload_names()
        .iter()
        .flat_map(|w| threads.iter().map(|&t| SimJob::single(w, size, baseline(t))))
        .collect();
    let outs = rt.run_sims(&jobs)?;
    Ok(jobs
        .iter()
        .zip(&outs)
        .map(|(job, o)| UtilRow {
            workload: job.workload.clone(),
            threads: job.threads(),
            compute_util: o.stats.compute_utilization(),
            mem_util: o.stats.mram_read_utilization(),
        })
        .collect())
}

// ---------------------------------------------------------------------
// Fig 6 — runtime breakdown
// ---------------------------------------------------------------------

/// One stacked bar of Fig 6 (or of Fig 12's breakdown).
#[derive(Debug, Clone)]
pub struct BreakdownRow {
    /// Workload name.
    pub workload: String,
    /// Tasklet count.
    pub threads: u32,
    /// Fraction of cycles with an issue.
    pub active: f64,
    /// Idle fraction attributed to memory.
    pub idle_memory: f64,
    /// Idle fraction attributed to the revolver constraint.
    pub idle_revolver: f64,
    /// Idle fraction attributed to the RF hazard.
    pub idle_rf: f64,
}

/// Fig 6: active/idle(memory/revolver/RF) runtime breakdown.
///
/// # Errors
///
/// Propagates the first simulation fault.
pub fn fig06_breakdown(
    rt: &JobRunner,
    size: DatasetSize,
    threads: &[u32],
) -> Result<Vec<BreakdownRow>, SimError> {
    let jobs: Vec<SimJob> = workload_names()
        .iter()
        .flat_map(|w| threads.iter().map(|&t| SimJob::single(w, size, baseline(t))))
        .collect();
    let outs = rt.run_sims(&jobs)?;
    Ok(jobs.iter().zip(&outs).map(|(job, o)| breakdown_row(job, o)).collect())
}

fn breakdown_row(job: &SimJob, o: &SimJobOutput) -> BreakdownRow {
    let (active, m, r, f) = o.stats.breakdown();
    BreakdownRow {
        workload: job.workload.clone(),
        threads: job.threads(),
        active,
        idle_memory: m,
        idle_revolver: r,
        idle_rf: f,
    }
}

// ---------------------------------------------------------------------
// Fig 7 — issuable-thread histogram
// ---------------------------------------------------------------------

/// One workload's Fig 7 histogram.
#[derive(Debug, Clone)]
pub struct TlpHistRow {
    /// Workload name.
    pub workload: String,
    /// `fractions[k]` = fraction of cycles with exactly `k` issuable
    /// tasklets.
    pub fractions: Vec<f64>,
    /// Mean issuable count (the figure's right axis).
    pub mean: f64,
}

/// Fig 7: issuable-tasklet histogram at 16 tasklets.
///
/// # Errors
///
/// Propagates the first simulation fault.
pub fn fig07_tlp_histogram(
    rt: &JobRunner,
    size: DatasetSize,
    threads: u32,
) -> Result<Vec<TlpHistRow>, SimError> {
    let jobs: Vec<SimJob> =
        workload_names().iter().map(|w| SimJob::single(w, size, baseline(threads))).collect();
    let outs = rt.run_sims(&jobs)?;
    Ok(jobs
        .iter()
        .zip(&outs)
        .map(|(job, o)| {
            let total: u64 = o.stats.tlp_histogram.iter().sum();
            let fractions = o
                .stats
                .tlp_histogram
                .iter()
                .map(|&c| if total == 0 { 0.0 } else { c as f64 / total as f64 })
                .collect();
            TlpHistRow { workload: job.workload.clone(), fractions, mean: o.stats.mean_issuable() }
        })
        .collect())
}

// ---------------------------------------------------------------------
// Fig 8 — TLP over time
// ---------------------------------------------------------------------

/// One workload's Fig 8 trace.
#[derive(Debug, Clone)]
pub struct TlpTimelineRow {
    /// Workload name.
    pub workload: String,
    /// Cycles per window.
    pub window: u64,
    /// Mean issuable tasklets per window.
    pub series: Vec<f32>,
}

/// Fig 8: issuable-thread count over time for BS, GEMV, and SCAN-SSA.
///
/// # Errors
///
/// Propagates the first simulation fault.
pub fn fig08_tlp_timeline(
    rt: &JobRunner,
    size: DatasetSize,
    threads: u32,
) -> Result<Vec<TlpTimelineRow>, SimError> {
    let jobs: Vec<SimJob> = ["BS", "GEMV", "SCAN-SSA"]
        .iter()
        .map(|name| SimJob::single(name, size, baseline(threads)))
        .collect();
    let outs = rt.run_sims(&jobs)?;
    Ok(jobs
        .iter()
        .zip(outs)
        .map(|(job, o)| TlpTimelineRow {
            workload: job.workload.clone(),
            window: o.stats.tlp_window,
            series: o.stats.tlp_timeline,
        })
        .collect())
}

// ---------------------------------------------------------------------
// Fig 9 — instruction mix
// ---------------------------------------------------------------------

/// One bar of Fig 9.
#[derive(Debug, Clone)]
pub struct MixRow {
    /// Workload name.
    pub workload: String,
    /// Tasklet count.
    pub threads: u32,
    /// Fractions in [`InstrClass::ALL`] order.
    pub fractions: [f64; 6],
}

/// Fig 9: instruction mix at 1/4/16 tasklets.
///
/// # Errors
///
/// Propagates the first simulation fault.
pub fn fig09_instr_mix(
    rt: &JobRunner,
    size: DatasetSize,
    threads: &[u32],
) -> Result<Vec<MixRow>, SimError> {
    let jobs: Vec<SimJob> = workload_names()
        .iter()
        .flat_map(|w| threads.iter().map(|&t| SimJob::single(w, size, baseline(t))))
        .collect();
    let outs = rt.run_sims(&jobs)?;
    Ok(jobs
        .iter()
        .zip(&outs)
        .map(|(job, o)| {
            let mut fractions = [0.0; 6];
            for (i, c) in InstrClass::ALL.iter().enumerate() {
                fractions[i] = o.stats.class_fraction(*c);
            }
            MixRow { workload: job.workload.clone(), threads: job.threads(), fractions }
        })
        .collect())
}

// ---------------------------------------------------------------------
// Fig 10 — multi-DPU strong scaling
// ---------------------------------------------------------------------

/// One bar of Fig 10.
#[derive(Debug, Clone)]
pub struct ScalingRow {
    /// Workload name.
    pub workload: String,
    /// DPUs used.
    pub n_dpus: u32,
    /// CPU→DPU transfer ns.
    pub to_dpu_ns: f64,
    /// Kernel ns.
    pub kernel_ns: f64,
    /// CPU←DPU transfer ns.
    pub from_dpu_ns: f64,
    /// End-to-end speedup vs the 1-DPU run of the same workload.
    pub speedup: f64,
}

/// Fig 10: strong scaling across 1/16/64 DPUs with the latency breakdown.
///
/// # Errors
///
/// Propagates the first simulation fault.
pub fn fig10_strong_scaling(
    rt: &JobRunner,
    size: DatasetSize,
    dpus: &[u32],
    threads: u32,
) -> Result<Vec<ScalingRow>, SimError> {
    let jobs: Vec<SimJob> = workload_names()
        .iter()
        .flat_map(|w| dpus.iter().map(|&d| SimJob::multi(w, size, d, baseline(threads))))
        .collect();
    let outs = rt.run_sims(&jobs)?;
    // The speedup baseline is the first DPU count of each workload group —
    // computed serially over the ordered results.
    let mut out = Vec::with_capacity(jobs.len());
    for (jobs, outs) in jobs.chunks(dpus.len()).zip(outs.chunks(dpus.len())) {
        let base = outs[0].timeline.total_ns();
        for (job, o) in jobs.iter().zip(outs) {
            let t = &o.timeline;
            out.push(ScalingRow {
                workload: job.workload.clone(),
                n_dpus: job.run.n_dpus,
                to_dpu_ns: t.to_dpu_ns,
                kernel_ns: t.kernel_ns,
                from_dpu_ns: t.from_dpu_ns,
                speedup: base / t.total_ns(),
            });
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Fig 11 — SIMT case study (GEMV)
// ---------------------------------------------------------------------

/// One design point of Fig 11.
#[derive(Debug, Clone)]
pub struct SimtRow {
    /// Design-point label (`Base`, `SIMT`, `SIMT+AC`, `SIMT+AC+4x`, …).
    pub label: String,
    /// Achieved IPC (max 1 for Base, 16 for SIMT points).
    pub ipc: f64,
    /// Kernel-time speedup vs `Base`.
    pub speedup: f64,
}

/// Fig 11: GEMV under the SIMT vector extension, additively enabling the
/// address coalescer and MRAM-bandwidth scaling.
///
/// # Errors
///
/// Propagates the first simulation fault.
pub fn fig11_simt(
    rt: &JobRunner,
    size: DatasetSize,
    threads: u32,
) -> Result<Vec<SimtRow>, SimError> {
    let simt = SimtConfig { coalescing: false, ..SimtConfig::default() };
    let simt_ac = SimtConfig { coalescing: true, ..SimtConfig::default() };
    let points: Vec<(&str, DpuConfig)> = vec![
        ("Base", baseline(threads)),
        ("SIMT", baseline(threads).with_simt(simt)),
        ("SIMT+AC", baseline(threads).with_simt(simt_ac)),
        ("SIMT+AC+4x", baseline(threads).with_simt(simt_ac).with_mram_bw_scale(4.0)),
        ("SIMT+AC+16x", baseline(threads).with_simt(simt_ac).with_mram_bw_scale(16.0)),
    ];
    let jobs: Vec<SimJob> = points
        .into_iter()
        .map(|(label, cfg)| SimJob::single("GEMV", size, cfg).tagged(label))
        .collect();
    let outs = rt.run_sims(&jobs)?;
    let base = outs[0].stats.time_ns();
    Ok(jobs
        .iter()
        .zip(&outs)
        .map(|(job, o)| SimtRow {
            label: job.tag.clone(),
            ipc: o.stats.ipc(),
            speedup: base / o.stats.time_ns(),
        })
        .collect())
}

// ---------------------------------------------------------------------
// Fig 12 — ILP ablation
// ---------------------------------------------------------------------

/// One (workload, design-point) cell of Fig 12.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Workload name.
    pub workload: String,
    /// Design-point label (`Base`, `Base+D`, … `Base+DRSF`).
    pub label: String,
    /// Wall-clock speedup vs `Base` (F doubles the clock, so time — not
    /// cycles — is the right metric).
    pub speedup: f64,
    /// Runtime breakdown at this design point.
    pub breakdown: BreakdownRow,
}

/// The additive feature ladder of Fig 12.
#[must_use]
pub fn ilp_ladder() -> Vec<IlpFeatures> {
    let d = IlpFeatures { data_forwarding: true, ..IlpFeatures::default() };
    let dr = IlpFeatures { unified_rf: true, ..d };
    let drs = IlpFeatures { superscalar: true, ..dr };
    let drsf = IlpFeatures { double_frequency: true, ..drs };
    vec![IlpFeatures::default(), d, dr, drs, drsf]
}

/// Fig 12: additive ILP ablation (`Base → +D → +R → +S → +F`).
///
/// # Errors
///
/// Propagates the first simulation fault.
pub fn fig12_ilp_ablation(
    rt: &JobRunner,
    size: DatasetSize,
    threads: u32,
) -> Result<Vec<AblationRow>, SimError> {
    let ladder = ilp_ladder();
    let jobs: Vec<SimJob> = workload_names()
        .iter()
        .flat_map(|w| {
            ladder.iter().map(|ilp| {
                SimJob::single(w, size, baseline(threads).with_ilp(*ilp)).tagged(ilp.label())
            })
        })
        .collect();
    let outs = rt.run_sims(&jobs)?;
    let mut out = Vec::with_capacity(jobs.len());
    for (jobs, outs) in jobs.chunks(ladder.len()).zip(outs.chunks(ladder.len())) {
        let base = outs[0].stats.time_ns();
        for (job, o) in jobs.iter().zip(outs) {
            out.push(AblationRow {
                workload: job.workload.clone(),
                label: job.tag.clone(),
                speedup: base / o.stats.time_ns(),
                breakdown: breakdown_row(job, o),
            });
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Fig 13 — MRAM bandwidth scaling
// ---------------------------------------------------------------------

/// One line point of Fig 13.
#[derive(Debug, Clone)]
pub struct BwScaleRow {
    /// Workload name.
    pub workload: String,
    /// Design point (`Base` or `Base+DRSF`).
    pub config: String,
    /// MRAM bandwidth multiplier.
    pub scale: f64,
    /// Wall-clock speedup vs the same design point at ×1.
    pub speedup: f64,
}

/// Fig 13: sweeping MRAM-to-WRAM bandwidth ×1–×4 under the baseline and the
/// fully ILP-enhanced DPU.
///
/// # Errors
///
/// Propagates the first simulation fault.
pub fn fig13_mram_scaling(
    rt: &JobRunner,
    size: DatasetSize,
    threads: u32,
    scales: &[f64],
) -> Result<Vec<BwScaleRow>, SimError> {
    let configs = [("Base", IlpFeatures::default()), ("Base+DRSF", IlpFeatures::all())];
    let jobs: Vec<SimJob> = workload_names()
        .iter()
        .flat_map(|w| {
            configs.iter().flat_map(move |(label, ilp)| {
                scales.iter().map(move |&scale| {
                    let cfg = baseline(threads).with_ilp(*ilp).with_mram_bw_scale(scale);
                    SimJob::single(w, size, cfg).tagged(*label)
                })
            })
        })
        .collect();
    let outs = rt.run_sims(&jobs)?;
    // The ×1 point of each (workload, config) group is its baseline.
    let mut out = Vec::with_capacity(jobs.len());
    for (jobs, outs) in jobs.chunks(scales.len()).zip(outs.chunks(scales.len())) {
        let base = outs[0].stats.time_ns();
        for ((job, o), &scale) in jobs.iter().zip(outs).zip(scales) {
            out.push(BwScaleRow {
                workload: job.workload.clone(),
                config: job.tag.clone(),
                scale,
                speedup: base / o.stats.time_ns(),
            });
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// §V-C — MMU overhead
// ---------------------------------------------------------------------

/// One workload of the MMU study.
#[derive(Debug, Clone)]
pub struct MmuRow {
    /// Workload name.
    pub workload: String,
    /// Cycles with the MMU over cycles without, minus one (the paper's
    /// "performance loss": avg 0.8%, max 14.1%).
    pub overhead: f64,
    /// TLB hit rate of the MMU run.
    pub tlb_hit_rate: f64,
}

/// §V-C: slowdown from translating every MRAM access through the paper's
/// 16-entry-TLB MMU.
///
/// # Errors
///
/// Propagates the first simulation fault.
pub fn mmu_overhead(
    rt: &JobRunner,
    size: DatasetSize,
    threads: u32,
) -> Result<Vec<MmuRow>, SimError> {
    let jobs: Vec<SimJob> = workload_names()
        .iter()
        .flat_map(|w| {
            [
                SimJob::single(w, size, baseline(threads)).tagged("base"),
                SimJob::single(w, size, baseline(threads).with_paper_mmu()).tagged("mmu"),
            ]
        })
        .collect();
    let outs = rt.run_sims(&jobs)?;
    Ok(jobs
        .chunks(2)
        .zip(outs.chunks(2))
        .map(|(jobs, pair)| {
            let (base, with) = (&pair[0].stats, &pair[1].stats);
            MmuRow {
                workload: jobs[0].workload.clone(),
                overhead: with.cycles as f64 / base.cycles as f64 - 1.0,
                tlb_hit_rate: with.mmu.map_or(0.0, |m| m.hit_rate()),
            }
        })
        .collect())
}

// ---------------------------------------------------------------------
// Fig 15 / Fig 16 — cache-centric vs scratchpad-centric
// ---------------------------------------------------------------------

/// One bar of Fig 15.
#[derive(Debug, Clone)]
pub struct CacheVsRow {
    /// Workload name.
    pub workload: String,
    /// Tasklet count.
    pub threads: u32,
    /// Cache-centric execution time normalized to scratchpad-centric
    /// (< 1 means caches win).
    pub normalized_time: f64,
}

/// Fig 15: cache-centric vs scratchpad-centric execution time.
///
/// # Errors
///
/// Propagates the first simulation fault.
pub fn fig15_cache_vs_scratchpad(
    rt: &JobRunner,
    size: DatasetSize,
    threads: &[u32],
) -> Result<Vec<CacheVsRow>, SimError> {
    let jobs: Vec<SimJob> = all_workloads()
        .iter()
        .filter(|w| w.supports_cache_mode())
        .flat_map(|w| {
            threads.iter().flat_map(|&t| {
                [
                    SimJob::single(w.name(), size, baseline(t)).tagged("scratchpad"),
                    SimJob::single(w.name(), size, baseline(t).with_paper_caches()).tagged("cache"),
                ]
            })
        })
        .collect();
    let outs = rt.run_sims(&jobs)?;
    Ok(jobs
        .chunks(2)
        .zip(outs.chunks(2))
        .map(|(jobs, pair)| CacheVsRow {
            workload: jobs[0].workload.clone(),
            threads: jobs[0].threads(),
            normalized_time: pair[1].stats.time_ns() / pair[0].stats.time_ns(),
        })
        .collect())
}

/// One bar pair of Fig 16.
#[derive(Debug, Clone)]
pub struct BytesReadRow {
    /// Workload name (the paper shows BS and UNI).
    pub workload: String,
    /// Tasklet count.
    pub threads: u32,
    /// DRAM bytes read, scratchpad-centric.
    pub scratchpad_bytes: u64,
    /// DRAM bytes read, cache-centric.
    pub cache_bytes: u64,
    /// Execution time, scratchpad-centric (ns).
    pub scratchpad_ns: f64,
    /// Execution time, cache-centric (ns).
    pub cache_ns: f64,
}

/// Fig 16: bytes read from DRAM and end-to-end kernel time for BS and UNI
/// under both memory models.
///
/// # Errors
///
/// Propagates the first simulation fault.
pub fn fig16_bytes_read(
    rt: &JobRunner,
    size: DatasetSize,
    threads: &[u32],
) -> Result<Vec<BytesReadRow>, SimError> {
    let jobs: Vec<SimJob> = ["BS", "UNI"]
        .iter()
        .flat_map(|name| {
            threads.iter().flat_map(|&t| {
                [
                    SimJob::single(name, size, baseline(t)).tagged("scratchpad"),
                    SimJob::single(name, size, baseline(t).with_paper_caches()).tagged("cache"),
                ]
            })
        })
        .collect();
    let outs = rt.run_sims(&jobs)?;
    Ok(jobs
        .chunks(2)
        .zip(outs.chunks(2))
        .map(|(jobs, pair)| {
            let (sp, ca) = (&pair[0].stats, &pair[1].stats);
            BytesReadRow {
                workload: jobs[0].workload.clone(),
                threads: jobs[0].threads(),
                scratchpad_bytes: sp.dram.bytes_read,
                cache_bytes: ca.dram.bytes_read,
                scratchpad_ns: sp.time_ns(),
                cache_ns: ca.time_ns(),
            }
        })
        .collect())
}

// ---------------------------------------------------------------------
// §V-C — multi-tenant co-location
// ---------------------------------------------------------------------

/// Results of the §V-C multi-tenancy study: a memory-bound tenant and a
/// compute-bound tenant (the paper's BS+TS pairing) sharing one DPU.
#[derive(Debug, Clone)]
pub struct MultiTenantReport {
    /// Cycles for the memory-bound tenant running alone (8 tasklets).
    pub alone_mem_cycles: u64,
    /// Cycles for the compute-bound tenant running alone (8 tasklets).
    pub alone_compute_cycles: u64,
    /// The memory-bound tenant's completion cycle when co-located.
    pub coloc_mem_finish: u64,
    /// The compute-bound tenant's completion cycle when co-located.
    pub coloc_compute_finish: u64,
    /// Makespan of the co-located run.
    pub coloc_makespan: u64,
    /// Consolidation gain: serialized standalone time over the co-located
    /// makespan (> 1 means sharing the DPU pays off).
    pub consolidation_gain: f64,
    /// The linker/colocation error produced when the tenants' combined
    /// WRAM footprint exceeds the scratchpad — the paper's transparency
    /// failure, verbatim.
    pub scratchpad_overflow_error: String,
    /// Whether the same oversized pairing co-locates under the
    /// cache-centric memory model.
    pub cache_mode_colocates: bool,
}

/// §V-C "transparency": quantifies multi-tenant co-location of a
/// memory-bound and a compute-bound kernel, and reproduces the scratchpad
/// capacity failure that makes transparent co-location impossible in the
/// baseline programming model.
///
/// # Errors
///
/// Propagates the first simulation fault.
pub fn multi_tenant() -> Result<MultiTenantReport, SimError> {
    use pim_asm::KernelBuilder;
    use pim_dpu::{colocate, Dpu, Tenant};
    use pim_isa::Cond;

    // A BS-like tenant: pointer-chasing probe DMAs, memory-bound.
    let mem_tenant = |base: u32, bit: u32, big: bool| {
        let mut k = KernelBuilder::with_partition(base, bit);
        let buf_bytes = if big { 40 * 1024 } else { 2048 };
        let buf = k.alloc_wram(buf_bytes, 8);
        let [w, m, i, t] = k.regs(["w", "m", "i", "t"]);
        k.tid(t);
        k.mul(w, t, 256);
        k.add(w, w, buf as i32);
        k.mul(m, t, 4096);
        k.movi(i, 128);
        let top = k.label_here("loop");
        k.ldma(w, m, 256);
        k.add(m, m, 1024);
        k.sub(i, i, 1);
        k.branch(Cond::Ne, i, 0, &top);
        k.stop();
        k.build_with(&pim_asm::LinkOptions {
            allow_wram_overflow: true,
            ..pim_asm::LinkOptions::default()
        })
        .expect("mem tenant builds")
    };
    // A TS-like tenant: a long MAC loop, compute-bound.
    let compute_tenant = |base: u32, bit: u32, big: bool| {
        let mut k = KernelBuilder::with_partition(base, bit);
        let buf_bytes = if big { 40 * 1024 } else { 2048 };
        let _buf = k.alloc_wram(buf_bytes, 8);
        let [a, b, i] = k.regs(["a", "b", "i"]);
        k.movi(a, 1);
        k.movi(b, 3);
        k.movi(i, 12_000);
        let top = k.label_here("loop");
        k.mul(a, a, b);
        k.add(a, a, 7);
        k.sub(i, i, 1);
        k.branch(Cond::Ne, i, 0, &top);
        k.stop();
        k.build_with(&pim_asm::LinkOptions {
            allow_wram_overflow: true,
            ..pim_asm::LinkOptions::default()
        })
        .expect("compute tenant builds")
    };

    let run_alone = |p: &pim_asm::DpuProgram, n: u32| -> Result<u64, SimError> {
        let mut dpu = Dpu::new(baseline(n));
        dpu.load_program(p)?;
        Ok(dpu.launch()?.cycles)
    };
    let mem = mem_tenant(0, 0, false);
    let compute = compute_tenant(8192, 8, false);
    let alone_mem = run_alone(&mem, 8)?;
    let alone_compute = run_alone(&compute, 8)?;

    let merged = colocate(
        &[Tenant { program: &mem, n_tasklets: 8 }, Tenant { program: &compute, n_tasklets: 8 }],
        &pim_isa::MemLayout::default(),
        false,
    )
    .expect("small tenants co-locate");
    let mut dpu = Dpu::new(baseline(16));
    dpu.load_colocated(&merged)?;
    let stats = dpu.launch()?;
    let finish = |i: usize| {
        merged.tasklets_of[i].clone().map(|t| stats.tasklet_stop_cycle[t]).max().unwrap_or(0)
    };
    let (f_mem, f_compute) = (finish(0), finish(1));
    let makespan = stats.cycles;

    // The paper's negative result: big working sets cannot share 64 KB.
    let big_mem = mem_tenant(0, 0, true);
    let big_compute = compute_tenant(40 * 1024, 8, true);
    let overflow = colocate(
        &[
            Tenant { program: &big_mem, n_tasklets: 8 },
            Tenant { program: &big_compute, n_tasklets: 8 },
        ],
        &pim_isa::MemLayout::default(),
        false,
    )
    .expect_err("combined 80 KB cannot fit the 64 KB scratchpad");
    let cache_ok = colocate(
        &[
            Tenant { program: &big_mem, n_tasklets: 8 },
            Tenant { program: &big_compute, n_tasklets: 8 },
        ],
        &pim_isa::MemLayout::default(),
        true,
    )
    .is_ok();

    Ok(MultiTenantReport {
        alone_mem_cycles: alone_mem,
        alone_compute_cycles: alone_compute,
        coloc_mem_finish: f_mem,
        coloc_compute_finish: f_compute,
        coloc_makespan: makespan,
        consolidation_gain: (alone_mem + alone_compute) as f64 / makespan as f64,
        scratchpad_overflow_error: overflow.to_string(),
        cache_mode_colocates: cache_ok,
    })
}

// ---------------------------------------------------------------------
// Rank scale — batched SoA execution at paper population sizes
// ---------------------------------------------------------------------

/// DPUs per rank of the paper's hardware baseline (20 ranks = 2,560 DPUs).
pub const DPUS_PER_RANK: u32 = 128;

/// Default batch size of the rank sweep's SoA batch executor.
pub const DEFAULT_RANK_BATCH: u32 = 64;

/// MRAM bytes given to each rank-sweep DPU — enough for the kernel's input
/// window (and the 256 KB IRAM-backing convention near the top of the
/// bank), small enough that thousands of DPUs fit in host memory. The
/// paper-faithful 64 MB banks would need 160 GB at 2,560 DPUs; nothing in
/// the sweep's kernel touches addresses above the window, so the shrunken
/// bank is timing-identical.
const RANK_MRAM_BYTES: u32 = 256 * 1024;

/// Words each DPU sums out of its MRAM window.
const RANK_WINDOW_WORDS: u32 = 1024;

const RANK_TASKLETS: u32 = 8;

/// One population point of the rank-scale sweep.
///
/// Every field is a *simulated* quantity (no wall-clock), so the rows —
/// and the JSON document built from them — are byte-identical across
/// worker counts and batch sizes.
#[derive(Debug, Clone)]
pub struct RankScaleRow {
    /// Ranks simulated at this point.
    pub ranks: u32,
    /// DPUs simulated (`ranks * DPUS_PER_RANK`).
    pub dpus: u32,
    /// Instructions summed across the population.
    pub instructions: u64,
    /// DPU cycles summed across the population.
    pub cycles: u64,
    /// Kernel time of the launch (slowest DPU anywhere), ns.
    pub kernel_ns: f64,
    /// Wrapping sum of every DPU's kernel result (host-validated).
    pub checksum: u32,
}

/// The rank sweep's kernel: each of 8 tasklets stages its share of the
/// DPU's MRAM window through WRAM in 256-byte DMA blocks, sums the words,
/// and folds its partial into the shared `sum` under an atomic bit.
fn rank_kernel() -> pim_asm::DpuProgram {
    use pim_isa::Cond;
    let mut k = pim_asm::KernelBuilder::new();
    let buf = k.global_zeroed("buf", 256 * RANK_TASKLETS);
    let sum = k.global_zeroed("sum", 4);
    let [t, m, end, w, p, i, v, acc] = k.regs(["t", "m", "end", "w", "p", "i", "v", "acc"]);
    let share = (RANK_WINDOW_WORDS * 4 / RANK_TASKLETS) as i32; // bytes, multiple of 256
    k.tid(t);
    k.movi(m, share);
    k.mul(m, m, t);
    k.add(end, m, share);
    k.movi(w, 256);
    k.mul(w, w, t);
    k.add(w, w, buf as i32);
    k.movi(acc, 0);
    let outer = k.label_here("outer");
    k.ldma(w, m, 256);
    k.mov(p, w);
    k.movi(i, 64);
    let inner = k.label_here("inner");
    k.lw(v, p, 0);
    k.add(acc, acc, v);
    k.add(p, p, 4);
    k.sub(i, i, 1);
    k.branch(Cond::Ne, i, 0, &inner);
    k.add(m, m, 256);
    k.branch(Cond::Ltu, m, end, &outer);
    k.acquire(0);
    k.movi(p, sum as i32);
    k.lw(v, p, 0);
    k.add(v, v, acc);
    k.sw(v, p, 0);
    k.release(0);
    k.stop();
    k.build().expect("rank kernel assembles")
}

/// The rank sweep's DPU configuration: the paper baseline at 8 tasklets
/// with the shrunken MRAM bank; `batch_dpus > 0` routes launches through
/// the SoA batch executor, 0 keeps the per-DPU path (the throughput
/// baseline `pim-bench` compares against).
#[must_use]
pub fn rank_config(batch_dpus: u32) -> DpuConfig {
    let mut cfg = DpuConfig::paper_baseline(RANK_TASKLETS);
    cfg.layout.mram_bytes = RANK_MRAM_BYTES;
    if batch_dpus > 0 {
        cfg = cfg.with_batched(batch_dpus);
    }
    cfg
}

/// Deterministic per-DPU input window: DPU `g`'s words depend only on `g`,
/// so any partition of the population stages identical data.
fn rank_input(g: u32) -> Vec<i32> {
    (0..RANK_WINDOW_WORDS)
        .map(|i| {
            (g.wrapping_mul(2_654_435_761).wrapping_add(i.wrapping_mul(40_503)) ^ 0x9e37_79b9)
                as i32
        })
        .collect()
}

/// Half-open range of global DPU indices forming one batch shard.
#[derive(Debug, Clone, Copy)]
struct RankShard {
    lo: u32,
    hi: u32,
}

/// Builds a fully staged rank-sweep population: `n_dpus` DPUs under
/// [`rank_config`]`(batch_dpus)` with the kernel loaded and DPU `base + i`'s
/// deterministic input window written to MRAM. Used by the sweep's shards
/// and by the `pim-bench` `rank` synthetic, which stages once and times
/// repeated launches.
///
/// # Errors
///
/// Propagates the program-load fault, if any.
pub fn rank_population(
    base: u32,
    n_dpus: u32,
    batch_dpus: u32,
) -> Result<pim_host::PimSystem, SimError> {
    let program = rank_kernel();
    let mut sys = pim_host::PimSystem::new(
        n_dpus,
        rank_config(batch_dpus),
        pim_host::TransferConfig::paper(),
    );
    sys.load(&program)?;
    for i in 0..n_dpus {
        let bytes: Vec<u8> = rank_input(base + i).iter().flat_map(|w| w.to_le_bytes()).collect();
        sys.dpu_mut(i).write_mram(0, &bytes);
    }
    Ok(sys)
}

/// Simulates one shard end-to-end and returns
/// `(instructions, cycles, kernel_ns, checksum)`, validating every DPU's
/// kernel result against the host reference.
fn run_rank_shard(shard: RankShard, batch_dpus: u32) -> Result<(u64, u64, f64, u32), SimError> {
    let mut sys = rank_population(shard.lo, shard.hi - shard.lo, batch_dpus)?;
    let report = sys.launch_all()?;
    let mut checksum: u32 = 0;
    for (j, bytes) in sys.pull_from_symbol("sum").iter().enumerate() {
        let got = i32::from_le_bytes(bytes.as_slice().try_into().expect("4-byte sum"));
        let g = shard.lo + j as u32;
        let want = rank_input(g).iter().fold(0i32, |a, w| a.wrapping_add(*w));
        assert_eq!(got, want, "rank-sweep DPU {g} diverged from the host reference");
        checksum = checksum.wrapping_add(got as u32);
    }
    let cycles = report.per_dpu.iter().map(|s| s.cycles).sum();
    Ok((report.total_instructions(), cycles, report.kernel_ns, checksum))
}

/// Rank-scale sweep with the default batch size ([`DEFAULT_RANK_BATCH`]).
///
/// # Errors
///
/// Propagates the first simulation fault.
pub fn exp_rank_scale(rt: &JobRunner, size: DatasetSize) -> Result<Vec<RankScaleRow>, SimError> {
    exp_rank_scale_with(rt, size, DEFAULT_RANK_BATCH)
}

/// Rank-scale sweep: simulates whole-rank DPU populations (up to the
/// paper's 20 ranks = 2,560 DPUs at `MultiDpu`) through the SoA batch
/// executor, sharding **batches — not individual DPUs — over the job
/// engine**, so each worker steps a contiguous block of DPUs out of one
/// contiguous state block. `batch_dpus == 0` runs the per-DPU path with
/// the same shard shape.
///
/// Rows are byte-identical across worker counts and batch sizes (pinned by
/// `tests/determinism.rs`): batch boundaries are timing-invisible, and
/// every reported quantity is simulated, aggregated with order-independent
/// folds.
///
/// # Errors
///
/// Propagates the first simulation fault, in shard order.
pub fn exp_rank_scale_with(
    rt: &JobRunner,
    size: DatasetSize,
    batch_dpus: u32,
) -> Result<Vec<RankScaleRow>, SimError> {
    let rank_counts: &[u32] = match size {
        DatasetSize::Tiny => &[1, 2],
        DatasetSize::SingleDpu => &[1, 2, 4, 8],
        DatasetSize::MultiDpu => &[1, 4, 8, 20],
    };
    let shard_len = if batch_dpus > 0 { batch_dpus } else { DEFAULT_RANK_BATCH };
    let mut rows = Vec::with_capacity(rank_counts.len());
    for &ranks in rank_counts {
        let dpus = ranks * DPUS_PER_RANK;
        let shards: Vec<RankShard> = (0..dpus)
            .step_by(shard_len as usize)
            .map(|lo| RankShard { lo, hi: (lo + shard_len).min(dpus) })
            .collect();
        let outs = rt.map(&shards, |_, &s| run_rank_shard(s, batch_dpus));
        let mut row =
            RankScaleRow { ranks, dpus, instructions: 0, cycles: 0, kernel_ns: 0.0, checksum: 0 };
        for out in outs {
            let (instructions, cycles, kernel_ns, checksum) = out?;
            row.instructions += instructions;
            row.cycles += cycles;
            row.kernel_ns = row.kernel_ns.max(kernel_ns);
            row.checksum = row.checksum.wrapping_add(checksum);
        }
        rows.push(row);
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multi_tenant_study_shows_consolidation_and_the_capacity_failure() {
        let r = multi_tenant().unwrap();
        assert!(
            r.consolidation_gain > 1.0,
            "complementary tenants must consolidate, got {:.2}",
            r.consolidation_gain
        );
        assert!(r.scratchpad_overflow_error.contains("scratchpad"));
        assert!(r.cache_mode_colocates);
        assert!(r.coloc_makespan >= r.coloc_mem_finish.max(r.coloc_compute_finish));
    }

    #[test]
    fn ilp_ladder_is_additive() {
        let ladder = ilp_ladder();
        assert_eq!(ladder.len(), 5);
        assert_eq!(ladder[0].label(), "Base");
        assert_eq!(ladder[1].label(), "Base+D");
        assert_eq!(ladder[2].label(), "Base+DR");
        assert_eq!(ladder[3].label(), "Base+DRS");
        assert_eq!(ladder[4].label(), "Base+DRSF");
    }

    #[test]
    fn fig11_points_cover_the_paper() {
        let rows = fig11_simt(&JobRunner::default(), DatasetSize::Tiny, 16).unwrap();
        let labels: Vec<&str> = rows.iter().map(|r| r.label.as_str()).collect();
        assert_eq!(labels, ["Base", "SIMT", "SIMT+AC", "SIMT+AC+4x", "SIMT+AC+16x"]);
        assert!((rows[0].speedup - 1.0).abs() < 1e-9);
        // SIMT designs must beat the scalar baseline on GEMV.
        assert!(rows[2].speedup > 1.0, "SIMT+AC should beat Base");
        // Bandwidth scaling must not hurt.
        assert!(rows[3].speedup >= rows[2].speedup * 0.95);
        assert!(rows[4].speedup >= rows[3].speedup * 0.95);
    }

    #[test]
    fn rank_scale_rows_are_batch_size_invariant() {
        let rt = JobRunner::new(Some(2));
        let batched = exp_rank_scale_with(&rt, DatasetSize::Tiny, 32).unwrap();
        let per_dpu = exp_rank_scale_with(&rt, DatasetSize::Tiny, 0).unwrap();
        let odd = exp_rank_scale_with(&rt, DatasetSize::Tiny, 7).unwrap();
        assert_eq!(batched.len(), 2);
        assert_eq!(batched[0].dpus, DPUS_PER_RANK);
        assert_eq!(batched[1].dpus, 2 * DPUS_PER_RANK);
        for (a, rest) in batched.iter().zip(per_dpu.iter().zip(&odd)) {
            for b in [rest.0, rest.1] {
                assert_eq!(format!("{a:?}"), format!("{b:?}"));
            }
        }
        assert!(batched[0].instructions > 0);
    }

    #[test]
    fn fig16_shows_bs_overfetch_and_uni_favouring_scratchpad() {
        let rows = fig16_bytes_read(&JobRunner::default(), DatasetSize::Tiny, &[16]).unwrap();
        let bs = rows.iter().find(|r| r.workload == "BS").unwrap();
        assert!(
            bs.scratchpad_bytes > bs.cache_bytes,
            "BS must overfetch under scratchpads ({} vs {})",
            bs.scratchpad_bytes,
            bs.cache_bytes
        );
        // UNI's "scratchpad wins" effect only appears when the working set
        // exceeds the 64 KB D-cache (the paper's 2 MB dataset); the Tiny
        // dataset fits in cache, so here we only check both modes ran.
        let uni = rows.iter().find(|r| r.workload == "UNI").unwrap();
        assert!(uni.scratchpad_bytes > 0 && uni.cache_bytes > 0);
    }
}
