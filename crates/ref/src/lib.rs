//! The functional oracle: a timing-free fetch-execute interpreter for the
//! PIM ISA, written independently of the simulator's pipeline.
//!
//! Tasklets execute round-robin, one instruction per ready tasklet per
//! round; DMA is an instantaneous functional copy; a failed `acquire`
//! leaves the PC in place (busy-wait). For data-race-free programs — and
//! for programs whose shared updates are commutative and lock-protected —
//! the final WRAM/MRAM state is schedule-independent, so the pipelined
//! simulator (any timing configuration) must agree with this interpreter
//! byte for byte. Differential tests exploit exactly that.

use pim_asm::DpuProgram;
use pim_isa::{Instruction, MemLayout, Operand, Reg, Width};

/// The reference interpreter for one DPU.
///
/// Architectural state is public so tests can stage inputs and inspect
/// results directly.
#[derive(Debug, Clone)]
pub struct RefInterpreter {
    instrs: Vec<Instruction>,
    /// Scratchpad contents.
    pub wram: Vec<u8>,
    /// MRAM bank contents.
    pub mram: Vec<u8>,
    /// Atomic bits.
    pub atomic: Vec<bool>,
    /// Per-tasklet register files.
    pub regs: Vec<[u32; 24]>,
    /// Per-tasklet program counters.
    pub pc: Vec<u32>,
    /// Per-tasklet tasklet-id rebase (multi-tenant co-location).
    pub tid_base: Vec<u32>,
    done: Vec<bool>,
    layout: MemLayout,
}

/// What one interpreted step did (internal scheduling signal).
enum Step {
    /// The tasklet made progress.
    Ran,
    /// The tasklet busy-waits on a held atomic bit.
    Retried,
    /// The tasklet executed `stop`.
    Stopped,
}

impl RefInterpreter {
    /// Builds an interpreter with the default memory layout, loading the
    /// program's WRAM image at its `wram_base`.
    #[must_use]
    pub fn new(program: &DpuProgram, n_tasklets: u32) -> Self {
        Self::with_layout(program, MemLayout::default(), n_tasklets)
    }

    /// Builds an interpreter with an explicit memory layout.
    ///
    /// # Panics
    ///
    /// Panics if the program's WRAM image does not fit the layout.
    #[must_use]
    pub fn with_layout(program: &DpuProgram, layout: MemLayout, n_tasklets: u32) -> Self {
        let mut wram = vec![0u8; layout.wram_bytes as usize];
        let base = program.wram_base as usize;
        wram[base..base + program.wram_init.len()].copy_from_slice(&program.wram_init);
        RefInterpreter {
            instrs: program.instrs.clone(),
            wram,
            mram: vec![0u8; layout.mram_bytes as usize],
            atomic: vec![false; layout.atomic_bits as usize],
            regs: vec![[0; 24]; n_tasklets as usize],
            pc: vec![0; n_tasklets as usize],
            tid_base: vec![0; n_tasklets as usize],
            done: vec![false; n_tasklets as usize],
            layout,
        }
    }

    /// Sets tasklet `t`'s entry point and tasklet-id rebase (co-location).
    pub fn set_entry(&mut self, t: u32, pc: u32, tid_base: u32) {
        self.pc[t as usize] = pc;
        self.tid_base[t as usize] = tid_base;
    }

    /// Re-arms the interpreter for another launch of the same program,
    /// mirroring `Dpu::launch`'s relaunch semantics: register files, PCs,
    /// tasklet-id rebases, and the atomic region are reset; WRAM and MRAM
    /// contents persist from the previous run.
    pub fn relaunch(&mut self) {
        for rf in &mut self.regs {
            *rf = [0; 24];
        }
        self.pc.fill(0);
        self.tid_base.fill(0);
        self.done.fill(false);
        self.atomic.fill(false);
    }

    /// Copies bytes into WRAM at `addr`.
    pub fn write_wram(&mut self, addr: u32, bytes: &[u8]) {
        let a = addr as usize;
        self.wram[a..a + bytes.len()].copy_from_slice(bytes);
    }

    /// Copies bytes into MRAM at `addr`.
    pub fn write_mram(&mut self, addr: u32, bytes: &[u8]) {
        let a = addr as usize;
        self.mram[a..a + bytes.len()].copy_from_slice(bytes);
    }

    /// Reads `len` bytes of WRAM at `addr`.
    #[must_use]
    pub fn read_wram(&self, addr: u32, len: u32) -> Vec<u8> {
        self.wram[addr as usize..(addr + len) as usize].to_vec()
    }

    /// Reads `len` bytes of MRAM at `addr`.
    #[must_use]
    pub fn read_mram(&self, addr: u32, len: u32) -> Vec<u8> {
        self.mram[addr as usize..(addr + len) as usize].to_vec()
    }

    fn operand(&self, t: usize, o: Operand) -> u32 {
        match o {
            Operand::Reg(r) => self.regs[t][r.index() as usize],
            Operand::Imm(i) => i as u32,
        }
    }

    fn reg(&self, t: usize, r: Reg) -> u32 {
        self.regs[t][r.index() as usize]
    }

    /// Runs every tasklet to `stop`, round-robin.
    ///
    /// Returns the number of instructions interpreted.
    ///
    /// # Errors
    ///
    /// Reports out-of-bounds accesses, bad DMA parameters, runaway
    /// execution past `max_steps`, and all-tasklets-busy-wait deadlock.
    pub fn run(&mut self, max_steps: u64) -> Result<u64, String> {
        let order: Vec<u32> = (0..self.done.len() as u32).collect();
        self.run_in_order(max_steps, &order)
    }

    /// Runs every tasklet to `stop`, round-robin over a caller-chosen slot
    /// `order` (a permutation of `0..n_tasklets`).
    ///
    /// Schedule-independent programs — the only kind the differential
    /// fuzzer generates — must reach the same final memory image under any
    /// permutation; `pim-fuzz` uses this as its schedule-invariance
    /// metamorphic check.
    ///
    /// Returns the number of instructions interpreted.
    ///
    /// # Errors
    ///
    /// Reports everything [`RefInterpreter::run`] does; also rejects an
    /// `order` that is not a permutation of all tasklet slots.
    pub fn run_in_order(&mut self, max_steps: u64, order: &[u32]) -> Result<u64, String> {
        let n = self.done.len();
        let mut seen = vec![false; n];
        for &t in order {
            if (t as usize) < n && !seen[t as usize] {
                seen[t as usize] = true;
            } else {
                return Err(format!("order {order:?} is not a permutation of 0..{n}"));
            }
        }
        if order.len() != n {
            return Err(format!("order {order:?} is not a permutation of 0..{n}"));
        }
        let mut steps = 0u64;
        loop {
            let mut live = 0u32;
            let mut retried = 0u32;
            for &t in order {
                let t = t as usize;
                if self.done[t] {
                    continue;
                }
                live += 1;
                steps += 1;
                if steps > max_steps {
                    return Err(format!("oracle exceeded {max_steps} steps (runaway program?)"));
                }
                match self.step(t)? {
                    Step::Ran => {}
                    Step::Retried => retried += 1,
                    Step::Stopped => self.done[t] = true,
                }
            }
            if live == 0 {
                return Ok(steps);
            }
            if retried == live {
                return Err(format!(
                    "oracle deadlock: all {live} live tasklets busy-wait on held atomic bits"
                ));
            }
        }
    }

    #[allow(clippy::too_many_lines)]
    fn step(&mut self, t: usize) -> Result<Step, String> {
        let pc = self.pc[t];
        let Some(&instr) = self.instrs.get(pc as usize) else {
            return Err(format!("tasklet {t}: pc {pc} outside the program"));
        };
        let mut next = pc + 1;
        match instr {
            Instruction::Nop => {}
            Instruction::Stop => return Ok(Step::Stopped),
            Instruction::Alu { op, rd, ra, rb } => {
                let v = op.eval(self.reg(t, ra), self.operand(t, rb));
                self.regs[t][rd.index() as usize] = v;
            }
            Instruction::Movi { rd, imm } => self.regs[t][rd.index() as usize] = imm as u32,
            Instruction::Tid { rd } => {
                self.regs[t][rd.index() as usize] = t as u32 - self.tid_base[t];
            }
            Instruction::Load { width, signed, rd, base, offset } => {
                let addr = self.reg(t, base).wrapping_add(offset as u32);
                self.check_ls(t, pc, addr, width)?;
                let a = addr as usize;
                let v = match (width, signed) {
                    (Width::Byte, false) => u32::from(self.wram[a]),
                    (Width::Byte, true) => self.wram[a] as i8 as i32 as u32,
                    (Width::Half, false) => {
                        u32::from(u16::from_le_bytes([self.wram[a], self.wram[a + 1]]))
                    }
                    (Width::Half, true) => {
                        u16::from_le_bytes([self.wram[a], self.wram[a + 1]]) as i16 as i32 as u32
                    }
                    (Width::Word, _) => u32::from_le_bytes([
                        self.wram[a],
                        self.wram[a + 1],
                        self.wram[a + 2],
                        self.wram[a + 3],
                    ]),
                };
                self.regs[t][rd.index() as usize] = v;
            }
            Instruction::Store { width, rs, base, offset } => {
                let addr = self.reg(t, base).wrapping_add(offset as u32);
                self.check_ls(t, pc, addr, width)?;
                let v = self.reg(t, rs);
                let a = addr as usize;
                match width {
                    Width::Byte => self.wram[a] = v as u8,
                    Width::Half => self.wram[a..a + 2].copy_from_slice(&(v as u16).to_le_bytes()),
                    Width::Word => self.wram[a..a + 4].copy_from_slice(&v.to_le_bytes()),
                }
            }
            Instruction::Ldma { wram, mram, len } | Instruction::Sdma { wram, mram, len } => {
                let write = matches!(instr, Instruction::Sdma { .. });
                let w = self.reg(t, wram);
                let m = self.reg(t, mram);
                let l = self.operand(t, len) as i32;
                if l <= 0 {
                    return Err(format!("tasklet {t} pc {pc}: bad DMA length {l}"));
                }
                let l = l as u32;
                if !w.is_multiple_of(4) || !m.is_multiple_of(4) || !l.is_multiple_of(4) {
                    return Err(format!("tasklet {t} pc {pc}: misaligned DMA w={w} m={m} l={l}"));
                }
                if u64::from(w) + u64::from(l) > self.wram.len() as u64 {
                    return Err(format!("tasklet {t} pc {pc}: DMA WRAM range {w}+{l} OOB"));
                }
                if u64::from(m) + u64::from(l) > self.mram.len() as u64 {
                    return Err(format!("tasklet {t} pc {pc}: DMA MRAM range {m}+{l} OOB"));
                }
                let (wi, mi, li) = (w as usize, m as usize, l as usize);
                if write {
                    self.mram[mi..mi + li].copy_from_slice(&self.wram[wi..wi + li]);
                } else {
                    self.wram[wi..wi + li].copy_from_slice(&self.mram[mi..mi + li]);
                }
            }
            Instruction::Branch { cond, ra, rb, target } => {
                if cond.eval(self.reg(t, ra), self.operand(t, rb)) {
                    next = target;
                }
            }
            Instruction::Jump { target } => next = target,
            Instruction::Jal { rd, target } => {
                self.regs[t][rd.index() as usize] = pc + 1;
                next = target;
            }
            Instruction::Jr { ra } => next = self.reg(t, ra),
            Instruction::Acquire { bit } => {
                let b = self.operand(t, bit) as usize;
                let Some(slot) = self.atomic.get_mut(b) else {
                    return Err(format!("tasklet {t} pc {pc}: atomic bit {b} out of range"));
                };
                if *slot {
                    return Ok(Step::Retried);
                }
                *slot = true;
            }
            Instruction::Release { bit } => {
                let b = self.operand(t, bit) as usize;
                let Some(slot) = self.atomic.get_mut(b) else {
                    return Err(format!("tasklet {t} pc {pc}: atomic bit {b} out of range"));
                };
                *slot = false;
            }
        }
        self.pc[t] = next;
        Ok(Step::Ran)
    }

    fn check_ls(&self, t: usize, pc: u32, addr: u32, width: Width) -> Result<(), String> {
        let bytes = width.bytes();
        if !addr.is_multiple_of(bytes) {
            return Err(format!("tasklet {t} pc {pc}: misaligned {bytes}-byte access at {addr}"));
        }
        if u64::from(addr) + u64::from(bytes) > self.wram.len() as u64 {
            return Err(format!("tasklet {t} pc {pc}: WRAM access at {addr} out of bounds"));
        }
        let _ = self.layout; // bounds come from the allocated vectors
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_asm::{Barrier, KernelBuilder};
    use pim_isa::{AluOp, Cond};

    #[test]
    fn runs_a_single_tasklet_loop() {
        let mut k = KernelBuilder::new();
        let data = k.global_zeroed("data", 64);
        let [i, p, v] = k.regs(["i", "p", "v"]);
        k.movi(i, 10);
        k.movi(v, 0);
        let top = k.label_here("top");
        k.add(v, v, i);
        k.sub(i, i, 1);
        k.branch(Cond::Ne, i, 0, &top);
        k.movi(p, data as i32);
        k.sw(v, p, 0);
        k.stop();
        let program = k.build().unwrap();

        let mut interp = RefInterpreter::new(&program, 1);
        interp.run(10_000).unwrap();
        let out = interp.read_wram(data, 4);
        assert_eq!(i32::from_le_bytes(out.try_into().unwrap()), 55);
    }

    #[test]
    fn tasklets_interleave_and_locks_serialize() {
        // Each of 4 tasklets adds its (tid+1) to a shared counter 5 times,
        // under a lock. Final value is schedule-independent.
        let n = 4u32;
        let mut k = KernelBuilder::new();
        let cnt = k.global_zeroed("cnt", 4);
        let _ = Barrier::alloc(&mut k, n); // reserve bit 0 layout parity
        let [t, i, p, v] = k.regs(["t", "i", "p", "v"]);
        k.tid(t);
        k.add(t, t, 1);
        k.movi(i, 5);
        let top = k.label_here("top");
        k.acquire(200);
        k.movi(p, cnt as i32);
        k.lw(v, p, 0);
        k.add(v, v, t);
        k.sw(v, p, 0);
        k.release(200);
        k.sub(i, i, 1);
        k.branch(Cond::Ne, i, 0, &top);
        k.stop();
        let program = k.build().unwrap();

        let mut interp = RefInterpreter::new(&program, n);
        interp.run(100_000).unwrap();
        let out = interp.read_wram(cnt, 4);
        assert_eq!(i32::from_le_bytes(out.try_into().unwrap()), 5 * (1 + 2 + 3 + 4));
    }

    #[test]
    fn dma_round_trips_through_mram() {
        let mut k = KernelBuilder::new();
        let buf = k.global_zeroed("buf", 64);
        let [w, m, v] = k.regs(["w", "m", "v"]);
        k.movi(v, 0x5a5a_5a5a_u32 as i32);
        k.movi(w, buf as i32);
        k.sw(v, w, 0);
        k.movi(m, 4096);
        k.sdma(w, m, 64);
        k.alu(AluOp::Add, w, w, 0); // keep w
        k.ldma(w, m, 64);
        k.stop();
        let program = k.build().unwrap();
        let mut interp = RefInterpreter::new(&program, 1);
        interp.run(1000).unwrap();
        assert_eq!(&interp.read_mram(4096, 4), &0x5a5a_5a5a_u32.to_le_bytes());
    }

    #[test]
    fn deadlock_is_reported() {
        let mut k = KernelBuilder::new();
        k.acquire(7);
        k.acquire(7); // second acquire of a held bit: busy-waits forever
        k.stop();
        let program = k.build().unwrap();
        let mut interp = RefInterpreter::new(&program, 1);
        let err = interp.run(1000).unwrap_err();
        assert!(err.contains("deadlock"), "{err}");
    }

    #[test]
    fn runaway_is_reported() {
        let mut k = KernelBuilder::new();
        let top = k.label_here("spin");
        k.jump(&top);
        let program = k.build().unwrap();
        let mut interp = RefInterpreter::new(&program, 1);
        let err = interp.run(100).unwrap_err();
        assert!(err.contains("steps"), "{err}");
    }
}
