//! The paper's Table II dataset configurations.
//!
//! Each workload interprets [`crate::DatasetSize`] through the constants
//! here; this module is the single source of truth for the sizes, so the
//! benchmark harness and documentation agree with the paper's table.

use crate::DatasetSize;

pub mod bsr;

/// Elements for the streaming workloads, per Table II.
#[must_use]
pub fn elements(size: DatasetSize, single: usize, multi: usize) -> usize {
    match size {
        DatasetSize::Tiny => 2048,
        DatasetSize::SingleDpu => single,
        DatasetSize::MultiDpu => multi,
    }
}

/// VA: 1M / 4M elements.
#[must_use]
pub fn va(size: DatasetSize) -> usize {
    elements(size, 1 << 20, 4 << 20)
}

/// RED, SEL, UNI: 512K / 2M elements.
#[must_use]
pub fn red_sel_uni(size: DatasetSize) -> usize {
    elements(size, 512 << 10, 2 << 20)
}

/// SCAN-RSS / SCAN-SSA: 256K / 1M elements.
#[must_use]
pub fn scan(size: DatasetSize) -> usize {
    elements(size, 256 << 10, 1 << 20)
}

/// HST-S / HST-L: (elements, bins) = 128K/512K elements, 256 bins.
#[must_use]
pub fn hst(size: DatasetSize) -> (usize, usize) {
    (elements(size, 128 << 10, 512 << 10), 256)
}

/// TRNS: total elements 128K / 256K, as a (rows, cols) matrix.
#[must_use]
pub fn trns(size: DatasetSize) -> (usize, usize) {
    match size {
        DatasetSize::Tiny => (64, 32),
        DatasetSize::SingleDpu => (512, 256), // 128K elements
        DatasetSize::MultiDpu => (1024, 256), // 256K elements
    }
}

/// BS: (sorted elements, queries) = 32K/4K and 128K/16K.
#[must_use]
pub fn bs(size: DatasetSize) -> (usize, usize) {
    match size {
        DatasetSize::Tiny => (1024, 64),
        DatasetSize::SingleDpu => (32 << 10, 4 << 10),
        DatasetSize::MultiDpu => (128 << 10, 16 << 10),
    }
}

/// GEMV: (rows, cols) = 2K×64 and 8K×64.
#[must_use]
pub fn gemv(size: DatasetSize) -> (usize, usize) {
    match size {
        DatasetSize::Tiny => (128, 64),
        DatasetSize::SingleDpu => (2048, 64),
        DatasetSize::MultiDpu => (8192, 64),
    }
}

/// MLP: (layers, neurons) = 3×256 and 3×1K.
#[must_use]
pub fn mlp(size: DatasetSize) -> (usize, usize) {
    match size {
        DatasetSize::Tiny => (3, 64),
        DatasetSize::SingleDpu => (3, 256),
        DatasetSize::MultiDpu => (3, 1024),
    }
}

/// TS: (series length, query length) = 2K/64 and 64K/64.
#[must_use]
pub fn ts(size: DatasetSize) -> (usize, usize) {
    match size {
        DatasetSize::Tiny => (512, 64),
        DatasetSize::SingleDpu => (2048, 64),
        DatasetSize::MultiDpu => (64 << 10, 64),
    }
}

/// NW: sequence length 256 / 512.
#[must_use]
pub fn nw(size: DatasetSize) -> usize {
    match size {
        DatasetSize::Tiny => 64,
        DatasetSize::SingleDpu => 256,
        DatasetSize::MultiDpu => 512,
    }
}

/// BFS: (vertices, edges) = 2K/15K and 16K/120K.
#[must_use]
pub fn bfs(size: DatasetSize) -> (usize, usize) {
    match size {
        DatasetSize::Tiny => (256, 1024),
        DatasetSize::SingleDpu => (2 << 10, 15_000),
        DatasetSize::MultiDpu => (16 << 10, 120_000),
    }
}

/// SpMV: (rows, cols, non-zeros) = 12K²/80519 and 14K²/316740.
#[must_use]
pub fn spmv(size: DatasetSize) -> (usize, usize, usize) {
    match size {
        DatasetSize::Tiny => (512, 512, 2048),
        DatasetSize::SingleDpu => (12 << 10, 12 << 10, 80_519),
        DatasetSize::MultiDpu => (14 << 10, 14 << 10, 316_740),
    }
}

/// SpMV-BSR: (block rows, block cols, block edge, stored blocks).
///
/// The matrix is `block_rows*block ×  block_cols*block` with `nnzb` stored
/// `block×block` dense blocks — the BSR extension family is not in the
/// paper's Table II, so sizes are chosen to match the dense SpMV's
/// footprint at each tier.
#[must_use]
pub fn spmv_bsr(size: DatasetSize) -> (usize, usize, usize, usize) {
    match size {
        DatasetSize::Tiny => (64, 64, 4, 256),
        DatasetSize::SingleDpu => (1536, 1536, 8, 1280),
        DatasetSize::MultiDpu => (1792, 1792, 8, 4992),
    }
}

/// SpMM-BSR: (block rows, block cols, block edge, stored blocks, rhs cols).
#[must_use]
pub fn spmm_bsr(size: DatasetSize) -> (usize, usize, usize, usize, usize) {
    match size {
        DatasetSize::Tiny => (48, 48, 4, 192, 8),
        DatasetSize::SingleDpu => (768, 768, 8, 768, 16),
        DatasetSize::MultiDpu => (1024, 1024, 8, 2048, 16),
    }
}

/// MLP-Q: (layers, neurons) for the quantized chained-kernel MLP —
/// same shapes as the dense MLP so the two are directly comparable.
#[must_use]
pub fn mlp_q(size: DatasetSize) -> (usize, usize) {
    mlp(size)
}

/// ATTN: (sequence length, head dimension) for single-query decode
/// attention over an `L×D` K/V cache.
#[must_use]
pub fn attn(size: DatasetSize) -> (usize, usize) {
    match size {
        DatasetSize::Tiny => (128, 32),
        DatasetSize::SingleDpu => (512, 64),
        DatasetSize::MultiDpu => (2048, 64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_single_dpu_values() {
        assert_eq!(va(DatasetSize::SingleDpu), 1 << 20);
        assert_eq!(red_sel_uni(DatasetSize::SingleDpu), 512 << 10);
        assert_eq!(scan(DatasetSize::SingleDpu), 256 << 10);
        assert_eq!(hst(DatasetSize::SingleDpu), (128 << 10, 256));
        assert_eq!(trns(DatasetSize::SingleDpu).0 * trns(DatasetSize::SingleDpu).1, 128 << 10);
        assert_eq!(bs(DatasetSize::SingleDpu), (32 << 10, 4 << 10));
        assert_eq!(gemv(DatasetSize::SingleDpu), (2048, 64));
        assert_eq!(mlp(DatasetSize::SingleDpu), (3, 256));
        assert_eq!(ts(DatasetSize::SingleDpu), (2048, 64));
        assert_eq!(nw(DatasetSize::SingleDpu), 256);
        assert_eq!(bfs(DatasetSize::SingleDpu), (2048, 15_000));
        assert_eq!(spmv(DatasetSize::SingleDpu), (12 << 10, 12 << 10, 80_519));
    }

    #[test]
    fn multi_dpu_datasets_are_larger() {
        assert!(va(DatasetSize::MultiDpu) > va(DatasetSize::SingleDpu));
        assert!(bfs(DatasetSize::MultiDpu).1 > bfs(DatasetSize::SingleDpu).1);
        assert!(spmv(DatasetSize::MultiDpu).2 > spmv(DatasetSize::SingleDpu).2);
    }
}
