//! Deterministic block-sparse (BSR) matrix generation.
//!
//! BSR stores a sparse matrix as dense `block×block` tiles indexed by a
//! CSR-like structure at block granularity: `rowptr` (length
//! `block_rows+1`) delimits each block-row's span in `colidx`, and the
//! tile payloads live contiguously in `vals` (block-major, row-major
//! inside a tile). The layout maps directly onto a DPU's MRAM windows:
//! one tile is one aligned gather DMA, and `x`/`B` gathers address
//! `colidx[k]*block` — the irregular access pattern the sparse workload
//! family exists to exercise.
//!
//! All payloads are drawn from [`pim_rng::StdRng`] seeded by the caller,
//! so a given `(shape, seed)` pair is byte-identical on every run and
//! every platform — the property the golden snapshots and differential
//! tests rely on.

use pim_rng::StdRng;

/// A block-sparse matrix with `i32` tile payloads.
#[derive(Debug, Clone)]
pub struct Bsr {
    /// Number of block rows (the matrix has `block_rows * block` rows).
    pub block_rows: usize,
    /// Number of block columns.
    pub block_cols: usize,
    /// Edge length of the square tiles.
    pub block: usize,
    /// Block-granularity row pointers, length `block_rows + 1`.
    pub rowptr: Vec<i32>,
    /// Block-column index of each stored tile, sorted within a block row.
    pub colidx: Vec<i32>,
    /// Tile payloads: `colidx.len() * block * block` values, block-major.
    pub vals: Vec<i32>,
}

impl Bsr {
    /// Number of stored tiles.
    #[must_use]
    pub fn nnzb(&self) -> usize {
        self.colidx.len()
    }

    /// Rows of the expanded (element-granularity) matrix.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.block_rows * self.block
    }

    /// Columns of the expanded matrix.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.block_cols * self.block
    }
}

/// Generates a seeded BSR matrix with exactly `nnzb` stored tiles.
///
/// Tiles are distributed over block rows the same way the dense SpMV
/// generator distributes non-zeros (a seeded multinomial draw), then each
/// row's block columns are sampled without replacement and sorted, so the
/// structure is irregular but deterministic. Payloads are small signed
/// values (`-8..8`) to keep `i32` accumulation far from overflow at every
/// dataset size.
///
/// # Panics
///
/// Panics if `nnzb` exceeds the `block_rows * block_cols` capacity.
#[must_use]
pub fn generate(block_rows: usize, block_cols: usize, block: usize, nnzb: usize, seed: u64) -> Bsr {
    assert!(nnzb <= block_rows * block_cols, "nnzb exceeds block capacity");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut per_row = vec![0usize; block_rows];
    let mut placed = 0;
    while placed < nnzb {
        let r = rng.gen_range(0..block_rows);
        if per_row[r] < block_cols {
            per_row[r] += 1;
            placed += 1;
        }
    }
    let mut rowptr = Vec::with_capacity(block_rows + 1);
    rowptr.push(0i32);
    let mut colidx = Vec::with_capacity(nnzb);
    for count in &per_row {
        // Sample `count` distinct block columns.
        let mut cs: Vec<i32> = Vec::with_capacity(*count);
        while cs.len() < *count {
            let c = rng.gen_range(0..block_cols as i32);
            if !cs.contains(&c) {
                cs.push(c);
            }
        }
        cs.sort_unstable();
        colidx.extend(cs);
        rowptr.push(colidx.len() as i32);
    }
    let vals = (0..nnzb * block * block).map(|_| rng.gen_range(-8..8)).collect();
    Bsr { block_rows, block_cols, block, rowptr, colidx, vals }
}

/// Reference `y = A·x` with wrapping `i32` arithmetic (bit-exact against
/// the DPU kernels even under overflow).
#[must_use]
pub fn spmv_reference(a: &Bsr, x: &[i32]) -> Vec<i32> {
    let b = a.block;
    let mut y = vec![0i32; a.rows()];
    for br in 0..a.block_rows {
        for k in a.rowptr[br] as usize..a.rowptr[br + 1] as usize {
            let bc = a.colidx[k] as usize;
            let tile = &a.vals[k * b * b..(k + 1) * b * b];
            for i in 0..b {
                let mut acc = y[br * b + i];
                for c in 0..b {
                    acc = acc.wrapping_add(tile[i * b + c].wrapping_mul(x[bc * b + c]));
                }
                y[br * b + i] = acc;
            }
        }
    }
    y
}

/// Reference `C = A·B` for a dense row-major `B` with `n_rhs` columns.
#[must_use]
pub fn spmm_reference(a: &Bsr, bmat: &[i32], n_rhs: usize) -> Vec<i32> {
    let b = a.block;
    let mut out = vec![0i32; a.rows() * n_rhs];
    for br in 0..a.block_rows {
        for k in a.rowptr[br] as usize..a.rowptr[br + 1] as usize {
            let bc = a.colidx[k] as usize;
            let tile = &a.vals[k * b * b..(k + 1) * b * b];
            for i in 0..b {
                for c in 0..b {
                    let av = tile[i * b + c];
                    let brow = &bmat[(bc * b + c) * n_rhs..(bc * b + c + 1) * n_rhs];
                    let orow = &mut out[(br * b + i) * n_rhs..(br * b + i + 1) * n_rhs];
                    for (o, &bv) in orow.iter_mut().zip(brow) {
                        *o = o.wrapping_add(av.wrapping_mul(bv));
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_well_formed() {
        let a = generate(32, 32, 4, 64, 0xB5B5);
        let b = generate(32, 32, 4, 64, 0xB5B5);
        assert_eq!(a.rowptr, b.rowptr);
        assert_eq!(a.colidx, b.colidx);
        assert_eq!(a.vals, b.vals);
        assert_eq!(a.nnzb(), 64);
        assert_eq!(*a.rowptr.last().unwrap() as usize, a.nnzb());
        assert_eq!(a.vals.len(), 64 * 16);
        for br in 0..a.block_rows {
            let span = &a.colidx[a.rowptr[br] as usize..a.rowptr[br + 1] as usize];
            assert!(span.windows(2).all(|w| w[0] < w[1]), "sorted, distinct block cols");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(32, 32, 4, 64, 1);
        let b = generate(32, 32, 4, 64, 2);
        assert!(a.colidx != b.colidx || a.vals != b.vals);
    }

    #[test]
    fn spmv_reference_matches_dense_expansion() {
        let a = generate(8, 8, 4, 16, 7);
        let x: Vec<i32> = (0..a.cols() as i32).map(|i| i % 5 - 2).collect();
        // Expand to a dense matrix and multiply naively.
        let (rows, cols, b) = (a.rows(), a.cols(), a.block);
        let mut dense = vec![0i32; rows * cols];
        for br in 0..a.block_rows {
            for k in a.rowptr[br] as usize..a.rowptr[br + 1] as usize {
                let bc = a.colidx[k] as usize;
                for i in 0..b {
                    for c in 0..b {
                        dense[(br * b + i) * cols + bc * b + c] = a.vals[k * b * b + i * b + c];
                    }
                }
            }
        }
        let expect: Vec<i32> =
            (0..rows).map(|r| (0..cols).map(|c| dense[r * cols + c] * x[c]).sum()).collect();
        assert_eq!(spmv_reference(&a, &x), expect);
    }

    #[test]
    fn spmm_reference_columns_match_spmv() {
        let a = generate(8, 8, 4, 16, 9);
        let n_rhs = 3;
        let bmat: Vec<i32> = (0..a.cols() * n_rhs).map(|i| (i as i32 % 7) - 3).collect();
        let c = spmm_reference(&a, &bmat, n_rhs);
        for j in 0..n_rhs {
            let col: Vec<i32> = (0..a.cols()).map(|r| bmat[r * n_rhs + j]).collect();
            let y = spmv_reference(&a, &col);
            let got: Vec<i32> = (0..a.rows()).map(|r| c[r * n_rhs + j]).collect();
            assert_eq!(got, y, "rhs column {j}");
        }
    }
}
