//! **TS** — time-series analysis: the best (minimum squared-distance)
//! match of a query subsequence against a series, the kernel at the heart
//! of matrix-profile computation. Table II: 2K-element series / 64-element
//! query (single DPU), 64K / 64 (multi).
//!
//! Compute-bound: every candidate position costs 64 multiply-accumulate
//! iterations against WRAM-resident data (the paper groups TS with the
//! workloads whose bottleneck is issue bandwidth, not memory).

use pim_asm::{Barrier, DpuProgram, KernelBuilder};
use pim_dpu::SimError;
use pim_host::PimSystem;
use pim_isa::{AluOp, Cond};
use pim_rng::StdRng;

use crate::common::{chunk_range, to_bytes, validate_words, Params};
use crate::{datasets, DatasetSize, RunConfig, Workload, WorkloadRun};

/// Candidate positions processed per staging block.
const POS_BLOCK: u32 = 192;

/// The TS workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct Ts;

#[allow(clippy::too_many_lines)]
fn kernel(n_tasklets: u32, qlen: u32, flat: bool) -> (DpuProgram, Params) {
    let mut k = KernelBuilder::new();
    let params = Params::define(&mut k, &["npos", "pos_base", "series_base", "query_base"]);
    let mins = k.global_zeroed("mins", 4 * n_tasklets);
    let idxs = k.global_zeroed("idxs", 4 * n_tasklets);
    let best_out = k.global_zeroed("best", 8); // [min_dist, global_idx]
    let bar = Barrier::alloc(&mut k, n_tasklets);
    let qbuf = if flat { 0 } else { k.alloc_wram(qlen * 4, 8) };
    let sbuf = if flat { 0 } else { k.alloc_wram((POS_BLOCK + qlen) * 4 * n_tasklets, 8) };

    let [npos, t, start, end] = k.regs(["npos", "t", "start", "end"]);
    let [pos, blk_base, blk_end, sb] = k.regs(["pos", "blk_base", "blk_end", "sb"]);
    let [m, p, qp, j] = k.regs(["m", "p", "qp", "j"]);
    let [v, w, dist, best] = k.regs(["v", "w", "dist", "best"]);
    let besti = k.reg("besti");
    params.load(&mut k, npos, "npos");
    k.tid(t);

    if !flat {
        // Tasklet 0 stages the query into shared WRAM.
        let q_ready = k.fresh_label("q_ready");
        k.branch(Cond::Ne, t, 0, &q_ready);
        params.load(&mut k, m, "query_base");
        k.movi(p, qbuf as i32);
        k.ldma(p, m, (qlen * 4) as i32);
        k.place(&q_ready);
        bar.wait(&mut k, [m, p, v]);
    }

    // Contiguous position range per tasklet.
    k.alu(AluOp::Div, m, npos, n_tasklets as i32);
    k.mul(start, m, t);
    k.add(end, start, m);
    let not_last = k.fresh_label("not_last");
    k.branch(Cond::Ne, t, n_tasklets as i32 - 1, &not_last);
    k.mov(end, npos);
    k.place(&not_last);

    k.movi(best, i32::MAX);
    k.movi(besti, -1);
    let fold = k.fresh_label("fold");
    k.branch(Cond::Geu, start, end, &fold);
    k.mov(pos, start);
    let outer = k.label_here("outer");
    k.mov(blk_base, pos);
    k.add(blk_end, pos, POS_BLOCK as i32);
    k.alu(AluOp::Min, blk_end, blk_end, end);
    if !flat {
        // Stage series[blk_base .. blk_end + qlen - 1).
        k.tid(sb);
        k.mul(sb, sb, ((POS_BLOCK + qlen) * 4) as i32);
        k.add(sb, sb, sbuf as i32);
        k.sub(m, blk_end, blk_base);
        k.add(m, m, qlen as i32 - 1);
        k.mul(m, m, 4);
        params.load(&mut k, v, "series_base");
        k.mul(w, blk_base, 4);
        k.add(v, v, w);
        k.ldma(sb, v, m);
    }
    let inner = k.label_here("inner");
    k.movi(dist, 0);
    k.movi(j, 0);
    if flat {
        // p walks the series, qp walks the query, straight from memory.
        params.load(&mut k, p, "series_base");
        k.mul(m, pos, 4);
        k.add(p, p, m);
        params.load(&mut k, qp, "query_base");
    } else {
        k.sub(p, pos, blk_base);
        k.mul(p, p, 4);
        k.add(p, p, sb);
        k.movi(qp, qbuf as i32);
    }
    let mac = k.label_here("mac");
    k.lw(v, p, 0);
    k.lw(w, qp, 0);
    k.sub(v, v, w);
    k.mul(v, v, v);
    k.add(dist, dist, v);
    k.add(p, p, 4);
    k.add(qp, qp, 4);
    k.add(j, j, 1);
    k.branch(Cond::Ltu, j, qlen as i32, &mac);
    // Track the minimum (strict <, so the earliest position wins ties).
    let no_improve = k.fresh_label("no_improve");
    k.branch(Cond::Ge, dist, best, &no_improve);
    k.mov(best, dist);
    k.mov(besti, pos);
    k.place(&no_improve);
    k.add(pos, pos, 1);
    k.branch(Cond::Ltu, pos, blk_end, &inner);
    k.branch(Cond::Ltu, pos, end, &outer);

    // Publish per-tasklet results, then tasklet 0 folds.
    k.place(&fold);
    k.mul(p, t, 4);
    k.add(m, p, mins as i32);
    k.sw(best, m, 0);
    // Globalize the index (pos_base offsets this DPU's slice).
    let no_idx = k.fresh_label("no_idx");
    k.branch(Cond::Eq, besti, -1, &no_idx);
    params.load(&mut k, v, "pos_base");
    k.add(besti, besti, v);
    k.place(&no_idx);
    k.add(m, p, idxs as i32);
    k.sw(besti, m, 0);
    bar.wait(&mut k, [m, p, v]);
    let stop = k.fresh_label("stop");
    k.branch(Cond::Ne, t, 0, &stop);
    k.movi(best, i32::MAX);
    k.movi(besti, -1);
    k.movi(j, 0);
    let scan = k.label_here("scan");
    k.mul(p, j, 4);
    k.add(m, p, mins as i32);
    k.lw(v, m, 0);
    let next = k.fresh_label("next");
    k.branch(Cond::Ge, v, best, &next);
    k.mov(best, v);
    k.add(m, p, idxs as i32);
    k.lw(besti, m, 0);
    k.place(&next);
    k.add(j, j, 1);
    k.branch(Cond::Ltu, j, n_tasklets as i32, &scan);
    k.movi(p, best_out as i32);
    k.sw(best, p, 0);
    k.sw(besti, p, 4);
    k.place(&stop);
    k.stop();
    (k.build().expect("TS kernel builds"), params)
}

impl Workload for Ts {
    fn name(&self) -> &'static str {
        "TS"
    }

    fn run(&self, size: DatasetSize, rc: &RunConfig) -> Result<WorkloadRun, SimError> {
        let (n, qlen) = datasets::ts(size);
        let mut rng = StdRng::seed_from_u64(0x5453);
        let series: Vec<i32> = (0..n).map(|_| rng.gen_range(-100..100)).collect();
        let query: Vec<i32> = (0..qlen).map(|_| rng.gen_range(-100..100)).collect();
        let npos = n - qlen + 1;
        // Reference: earliest position with the smallest distance.
        let (mut emin, mut eidx) = (i32::MAX, -1i32);
        for i in 0..npos {
            let d: i32 = (0..qlen)
                .map(|j| {
                    let x = series[i + j].wrapping_sub(query[j]);
                    x.wrapping_mul(x)
                })
                .fold(0i32, i32::wrapping_add);
            if d < emin {
                emin = d;
                eidx = i as i32;
            }
        }
        let n_dpus = rc.n_dpus as usize;
        let (program, params) = kernel(rc.dpu.n_tasklets, qlen as u32, rc.cached());
        let mut sys = PimSystem::new(rc.n_dpus, rc.dpu.clone(), rc.xfer);
        sys.load(&program)?;
        // Each DPU gets its position range plus the qlen-1 overlap tail.
        let series_base = 0u32;
        let qcap = (qlen as u32 * 4).div_ceil(8) * 8 + crate::common::REGION_SKEW;
        let query_base_off = |slice_words: usize| {
            (slice_words as u32 * 4).div_ceil(8) * 8 + crate::common::REGION_SKEW
        };
        let slices: Vec<(usize, usize)> = (0..n_dpus)
            .map(|d| {
                let r = chunk_range(npos, n_dpus, d);
                (r.start, r.end - r.start)
            })
            .collect();
        let max_slice = slices.iter().map(|(_, l)| l + qlen - 1).max().unwrap_or(0);
        let q_base = query_base_off(max_slice);
        let chunks: Vec<Vec<u8>> =
            slices.iter().map(|&(s, l)| to_bytes(&series[s..s + l + qlen - 1])).collect();
        if rc.cached() {
            assert_eq!(rc.n_dpus, 1, "cache-centric runs are single-DPU");
            let base = program.heap_base.div_ceil(64) * 64;
            let dpu = sys.dpu_mut(0);
            dpu.write_wram(base, &chunks[0]);
            dpu.write_wram(base + q_base, &to_bytes(&query));
            let pb = params.bytes(&[
                ("npos", npos as u32),
                ("pos_base", 0),
                ("series_base", base),
                ("query_base", base + q_base),
            ]);
            sys.push_to_symbol("params", &[pb.as_slice()]);
        } else {
            sys.push_to_mram(series_base, &chunks.iter().map(Vec::as_slice).collect::<Vec<_>>());
            sys.broadcast_to_mram(q_base, &to_bytes(&query));
            let pbs: Vec<Vec<u8>> = slices
                .iter()
                .map(|&(s, l)| {
                    params.bytes(&[
                        ("npos", l as u32),
                        ("pos_base", s as u32),
                        ("series_base", series_base),
                        ("query_base", q_base),
                    ])
                })
                .collect();
            sys.push_to_symbol("params", &pbs.iter().map(Vec::as_slice).collect::<Vec<_>>());
        }
        let _ = qcap;
        let report = sys.launch_all()?;
        // Host-side fold across DPUs (ascending order keeps earliest ties).
        let bests = sys.pull_from_symbol("best");
        let (mut gmin, mut gidx) = (i32::MAX, -1i32);
        for b in &bests {
            let d = i32::from_le_bytes(b[0..4].try_into().expect("8-byte best"));
            let i = i32::from_le_bytes(b[4..8].try_into().expect("8-byte best"));
            if d < gmin {
                gmin = d;
                gidx = i;
            }
        }
        Ok(crate::common::finish_run(
            &mut sys,
            report.per_dpu,
            validate_words("TS", &[gmin, gidx], &[emin, eidx]),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_dpu::DpuConfig;

    #[test]
    fn ts_tiny_thread_sweep() {
        for t in [1, 4, 16] {
            Ts.run(DatasetSize::Tiny, &RunConfig::single(DpuConfig::paper_baseline(t)))
                .unwrap()
                .assert_valid();
        }
    }

    #[test]
    fn ts_tiny_multi_dpu() {
        Ts.run(DatasetSize::Tiny, &RunConfig::multi(4, DpuConfig::paper_baseline(4)))
            .unwrap()
            .assert_valid();
    }

    #[test]
    fn ts_tiny_cache_mode() {
        let cfg = DpuConfig::paper_baseline(4).with_paper_caches();
        Ts.run(DatasetSize::Tiny, &RunConfig::single(cfg)).unwrap().assert_valid();
    }

    #[test]
    fn ts_is_compute_bound_at_16_threads() {
        let run =
            Ts.run(DatasetSize::Tiny, &RunConfig::single(DpuConfig::paper_baseline(16))).unwrap();
        let s = &run.per_dpu[0];
        assert!(
            s.compute_utilization() > 0.5,
            "TS@16t should be compute-bound, got util {:.2}",
            s.compute_utilization()
        );
    }
}
