//! **VA** — element-wise vector addition (`C[i] = A[i] + B[i]`), the
//! paper's running example (Fig 2) and the simplest streaming PrIM
//! workload. Table II: 1M elements single-DPU, 4M multi-DPU.

use pim_asm::{DpuProgram, KernelBuilder};
use pim_dpu::SimError;
use pim_host::PimSystem;
use pim_isa::{AluOp, Cond};
use pim_rng::StdRng;

use crate::common::{chunk_range, from_bytes, to_bytes, Params};
use crate::{datasets, DatasetSize, RunConfig, Workload, WorkloadRun};

/// Per-tasklet staging block, in bytes (256 elements).
const BLOCK: u32 = 1024;

/// The VA workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct Va;

/// Scratchpad kernel: tasklets grab blocks round-robin, stage A and B via
/// DMA, add in place, and DMA the result to C.
fn kernel_scratchpad(n_tasklets: u32) -> (DpuProgram, Params) {
    let mut k = KernelBuilder::new();
    let params = Params::define(&mut k, &["nbytes", "a_base", "b_base", "c_base"]);
    let buf_a = k.alloc_wram(BLOCK * n_tasklets, 8);
    let buf_b = k.alloc_wram(BLOCK * n_tasklets, 8);
    let [nbytes, wa, wb, blk] = k.regs(["nbytes", "wa", "wb", "blk"]);
    let [off, m, len, pa] = k.regs(["off", "m", "len", "pa"]);
    let [pb, end, va, vb] = k.regs(["pb", "end", "va", "vb"]);
    params.load(&mut k, nbytes, "nbytes");
    // Per-tasklet WRAM buffers.
    k.tid(blk);
    k.mul(wa, blk, BLOCK as i32);
    k.add(wb, wa, buf_b as i32);
    k.add(wa, wa, buf_a as i32);
    let done = k.fresh_label("done");
    let outer = k.label_here("outer");
    // off = blk * BLOCK; done when off >= nbytes.
    k.mul(off, blk, BLOCK as i32);
    k.branch(Cond::Geu, off, nbytes, &done);
    // len = min(BLOCK, nbytes - off)
    k.sub(len, nbytes, off);
    k.alu(AluOp::Min, len, len, BLOCK as i32);
    // Stage A and B.
    params.load(&mut k, m, "a_base");
    k.add(m, m, off);
    k.ldma(wa, m, len);
    params.load(&mut k, m, "b_base");
    k.add(m, m, off);
    k.ldma(wb, m, len);
    // In-place add.
    k.mov(pa, wa);
    k.mov(pb, wb);
    k.add(end, wa, len);
    let inner = k.label_here("inner");
    k.lw(va, pa, 0);
    k.lw(vb, pb, 0);
    k.add(va, va, vb);
    k.sw(va, pa, 0);
    k.add(pa, pa, 4);
    k.add(pb, pb, 4);
    k.branch(Cond::Ltu, pa, end, &inner);
    // Write back to C.
    params.load(&mut k, m, "c_base");
    k.add(m, m, off);
    k.sdma(wa, m, len);
    k.add(blk, blk, n_tasklets as i32);
    k.jump(&outer);
    k.place(&done);
    k.stop();
    (k.build().expect("VA scratchpad kernel builds"), params)
}

/// Cache-centric kernel: A, B, C live in the flat DRAM-backed space; each
/// tasklet walks its contiguous range with plain loads/stores.
fn kernel_flat(n_tasklets: u32) -> (DpuProgram, Params) {
    let mut k = KernelBuilder::new();
    let params = Params::define(&mut k, &["nbytes", "a_base", "b_base", "c_base"]);
    let [nbytes, t, start, end] = k.regs(["nbytes", "t", "start", "end"]);
    let [pa, pb, pc, va, vb] = k.regs(["pa", "pb", "pc", "va", "vb"]);
    params.load(&mut k, nbytes, "nbytes");
    // Contiguous per-tasklet split in bytes: share = nbytes/T rounded to 4.
    k.tid(t);
    let share = k.reg("share");
    k.alu(AluOp::Div, share, nbytes, n_tasklets as i32);
    k.alu(AluOp::Srl, share, share, 2);
    k.alu(AluOp::Sll, share, share, 2);
    k.mul(start, t, share);
    k.add(end, start, share);
    // Last tasklet absorbs the tail.
    let not_last = k.fresh_label("not_last");
    k.branch(Cond::Ne, t, n_tasklets as i32 - 1, &not_last);
    k.mov(end, nbytes);
    k.place(&not_last);
    let done = k.fresh_label("done");
    k.branch(Cond::Geu, start, end, &done);
    params.load(&mut k, pa, "a_base");
    k.add(pa, pa, start);
    params.load(&mut k, pb, "b_base");
    k.add(pb, pb, start);
    params.load(&mut k, pc, "c_base");
    k.add(pc, pc, start);
    // end as an absolute A pointer.
    params.load(&mut k, va, "a_base");
    k.add(end, end, va);
    let inner = k.label_here("inner");
    k.lw(va, pa, 0);
    k.lw(vb, pb, 0);
    k.add(va, va, vb);
    k.sw(va, pc, 0);
    k.add(pa, pa, 4);
    k.add(pb, pb, 4);
    k.add(pc, pc, 4);
    k.branch(Cond::Ltu, pa, end, &inner);
    k.place(&done);
    k.stop();
    (k.build().expect("VA flat kernel builds"), params)
}

impl Workload for Va {
    fn name(&self) -> &'static str {
        "VA"
    }

    fn run(&self, size: DatasetSize, rc: &RunConfig) -> Result<WorkloadRun, SimError> {
        let n = datasets::va(size);
        let mut rng = StdRng::seed_from_u64(0x5641);
        let a: Vec<i32> = (0..n).map(|_| rng.gen_range(-1000..1000)).collect();
        let b: Vec<i32> = (0..n).map(|_| rng.gen_range(-1000..1000)).collect();
        let expect: Vec<i32> = a.iter().zip(&b).map(|(x, y)| x.wrapping_add(*y)).collect();
        if rc.cached() {
            run_flat(&a, &b, &expect, rc)
        } else {
            run_scratchpad(&a, &b, &expect, rc)
        }
    }
}

fn run_scratchpad(
    a: &[i32],
    b: &[i32],
    expect: &[i32],
    rc: &RunConfig,
) -> Result<WorkloadRun, SimError> {
    let n = a.len();
    let n_dpus = rc.n_dpus as usize;
    let (program, params) = kernel_scratchpad(rc.dpu.n_tasklets);
    let mut sys = PimSystem::new(rc.n_dpus, rc.dpu.clone(), rc.xfer);
    sys.load(&program)?;
    // Uniform MRAM layout sized for the largest chunk.
    let cap_bytes =
        (chunk_range(n, n_dpus, 0).len() as u32 * 4).div_ceil(8) * 8 + crate::common::REGION_SKEW;
    let (a_base, b_base, c_base) = (0u32, cap_bytes, 2 * cap_bytes);
    let chunks_a: Vec<Vec<u8>> =
        (0..n_dpus).map(|d| to_bytes(&a[chunk_range(n, n_dpus, d)])).collect();
    let chunks_b: Vec<Vec<u8>> =
        (0..n_dpus).map(|d| to_bytes(&b[chunk_range(n, n_dpus, d)])).collect();
    let param_bytes: Vec<Vec<u8>> = (0..n_dpus)
        .map(|d| {
            params.bytes(&[
                ("nbytes", chunk_range(n, n_dpus, d).len() as u32 * 4),
                ("a_base", a_base),
                ("b_base", b_base),
                ("c_base", c_base),
            ])
        })
        .collect();
    sys.push_to_mram(a_base, &chunks_a.iter().map(Vec::as_slice).collect::<Vec<_>>());
    sys.push_to_mram(b_base, &chunks_b.iter().map(Vec::as_slice).collect::<Vec<_>>());
    sys.push_to_symbol("params", &param_bytes.iter().map(Vec::as_slice).collect::<Vec<_>>());
    let report = sys.launch_all()?;
    let pulled = sys.pull_from_mram(c_base, cap_bytes);
    let mut got: Vec<i32> = Vec::with_capacity(n);
    for (d, bytes) in pulled.iter().enumerate() {
        let len = chunk_range(n, n_dpus, d).len();
        got.extend(&from_bytes(bytes)[..len]);
    }
    Ok(crate::common::finish_run(&mut sys, report.per_dpu, validate(&got, expect)))
}

fn run_flat(a: &[i32], b: &[i32], expect: &[i32], rc: &RunConfig) -> Result<WorkloadRun, SimError> {
    assert_eq!(rc.n_dpus, 1, "the cache-centric case study runs on a single DPU");
    let n = a.len() as u32;
    let (program, params) = kernel_flat(rc.dpu.n_tasklets);
    let mut sys = PimSystem::new(1, rc.dpu.clone(), rc.xfer);
    sys.load(&program)?;
    let a_base = program.heap_base.div_ceil(64) * 64;
    let b_base = a_base + n * 4;
    let c_base = b_base + n * 4;
    let dpu = sys.dpu_mut(0);
    dpu.write_wram(a_base, &to_bytes(a));
    dpu.write_wram(b_base, &to_bytes(b));
    dpu.write_wram(c_base, &vec![0u8; n as usize * 4]);
    let pbytes = params.bytes(&[
        ("nbytes", n * 4),
        ("a_base", a_base),
        ("b_base", b_base),
        ("c_base", c_base),
    ]);
    sys.push_to_symbol("params", &[pbytes.as_slice()]);
    let report = sys.launch_all()?;
    let got = from_bytes(&sys.dpu(0).read_wram(c_base, n * 4));
    Ok(crate::common::finish_run(&mut sys, report.per_dpu, validate(&got, expect)))
}

fn validate(got: &[i32], expect: &[i32]) -> Result<(), String> {
    crate::common::validate_words("VA", got, expect)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RunConfig;
    use pim_dpu::DpuConfig;

    #[test]
    fn va_tiny_single_dpu_all_thread_counts() {
        for t in [1, 4, 16, 24] {
            let run = Va
                .run(DatasetSize::Tiny, &RunConfig::single(DpuConfig::paper_baseline(t)))
                .unwrap();
            run.assert_valid();
            assert!(run.per_dpu[0].instructions > 0, "t={t}");
        }
    }

    #[test]
    fn va_tiny_multi_dpu() {
        for d in [2, 4] {
            let run = Va
                .run(DatasetSize::Tiny, &RunConfig::multi(d, DpuConfig::paper_baseline(4)))
                .unwrap();
            run.assert_valid();
            assert_eq!(run.per_dpu.len(), d as usize);
        }
    }

    #[test]
    fn va_tiny_cache_mode() {
        let cfg = DpuConfig::paper_baseline(4).with_paper_caches();
        let run = Va.run(DatasetSize::Tiny, &RunConfig::single(cfg)).unwrap();
        run.assert_valid();
        assert!(run.per_dpu[0].dcache.is_some());
    }

    #[test]
    fn va_more_threads_do_not_break_partitioning() {
        // Uneven element counts vs tasklet counts.
        let run =
            Va.run(DatasetSize::Tiny, &RunConfig::single(DpuConfig::paper_baseline(7))).unwrap();
        run.assert_valid();
    }
}
