//! **ATTN** — single-query (decode-style) attention over an `L×D` K/V
//! cache, expressed as three chained kernel launches with host staging:
//!
//! 1. **QK^T**: `s[l] = Σ_d q_i8[d] · k_i8[l,d]` over the DPU's band of
//!    the sequence; the host gathers all score bands and computes the
//!    global max (the staging step a real serving stack performs).
//! 2. **softmax-approx + AV**: integer shifted-exp weights
//!    `w[l] = 128 >> min((max−s[l]) >> 4, 31)` and per-tasklet partial
//!    numerator/denominator accumulation, reduced across tasklets and
//!    gathered by the host.
//! 3. **normalize**: `o[d] = num[d] / den` after the host broadcasts the
//!    summed numerator and denominator.
//!
//! Everything is integer arithmetic (shift-based softmax approximation),
//! so the pure-Rust reference validates bit-exactly.

use pim_asm::{Barrier, DpuProgram, KernelBuilder};
use pim_dpu::SimError;
use pim_host::PimSystem;
use pim_isa::{AluOp, Cond};
use pim_rng::StdRng;

use crate::common::{chunk_range, from_bytes, validate_words, Params};
use crate::{datasets, DatasetSize, RunConfig, Workload, WorkloadFamily, WorkloadRun};

/// Softmax-approx temperature shift: score gaps are scaled by `2^-4`.
const TEMP_SHIFT: i32 = 4;

/// The ATTN workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct Attn;

/// Builds the three-stage kernel, specialized on the head dimension `d`.
#[allow(clippy::too_many_lines)]
fn kernel(n_tasklets: u32, d: u32) -> (DpuProgram, Params) {
    let mut k = KernelBuilder::new();
    let params = Params::define(
        &mut k,
        &["stage", "rows", "maxs", "q_base", "k_base", "v_base", "s_base", "p_base", "o_base"],
    );
    let bar = Barrier::alloc(&mut k, n_tasklets);
    let qg = k.global_zeroed("qg", d); // staged i8 query (stage 0)
    let nbg = k.global_zeroed("nbg", (d + 2) * 4); // summed num/den (stage 2)
    let kv_buf = k.alloc_wram(d * n_tasklets, 8); // one K or V row
    let slot = k.alloc_wram(16 * n_tasklets, 8);
    let part = k.alloc_wram((d + 2) * 4 * n_tasklets, 8); // num + den partials
    let [s, rows, t, r] = k.regs(["s", "rows", "t", "r"]);
    let [re, m, p, q] = k.regs(["re", "m", "p", "q"]);
    let [acc, v, w, mx] = k.regs(["acc", "v", "w", "mx"]);
    let [kv, sl, pb] = k.regs(["kv", "sl", "pb"]);
    params.load(&mut k, s, "stage");
    params.load(&mut k, rows, "rows");
    k.tid(t);
    k.mul(kv, t, d as i32);
    k.add(kv, kv, kv_buf as i32);
    k.mul(sl, t, 16);
    k.add(sl, sl, slot as i32);
    k.mul(pb, t, ((d + 2) * 4) as i32);
    k.add(pb, pb, part as i32);
    let stage1 = k.fresh_label("stage1");
    let stage2 = k.fresh_label("stage2");
    let exit = k.fresh_label("exit");
    k.branch(Cond::Eq, s, 1, &stage1);
    k.branch(Cond::Eq, s, 2, &stage2);

    // ---- Stage 0: score band s[l] = q · K[l] ----
    let q_ready = k.fresh_label("q_ready");
    k.branch(Cond::Ne, t, 0, &q_ready);
    params.load(&mut k, m, "q_base");
    k.movi(p, qg as i32);
    k.ldma(p, m, d as i32);
    k.place(&q_ready);
    bar.wait(&mut k, [m, p, v]);
    k.alu(AluOp::Div, m, rows, n_tasklets as i32);
    k.mul(r, m, t);
    k.add(re, r, m);
    let not_last0 = k.fresh_label("not_last0");
    k.branch(Cond::Ne, t, n_tasklets as i32 - 1, &not_last0);
    k.mov(re, rows);
    k.place(&not_last0);
    k.branch(Cond::Geu, r, re, &exit);
    let s_loop = k.label_here("s_loop");
    k.mul(m, r, d as i32);
    params.load(&mut k, p, "k_base");
    k.add(m, m, p);
    k.ldma(kv, m, d as i32);
    k.movi(acc, 0);
    k.mov(p, kv);
    k.movi(q, qg as i32);
    k.add(m, kv, d as i32);
    let dot = k.label_here("dot");
    k.lb(v, p, 0);
    k.lb(w, q, 0);
    k.mul(v, v, w);
    k.add(acc, acc, v);
    k.add(p, p, 1);
    k.add(q, q, 1);
    k.branch(Cond::Ltu, p, m, &dot);
    k.sw(acc, sl, 0);
    k.mul(m, r, 4);
    params.load(&mut k, v, "s_base");
    k.add(m, m, v);
    k.sdma(sl, m, 4);
    k.add(r, r, 1);
    k.branch(Cond::Ltu, r, re, &s_loop);
    k.jump(&exit);

    // ---- Stage 1: partial num/den over the band ----
    k.place(&stage1);
    params.load(&mut k, mx, "maxs");
    // Zero this tasklet's partials (num[0..d] and den).
    k.movi(v, 0);
    k.mov(p, pb);
    k.add(m, pb, ((d + 1) * 4) as i32);
    let zero_loop = k.label_here("zero_part");
    k.sw(v, p, 0);
    k.add(p, p, 4);
    k.branch(Cond::Ltu, p, m, &zero_loop);
    k.alu(AluOp::Div, m, rows, n_tasklets as i32);
    k.mul(r, m, t);
    k.add(re, r, m);
    let not_last1 = k.fresh_label("not_last1");
    k.branch(Cond::Ne, t, n_tasklets as i32 - 1, &not_last1);
    k.mov(re, rows);
    k.place(&not_last1);
    let reduce = k.fresh_label("reduce");
    k.branch(Cond::Geu, r, re, &reduce);
    let av_loop = k.label_here("av_loop");
    // s[l] probe (4-byte gather from this DPU's score band).
    k.mul(m, r, 4);
    params.load(&mut k, p, "s_base");
    k.add(m, m, p);
    k.ldma(sl, m, 4);
    k.lw(v, sl, 0);
    // w = 128 >> min((maxs - s) >> TEMP_SHIFT, 31)  (branchless).
    k.sub(v, mx, v);
    k.alu(AluOp::Srl, v, v, TEMP_SHIFT);
    k.alu(AluOp::Min, v, v, 31);
    k.movi(w, 128);
    k.alu(AluOp::Srl, w, w, v);
    // den += w.
    k.lw(v, pb, (d * 4) as i32);
    k.add(v, v, w);
    k.sw(v, pb, (d * 4) as i32);
    // num[:] += w * V[l][:].
    k.mul(m, r, d as i32);
    params.load(&mut k, p, "v_base");
    k.add(m, m, p);
    k.ldma(kv, m, d as i32);
    k.mov(p, kv);
    k.mov(q, pb);
    k.add(m, kv, d as i32);
    let acc_loop = k.label_here("acc_loop");
    k.lb(v, p, 0);
    k.mul(v, v, w);
    k.lw(acc, q, 0);
    k.add(acc, acc, v);
    k.sw(acc, q, 0);
    k.add(p, p, 1);
    k.add(q, q, 4);
    k.branch(Cond::Ltu, p, m, &acc_loop);
    k.add(r, r, 1);
    k.branch(Cond::Ltu, r, re, &av_loop);
    k.place(&reduce);
    bar.wait(&mut k, [m, p, v]);
    // Tasklet 0 sums every tasklet's partials into nbg and writes them out.
    k.branch(Cond::Ne, t, 0, &exit);
    k.movi(r, 0); // word index over d+1 entries
    let red_loop = k.label_here("red_loop");
    k.movi(acc, 0);
    k.movi(q, 0); // tasklet index
    k.mul(m, r, 4);
    k.add(p, m, part as i32);
    let sum_loop = k.label_here("sum_loop");
    k.lw(v, p, 0);
    k.add(acc, acc, v);
    k.add(p, p, ((d + 2) * 4) as i32);
    k.add(q, q, 1);
    k.branch(Cond::Ltu, q, n_tasklets as i32, &sum_loop);
    k.add(m, m, nbg as i32);
    k.sw(acc, m, 0);
    k.add(r, r, 1);
    k.branch(Cond::Ltu, r, (d + 1) as i32, &red_loop);
    // Zero the pad word, then one aligned write-back of num+den.
    k.movi(v, 0);
    k.movi(m, (nbg + (d + 1) * 4) as i32);
    k.sw(v, m, 0);
    k.movi(p, nbg as i32);
    params.load(&mut k, m, "p_base");
    k.sdma(p, m, ((d + 2) * 4) as i32);
    k.jump(&exit);

    // ---- Stage 2: o[d] = num[d] / den ----
    k.place(&stage2);
    let nb_ready = k.fresh_label("nb_ready");
    k.branch(Cond::Ne, t, 0, &nb_ready);
    params.load(&mut k, m, "p_base");
    k.movi(p, nbg as i32);
    k.ldma(p, m, ((d + 2) * 4) as i32);
    k.place(&nb_ready);
    bar.wait(&mut k, [m, p, v]);
    k.alu(AluOp::Div, m, rows, n_tasklets as i32);
    k.mul(r, m, t);
    k.add(re, r, m);
    let not_last2 = k.fresh_label("not_last2");
    k.branch(Cond::Ne, t, n_tasklets as i32 - 1, &not_last2);
    k.mov(re, rows);
    k.place(&not_last2);
    k.branch(Cond::Geu, r, re, &exit);
    k.movi(w, (nbg + d * 4) as i32);
    k.lw(w, w, 0); // den
    let o_loop = k.label_here("o_loop");
    k.mul(m, r, 4);
    k.add(p, m, nbg as i32);
    k.lw(v, p, 0);
    k.alu(AluOp::Div, v, v, w);
    k.sw(v, sl, 0);
    params.load(&mut k, p, "o_base");
    k.add(m, m, p);
    k.sdma(sl, m, 4);
    k.add(r, r, 1);
    k.branch(Cond::Ltu, r, re, &o_loop);
    k.place(&exit);
    k.stop();
    (k.build().expect("ATTN kernel builds"), params)
}

/// Bit-exact reference for the whole chain.
fn reference(qv: &[i8], km: &[i8], vm: &[i8], l: usize, d: usize) -> Vec<i32> {
    let s: Vec<i32> = (0..l)
        .map(|i| {
            (0..d)
                .map(|j| i32::from(qv[j]).wrapping_mul(i32::from(km[i * d + j])))
                .fold(0i32, i32::wrapping_add)
        })
        .collect();
    let m = *s.iter().max().expect("non-empty sequence");
    let mut num = vec![0i32; d];
    let mut den = 0i32;
    for i in 0..l {
        let e = ((m - s[i]) >> TEMP_SHIFT).min(31);
        let w = 128i32 >> e;
        den = den.wrapping_add(w);
        for j in 0..d {
            num[j] = num[j].wrapping_add(w.wrapping_mul(i32::from(vm[i * d + j])));
        }
    }
    num.iter().map(|&n| n / den).collect()
}

impl Workload for Attn {
    fn name(&self) -> &'static str {
        "ATTN"
    }

    fn family(&self) -> WorkloadFamily {
        WorkloadFamily::NnInference
    }

    fn supports_cache_mode(&self) -> bool {
        false
    }

    #[allow(clippy::too_many_lines)]
    fn run(&self, size: DatasetSize, rc: &RunConfig) -> Result<WorkloadRun, SimError> {
        let (l, d) = datasets::attn(size);
        let mut rng = StdRng::seed_from_u64(0x4154_544e);
        let qv: Vec<i8> = (0..d).map(|_| rng.gen_range(-8..8) as i8).collect();
        let km: Vec<i8> = (0..l * d).map(|_| rng.gen_range(-8..8) as i8).collect();
        let vm: Vec<i8> = (0..l * d).map(|_| rng.gen_range(-8..8) as i8).collect();
        let expect = reference(&qv, &km, &vm, l, d);
        let n_dpus = rc.n_dpus as usize;
        let (program, params) = kernel(rc.dpu.n_tasklets, d as u32);
        let mut sys = PimSystem::new(rc.n_dpus, rc.dpu.clone(), rc.xfer);
        sys.load(&program)?;
        let bands: Vec<std::ops::Range<usize>> =
            (0..n_dpus).map(|dd| chunk_range(l, n_dpus, dd)).collect();
        let skew = crate::common::REGION_SKEW;
        let max_band = bands.iter().map(std::ops::Range::len).max().unwrap_or(1);
        let q_base = 0u32;
        let q_cap = (d as u32).div_ceil(8) * 8 + skew;
        let kv_cap = ((max_band * d) as u32).div_ceil(8) * 8 + skew;
        let k_base = q_base + q_cap;
        let v_base = k_base + kv_cap;
        let s_base = v_base + kv_cap;
        let s_cap = (max_band as u32 * 4).div_ceil(8) * 8 + skew;
        let p_base = s_base + s_cap;
        let p_cap = ((d + 2) as u32 * 4) + skew;
        let o_base = p_base + p_cap;
        let enc = |v: &[i8]| -> Vec<u8> { v.iter().map(|&x| x as u8).collect() };
        sys.broadcast_to_mram(q_base, &enc(&qv));
        let k_chunks: Vec<Vec<u8>> =
            bands.iter().map(|bd| enc(&km[bd.start * d..bd.end * d])).collect();
        let v_chunks: Vec<Vec<u8>> =
            bands.iter().map(|bd| enc(&vm[bd.start * d..bd.end * d])).collect();
        sys.push_to_mram(k_base, &k_chunks.iter().map(Vec::as_slice).collect::<Vec<_>>());
        sys.push_to_mram(v_base, &v_chunks.iter().map(Vec::as_slice).collect::<Vec<_>>());
        let mut per_dpu: Vec<pim_dpu::DpuRunStats> = Vec::new();
        let merge_launch = |per_dpu: &mut Vec<pim_dpu::DpuRunStats>,
                            report: Vec<pim_dpu::DpuRunStats>| {
            if per_dpu.is_empty() {
                *per_dpu = report;
            } else {
                for (a, b) in per_dpu.iter_mut().zip(&report) {
                    a.merge(b);
                }
            }
        };
        let push_params = |sys: &mut PimSystem, stage: u32, maxs: u32| {
            let pbs: Vec<Vec<u8>> = bands
                .iter()
                .map(|bd| {
                    let rows = if stage == 2 { d as u32 } else { bd.len() as u32 };
                    params.bytes(&[
                        ("stage", stage),
                        ("rows", rows),
                        ("maxs", maxs),
                        ("q_base", q_base),
                        ("k_base", k_base),
                        ("v_base", v_base),
                        ("s_base", s_base),
                        ("p_base", p_base),
                        ("o_base", o_base),
                    ])
                })
                .collect();
            sys.push_to_symbol("params", &pbs.iter().map(Vec::as_slice).collect::<Vec<_>>());
        };
        // Launch 1: QK^T score bands; host gathers and takes the max.
        push_params(&mut sys, 0, 0);
        let report = sys.launch_all()?;
        merge_launch(&mut per_dpu, report.per_dpu);
        let lens: Vec<u32> = bands.iter().map(|bd| bd.len() as u32 * 4).collect();
        let scores: Vec<i32> = crate::common::parallel_pull_words(&mut sys, s_base, &lens)
            .into_iter()
            .flatten()
            .collect();
        let maxs = *scores.iter().max().expect("non-empty scores");
        // Launch 2: softmax-approx weights + AV partials; host sums.
        push_params(&mut sys, 1, maxs as u32);
        let report = sys.launch_all()?;
        merge_launch(&mut per_dpu, report.per_dpu);
        let part_lens: Vec<u32> = vec![(d + 1) as u32 * 4; n_dpus];
        let parts = crate::common::parallel_pull_words(&mut sys, p_base, &part_lens);
        let mut nb = vec![0i32; d + 2];
        for p in &parts {
            for (i, v) in p.iter().enumerate() {
                nb[i] = nb[i].wrapping_add(*v);
            }
        }
        // Launch 3: broadcast summed num/den, normalize on-DPU.
        sys.broadcast_to_mram(p_base, &crate::common::to_bytes(&nb));
        push_params(&mut sys, 2, 0);
        let report = sys.launch_all()?;
        merge_launch(&mut per_dpu, report.per_dpu);
        let got: Vec<i32> = from_bytes(&sys.copy_from_mram(0, o_base, d as u32 * 4));
        Ok(crate::common::finish_run(&mut sys, per_dpu, validate_words("ATTN", &got, &expect)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_dpu::DpuConfig;

    #[test]
    fn attn_tiny_thread_sweep() {
        for t in [1, 4, 16] {
            Attn.run(DatasetSize::Tiny, &RunConfig::single(DpuConfig::paper_baseline(t)))
                .unwrap()
                .assert_valid();
        }
    }

    #[test]
    fn attn_tiny_multi_dpu() {
        Attn.run(DatasetSize::Tiny, &RunConfig::multi(4, DpuConfig::paper_baseline(4)))
            .unwrap()
            .assert_valid();
    }

    #[test]
    fn attn_softmax_weights_concentrate_on_the_max_score() {
        // The shifted-exp weight of the argmax score is 128; everything at
        // least 512 below it contributes nothing — the reference encodes
        // the approximation, and the kernel must match it bit-for-bit,
        // which attn_tiny_thread_sweep already asserts. Here we sanity-
        // check the approximation itself.
        let (l, d) = (8, 4);
        let qv = vec![1i8; d];
        let mut km = vec![0i8; l * d];
        km[0..d].copy_from_slice(&[8, 8, 8, 8]); // row 0 dominates
        let vm: Vec<i8> = (0..l * d).map(|i| (i % 5) as i8).collect();
        let o = reference(&qv, &km, &vm, l, d);
        assert_eq!(o.len(), d);
    }
}
