//! **BFS** — level-synchronous breadth-first search over a CSR graph.
//! Table II: 2K vertices / 15K edges (single DPU), 16K / 120K (multi).
//!
//! Each kernel launch expands one BFS level: phase 1 claims newly
//! discovered owned vertices (assigning their level and marking them
//! active), phase 2 scatters their neighbours into a shared next-frontier
//! bitmap under word-granular mutexes. The host ORs the per-DPU next
//! frontiers and re-broadcasts them — the per-level inter-DPU
//! communication that makes BFS scale sub-linearly in the paper's Fig 10.

use pim_asm::{Barrier, DpuProgram, KernelBuilder};
use pim_dpu::SimError;
use pim_host::PimSystem;
use pim_isa::{AluOp, Cond};
use pim_rng::StdRng;

use crate::common::{from_bytes, to_bytes, validate_words, Params};
use crate::{datasets, DatasetSize, RunConfig, Workload, WorkloadRun};

/// Owned vertices processed per staging block (and the owned-range
/// alignment unit).
const VBLOCK: u32 = 64;
/// Neighbour indices staged per chunk.
const NCHUNK: u32 = 128;
/// Word-granular mutexes protecting the shared next-frontier bitmap.
const N_MUTEXES: u32 = 64;

/// The BFS workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct Bfs;

#[allow(clippy::too_many_lines)]
fn kernel(n_tasklets: u32, vtotal: u32, flat: bool) -> (DpuProgram, Params) {
    assert_eq!(vtotal % 32, 0);
    let front_bytes = vtotal / 8;
    let mut k = KernelBuilder::new();
    let params =
        Params::define(&mut k, &["depth", "owned", "vs", "rp_base", "col_base", "level_base"]);
    let in_front = k.global_zeroed("in_front", front_bytes);
    let next_front = k.global_zeroed("next_front", front_bytes);
    let active = k.global_zeroed("active", front_bytes);
    let bar = Barrier::alloc(&mut k, n_tasklets);
    let mutex_base = {
        let base = k.alloc_atomic_bit();
        for _ in 1..N_MUTEXES {
            k.alloc_atomic_bit();
        }
        base
    };
    let (lvl_buf, col_buf, rp_buf) = if flat {
        (0, 0, 0)
    } else {
        (
            k.alloc_wram(VBLOCK * 4 * n_tasklets, 8),
            k.alloc_wram(NCHUNK * 4 * n_tasklets, 8),
            k.alloc_wram(8 * n_tasklets, 8),
        )
    };

    let [t, owned, depth, blk] = k.regs(["t", "owned", "depth", "blk"]);
    let [cnt, i, vo, word] = k.regs(["cnt", "i", "vo", "word"]);
    let [mask, p, m, v] = k.regs(["mask", "p", "m", "v"]);
    params.load(&mut k, owned, "owned");
    params.load(&mut k, depth, "depth");
    k.tid(t);

    // ---- Phase 0: cooperatively clear next_front and active. ----
    {
        let [s, e] = k.regs(["s", "e"]);
        k.movi(v, front_bytes as i32);
        crate::common::emit_tasklet_byte_range(&mut k, v, t, s, e, n_tasklets);
        k.movi(v, 0);
        let done = k.fresh_label("clr_done");
        k.branch(Cond::Geu, s, e, &done);
        let clr = k.label_here("clr");
        k.add(p, s, next_front as i32);
        k.sw(v, p, 0);
        k.add(p, s, active as i32);
        k.sw(v, p, 0);
        k.add(s, s, 4);
        k.branch(Cond::Ltu, s, e, &clr);
        k.place(&done);
        k.release_reg("s");
        k.release_reg("e");
    }
    bar.wait(&mut k, [p, m, v]);

    // ---- Phase 1: claim newly discovered owned vertices. ----
    // Blocks of VBLOCK owned vertices, round-robin across tasklets.
    {
        let [lb, changed, vg] = k.regs(["lb", "changed", "vg"]);
        if !flat {
            k.mul(lb, t, (VBLOCK * 4) as i32);
            k.add(lb, lb, lvl_buf as i32);
        }
        k.mul(blk, t, VBLOCK as i32);
        let p1_done = k.fresh_label("p1_done");
        let p1_outer = k.label_here("p1_outer");
        k.branch(Cond::Geu, blk, owned, &p1_done);
        k.sub(cnt, owned, blk);
        k.alu(AluOp::Min, cnt, cnt, VBLOCK as i32);
        if !flat {
            // Stage levels[blk .. blk+cnt].
            k.mul(m, blk, 4);
            params.load(&mut k, p, "level_base");
            k.add(m, m, p);
            k.mul(v, cnt, 4);
            k.ldma(lb, m, v);
        } else {
            k.mul(lb, blk, 4);
            params.load(&mut k, p, "level_base");
            k.add(lb, lb, p);
        }
        k.movi(changed, 0);
        k.movi(i, 0);
        let p1_each = k.label_here("p1_each");
        let p1_next = k.fresh_label("p1_next");
        // vg = vs + blk + i (global id); test in_front bit.
        k.add(vo, blk, i);
        params.load(&mut k, vg, "vs");
        k.add(vg, vg, vo);
        k.alu(AluOp::Srl, word, vg, 5);
        k.mul(p, word, 4);
        k.add(p, p, in_front as i32);
        k.lw(v, p, 0);
        k.alu(AluOp::And, mask, vg, 31);
        k.alu(AluOp::Srl, v, v, mask);
        k.alu(AluOp::And, v, v, 1);
        k.branch(Cond::Eq, v, 0, &p1_next);
        // Undiscovered?
        k.mul(p, i, 4);
        k.add(p, p, lb);
        k.lw(v, p, 0);
        k.branch(Cond::Ne, v, -1, &p1_next);
        // Claim: level = depth, active bit set (owned-index space).
        k.sw(depth, p, 0);
        k.movi(changed, 1);
        k.alu(AluOp::Srl, word, vo, 5);
        k.mul(p, word, 4);
        k.add(p, p, active as i32);
        k.alu(AluOp::And, mask, vo, 31);
        k.movi(v, 1);
        k.alu(AluOp::Sll, v, v, mask);
        k.lw(m, p, 0);
        k.alu(AluOp::Or, m, m, v);
        k.sw(m, p, 0);
        k.place(&p1_next);
        k.add(i, i, 1);
        k.branch(Cond::Ltu, i, cnt, &p1_each);
        if !flat {
            // Write the level block back if it changed.
            let no_wb = k.fresh_label("no_wb");
            k.branch(Cond::Eq, changed, 0, &no_wb);
            k.mul(m, blk, 4);
            params.load(&mut k, p, "level_base");
            k.add(m, m, p);
            k.mul(v, cnt, 4);
            k.sdma(lb, m, v);
            k.place(&no_wb);
        }
        k.add(blk, blk, (n_tasklets * VBLOCK) as i32);
        k.jump(&p1_outer);
        k.place(&p1_done);
        k.release_reg("lb");
        k.release_reg("changed");
        k.release_reg("vg");
    }
    bar.wait(&mut k, [p, m, v]);

    // ---- Phase 2: expand active vertices into next_front. ----
    {
        let [lo, hi, nn, pc2] = k.regs(["lo", "hi", "nn", "pc2"]);
        let [pend, u, bit] = k.regs(["pend", "u", "bit"]);
        k.mul(blk, t, VBLOCK as i32);
        let p2_done = k.fresh_label("p2_done");
        let p2_outer = k.label_here("p2_outer");
        k.branch(Cond::Geu, blk, owned, &p2_done);
        k.sub(cnt, owned, blk);
        k.alu(AluOp::Min, cnt, cnt, VBLOCK as i32);
        k.movi(i, 0);
        let p2_each = k.label_here("p2_each");
        let p2_next = k.fresh_label("p2_next");
        k.add(vo, blk, i);
        // Active?
        k.alu(AluOp::Srl, word, vo, 5);
        k.mul(p, word, 4);
        k.add(p, p, active as i32);
        k.lw(v, p, 0);
        k.alu(AluOp::And, mask, vo, 31);
        k.alu(AluOp::Srl, v, v, mask);
        k.alu(AluOp::And, v, v, 1);
        k.branch(Cond::Eq, v, 0, &p2_next);
        // lo, hi = rowptr[vo], rowptr[vo+1].
        k.mul(m, vo, 4);
        params.load(&mut k, p, "rp_base");
        k.add(m, m, p);
        if flat {
            k.lw(lo, m, 0);
            k.lw(hi, m, 4);
        } else {
            k.mul(p, t, 8);
            k.add(p, p, rp_buf as i32);
            k.ldma(p, m, 8);
            k.lw(lo, p, 0);
            k.lw(hi, p, 4);
        }
        // Neighbour chunks.
        let chunk_loop = k.label_here("chunk_loop");
        k.branch(Cond::Geu, lo, hi, &p2_next);
        k.sub(nn, hi, lo);
        k.alu(AluOp::Min, nn, nn, NCHUNK as i32);
        if flat {
            k.mul(m, lo, 4);
            params.load(&mut k, p, "col_base");
            k.add(pc2, m, p);
            k.mul(v, nn, 4);
            k.add(pend, pc2, v);
        } else {
            k.mul(m, lo, 4);
            params.load(&mut k, p, "col_base");
            k.add(m, m, p);
            k.mul(pc2, t, (NCHUNK * 4) as i32);
            k.add(pc2, pc2, col_buf as i32);
            k.mul(v, nn, 4);
            k.ldma(pc2, m, v);
            k.add(pend, pc2, v);
        }
        let scatter = k.label_here("scatter");
        k.lw(u, pc2, 0);
        // Set next_front bit u under mutex[word % 64].
        k.alu(AluOp::Srl, word, u, 5);
        k.alu(AluOp::And, bit, word, N_MUTEXES as i32 - 1);
        k.add(bit, bit, mutex_base as i32);
        k.mul(p, word, 4);
        k.add(p, p, next_front as i32);
        k.alu(AluOp::And, mask, u, 31);
        k.movi(v, 1);
        k.alu(AluOp::Sll, v, v, mask);
        k.acquire(bit);
        k.lw(m, p, 0);
        k.alu(AluOp::Or, m, m, v);
        k.sw(m, p, 0);
        k.release(bit);
        k.add(pc2, pc2, 4);
        k.branch(Cond::Ltu, pc2, pend, &scatter);
        k.add(lo, lo, nn);
        k.jump(&chunk_loop);
        k.place(&p2_next);
        k.add(i, i, 1);
        k.branch(Cond::Ltu, i, cnt, &p2_each);
        k.add(blk, blk, (n_tasklets * VBLOCK) as i32);
        k.jump(&p2_outer);
        k.place(&p2_done);
    }
    k.stop();
    (k.build().expect("BFS kernel builds"), params)
}

/// A CSR digraph.
struct Graph {
    v: usize,
    rowptr: Vec<i32>,
    colidx: Vec<i32>,
}

fn generate(v: usize, e: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut adj: Vec<Vec<i32>> = vec![Vec::new(); v];
    for _ in 0..e {
        let a = rng.gen_range(0..v);
        let b = rng.gen_range(0..v) as i32;
        adj[a].push(b);
    }
    let mut rowptr = Vec::with_capacity(v + 1);
    rowptr.push(0i32);
    let mut colidx = Vec::new();
    for l in &mut adj {
        l.sort_unstable();
        colidx.extend_from_slice(l);
        rowptr.push(colidx.len() as i32);
    }
    Graph { v, rowptr, colidx }
}

fn reference(g: &Graph, src: usize) -> Vec<i32> {
    let mut levels = vec![-1i32; g.v];
    levels[src] = 0;
    let mut frontier = vec![src];
    let mut depth = 0;
    while !frontier.is_empty() {
        depth += 1;
        let mut next = Vec::new();
        for &v in &frontier {
            for idx in g.rowptr[v] as usize..g.rowptr[v + 1] as usize {
                let u = g.colidx[idx] as usize;
                if levels[u] == -1 {
                    levels[u] = depth;
                    next.push(u);
                }
            }
        }
        frontier = next;
    }
    levels
}

impl Workload for Bfs {
    fn name(&self) -> &'static str {
        "BFS"
    }

    fn run(&self, size: DatasetSize, rc: &RunConfig) -> Result<WorkloadRun, SimError> {
        let (vtotal, edges) = datasets::bfs(size);
        let g = generate(vtotal, edges, 0x42_4653);
        let expect = reference(&g, 0);
        let n_dpus = rc.n_dpus as usize;
        assert_eq!(
            vtotal % (VBLOCK as usize * n_dpus),
            0,
            "vertex count must split into {VBLOCK}-aligned bands"
        );
        let owned = vtotal / n_dpus;
        let (program, params) = kernel(rc.dpu.n_tasklets, vtotal as u32, rc.cached());
        let mut sys = PimSystem::new(rc.n_dpus, rc.dpu.clone(), rc.xfer);
        sys.load(&program)?;
        // Per-DPU CSR slices (rowptr rebased) and level arrays.
        let bands: Vec<std::ops::Range<usize>> =
            (0..n_dpus).map(|d| d * owned..(d + 1) * owned).collect();
        let rp_slices: Vec<Vec<i32>> = bands
            .iter()
            .map(|b| {
                let base = g.rowptr[b.start];
                g.rowptr[b.start..=b.end].iter().map(|x| x - base).collect()
            })
            .collect();
        let col_slices: Vec<Vec<i32>> = bands
            .iter()
            .map(|b| g.colidx[g.rowptr[b.start] as usize..g.rowptr[b.end] as usize].to_vec())
            .collect();
        let rp_cap = ((owned + 1) as u32 * 4).div_ceil(8) * 8 + crate::common::REGION_SKEW;
        let col_cap =
            (col_slices.iter().map(|s| s.len().max(1)).max().unwrap() as u32 * 4).div_ceil(8) * 8
                + crate::common::REGION_SKEW;
        let lvl_cap = (owned as u32 * 4).div_ceil(8) * 8 + crate::common::REGION_SKEW;
        let (rp_base, col_base, level_base) = (0u32, rp_cap, rp_cap + col_cap);
        let flat_base = if rc.cached() {
            assert_eq!(rc.n_dpus, 1, "cache-centric runs are single-DPU");
            program.heap_base.div_ceil(64) * 64
        } else {
            0
        };
        let stage = |sys: &mut PimSystem, base: u32, chunks: &[Vec<u8>]| {
            if rc.cached() {
                sys.dpu_mut(0).write_wram(flat_base + base, &chunks[0]);
            } else {
                sys.push_to_mram(base, &chunks.iter().map(Vec::as_slice).collect::<Vec<_>>());
            }
        };
        stage(&mut sys, rp_base, &rp_slices.iter().map(|s| to_bytes(s)).collect::<Vec<_>>());
        stage(&mut sys, col_base, &col_slices.iter().map(|s| to_bytes(s)).collect::<Vec<_>>());
        stage(
            &mut sys,
            level_base,
            &(0..n_dpus).map(|_| to_bytes(&vec![-1i32; owned])).collect::<Vec<_>>(),
        );
        let _ = lvl_cap;
        // Level-synchronous host loop.
        let front_words = vtotal / 32;
        let mut in_front = vec![0u32; front_words];
        in_front[0] = 1; // vertex 0
        let mut depth: u32 = 0;
        let mut per_dpu: Vec<pim_dpu::DpuRunStats> = Vec::new();
        // Per-level frontier readback reuses one buffer across iterations.
        let mut nexts: Vec<Vec<u8>> = Vec::new();
        loop {
            let front_bytes: Vec<u8> = in_front.iter().flat_map(|w| w.to_le_bytes()).collect();
            sys.broadcast_to_symbol("in_front", &front_bytes);
            let pbs: Vec<Vec<u8>> = (0..n_dpus)
                .map(|d| {
                    params.bytes(&[
                        ("depth", depth),
                        ("owned", owned as u32),
                        ("vs", (d * owned) as u32),
                        ("rp_base", flat_base + rp_base),
                        ("col_base", flat_base + col_base),
                        ("level_base", flat_base + level_base),
                    ])
                })
                .collect();
            sys.push_to_symbol("params", &pbs.iter().map(Vec::as_slice).collect::<Vec<_>>());
            let report = sys.launch_all()?;
            if per_dpu.is_empty() {
                per_dpu = report.per_dpu;
            } else {
                for (acc, s) in per_dpu.iter_mut().zip(&report.per_dpu) {
                    acc.merge(s);
                }
            }
            // OR the per-DPU next frontiers on the host.
            sys.pull_from_symbol_into("next_front", &mut nexts);
            let mut merged = vec![0u32; front_words];
            for nf in &nexts {
                for (w, c) in merged.iter_mut().zip(nf.chunks_exact(4)) {
                    *w |= u32::from_le_bytes(c.try_into().expect("4B word"));
                }
            }
            if merged.iter().all(|w| *w == 0) {
                break;
            }
            in_front = merged;
            depth += 1;
            assert!(depth as usize <= vtotal, "BFS failed to converge");
        }
        // Gather levels.
        let got: Vec<i32> = if rc.cached() {
            from_bytes(&sys.dpu(0).read_wram(flat_base + level_base, owned as u32 * 4))
        } else {
            crate::common::parallel_pull_words(
                &mut sys,
                level_base,
                &vec![owned as u32 * 4; n_dpus],
            )
            .into_iter()
            .flatten()
            .collect()
        };
        Ok(crate::common::finish_run(&mut sys, per_dpu, validate_words("BFS", &got, &expect)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_dpu::DpuConfig;

    #[test]
    fn bfs_tiny_thread_sweep() {
        for t in [1, 4, 16] {
            Bfs.run(DatasetSize::Tiny, &RunConfig::single(DpuConfig::paper_baseline(t)))
                .unwrap()
                .assert_valid();
        }
    }

    #[test]
    fn bfs_tiny_multi_dpu() {
        Bfs.run(DatasetSize::Tiny, &RunConfig::multi(4, DpuConfig::paper_baseline(4)))
            .unwrap()
            .assert_valid();
    }

    #[test]
    fn bfs_tiny_cache_mode() {
        let cfg = DpuConfig::paper_baseline(4).with_paper_caches();
        Bfs.run(DatasetSize::Tiny, &RunConfig::single(cfg)).unwrap().assert_valid();
    }

    #[test]
    fn bfs_uses_multiple_launches() {
        let run =
            Bfs.run(DatasetSize::Tiny, &RunConfig::single(DpuConfig::paper_baseline(4))).unwrap();
        assert!(run.timeline.launches > 2, "BFS must iterate levels through the host");
    }
}
