//! **SCAN-SSA** and **SCAN-RSS** — inclusive prefix sum, in PrIM's two
//! flavours. Table II: 256K / 1M elements.
//!
//! * **SSA** (scan-scan-add): every tasklet locally scans its range and
//!   writes the partial result to the output; after a barrier the tasklet
//!   offsets are scanned and a third pass *adds* them to the written
//!   output — paying an extra read-modify-write over the output array.
//! * **RSS** (reduce-then-scan): a first pass only *reduces* each range;
//!   after the barrier each tasklet re-reads its input and scans directly
//!   with its final offset, writing the output once.
//!
//! Multi-DPU runs launch twice with a host-side scan of the per-DPU totals
//! in between — the pattern that makes the SCANs transfer-dominated in the
//! paper's Fig 10.

use pim_asm::{Barrier, DpuProgram, KernelBuilder};
use pim_dpu::SimError;
use pim_host::PimSystem;
use pim_isa::{AluOp, Cond};
use pim_rng::StdRng;

use crate::common::{
    chunk_range, emit_tasklet_byte_range, from_bytes, to_bytes, validate_words, Params,
};
use crate::{datasets, DatasetSize, RunConfig, Workload, WorkloadRun};

const BLOCK: u32 = 1024;

/// Which SCAN flavour a kernel implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Flavour {
    Ssa,
    Rss,
}

/// The SCAN-SSA workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScanSsa;

/// The SCAN-RSS workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScanRss;

/// Builds the kernel. Modes (the `mode` parameter):
/// * SSA: `0` = local scan + tasklet-offset add + publish total;
///   `1` = add `base_add` to the whole output range.
/// * RSS: `0` = reduce + publish total only;
///   `1` = reduce, then scan with `base_add` + tasklet offset.
#[allow(clippy::too_many_lines)]
fn kernel(n_tasklets: u32, flat: bool, flavour: Flavour) -> (DpuProgram, Params) {
    let mut k = KernelBuilder::new();
    let params = Params::define(&mut k, &["nbytes", "in_base", "out_base", "mode", "base_add"]);
    let sums = k.global_zeroed("sums", 4 * n_tasklets);
    let _total = k.global_zeroed("dpu_total", 4);
    let bar = Barrier::alloc(&mut k, n_tasklets);
    let buf = if flat { 0 } else { k.alloc_wram(BLOCK * n_tasklets, 8) };

    let [nbytes, t, start, end] = k.regs(["nbytes", "t", "start", "end"]);
    let [acc, off, len, m] = k.regs(["acc", "off", "len", "m"]);
    let [p, e2, v, wbuf] = k.regs(["p", "e2", "v", "wbuf"]);
    let mode = k.reg("mode");
    params.load(&mut k, nbytes, "nbytes");
    params.load(&mut k, mode, "mode");
    k.tid(t);
    emit_tasklet_byte_range(&mut k, nbytes, t, start, end, n_tasklets);
    if !flat {
        k.mul(wbuf, t, BLOCK as i32);
        k.add(wbuf, wbuf, buf as i32);
    }

    // Blockwise pass over [start, end): op selects the body.
    //   0 = reduce from `in`, 1 = scan from `in` to `out` (acc carries and
    //   is pre-seeded), 2 = add `acc` to `out` in place.
    let emit_blocks = |k: &mut KernelBuilder, op: u8| {
        let src = if op == 2 { "out_base" } else { "in_base" };
        if flat {
            let done = k.fresh_label("blk_done");
            params.load(k, m, src);
            k.add(p, m, start);
            k.add(e2, m, end);
            let dst = k.reg("dst");
            params.load(k, dst, "out_base");
            k.add(dst, dst, start);
            k.branch(Cond::Geu, p, e2, &done);
            let scan = k.label_here("scan");
            k.lw(v, p, 0);
            match op {
                0 => k.add(acc, acc, v),
                1 => {
                    k.add(acc, acc, v);
                    k.sw(acc, dst, 0);
                }
                _ => {
                    k.add(v, v, acc);
                    k.sw(v, p, 0);
                }
            }
            k.add(p, p, 4);
            k.add(dst, dst, 4);
            k.branch(Cond::Ltu, p, e2, &scan);
            k.place(&done);
            k.release_reg("dst");
        } else {
            k.mov(off, start);
            let done = k.fresh_label("blk_done");
            let outer = k.label_here("outer");
            k.branch(Cond::Geu, off, end, &done);
            k.sub(len, end, off);
            k.alu(AluOp::Min, len, len, BLOCK as i32);
            params.load(k, m, src);
            k.add(m, m, off);
            k.ldma(wbuf, m, len);
            k.mov(p, wbuf);
            k.add(e2, wbuf, len);
            let scan = k.label_here("scan");
            k.lw(v, p, 0);
            match op {
                0 => k.add(acc, acc, v),
                1 => {
                    k.add(acc, acc, v);
                    k.sw(acc, p, 0);
                }
                _ => {
                    k.add(v, v, acc);
                    k.sw(v, p, 0);
                }
            }
            k.add(p, p, 4);
            k.branch(Cond::Ltu, p, e2, &scan);
            if op != 0 {
                // Write the transformed block out.
                params.load(k, m, "out_base");
                k.add(m, m, off);
                k.sdma(wbuf, m, len);
            }
            k.add(off, off, len);
            k.jump(&outer);
            k.place(&done);
        }
    };

    // SSA mode 1 / shared epilogue label.
    let finish = k.fresh_label("finish");

    match flavour {
        Flavour::Ssa => {
            let add_mode = k.fresh_label("add_mode");
            k.branch(Cond::Ne, mode, 0, &add_mode);
            // mode 0: local scan to out.
            k.movi(acc, 0);
            emit_blocks(&mut k, 1);
            // sums[t] = acc; barrier; offset; add pass over out.
            k.mul(p, t, 4);
            k.add(p, p, sums as i32);
            k.sw(acc, p, 0);
            bar.wait(&mut k, [p, e2, v]);
            emit_offset_and_total(&mut k, &params, sums, n_tasklets, acc, t, p, e2, v);
            // Add the tasklet offset over this range (tasklet 0 skips: 0).
            let skip_add = k.fresh_label("skip_add");
            k.branch(Cond::Eq, acc, 0, &skip_add);
            emit_blocks(&mut k, 2);
            k.place(&skip_add);
            k.jump(&finish);
            // mode 1: add the host-provided DPU base over the range.
            k.place(&add_mode);
            params.load(&mut k, acc, "base_add");
            emit_blocks(&mut k, 2);
        }
        Flavour::Rss => {
            // Both modes start with the reduce pass.
            k.movi(acc, 0);
            emit_blocks(&mut k, 0);
            k.mul(p, t, 4);
            k.add(p, p, sums as i32);
            k.sw(acc, p, 0);
            bar.wait(&mut k, [p, e2, v]);
            emit_offset_and_total(&mut k, &params, sums, n_tasklets, acc, t, p, e2, v);
            // mode 0: totals only.
            k.branch(Cond::Eq, mode, 0, &finish);
            // mode 1: scan with base_add + tasklet offset.
            params.load(&mut k, v, "base_add");
            k.add(acc, acc, v);
            emit_blocks(&mut k, 1);
        }
    }
    k.place(&finish);
    k.stop();
    (k.build().expect("SCAN kernel builds"), params)
}

/// After the barrier: `acc = Σ sums[0..t]` (exclusive tasklet offset) and
/// tasklet 0 publishes the DPU total.
#[allow(clippy::too_many_arguments)]
fn emit_offset_and_total(
    k: &mut KernelBuilder,
    _params: &Params,
    sums: u32,
    n_tasklets: u32,
    acc: pim_isa::Reg,
    t: pim_isa::Reg,
    p: pim_isa::Reg,
    e2: pim_isa::Reg,
    v: pim_isa::Reg,
) {
    k.movi(acc, 0);
    k.movi(p, sums as i32);
    k.mul(e2, t, 4);
    k.add(e2, e2, sums as i32);
    let done = k.fresh_label("off_done");
    k.branch(Cond::Geu, p, e2, &done);
    let lp = k.label_here("off_loop");
    k.lw(v, p, 0);
    k.add(acc, acc, v);
    k.add(p, p, 4);
    k.branch(Cond::Ltu, p, e2, &lp);
    k.place(&done);
    // Tasklet T-1 computes the grand total = its offset + its own sum.
    let not_last = k.fresh_label("not_last");
    k.branch(Cond::Ne, t, n_tasklets as i32 - 1, &not_last);
    k.mul(p, t, 4);
    k.add(p, p, sums as i32);
    k.lw(v, p, 0);
    k.add(v, v, acc);
    k.movi(p, 0); // "dpu_total" is the second global: sums + 4*T
    k.movi(p, (sums + 4 * n_tasklets) as i32);
    k.sw(v, p, 0);
    k.place(&not_last);
}

fn run_scan(flavour: Flavour, size: DatasetSize, rc: &RunConfig) -> Result<WorkloadRun, SimError> {
    let n = datasets::scan(size);
    let seed = if flavour == Flavour::Ssa { 0x53_5341 } else { 0x52_5353 };
    let mut rng = StdRng::seed_from_u64(seed);
    let input: Vec<i32> = (0..n).map(|_| rng.gen_range(-100..100)).collect();
    let mut expect = Vec::with_capacity(n);
    let mut acc = 0i32;
    for v in &input {
        acc = acc.wrapping_add(*v);
        expect.push(acc);
    }
    let n_dpus = rc.n_dpus as usize;
    let (program, params) = kernel(rc.dpu.n_tasklets, rc.cached(), flavour);
    let mut sys = PimSystem::new(rc.n_dpus, rc.dpu.clone(), rc.xfer);
    sys.load(&program)?;
    let cap_bytes =
        (chunk_range(n, n_dpus, 0).len() as u32 * 4).div_ceil(8) * 8 + crate::common::REGION_SKEW;
    let (in_base, out_base) = if rc.cached() {
        assert_eq!(rc.n_dpus, 1, "cache-centric runs are single-DPU");
        let base = program.heap_base.div_ceil(64) * 64;
        sys.dpu_mut(0).write_wram(base, &to_bytes(&input));
        sys.dpu_mut(0).write_wram(base + cap_bytes, &vec![0u8; n * 4]);
        (base, base + cap_bytes)
    } else {
        let chunks: Vec<Vec<u8>> =
            (0..n_dpus).map(|d| to_bytes(&input[chunk_range(n, n_dpus, d)])).collect();
        sys.push_to_mram(0, &chunks.iter().map(Vec::as_slice).collect::<Vec<_>>());
        (0, cap_bytes)
    };
    let push_params = |sys: &mut PimSystem, mode: u32, bases: &[u32]| {
        let bytes: Vec<Vec<u8>> = (0..n_dpus)
            .map(|d| {
                params.bytes(&[
                    ("nbytes", chunk_range(n, n_dpus, d).len() as u32 * 4),
                    ("in_base", in_base),
                    ("out_base", out_base),
                    ("mode", mode),
                    ("base_add", bases[d]),
                ])
            })
            .collect();
        sys.push_to_symbol("params", &bytes.iter().map(Vec::as_slice).collect::<Vec<_>>());
    };
    // Launch 1: local scan (SSA) / reduce (RSS) publishing per-DPU totals.
    push_params(
        &mut sys,
        if n_dpus == 1 && flavour == Flavour::Rss { 1 } else { 0 },
        &vec![0; n_dpus],
    );
    let mut report = sys.launch_all()?;
    if n_dpus > 1 {
        // Host-side exclusive scan of the per-DPU totals, then launch 2.
        let totals = sys.pull_from_symbol("dpu_total");
        let mut bases = Vec::with_capacity(n_dpus);
        let mut run = 0i32;
        for t in &totals {
            bases.push(run as u32);
            run = run.wrapping_add(i32::from_le_bytes(t.as_slice().try_into().expect("4B")));
        }
        push_params(&mut sys, 1, &bases);
        let second = sys.launch_all()?;
        for (a, b) in report.per_dpu.iter_mut().zip(&second.per_dpu) {
            a.merge(b);
        }
    } else if flavour == Flavour::Ssa {
        // Single-DPU SSA completed in one launch (mode 0 includes the add
        // pass); nothing further.
    }
    let lens: Vec<u32> = (0..n_dpus).map(|d| chunk_range(n, n_dpus, d).len() as u32 * 4).collect();
    let got: Vec<i32> = if rc.cached() {
        from_bytes(&sys.dpu(0).read_wram(out_base, lens[0]))
    } else {
        crate::common::parallel_pull_words(&mut sys, out_base, &lens)
            .into_iter()
            .flatten()
            .collect()
    };
    let name = if flavour == Flavour::Ssa { "SCAN-SSA" } else { "SCAN-RSS" };
    Ok(crate::common::finish_run(&mut sys, report.per_dpu, validate_words(name, &got, &expect)))
}

impl Workload for ScanSsa {
    fn name(&self) -> &'static str {
        "SCAN-SSA"
    }

    fn run(&self, size: DatasetSize, rc: &RunConfig) -> Result<WorkloadRun, SimError> {
        run_scan(Flavour::Ssa, size, rc)
    }
}

impl Workload for ScanRss {
    fn name(&self) -> &'static str {
        "SCAN-RSS"
    }

    fn run(&self, size: DatasetSize, rc: &RunConfig) -> Result<WorkloadRun, SimError> {
        run_scan(Flavour::Rss, size, rc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_dpu::DpuConfig;

    #[test]
    fn scans_tiny_thread_sweep() {
        for t in [1, 4, 16] {
            ScanSsa
                .run(DatasetSize::Tiny, &RunConfig::single(DpuConfig::paper_baseline(t)))
                .unwrap()
                .assert_valid();
            ScanRss
                .run(DatasetSize::Tiny, &RunConfig::single(DpuConfig::paper_baseline(t)))
                .unwrap()
                .assert_valid();
        }
    }

    #[test]
    fn scans_tiny_multi_dpu() {
        ScanSsa
            .run(DatasetSize::Tiny, &RunConfig::multi(4, DpuConfig::paper_baseline(4)))
            .unwrap()
            .assert_valid();
        ScanRss
            .run(DatasetSize::Tiny, &RunConfig::multi(3, DpuConfig::paper_baseline(4)))
            .unwrap()
            .assert_valid();
    }

    #[test]
    fn scans_tiny_cache_mode() {
        let cfg = DpuConfig::paper_baseline(4).with_paper_caches();
        ScanSsa.run(DatasetSize::Tiny, &RunConfig::single(cfg.clone())).unwrap().assert_valid();
        ScanRss.run(DatasetSize::Tiny, &RunConfig::single(cfg)).unwrap().assert_valid();
    }

    #[test]
    fn ssa_writes_more_dram_traffic_than_rss() {
        // The defining difference: SSA's third pass re-reads and re-writes
        // the output; RSS writes it once.
        let ssa = ScanSsa
            .run(DatasetSize::Tiny, &RunConfig::single(DpuConfig::paper_baseline(8)))
            .unwrap();
        let rss = ScanRss
            .run(DatasetSize::Tiny, &RunConfig::single(DpuConfig::paper_baseline(8)))
            .unwrap();
        let ssa_traffic = ssa.per_dpu[0].dram.bytes_read + ssa.per_dpu[0].dram.bytes_written;
        let rss_traffic = rss.per_dpu[0].dram.bytes_read + rss.per_dpu[0].dram.bytes_written;
        assert!(
            ssa_traffic > rss_traffic,
            "SSA ({ssa_traffic}) must move more bytes than RSS ({rss_traffic})"
        );
    }
}
