//! **SEL** — stream compaction: keep the odd elements, preserving order.
//! Table II: 512K / 2M elements.
//!
//! The classic two-pass structure of PrIM's SEL: each tasklet counts the
//! survivors in its contiguous range, a barrier publishes the per-tasklet
//! counts, every tasklet derives its exclusive output offset, and a second
//! pass packs survivors into WRAM and DMAs them to the compacted output.
//! Multi-DPU runs compact per DPU; the host gathers using the per-DPU
//! counts (exactly PrIM's host-side reconstruction).

use pim_asm::{Barrier, DpuProgram, KernelBuilder};
use pim_dpu::SimError;
use pim_host::PimSystem;
use pim_isa::{AluOp, Cond, Reg};
use pim_rng::StdRng;

use crate::common::{
    chunk_range, emit_tasklet_byte_range, from_bytes, to_bytes, validate_words, Params,
};
use crate::{datasets, DatasetSize, RunConfig, Workload, WorkloadRun};

const BLOCK: u32 = 1024;

/// The SEL workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sel;

/// The predicate: keep odd values.
fn keep(v: i32) -> bool {
    v & 1 == 1
}

/// Emits `w = v & 1`-style predicate evaluation; branches to `skip` when
/// the element is dropped.
fn emit_predicate(k: &mut KernelBuilder, v: Reg, w: Reg, skip: &pim_asm::LabelId) {
    k.alu(AluOp::And, w, v, 1);
    k.branch(Cond::Eq, w, 0, skip);
}

fn kernel(n_tasklets: u32, flat: bool) -> (DpuProgram, Params) {
    let mut k = KernelBuilder::new();
    let params = Params::define(&mut k, &["nbytes", "in_base", "out_base"]);
    let counts = k.global_zeroed("counts", 4 * n_tasklets);
    let bar = Barrier::alloc(&mut k, n_tasklets);
    let (buf_in, buf_out) = if flat {
        (0, 0)
    } else {
        (k.alloc_wram(BLOCK * n_tasklets, 8), k.alloc_wram(BLOCK * n_tasklets, 8))
    };
    let [nbytes, t, start, end] = k.regs(["nbytes", "t", "start", "end"]);
    let [cnt, off, len, m] = k.regs(["cnt", "off", "len", "m"]);
    let [p, e2, v, w] = k.regs(["p", "e2", "v", "w"]);
    params.load(&mut k, nbytes, "nbytes");
    k.tid(t);
    emit_tasklet_byte_range(&mut k, nbytes, t, start, end, n_tasklets);
    k.movi(cnt, 0);

    // ---- Pass 1: count survivors in [start, end). ----
    if flat {
        let p1_done = k.fresh_label("p1_done");
        params.load(&mut k, m, "in_base");
        k.add(p, m, start);
        k.add(e2, m, end);
        k.branch(Cond::Geu, p, e2, &p1_done);
        let scan = k.label_here("p1_scan");
        k.lw(v, p, 0);
        let skip = k.fresh_label("p1_skip");
        emit_predicate(&mut k, v, w, &skip);
        k.add(cnt, cnt, 1);
        k.place(&skip);
        k.add(p, p, 4);
        k.branch(Cond::Ltu, p, e2, &scan);
        k.place(&p1_done);
    } else {
        let win = k.reg("win");
        k.mul(win, t, BLOCK as i32);
        k.add(win, win, buf_in as i32);
        k.mov(off, start);
        let p1_done = k.fresh_label("p1_done");
        let p1_outer = k.label_here("p1_outer");
        k.branch(Cond::Geu, off, end, &p1_done);
        k.sub(len, end, off);
        k.alu(AluOp::Min, len, len, BLOCK as i32);
        params.load(&mut k, m, "in_base");
        k.add(m, m, off);
        k.ldma(win, m, len);
        k.mov(p, win);
        k.add(e2, win, len);
        let scan = k.label_here("p1_scan");
        k.lw(v, p, 0);
        let skip = k.fresh_label("p1_skip");
        emit_predicate(&mut k, v, w, &skip);
        k.add(cnt, cnt, 1);
        k.place(&skip);
        k.add(p, p, 4);
        k.branch(Cond::Ltu, p, e2, &scan);
        k.add(off, off, len);
        k.jump(&p1_outer);
        k.place(&p1_done);
        k.release_reg("win");
    }

    // counts[t] = cnt; barrier; offset = Σ counts[0..t].
    k.mul(p, t, 4);
    k.add(p, p, counts as i32);
    k.sw(cnt, p, 0);
    bar.wait(&mut k, [p, e2, v]);
    let outpos = k.reg("outpos");
    k.movi(outpos, 0);
    k.movi(p, counts as i32);
    k.mul(e2, t, 4);
    k.add(e2, e2, counts as i32);
    let of_done = k.fresh_label("of_done");
    k.branch(Cond::Geu, p, e2, &of_done);
    let of_loop = k.label_here("of_loop");
    k.lw(v, p, 0);
    k.add(outpos, outpos, v);
    k.add(p, p, 4);
    k.branch(Cond::Ltu, p, e2, &of_loop);
    k.place(&of_done);
    // outpos = out_base + offset * 4
    k.mul(outpos, outpos, 4);
    params.load(&mut k, v, "out_base");
    k.add(outpos, outpos, v);

    // ---- Pass 2: pack survivors and emit. ----
    if flat {
        let p2_done = k.fresh_label("p2_done");
        params.load(&mut k, m, "in_base");
        k.add(p, m, start);
        k.add(e2, m, end);
        k.branch(Cond::Geu, p, e2, &p2_done);
        let scan = k.label_here("p2_scan");
        k.lw(v, p, 0);
        let skip = k.fresh_label("p2_skip");
        emit_predicate(&mut k, v, w, &skip);
        k.sw(v, outpos, 0);
        k.add(outpos, outpos, 4);
        k.place(&skip);
        k.add(p, p, 4);
        k.branch(Cond::Ltu, p, e2, &scan);
        k.place(&p2_done);
    } else {
        let [win, wout, wb] = k.regs(["win", "wout", "wb"]);
        k.mul(win, t, BLOCK as i32);
        k.add(wout, win, buf_out as i32);
        k.add(win, win, buf_in as i32);
        k.mov(off, start);
        let p2_done = k.fresh_label("p2_done");
        let p2_outer = k.label_here("p2_outer");
        k.branch(Cond::Geu, off, end, &p2_done);
        k.sub(len, end, off);
        k.alu(AluOp::Min, len, len, BLOCK as i32);
        params.load(&mut k, m, "in_base");
        k.add(m, m, off);
        k.ldma(win, m, len);
        k.movi(wb, 0);
        k.mov(p, win);
        k.add(e2, win, len);
        let scan = k.label_here("p2_scan");
        k.lw(v, p, 0);
        let skip = k.fresh_label("p2_skip");
        emit_predicate(&mut k, v, w, &skip);
        k.add(w, wout, wb);
        k.sw(v, w, 0);
        k.add(wb, wb, 4);
        k.place(&skip);
        k.add(p, p, 4);
        k.branch(Cond::Ltu, p, e2, &scan);
        // Flush this block's survivors.
        let no_flush = k.fresh_label("no_flush");
        k.branch(Cond::Eq, wb, 0, &no_flush);
        k.sdma(wout, outpos, wb);
        k.add(outpos, outpos, wb);
        k.place(&no_flush);
        k.add(off, off, len);
        k.jump(&p2_outer);
        k.place(&p2_done);
    }
    k.stop();
    (k.build().expect("SEL kernel builds"), params)
}

impl Workload for Sel {
    fn name(&self) -> &'static str {
        "SEL"
    }

    fn run(&self, size: DatasetSize, rc: &RunConfig) -> Result<WorkloadRun, SimError> {
        let n = datasets::red_sel_uni(size);
        let mut rng = StdRng::seed_from_u64(0x53_454c);
        let input: Vec<i32> = (0..n).map(|_| rng.gen_range(-10_000..10_000)).collect();
        let expect: Vec<i32> = input.iter().copied().filter(|v| keep(*v)).collect();
        let n_dpus = rc.n_dpus as usize;
        let (program, params) = kernel(rc.dpu.n_tasklets, rc.cached());
        let mut sys = PimSystem::new(rc.n_dpus, rc.dpu.clone(), rc.xfer);
        sys.load(&program)?;
        let cap_bytes = (chunk_range(n, n_dpus, 0).len() as u32 * 4).div_ceil(8) * 8
            + crate::common::REGION_SKEW;
        let (in_base, out_base) = if rc.cached() {
            assert_eq!(rc.n_dpus, 1, "cache-centric runs are single-DPU");
            let base = program.heap_base.div_ceil(64) * 64;
            sys.dpu_mut(0).write_wram(base, &to_bytes(&input));
            sys.dpu_mut(0).write_wram(base + cap_bytes, &vec![0u8; n * 4]);
            (base, base + cap_bytes)
        } else {
            let chunks: Vec<Vec<u8>> =
                (0..n_dpus).map(|d| to_bytes(&input[chunk_range(n, n_dpus, d)])).collect();
            sys.push_to_mram(0, &chunks.iter().map(Vec::as_slice).collect::<Vec<_>>());
            (0, cap_bytes)
        };
        let param_bytes: Vec<Vec<u8>> = (0..n_dpus)
            .map(|d| {
                params.bytes(&[
                    ("nbytes", chunk_range(n, n_dpus, d).len() as u32 * 4),
                    ("in_base", in_base),
                    ("out_base", out_base),
                ])
            })
            .collect();
        sys.push_to_symbol("params", &param_bytes.iter().map(Vec::as_slice).collect::<Vec<_>>());
        let report = sys.launch_all()?;
        // Gather: per-DPU survivor counts, then the compacted prefixes.
        let counts = sys.pull_from_symbol("counts");
        let lens: Vec<u32> =
            counts.iter().map(|c| from_bytes(c).iter().sum::<i32>() as u32 * 4).collect();
        let got: Vec<i32> = if rc.cached() {
            from_bytes(&sys.dpu(0).read_wram(out_base, lens[0]))
        } else {
            crate::common::parallel_pull_words(&mut sys, out_base, &lens)
                .into_iter()
                .flatten()
                .collect()
        };
        Ok(crate::common::finish_run(
            &mut sys,
            report.per_dpu,
            validate_words("SEL", &got, &expect),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_dpu::DpuConfig;

    #[test]
    fn sel_tiny_thread_sweep() {
        for t in [1, 4, 16] {
            Sel.run(DatasetSize::Tiny, &RunConfig::single(DpuConfig::paper_baseline(t)))
                .unwrap()
                .assert_valid();
        }
    }

    #[test]
    fn sel_tiny_multi_dpu() {
        Sel.run(DatasetSize::Tiny, &RunConfig::multi(4, DpuConfig::paper_baseline(4)))
            .unwrap()
            .assert_valid();
    }

    #[test]
    fn sel_tiny_cache_mode() {
        let cfg = DpuConfig::paper_baseline(4).with_paper_caches();
        Sel.run(DatasetSize::Tiny, &RunConfig::single(cfg)).unwrap().assert_valid();
    }
}
