//! **MLP** — multi-layer perceptron inference: three square
//! fully-connected layers with ReLU activations. Table II: 3 layers × 256
//! neurons (single DPU), 3 × 1K (multi).
//!
//! Single-DPU runs execute all layers in one kernel, ping-ponging
//! activations between two shared WRAM buffers with a barrier per layer.
//! Multi-DPU runs split each layer's rows across DPUs and launch once per
//! layer, with the host gathering and re-broadcasting activations between
//! layers — the inter-DPU communication pattern PrIM's MLP uses.
//!
//! Arithmetic is `i32` with wrapping semantics (the reference wraps
//! identically, so validation is bit-exact even if activations overflow).

use pim_asm::{Barrier, DpuProgram, KernelBuilder};
use pim_dpu::SimError;
use pim_host::PimSystem;
use pim_isa::{AluOp, Cond, Reg};
use pim_rng::StdRng;

use crate::common::{chunk_range, from_bytes, to_bytes, validate_words, Params};
use crate::{datasets, DatasetSize, RunConfig, Workload, WorkloadRun};

/// Weight-row staging chunk, in words.
const CHUNK: u32 = 256;

/// The MLP workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct Mlp;

struct LayerRegs {
    rows: Reg,
    t: Reg,
    r: Reg,
    re: Reg,
    c: Reg,
    m: Reg,
    p: Reg,
    xp: Reg,
    acc: Reg,
    va: Reg,
    vx: Reg,
    wb: Reg,
}

/// Emits one `out = relu(W · in)` layer over rows `[t's share)`.
///
/// `w_base` is loaded from the parameter named `w_param` plus
/// `w_offset_bytes`; `in_addr`/`out_addr` are WRAM (or flat) addresses held
/// in registers before the call.
#[allow(clippy::too_many_arguments)]
fn emit_layer(
    k: &mut KernelBuilder,
    params: &Params,
    rg: &LayerRegs,
    cols: u32,
    n_tasklets: u32,
    w_offset_bytes: u32,
    in_addr: Reg,
    out_addr: Reg,
    rowbuf: u32,
    flat: bool,
) {
    let LayerRegs { rows, t, r, re, c, m, p, xp, acc, va, vx, wb } = *rg;
    // Row range for this tasklet.
    k.alu(AluOp::Div, m, rows, n_tasklets as i32);
    k.mul(r, m, t);
    k.add(re, r, m);
    let not_last = k.fresh_label("not_last");
    k.branch(Cond::Ne, t, n_tasklets as i32 - 1, &not_last);
    k.mov(re, rows);
    k.place(&not_last);
    let done = k.fresh_label("layer_done");
    k.branch(Cond::Geu, r, re, &done);
    let row_loop = k.label_here("row_loop");
    k.movi(acc, 0);
    k.movi(c, 0);
    let chunk_loop = k.label_here("chunk_loop");
    // Chunk of the weight row: [c, c+len) columns.
    // len = min(CHUNK, cols - c)
    k.movi(va, cols as i32);
    k.sub(va, va, c);
    k.alu(AluOp::Min, va, va, CHUNK as i32);
    // wb = w_base + w_offset + (r*cols + c)*4
    k.mul(wb, r, cols as i32);
    k.add(wb, wb, c);
    k.mul(wb, wb, 4);
    params.load(k, vx, "w_base");
    k.add(wb, wb, vx);
    k.add(wb, wb, w_offset_bytes as i32);
    if flat {
        k.mov(p, wb);
    } else {
        k.tid(p);
        k.mul(p, p, (CHUNK * 4) as i32);
        k.add(p, p, rowbuf as i32);
        k.mul(vx, va, 4);
        k.ldma(p, wb, vx);
    }
    // xp = in + c*4; dot over len words.
    k.mul(xp, c, 4);
    k.add(xp, xp, in_addr);
    k.mul(m, va, 4);
    k.add(m, m, p);
    let dot = k.label_here("dot");
    k.lw(va, p, 0);
    k.lw(vx, xp, 0);
    k.mul(va, va, vx);
    k.add(acc, acc, va);
    k.add(p, p, 4);
    k.add(xp, xp, 4);
    k.branch(Cond::Ltu, p, m, &dot);
    k.add(c, c, CHUNK as i32);
    k.branch(Cond::Ltu, c, cols as i32, &chunk_loop);
    // ReLU, store.
    k.alu(AluOp::Max, acc, acc, 0);
    k.mul(p, r, 4);
    k.add(p, p, out_addr);
    k.sw(acc, p, 0);
    k.add(r, r, 1);
    k.branch(Cond::Ltu, r, re, &row_loop);
    k.place(&done);
}

/// Builds the kernel. `layers == 3` for single-DPU (in-kernel ping-pong),
/// `layers == 1` for the per-layer multi-DPU launches.
fn kernel(n_tasklets: u32, cols: u32, layers: u32, flat: bool) -> (DpuProgram, Params) {
    let mut k = KernelBuilder::new();
    let params = Params::define(&mut k, &["rows", "w_base", "x_base", "y_base"]);
    let bar = Barrier::alloc(&mut k, n_tasklets);
    let act0 = k.global_zeroed("act0", cols * 4);
    let act1 = k.global_zeroed("act1", cols * 4);
    let rowbuf = if flat { 0 } else { k.alloc_wram(CHUNK * 4 * n_tasklets, 8) };

    let rg = LayerRegs {
        rows: k.reg("rows"),
        t: k.reg("t"),
        r: k.reg("r"),
        re: k.reg("re"),
        c: k.reg("c"),
        m: k.reg("m"),
        p: k.reg("p"),
        xp: k.reg("xp"),
        acc: k.reg("acc"),
        va: k.reg("va"),
        vx: k.reg("vx"),
        wb: k.reg("wb"),
    };
    let [in_addr, out_addr] = k.regs(["in_addr", "out_addr"]);
    params.load(&mut k, rg.rows, "rows");
    k.tid(rg.t);
    // Tasklet 0 stages x into act0.
    let x_ready = k.fresh_label("x_ready");
    k.branch(Cond::Ne, rg.t, 0, &x_ready);
    params.load(&mut k, rg.m, "x_base");
    k.movi(rg.p, act0 as i32);
    if flat {
        // Copy cols words with loads/stores.
        k.movi(rg.c, 0);
        let cp = k.label_here("xcopy");
        k.lw(rg.va, rg.m, 0);
        k.sw(rg.va, rg.p, 0);
        k.add(rg.m, rg.m, 4);
        k.add(rg.p, rg.p, 4);
        k.add(rg.c, rg.c, 1);
        k.branch(Cond::Ltu, rg.c, cols as i32, &cp);
    } else {
        k.ldma(rg.p, rg.m, (cols * 4) as i32);
    }
    k.place(&x_ready);
    bar.wait(&mut k, [rg.m, rg.p, rg.va]);

    for l in 0..layers {
        let (ia, oa) = if l % 2 == 0 { (act0, act1) } else { (act1, act0) };
        k.movi(in_addr, ia as i32);
        k.movi(out_addr, oa as i32);
        emit_layer(
            &mut k,
            &params,
            &rg,
            cols,
            n_tasklets,
            l * cols * cols * 4,
            in_addr,
            out_addr,
            rowbuf,
            flat,
        );
        bar.wait(&mut k, [rg.m, rg.p, rg.va]);
    }
    // Tasklet 0 writes the final activations (the rows this DPU computed)
    // out to y_base.
    let finish = k.fresh_label("finish");
    k.branch(Cond::Ne, rg.t, 0, &finish);
    let final_act = if layers.is_multiple_of(2) { act0 } else { act1 };
    k.movi(rg.p, final_act as i32);
    params.load(&mut k, rg.m, "y_base");
    k.mul(rg.va, rg.rows, 4);
    if flat {
        // Copy rows words to y.
        k.movi(rg.c, 0);
        let cp = k.label_here("ycopy");
        k.lw(rg.vx, rg.p, 0);
        k.sw(rg.vx, rg.m, 0);
        k.add(rg.p, rg.p, 4);
        k.add(rg.m, rg.m, 4);
        k.add(rg.c, rg.c, 1);
        k.branch(Cond::Ltu, rg.c, rg.rows, &cp);
    } else {
        k.sdma(rg.p, rg.m, rg.va);
    }
    k.place(&finish);
    k.stop();
    (k.build().expect("MLP kernel builds"), params)
}

fn reference(weights: &[Vec<i32>], x: &[i32], layers: usize, cols: usize) -> Vec<i32> {
    let mut act = x.to_vec();
    for w in weights.iter().take(layers) {
        let mut next = vec![0i32; cols];
        for (r, slot) in next.iter_mut().enumerate() {
            let dot = (0..cols)
                .map(|c| w[r * cols + c].wrapping_mul(act[c]))
                .fold(0i32, i32::wrapping_add);
            *slot = dot.max(0);
        }
        act = next;
    }
    act
}

impl Workload for Mlp {
    fn name(&self) -> &'static str {
        "MLP"
    }

    fn run(&self, size: DatasetSize, rc: &RunConfig) -> Result<WorkloadRun, SimError> {
        let (layers, cols) = datasets::mlp(size);
        let mut rng = StdRng::seed_from_u64(0x4d_4c50);
        let weights: Vec<Vec<i32>> =
            (0..layers).map(|_| (0..cols * cols).map(|_| rng.gen_range(-4..4)).collect()).collect();
        let x: Vec<i32> = (0..cols).map(|_| rng.gen_range(0..8)).collect();
        let expect = reference(&weights, &x, layers, cols);
        if rc.n_dpus == 1 {
            self.run_single(&weights, &x, &expect, cols, layers, rc)
        } else {
            self.run_multi(&weights, &x, &expect, cols, layers, rc)
        }
    }
}

impl Mlp {
    fn run_single(
        &self,
        weights: &[Vec<i32>],
        x: &[i32],
        expect: &[i32],
        cols: usize,
        layers: usize,
        rc: &RunConfig,
    ) -> Result<WorkloadRun, SimError> {
        let (program, params) = kernel(rc.dpu.n_tasklets, cols as u32, layers as u32, rc.cached());
        let mut sys = PimSystem::new(1, rc.dpu.clone(), rc.xfer);
        sys.load(&program)?;
        let w_bytes = (cols * cols * 4) as u32;
        let x_cap = (cols as u32 * 4).div_ceil(8) * 8 + crate::common::REGION_SKEW;
        let all_w: Vec<u8> = weights.iter().flat_map(|w| to_bytes(w)).collect();
        let (w_base, x_base, y_base) = if rc.cached() {
            let base = program.heap_base.div_ceil(64) * 64;
            let dpu = sys.dpu_mut(0);
            dpu.write_wram(base, &all_w);
            dpu.write_wram(base + w_bytes * layers as u32, &to_bytes(x));
            dpu.write_wram(base + w_bytes * layers as u32 + x_cap, &vec![0u8; cols * 4]);
            (base, base + w_bytes * layers as u32, base + w_bytes * layers as u32 + x_cap)
        } else {
            sys.broadcast_to_mram(0, &all_w);
            sys.broadcast_to_mram(w_bytes * layers as u32, &to_bytes(x));
            (0, w_bytes * layers as u32, w_bytes * layers as u32 + x_cap)
        };
        let pb = params.bytes(&[
            ("rows", cols as u32),
            ("w_base", w_base),
            ("x_base", x_base),
            ("y_base", y_base),
        ]);
        sys.push_to_symbol("params", &[pb.as_slice()]);
        let report = sys.launch_all()?;
        let got = if rc.cached() {
            from_bytes(&sys.dpu(0).read_wram(y_base, cols as u32 * 4))
        } else {
            from_bytes(&sys.copy_from_mram(0, y_base, cols as u32 * 4))
        };
        Ok(crate::common::finish_run(&mut sys, report.per_dpu, validate_words("MLP", &got, expect)))
    }

    #[allow(clippy::needless_range_loop)] // layer index also selects weight bases
    fn run_multi(
        &self,
        weights: &[Vec<i32>],
        x: &[i32],
        expect: &[i32],
        cols: usize,
        layers: usize,
        rc: &RunConfig,
    ) -> Result<WorkloadRun, SimError> {
        let n_dpus = rc.n_dpus as usize;
        let (program, params) = kernel(rc.dpu.n_tasklets, cols as u32, 1, false);
        let mut sys = PimSystem::new(rc.n_dpus, rc.dpu.clone(), rc.xfer);
        sys.load(&program)?;
        // Per-DPU row chunks of every layer's weights, packed contiguously.
        let max_rows = chunk_range(cols, n_dpus, 0).len();
        let w_chunk_bytes = (max_rows * cols * 4) as u32;
        for l in 0..layers {
            let chunks: Vec<Vec<u8>> = (0..n_dpus)
                .map(|d| {
                    let r = chunk_range(cols, n_dpus, d);
                    to_bytes(&weights[l][r.start * cols..r.end * cols])
                })
                .collect();
            sys.push_to_mram(
                l as u32 * w_chunk_bytes,
                &chunks.iter().map(Vec::as_slice).collect::<Vec<_>>(),
            );
        }
        let x_base = layers as u32 * w_chunk_bytes;
        let x_cap = (cols as u32 * 4).div_ceil(8) * 8 + crate::common::REGION_SKEW;
        let y_base = x_base + x_cap;
        let mut act = x.to_vec();
        let mut per_dpu: Vec<pim_dpu::DpuRunStats> = Vec::new();
        // Per-layer activation readback reuses one buffer across layers.
        let mut pull_scratch: Vec<Vec<u8>> = Vec::new();
        for l in 0..layers {
            sys.broadcast_to_mram(x_base, &to_bytes(&act));
            let pbs: Vec<Vec<u8>> = (0..n_dpus)
                .map(|d| {
                    params.bytes(&[
                        ("rows", chunk_range(cols, n_dpus, d).len() as u32),
                        ("w_base", l as u32 * w_chunk_bytes),
                        ("x_base", x_base),
                        ("y_base", y_base),
                    ])
                })
                .collect();
            sys.push_to_symbol("params", &pbs.iter().map(Vec::as_slice).collect::<Vec<_>>());
            let report = sys.launch_all()?;
            if per_dpu.is_empty() {
                per_dpu = report.per_dpu;
            } else {
                for (a, b) in per_dpu.iter_mut().zip(&report.per_dpu) {
                    a.merge(b);
                }
            }
            // Gather this layer's activations with one parallel pull.
            let lens: Vec<u32> =
                (0..n_dpus).map(|d| chunk_range(cols, n_dpus, d).len() as u32 * 4).collect();
            act =
                crate::common::parallel_pull_words_into(&mut sys, y_base, &lens, &mut pull_scratch)
                    .into_iter()
                    .flatten()
                    .collect();
        }
        Ok(crate::common::finish_run(&mut sys, per_dpu, validate_words("MLP", &act, expect)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_dpu::DpuConfig;

    #[test]
    fn mlp_tiny_thread_sweep() {
        for t in [1, 4, 16] {
            Mlp.run(DatasetSize::Tiny, &RunConfig::single(DpuConfig::paper_baseline(t)))
                .unwrap()
                .assert_valid();
        }
    }

    #[test]
    fn mlp_tiny_multi_dpu() {
        Mlp.run(DatasetSize::Tiny, &RunConfig::multi(4, DpuConfig::paper_baseline(4)))
            .unwrap()
            .assert_valid();
    }

    #[test]
    fn mlp_tiny_cache_mode() {
        let cfg = DpuConfig::paper_baseline(4).with_paper_caches();
        Mlp.run(DatasetSize::Tiny, &RunConfig::single(cfg)).unwrap().assert_valid();
    }
}
