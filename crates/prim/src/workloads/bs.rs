//! **BS** — binary search: for every query, the `lower_bound` index into a
//! sorted array. Table II: 32K elements / 4K queries (single DPU), 128K /
//! 16K (multi).
//!
//! BS is the paper's canonical *memory-bound, low-TLP* workload (Figs 5–8)
//! and the star of the cache-vs-scratchpad study (Figs 15–16): the
//! scratchpad kernel cannot know which probe it will need next, so each
//! probe stages a fixed 256 B block around `mid` and uses 4 bytes of it —
//! the "severe overfetching" the paper measures at 5.1× versus on-demand
//! caching, which instead fetches 64 B lines and reuses the hot top of the
//! search tree across queries.

use pim_asm::{DpuProgram, KernelBuilder};
use pim_dpu::SimError;
use pim_host::PimSystem;
use pim_isa::{AluOp, Cond};
use pim_rng::StdRng;

use crate::common::{
    chunk_range, emit_tasklet_byte_range, from_bytes, to_bytes, validate_words, Params,
};
use crate::{datasets, DatasetSize, RunConfig, Workload, WorkloadRun};

/// Query/output staging block (bytes).
const QBLOCK: u32 = 512;
/// Probe staging block (bytes): what the scratchpad kernel speculatively
/// fetches around each `mid`.
const PROBE: u32 = 256;

/// The BS workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct Bs;

fn kernel(n_tasklets: u32, flat: bool) -> (DpuProgram, Params) {
    let mut k = KernelBuilder::new();
    let params = Params::define(&mut k, &["n_elems", "qbytes", "arr_base", "q_base", "out_base"]);
    let (buf_q, buf_o, buf_p) = if flat {
        (0, 0, 0)
    } else {
        (
            k.alloc_wram(QBLOCK * n_tasklets, 8),
            k.alloc_wram(QBLOCK * n_tasklets, 8),
            k.alloc_wram(PROBE * n_tasklets, 8),
        )
    };
    let [nel, t, start, end] = k.regs(["nel", "t", "start", "end"]);
    let [off, len, m, p] = k.regs(["off", "len", "m", "p"]);
    let [e2, q, lo, hi] = k.regs(["e2", "q", "lo", "hi"]);
    let [mid, v, tmp] = k.regs(["mid", "v", "tmp"]);
    params.load(&mut k, nel, "n_elems");
    params.load(&mut k, tmp, "qbytes");
    k.tid(t);
    emit_tasklet_byte_range(&mut k, tmp, t, start, end, n_tasklets);

    // Emits the binary search on `q`; leaves the lower_bound in `lo`.
    let emit_search = |k: &mut KernelBuilder| {
        k.movi(lo, 0);
        k.mov(hi, nel);
        let search_done = k.fresh_label("search_done");
        let step = k.label_here("step");
        k.branch(Cond::Geu, lo, hi, &search_done);
        // mid = (lo + hi) / 2
        k.add(mid, lo, hi);
        k.alu(AluOp::Srl, mid, mid, 1);
        if flat {
            // v = arr[mid], straight from the flat space.
            k.mul(v, mid, 4);
            params.load(k, tmp, "arr_base");
            k.add(v, v, tmp);
            k.lw(v, v, 0);
        } else {
            // Stage the PROBE-byte block containing mid, use one word.
            let pb = k.reg("pb");
            k.mul(pb, mid, 4);
            k.alu(AluOp::And, tmp, pb, !(PROBE as i32 - 1));
            params.load(k, v, "arr_base");
            k.add(v, v, tmp);
            // per-tasklet probe buffer
            k.tid(tmp);
            k.mul(tmp, tmp, PROBE as i32);
            k.add(tmp, tmp, buf_p as i32);
            k.ldma(tmp, v, PROBE as i32);
            // v = probe_buf[(mid*4) % PROBE]
            k.alu(AluOp::And, pb, pb, PROBE as i32 - 1);
            k.add(pb, pb, tmp);
            k.lw(v, pb, 0);
            k.release_reg("pb");
        }
        let go_hi = k.fresh_label("go_hi");
        k.branch(Cond::Ge, v, q, &go_hi);
        k.add(lo, mid, 1);
        k.jump(&step);
        k.place(&go_hi);
        k.mov(hi, mid);
        k.jump(&step);
        k.place(&search_done);
    };

    if flat {
        let done = k.fresh_label("done");
        k.branch(Cond::Geu, start, end, &done);
        k.mov(off, start);
        let each = k.label_here("each");
        params.load(&mut k, p, "q_base");
        k.add(p, p, off);
        k.lw(q, p, 0);
        emit_search(&mut k);
        params.load(&mut k, p, "out_base");
        k.add(p, p, off);
        k.sw(lo, p, 0);
        k.add(off, off, 4);
        k.branch(Cond::Ltu, off, end, &each);
        k.place(&done);
    } else {
        let [wq, wo] = k.regs(["wq", "wo"]);
        k.mul(wq, t, QBLOCK as i32);
        k.add(wo, wq, buf_o as i32);
        k.add(wq, wq, buf_q as i32);
        k.mov(off, start);
        let done = k.fresh_label("done");
        let outer = k.label_here("outer");
        k.branch(Cond::Geu, off, end, &done);
        k.sub(len, end, off);
        k.alu(AluOp::Min, len, len, QBLOCK as i32);
        params.load(&mut k, m, "q_base");
        k.add(m, m, off);
        k.ldma(wq, m, len);
        k.mov(p, wq);
        k.add(e2, wq, len);
        let each = k.label_here("each");
        k.lw(q, p, 0);
        emit_search(&mut k);
        // out_block[p - wq] = lo
        k.sub(m, p, wq);
        k.add(m, m, wo);
        k.sw(lo, m, 0);
        k.add(p, p, 4);
        k.branch(Cond::Ltu, p, e2, &each);
        params.load(&mut k, m, "out_base");
        k.add(m, m, off);
        k.sdma(wo, m, len);
        k.add(off, off, len);
        k.jump(&outer);
        k.place(&done);
    }
    k.stop();
    (k.build().expect("BS kernel builds"), params)
}

impl Workload for Bs {
    fn name(&self) -> &'static str {
        "BS"
    }

    fn run(&self, size: DatasetSize, rc: &RunConfig) -> Result<WorkloadRun, SimError> {
        let (n, n_queries) = datasets::bs(size);
        let mut rng = StdRng::seed_from_u64(0x4253);
        let mut arr: Vec<i32> = (0..n).map(|_| rng.gen_range(0..1_000_000)).collect();
        arr.sort_unstable();
        let queries: Vec<i32> = (0..n_queries).map(|_| rng.gen_range(0..1_000_000)).collect();
        let expect: Vec<i32> =
            queries.iter().map(|q| arr.partition_point(|v| v < q) as i32).collect();
        let n_dpus = rc.n_dpus as usize;
        let (program, params) = kernel(rc.dpu.n_tasklets, rc.cached());
        let mut sys = PimSystem::new(rc.n_dpus, rc.dpu.clone(), rc.xfer);
        sys.load(&program)?;
        let arr_bytes = (n as u32 * 4).div_ceil(8) * 8 + crate::common::REGION_SKEW;
        let qcap = (chunk_range(n_queries, n_dpus, 0).len() as u32 * 4).div_ceil(8) * 8
            + crate::common::REGION_SKEW;
        let (arr_base, q_base, out_base) = if rc.cached() {
            assert_eq!(rc.n_dpus, 1, "cache-centric runs are single-DPU");
            let base = program.heap_base.div_ceil(64) * 64;
            let dpu = sys.dpu_mut(0);
            dpu.write_wram(base, &to_bytes(&arr));
            dpu.write_wram(base + arr_bytes, &to_bytes(&queries));
            dpu.write_wram(base + arr_bytes + qcap, &vec![0u8; n_queries * 4]);
            (base, base + arr_bytes, base + arr_bytes + qcap)
        } else {
            // The sorted array is broadcast; queries are partitioned.
            sys.broadcast_to_mram(0, &to_bytes(&arr));
            let chunks: Vec<Vec<u8>> = (0..n_dpus)
                .map(|d| to_bytes(&queries[chunk_range(n_queries, n_dpus, d)]))
                .collect();
            sys.push_to_mram(arr_bytes, &chunks.iter().map(Vec::as_slice).collect::<Vec<_>>());
            (0, arr_bytes, arr_bytes + qcap)
        };
        let param_bytes: Vec<Vec<u8>> = (0..n_dpus)
            .map(|d| {
                params.bytes(&[
                    ("n_elems", n as u32),
                    ("qbytes", chunk_range(n_queries, n_dpus, d).len() as u32 * 4),
                    ("arr_base", arr_base),
                    ("q_base", q_base),
                    ("out_base", out_base),
                ])
            })
            .collect();
        sys.push_to_symbol("params", &param_bytes.iter().map(Vec::as_slice).collect::<Vec<_>>());
        let report = sys.launch_all()?;
        let lens: Vec<u32> =
            (0..n_dpus).map(|d| chunk_range(n_queries, n_dpus, d).len() as u32 * 4).collect();
        let got: Vec<i32> = if rc.cached() {
            from_bytes(&sys.dpu(0).read_wram(out_base, lens[0]))
        } else {
            crate::common::parallel_pull_words(&mut sys, out_base, &lens)
                .into_iter()
                .flatten()
                .collect()
        };
        Ok(crate::common::finish_run(&mut sys, report.per_dpu, validate_words("BS", &got, &expect)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_dpu::DpuConfig;

    #[test]
    fn bs_tiny_thread_sweep() {
        for t in [1, 4, 16] {
            Bs.run(DatasetSize::Tiny, &RunConfig::single(DpuConfig::paper_baseline(t)))
                .unwrap()
                .assert_valid();
        }
    }

    #[test]
    fn bs_tiny_multi_dpu() {
        Bs.run(DatasetSize::Tiny, &RunConfig::multi(4, DpuConfig::paper_baseline(4)))
            .unwrap()
            .assert_valid();
    }

    #[test]
    fn bs_tiny_cache_mode() {
        let cfg = DpuConfig::paper_baseline(4).with_paper_caches();
        Bs.run(DatasetSize::Tiny, &RunConfig::single(cfg)).unwrap().assert_valid();
    }

    #[test]
    fn bs_scratchpad_overfetches_vs_cache() {
        // The Fig 16 effect: per-probe block staging reads far more DRAM
        // bytes than on-demand 64 B lines with cross-query reuse.
        let sp =
            Bs.run(DatasetSize::Tiny, &RunConfig::single(DpuConfig::paper_baseline(16))).unwrap();
        let cfg = DpuConfig::paper_baseline(16).with_paper_caches();
        let ca = Bs.run(DatasetSize::Tiny, &RunConfig::single(cfg)).unwrap();
        let sp_read = sp.per_dpu[0].dram.bytes_read;
        let ca_read = ca.per_dpu[0].dram.bytes_read;
        assert!(
            sp_read > 2 * ca_read,
            "scratchpad BS ({sp_read} B) should overfetch vs cache BS ({ca_read} B)"
        );
    }
}
