//! **RED** — parallel sum reduction. Table II: 512K / 2M elements.
//!
//! Each tasklet accumulates a partial sum over round-robin blocks staged
//! through WRAM; after a barrier, tasklet 0 folds the per-tasklet partials
//! into the `result` symbol. Multi-DPU runs reduce the per-DPU results on
//! the host, as PrIM does.

use pim_asm::{Barrier, DpuProgram, KernelBuilder};
use pim_dpu::SimError;
use pim_host::PimSystem;
use pim_isa::{AluOp, Cond};
use pim_rng::StdRng;

use crate::common::{chunk_range, emit_tasklet_byte_range, to_bytes, validate_words, Params};
use crate::{datasets, DatasetSize, RunConfig, Workload, WorkloadRun};

const BLOCK: u32 = 1024;

/// The RED workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct Red;

fn kernel(n_tasklets: u32, flat: bool) -> (DpuProgram, Params) {
    let mut k = KernelBuilder::new();
    let params = Params::define(&mut k, &["nbytes", "in_base"]);
    let partials = k.global_zeroed("partials", 4 * n_tasklets);
    let result = k.global_zeroed("result", 4);
    let bar = Barrier::alloc(&mut k, n_tasklets);
    let [nbytes, t, acc, p, end, v] = k.regs(["nbytes", "t", "acc", "p", "end", "v"]);
    params.load(&mut k, nbytes, "nbytes");
    k.tid(t);
    k.movi(acc, 0);
    if flat {
        // Walk this tasklet's contiguous share of the flat input space.
        emit_tasklet_byte_range(&mut k, nbytes, t, p, end, n_tasklets);
        let base = k.reg("base");
        params.load(&mut k, base, "in_base");
        k.add(p, p, base);
        k.add(end, end, base);
        k.release_reg("base");
        let done = k.fresh_label("done");
        k.branch(Cond::Geu, p, end, &done);
        let top = k.label_here("sum");
        k.lw(v, p, 0);
        k.add(acc, acc, v);
        k.add(p, p, 4);
        k.branch(Cond::Ltu, p, end, &top);
        k.place(&done);
    } else {
        // Round-robin 1 KB blocks staged through WRAM.
        let buf = k.alloc_wram(BLOCK * n_tasklets, 8);
        let [wbuf, blk, off, m, len] = k.regs(["wbuf", "blk", "off", "m", "len"]);
        k.mul(wbuf, t, BLOCK as i32);
        k.add(wbuf, wbuf, buf as i32);
        k.mov(blk, t);
        let merge = k.fresh_label("merge");
        let outer = k.label_here("outer");
        k.mul(off, blk, BLOCK as i32);
        k.branch(Cond::Geu, off, nbytes, &merge);
        k.sub(len, nbytes, off);
        k.alu(AluOp::Min, len, len, BLOCK as i32);
        params.load(&mut k, m, "in_base");
        k.add(m, m, off);
        k.ldma(wbuf, m, len);
        k.mov(p, wbuf);
        k.add(end, wbuf, len);
        let inner = k.label_here("inner");
        k.lw(v, p, 0);
        k.add(acc, acc, v);
        k.add(p, p, 4);
        k.branch(Cond::Ltu, p, end, &inner);
        k.add(blk, blk, n_tasklets as i32);
        k.jump(&outer);
        k.place(&merge);
    }
    // partials[t] = acc; barrier; tasklet 0 folds.
    k.mul(p, t, 4);
    k.add(p, p, partials as i32);
    k.sw(acc, p, 0);
    bar.wait(&mut k, [p, end, v]);
    let stop = k.fresh_label("stop");
    k.branch(Cond::Ne, t, 0, &stop);
    k.movi(acc, 0);
    k.movi(p, partials as i32);
    k.movi(end, (partials + 4 * n_tasklets) as i32);
    let fold = k.label_here("fold");
    k.lw(v, p, 0);
    k.add(acc, acc, v);
    k.add(p, p, 4);
    k.branch(Cond::Ltu, p, end, &fold);
    k.movi(p, result as i32);
    k.sw(acc, p, 0);
    k.place(&stop);
    k.stop();
    (k.build().expect("RED kernel builds"), params)
}

impl Workload for Red {
    fn name(&self) -> &'static str {
        "RED"
    }

    fn run(&self, size: DatasetSize, rc: &RunConfig) -> Result<WorkloadRun, SimError> {
        let n = datasets::red_sel_uni(size);
        let mut rng = StdRng::seed_from_u64(0x52_4544);
        let input: Vec<i32> = (0..n).map(|_| rng.gen_range(-10_000..10_000)).collect();
        let expect: i32 = input.iter().fold(0i32, |a, b| a.wrapping_add(*b));
        let n_dpus = rc.n_dpus as usize;
        let (program, params) = kernel(rc.dpu.n_tasklets, rc.cached());
        let mut sys = PimSystem::new(rc.n_dpus, rc.dpu.clone(), rc.xfer);
        sys.load(&program)?;
        // Stage each DPU's chunk.
        let in_base = if rc.cached() {
            assert_eq!(rc.n_dpus, 1, "cache-centric runs are single-DPU");
            let base = program.heap_base.div_ceil(64) * 64;
            sys.dpu_mut(0).write_wram(base, &to_bytes(&input));
            base
        } else {
            let chunks: Vec<Vec<u8>> =
                (0..n_dpus).map(|d| to_bytes(&input[chunk_range(n, n_dpus, d)])).collect();
            sys.push_to_mram(0, &chunks.iter().map(Vec::as_slice).collect::<Vec<_>>());
            0
        };
        let param_bytes: Vec<Vec<u8>> = (0..n_dpus)
            .map(|d| {
                params.bytes(&[
                    ("nbytes", chunk_range(n, n_dpus, d).len() as u32 * 4),
                    ("in_base", in_base),
                ])
            })
            .collect();
        sys.push_to_symbol("params", &param_bytes.iter().map(Vec::as_slice).collect::<Vec<_>>());
        let report = sys.launch_all()?;
        // Host-side final reduction across DPUs.
        let results = sys.pull_from_symbol("result");
        let got = results
            .iter()
            .map(|b| i32::from_le_bytes(b.as_slice().try_into().expect("4-byte result")))
            .fold(0i32, |a, b| a.wrapping_add(b));
        Ok(crate::common::finish_run(
            &mut sys,
            report.per_dpu,
            validate_words("RED", &[got], &[expect]),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_dpu::DpuConfig;

    #[test]
    fn red_tiny_thread_sweep() {
        for t in [1, 3, 16, 24] {
            Red.run(DatasetSize::Tiny, &RunConfig::single(DpuConfig::paper_baseline(t)))
                .unwrap()
                .assert_valid();
        }
    }

    #[test]
    fn red_tiny_multi_dpu() {
        Red.run(DatasetSize::Tiny, &RunConfig::multi(4, DpuConfig::paper_baseline(4)))
            .unwrap()
            .assert_valid();
    }

    #[test]
    fn red_tiny_cache_mode() {
        let cfg = DpuConfig::paper_baseline(4).with_paper_caches();
        Red.run(DatasetSize::Tiny, &RunConfig::single(cfg)).unwrap().assert_valid();
    }
}
