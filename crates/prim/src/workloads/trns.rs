//! **TRNS** — matrix transpose. Table II: 128K / 256K elements.
//!
//! The scratchpad kernel transposes 16×16-word tiles staged through WRAM,
//! with tiles handed out from a shared WRAM work-queue counter guarded by a
//! mutex — the dynamic-scheduling structure that, as the paper's Fig 9
//! notes for TRNS, makes lock traffic a visible fraction of the
//! instruction stream.

use pim_asm::{DpuProgram, KernelBuilder, Mutex};
use pim_dpu::SimError;
use pim_host::PimSystem;
use pim_isa::{AluOp, Cond};
use pim_rng::StdRng;

use crate::common::{emit_tasklet_byte_range, from_bytes, to_bytes, validate_words, Params};
use crate::{datasets, DatasetSize, RunConfig, Workload, WorkloadRun};

/// Tile edge in words (16×16 words = 1 KB per tile buffer).
const TILE: u32 = 16;

/// The TRNS workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct Trns;

/// Scratchpad kernel: dynamic tile queue + tiled transpose through WRAM.
fn kernel_scratchpad(n_tasklets: u32) -> (DpuProgram, Params) {
    let mut k = KernelBuilder::new();
    let params =
        Params::define(&mut k, &["rows", "cols", "in_base", "out_base", "ntiles", "tiles_x"]);
    let queue = k.global_zeroed("queue", 4);
    let mtx = Mutex::alloc(&mut k);
    let buf_in = k.alloc_wram(TILE * TILE * 4 * n_tasklets, 8);
    let buf_out = k.alloc_wram(TILE * TILE * 4 * n_tasklets, 8);

    let [tin, tout, q, tr] = k.regs(["tin", "tout", "q", "tr"]);
    let [tc, r, m, w] = k.regs(["tc", "r", "m", "w"]);
    let [v, c, p, tmp] = k.regs(["v", "c", "p", "tmp"]);
    k.tid(tin);
    k.mul(tin, tin, (TILE * TILE * 4) as i32);
    k.add(tout, tin, buf_out as i32);
    k.add(tin, tin, buf_in as i32);

    let done = k.fresh_label("done");
    let grab = k.label_here("grab");
    // q = queue++ under the mutex.
    mtx.lock(&mut k);
    k.movi(p, queue as i32);
    k.lw(q, p, 0);
    k.add(v, q, 1);
    k.sw(v, p, 0);
    mtx.unlock(&mut k);
    params.load(&mut k, tmp, "ntiles");
    k.branch(Cond::Geu, q, tmp, &done);
    // tr = q / tiles_x, tc = q % tiles_x.
    params.load(&mut k, tmp, "tiles_x");
    k.alu(AluOp::Div, tr, q, tmp);
    k.alu(AluOp::Rem, tc, q, tmp);
    // Stage the tile: 16 row segments of 64 B.
    k.movi(r, 0);
    let stage = k.label_here("stage");
    // m = in_base + ((tr*16 + r) * cols + tc*16) * 4
    k.mul(m, tr, TILE as i32);
    k.add(m, m, r);
    params.load(&mut k, tmp, "cols");
    k.mul(m, m, tmp);
    k.mul(tmp, tc, TILE as i32);
    k.add(m, m, tmp);
    k.mul(m, m, 4);
    params.load(&mut k, tmp, "in_base");
    k.add(m, m, tmp);
    k.mul(w, r, (TILE * 4) as i32);
    k.add(w, w, tin);
    k.ldma(w, m, (TILE * 4) as i32);
    k.add(r, r, 1);
    k.branch(Cond::Ltu, r, TILE as i32, &stage);
    // Transpose within WRAM: out[c][r] = in[r][c].
    k.movi(r, 0);
    let tr_outer = k.label_here("tr_outer");
    k.movi(c, 0);
    let tr_inner = k.label_here("tr_inner");
    k.mul(p, r, (TILE * 4) as i32);
    k.mul(tmp, c, 4);
    k.add(p, p, tmp);
    k.add(p, p, tin);
    k.lw(v, p, 0);
    k.mul(p, c, (TILE * 4) as i32);
    k.mul(tmp, r, 4);
    k.add(p, p, tmp);
    k.add(p, p, tout);
    k.sw(v, p, 0);
    k.add(c, c, 1);
    k.branch(Cond::Ltu, c, TILE as i32, &tr_inner);
    k.add(r, r, 1);
    k.branch(Cond::Ltu, r, TILE as i32, &tr_outer);
    // Write out: 16 column segments, each contiguous in the output.
    k.movi(c, 0);
    let wb = k.label_here("wb");
    // m = out_base + ((tc*16 + c) * rows + tr*16) * 4
    k.mul(m, tc, TILE as i32);
    k.add(m, m, c);
    params.load(&mut k, tmp, "rows");
    k.mul(m, m, tmp);
    k.mul(tmp, tr, TILE as i32);
    k.add(m, m, tmp);
    k.mul(m, m, 4);
    params.load(&mut k, tmp, "out_base");
    k.add(m, m, tmp);
    k.mul(w, c, (TILE * 4) as i32);
    k.add(w, w, tout);
    k.sdma(w, m, (TILE * 4) as i32);
    k.add(c, c, 1);
    k.branch(Cond::Ltu, c, TILE as i32, &wb);
    k.jump(&grab);
    k.place(&done);
    k.stop();
    (k.build().expect("TRNS scratchpad kernel builds"), params)
}

/// Flat kernel: contiguous row ranges, direct scatter stores.
fn kernel_flat(n_tasklets: u32) -> (DpuProgram, Params) {
    let mut k = KernelBuilder::new();
    let params =
        Params::define(&mut k, &["rows", "cols", "in_base", "out_base", "ntiles", "tiles_x"]);
    let [rows, cols, t, start] = k.regs(["rows", "cols", "t", "start"]);
    let [end, r, c, pin] = k.regs(["end", "r", "c", "pin"]);
    let [pout, v, tmp] = k.regs(["pout", "v", "tmp"]);
    params.load(&mut k, rows, "rows");
    params.load(&mut k, cols, "cols");
    k.tid(t);
    // Partition rows: treat "nbytes" as rows*4 to reuse the splitter.
    k.mul(tmp, rows, 4);
    emit_tasklet_byte_range(&mut k, tmp, t, start, end, n_tasklets);
    k.alu(AluOp::Srl, start, start, 2);
    k.alu(AluOp::Srl, end, end, 2);
    let done = k.fresh_label("done");
    k.branch(Cond::Geu, start, end, &done);
    k.mov(r, start);
    let row_loop = k.label_here("row_loop");
    k.movi(c, 0);
    // pin = in_base + r*cols*4
    k.mul(pin, r, cols);
    k.mul(pin, pin, 4);
    params.load(&mut k, tmp, "in_base");
    k.add(pin, pin, tmp);
    let col_loop = k.label_here("col_loop");
    k.lw(v, pin, 0);
    // pout = out_base + (c*rows + r)*4
    k.mul(pout, c, rows);
    k.add(pout, pout, r);
    k.mul(pout, pout, 4);
    params.load(&mut k, tmp, "out_base");
    k.add(pout, pout, tmp);
    k.sw(v, pout, 0);
    k.add(pin, pin, 4);
    k.add(c, c, 1);
    k.branch(Cond::Ltu, c, cols, &col_loop);
    k.add(r, r, 1);
    k.branch(Cond::Ltu, r, end, &row_loop);
    k.place(&done);
    k.stop();
    (k.build().expect("TRNS flat kernel builds"), params)
}

impl Workload for Trns {
    fn name(&self) -> &'static str {
        "TRNS"
    }

    fn run(&self, size: DatasetSize, rc: &RunConfig) -> Result<WorkloadRun, SimError> {
        let (rows, cols) = datasets::trns(size);
        let mut rng = StdRng::seed_from_u64(0x5452_4e53);
        let input: Vec<i32> = (0..rows * cols).map(|_| rng.gen_range(-10_000..10_000)).collect();
        // Reference transpose.
        let mut expect = vec![0i32; rows * cols];
        for r in 0..rows {
            for c in 0..cols {
                expect[c * rows + r] = input[r * cols + c];
            }
        }
        let n_dpus = rc.n_dpus as usize;
        // Row bands must stay tile-aligned.
        assert_eq!(rows % (TILE as usize * n_dpus.max(1)), 0, "rows must split into tiles");
        let band = rows / n_dpus;
        let (program, params) = if rc.cached() {
            kernel_flat(rc.dpu.n_tasklets)
        } else {
            kernel_scratchpad(rc.dpu.n_tasklets)
        };
        let mut sys = PimSystem::new(rc.n_dpus, rc.dpu.clone(), rc.xfer);
        sys.load(&program)?;
        let band_bytes = (band * cols * 4) as u32;
        let (in_base, out_base) = if rc.cached() {
            assert_eq!(rc.n_dpus, 1, "cache-centric runs are single-DPU");
            let base = program.heap_base.div_ceil(64) * 64;
            sys.dpu_mut(0).write_wram(base, &to_bytes(&input));
            sys.dpu_mut(0).write_wram(base + band_bytes, &vec![0u8; rows * cols * 4]);
            (base, base + band_bytes)
        } else {
            let chunks: Vec<Vec<u8>> = (0..n_dpus)
                .map(|d| to_bytes(&input[d * band * cols..(d + 1) * band * cols]))
                .collect();
            sys.push_to_mram(0, &chunks.iter().map(Vec::as_slice).collect::<Vec<_>>());
            (0, band_bytes)
        };
        // Each DPU transposes its band: output is cols × band.
        let tiles_x = cols as u32 / TILE;
        let ntiles = (band as u32 / TILE) * tiles_x;
        let pb = params.bytes(&[
            ("rows", band as u32),
            ("cols", cols as u32),
            ("in_base", in_base),
            ("out_base", out_base),
            ("ntiles", ntiles),
            ("tiles_x", tiles_x),
        ]);
        sys.push_to_symbol("params", &vec![pb.as_slice(); n_dpus]);
        let report = sys.launch_all()?;
        // Reassemble: DPU d's output column c covers out[c][d*band..(d+1)*band].
        let pulled: Vec<Vec<i32>> = if rc.cached() {
            vec![from_bytes(&sys.dpu(0).read_wram(out_base, (rows * cols * 4) as u32))]
        } else {
            crate::common::parallel_pull_words(&mut sys, out_base, &vec![band_bytes; n_dpus])
        };
        let mut got = vec![0i32; rows * cols];
        for (d, part) in pulled.iter().enumerate() {
            for c in 0..cols {
                for r in 0..band {
                    got[c * rows + d * band + r] = part[c * band + r];
                }
            }
        }
        Ok(crate::common::finish_run(
            &mut sys,
            report.per_dpu,
            validate_words("TRNS", &got, &expect),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_dpu::DpuConfig;
    use pim_isa::InstrClass;

    #[test]
    fn trns_tiny_thread_sweep() {
        for t in [1, 4, 16] {
            Trns.run(DatasetSize::Tiny, &RunConfig::single(DpuConfig::paper_baseline(t)))
                .unwrap()
                .assert_valid();
        }
    }

    #[test]
    fn trns_tiny_multi_dpu() {
        Trns.run(DatasetSize::Tiny, &RunConfig::multi(2, DpuConfig::paper_baseline(4)))
            .unwrap()
            .assert_valid();
    }

    #[test]
    fn trns_tiny_cache_mode() {
        let cfg = DpuConfig::paper_baseline(4).with_paper_caches();
        Trns.run(DatasetSize::Tiny, &RunConfig::single(cfg)).unwrap().assert_valid();
    }

    #[test]
    fn trns_queue_generates_sync_traffic() {
        let run =
            Trns.run(DatasetSize::Tiny, &RunConfig::single(DpuConfig::paper_baseline(16))).unwrap();
        assert!(run.per_dpu[0].class_fraction(InstrClass::Sync) > 0.0);
    }
}
