//! **GEMV** — dense matrix-vector multiply, "a key primitive in machine
//! learning which recent domain-specific PIMs are optimized for" and the
//! workload of the paper's SIMT case study (Fig 11). Table II: 2K×64
//! (single DPU), 8K×64 (multi).

use pim_asm::{Barrier, DpuProgram, KernelBuilder};
use pim_dpu::SimError;
use pim_host::PimSystem;
use pim_isa::{AluOp, Cond};
use pim_rng::StdRng;

use crate::common::{chunk_range, from_bytes, to_bytes, validate_words, Params};
use crate::{datasets, DatasetSize, RunConfig, Workload, WorkloadRun};

/// The GEMV workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct Gemv;

/// Computes `y = A·x` for `A: rows×cols` row-major. `max_rows` sizes the
/// shared WRAM output staging.
fn kernel(n_tasklets: u32, cols: u32, max_rows: u32, flat: bool) -> (DpuProgram, Params) {
    let mut k = KernelBuilder::new();
    let params = Params::define(&mut k, &["rows", "a_base", "x_base", "y_base"]);
    let bar = Barrier::alloc(&mut k, n_tasklets);
    let xbuf = if flat { 0 } else { k.alloc_wram(cols * 4, 8) };
    let ybuf = if flat { 0 } else { k.alloc_wram(max_rows * 4, 8) };
    let rowbuf = if flat { 0 } else { k.alloc_wram(cols * 4 * n_tasklets, 8) };

    let [rows, t, rs, re] = k.regs(["rows", "t", "rs", "re"]);
    let [r, m, p, xp] = k.regs(["r", "m", "p", "xp"]);
    let [acc, va, vx, rb] = k.regs(["acc", "va", "vx", "rb"]);
    params.load(&mut k, rows, "rows");
    k.tid(t);
    if !flat {
        // Tasklet 0 stages x; barrier.
        let x_ready = k.fresh_label("x_ready");
        k.branch(Cond::Ne, t, 0, &x_ready);
        params.load(&mut k, m, "x_base");
        k.movi(p, xbuf as i32);
        k.ldma(p, m, (cols * 4) as i32);
        k.place(&x_ready);
        bar.wait(&mut k, [m, p, va]);
        k.mul(rb, t, (cols * 4) as i32);
        k.add(rb, rb, rowbuf as i32);
    }
    // Contiguous row range.
    k.alu(AluOp::Div, m, rows, n_tasklets as i32);
    k.mul(rs, m, t);
    k.add(re, rs, m);
    let not_last = k.fresh_label("not_last");
    k.branch(Cond::Ne, t, n_tasklets as i32 - 1, &not_last);
    k.mov(re, rows);
    k.place(&not_last);
    let done = k.fresh_label("done");
    k.branch(Cond::Geu, rs, re, &done);
    k.mov(r, rs);
    let row_loop = k.label_here("row_loop");
    // Stage (or point at) row r.
    if flat {
        k.mul(p, r, (cols * 4) as i32);
        params.load(&mut k, m, "a_base");
        k.add(p, p, m);
        params.load(&mut k, xp, "x_base");
    } else {
        k.mul(m, r, (cols * 4) as i32);
        let ab = k.reg("ab");
        params.load(&mut k, ab, "a_base");
        k.add(m, m, ab);
        k.release_reg("ab");
        k.ldma(rb, m, (cols * 4) as i32);
        k.mov(p, rb);
        k.movi(xp, xbuf as i32);
    }
    // Dot product.
    k.movi(acc, 0);
    k.add(m, p, (cols * 4) as i32);
    let dot = k.label_here("dot");
    k.lw(va, p, 0);
    k.lw(vx, xp, 0);
    k.mul(va, va, vx);
    k.add(acc, acc, va);
    k.add(p, p, 4);
    k.add(xp, xp, 4);
    k.branch(Cond::Ltu, p, m, &dot);
    // y[r] = acc (staged in WRAM, or straight to the flat space).
    if flat {
        k.mul(p, r, 4);
        params.load(&mut k, m, "y_base");
        k.add(p, p, m);
        k.sw(acc, p, 0);
    } else {
        k.mul(p, r, 4);
        k.add(p, p, ybuf as i32);
        k.sw(acc, p, 0);
    }
    k.add(r, r, 1);
    k.branch(Cond::Ltu, r, re, &row_loop);
    if !flat {
        // Each tasklet writes its own contiguous y slice to MRAM.
        k.mul(p, rs, 4);
        k.add(p, p, ybuf as i32);
        k.sub(m, re, rs);
        k.mul(m, m, 4);
        let yb = k.reg("yb");
        params.load(&mut k, yb, "y_base");
        k.mul(va, rs, 4);
        k.add(yb, yb, va);
        k.sdma(p, yb, m);
        k.release_reg("yb");
    }
    k.place(&done);
    k.stop();
    (k.build().expect("GEMV kernel builds"), params)
}

impl Workload for Gemv {
    fn name(&self) -> &'static str {
        "GEMV"
    }

    fn run(&self, size: DatasetSize, rc: &RunConfig) -> Result<WorkloadRun, SimError> {
        let (rows, cols) = datasets::gemv(size);
        let mut rng = StdRng::seed_from_u64(0x4745_4d56);
        let a: Vec<i32> = (0..rows * cols).map(|_| rng.gen_range(-50..50)).collect();
        let x: Vec<i32> = (0..cols).map(|_| rng.gen_range(-50..50)).collect();
        let expect: Vec<i32> = (0..rows)
            .map(|r| {
                (0..cols).map(|c| a[r * cols + c].wrapping_mul(x[c])).fold(0i32, i32::wrapping_add)
            })
            .collect();
        let n_dpus = rc.n_dpus as usize;
        let max_rows = chunk_range(rows, n_dpus, 0).len() as u32;
        let (program, params) = kernel(rc.dpu.n_tasklets, cols as u32, max_rows, rc.cached());
        let mut sys = PimSystem::new(rc.n_dpus, rc.dpu.clone(), rc.xfer);
        sys.load(&program)?;
        let a_cap = (max_rows * cols as u32 * 4).div_ceil(8) * 8 + crate::common::REGION_SKEW;
        let x_cap = (cols as u32 * 4).div_ceil(8) * 8 + crate::common::REGION_SKEW;
        let (a_base, x_base, y_base) = if rc.cached() {
            assert_eq!(rc.n_dpus, 1, "cache-centric runs are single-DPU");
            let base = program.heap_base.div_ceil(64) * 64;
            let dpu = sys.dpu_mut(0);
            dpu.write_wram(base, &to_bytes(&a));
            dpu.write_wram(base + a_cap, &to_bytes(&x));
            dpu.write_wram(base + a_cap + x_cap, &vec![0u8; rows * 4]);
            (base, base + a_cap, base + a_cap + x_cap)
        } else {
            let chunks: Vec<Vec<u8>> = (0..n_dpus)
                .map(|d| {
                    let r = chunk_range(rows, n_dpus, d);
                    to_bytes(&a[r.start * cols..r.end * cols])
                })
                .collect();
            sys.push_to_mram(0, &chunks.iter().map(Vec::as_slice).collect::<Vec<_>>());
            sys.broadcast_to_mram(a_cap, &to_bytes(&x));
            (0, a_cap, a_cap + x_cap)
        };
        let pbs: Vec<Vec<u8>> = (0..n_dpus)
            .map(|d| {
                params.bytes(&[
                    ("rows", chunk_range(rows, n_dpus, d).len() as u32),
                    ("a_base", a_base),
                    ("x_base", x_base),
                    ("y_base", y_base),
                ])
            })
            .collect();
        sys.push_to_symbol("params", &pbs.iter().map(Vec::as_slice).collect::<Vec<_>>());
        let report = sys.launch_all()?;
        let lens: Vec<u32> =
            (0..n_dpus).map(|d| chunk_range(rows, n_dpus, d).len() as u32 * 4).collect();
        let got: Vec<i32> = if rc.cached() {
            from_bytes(&sys.dpu(0).read_wram(y_base, lens[0]))
        } else {
            crate::common::parallel_pull_words(&mut sys, y_base, &lens)
                .into_iter()
                .flatten()
                .collect()
        };
        Ok(crate::common::finish_run(
            &mut sys,
            report.per_dpu,
            validate_words("GEMV", &got, &expect),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_dpu::{DpuConfig, SimtConfig};

    #[test]
    fn gemv_tiny_thread_sweep() {
        for t in [1, 4, 16] {
            Gemv.run(DatasetSize::Tiny, &RunConfig::single(DpuConfig::paper_baseline(t)))
                .unwrap()
                .assert_valid();
        }
    }

    #[test]
    fn gemv_tiny_multi_dpu() {
        Gemv.run(DatasetSize::Tiny, &RunConfig::multi(4, DpuConfig::paper_baseline(4)))
            .unwrap()
            .assert_valid();
    }

    #[test]
    fn gemv_tiny_cache_mode() {
        let cfg = DpuConfig::paper_baseline(4).with_paper_caches();
        Gemv.run(DatasetSize::Tiny, &RunConfig::single(cfg)).unwrap().assert_valid();
    }

    #[test]
    fn gemv_runs_under_simt() {
        // The Fig 11 configuration: 16 tasklets = one 16-wide warp.
        let cfg = DpuConfig::paper_baseline(16)
            .with_simt(SimtConfig { coalescing: true, ..SimtConfig::default() });
        let run = Gemv.run(DatasetSize::Tiny, &RunConfig::single(cfg)).unwrap();
        run.assert_valid();
        assert_eq!(run.per_dpu[0].max_ipc, 16);
    }
}
