//! **SpMM-BSR** — sparse-times-dense matrix multiply over BSR tiles:
//! `C = A·B` with `A` block-sparse and `B` a dense row-major matrix with
//! a small number of right-hand-side columns.
//!
//! The access pattern generalizes SpMV-BSR: per stored tile the kernel
//! gathers a `block × n_rhs` slab of `B` rows at a `colidx`-dependent
//! address (one irregular DMA — the `block` source rows are contiguous in
//! row-major `B`), then runs a register-blocked triple loop accumulating
//! a `block × n_rhs` output panel in WRAM that is written back once per
//! block row.

use pim_asm::{DpuProgram, KernelBuilder};
use pim_dpu::SimError;
use pim_host::PimSystem;
use pim_isa::{AluOp, Cond};
use pim_rng::StdRng;

use crate::common::{chunk_range, validate_words, Params};
use crate::datasets::bsr;
use crate::{datasets, DatasetSize, RunConfig, Workload, WorkloadFamily, WorkloadRun};

/// The SpMM-BSR workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpmmBsr;

/// Builds the kernel, specialized on tile edge `b` and `n_rhs`.
fn kernel(n_tasklets: u32, b: u32, n_rhs: u32) -> (DpuProgram, Params) {
    let mut k = KernelBuilder::new();
    let params =
        Params::define(&mut k, &["brows", "rp_base", "col_base", "val_base", "b_base", "c_base"]);
    let panel = b * n_rhs * 4; // bytes of one B slab / C panel
    let stage = k.alloc_wram(8 * n_tasklets, 8);
    let tile_buf = k.alloc_wram(b * b * 4 * n_tasklets, 8);
    let b_buf = k.alloc_wram(panel * n_tasklets, 8);
    let c_buf = k.alloc_wram(panel * n_tasklets, 8);
    let [brows, t, r, re] = k.regs(["brows", "t", "r", "re"]);
    let [lo, hi, c, m] = k.regs(["lo", "hi", "c", "m"]);
    let [p, q, o, oc] = k.regs(["p", "q", "o", "oc"]);
    let [qe, a, w, v] = k.regs(["qe", "a", "w", "v"]);
    let [i, cc] = k.regs(["i", "cc"]);
    let [cs, tb, bb, cb] = k.regs(["cs", "tb", "bb", "cb"]);
    params.load(&mut k, brows, "brows");
    k.tid(t);
    k.mul(cs, t, 8);
    k.add(cs, cs, stage as i32);
    k.mul(tb, t, (b * b * 4) as i32);
    k.add(tb, tb, tile_buf as i32);
    k.mul(bb, t, panel as i32);
    k.add(bb, bb, b_buf as i32);
    k.mul(cb, t, panel as i32);
    k.add(cb, cb, c_buf as i32);
    // Contiguous block-row range.
    k.alu(AluOp::Div, m, brows, n_tasklets as i32);
    k.mul(r, m, t);
    k.add(re, r, m);
    let not_last = k.fresh_label("not_last");
    k.branch(Cond::Ne, t, n_tasklets as i32 - 1, &not_last);
    k.mov(re, brows);
    k.place(&not_last);
    let done = k.fresh_label("done");
    k.branch(Cond::Geu, r, re, &done);

    let row_loop = k.label_here("row_loop");
    k.mul(m, r, 4);
    params.load(&mut k, p, "rp_base");
    k.add(m, m, p);
    k.ldma(cs, m, 8);
    k.lw(lo, cs, 0);
    k.lw(hi, cs, 4);
    // Zero the C panel.
    k.movi(v, 0);
    k.mov(p, cb);
    k.add(qe, cb, panel as i32);
    let zero_loop = k.label_here("zero_panel");
    k.sw(v, p, 0);
    k.add(p, p, 4);
    k.branch(Cond::Ltu, p, qe, &zero_loop);

    let row_store = k.fresh_label("row_store");
    let blk_loop = k.label_here("blk_loop");
    k.branch(Cond::Geu, lo, hi, &row_store);
    // colidx probe, then the irregular B-slab gather.
    k.mul(m, lo, 4);
    params.load(&mut k, p, "col_base");
    k.add(m, m, p);
    k.ldma(cs, m, 4);
    k.lw(c, cs, 0);
    k.mul(c, c, panel as i32);
    params.load(&mut k, m, "b_base");
    k.add(m, m, c);
    k.ldma(bb, m, panel as i32);
    // Tile payload.
    k.mul(m, lo, (b * b * 4) as i32);
    params.load(&mut k, p, "val_base");
    k.add(m, m, p);
    k.ldma(tb, m, (b * b * 4) as i32);
    // C[i][:] += tile[i][cc] * B[cc][:].
    k.movi(i, 0);
    k.mov(p, tb);
    let i_loop = k.label_here("panel_row");
    k.mul(oc, i, (n_rhs * 4) as i32);
    k.add(oc, oc, cb);
    k.movi(cc, 0);
    k.mov(q, bb);
    let cc_loop = k.label_here("tile_col");
    k.lw(a, p, 0);
    k.add(p, p, 4);
    k.mov(o, oc);
    k.add(qe, q, (n_rhs * 4) as i32);
    let n_loop = k.label_here("rhs_col");
    k.lw(w, q, 0);
    k.mul(w, w, a);
    k.lw(v, o, 0);
    k.add(v, v, w);
    k.sw(v, o, 0);
    k.add(q, q, 4);
    k.add(o, o, 4);
    k.branch(Cond::Ltu, q, qe, &n_loop);
    k.add(cc, cc, 1);
    k.branch(Cond::Ltu, cc, b as i32, &cc_loop);
    k.add(i, i, 1);
    k.branch(Cond::Ltu, i, b as i32, &i_loop);
    k.add(lo, lo, 1);
    k.jump(&blk_loop);

    k.place(&row_store);
    k.mul(m, r, panel as i32);
    params.load(&mut k, v, "c_base");
    k.add(m, m, v);
    k.sdma(cb, m, panel as i32);
    k.add(r, r, 1);
    k.branch(Cond::Ltu, r, re, &row_loop);
    k.place(&done);
    k.stop();
    (k.build().expect("SpMM-BSR kernel builds"), params)
}

impl Workload for SpmmBsr {
    fn name(&self) -> &'static str {
        "SpMM-BSR"
    }

    fn family(&self) -> WorkloadFamily {
        WorkloadFamily::Sparse
    }

    fn supports_cache_mode(&self) -> bool {
        false
    }

    fn run(&self, size: DatasetSize, rc: &RunConfig) -> Result<WorkloadRun, SimError> {
        let (block_rows, block_cols, block, nnzb, n_rhs) = datasets::spmm_bsr(size);
        let a = bsr::generate(block_rows, block_cols, block, nnzb, 0x4253_4d4d);
        let mut rng = StdRng::seed_from_u64(0x4253_4d4e);
        let bmat: Vec<i32> = (0..a.cols() * n_rhs).map(|_| rng.gen_range(-6..6)).collect();
        let expect = bsr::spmm_reference(&a, &bmat, n_rhs);
        let n_dpus = rc.n_dpus as usize;
        let (program, params) = kernel(rc.dpu.n_tasklets, block as u32, n_rhs as u32);
        let mut sys = PimSystem::new(rc.n_dpus, rc.dpu.clone(), rc.xfer);
        sys.load(&program)?;
        let bands: Vec<std::ops::Range<usize>> =
            (0..n_dpus).map(|d| chunk_range(block_rows, n_dpus, d)).collect();
        let rp_slices: Vec<Vec<i32>> = bands
            .iter()
            .map(|bd| {
                let base = a.rowptr[bd.start];
                a.rowptr[bd.start..=bd.end].iter().map(|v| v - base).collect()
            })
            .collect();
        let blk_slices: Vec<std::ops::Range<usize>> =
            bands.iter().map(|bd| a.rowptr[bd.start] as usize..a.rowptr[bd.end] as usize).collect();
        let skew = crate::common::REGION_SKEW;
        let rp_cap =
            (rp_slices.iter().map(Vec::len).max().unwrap_or(1) as u32 * 4).div_ceil(8) * 8 + skew;
        let col_cap = (blk_slices.iter().map(|s| s.len().max(1)).max().unwrap_or(1) as u32 * 4)
            .div_ceil(8)
            * 8
            + skew;
        let val_cap = col_cap.saturating_sub(skew) * (block * block) as u32 + skew;
        let b_cap = ((a.cols() * n_rhs) as u32 * 4).div_ceil(8) * 8 + skew;
        let rp_base = 0u32;
        let col_base = rp_cap;
        let val_base = col_base + col_cap;
        let b_base = val_base + val_cap;
        let c_base = b_base + b_cap;
        let rp_chunks: Vec<Vec<u8>> =
            rp_slices.iter().map(|s| crate::common::to_bytes(s)).collect();
        let col_chunks: Vec<Vec<u8>> =
            blk_slices.iter().map(|s| crate::common::to_bytes(&a.colidx[s.clone()])).collect();
        let val_chunks: Vec<Vec<u8>> = blk_slices
            .iter()
            .map(|s| {
                crate::common::to_bytes(&a.vals[s.start * block * block..s.end * block * block])
            })
            .collect();
        sys.push_to_mram(rp_base, &rp_chunks.iter().map(Vec::as_slice).collect::<Vec<_>>());
        sys.push_to_mram(col_base, &col_chunks.iter().map(Vec::as_slice).collect::<Vec<_>>());
        sys.push_to_mram(val_base, &val_chunks.iter().map(Vec::as_slice).collect::<Vec<_>>());
        sys.broadcast_to_mram(b_base, &crate::common::to_bytes(&bmat));
        let pbs: Vec<Vec<u8>> = bands
            .iter()
            .map(|bd| {
                params.bytes(&[
                    ("brows", bd.len() as u32),
                    ("rp_base", rp_base),
                    ("col_base", col_base),
                    ("val_base", val_base),
                    ("b_base", b_base),
                    ("c_base", c_base),
                ])
            })
            .collect();
        sys.push_to_symbol("params", &pbs.iter().map(Vec::as_slice).collect::<Vec<_>>());
        let report = sys.launch_all()?;
        let lens: Vec<u32> = bands.iter().map(|bd| (bd.len() * block * n_rhs) as u32 * 4).collect();
        let got: Vec<i32> = crate::common::parallel_pull_words(&mut sys, c_base, &lens)
            .into_iter()
            .flatten()
            .collect();
        Ok(crate::common::finish_run(
            &mut sys,
            report.per_dpu,
            validate_words("SpMM-BSR", &got, &expect),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_dpu::DpuConfig;

    #[test]
    fn spmm_bsr_tiny_thread_sweep() {
        for t in [1, 4, 16] {
            SpmmBsr
                .run(DatasetSize::Tiny, &RunConfig::single(DpuConfig::paper_baseline(t)))
                .unwrap()
                .assert_valid();
        }
    }

    #[test]
    fn spmm_bsr_tiny_multi_dpu() {
        SpmmBsr
            .run(DatasetSize::Tiny, &RunConfig::multi(4, DpuConfig::paper_baseline(4)))
            .unwrap()
            .assert_valid();
    }
}
