//! **MLP-Q** — quantized multi-layer perceptron inference expressed as
//! *chained kernels*: each layer is two DPU launches (an `i8×i8→i32`
//! GEMV accumulate, then a requantize+ReLU pass packing the next layer's
//! `i8` activations), with the host gathering and re-broadcasting
//! activations between layers. One inference request therefore spans
//! `2·layers` launches with host-side staging — the end-to-end latency
//! shape PIMSIM-NN argues ISA-level PIM simulators are judged on, rather
//! than single-kernel time.
//!
//! Quantization scheme: weights and activations are `i8` bytes in
//! MRAM/WRAM (sign-extending `lb` loads), accumulation is wrapping `i32`,
//! and requantize is `clamp(relu(acc) >> shift, 0, 127)` — all integer
//! ops, so the pure-Rust reference is bit-exact.

use pim_asm::{Barrier, DpuProgram, KernelBuilder};
use pim_dpu::SimError;
use pim_host::PimSystem;
use pim_isa::{AluOp, Cond};
use pim_rng::StdRng;

use crate::common::{chunk_range, validate_words, Params};
use crate::{datasets, DatasetSize, RunConfig, Workload, WorkloadFamily, WorkloadRun};

/// Requantization shift: activations stay in `0..=127`.
const SHIFT: u32 = 6;

/// The MLP-Q workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct MlpQ;

/// Builds the two-stage kernel, specialized on the layer width `cols`.
///
/// The `stage` parameter selects the launch's role: `0` runs the
/// quantized GEMV (`y_i32 = W_i8 · x_i8`), `1` requantizes `y` into
/// packed `i8` activations at `q_base`.
fn kernel(n_tasklets: u32, cols: u32) -> (DpuProgram, Params) {
    let mut k = KernelBuilder::new();
    let params =
        Params::define(&mut k, &["stage", "rows", "w_base", "x_base", "y_base", "q_base", "shift"]);
    let bar = Barrier::alloc(&mut k, n_tasklets);
    let xg = k.global_zeroed("xg", cols); // staged i8 activations
    let w_buf = k.alloc_wram(cols * n_tasklets, 8);
    let slot = k.alloc_wram(16 * n_tasklets, 8); // per-tasklet DMA slot
    let [s, rows, t, r] = k.regs(["s", "rows", "t", "r"]);
    let [re, m, p, q] = k.regs(["re", "m", "p", "q"]);
    let [acc, v, w, sh] = k.regs(["acc", "v", "w", "sh"]);
    let [wb, sl] = k.regs(["wb", "sl"]);
    params.load(&mut k, s, "stage");
    params.load(&mut k, rows, "rows");
    k.tid(t);
    k.mul(wb, t, cols as i32);
    k.add(wb, wb, w_buf as i32);
    k.mul(sl, t, 16);
    k.add(sl, sl, slot as i32);
    let stage1 = k.fresh_label("stage1");
    let exit = k.fresh_label("exit");
    k.branch(Cond::Ne, s, 0, &stage1);

    // ---- Stage 0: y[r] = Σ_c W_i8[r,c] · x_i8[c] ----
    let x_ready = k.fresh_label("x_ready");
    k.branch(Cond::Ne, t, 0, &x_ready);
    params.load(&mut k, m, "x_base");
    k.movi(p, xg as i32);
    k.ldma(p, m, cols as i32);
    k.place(&x_ready);
    bar.wait(&mut k, [m, p, v]);
    k.alu(AluOp::Div, m, rows, n_tasklets as i32);
    k.mul(r, m, t);
    k.add(re, r, m);
    let not_last = k.fresh_label("not_last");
    k.branch(Cond::Ne, t, n_tasklets as i32 - 1, &not_last);
    k.mov(re, rows);
    k.place(&not_last);
    k.branch(Cond::Geu, r, re, &exit);
    let row_loop = k.label_here("row_loop");
    // Stage the i8 weight row.
    k.mul(m, r, cols as i32);
    params.load(&mut k, p, "w_base");
    k.add(m, m, p);
    k.ldma(wb, m, cols as i32);
    k.movi(acc, 0);
    k.mov(p, wb);
    k.movi(q, xg as i32);
    k.add(m, wb, cols as i32);
    let dot = k.label_here("dot");
    k.lb(v, p, 0);
    k.lb(w, q, 0);
    k.mul(v, v, w);
    k.add(acc, acc, v);
    k.add(p, p, 1);
    k.add(q, q, 1);
    k.branch(Cond::Ltu, p, m, &dot);
    // y[r] out through the per-tasklet slot.
    k.sw(acc, sl, 0);
    k.mul(m, r, 4);
    params.load(&mut k, v, "y_base");
    k.add(m, m, v);
    k.sdma(sl, m, 4);
    k.add(r, r, 1);
    k.branch(Cond::Ltu, r, re, &row_loop);
    k.jump(&exit);

    // ---- Stage 1: q[g] = pack4(clamp(relu(y) >> shift, 0, 127)) ----
    k.place(&stage1);
    params.load(&mut k, sh, "shift");
    // One group = 4 rows = one packed output word.
    k.alu(AluOp::Srl, rows, rows, 2);
    k.alu(AluOp::Div, m, rows, n_tasklets as i32);
    k.mul(r, m, t);
    k.add(re, r, m);
    let not_last1 = k.fresh_label("not_last1");
    k.branch(Cond::Ne, t, n_tasklets as i32 - 1, &not_last1);
    k.mov(re, rows);
    k.place(&not_last1);
    k.branch(Cond::Geu, r, re, &exit);
    let g_loop = k.label_here("g_loop");
    k.mul(m, r, 16);
    params.load(&mut k, p, "y_base");
    k.add(m, m, p);
    k.ldma(sl, m, 16);
    k.movi(w, 0);
    for j in 0..4 {
        k.lw(acc, sl, 4 * j);
        k.alu(AluOp::Max, acc, acc, 0);
        k.alu(AluOp::Srl, acc, acc, sh);
        k.alu(AluOp::Min, acc, acc, 127);
        if j > 0 {
            k.alu(AluOp::Sll, acc, acc, 8 * j);
        }
        k.alu(AluOp::Or, w, w, acc);
    }
    k.sw(w, sl, 0);
    k.mul(m, r, 4);
    params.load(&mut k, p, "q_base");
    k.add(m, m, p);
    k.sdma(sl, m, 4);
    k.add(r, r, 1);
    k.branch(Cond::Ltu, r, re, &g_loop);
    k.place(&exit);
    k.stop();
    (k.build().expect("MLP-Q kernel builds"), params)
}

/// Bit-exact reference: layers of `i8` GEMV + requantize.
fn reference(weights: &[Vec<i8>], x0: &[u8], layers: usize, cols: usize) -> Vec<u8> {
    let mut act: Vec<u8> = x0.to_vec();
    for w in weights.iter().take(layers) {
        let mut next = vec![0u8; cols];
        for (r, slot) in next.iter_mut().enumerate() {
            let acc = (0..cols)
                .map(|c| i32::from(w[r * cols + c]).wrapping_mul(i32::from(act[c] as i8)))
                .fold(0i32, i32::wrapping_add);
            *slot = (acc.max(0) >> SHIFT).min(127) as u8;
        }
        act = next;
    }
    act
}

impl Workload for MlpQ {
    fn name(&self) -> &'static str {
        "MLP-Q"
    }

    fn family(&self) -> WorkloadFamily {
        WorkloadFamily::NnInference
    }

    fn supports_cache_mode(&self) -> bool {
        false
    }

    fn run(&self, size: DatasetSize, rc: &RunConfig) -> Result<WorkloadRun, SimError> {
        let (layers, cols) = datasets::mlp_q(size);
        let n_dpus = rc.n_dpus as usize;
        assert!(
            cols % (4 * n_dpus) == 0,
            "MLP-Q requires row bands in whole requantize groups (cols % (4·n_dpus) == 0)"
        );
        let mut rng = StdRng::seed_from_u64(0x4d4c_5051);
        let weights: Vec<Vec<i8>> = (0..layers)
            .map(|_| (0..cols * cols).map(|_| rng.gen_range(-8..8) as i8).collect())
            .collect();
        let x0: Vec<u8> = (0..cols).map(|_| rng.gen_range(0..16) as u8).collect();
        let expect: Vec<i32> =
            reference(&weights, &x0, layers, cols).iter().map(|&b| i32::from(b)).collect();
        let (program, params) = kernel(rc.dpu.n_tasklets, cols as u32);
        let mut sys = PimSystem::new(rc.n_dpus, rc.dpu.clone(), rc.xfer);
        sys.load(&program)?;
        let bands: Vec<std::ops::Range<usize>> =
            (0..n_dpus).map(|d| chunk_range(cols, n_dpus, d)).collect();
        let skew = crate::common::REGION_SKEW;
        // Per-DPU weight bands of every layer, packed contiguously.
        let max_rows = bands.iter().map(std::ops::Range::len).max().unwrap_or(1);
        let w_chunk = ((max_rows * cols) as u32).div_ceil(8) * 8 + skew;
        let x_base = layers as u32 * w_chunk;
        let x_cap = (cols as u32).div_ceil(8) * 8 + skew;
        let y_base = x_base + x_cap;
        let y_cap = (max_rows as u32 * 4).div_ceil(8) * 8 + skew;
        let q_base = y_base + y_cap;
        for (l, w) in weights.iter().enumerate() {
            let chunks: Vec<Vec<u8>> = bands
                .iter()
                .map(|bd| w[bd.start * cols..bd.end * cols].iter().map(|&v| v as u8).collect())
                .collect();
            sys.push_to_mram(
                l as u32 * w_chunk,
                &chunks.iter().map(Vec::as_slice).collect::<Vec<_>>(),
            );
        }
        let mut act = x0.clone();
        let mut per_dpu: Vec<pim_dpu::DpuRunStats> = Vec::new();
        let mut pull_scratch: Vec<Vec<u8>> = Vec::new();
        for l in 0..layers {
            sys.broadcast_to_mram(x_base, &act);
            for stage in 0..2u32 {
                let pbs: Vec<Vec<u8>> = bands
                    .iter()
                    .map(|bd| {
                        params.bytes(&[
                            ("stage", stage),
                            ("rows", bd.len() as u32),
                            ("w_base", l as u32 * w_chunk),
                            ("x_base", x_base),
                            ("y_base", y_base),
                            ("q_base", q_base),
                            ("shift", SHIFT),
                        ])
                    })
                    .collect();
                sys.push_to_symbol("params", &pbs.iter().map(Vec::as_slice).collect::<Vec<_>>());
                let report = sys.launch_all()?;
                if per_dpu.is_empty() {
                    per_dpu = report.per_dpu;
                } else {
                    for (a, b) in per_dpu.iter_mut().zip(&report.per_dpu) {
                        a.merge(b);
                    }
                }
            }
            // Host staging: gather each DPU's packed activations, re-feed.
            let lens: Vec<u32> = bands.iter().map(|bd| bd.len() as u32).collect();
            act =
                crate::common::parallel_pull_words_into(&mut sys, q_base, &lens, &mut pull_scratch)
                    .into_iter()
                    .flatten()
                    .flat_map(i32::to_le_bytes)
                    .collect();
        }
        let got: Vec<i32> = act.iter().map(|&b| i32::from(b)).collect();
        Ok(crate::common::finish_run(&mut sys, per_dpu, validate_words("MLP-Q", &got, &expect)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_dpu::DpuConfig;

    #[test]
    fn mlp_q_tiny_thread_sweep() {
        for t in [1, 4, 16] {
            MlpQ.run(DatasetSize::Tiny, &RunConfig::single(DpuConfig::paper_baseline(t)))
                .unwrap()
                .assert_valid();
        }
    }

    #[test]
    fn mlp_q_tiny_multi_dpu() {
        MlpQ.run(DatasetSize::Tiny, &RunConfig::multi(4, DpuConfig::paper_baseline(4)))
            .unwrap()
            .assert_valid();
    }

    #[test]
    fn mlp_q_chains_multiple_launches() {
        // 3 layers × 2 stages = 6 launches; merged stats must reflect the
        // accumulated instruction stream of the whole chain.
        let run =
            MlpQ.run(DatasetSize::Tiny, &RunConfig::single(DpuConfig::paper_baseline(4))).unwrap();
        let one_layer_floor = run.merged().instructions / 6;
        assert!(one_layer_floor > 0, "stats merged across chained launches");
    }
}
