//! **SpMV** — sparse matrix-vector multiply over CSR. Table II: 12K×12K
//! with 80,519 non-zeros (single DPU), 14K×14K with 316,740 (multi).
//!
//! With the paper's BS, SpMV is the other canonically *memory-bound* PrIM
//! workload (Fig 5): the gather `x[col]` is a random 4-byte access that the
//! scratchpad model must fetch with a tiny DMA per non-zero.

use pim_asm::{DpuProgram, KernelBuilder};
use pim_dpu::SimError;
use pim_host::PimSystem;
use pim_isa::{AluOp, Cond};
use pim_rng::StdRng;

use crate::common::{chunk_range, from_bytes, to_bytes, validate_words, Params};
use crate::{datasets, DatasetSize, RunConfig, Workload, WorkloadRun};

/// Non-zeros staged per chunk (columns and values separately).
const NNZ_CHUNK: u32 = 128;
/// Output rows staged before a write-back.
const YBLOCK: u32 = 128;

/// The SpMV workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct Spmv;

/// A CSR matrix with `i32` values.
#[derive(Debug, Clone)]
struct Csr {
    rows: usize,
    rowptr: Vec<i32>,
    colidx: Vec<i32>,
    vals: Vec<i32>,
}

fn generate(rows: usize, cols: usize, nnz: usize, seed: u64) -> Csr {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut per_row = vec![0usize; rows];
    for _ in 0..nnz {
        per_row[rng.gen_range(0..rows)] += 1;
    }
    let mut rowptr = Vec::with_capacity(rows + 1);
    rowptr.push(0i32);
    let mut colidx = Vec::with_capacity(nnz);
    let mut vals = Vec::with_capacity(nnz);
    for count in &per_row {
        let mut cs: Vec<i32> = (0..*count).map(|_| rng.gen_range(0..cols as i32)).collect();
        cs.sort_unstable();
        for c in cs {
            colidx.push(c);
            vals.push(rng.gen_range(-10..10));
        }
        rowptr.push(colidx.len() as i32);
    }
    let _ = cols;
    Csr { rows, rowptr, colidx, vals }
}

fn reference(m: &Csr, x: &[i32]) -> Vec<i32> {
    (0..m.rows)
        .map(|r| {
            (m.rowptr[r] as usize..m.rowptr[r + 1] as usize)
                .map(|i| m.vals[i].wrapping_mul(x[m.colidx[i] as usize]))
                .fold(0i32, i32::wrapping_add)
        })
        .collect()
}

#[allow(clippy::too_many_lines)]
fn kernel(n_tasklets: u32, flat: bool) -> (DpuProgram, Params) {
    let mut k = KernelBuilder::new();
    let params =
        Params::define(&mut k, &["rows", "rp_base", "col_base", "val_base", "x_base", "y_base"]);
    let (rp_buf, col_buf, val_buf, x_buf, y_buf) = if flat {
        (0, 0, 0, 0, 0)
    } else {
        (
            k.alloc_wram(8 * n_tasklets, 8),
            k.alloc_wram(NNZ_CHUNK * 4 * n_tasklets, 8),
            k.alloc_wram(NNZ_CHUNK * 4 * n_tasklets, 8),
            k.alloc_wram(8 * n_tasklets, 8),
            k.alloc_wram(YBLOCK * 4 * n_tasklets, 8),
        )
    };
    let [rows, t, r, re] = k.regs(["rows", "t", "r", "re"]);
    let [lo, hi, m, p] = k.regs(["lo", "hi", "m", "p"]);
    let [acc, v, c, n] = k.regs(["acc", "v", "c", "n"]);
    let [yfill, ystart] = k.regs(["yfill", "ystart"]);
    // Loop-invariant bases, hoisted exactly as a compiler would.
    let [xb, xs, cb, vb] = k.regs(["xb", "xs", "cb", "vb"]);
    let [pc, pv, pend] = k.regs(["pc", "pv", "pend"]);
    params.load(&mut k, rows, "rows");
    k.tid(t);
    params.load(&mut k, xb, "x_base");
    if !flat {
        // Per-tasklet staging addresses.
        k.mul(xs, t, 8);
        k.add(xs, xs, x_buf as i32);
        k.mul(cb, t, (NNZ_CHUNK * 4) as i32);
        k.add(vb, cb, val_buf as i32);
        k.add(cb, cb, col_buf as i32);
    } else {
        params.load(&mut k, cb, "col_base");
        params.load(&mut k, vb, "val_base");
    }
    // Contiguous row range.
    k.alu(AluOp::Div, m, rows, n_tasklets as i32);
    k.mul(r, m, t);
    k.add(re, r, m);
    let not_last = k.fresh_label("not_last");
    k.branch(Cond::Ne, t, n_tasklets as i32 - 1, &not_last);
    k.mov(re, rows);
    k.place(&not_last);
    let done = k.fresh_label("done");
    k.branch(Cond::Geu, r, re, &done);
    k.mov(ystart, r);
    k.movi(yfill, 0);

    let row_loop = k.label_here("row_loop");
    // lo, hi = rowptr[r], rowptr[r+1]
    k.mul(m, r, 4);
    params.load(&mut k, p, "rp_base");
    k.add(m, m, p);
    if flat {
        k.lw(lo, m, 0);
        k.lw(hi, m, 4);
    } else {
        k.tid(p);
        k.mul(p, p, 8);
        k.add(p, p, rp_buf as i32);
        k.ldma(p, m, 8);
        k.lw(lo, p, 0);
        k.lw(hi, p, 4);
    }
    k.movi(acc, 0);
    // Chunked walk over [lo, hi).
    let row_done = k.fresh_label("row_done");
    let chunk_loop = k.label_here("chunk_loop");
    k.branch(Cond::Geu, lo, hi, &row_done);
    k.sub(n, hi, lo);
    k.alu(AluOp::Min, n, n, NNZ_CHUNK as i32);
    if !flat {
        // Stage colidx[lo..lo+n] and vals[lo..lo+n].
        k.mul(m, lo, 4);
        params.load(&mut k, p, "col_base");
        k.add(m, m, p);
        k.mul(v, n, 4);
        k.ldma(cb, m, v);
        k.mul(m, lo, 4);
        params.load(&mut k, p, "val_base");
        k.add(m, m, p);
        k.ldma(vb, m, v);
        k.mov(pc, cb);
        k.mov(pv, vb);
        k.add(pend, cb, v);
    } else {
        k.mul(m, lo, 4);
        k.add(pc, cb, m);
        k.add(pv, vb, m);
        k.mul(v, n, 4);
        k.add(pend, pc, v);
    }
    // Tight per-nnz loop: the x[col] gather is the memory-bound hot spot
    // (a 4-byte DMA in the scratchpad model; a plain load under caches).
    let nnz_loop = k.label_here("nnz_loop");
    k.lw(c, pc, 0);
    k.lw(v, pv, 0);
    k.alu(AluOp::Sll, c, c, 2);
    k.add(m, xb, c);
    if flat {
        k.lw(c, m, 0);
    } else {
        k.ldma(xs, m, 4);
        k.lw(c, xs, 0);
    }
    k.mul(v, v, c);
    k.add(acc, acc, v);
    k.add(pc, pc, 4);
    k.add(pv, pv, 4);
    k.branch(Cond::Ltu, pc, pend, &nnz_loop);
    k.add(lo, lo, n);
    k.jump(&chunk_loop);
    k.place(&row_done);
    // y staging.
    if flat {
        k.mul(p, r, 4);
        params.load(&mut k, m, "y_base");
        k.add(p, p, m);
        k.sw(acc, p, 0);
    } else {
        k.tid(p);
        k.mul(p, p, (YBLOCK * 4) as i32);
        k.add(p, p, y_buf as i32);
        k.mul(m, yfill, 4);
        k.add(p, p, m);
        k.sw(acc, p, 0);
        k.add(yfill, yfill, 1);
        // Flush when the block is full.
        let no_flush = k.fresh_label("no_flush");
        k.branch(Cond::Ltu, yfill, YBLOCK as i32, &no_flush);
        k.tid(p);
        k.mul(p, p, (YBLOCK * 4) as i32);
        k.add(p, p, y_buf as i32);
        k.mul(m, ystart, 4);
        params.load(&mut k, v, "y_base");
        k.add(m, m, v);
        k.mul(v, yfill, 4);
        k.sdma(p, m, v);
        k.add(ystart, ystart, yfill);
        k.movi(yfill, 0);
        k.place(&no_flush);
    }
    k.add(r, r, 1);
    k.branch(Cond::Ltu, r, re, &row_loop);
    if !flat {
        // Flush the tail.
        let no_tail = k.fresh_label("no_tail");
        k.branch(Cond::Eq, yfill, 0, &no_tail);
        k.tid(p);
        k.mul(p, p, (YBLOCK * 4) as i32);
        k.add(p, p, y_buf as i32);
        k.mul(m, ystart, 4);
        params.load(&mut k, v, "y_base");
        k.add(m, m, v);
        k.mul(v, yfill, 4);
        k.sdma(p, m, v);
        k.place(&no_tail);
    }
    k.place(&done);
    k.stop();
    (k.build().expect("SpMV kernel builds"), params)
}

impl Workload for Spmv {
    fn name(&self) -> &'static str {
        // The registry name predates the BSR kernels and is kept so golden
        // snapshots and saved reports stay valid; "SpMV-CSR" is the
        // unambiguous alias next to the sparse family's "SpMV-BSR".
        "SpMV"
    }

    fn aliases(&self) -> &'static [&'static str] {
        &["SpMV-CSR"]
    }

    fn run(&self, size: DatasetSize, rc: &RunConfig) -> Result<WorkloadRun, SimError> {
        let (rows, cols, nnz) = datasets::spmv(size);
        let m = generate(rows, cols, nnz, 0x5370_4d56);
        let mut rng = StdRng::seed_from_u64(0x5370_4d57);
        let x: Vec<i32> = (0..cols).map(|_| rng.gen_range(-10..10)).collect();
        let expect = reference(&m, &x);
        let n_dpus = rc.n_dpus as usize;
        let (program, params) = kernel(rc.dpu.n_tasklets, rc.cached());
        let mut sys = PimSystem::new(rc.n_dpus, rc.dpu.clone(), rc.xfer);
        sys.load(&program)?;
        // Per-DPU row bands with rebased rowptr slices.
        let bands: Vec<std::ops::Range<usize>> =
            (0..n_dpus).map(|d| chunk_range(rows, n_dpus, d)).collect();
        let rp_slices: Vec<Vec<i32>> = bands
            .iter()
            .map(|b| {
                let base = m.rowptr[b.start];
                m.rowptr[b.start..=b.end].iter().map(|v| v - base).collect()
            })
            .collect();
        let nnz_slices: Vec<std::ops::Range<usize>> =
            bands.iter().map(|b| m.rowptr[b.start] as usize..m.rowptr[b.end] as usize).collect();
        let rp_cap = (rp_slices.iter().map(Vec::len).max().unwrap_or(1) as u32 * 4).div_ceil(8) * 8
            + crate::common::REGION_SKEW;
        let nnz_cap = (nnz_slices.iter().map(|s| s.len().max(1)).max().unwrap_or(1) as u32 * 4)
            .div_ceil(8)
            * 8
            + crate::common::REGION_SKEW;
        let x_cap = (cols as u32 * 4).div_ceil(8) * 8 + crate::common::REGION_SKEW;
        let rp_base = 0u32;
        let col_base = rp_cap;
        let val_base = col_base + nnz_cap;
        let x_base = val_base + nnz_cap;
        let y_base = x_base + x_cap;
        if rc.cached() {
            assert_eq!(rc.n_dpus, 1, "cache-centric runs are single-DPU");
            let base = program.heap_base.div_ceil(64) * 64;
            let dpu = sys.dpu_mut(0);
            dpu.write_wram(base + rp_base, &to_bytes(&rp_slices[0]));
            dpu.write_wram(base + col_base, &to_bytes(&m.colidx));
            dpu.write_wram(base + val_base, &to_bytes(&m.vals));
            dpu.write_wram(base + x_base, &to_bytes(&x));
            dpu.write_wram(base + y_base, &vec![0u8; rows * 4]);
            let pb = params.bytes(&[
                ("rows", rows as u32),
                ("rp_base", base + rp_base),
                ("col_base", base + col_base),
                ("val_base", base + val_base),
                ("x_base", base + x_base),
                ("y_base", base + y_base),
            ]);
            sys.push_to_symbol("params", &[pb.as_slice()]);
        } else {
            let rp_chunks: Vec<Vec<u8>> = rp_slices.iter().map(|s| to_bytes(s)).collect();
            let col_chunks: Vec<Vec<u8>> =
                nnz_slices.iter().map(|s| to_bytes(&m.colidx[s.clone()])).collect();
            let val_chunks: Vec<Vec<u8>> =
                nnz_slices.iter().map(|s| to_bytes(&m.vals[s.clone()])).collect();
            sys.push_to_mram(rp_base, &rp_chunks.iter().map(Vec::as_slice).collect::<Vec<_>>());
            sys.push_to_mram(col_base, &col_chunks.iter().map(Vec::as_slice).collect::<Vec<_>>());
            sys.push_to_mram(val_base, &val_chunks.iter().map(Vec::as_slice).collect::<Vec<_>>());
            sys.broadcast_to_mram(x_base, &to_bytes(&x));
            let pbs: Vec<Vec<u8>> = bands
                .iter()
                .map(|b| {
                    params.bytes(&[
                        ("rows", b.len() as u32),
                        ("rp_base", rp_base),
                        ("col_base", col_base),
                        ("val_base", val_base),
                        ("x_base", x_base),
                        ("y_base", y_base),
                    ])
                })
                .collect();
            sys.push_to_symbol("params", &pbs.iter().map(Vec::as_slice).collect::<Vec<_>>());
        }
        let report = sys.launch_all()?;
        let lens: Vec<u32> = bands.iter().map(|b| b.len() as u32 * 4).collect();
        let got: Vec<i32> = if rc.cached() {
            let base = program.heap_base.div_ceil(64) * 64;
            from_bytes(&sys.dpu(0).read_wram(y_base + base, lens[0]))
        } else {
            crate::common::parallel_pull_words(&mut sys, y_base, &lens)
                .into_iter()
                .flatten()
                .collect()
        };
        Ok(crate::common::finish_run(
            &mut sys,
            report.per_dpu,
            validate_words("SpMV", &got, &expect),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_dpu::DpuConfig;

    #[test]
    fn spmv_tiny_thread_sweep() {
        for t in [1, 4, 16] {
            Spmv.run(DatasetSize::Tiny, &RunConfig::single(DpuConfig::paper_baseline(t)))
                .unwrap()
                .assert_valid();
        }
    }

    #[test]
    fn spmv_tiny_multi_dpu() {
        Spmv.run(DatasetSize::Tiny, &RunConfig::multi(4, DpuConfig::paper_baseline(4)))
            .unwrap()
            .assert_valid();
    }

    #[test]
    fn spmv_tiny_cache_mode() {
        let cfg = DpuConfig::paper_baseline(4).with_paper_caches();
        Spmv.run(DatasetSize::Tiny, &RunConfig::single(cfg)).unwrap().assert_valid();
    }

    #[test]
    fn spmv_is_memory_bound() {
        let run =
            Spmv.run(DatasetSize::Tiny, &RunConfig::single(DpuConfig::paper_baseline(16))).unwrap();
        let (_, mem, ..) = run.per_dpu[0].breakdown();
        assert!(mem > 0.2, "SpMV@16t should show memory idling, got {mem:.2}");
    }
}
