//! **UNI** — unique: drop consecutive duplicates, keeping the first of
//! each run. Table II: 512K / 2M elements.
//!
//! Shares SEL's two-pass count/offset/pack skeleton, but the predicate is
//! *stateful*: an element survives when it differs from its predecessor.
//! Tasklets whose range does not start the vector fetch the predecessor
//! element; the first tasklet of the first DPU uses a sentinel so the very
//! first element always survives. Across DPUs, the host passes each DPU
//! the last element of the previous DPU's chunk — the inter-DPU
//! communication PrIM's UNI performs through the host.

use pim_asm::{Barrier, DpuProgram, KernelBuilder};
use pim_dpu::SimError;
use pim_host::PimSystem;
use pim_isa::{AluOp, Cond};
use pim_rng::StdRng;

use crate::common::{
    chunk_range, emit_tasklet_byte_range, from_bytes, to_bytes, validate_words, Params,
};
use crate::{datasets, DatasetSize, RunConfig, Workload, WorkloadRun};

const BLOCK: u32 = 1024;

/// Sentinel "no predecessor" value; the generator's domain excludes it.
const NO_PREV: i32 = i32::MAX;

/// The UNI workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct Uni;

fn kernel(n_tasklets: u32, flat: bool) -> (DpuProgram, Params) {
    let mut k = KernelBuilder::new();
    let params = Params::define(&mut k, &["nbytes", "in_base", "out_base", "prev"]);
    let counts = k.global_zeroed("counts", 4 * n_tasklets);
    let bar = Barrier::alloc(&mut k, n_tasklets);
    let (buf_in, buf_out, pbuf) = if flat {
        (0, 0, 0)
    } else {
        (
            k.alloc_wram(BLOCK * n_tasklets, 8),
            k.alloc_wram(BLOCK * n_tasklets, 8),
            k.alloc_wram(8 * n_tasklets, 8),
        )
    };
    let [nbytes, t, start, end] = k.regs(["nbytes", "t", "start", "end"]);
    let [cnt, off, len, m] = k.regs(["cnt", "off", "len", "m"]);
    let [p, e2, v, prev] = k.regs(["p", "e2", "v", "prev"]);
    let prev0 = k.reg("prev0");
    params.load(&mut k, nbytes, "nbytes");
    k.tid(t);
    emit_tasklet_byte_range(&mut k, nbytes, t, start, end, n_tasklets);

    // prev0 = predecessor of element at byte offset `start`.
    let have_pred = k.fresh_label("have_pred");
    let pred_done = k.fresh_label("pred_done");
    k.branch(Cond::Ne, start, 0, &have_pred);
    params.load(&mut k, prev0, "prev"); // host-provided (or NO_PREV sentinel)
    k.jump(&pred_done);
    k.place(&have_pred);
    params.load(&mut k, m, "in_base");
    k.add(m, m, start);
    k.sub(m, m, 4);
    if flat {
        k.lw(prev0, m, 0);
    } else {
        k.mul(p, t, 8);
        k.add(p, p, pbuf as i32);
        k.ldma(p, m, 4);
        k.lw(prev0, p, 0);
    }
    k.place(&pred_done);

    // Two passes share the same scan body via this closure.
    let emit_pass = |k: &mut KernelBuilder, second: bool| {
        // On the second pass `cnt` is reused as the output WRAM cursor
        // (scratchpad) / output pointer (flat).
        k.mov(prev, prev0);
        if flat {
            let done = k.fresh_label("pass_done");
            params.load(k, m, "in_base");
            k.add(p, m, start);
            k.add(e2, m, end);
            k.branch(Cond::Geu, p, e2, &done);
            let scan = k.label_here("scan");
            k.lw(v, p, 0);
            let skip = k.fresh_label("skip");
            k.branch(Cond::Eq, v, prev, &skip);
            if second {
                k.sw(v, cnt, 0);
                k.add(cnt, cnt, 4);
            } else {
                k.add(cnt, cnt, 1);
            }
            k.place(&skip);
            k.mov(prev, v);
            k.add(p, p, 4);
            k.branch(Cond::Ltu, p, e2, &scan);
            k.place(&done);
        } else {
            let [win, wout, wb] = k.regs(["win", "wout", "wb"]);
            k.mul(win, t, BLOCK as i32);
            k.add(wout, win, buf_out as i32);
            k.add(win, win, buf_in as i32);
            k.mov(off, start);
            let done = k.fresh_label("pass_done");
            let outer = k.label_here("outer");
            k.branch(Cond::Geu, off, end, &done);
            k.sub(len, end, off);
            k.alu(AluOp::Min, len, len, BLOCK as i32);
            params.load(k, m, "in_base");
            k.add(m, m, off);
            k.ldma(win, m, len);
            if second {
                k.movi(wb, 0);
            }
            k.mov(p, win);
            k.add(e2, win, len);
            let scan = k.label_here("scan");
            k.lw(v, p, 0);
            let skip = k.fresh_label("skip");
            k.branch(Cond::Eq, v, prev, &skip);
            if second {
                k.add(m, wout, wb);
                k.sw(v, m, 0);
                k.add(wb, wb, 4);
            } else {
                k.add(cnt, cnt, 1);
            }
            k.place(&skip);
            k.mov(prev, v);
            k.add(p, p, 4);
            k.branch(Cond::Ltu, p, e2, &scan);
            if second {
                let no_flush = k.fresh_label("no_flush");
                k.branch(Cond::Eq, wb, 0, &no_flush);
                k.sdma(wout, cnt, wb);
                k.add(cnt, cnt, wb);
                k.place(&no_flush);
            }
            k.add(off, off, len);
            k.jump(&outer);
            k.place(&done);
            k.release_reg("win");
            k.release_reg("wout");
            k.release_reg("wb");
        }
    };

    // ---- Pass 1: count. ----
    k.movi(cnt, 0);
    emit_pass(&mut k, false);
    k.mul(p, t, 4);
    k.add(p, p, counts as i32);
    k.sw(cnt, p, 0);
    bar.wait(&mut k, [p, e2, v]);
    // offset = Σ counts[0..t]; cnt becomes the output byte cursor.
    k.movi(cnt, 0);
    k.movi(p, counts as i32);
    k.mul(e2, t, 4);
    k.add(e2, e2, counts as i32);
    let of_done = k.fresh_label("of_done");
    k.branch(Cond::Geu, p, e2, &of_done);
    let of_loop = k.label_here("of_loop");
    k.lw(v, p, 0);
    k.add(cnt, cnt, v);
    k.add(p, p, 4);
    k.branch(Cond::Ltu, p, e2, &of_loop);
    k.place(&of_done);
    k.mul(cnt, cnt, 4);
    params.load(&mut k, v, "out_base");
    k.add(cnt, cnt, v);
    // ---- Pass 2: pack. ----
    emit_pass(&mut k, true);
    k.stop();
    (k.build().expect("UNI kernel builds"), params)
}

impl Workload for Uni {
    fn name(&self) -> &'static str {
        "UNI"
    }

    fn run(&self, size: DatasetSize, rc: &RunConfig) -> Result<WorkloadRun, SimError> {
        let n = datasets::red_sel_uni(size);
        let mut rng = StdRng::seed_from_u64(0x55_4e49);
        // Runs of duplicates: ~25% unique boundaries.
        let mut input: Vec<i32> = Vec::with_capacity(n);
        let mut cur = rng.gen_range(-1000..1000);
        for _ in 0..n {
            if rng.gen_ratio(1, 4) {
                cur = rng.gen_range(-1000..1000);
            }
            input.push(cur);
        }
        let mut expect: Vec<i32> = Vec::new();
        for (i, v) in input.iter().enumerate() {
            if i == 0 || input[i - 1] != *v {
                expect.push(*v);
            }
        }
        let n_dpus = rc.n_dpus as usize;
        let (program, params) = kernel(rc.dpu.n_tasklets, rc.cached());
        let mut sys = PimSystem::new(rc.n_dpus, rc.dpu.clone(), rc.xfer);
        sys.load(&program)?;
        let cap_bytes = (chunk_range(n, n_dpus, 0).len() as u32 * 4).div_ceil(8) * 8
            + crate::common::REGION_SKEW;
        let (in_base, out_base) = if rc.cached() {
            assert_eq!(rc.n_dpus, 1, "cache-centric runs are single-DPU");
            let base = program.heap_base.div_ceil(64) * 64;
            sys.dpu_mut(0).write_wram(base, &to_bytes(&input));
            sys.dpu_mut(0).write_wram(base + cap_bytes, &vec![0u8; n * 4]);
            (base, base + cap_bytes)
        } else {
            let chunks: Vec<Vec<u8>> =
                (0..n_dpus).map(|d| to_bytes(&input[chunk_range(n, n_dpus, d)])).collect();
            sys.push_to_mram(0, &chunks.iter().map(Vec::as_slice).collect::<Vec<_>>());
            (0, cap_bytes)
        };
        let param_bytes: Vec<Vec<u8>> = (0..n_dpus)
            .map(|d| {
                // The host hands each DPU its predecessor element — the
                // inter-DPU handoff.
                let prev =
                    if d == 0 { NO_PREV } else { input[chunk_range(n, n_dpus, d - 1).end - 1] };
                params.bytes(&[
                    ("nbytes", chunk_range(n, n_dpus, d).len() as u32 * 4),
                    ("in_base", in_base),
                    ("out_base", out_base),
                    ("prev", prev as u32),
                ])
            })
            .collect();
        sys.push_to_symbol("params", &param_bytes.iter().map(Vec::as_slice).collect::<Vec<_>>());
        let report = sys.launch_all()?;
        let counts = sys.pull_from_symbol("counts");
        let lens: Vec<u32> =
            counts.iter().map(|c| from_bytes(c).iter().sum::<i32>() as u32 * 4).collect();
        let got: Vec<i32> = if rc.cached() {
            from_bytes(&sys.dpu(0).read_wram(out_base, lens[0]))
        } else {
            crate::common::parallel_pull_words(&mut sys, out_base, &lens)
                .into_iter()
                .flatten()
                .collect()
        };
        Ok(crate::common::finish_run(
            &mut sys,
            report.per_dpu,
            validate_words("UNI", &got, &expect),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_dpu::DpuConfig;

    #[test]
    fn uni_tiny_thread_sweep() {
        for t in [1, 4, 16] {
            Uni.run(DatasetSize::Tiny, &RunConfig::single(DpuConfig::paper_baseline(t)))
                .unwrap()
                .assert_valid();
        }
    }

    #[test]
    fn uni_tiny_multi_dpu() {
        Uni.run(DatasetSize::Tiny, &RunConfig::multi(4, DpuConfig::paper_baseline(4)))
            .unwrap()
            .assert_valid();
    }

    #[test]
    fn uni_tiny_cache_mode() {
        let cfg = DpuConfig::paper_baseline(4).with_paper_caches();
        Uni.run(DatasetSize::Tiny, &RunConfig::single(cfg)).unwrap().assert_valid();
    }
}
