//! The workload implementations: the 16 dense PrIM benchmarks plus the
//! sparse BSR and quantized NN-inference extension families.
//!
//! Every module follows the same shape: a kernel builder (scratchpad
//! variant and, where supported, a cache-centric flat variant), host
//! orchestration, a seeded dataset generator, and a reference
//! implementation that validates the simulated output.

pub mod attn;
pub mod bfs;
pub mod bs;
pub mod gemv;
pub mod hst;
pub mod mlp;
pub mod mlp_q;
pub mod nw;
pub mod red;
pub mod scan;
pub mod sel;
pub mod spmm_bsr;
pub mod spmv;
pub mod spmv_bsr;
pub mod trns;
pub mod ts;
pub mod uni;
pub mod va;
