//! The 16 PrIM workload implementations.
//!
//! Every module follows the same shape: a kernel builder (scratchpad
//! variant and, where supported, a cache-centric flat variant), host
//! orchestration, a seeded dataset generator, and a reference
//! implementation that validates the simulated output.

pub mod bfs;
pub mod bs;
pub mod gemv;
pub mod hst;
pub mod mlp;
pub mod nw;
pub mod red;
pub mod scan;
pub mod sel;
pub mod spmv;
pub mod trns;
pub mod ts;
pub mod uni;
pub mod va;
