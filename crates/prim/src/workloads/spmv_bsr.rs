//! **SpMV-BSR** — sparse matrix-vector multiply over block-sparse (BSR)
//! tiles: the first kernel of the sparse extension family.
//!
//! Unlike the dense suite's CSR SpMV (whose per-non-zero `x[col]` gather
//! is a single word), the BSR kernel's inner loop issues three irregular
//! DMAs per stored tile: a 4-byte `colidx` probe, a `block*4`-byte gather
//! of the matching `x` block at a data-dependent address, and a
//! `block²*4`-byte tile fetch. Block rows are partitioned contiguously
//! across tasklets and banded across DPUs, mirroring the CSR layout so
//! the two SpMVs are directly comparable in Fig-5-style breakdowns.

use pim_asm::{DpuProgram, KernelBuilder};
use pim_dpu::SimError;
use pim_host::PimSystem;
use pim_isa::{AluOp, Cond};
use pim_rng::StdRng;

use crate::common::{chunk_range, validate_words, Params};
use crate::datasets::bsr;
use crate::{datasets, DatasetSize, RunConfig, Workload, WorkloadFamily, WorkloadRun};

/// The SpMV-BSR workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpmvBsr;

/// Builds the kernel, specialized on the tile edge `b`.
fn kernel(n_tasklets: u32, b: u32) -> (DpuProgram, Params) {
    let mut k = KernelBuilder::new();
    let params =
        Params::define(&mut k, &["brows", "rp_base", "col_base", "val_base", "x_base", "y_base"]);
    let stage = k.alloc_wram(8 * n_tasklets, 8); // rowptr pair / colidx probe
    let tile_buf = k.alloc_wram(b * b * 4 * n_tasklets, 8);
    let x_buf = k.alloc_wram(b * 4 * n_tasklets, 8);
    let y_buf = k.alloc_wram(b * 4 * n_tasklets, 8);
    let [brows, t, r, re] = k.regs(["brows", "t", "r", "re"]);
    let [lo, hi, c, m] = k.regs(["lo", "hi", "c", "m"]);
    let [p, q, acc, i] = k.regs(["p", "q", "acc", "i"]);
    let [v, w] = k.regs(["v", "w"]);
    let [cs, tb, xs, yb] = k.regs(["cs", "tb", "xs", "yb"]);
    params.load(&mut k, brows, "brows");
    k.tid(t);
    // Per-tasklet staging addresses.
    k.mul(cs, t, 8);
    k.add(cs, cs, stage as i32);
    k.mul(tb, t, (b * b * 4) as i32);
    k.add(tb, tb, tile_buf as i32);
    k.mul(xs, t, (b * 4) as i32);
    k.add(xs, xs, x_buf as i32);
    k.mul(yb, t, (b * 4) as i32);
    k.add(yb, yb, y_buf as i32);
    // Contiguous block-row range (last tasklet absorbs the remainder).
    k.alu(AluOp::Div, m, brows, n_tasklets as i32);
    k.mul(r, m, t);
    k.add(re, r, m);
    let not_last = k.fresh_label("not_last");
    k.branch(Cond::Ne, t, n_tasklets as i32 - 1, &not_last);
    k.mov(re, brows);
    k.place(&not_last);
    let done = k.fresh_label("done");
    k.branch(Cond::Geu, r, re, &done);

    let row_loop = k.label_here("row_loop");
    // lo, hi = rowptr[r], rowptr[r+1].
    k.mul(m, r, 4);
    params.load(&mut k, p, "rp_base");
    k.add(m, m, p);
    k.ldma(cs, m, 8);
    k.lw(lo, cs, 0);
    k.lw(hi, cs, 4);
    // Zero this block-row's y accumulator.
    k.movi(v, 0);
    k.movi(i, 0);
    k.mov(p, yb);
    let zero_loop = k.label_here("zero_y");
    k.sw(v, p, 0);
    k.add(p, p, 4);
    k.add(i, i, 1);
    k.branch(Cond::Ltu, i, b as i32, &zero_loop);

    let row_store = k.fresh_label("row_store");
    let blk_loop = k.label_here("blk_loop");
    k.branch(Cond::Geu, lo, hi, &row_store);
    // colidx[lo]: a 4-byte probe DMA.
    k.mul(m, lo, 4);
    params.load(&mut k, p, "col_base");
    k.add(m, m, p);
    k.ldma(cs, m, 4);
    k.lw(c, cs, 0);
    // Gather x[colidx*b .. +b] — the data-dependent irregular access.
    k.mul(c, c, (b * 4) as i32);
    params.load(&mut k, m, "x_base");
    k.add(m, m, c);
    k.ldma(xs, m, (b * 4) as i32);
    // Tile payload.
    k.mul(m, lo, (b * b * 4) as i32);
    params.load(&mut k, p, "val_base");
    k.add(m, m, p);
    k.ldma(tb, m, (b * b * 4) as i32);
    // y[i] += tile[i][:] · xblk.
    k.movi(i, 0);
    k.mov(p, tb);
    let i_loop = k.label_here("tile_row");
    k.mul(v, i, 4);
    k.add(v, v, yb);
    k.lw(acc, v, 0);
    k.mov(q, xs);
    k.add(c, xs, (b * 4) as i32);
    let j_loop = k.label_here("tile_col");
    k.lw(w, p, 0);
    k.lw(m, q, 0);
    k.mul(w, w, m);
    k.add(acc, acc, w);
    k.add(p, p, 4);
    k.add(q, q, 4);
    k.branch(Cond::Ltu, q, c, &j_loop);
    k.sw(acc, v, 0);
    k.add(i, i, 1);
    k.branch(Cond::Ltu, i, b as i32, &i_loop);
    k.add(lo, lo, 1);
    k.jump(&blk_loop);

    k.place(&row_store);
    k.mul(m, r, (b * 4) as i32);
    params.load(&mut k, v, "y_base");
    k.add(m, m, v);
    k.sdma(yb, m, (b * 4) as i32);
    k.add(r, r, 1);
    k.branch(Cond::Ltu, r, re, &row_loop);
    k.place(&done);
    k.stop();
    (k.build().expect("SpMV-BSR kernel builds"), params)
}

impl Workload for SpmvBsr {
    fn name(&self) -> &'static str {
        "SpMV-BSR"
    }

    fn family(&self) -> WorkloadFamily {
        WorkloadFamily::Sparse
    }

    fn supports_cache_mode(&self) -> bool {
        false
    }

    fn run(&self, size: DatasetSize, rc: &RunConfig) -> Result<WorkloadRun, SimError> {
        let (block_rows, block_cols, block, nnzb) = datasets::spmv_bsr(size);
        let a = bsr::generate(block_rows, block_cols, block, nnzb, 0x4253_5256);
        let mut rng = StdRng::seed_from_u64(0x4253_5257);
        let x: Vec<i32> = (0..a.cols()).map(|_| rng.gen_range(-10..10)).collect();
        let expect = bsr::spmv_reference(&a, &x);
        let n_dpus = rc.n_dpus as usize;
        let b = block as u32;
        let (program, params) = kernel(rc.dpu.n_tasklets, b);
        let mut sys = PimSystem::new(rc.n_dpus, rc.dpu.clone(), rc.xfer);
        sys.load(&program)?;
        // Per-DPU block-row bands with rebased rowptr slices.
        let bands: Vec<std::ops::Range<usize>> =
            (0..n_dpus).map(|d| chunk_range(block_rows, n_dpus, d)).collect();
        let rp_slices: Vec<Vec<i32>> = bands
            .iter()
            .map(|bd| {
                let base = a.rowptr[bd.start];
                a.rowptr[bd.start..=bd.end].iter().map(|v| v - base).collect()
            })
            .collect();
        let blk_slices: Vec<std::ops::Range<usize>> =
            bands.iter().map(|bd| a.rowptr[bd.start] as usize..a.rowptr[bd.end] as usize).collect();
        let skew = crate::common::REGION_SKEW;
        let rp_cap =
            (rp_slices.iter().map(Vec::len).max().unwrap_or(1) as u32 * 4).div_ceil(8) * 8 + skew;
        let col_cap = (blk_slices.iter().map(|s| s.len().max(1)).max().unwrap_or(1) as u32 * 4)
            .div_ceil(8)
            * 8
            + skew;
        let val_cap = col_cap.saturating_sub(skew) * b * b + skew;
        let x_cap = (a.cols() as u32 * 4).div_ceil(8) * 8 + skew;
        let rp_base = 0u32;
        let col_base = rp_cap;
        let val_base = col_base + col_cap;
        let x_base = val_base + val_cap;
        let y_base = x_base + x_cap;
        let rp_chunks: Vec<Vec<u8>> =
            rp_slices.iter().map(|s| crate::common::to_bytes(s)).collect();
        let col_chunks: Vec<Vec<u8>> =
            blk_slices.iter().map(|s| crate::common::to_bytes(&a.colidx[s.clone()])).collect();
        let val_chunks: Vec<Vec<u8>> = blk_slices
            .iter()
            .map(|s| {
                crate::common::to_bytes(&a.vals[s.start * block * block..s.end * block * block])
            })
            .collect();
        sys.push_to_mram(rp_base, &rp_chunks.iter().map(Vec::as_slice).collect::<Vec<_>>());
        sys.push_to_mram(col_base, &col_chunks.iter().map(Vec::as_slice).collect::<Vec<_>>());
        sys.push_to_mram(val_base, &val_chunks.iter().map(Vec::as_slice).collect::<Vec<_>>());
        sys.broadcast_to_mram(x_base, &crate::common::to_bytes(&x));
        let pbs: Vec<Vec<u8>> = bands
            .iter()
            .map(|bd| {
                params.bytes(&[
                    ("brows", bd.len() as u32),
                    ("rp_base", rp_base),
                    ("col_base", col_base),
                    ("val_base", val_base),
                    ("x_base", x_base),
                    ("y_base", y_base),
                ])
            })
            .collect();
        sys.push_to_symbol("params", &pbs.iter().map(Vec::as_slice).collect::<Vec<_>>());
        let report = sys.launch_all()?;
        let lens: Vec<u32> = bands.iter().map(|bd| (bd.len() * block) as u32 * 4).collect();
        let got: Vec<i32> = crate::common::parallel_pull_words(&mut sys, y_base, &lens)
            .into_iter()
            .flatten()
            .collect();
        Ok(crate::common::finish_run(
            &mut sys,
            report.per_dpu,
            validate_words("SpMV-BSR", &got, &expect),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_dpu::DpuConfig;

    #[test]
    fn spmv_bsr_tiny_thread_sweep() {
        for t in [1, 4, 16] {
            SpmvBsr
                .run(DatasetSize::Tiny, &RunConfig::single(DpuConfig::paper_baseline(t)))
                .unwrap()
                .assert_valid();
        }
    }

    #[test]
    fn spmv_bsr_tiny_multi_dpu() {
        SpmvBsr
            .run(DatasetSize::Tiny, &RunConfig::multi(4, DpuConfig::paper_baseline(4)))
            .unwrap()
            .assert_valid();
    }

    #[test]
    fn spmv_bsr_issues_gather_dma() {
        let run = SpmvBsr
            .run(DatasetSize::Tiny, &RunConfig::single(DpuConfig::paper_baseline(8)))
            .unwrap();
        let stats = run.merged();
        // At least three DMAs per stored tile (probe + x gather + tile).
        let (_, _, _, nnzb) = datasets::spmv_bsr(DatasetSize::Tiny);
        assert!(
            stats.dma_requests >= 3 * nnzb as u64,
            "expected gather traffic, got {} requests",
            stats.dma_requests
        );
    }
}
