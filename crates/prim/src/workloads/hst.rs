//! **HST-S** and **HST-L** — 256-bin histogram, in PrIM's two flavours.
//! Table II: 128K / 512K elements, 256 bins.
//!
//! * **HST-S** (small/private): every tasklet accumulates a *private* WRAM
//!   histogram; after a barrier the tasklets cooperatively merge bin
//!   ranges. No locking on the hot path.
//! * **HST-L** (large/shared): one *shared* WRAM histogram updated under a
//!   64-entry mutex array hashed by bin. The paper's Fig 9 calls this
//!   workload out for spending a large fraction of its instructions on
//!   `acquire`/`release` busy-waiting — exactly what this kernel does.

use pim_asm::{Barrier, DpuProgram, KernelBuilder};
use pim_dpu::SimError;
use pim_host::PimSystem;
use pim_isa::{AluOp, Cond};
use pim_rng::StdRng;

use crate::common::{
    chunk_range, emit_tasklet_byte_range, from_bytes, to_bytes, validate_words, Params,
};
use crate::{datasets, DatasetSize, RunConfig, Workload, WorkloadRun};

const BLOCK: u32 = 1024;
/// Input values are drawn from `[0, 4096)`; bin = value >> 4.
const DOMAIN: i32 = 4096;
const SHIFT: i32 = 4;
/// Mutexes protecting the shared histogram (HST-L).
const N_MUTEXES: u32 = 64;

/// The HST-S (private histograms) workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct HstS;

/// The HST-L (shared, mutex-guarded histogram) workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct HstL;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Flavour {
    Small,
    Large,
}

#[allow(clippy::too_many_lines)]
fn kernel(n_tasklets: u32, bins: u32, flat: bool, flavour: Flavour) -> (DpuProgram, Params) {
    let mut k = KernelBuilder::new();
    let params = Params::define(&mut k, &["nbytes", "in_base"]);
    let hist = k.global_zeroed("hist", 4 * bins);
    let bar = Barrier::alloc(&mut k, n_tasklets);
    // HST-L: a contiguous run of atomic bits hashed by bin.
    let mutex_base = if flavour == Flavour::Large {
        let base = k.alloc_atomic_bit();
        for _ in 1..N_MUTEXES {
            k.alloc_atomic_bit();
        }
        base
    } else {
        0
    };
    let priv_base =
        if flavour == Flavour::Small { k.alloc_wram(4 * bins * n_tasklets, 8) } else { 0 };
    let buf = if flat { 0 } else { k.alloc_wram(BLOCK * n_tasklets, 8) };

    let [nbytes, t, start, end] = k.regs(["nbytes", "t", "start", "end"]);
    let [off, len, m, p] = k.regs(["off", "len", "m", "p"]);
    let [e2, v, idx, myh] = k.regs(["e2", "v", "idx", "myh"]);
    params.load(&mut k, nbytes, "nbytes");
    k.tid(t);
    emit_tasklet_byte_range(&mut k, nbytes, t, start, end, n_tasklets);
    if flavour == Flavour::Small {
        k.mul(myh, t, (4 * bins) as i32);
        k.add(myh, myh, priv_base as i32);
    } else {
        k.movi(myh, hist as i32);
    }

    // The per-element update, shared by both data paths.
    let emit_update = |k: &mut KernelBuilder| {
        k.alu(AluOp::Srl, idx, v, SHIFT);
        k.alu(AluOp::Sll, idx, idx, 2);
        k.add(idx, idx, myh);
        if flavour == Flavour::Large {
            // lock(mutex[bin % 64]); hist[bin]++; unlock.
            let bit = k.reg("bit");
            k.alu(AluOp::Srl, bit, v, SHIFT);
            k.alu(AluOp::And, bit, bit, N_MUTEXES as i32 - 1);
            k.add(bit, bit, mutex_base as i32);
            k.acquire(bit);
            k.lw(v, idx, 0);
            k.add(v, v, 1);
            k.sw(v, idx, 0);
            k.release(bit);
            k.release_reg("bit");
        } else {
            k.lw(v, idx, 0);
            k.add(v, v, 1);
            k.sw(v, idx, 0);
        }
    };

    if flat {
        let done = k.fresh_label("done");
        params.load(&mut k, m, "in_base");
        k.add(p, m, start);
        k.add(e2, m, end);
        k.branch(Cond::Geu, p, e2, &done);
        let scan = k.label_here("scan");
        k.lw(v, p, 0);
        emit_update(&mut k);
        k.add(p, p, 4);
        k.branch(Cond::Ltu, p, e2, &scan);
        k.place(&done);
    } else {
        let wbuf = k.reg("wbuf");
        k.mul(wbuf, t, BLOCK as i32);
        k.add(wbuf, wbuf, buf as i32);
        k.mov(off, start);
        let done = k.fresh_label("done");
        let outer = k.label_here("outer");
        k.branch(Cond::Geu, off, end, &done);
        k.sub(len, end, off);
        k.alu(AluOp::Min, len, len, BLOCK as i32);
        params.load(&mut k, m, "in_base");
        k.add(m, m, off);
        k.ldma(wbuf, m, len);
        k.mov(p, wbuf);
        k.add(e2, wbuf, len);
        let scan = k.label_here("scan");
        k.lw(v, p, 0);
        emit_update(&mut k);
        k.add(p, p, 4);
        k.branch(Cond::Ltu, p, e2, &scan);
        k.add(off, off, len);
        k.jump(&outer);
        k.place(&done);
        k.release_reg("wbuf");
    }

    if flavour == Flavour::Small {
        // Merge: tasklet t folds its bin range across all private copies.
        bar.wait(&mut k, [p, e2, v]);
        // Reuse start/end as this tasklet's bin byte-range, computed with
        // the same contiguous-split convention as the data range.
        k.movi(v, (bins * 4) as i32);
        emit_tasklet_byte_range(&mut k, v, t, start, end, n_tasklets);
        let merge_done = k.fresh_label("merge_done");
        k.branch(Cond::Geu, start, end, &merge_done);
        let bin_loop = k.label_here("bin_loop");
        // acc (reuse off) = Σ_j priv[j][bin]
        k.movi(off, 0);
        k.movi(m, 0); // j*bins*4 cursor
        let fold = k.label_here("fold");
        k.add(p, m, start);
        k.add(p, p, priv_base as i32);
        k.lw(v, p, 0);
        k.add(off, off, v);
        k.add(m, m, (4 * bins) as i32);
        k.branch(Cond::Ltu, m, (4 * bins * n_tasklets) as i32, &fold);
        k.add(p, start, hist as i32);
        k.sw(off, p, 0);
        k.add(start, start, 4);
        k.branch(Cond::Ltu, start, end, &bin_loop);
        k.place(&merge_done);
    }
    k.stop();
    (k.build().expect("HST kernel builds"), params)
}

fn run_hst(flavour: Flavour, size: DatasetSize, rc: &RunConfig) -> Result<WorkloadRun, SimError> {
    let (n, bins) = datasets::hst(size);
    let seed = if flavour == Flavour::Small { 0x48_5353 } else { 0x48_534c };
    let mut rng = StdRng::seed_from_u64(seed);
    let input: Vec<i32> = (0..n).map(|_| rng.gen_range(0..DOMAIN)).collect();
    let mut expect = vec![0i32; bins];
    for v in &input {
        expect[(v >> SHIFT) as usize] += 1;
    }
    let n_dpus = rc.n_dpus as usize;
    let (program, params) = kernel(rc.dpu.n_tasklets, bins as u32, rc.cached(), flavour);
    let mut sys = PimSystem::new(rc.n_dpus, rc.dpu.clone(), rc.xfer);
    sys.load(&program)?;
    let in_base = if rc.cached() {
        assert_eq!(rc.n_dpus, 1, "cache-centric runs are single-DPU");
        let base = program.heap_base.div_ceil(64) * 64;
        sys.dpu_mut(0).write_wram(base, &to_bytes(&input));
        base
    } else {
        let chunks: Vec<Vec<u8>> =
            (0..n_dpus).map(|d| to_bytes(&input[chunk_range(n, n_dpus, d)])).collect();
        sys.push_to_mram(0, &chunks.iter().map(Vec::as_slice).collect::<Vec<_>>());
        0
    };
    let param_bytes: Vec<Vec<u8>> = (0..n_dpus)
        .map(|d| {
            params.bytes(&[
                ("nbytes", chunk_range(n, n_dpus, d).len() as u32 * 4),
                ("in_base", in_base),
            ])
        })
        .collect();
    sys.push_to_symbol("params", &param_bytes.iter().map(Vec::as_slice).collect::<Vec<_>>());
    let report = sys.launch_all()?;
    // Host-side cross-DPU reduction of the histograms.
    let hists = sys.pull_from_symbol("hist");
    let mut got = vec![0i32; bins];
    for h in &hists {
        for (g, v) in got.iter_mut().zip(from_bytes(h)) {
            *g += v;
        }
    }
    let name = if flavour == Flavour::Small { "HST-S" } else { "HST-L" };
    Ok(crate::common::finish_run(&mut sys, report.per_dpu, validate_words(name, &got, &expect)))
}

impl Workload for HstS {
    fn name(&self) -> &'static str {
        "HST-S"
    }

    fn run(&self, size: DatasetSize, rc: &RunConfig) -> Result<WorkloadRun, SimError> {
        run_hst(Flavour::Small, size, rc)
    }
}

impl Workload for HstL {
    fn name(&self) -> &'static str {
        "HST-L"
    }

    fn run(&self, size: DatasetSize, rc: &RunConfig) -> Result<WorkloadRun, SimError> {
        run_hst(Flavour::Large, size, rc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_dpu::DpuConfig;
    use pim_isa::InstrClass;

    #[test]
    fn hst_tiny_thread_sweep() {
        for t in [1, 4, 16] {
            HstS.run(DatasetSize::Tiny, &RunConfig::single(DpuConfig::paper_baseline(t)))
                .unwrap()
                .assert_valid();
            HstL.run(DatasetSize::Tiny, &RunConfig::single(DpuConfig::paper_baseline(t)))
                .unwrap()
                .assert_valid();
        }
    }

    #[test]
    fn hst_tiny_multi_dpu() {
        HstS.run(DatasetSize::Tiny, &RunConfig::multi(4, DpuConfig::paper_baseline(4)))
            .unwrap()
            .assert_valid();
        HstL.run(DatasetSize::Tiny, &RunConfig::multi(4, DpuConfig::paper_baseline(4)))
            .unwrap()
            .assert_valid();
    }

    #[test]
    fn hst_tiny_cache_mode() {
        let cfg = DpuConfig::paper_baseline(4).with_paper_caches();
        HstS.run(DatasetSize::Tiny, &RunConfig::single(cfg.clone())).unwrap().assert_valid();
        HstL.run(DatasetSize::Tiny, &RunConfig::single(cfg)).unwrap().assert_valid();
    }

    #[test]
    fn hst_l_spends_instructions_on_sync() {
        // The paper's Fig 9 observation: HST-L's shared-histogram locking
        // inflates the sync fraction far beyond HST-S's.
        let cfg = DpuConfig::paper_baseline(16);
        let s = HstS.run(DatasetSize::Tiny, &RunConfig::single(cfg.clone())).unwrap();
        let l = HstL.run(DatasetSize::Tiny, &RunConfig::single(cfg)).unwrap();
        let s_sync = s.per_dpu[0].class_fraction(InstrClass::Sync);
        let l_sync = l.per_dpu[0].class_fraction(InstrClass::Sync);
        assert!(
            l_sync > 5.0 * s_sync.max(0.001),
            "HST-L sync {l_sync:.3} should dwarf HST-S sync {s_sync:.3}"
        );
    }
}
