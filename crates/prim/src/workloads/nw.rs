//! **NW** — Needleman-Wunsch global sequence alignment (the full DP score
//! matrix). Table II: 256-symbol sequences (single DPU), 512 (multi).
//!
//! The score matrix is stored with its boundary row and column included
//! (`H` is `(n+1)×(n+1)`), so the kernel's 8×8 sub-block wavefront needs no
//! boundary special cases: every block reads its top row and left column
//! from `H` itself. Tasklets pick up the blocks of each anti-diagonal and a
//! barrier separates diagonals — the serialization that keeps NW's TLP low
//! and its sync fraction high.
//!
//! Multi-DPU runs tile `H` into `n/D`-wide super-blocks and walk *their*
//! anti-diagonals at the host level, pushing each block's boundary
//! sub-matrix before, and pulling the computed interior after, every
//! launch. The boundary traffic grows with the DPU count — the reason the
//! paper's Fig 10 shows NW scaling sub-linearly.

use pim_asm::{Barrier, DpuProgram, KernelBuilder};
use pim_dpu::SimError;
use pim_host::PimSystem;
use pim_isa::{AluOp, Cond};
use pim_rng::StdRng;

use crate::common::{from_bytes, to_bytes, validate_words, Params};
use crate::{datasets, DatasetSize, RunConfig, Workload, WorkloadRun};

/// Sub-block edge in cells.
const B: u32 = 8;
const GAP: i32 = -1;
const MATCH: i32 = 1;
const MISMATCH: i32 = -1;

/// The NW workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct Nw;

#[allow(clippy::too_many_lines)]
fn kernel(n_tasklets: u32, flat: bool) -> (DpuProgram, Params) {
    let mut k = KernelBuilder::new();
    let params = Params::define(&mut k, &["n", "h_base", "a_base", "b_base"]);
    let bar = Barrier::alloc(&mut k, n_tasklets);
    // Per-tasklet staging: (B+1)×(B+1) block + the two sequence segments.
    let blk_words = (B + 1) * (B + 1);
    let (buf, abuf, bbuf) = if flat {
        (0, 0, 0)
    } else {
        (
            k.alloc_wram(blk_words * 4 * n_tasklets, 8),
            k.alloc_wram(B * 4 * n_tasklets, 8),
            k.alloc_wram(B * 4 * n_tasklets, 8),
        )
    };
    let [n, t, nb, stride] = k.regs(["n", "t", "nb", "stride"]);
    let [w, bi, bj, m] = k.regs(["w", "bi", "bj", "m"]);
    let [p, v, i, j] = k.regs(["p", "v", "i", "j"]);
    let [tmp, d1, d2, bufb] = k.regs(["tmp", "d1", "d2", "bufb"]);
    let [sab, sbb] = k.regs(["sab", "sbb"]);
    params.load(&mut k, n, "n");
    k.tid(t);
    let stop_l = k.fresh_label("stop");
    k.branch(Cond::Eq, n, 0, &stop_l);
    k.alu(AluOp::Div, nb, n, B as i32);
    k.add(stride, n, 1);
    k.mul(stride, stride, 4);
    if !flat {
        k.mul(bufb, t, (blk_words * 4) as i32);
        k.add(bufb, bufb, buf as i32);
        k.mul(sab, t, (B * 4) as i32);
        k.add(sbb, sab, bbuf as i32);
        k.add(sab, sab, abuf as i32);
    }
    // for w in 0 .. 2*nb - 1
    k.movi(w, 0);
    let wave_loop = k.label_here("wave_loop");
    // bi from lo = max(0, w - nb + 1) + t, stepping by T, while bi <= min(w, nb-1).
    k.sub(bi, w, nb);
    k.add(bi, bi, 1);
    k.alu(AluOp::Max, bi, bi, 0);
    k.add(bi, bi, t);
    let wave_done = k.fresh_label("wave_done");
    let block_loop = k.label_here("block_loop");
    k.alu(AluOp::Min, tmp, w, nb);
    let nb_m1 = k.fresh_label("nb_clip");
    k.branch(Cond::Ltu, w, nb, &nb_m1);
    k.sub(tmp, nb, 1);
    k.place(&nb_m1);
    k.branch(Cond::Lt, tmp, bi, &wave_done); // bi > min(w, nb-1)?
    k.sub(bj, w, bi);

    // ---- One B×B block at (bi, bj): cells H[gr0+1..][gc0+1..] ----
    // gr0 = bi*B, gc0 = bj*B (d1, d2 hold them through staging).
    k.mul(d1, bi, B as i32);
    k.mul(d2, bj, B as i32);
    if !flat {
        // Stage top row (B+1 words) from H[gr0][gc0].
        k.mul(m, d1, stride);
        k.mul(p, d2, 4);
        k.add(m, m, p);
        params.load(&mut k, p, "h_base");
        k.add(m, m, p);
        k.ldma(bufb, m, ((B + 1) * 4) as i32);
        // Stage left column: B single-word DMAs from H[gr0+1+i][gc0].
        k.movi(i, 0);
        let lc = k.label_here("left_col");
        k.add(tmp, d1, i);
        k.add(tmp, tmp, 1);
        k.mul(m, tmp, stride);
        k.mul(p, d2, 4);
        k.add(m, m, p);
        params.load(&mut k, p, "h_base");
        k.add(m, m, p);
        // buf[(i+1)*(B+1)]
        k.add(tmp, i, 1);
        k.mul(tmp, tmp, ((B + 1) * 4) as i32);
        k.add(tmp, tmp, bufb);
        k.ldma(tmp, m, 4);
        k.add(i, i, 1);
        k.branch(Cond::Ltu, i, B as i32, &lc);
        // Stage sequence segments a[gr0..+B], b[gc0..+B].
        k.mul(m, d1, 4);
        params.load(&mut k, p, "a_base");
        k.add(m, m, p);
        k.ldma(sab, m, (B * 4) as i32);
        k.mul(m, d2, 4);
        params.load(&mut k, p, "b_base");
        k.add(m, m, p);
        k.ldma(sbb, m, (B * 4) as i32);
    }
    // Compute cells i,j in 1..=B.
    k.movi(i, 1);
    let cell_outer = k.label_here("cell_outer");
    k.movi(j, 1);
    let cell_inner = k.label_here("cell_inner");
    // d?: addresses. Load a[i-1], b[j-1]; s into tmp.
    if flat {
        // a and b straight from memory: a[gr0 + i - 1].
        k.mul(p, bi, B as i32);
        k.add(p, p, i);
        k.sub(p, p, 1);
        k.mul(p, p, 4);
        params.load(&mut k, v, "a_base");
        k.add(p, p, v);
        k.lw(d1, p, 0);
        k.mul(p, bj, B as i32);
        k.add(p, p, j);
        k.sub(p, p, 1);
        k.mul(p, p, 4);
        params.load(&mut k, v, "b_base");
        k.add(p, p, v);
        k.lw(d2, p, 0);
    } else {
        k.mul(p, i, 4);
        k.add(p, p, sab);
        k.lw(d1, p, -4);
        k.mul(p, j, 4);
        k.add(p, p, sbb);
        k.lw(d2, p, -4);
    }
    k.movi(tmp, MISMATCH);
    let noeq = k.fresh_label("noeq");
    k.branch(Cond::Ne, d1, d2, &noeq);
    k.movi(tmp, MATCH);
    k.place(&noeq);
    // Neighbour loads.
    let cell_addr = |k: &mut KernelBuilder,
                     ii: pim_isa::Reg,
                     jj: pim_isa::Reg,
                     di: i32,
                     dj: i32,
                     dst: pim_isa::Reg| {
        if flat {
            // H[gr0 + ii + di][gc0 + jj + dj]
            k.mul(dst, bi, B as i32);
            k.add(dst, dst, ii);
            k.add(dst, dst, di);
            k.mul(dst, dst, stride);
            k.mul(p, bj, B as i32);
            k.add(p, p, jj);
            k.add(p, p, dj);
            k.mul(p, p, 4);
            k.add(dst, dst, p);
            params.load(k, p, "h_base");
            k.add(dst, dst, p);
        } else {
            // buf[(ii+di)*(B+1) + jj+dj]
            k.add(dst, ii, di);
            k.mul(dst, dst, ((B + 1) * 4) as i32);
            k.mul(p, jj, 4);
            k.add(dst, dst, p);
            k.add(dst, dst, dj * 4);
            k.add(dst, dst, bufb);
        }
    };
    // v = diag + s
    cell_addr(&mut k, i, j, -1, -1, m);
    k.lw(v, m, 0);
    k.add(v, v, tmp);
    // up - 1
    cell_addr(&mut k, i, j, -1, 0, m);
    k.lw(d1, m, 0);
    k.add(d1, d1, GAP);
    k.alu(AluOp::Max, v, v, d1);
    // left - 1
    cell_addr(&mut k, i, j, 0, -1, m);
    k.lw(d1, m, 0);
    k.add(d1, d1, GAP);
    k.alu(AluOp::Max, v, v, d1);
    // Store H[i][j].
    cell_addr(&mut k, i, j, 0, 0, m);
    k.sw(v, m, 0);
    k.add(j, j, 1);
    k.branch(Cond::Ltu, j, B as i32 + 1, &cell_inner);
    k.add(i, i, 1);
    k.branch(Cond::Ltu, i, B as i32 + 1, &cell_outer);
    if !flat {
        // Write the B×B interior back, one row per DMA.
        k.movi(i, 0);
        let wb = k.label_here("write_back");
        // m = h_base + (gr0+1+i)*stride + (gc0+1)*4
        k.mul(tmp, bi, B as i32);
        k.add(tmp, tmp, 1);
        k.add(tmp, tmp, i);
        k.mul(m, tmp, stride);
        k.mul(p, bj, B as i32);
        k.add(p, p, 1);
        k.mul(p, p, 4);
        k.add(m, m, p);
        params.load(&mut k, p, "h_base");
        k.add(m, m, p);
        // src = buf[(i+1)*(B+1) + 1]
        k.add(tmp, i, 1);
        k.mul(tmp, tmp, ((B + 1) * 4) as i32);
        k.add(tmp, tmp, 4);
        k.add(tmp, tmp, bufb);
        k.sdma(tmp, m, (B * 4) as i32);
        k.add(i, i, 1);
        k.branch(Cond::Ltu, i, B as i32, &wb);
    }
    // Next block of this wave for this tasklet.
    k.add(bi, bi, n_tasklets as i32);
    k.jump(&block_loop);
    k.place(&wave_done);
    bar.wait(&mut k, [m, p, v]);
    k.add(w, w, 1);
    k.mul(tmp, nb, 2);
    k.sub(tmp, tmp, 1);
    k.branch(Cond::Ltu, w, tmp, &wave_loop);
    k.place(&stop_l);
    k.stop();
    (k.build().expect("NW kernel builds"), params)
}

fn reference(a: &[i32], b: &[i32]) -> Vec<i32> {
    let n = a.len();
    let w = n + 1;
    let mut h = vec![0i32; w * w];
    for (j, cell) in h[..w].iter_mut().enumerate() {
        *cell = j as i32 * GAP;
    }
    for i in 0..w {
        h[i * w] = i as i32 * GAP;
    }
    for i in 1..w {
        for j in 1..w {
            let s = if a[i - 1] == b[j - 1] { MATCH } else { MISMATCH };
            h[i * w + j] = (h[(i - 1) * w + j - 1] + s)
                .max(h[(i - 1) * w + j] + GAP)
                .max(h[i * w + j - 1] + GAP);
        }
    }
    h
}

/// Builds the `(n+1)²` boundary-initialized score matrix.
fn boundary_matrix(n: usize) -> Vec<i32> {
    let w = n + 1;
    let mut h = vec![0i32; w * w];
    for (j, cell) in h[..w].iter_mut().enumerate() {
        *cell = j as i32 * GAP;
    }
    for i in 0..w {
        h[i * w] = i as i32 * GAP;
    }
    h
}

impl Workload for Nw {
    fn name(&self) -> &'static str {
        "NW"
    }

    fn run(&self, size: DatasetSize, rc: &RunConfig) -> Result<WorkloadRun, SimError> {
        let n = datasets::nw(size);
        let mut rng = StdRng::seed_from_u64(0x4e57);
        // 4-letter alphabet, as gene sequences.
        let a: Vec<i32> = (0..n).map(|_| rng.gen_range(0..4)).collect();
        let b: Vec<i32> = (0..n).map(|_| rng.gen_range(0..4)).collect();
        let expect = reference(&a, &b);
        if rc.n_dpus == 1 {
            self.run_single(&a, &b, &expect, rc)
        } else {
            self.run_multi(&a, &b, &expect, rc)
        }
    }
}

impl Nw {
    fn run_single(
        &self,
        a: &[i32],
        b: &[i32],
        expect: &[i32],
        rc: &RunConfig,
    ) -> Result<WorkloadRun, SimError> {
        let n = a.len();
        assert_eq!(n as u32 % B, 0, "sequence length must be a multiple of {B}");
        let (program, params) = kernel(rc.dpu.n_tasklets, rc.cached());
        let mut sys = PimSystem::new(1, rc.dpu.clone(), rc.xfer);
        sys.load(&program)?;
        let h0 = boundary_matrix(n);
        let h_bytes = (h0.len() * 4) as u32;
        let seq_cap = (n as u32 * 4).div_ceil(8) * 8 + crate::common::REGION_SKEW;
        let (h_base, a_base, b_base) = if rc.cached() {
            let base = program.heap_base.div_ceil(64) * 64;
            let dpu = sys.dpu_mut(0);
            dpu.write_wram(base, &to_bytes(&h0));
            dpu.write_wram(base + h_bytes, &to_bytes(a));
            dpu.write_wram(base + h_bytes + seq_cap, &to_bytes(b));
            (base, base + h_bytes, base + h_bytes + seq_cap)
        } else {
            sys.broadcast_to_mram(0, &to_bytes(&h0));
            sys.broadcast_to_mram(h_bytes, &to_bytes(a));
            sys.broadcast_to_mram(h_bytes + seq_cap, &to_bytes(b));
            (0, h_bytes, h_bytes + seq_cap)
        };
        let pb = params.bytes(&[
            ("n", n as u32),
            ("h_base", h_base),
            ("a_base", a_base),
            ("b_base", b_base),
        ]);
        sys.push_to_symbol("params", &[pb.as_slice()]);
        let report = sys.launch_all()?;
        let got = if rc.cached() {
            from_bytes(&sys.dpu(0).read_wram(h_base, h_bytes))
        } else {
            from_bytes(&sys.copy_from_mram(0, h_base, h_bytes))
        };
        Ok(crate::common::finish_run(&mut sys, report.per_dpu, validate_words("NW", &got, expect)))
    }

    /// Host-level anti-diagonal wavefront over `D×D` super-blocks, one DPU
    /// per block per diagonal, boundaries exchanged through the host.
    fn run_multi(
        &self,
        a: &[i32],
        b: &[i32],
        expect: &[i32],
        rc: &RunConfig,
    ) -> Result<WorkloadRun, SimError> {
        let n = a.len();
        let d = rc.n_dpus as usize;
        assert_eq!(
            n % (d * B as usize),
            0,
            "sequence length must split into {B}-aligned bands across DPUs"
        );
        let lb = n / d; // super-block edge
        let (program, params) = kernel(rc.dpu.n_tasklets, false);
        let mut sys = PimSystem::new(rc.n_dpus, rc.dpu.clone(), rc.xfer);
        sys.load(&program)?;
        let w = n + 1;
        let mut h = boundary_matrix(n);
        let blk_w = lb + 1;
        let blk_bytes = (blk_w * blk_w * 4) as u32;
        let seq_cap = (lb as u32 * 4).div_ceil(8) * 8 + crate::common::REGION_SKEW;
        let (h_base, a_base, b_base) = (0u32, blk_bytes, blk_bytes + seq_cap);
        let mut per_dpu: Vec<pim_dpu::DpuRunStats> = Vec::new();
        for diag in 0..(2 * d - 1) {
            // Blocks (ti, diag-ti) on this diagonal, one per DPU.
            let lo = diag.saturating_sub(d - 1);
            let hi = diag.min(d - 1);
            let blocks: Vec<(usize, usize)> = (lo..=hi).map(|ti| (ti, diag - ti)).collect();
            // Push each block's boundary sub-matrix and sequence slices.
            for (slot, &(ti, tj)) in blocks.iter().enumerate() {
                let (r0, c0) = (ti * lb, tj * lb);
                let mut sub = Vec::with_capacity(blk_w * blk_w);
                for i in 0..blk_w {
                    sub.extend_from_slice(&h[(r0 + i) * w + c0..(r0 + i) * w + c0 + blk_w]);
                }
                sys.copy_to_mram(slot as u32, h_base, &to_bytes(&sub));
                sys.copy_to_mram(slot as u32, a_base, &to_bytes(&a[r0..r0 + lb]));
                sys.copy_to_mram(slot as u32, b_base, &to_bytes(&b[c0..c0 + lb]));
            }
            for slot in 0..d {
                let nval = if slot < blocks.len() { lb as u32 } else { 0 };
                let pb = params.bytes(&[
                    ("n", nval),
                    ("h_base", h_base),
                    ("a_base", a_base),
                    ("b_base", b_base),
                ]);
                sys.dpu_mut(slot as u32).write_wram_symbol("params", &pb);
            }
            let report = sys.launch_all()?;
            if per_dpu.is_empty() {
                per_dpu = report.per_dpu;
            } else {
                for (acc, s) in per_dpu.iter_mut().zip(&report.per_dpu) {
                    acc.merge(s);
                }
            }
            // Pull interiors back into the host matrix.
            for (slot, &(ti, tj)) in blocks.iter().enumerate() {
                let (r0, c0) = (ti * lb, tj * lb);
                let sub = from_bytes(&sys.copy_from_mram(slot as u32, h_base, blk_bytes));
                for i in 1..blk_w {
                    for j in 1..blk_w {
                        h[(r0 + i) * w + (c0 + j)] = sub[i * blk_w + j];
                    }
                }
            }
        }
        Ok(crate::common::finish_run(&mut sys, per_dpu, validate_words("NW", &h, expect)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_dpu::DpuConfig;

    #[test]
    fn nw_tiny_thread_sweep() {
        for t in [1, 4, 16] {
            Nw.run(DatasetSize::Tiny, &RunConfig::single(DpuConfig::paper_baseline(t)))
                .unwrap()
                .assert_valid();
        }
    }

    #[test]
    fn nw_tiny_multi_dpu() {
        Nw.run(DatasetSize::Tiny, &RunConfig::multi(2, DpuConfig::paper_baseline(4)))
            .unwrap()
            .assert_valid();
    }

    #[test]
    fn nw_tiny_cache_mode() {
        let cfg = DpuConfig::paper_baseline(4).with_paper_caches();
        Nw.run(DatasetSize::Tiny, &RunConfig::single(cfg)).unwrap().assert_valid();
    }
}
