//! Shared plumbing for the workload implementations: byte/word conversion,
//! contiguous partitioning, and the host↔kernel parameter-block convention.

use std::collections::BTreeMap;
use std::ops::Range;

use pim_asm::KernelBuilder;
use pim_isa::Reg;

/// Inter-region skew (three cache lines) added between a workload's MRAM /
/// flat-space buffers. Power-of-two-sized buffers at power-of-two-aligned
/// bases alias to the same cache set under the §V-D cache-centric model
/// (A[x], B[x], C[x] all landing in one set thrashes even an 8-way cache);
/// real allocators break this alignment with header/metadata padding, and
/// this constant plays that role.
pub const REGION_SKEW: u32 = 192;

/// Serializes `i32` words little-endian.
#[must_use]
pub fn to_bytes(words: &[i32]) -> Vec<u8> {
    words.iter().flat_map(|w| w.to_le_bytes()).collect()
}

/// Deserializes little-endian `i32` words.
///
/// # Panics
///
/// Panics if `bytes` is not a multiple of 4.
#[must_use]
pub fn from_bytes(bytes: &[u8]) -> Vec<i32> {
    assert_eq!(bytes.len() % 4, 0, "byte buffer must hold whole words");
    bytes.chunks_exact(4).map(|c| i32::from_le_bytes(c.try_into().expect("chunk of 4"))).collect()
}

/// Splits `total` items into `parts` contiguous chunks, spreading the
/// remainder over the first chunks; returns chunk `idx`'s range.
///
/// # Panics
///
/// Panics if `parts == 0` or `idx >= parts`.
#[must_use]
pub fn chunk_range(total: usize, parts: usize, idx: usize) -> Range<usize> {
    assert!(parts > 0 && idx < parts);
    let base = total / parts;
    let rem = total % parts;
    let start = idx * base + idx.min(rem);
    let len = base + usize::from(idx < rem);
    start..(start + len).min(total)
}

/// Emits the contiguous per-tasklet byte-range split used by the flat
/// (cache-centric) kernel variants: given the total byte count in `nbytes`
/// and the tasklet id in `t`, computes `start`/`end` byte offsets of this
/// tasklet's share (word-aligned; the last tasklet absorbs the tail).
///
/// Clobbers `start` and `end`; `nbytes` and `t` are read-only.
pub fn emit_tasklet_byte_range(
    k: &mut KernelBuilder,
    nbytes: Reg,
    t: Reg,
    start: Reg,
    end: Reg,
    n_tasklets: u32,
) {
    use pim_isa::{AluOp, Cond};
    // end = word-rounded share = (nbytes / T) & !3
    k.alu(AluOp::Div, end, nbytes, n_tasklets as i32);
    k.alu(AluOp::Srl, end, end, 2);
    k.alu(AluOp::Sll, end, end, 2);
    // start = t * share; end = start + share.
    k.mul(start, end, t);
    k.add(end, start, end);
    // The last tasklet absorbs the remainder.
    let not_last = k.fresh_label("range_not_last");
    k.branch(Cond::Ne, t, n_tasklets as i32 - 1, &not_last);
    k.mov(end, nbytes);
    k.place(&not_last);
}

/// Gathers per-DPU word buffers from MRAM with one *parallel* transfer
/// (the SDK's `dpu_push_xfer(FROM_DPU)` pads every DPU to the largest
/// buffer), then trims each DPU's result to its actual length.
#[must_use]
pub fn parallel_pull_words(
    sys: &mut pim_host::PimSystem,
    addr: u32,
    lens_bytes: &[u32],
) -> Vec<Vec<i32>> {
    let mut scratch = Vec::new();
    parallel_pull_words_into(sys, addr, lens_bytes, &mut scratch)
}

/// [`parallel_pull_words`] with a caller-held raw-byte scratch buffer, so
/// launch loops (BFS levels, MLP layers) and experiment sweeps reuse the
/// per-DPU pull allocations instead of growing fresh ones every iteration.
#[must_use]
pub fn parallel_pull_words_into(
    sys: &mut pim_host::PimSystem,
    addr: u32,
    lens_bytes: &[u32],
    scratch: &mut Vec<Vec<u8>>,
) -> Vec<Vec<i32>> {
    let max = lens_bytes.iter().copied().max().unwrap_or(0);
    if max == 0 {
        return vec![Vec::new(); lens_bytes.len()];
    }
    sys.pull_from_mram_into(addr, max, scratch);
    scratch.iter().zip(lens_bytes).map(|(b, &l)| from_bytes(&b[..l as usize])).collect()
}

/// Compares a simulated output word stream against the reference,
/// reporting the first divergence.
///
/// # Errors
///
/// Returns a description of the first mismatching element (or a length
/// mismatch).
pub fn validate_words(name: &str, got: &[i32], expect: &[i32]) -> Result<(), String> {
    if got.len() != expect.len() {
        return Err(format!(
            "{name}: length mismatch, got {} words, expected {}",
            got.len(),
            expect.len()
        ));
    }
    match got.iter().zip(expect).position(|(g, e)| g != e) {
        None => Ok(()),
        Some(at) => Err(format!(
            "{name}: mismatch at element {at}: got {}, expected {}",
            got[at], expect[at]
        )),
    }
}

/// Assembles a [`crate::WorkloadRun`] from a finished system, harvesting
/// the structured event trace (if tracing was enabled) alongside the
/// timeline. Every workload's `run` ends here so traces are never lost.
#[must_use]
pub fn finish_run(
    sys: &mut pim_host::PimSystem,
    per_dpu: Vec<pim_dpu::DpuRunStats>,
    validation: Result<(), String>,
) -> crate::WorkloadRun {
    crate::WorkloadRun { timeline: *sys.timeline(), per_dpu, validation, trace: sys.take_trace() }
}

/// The host↔kernel parameter block: an ordered list of named `u32` values
/// living in the WRAM symbol `"params"`, mirroring how PrIM host code sets
/// scalars like `size_per_dpu` before launch (paper Fig 2(a), line 18-20).
#[derive(Debug, Clone)]
pub struct Params {
    offsets: BTreeMap<String, u32>,
    order: Vec<String>,
}

impl Params {
    /// Declares the parameter block in the kernel (allocates the WRAM
    /// global and records each name's offset).
    pub fn define(k: &mut KernelBuilder, names: &[&str]) -> Self {
        let base = k.global_zeroed("params", names.len() as u32 * 4);
        let mut offsets = BTreeMap::new();
        let mut order = Vec::with_capacity(names.len());
        for (i, n) in names.iter().enumerate() {
            offsets.insert((*n).to_string(), base + i as u32 * 4);
            order.push((*n).to_string());
        }
        Params { offsets, order }
    }

    /// Emits code loading parameter `name` into `dst` (clobbers only `dst`).
    ///
    /// # Panics
    ///
    /// Panics if the parameter was not declared.
    pub fn load(&self, k: &mut KernelBuilder, dst: Reg, name: &str) {
        let addr = *self.offsets.get(name).unwrap_or_else(|| panic!("unknown parameter `{name}`"));
        k.movi(dst, addr as i32);
        k.lw(dst, dst, 0);
    }

    /// Serializes values for the host push, in declaration order.
    ///
    /// # Panics
    ///
    /// Panics if `values` does not provide every declared parameter.
    #[must_use]
    pub fn bytes(&self, values: &[(&str, u32)]) -> Vec<u8> {
        let map: BTreeMap<&str, u32> = values.iter().copied().collect();
        assert_eq!(map.len(), self.order.len(), "must set every parameter exactly once");
        self.order
            .iter()
            .flat_map(|n| {
                map.get(n.as_str())
                    .unwrap_or_else(|| panic!("missing parameter `{n}`"))
                    .to_le_bytes()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_round_trip() {
        let words = vec![1, -2, i32::MAX, i32::MIN];
        assert_eq!(from_bytes(&to_bytes(&words)), words);
    }

    #[test]
    fn chunk_ranges_cover_exactly() {
        for total in [0usize, 1, 7, 100, 101] {
            for parts in [1usize, 3, 7, 16] {
                let mut covered = 0;
                let mut prev_end = 0;
                for i in 0..parts {
                    let r = chunk_range(total, parts, i);
                    assert_eq!(r.start, prev_end, "chunks must be contiguous");
                    prev_end = r.end;
                    covered += r.len();
                }
                assert_eq!(covered, total, "total={total} parts={parts}");
                assert_eq!(prev_end, total);
            }
        }
    }

    #[test]
    fn chunk_sizes_differ_by_at_most_one() {
        for i in 0..7 {
            let len = chunk_range(100, 7, i).len();
            assert!(len == 14 || len == 15);
        }
    }

    #[test]
    fn params_block_layout_and_serialization() {
        let mut k = KernelBuilder::new();
        let p = Params::define(&mut k, &["n", "base"]);
        let r = k.reg("r");
        p.load(&mut k, r, "n");
        p.load(&mut k, r, "base");
        k.stop();
        let program = k.build().unwrap();
        let sym = program.symbol("params").unwrap();
        assert_eq!(sym.size, 8);
        let bytes = p.bytes(&[("base", 7), ("n", 42)]);
        // Declaration order wins: n first.
        assert_eq!(from_bytes(&bytes), vec![42, 7]);
    }

    #[test]
    #[should_panic(expected = "missing parameter")]
    fn params_missing_value_panics() {
        let mut k = KernelBuilder::new();
        let p = Params::define(&mut k, &["n", "base"]);
        let _ = p.bytes(&[("n", 1), ("typo", 2)]);
    }
}
