//! # prim-suite
//!
//! The 16 PrIM benchmarks (Gómez-Luna et al.'s open-source UPMEM benchmark
//! suite, the workloads the paper characterizes in §IV and uses for every
//! case study) re-implemented for this simulation framework.
//!
//! Each workload bundles four things:
//!
//! 1. a **DPU kernel** authored with the [`pim_asm::KernelBuilder`] in the
//!    scratchpad-centric style of the original PrIM code (block-wise
//!    `mram_read` staging, per-tasklet partitioning, barriers/mutexes where
//!    the original uses them) — and, where the §V-D case study needs it, a
//!    **cache-centric variant** operating on the flat DRAM-backed address
//!    space with plain loads/stores;
//! 2. **host orchestration**: data partitioning across DPUs, transfers, and
//!    (for multi-kernel workloads such as BFS or the SCANs) the launch
//!    loop with inter-DPU communication through the host;
//! 3. a seeded **dataset generator** for the paper's Table II
//!    configurations (plus a `Tiny` size for fast tests);
//! 4. a pure-Rust **reference implementation** used to validate every
//!    simulated run's output bit-for-bit — the functional half of the
//!    paper's simulator validation (§III-C), standing in for the real-
//!    hardware cross-check this reproduction cannot perform.
//!
//! # Example
//!
//! ```
//! use prim_suite::{all_workloads, DatasetSize, RunConfig};
//! use pim_dpu::DpuConfig;
//!
//! let va = prim_suite::workload_by_name("VA").unwrap();
//! let run = va
//!     .run(DatasetSize::Tiny, &RunConfig::single(DpuConfig::paper_baseline(4)))
//!     .unwrap();
//! run.validation.expect("output matches the reference");
//! assert!(run.per_dpu[0].instructions > 0);
//! assert_eq!(all_workloads().len(), 16);
//! // Two extension families ride alongside the dense suite: block-sparse
//! // BSR kernels and chained quantized NN-inference layers.
//! assert_eq!(prim_suite::extended_workloads().len(), 20);
//! assert!(prim_suite::workload_by_name("SpMV-CSR").is_some(), "alias for the dense SpMV");
//! ```

pub mod common;
pub mod datasets;
pub mod workloads;

use pim_dpu::{DpuConfig, DpuRunStats, MemoryMode, SimError};
use pim_host::{ChannelConfig, ChannelMode, ExecutionTimeline};

/// Which of the paper's Table II dataset configurations to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetSize {
    /// A miniature dataset for fast functional tests (not in the paper).
    Tiny,
    /// The paper's single-DPU column of Table II.
    SingleDpu,
    /// The paper's multiple-DPU column of Table II.
    MultiDpu,
}

/// How a workload is executed.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Per-DPU configuration (tasklets, ILP/SIMT/cache/MMU knobs, …).
    pub dpu: DpuConfig,
    /// Number of DPUs (strong scaling splits the dataset across them).
    pub n_dpus: u32,
    /// CPU↔DPU channel model (bandwidths + v2 scheduling mode). The
    /// constructors default to the legacy blocking pipe, so every
    /// pre-v2 run keeps its exact numbers.
    pub xfer: ChannelConfig,
}

impl RunConfig {
    /// A single-DPU run.
    #[must_use]
    pub fn single(dpu: DpuConfig) -> Self {
        RunConfig { dpu, n_dpus: 1, xfer: ChannelConfig::paper() }
    }

    /// A multi-DPU strong-scaling run.
    #[must_use]
    pub fn multi(n_dpus: u32, dpu: DpuConfig) -> Self {
        RunConfig { dpu, n_dpus, xfer: ChannelConfig::paper() }
    }

    /// The same run under a different [`ChannelMode`] (builder style, for
    /// channel-mode sweeps and the tuner).
    #[must_use]
    pub fn with_channel(mut self, mode: ChannelMode) -> Self {
        self.xfer.mode = mode;
        self
    }

    /// Whether the DPUs run the cache-centric memory model.
    #[must_use]
    pub fn cached(&self) -> bool {
        matches!(self.dpu.memory_mode, MemoryMode::Cached { .. })
    }
}

/// The result of running one workload end-to-end.
#[derive(Debug, Clone)]
pub struct WorkloadRun {
    /// End-to-end time breakdown (input transfer / kernel / output
    /// transfer), accumulated over all launches — Fig 10's bars.
    pub timeline: ExecutionTimeline,
    /// Per-DPU statistics, merged across launches.
    pub per_dpu: Vec<DpuRunStats>,
    /// `Ok` when the pulled outputs matched the reference implementation.
    pub validation: Result<(), String>,
    /// Structured event trace, present when the DPU config enabled event
    /// tracing (`event_trace_capacity > 0`).
    pub trace: Option<pim_trace::SystemTrace>,
}

impl WorkloadRun {
    /// Statistics merged across every DPU and launch (single-DPU runs
    /// return a clone of the only entry).
    #[must_use]
    pub fn merged(&self) -> DpuRunStats {
        let mut out = DpuRunStats::default();
        for s in &self.per_dpu {
            out.merge(s);
        }
        out
    }

    /// Panics with the validation message if the run did not validate.
    ///
    /// # Panics
    ///
    /// Panics when the simulated output differed from the reference.
    pub fn assert_valid(&self) {
        if let Err(e) = &self.validation {
            panic!("workload output mismatch: {e}");
        }
    }
}

/// Which kernel family a workload belongs to.
///
/// The original 16 PrIM benchmarks are all dense-array kernels
/// ([`WorkloadFamily::Dense`]). The two extension families stress the
/// regimes the paper's case studies care about but PrIM does not cover:
/// block-sparse kernels with irregular gather DMA
/// ([`WorkloadFamily::Sparse`]) and quantized NN-inference layers chained
/// across multiple DPU launches ([`WorkloadFamily::NnInference`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadFamily {
    /// The dense PrIM suite (Table II workloads).
    Dense,
    /// Block-sparse (BSR) SpMV/SpMM with gather DMA.
    Sparse,
    /// Quantized MLP / attention layers as chained kernel launches.
    NnInference,
}

impl WorkloadFamily {
    /// Stable lowercase label used in reports and JSON rows.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            WorkloadFamily::Dense => "dense",
            WorkloadFamily::Sparse => "sparse",
            WorkloadFamily::NnInference => "nn-inference",
        }
    }
}

/// A PrIM workload: kernel + host orchestration + dataset + reference.
pub trait Workload {
    /// The workload's PrIM name (`"VA"`, `"GEMV"`, `"SCAN-SSA"`, …).
    fn name(&self) -> &'static str;

    /// The kernel family the workload belongs to.
    fn family(&self) -> WorkloadFamily {
        WorkloadFamily::Dense
    }

    /// Alternative registry names (disambiguation; old names kept as
    /// aliases so golden snapshots and saved reports stay valid).
    fn aliases(&self) -> &'static [&'static str] {
        &[]
    }

    /// Whether a cache-centric kernel variant exists for the §V-D study.
    fn supports_cache_mode(&self) -> bool {
        true
    }

    /// Whether the workload can strong-scale across multiple DPUs.
    fn supports_multi_dpu(&self) -> bool {
        true
    }

    /// Runs the workload end-to-end (generate → stage → launch(es) →
    /// pull → validate).
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] if the simulated kernel faults.
    fn run(&self, size: DatasetSize, rc: &RunConfig) -> Result<WorkloadRun, SimError>;
}

/// All 16 PrIM workloads, in the paper's figure order.
#[must_use]
pub fn all_workloads() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(workloads::bfs::Bfs),
        Box::new(workloads::bs::Bs),
        Box::new(workloads::gemv::Gemv),
        Box::new(workloads::hst::HstL),
        Box::new(workloads::hst::HstS),
        Box::new(workloads::mlp::Mlp),
        Box::new(workloads::nw::Nw),
        Box::new(workloads::red::Red),
        Box::new(workloads::scan::ScanRss),
        Box::new(workloads::scan::ScanSsa),
        Box::new(workloads::sel::Sel),
        Box::new(workloads::spmv::Spmv),
        Box::new(workloads::trns::Trns),
        Box::new(workloads::ts::Ts),
        Box::new(workloads::uni::Uni),
        Box::new(workloads::va::Va),
    ]
}

/// The sparse BSR family: SpMV and SpMM over seeded block-sparse matrices.
#[must_use]
pub fn sparse_workloads() -> Vec<Box<dyn Workload>> {
    vec![Box::new(workloads::spmv_bsr::SpmvBsr), Box::new(workloads::spmm_bsr::SpmmBsr)]
}

/// The NN-inference family: quantized MLP and single-head attention,
/// each expressed as chained kernel launches with host-side staging.
#[must_use]
pub fn nn_workloads() -> Vec<Box<dyn Workload>> {
    vec![Box::new(workloads::mlp_q::MlpQ), Box::new(workloads::attn::Attn)]
}

/// Every registered workload: the 16 dense PrIM benchmarks followed by
/// the sparse and NN-inference extension families (20 total).
#[must_use]
pub fn extended_workloads() -> Vec<Box<dyn Workload>> {
    let mut all = all_workloads();
    all.extend(sparse_workloads());
    all.extend(nn_workloads());
    all
}

/// Looks up one workload by name or alias (case-insensitive), across all
/// families. Exact names win over aliases, so `"SpMV"` resolves to the
/// dense CSR kernel while `"SpMV-CSR"` is its unambiguous alias.
#[must_use]
pub fn workload_by_name(name: &str) -> Option<Box<dyn Workload>> {
    let all = extended_workloads();
    if let Some(i) = all.iter().position(|w| w.name().eq_ignore_ascii_case(name)) {
        let mut all = all;
        return Some(all.swap_remove(i));
    }
    all.into_iter().find(|w| w.aliases().iter().any(|a| a.eq_ignore_ascii_case(name)))
}
