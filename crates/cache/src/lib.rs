//! # pim-cache
//!
//! A cycle-level set-associative cache model used by the paper's
//! "on-demand caches vs. scratchpads" case study (§V-D, Figures 15–16).
//!
//! The cache-centric DPU configuration replaces the architecturally managed
//! scratchpad (WRAM) with an **instruction cache** and a **data cache**,
//! "each configured as an 8-way set-associative cache with LRU replacement
//! policy and 24 KB and 64 KB capacity, respectively, identical to the
//! instruction memory (IRAM) and scratchpad (WRAM) space provisioned under
//! the baseline" (paper §V-D). Data-cache lines are write-back /
//! write-allocate.
//!
//! This crate models only the tag/state side: hits and misses, LRU
//! replacement, dirty-line writebacks, and fill accounting. The timing of
//! miss handling (DRAM transactions) belongs to the DPU's memory pipeline,
//! which consumes the [`AccessOutcome`] returned by [`Cache::access`].
//!
//! # Example
//!
//! ```
//! use pim_cache::{Cache, CacheConfig};
//!
//! let mut dcache = Cache::new(CacheConfig::paper_dcache());
//! let miss = dcache.access(0x1000, false);
//! assert!(!miss.hit);
//! let hit = dcache.access(0x1004, false); // same 64 B line
//! assert!(hit.hit);
//! assert_eq!(dcache.stats().misses, 1);
//! ```

use std::fmt;

/// Geometry of a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u32,
    /// Associativity (lines per set).
    pub ways: u32,
    /// Line size in bytes.
    pub line_bytes: u32,
    /// XOR-fold the tag into the set index
    /// (set = `(line ^ tag ^ tag/sets) % sets`; power-of-two set counts only).
    ///
    /// Real caches commonly hash the index to break power-of-two stride
    /// aliasing; without it, the PrIM hosts' equal power-of-two data
    /// partitions make every tasklet's stream pointer collide in one set
    /// and even an 8-way cache thrashes to a 0% hit rate.
    pub hashed_index: bool,
}

impl CacheConfig {
    /// The paper's cache-centric data cache: 64 KB, 8-way, LRU (§V-D).
    #[must_use]
    pub fn paper_dcache() -> Self {
        CacheConfig { size_bytes: 64 * 1024, ways: 8, line_bytes: 64, hashed_index: true }
    }

    /// The paper's cache-centric instruction cache: 24 KB, 8-way, LRU (§V-D).
    #[must_use]
    pub fn paper_icache() -> Self {
        CacheConfig { size_bytes: 24 * 1024, ways: 8, line_bytes: 64, hashed_index: true }
    }

    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sizes, capacity not a
    /// multiple of `ways * line_bytes`).
    #[must_use]
    pub fn sets(&self) -> u32 {
        assert!(self.size_bytes > 0 && self.ways > 0 && self.line_bytes > 0);
        assert_eq!(
            self.size_bytes % (self.ways * self.line_bytes),
            0,
            "capacity must be a whole number of ways × lines"
        );
        self.size_bytes / (self.ways * self.line_bytes)
    }

    /// The address of the first byte of the line containing `addr`.
    #[must_use]
    pub fn line_addr(&self, addr: u32) -> u32 {
        addr - addr % self.line_bytes
    }
}

/// Per-cache hit/miss statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed (each causes one line fill).
    pub misses: u64,
    /// Dirty lines written back on eviction.
    pub writebacks: u64,
    /// Bytes filled from the next level (misses × line size).
    pub bytes_filled: u64,
    /// Bytes written back to the next level.
    pub bytes_written_back: u64,
}

impl CacheStats {
    /// Accumulates another run's counters into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.writebacks += other.writebacks;
        self.bytes_filled += other.bytes_filled;
        self.bytes_written_back += other.bytes_written_back;
    }

    /// Total accesses.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in `[0, 1]`, or 0.0 when the cache was never accessed.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses() as f64
        }
    }
}

/// The outcome of a cache access, consumed by the DPU's memory pipeline to
/// schedule the required DRAM traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the access hit.
    pub hit: bool,
    /// On a miss, the line-aligned address to fill from the next level.
    pub fill_line: Option<u32>,
    /// On a miss that evicted a dirty line, that line's address (must be
    /// written back to the next level before the fill completes).
    pub writeback_line: Option<u32>,
}

impl AccessOutcome {
    const HIT: AccessOutcome = AccessOutcome { hit: true, fill_line: None, writeback_line: None };
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u32,
    valid: bool,
    dirty: bool,
    /// Monotonic counter for exact LRU ordering within the set.
    last_use: u64,
}

/// A set-associative, write-back/write-allocate cache with exact LRU
/// replacement.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    lines: Vec<Line>, // sets × ways, row-major by set
    use_clock: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty (all-invalid) cache.
    #[must_use]
    pub fn new(cfg: CacheConfig) -> Self {
        let n = (cfg.sets() * cfg.ways) as usize;
        Cache {
            cfg,
            lines: vec![Line { tag: 0, valid: false, dirty: false, last_use: 0 }; n],
            use_clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache geometry.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn set_of(&self, addr: u32) -> u32 {
        let sets = self.cfg.sets();
        let line = addr / self.cfg.line_bytes;
        if self.cfg.hashed_index && sets.is_power_of_two() {
            // Two-level XOR fold: large power-of-two strides perturb the
            // index at every level, not just the first.
            (line ^ (line / sets) ^ (line / sets / sets)) % sets
        } else {
            line % sets
        }
    }

    fn tag_of(&self, addr: u32) -> u32 {
        addr / self.cfg.line_bytes / self.cfg.sets()
    }

    /// Inverse of `set_of`: the line index of a resident (tag, set) pair.
    fn line_of(&self, tag: u32, set: u32) -> u32 {
        let sets = self.cfg.sets();
        let low = if self.cfg.hashed_index && sets.is_power_of_two() {
            set ^ (tag % sets) ^ ((tag / sets) % sets)
        } else {
            set
        };
        tag * sets + low
    }

    /// Looks up `addr` without changing any state (no LRU update, no fill).
    #[must_use]
    pub fn probe(&self, addr: u32) -> bool {
        let set = self.set_of(addr) as usize;
        let tag = self.tag_of(addr);
        let ways = self.cfg.ways as usize;
        self.lines[set * ways..(set + 1) * ways].iter().any(|l| l.valid && l.tag == tag)
    }

    /// Performs an access (read if `write` is false, write otherwise),
    /// updating LRU state and, on a miss, allocating the line (evicting the
    /// LRU way).
    ///
    /// The caller is responsible for modelling the latency and DRAM traffic
    /// of the returned fill/writeback.
    pub fn access(&mut self, addr: u32, write: bool) -> AccessOutcome {
        self.use_clock += 1;
        let set = self.set_of(addr) as usize;
        let tag = self.tag_of(addr);
        let ways = self.cfg.ways as usize;
        let base = set * ways;
        // Hit?
        for l in &mut self.lines[base..base + ways] {
            if l.valid && l.tag == tag {
                l.last_use = self.use_clock;
                l.dirty |= write;
                self.stats.hits += 1;
                return AccessOutcome::HIT;
            }
        }
        // Miss: pick victim = invalid way if any, else LRU.
        self.stats.misses += 1;
        self.stats.bytes_filled += u64::from(self.cfg.line_bytes);
        let victim = {
            let slice = &self.lines[base..base + ways];
            let idx = slice
                .iter()
                .enumerate()
                .find(|(_, l)| !l.valid)
                .map(|(i, _)| i)
                .unwrap_or_else(|| {
                    slice.iter().enumerate().min_by_key(|(_, l)| l.last_use).expect("ways > 0").0
                });
            base + idx
        };
        let old = self.lines[victim];
        let writeback_line = if old.valid && old.dirty {
            self.stats.writebacks += 1;
            self.stats.bytes_written_back += u64::from(self.cfg.line_bytes);
            Some(self.line_of(old.tag, set as u32) * self.cfg.line_bytes)
        } else {
            None
        };
        self.lines[victim] = Line { tag, valid: true, dirty: write, last_use: self.use_clock };
        AccessOutcome { hit: false, fill_line: Some(self.cfg.line_addr(addr)), writeback_line }
    }

    /// Writes back and invalidates every line; returns the addresses of the
    /// dirty lines that were written back.
    pub fn flush(&mut self) -> Vec<u32> {
        let sets = self.cfg.sets();
        let ways = self.cfg.ways as usize;
        let mut dirty = Vec::new();
        for set in 0..sets {
            for way in 0..ways {
                let l = self.lines[set as usize * ways + way];
                if l.valid && l.dirty {
                    dirty.push(self.line_of(l.tag, set) * self.cfg.line_bytes);
                    self.stats.writebacks += 1;
                    self.stats.bytes_written_back += u64::from(self.cfg.line_bytes);
                }
                let slot = &mut self.lines[set as usize * ways + way];
                slot.valid = false;
                slot.dirty = false;
            }
        }
        dirty
    }
}

impl fmt::Display for Cache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} KB {}-way cache ({} B lines, {:.1}% hit rate)",
            self.cfg.size_bytes / 1024,
            self.cfg.ways,
            self.cfg.line_bytes,
            self.stats.hit_rate() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometries() {
        assert_eq!(CacheConfig::paper_dcache().sets(), 128);
        assert_eq!(CacheConfig::paper_icache().sets(), 48);
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = Cache::new(CacheConfig::paper_dcache());
        let out = c.access(0x40, false);
        assert!(!out.hit);
        assert_eq!(out.fill_line, Some(0x40));
        assert_eq!(out.writeback_line, None);
        assert!(c.access(0x7f, false).hit, "same line must hit");
        assert!(!c.access(0x80, false).hit, "next line must miss");
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // Tiny cache: 2 ways, 1 set, 64 B lines.
        let cfg = CacheConfig { size_bytes: 128, ways: 2, line_bytes: 64, hashed_index: false };
        let mut c = Cache::new(cfg);
        c.access(0, false); // line A
        c.access(64, false); // line B
        c.access(0, false); // touch A; B is now LRU
        let out = c.access(128, false); // fills line C, must evict B
        assert!(!out.hit);
        assert!(c.probe(0), "A must survive");
        assert!(!c.probe(64), "B must be evicted");
        assert!(c.probe(128));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let cfg = CacheConfig { size_bytes: 64, ways: 1, line_bytes: 64, hashed_index: false };
        let mut c = Cache::new(cfg);
        c.access(0, true); // dirty line at 0
        let out = c.access(64, false);
        assert_eq!(out.writeback_line, Some(0));
        assert_eq!(c.stats().writebacks, 1);
        assert_eq!(c.stats().bytes_written_back, 64);
        // Clean eviction produces no writeback.
        let out2 = c.access(128, false);
        assert_eq!(out2.writeback_line, None);
    }

    #[test]
    fn writeback_address_reconstruction_round_trips() {
        let cfg = CacheConfig { size_bytes: 1024, ways: 2, line_bytes: 64, hashed_index: false };
        let mut c = Cache::new(cfg);
        // Use a high address; evict it via two conflicting fills.
        let addr = 0x0012_3440; // arbitrary, line-aligned
        c.access(addr, true);
        let set_stride = cfg.sets() * cfg.line_bytes;
        c.access(addr + set_stride, false);
        let out = c.access(addr + 2 * set_stride, false);
        assert_eq!(out.writeback_line, Some(cfg.line_addr(addr)));
    }

    #[test]
    fn flush_writes_back_dirty_lines_and_invalidates() {
        let cfg = CacheConfig { size_bytes: 256, ways: 2, line_bytes: 64, hashed_index: false };
        let mut c = Cache::new(cfg);
        c.access(0, true);
        c.access(64, false);
        let dirty = c.flush();
        assert_eq!(dirty, vec![0]);
        assert!(!c.probe(0));
        assert!(!c.probe(64));
    }

    #[test]
    fn stats_accumulate() {
        let mut c = Cache::new(CacheConfig::paper_dcache());
        for i in 0..10u32 {
            c.access(i * 4, false);
        }
        // 10 word accesses inside one 64 B line: 1 miss + 9 hits.
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().hits, 9);
        assert!((c.stats().hit_rate() - 0.9).abs() < 1e-9);
        assert_eq!(c.stats().bytes_filled, 64);
    }

    #[test]
    #[should_panic(expected = "whole number")]
    fn degenerate_geometry_panics() {
        let _ = Cache::new(CacheConfig {
            size_bytes: 100,
            ways: 3,
            line_bytes: 64,
            hashed_index: false,
        });
    }
}
