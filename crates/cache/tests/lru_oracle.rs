//! Property test: the cache's hit/miss decisions match a naive LRU oracle.

use std::collections::HashMap;

use pim_cache::{Cache, CacheConfig};
use proptest::prelude::*;

/// A trivially correct set-associative LRU model: per set, an ordered list
/// of resident line tags, most recent last.
struct Oracle {
    cfg: CacheConfig,
    sets: HashMap<u32, Vec<u32>>,
}

impl Oracle {
    fn new(cfg: CacheConfig) -> Self {
        Oracle { cfg, sets: HashMap::new() }
    }

    fn access(&mut self, addr: u32) -> bool {
        let line = addr / self.cfg.line_bytes;
        let set = line % self.cfg.sets();
        let tag = line / self.cfg.sets();
        let list = self.sets.entry(set).or_default();
        if let Some(pos) = list.iter().position(|&t| t == tag) {
            list.remove(pos);
            list.push(tag);
            true
        } else {
            if list.len() == self.cfg.ways as usize {
                list.remove(0);
            }
            list.push(tag);
            false
        }
    }
}

proptest! {
    #[test]
    fn hits_and_misses_match_oracle(
        addrs in prop::collection::vec(0u32..1 << 16, 1..500),
        writes in prop::collection::vec(any::<bool>(), 500),
    ) {
        let cfg = CacheConfig { size_bytes: 2048, ways: 4, line_bytes: 64, hashed_index: false };
        let mut cache = Cache::new(cfg);
        let mut oracle = Oracle::new(cfg);
        for (i, &a) in addrs.iter().enumerate() {
            let expected = oracle.access(a);
            let got = cache.access(a, writes[i % writes.len()]).hit;
            prop_assert_eq!(got, expected, "divergence at access {} (addr {:#x})", i, a);
        }
        prop_assert_eq!(
            cache.stats().accesses(),
            addrs.len() as u64
        );
    }

    #[test]
    fn fill_is_reported_iff_miss(addrs in prop::collection::vec(0u32..1 << 14, 1..200)) {
        let cfg = CacheConfig { size_bytes: 1024, ways: 2, line_bytes: 32, hashed_index: false };
        let mut cache = Cache::new(cfg);
        for &a in &addrs {
            let out = cache.access(a, false);
            prop_assert_eq!(out.hit, out.fill_line.is_none());
            if let Some(line) = out.fill_line {
                prop_assert_eq!(line, cfg.line_addr(a));
            }
        }
    }
}

proptest! {
    /// Under hashed indexing, every reported writeback address must be a
    /// line that was previously written and still resident — i.e. the
    /// (tag, hashed-set) → address inversion is exact.
    #[test]
    fn hashed_writeback_addresses_are_previously_written_lines(
        addrs in prop::collection::vec(0u32..1 << 16, 1..400),
        writes in prop::collection::vec(any::<bool>(), 400),
    ) {
        let cfg = CacheConfig { size_bytes: 1024, ways: 2, line_bytes: 64, hashed_index: true };
        let mut cache = Cache::new(cfg);
        let mut dirty: std::collections::HashSet<u32> = std::collections::HashSet::new();
        for (i, &a) in addrs.iter().enumerate() {
            let w = writes[i % writes.len()];
            let out = cache.access(a, w);
            if let Some(wb) = out.writeback_line {
                prop_assert_eq!(wb % cfg.line_bytes, 0, "writeback must be line-aligned");
                prop_assert!(
                    dirty.remove(&wb),
                    "writeback {:#x} was never dirtied (access {} addr {:#x})",
                    wb, i, a
                );
            }
            if w {
                dirty.insert(cfg.line_addr(a));
            }
        }
    }
}
