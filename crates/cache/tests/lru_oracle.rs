//! Randomized property test (seeded, dependency-free): the cache's hit/miss
//! decisions match a naive LRU oracle.

use std::collections::HashMap;

use pim_cache::{Cache, CacheConfig};
use pim_rng::StdRng;

/// A trivially correct set-associative LRU model: per set, an ordered list
/// of resident line tags, most recent last.
struct Oracle {
    cfg: CacheConfig,
    sets: HashMap<u32, Vec<u32>>,
}

impl Oracle {
    fn new(cfg: CacheConfig) -> Self {
        Oracle { cfg, sets: HashMap::new() }
    }

    fn access(&mut self, addr: u32) -> bool {
        let line = addr / self.cfg.line_bytes;
        let set = line % self.cfg.sets();
        let tag = line / self.cfg.sets();
        let list = self.sets.entry(set).or_default();
        if let Some(pos) = list.iter().position(|&t| t == tag) {
            list.remove(pos);
            list.push(tag);
            true
        } else {
            if list.len() == self.cfg.ways as usize {
                list.remove(0);
            }
            list.push(tag);
            false
        }
    }
}

#[test]
fn hits_and_misses_match_oracle() {
    let mut rng = StdRng::seed_from_u64(0xCAC4_E001);
    for _case in 0..64 {
        let n = rng.gen_range(1usize..500);
        let addrs: Vec<u32> = (0..n).map(|_| rng.gen_range(0u32..1 << 16)).collect();
        let writes: Vec<bool> = (0..500).map(|_| rng.gen_bool()).collect();
        let cfg = CacheConfig { size_bytes: 2048, ways: 4, line_bytes: 64, hashed_index: false };
        let mut cache = Cache::new(cfg);
        let mut oracle = Oracle::new(cfg);
        for (i, &a) in addrs.iter().enumerate() {
            let expected = oracle.access(a);
            let got = cache.access(a, writes[i % writes.len()]).hit;
            assert_eq!(got, expected, "divergence at access {i} (addr {a:#x})");
        }
        assert_eq!(cache.stats().accesses(), addrs.len() as u64);
    }
}

#[test]
fn fill_is_reported_iff_miss() {
    let mut rng = StdRng::seed_from_u64(0xCAC4_E002);
    for _case in 0..64 {
        let n = rng.gen_range(1usize..200);
        let addrs: Vec<u32> = (0..n).map(|_| rng.gen_range(0u32..1 << 14)).collect();
        let cfg = CacheConfig { size_bytes: 1024, ways: 2, line_bytes: 32, hashed_index: false };
        let mut cache = Cache::new(cfg);
        for &a in &addrs {
            let out = cache.access(a, false);
            assert_eq!(out.hit, out.fill_line.is_none());
            if let Some(line) = out.fill_line {
                assert_eq!(line, cfg.line_addr(a));
            }
        }
    }
}

/// Under hashed indexing, every reported writeback address must be a line
/// that was previously written and still resident — i.e. the
/// (tag, hashed-set) → address inversion is exact.
#[test]
fn hashed_writeback_addresses_are_previously_written_lines() {
    let mut rng = StdRng::seed_from_u64(0xCAC4_E003);
    for _case in 0..64 {
        let n = rng.gen_range(1usize..400);
        let addrs: Vec<u32> = (0..n).map(|_| rng.gen_range(0u32..1 << 16)).collect();
        let writes: Vec<bool> = (0..400).map(|_| rng.gen_bool()).collect();
        let cfg = CacheConfig { size_bytes: 1024, ways: 2, line_bytes: 64, hashed_index: true };
        let mut cache = Cache::new(cfg);
        let mut dirty: std::collections::HashSet<u32> = std::collections::HashSet::new();
        for (i, &a) in addrs.iter().enumerate() {
            let w = writes[i % writes.len()];
            let out = cache.access(a, w);
            if let Some(wb) = out.writeback_line {
                assert_eq!(wb % cfg.line_bytes, 0, "writeback must be line-aligned");
                assert!(
                    dirty.remove(&wb),
                    "writeback {wb:#x} was never dirtied (access {i} addr {a:#x})"
                );
            }
            if w {
                dirty.insert(cfg.line_addr(a));
            }
        }
    }
}
