//! The harness's proof-of-usefulness: with the seeded scoreboard bug
//! armed, a small campaign must catch it and shrink the repro to a
//! handful of instructions; the same seed with the bug disarmed must run
//! clean.
//!
//! Both halves live in ONE test: the bug switch is process-global, so
//! interleaving with a parallel clean run would race. (The `pimsim fuzz
//! --mutate` CLI path is exercised end-to-end in `crates/cli/tests`.)

use pim_fuzz::campaign::{run_campaign, CampaignOptions};
use pim_fuzz::gauntlet::Invariant;

#[test]
fn the_fuzzer_catches_the_seeded_scoreboard_bug_and_shrinks_it() {
    let base = CampaignOptions { budget: 256, ..CampaignOptions::smoke(1) };

    // Armed: the campaign must detect and shrink.
    let mutated = run_campaign(&CampaignOptions { mutate: true, ..base.clone() }).unwrap();
    assert!(mutated.mutation_detected(), "the seeded bug survived {} cases", mutated.generated);
    let f = mutated.failures.first().expect("a reported failure");
    assert_eq!(
        f.invariant,
        Invariant::NaiveFastEquality,
        "dropping the RF hazard diverges naive vs fast timing: {}",
        f.detail
    );
    assert!(
        f.shrunk.program.instrs.len() <= 12,
        "shrunk repro has {} instructions (budgeted for <= 12):\n{}",
        f.shrunk.program.instrs.len(),
        pim_asm::disassemble(&f.shrunk.program)
    );

    // Disarmed: the identical campaign runs clean.
    let clean = run_campaign(&base).unwrap();
    assert_eq!(clean.failures_seen, 0, "clean campaign failed: {:#?}", clean.failures);
    assert_eq!(clean.generated, 256);

    // The smoke budget must saturate >= 90% of the reachable
    // (class x hazard) projection — the coverage acceptance bar.
    let (hit, reachable) = clean.coverage.class_hazard_coverage();
    assert!(
        f64::from(hit) >= 0.9 * f64::from(reachable),
        "coverage {hit}/{reachable} below the 90% bar:\n{}",
        clean.coverage.table().render()
    );
}
