//! The conformance gauntlet: every case runs under all executors and must
//! satisfy six metamorphic invariants.
//!
//! 1. **Oracle equality** — final WRAM/MRAM match the timing-free
//!    `pim-ref` interpreter byte-for-byte.
//! 2. **Naive/fast equality** — the optimized cycle loop's full
//!    [`pim_dpu::DpuRunStats`] (cycles, idle attribution, mixes, traces)
//!    is identical to the naive per-cycle reference loop's (scalar and
//!    ILP modes; SIMT has a single implementation).
//! 3. **Compiled/fast equality** — the block-compiled threaded-code loop
//!    (the default tier, exercised by the primary run) and the decoded
//!    fast loop produce identical stats and memory images.
//! 4. **Sink invisibility** — attaching a `RingSink` event trace changes
//!    nothing about the simulated run: the stats render identically.
//! 5. **Schedule invariance** — re-running the oracle with a *reversed*
//!    tasklet service order leaves the same final memory image (the
//!    generator only emits schedule-independent programs).
//! 6. **Batch equality** — running the case through the SoA batched
//!    executor ([`pim_dpu::run_batch`], the rank-scale path) produces the
//!    same `DpuRunStats` rendering and WRAM/MRAM image as the per-DPU
//!    launch, for every batch member.
//!
//! A case whose ground truth cannot be established (the oracle itself
//! faults) is [`CheckOutcome::Invalid`] — shrink candidates that break
//! the program land there and are rejected without masquerading as
//! conformance failures.

use crate::FuzzCase;
use pim_dpu::{Dpu, DpuConfig, DpuRunStats, ExecTier};
use pim_ref::RefInterpreter;
use pim_trace::{DpuTrace, MetricsSink};

use crate::coverage::{ChainDepth, DmaShape, MemPressure};

/// Step bound for the oracle interpreter — far above any generated
/// program, so hitting it means a runaway case, not a slow one.
pub const ORACLE_MAX_STEPS: u64 = 10_000_000;

/// WRAM bytes compared between executors (the whole scratchpad).
pub const WRAM_COMPARE: u32 = 64 * 1024;
/// MRAM bytes compared between executors (covers every generated window).
pub const MRAM_COMPARE: u32 = 128 * 1024;

/// Ring capacity used for the sink-invisibility run.
const RING_CAPACITY: usize = 1 << 16;

/// The six conformance invariants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Invariant {
    /// Final memory equals the `pim-ref` oracle's.
    OracleEquality,
    /// Naive and fast cycle loops produce identical stats.
    NaiveFastEquality,
    /// The block-compiled loop and the fast loop produce identical stats
    /// and memory images.
    CompiledFastEquality,
    /// Event tracing does not perturb the simulation.
    SinkInvisibility,
    /// Final memory is independent of the oracle's service order.
    ScheduleInvariance,
    /// The SoA batched executor matches the per-DPU launch exactly.
    BatchEquality,
}

impl Invariant {
    /// All invariants, in gauntlet order.
    pub const ALL: [Invariant; 6] = [
        Invariant::OracleEquality,
        Invariant::NaiveFastEquality,
        Invariant::CompiledFastEquality,
        Invariant::SinkInvisibility,
        Invariant::ScheduleInvariance,
        Invariant::BatchEquality,
    ];

    /// Stable kebab-case name (used in corpus files and reports).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Invariant::OracleEquality => "oracle",
            Invariant::NaiveFastEquality => "naive-fast",
            Invariant::CompiledFastEquality => "compiled-fast",
            Invariant::SinkInvisibility => "sink",
            Invariant::ScheduleInvariance => "schedule",
            Invariant::BatchEquality => "batch",
        }
    }

    /// Parses [`Invariant::as_str`] output back.
    ///
    /// # Errors
    ///
    /// Returns the offending string when it names no invariant.
    pub fn parse(s: &str) -> Result<Self, String> {
        Invariant::ALL
            .into_iter()
            .find(|i| i.as_str() == s)
            .ok_or_else(|| format!("unknown invariant `{s}`"))
    }
}

/// One conformance failure: which invariant broke and how.
#[derive(Debug, Clone)]
pub struct Failure {
    /// The broken invariant.
    pub invariant: Invariant,
    /// First observed divergence, human-readable.
    pub detail: String,
}

/// Facts about a passing run the campaign feeds back into coverage.
#[derive(Debug)]
pub struct PassInfo {
    /// Fast-loop cycle count (summed across chained launches).
    pub cycles: u64,
    /// DMA requests issued (exact, from the merged run stats).
    pub dma_requests: u64,
    /// Memory-pressure bucket of the run.
    pub mem: MemPressure,
    /// DMA-shape bucket (bulk vs gather) of the run.
    pub shape: DmaShape,
    /// Launch-chain bucket (single vs chained) of the case.
    pub chain: ChainDepth,
    /// Event-derived counters from the traced run.
    pub metrics: MetricsSink,
}

/// Outcome of running one case through the gauntlet.
#[derive(Debug)]
pub enum CheckOutcome {
    /// All invariants held.
    Pass(Box<PassInfo>),
    /// An invariant broke — the case indicts an executor.
    Fail(Failure),
    /// Ground truth could not be established (oracle fault): the *case*
    /// is bad, not the executors.
    Invalid(String),
}

/// First differing byte between two memory images, if any.
fn first_diff(a: &[u8], b: &[u8]) -> Option<usize> {
    a.iter().zip(b.iter()).position(|(x, y)| x != y)
}

/// First differing line between two pretty-Debug renderings (the stats
/// structs render one field per line under `{:#?}`).
fn first_line_diff(a: &str, b: &str) -> String {
    for (la, lb) in a.lines().zip(b.lines()) {
        if la != lb {
            return format!("`{}` vs `{}`", la.trim(), lb.trim());
        }
    }
    format!("{} vs {} debug lines", a.lines().count(), b.lines().count())
}

struct RunOutput {
    stats_debug: String,
    cycles: u64,
    dma_requests: u64,
    dram_bytes: u64,
    wram: Vec<u8>,
    mram: Vec<u8>,
    trace: Option<DpuTrace>,
}

/// Launches the case's program `case.launches` times on one DPU (WRAM and
/// MRAM persist between launches) and merges the per-launch statistics.
fn run_once(case: &FuzzCase, cfg: DpuConfig) -> Result<RunOutput, String> {
    let mut dpu = Dpu::new(cfg);
    dpu.load_program(&case.program).map_err(|e| format!("load: {e}"))?;
    let mut stats = dpu.launch().map_err(|e| format!("launch: {e}"))?;
    for n in 1..case.launch_count() {
        let more = dpu.launch().map_err(|e| format!("launch {}: {e}", n + 1))?;
        stats.merge(&more);
    }
    Ok(RunOutput {
        stats_debug: format!("{stats:#?}"),
        cycles: stats.cycles,
        dma_requests: stats.dma_requests,
        dram_bytes: stats.dram.bytes_read,
        wram: dpu.read_wram(0, WRAM_COMPARE),
        mram: dpu.read_mram(0, MRAM_COMPARE),
        trace: dpu.take_trace(),
    })
}

/// Runs the oracle for `case.launches` chained launches, re-arming it
/// between launches with [`RefInterpreter::relaunch`]. `order` selects
/// the tasklet service order (`None` = identity).
fn run_oracle(
    oracle: &mut RefInterpreter,
    case: &FuzzCase,
    order: Option<&[u32]>,
) -> Result<(), String> {
    for n in 0..case.launch_count() {
        if n > 0 {
            oracle.relaunch();
        }
        let r = match order {
            Some(o) => oracle.run_in_order(ORACLE_MAX_STEPS, o),
            None => oracle.run(ORACLE_MAX_STEPS),
        };
        r.map_err(|e| if n > 0 { format!("launch {}: {e}", n + 1) } else { e.to_string() })?;
    }
    Ok(())
}

/// Runs one case through all six invariants.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn run_gauntlet(case: &FuzzCase) -> CheckOutcome {
    // Ground truth: the timing-free oracle, chained `case.launches` times.
    let mut oracle = RefInterpreter::new(&case.program, case.tasklets);
    if let Err(e) = run_oracle(&mut oracle, case, None) {
        return CheckOutcome::Invalid(format!("oracle: {e}"));
    }
    let owram = oracle.read_wram(0, WRAM_COMPARE);
    let omram = oracle.read_mram(0, MRAM_COMPARE);

    // Invariant 1: the optimized pipeline agrees with the oracle.
    let fast = match run_once(case, case.config()) {
        Ok(r) => r,
        Err(e) => {
            return CheckOutcome::Fail(Failure {
                invariant: Invariant::OracleEquality,
                detail: format!("simulator faulted where the oracle ran clean: {e}"),
            });
        }
    };
    for (name, got, want) in [("WRAM", &fast.wram, &owram), ("MRAM", &fast.mram, &omram)] {
        if let Some(at) = first_diff(got, want) {
            return CheckOutcome::Fail(Failure {
                invariant: Invariant::OracleEquality,
                detail: format!(
                    "{name} diverged at {at:#x}: simulator {:#04x}, oracle {:#04x}",
                    got[at], want[at]
                ),
            });
        }
    }

    // Invariant 2: the naive per-cycle loop times identically.
    if case.mode.has_naive_loop() {
        let naive = match run_once(case, case.config().with_naive_loop()) {
            Ok(r) => r,
            Err(e) => {
                return CheckOutcome::Fail(Failure {
                    invariant: Invariant::NaiveFastEquality,
                    detail: format!("naive loop faulted where the fast loop ran clean: {e}"),
                });
            }
        };
        if naive.stats_debug != fast.stats_debug {
            return CheckOutcome::Fail(Failure {
                invariant: Invariant::NaiveFastEquality,
                detail: format!(
                    "stats diverged (fast {} vs naive {} cycles): {}",
                    fast.cycles,
                    naive.cycles,
                    first_line_diff(&fast.stats_debug, &naive.stats_debug)
                ),
            });
        }
    }

    // Invariant 3: the decoded fast loop agrees with the block-compiled
    // loop (the default tier, so the primary run above is compiled). The
    // memory comparison matters here: the two loops share the scheduler
    // shape but execute through different instruction implementations.
    if case.mode.has_naive_loop() {
        let fastloop = match run_once(case, case.config().with_exec_tier(ExecTier::Fast)) {
            Ok(r) => r,
            Err(e) => {
                return CheckOutcome::Fail(Failure {
                    invariant: Invariant::CompiledFastEquality,
                    detail: format!("fast loop faulted where the compiled loop ran clean: {e}"),
                });
            }
        };
        if fastloop.stats_debug != fast.stats_debug {
            return CheckOutcome::Fail(Failure {
                invariant: Invariant::CompiledFastEquality,
                detail: format!(
                    "stats diverged (compiled {} vs fast {} cycles): {}",
                    fast.cycles,
                    fastloop.cycles,
                    first_line_diff(&fast.stats_debug, &fastloop.stats_debug)
                ),
            });
        }
        for (name, got, want) in
            [("WRAM", &fastloop.wram, &fast.wram), ("MRAM", &fastloop.mram, &fast.mram)]
        {
            if let Some(at) = first_diff(got, want) {
                return CheckOutcome::Fail(Failure {
                    invariant: Invariant::CompiledFastEquality,
                    detail: format!(
                        "{name} diverged at {at:#x}: fast {:#04x}, compiled {:#04x}",
                        got[at], want[at]
                    ),
                });
            }
        }
    }

    // Invariant 4: attaching an event-trace ring is invisible.
    let ring = match run_once(case, case.config().with_event_trace(RING_CAPACITY)) {
        Ok(r) => r,
        Err(e) => {
            return CheckOutcome::Fail(Failure {
                invariant: Invariant::SinkInvisibility,
                detail: format!("traced run faulted where the untraced run ran clean: {e}"),
            });
        }
    };
    if ring.stats_debug != fast.stats_debug {
        return CheckOutcome::Fail(Failure {
            invariant: Invariant::SinkInvisibility,
            detail: format!(
                "stats changed under tracing: {}",
                first_line_diff(&fast.stats_debug, &ring.stats_debug)
            ),
        });
    }

    // Invariant 5: a reversed oracle service order reaches the same
    // memory image (schedule independence).
    let mut reversed = RefInterpreter::new(&case.program, case.tasklets);
    let order: Vec<u32> = (0..case.tasklets).rev().collect();
    if let Err(e) = run_oracle(&mut reversed, case, Some(&order)) {
        return CheckOutcome::Fail(Failure {
            invariant: Invariant::ScheduleInvariance,
            detail: format!("oracle faulted under reversed schedule: {e}"),
        });
    }
    let rwram = reversed.read_wram(0, WRAM_COMPARE);
    let rmram = reversed.read_mram(0, MRAM_COMPARE);
    for (name, got, want) in [("WRAM", &rwram, &owram), ("MRAM", &rmram, &omram)] {
        if let Some(at) = first_diff(got, want) {
            return CheckOutcome::Fail(Failure {
                invariant: Invariant::ScheduleInvariance,
                detail: format!(
                    "{name} depends on the schedule at {at:#x}: reversed {:#04x}, identity {:#04x}",
                    got[at], want[at]
                ),
            });
        }
    }

    // Invariant 6: the SoA batched executor (the rank-scale path) matches
    // the per-DPU launch member-for-member. Two members with identical
    // state exercise the lockstep fast path end to end; SIMT and traced
    // configurations fall back to per-DPU launches inside `run_batch` and
    // must still agree.
    let mut batch: Vec<Dpu> = (0..2).map(|_| Dpu::new(case.config())).collect();
    for dpu in &mut batch {
        if let Err(e) = dpu.load_program(&case.program) {
            return CheckOutcome::Fail(Failure {
                invariant: Invariant::BatchEquality,
                detail: format!("batch member failed to load: {e}"),
            });
        }
    }
    // Chained launches go through `run_batch` once per launch; stats merge
    // per member, exactly as the solo path merges per-launch stats.
    let mut merged: Vec<Option<DpuRunStats>> = vec![None; batch.len()];
    for n in 0..case.launch_count() {
        let batch_stats = pim_dpu::run_batch(&mut batch);
        for (i, result) in batch_stats.into_iter().enumerate() {
            let stats = match result {
                Ok(s) => s,
                Err(e) => {
                    return CheckOutcome::Fail(Failure {
                        invariant: Invariant::BatchEquality,
                        detail: format!(
                            "batch member {i} faulted (launch {}) where the solo launch ran \
                             clean: {e}",
                            n + 1
                        ),
                    });
                }
            };
            match &mut merged[i] {
                Some(acc) => acc.merge(&stats),
                slot @ None => *slot = Some(stats),
            }
        }
    }
    for (i, (stats, dpu)) in merged.iter().flatten().zip(&batch).enumerate() {
        let rendered = format!("{stats:#?}");
        if rendered != fast.stats_debug {
            return CheckOutcome::Fail(Failure {
                invariant: Invariant::BatchEquality,
                detail: format!(
                    "batch member {i} stats diverged: {}",
                    first_line_diff(&fast.stats_debug, &rendered)
                ),
            });
        }
        let bwram = dpu.read_wram(0, WRAM_COMPARE);
        let bmram = dpu.read_mram(0, MRAM_COMPARE);
        for (name, got, want) in [("WRAM", &bwram, &fast.wram), ("MRAM", &bmram, &fast.mram)] {
            if let Some(at) = first_diff(got, want) {
                return CheckOutcome::Fail(Failure {
                    invariant: Invariant::BatchEquality,
                    detail: format!(
                        "batch member {i} {name} diverged at {at:#x}: batched {:#04x}, solo {:#04x}",
                        got[at], want[at]
                    ),
                });
            }
        }
    }

    let mut metrics = MetricsSink::new();
    if let Some(trace) = &ring.trace {
        metrics.absorb(&trace.events);
    }
    CheckOutcome::Pass(Box::new(PassInfo {
        cycles: fast.cycles,
        dma_requests: fast.dma_requests,
        mem: MemPressure::classify(fast.dma_requests, case.tasklets),
        shape: DmaShape::classify(fast.dma_requests, fast.dram_bytes),
        chain: ChainDepth::classify(case.launch_count()),
        metrics,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenOptions};
    use crate::ExecMode;
    use pim_asm::KernelBuilder;

    #[test]
    fn invariant_names_round_trip() {
        for i in Invariant::ALL {
            assert_eq!(Invariant::parse(i.as_str()).unwrap(), i);
        }
        assert!(Invariant::parse("vibes").is_err());
    }

    fn gen_opts(tasklets: u32) -> GenOptions {
        GenOptions { tasklets, mode: ExecMode::Scalar, focus: None, gather: false, launches: 1 }
    }

    #[test]
    fn a_generated_program_passes_the_gauntlet() {
        let case = generate(3, &gen_opts(4));
        match run_gauntlet(&case) {
            CheckOutcome::Pass(info) => {
                assert!(info.cycles > 0);
                assert!(info.metrics.get("instr_retired") > 0);
            }
            other => panic!("expected pass, got {other:?}"),
        }
    }

    #[test]
    fn a_runaway_program_is_invalid_not_failing() {
        // An infinite loop: the oracle hits its step bound, so the case
        // is rejected as invalid rather than blamed on an executor.
        let mut k = KernelBuilder::new();
        let top = k.label_here("top");
        k.jump(&top);
        let program = k.build().unwrap();
        let case = FuzzCase {
            program,
            tasklets: 1,
            mode: ExecMode::Scalar,
            launches: 1,
            label: "runaway".into(),
        };
        assert!(matches!(run_gauntlet(&case), CheckOutcome::Invalid(_)));
    }

    #[test]
    fn a_chained_case_passes_and_classifies_as_chained() {
        let mut case = generate(3, &gen_opts(4));
        case.launches = 3;
        match run_gauntlet(&case) {
            CheckOutcome::Pass(info) => {
                assert_eq!(info.chain, crate::coverage::ChainDepth::Chained);
                // Three launches retire strictly more work than one.
                let solo = FuzzCase { launches: 1, ..case.clone() };
                match run_gauntlet(&solo) {
                    CheckOutcome::Pass(solo_info) => assert!(info.cycles > solo_info.cycles),
                    other => panic!("solo leg should pass, got {other:?}"),
                }
            }
            other => panic!("expected pass, got {other:?}"),
        }
    }

    #[test]
    fn a_schedule_dependent_program_is_caught() {
        // Last-writer-wins on a shared word with no mutex: identity and
        // reversed service orders leave different winners.
        let mut k = KernelBuilder::new();
        let shared = k.global_zeroed("shared", 4);
        let [t, p] = k.regs(["t", "p"]);
        k.tid(t);
        k.movi(p, shared as i32);
        k.sw(t, p, 0);
        k.stop();
        let program = k.build().unwrap();
        let case = FuzzCase {
            program,
            tasklets: 2,
            mode: ExecMode::Scalar,
            launches: 1,
            label: "racy".into(),
        };
        match run_gauntlet(&case) {
            CheckOutcome::Fail(f) => assert_eq!(f.invariant, Invariant::ScheduleInvariance),
            other => panic!("expected schedule-invariance failure, got {other:?}"),
        }
    }
}
