//! Delta-debugging shrinker: reduces a failing case to a minimal repro
//! that still breaks the *same* invariant.
//!
//! Reduction passes run in decreasing granularity — whole basic blocks,
//! then ddmin over instruction chunks, then single instructions, then
//! operand simplification, then the tasklet count. Every candidate is
//! re-run through the full gauntlet; it is accepted only when it fails
//! with the original invariant (a candidate that turns
//! [`CheckOutcome::Invalid`] — e.g. because the cut removed `stop` — is
//! rejected automatically, so the shrinker never has to reason about
//! well-formedness itself).
//!
//! Removing instructions shifts branch targets, so every cut remaps
//! numeric targets: targets past the cut slide down, targets into the
//! cut clamp to the cut point.

use crate::gauntlet::{run_gauntlet, CheckOutcome, Invariant};
use crate::FuzzCase;
use pim_isa::Instruction;

/// Default gauntlet-evaluation budget for one shrink.
pub const DEFAULT_SHRINK_EVALS: u32 = 400;

/// Remaps one branch target across the removal of `[lo, hi)`.
fn remap_target(t: u32, lo: u32, hi: u32) -> u32 {
    if t >= hi {
        t - (hi - lo)
    } else if t >= lo {
        lo
    } else {
        t
    }
}

/// The instruction stream with `[lo, hi)` removed and all control-flow
/// targets remapped.
fn remove_range(instrs: &[Instruction], lo: u32, hi: u32) -> Vec<Instruction> {
    instrs
        .iter()
        .enumerate()
        .filter(|(i, _)| (*i as u32) < lo || (*i as u32) >= hi)
        .map(|(_, ins)| match *ins {
            Instruction::Branch { cond, ra, rb, target } => {
                Instruction::Branch { cond, ra, rb, target: remap_target(target, lo, hi) }
            }
            Instruction::Jump { target } => {
                Instruction::Jump { target: remap_target(target, lo, hi) }
            }
            Instruction::Jal { rd, target } => {
                Instruction::Jal { rd, target: remap_target(target, lo, hi) }
            }
            other => other,
        })
        .collect()
}

/// Basic-block leader set: entry, every branch/jump/call target, and
/// every instruction after a control transfer.
fn block_boundaries(instrs: &[Instruction]) -> Vec<u32> {
    let n = instrs.len() as u32;
    let mut leaders = vec![false; instrs.len() + 1];
    leaders[0] = true;
    for (i, ins) in instrs.iter().enumerate() {
        match *ins {
            Instruction::Branch { target, .. }
            | Instruction::Jump { target }
            | Instruction::Jal { target, .. } => {
                if target <= n {
                    leaders[target as usize] = true;
                }
                leaders[i + 1] = true;
            }
            Instruction::Jr { .. } | Instruction::Stop => leaders[i + 1] = true,
            _ => {}
        }
    }
    (0..=n).filter(|&i| i == n || leaders[i as usize]).collect()
}

struct Shrinker {
    invariant: Invariant,
    evals: u32,
    budget: u32,
}

impl Shrinker {
    /// Whether `candidate` still fails with the original invariant.
    fn reproduces(&mut self, candidate: &FuzzCase) -> bool {
        if self.evals >= self.budget {
            return false;
        }
        self.evals += 1;
        matches!(run_gauntlet(candidate),
                 CheckOutcome::Fail(f) if f.invariant == self.invariant)
    }

    fn with_instrs(case: &FuzzCase, instrs: Vec<Instruction>) -> FuzzCase {
        let mut next = case.clone();
        next.program.instrs = instrs;
        next
    }

    /// One pass of range removals at block granularity.
    fn shrink_blocks(&mut self, case: &mut FuzzCase) {
        loop {
            let bounds = block_boundaries(&case.program.instrs);
            let mut removed = false;
            // Later blocks first: epilogue noise goes cheaply.
            for w in bounds.windows(2).rev() {
                let (lo, hi) = (w[0], w[1]);
                if hi == lo {
                    continue;
                }
                let candidate = Self::with_instrs(case, remove_range(&case.program.instrs, lo, hi));
                if self.reproduces(&candidate) {
                    *case = candidate;
                    removed = true;
                    break;
                }
                if self.evals >= self.budget {
                    return;
                }
            }
            if !removed {
                return;
            }
        }
    }

    /// Classic ddmin over instruction chunks, halving the chunk size down
    /// to single instructions.
    fn shrink_instrs(&mut self, case: &mut FuzzCase) {
        let mut chunk = (case.program.instrs.len() / 2).max(1) as u32;
        loop {
            let mut lo = 0u32;
            let mut removed_any = false;
            while (lo as usize) < case.program.instrs.len() {
                let hi = (lo + chunk).min(case.program.instrs.len() as u32);
                let candidate = Self::with_instrs(case, remove_range(&case.program.instrs, lo, hi));
                if self.reproduces(&candidate) {
                    *case = candidate;
                    removed_any = true;
                    // Same lo: the next chunk slid into place.
                } else {
                    lo = hi;
                }
                if self.evals >= self.budget {
                    return;
                }
            }
            if chunk == 1 && !removed_any {
                return;
            }
            if !removed_any {
                chunk = (chunk / 2).max(1);
            }
        }
    }

    /// Operand-level simplification: immediates to zero, register
    /// operands to immediates, offsets to zero, DMA lengths to the
    /// minimum transfer.
    fn shrink_operands(&mut self, case: &mut FuzzCase) {
        use pim_isa::Operand;
        for i in 0..case.program.instrs.len() {
            let ins = case.program.instrs[i];
            let mut candidates: Vec<Instruction> = Vec::new();
            match ins {
                Instruction::Alu { op, rd, ra, rb } if rb != Operand::Imm(0) => {
                    candidates.push(Instruction::Alu { op, rd, ra, rb: Operand::Imm(0) });
                }
                Instruction::Movi { rd, imm } if imm != 0 => {
                    candidates.push(Instruction::Movi { rd, imm: 0 });
                }
                Instruction::Load { width, signed, rd, base, offset } if offset != 0 => {
                    candidates.push(Instruction::Load { width, signed, rd, base, offset: 0 });
                }
                Instruction::Store { width, rs, base, offset } if offset != 0 => {
                    candidates.push(Instruction::Store { width, rs, base, offset: 0 });
                }
                Instruction::Ldma { wram, mram, len } if len != Operand::Imm(8) => {
                    candidates.push(Instruction::Ldma { wram, mram, len: Operand::Imm(8) });
                }
                Instruction::Sdma { wram, mram, len } if len != Operand::Imm(8) => {
                    candidates.push(Instruction::Sdma { wram, mram, len: Operand::Imm(8) });
                }
                Instruction::Branch { cond, ra, rb, target } if rb != Operand::Imm(0) => {
                    candidates.push(Instruction::Branch { cond, ra, rb: Operand::Imm(0), target });
                }
                _ => {}
            }
            for candidate_instr in candidates {
                let mut instrs = case.program.instrs.clone();
                instrs[i] = candidate_instr;
                let candidate = Self::with_instrs(case, instrs);
                if self.reproduces(&candidate) {
                    *case = candidate;
                    break;
                }
                if self.evals >= self.budget {
                    return;
                }
            }
        }
    }

    /// Tasklet-count reduction (1, 2, 4, … below the current count).
    fn shrink_tasklets(&mut self, case: &mut FuzzCase) {
        for n in [1u32, 2, 4, 8] {
            if n >= case.tasklets {
                break;
            }
            let mut candidate = case.clone();
            candidate.tasklets = n;
            if self.reproduces(&candidate) {
                *case = candidate;
                return;
            }
            if self.evals >= self.budget {
                return;
            }
        }
    }
}

/// Shrinks `case` (which fails with `invariant`) to a smaller case that
/// fails the same way, within `budget` gauntlet evaluations. Returns the
/// input unchanged when nothing smaller reproduces.
#[must_use]
pub fn shrink(case: &FuzzCase, invariant: Invariant, budget: u32) -> FuzzCase {
    let mut best = case.clone();
    let mut s = Shrinker { invariant, evals: 0, budget };
    s.shrink_blocks(&mut best);
    s.shrink_instrs(&mut best);
    s.shrink_operands(&mut best);
    s.shrink_tasklets(&mut best);
    best.label = format!("{} (shrunk from {} instrs)", case.label, case.program.instrs.len());
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_isa::{AluOp, Cond, Operand, Reg};

    #[test]
    fn target_remap_slides_and_clamps() {
        assert_eq!(remap_target(10, 2, 5), 7);
        assert_eq!(remap_target(3, 2, 5), 2);
        assert_eq!(remap_target(1, 2, 5), 1);
    }

    #[test]
    fn remove_range_adjusts_branches() {
        let instrs = vec![
            Instruction::Nop,
            Instruction::Nop,
            Instruction::Branch { cond: Cond::Ne, ra: Reg::r(0), rb: Operand::Imm(0), target: 4 },
            Instruction::Nop,
            Instruction::Stop,
        ];
        let out = remove_range(&instrs, 0, 2);
        assert_eq!(out.len(), 3);
        match out[0] {
            Instruction::Branch { target, .. } => assert_eq!(target, 2),
            ref other => panic!("expected branch, got {other:?}"),
        }
    }

    #[test]
    fn block_boundaries_cover_the_program() {
        let instrs = vec![
            Instruction::Movi { rd: Reg::r(0), imm: 3 },
            Instruction::Alu { op: AluOp::Sub, rd: Reg::r(0), ra: Reg::r(0), rb: Operand::Imm(1) },
            Instruction::Branch { cond: Cond::Ne, ra: Reg::r(0), rb: Operand::Imm(0), target: 1 },
            Instruction::Stop,
        ];
        let bounds = block_boundaries(&instrs);
        assert_eq!(bounds.first(), Some(&0));
        assert_eq!(bounds.last(), Some(&4));
        assert!(bounds.contains(&1), "branch target starts a block: {bounds:?}");
        assert!(bounds.contains(&3), "post-branch fallthrough starts a block: {bounds:?}");
    }
}
