//! The fuzzer's coverage map: (instruction class × hazard kind × memory
//! pressure × tasklet bucket).
//!
//! Each case contributes its static instruction facts (class and hazard
//! kind, from the same [`DecodedProgram`] side table the fast loop runs
//! on) crossed with two dynamic facts about the run: how hard it drove
//! the memory engine and how many tasklets it ran. The campaign asks the
//! map for an unhit (class × hazard) cell each round and passes it to the
//! generator as a focus, closing the feedback loop.
//!
//! Hazard kinds are recovered from decoded facts alone: an instruction
//! whose `rf_hazard` exceeds what its source *mask* parities explain must
//! read some register twice (duplicates collapse to one mask bit but
//! still pay the bank conflict).

use pim_isa::{DecodedInstr, DecodedProgram, InstrClass};
use pim_rng::StdRng;
use pimulator::report::{Json, Table};

/// Register-file hazard shape of one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HazardKind {
    /// No same-bank source pair.
    None,
    /// Two *distinct* sources in one bank.
    SameBank,
    /// A register read twice by the same instruction.
    DupSource,
}

impl HazardKind {
    /// All kinds, in reporting order.
    pub const ALL: [HazardKind; 3] =
        [HazardKind::None, HazardKind::SameBank, HazardKind::DupSource];

    /// Stable lowercase name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            HazardKind::None => "none",
            HazardKind::SameBank => "same-bank",
            HazardKind::DupSource => "dup-source",
        }
    }
}

/// How hard a run drove the MRAM engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemPressure {
    /// No DMA at all.
    Idle,
    /// At most a couple of transfers per tasklet.
    Streaming,
    /// Sustained bursts.
    Burst,
}

impl MemPressure {
    /// All pressures, in reporting order.
    pub const ALL: [MemPressure; 3] =
        [MemPressure::Idle, MemPressure::Streaming, MemPressure::Burst];

    /// Buckets a run's observed DMA request count.
    #[must_use]
    pub fn classify(dma_requests: u64, tasklets: u32) -> Self {
        if dma_requests == 0 {
            MemPressure::Idle
        } else if dma_requests <= 2 * u64::from(tasklets) {
            MemPressure::Streaming
        } else {
            MemPressure::Burst
        }
    }

    /// Stable lowercase name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            MemPressure::Idle => "idle",
            MemPressure::Streaming => "streaming",
            MemPressure::Burst => "burst",
        }
    }
}

/// Tasklet-count bucket (the revolver behaves qualitatively differently
/// under-, at-, and over-subscribed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskletBucket {
    /// One tasklet: no interleaving at all.
    Single,
    /// 2–4: the revolver is under-subscribed.
    Few,
    /// 5+: enough threads to cover the revolver gap.
    Many,
}

impl TaskletBucket {
    /// All buckets, in reporting order.
    pub const ALL: [TaskletBucket; 3] =
        [TaskletBucket::Single, TaskletBucket::Few, TaskletBucket::Many];

    /// Buckets a tasklet count.
    #[must_use]
    pub fn classify(tasklets: u32) -> Self {
        match tasklets {
            0 | 1 => TaskletBucket::Single,
            2..=4 => TaskletBucket::Few,
            _ => TaskletBucket::Many,
        }
    }

    /// Stable name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            TaskletBucket::Single => "1",
            TaskletBucket::Few => "2-4",
            TaskletBucket::Many => "5+",
        }
    }
}

/// Shape of a run's DMA traffic, recovered from the run stats alone:
/// average DRAM bytes moved per request separates bulk streaming from the
/// small scattered transfers of gather-style kernels (the sparse BSR
/// family's `x[colidx]` loads).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DmaShape {
    /// No DMA at all.
    None,
    /// Large, regular transfers.
    Bulk,
    /// Small transfers at scattered addresses (≤ [`GATHER_BYTES_PER_REQ`]
    /// bytes per request on average).
    Gather,
}

/// Average read-bytes-per-request at or below which a run's DMA traffic
/// counts as a gather (one or two 8-byte beats per request).
pub const GATHER_BYTES_PER_REQ: u64 = 16;

impl DmaShape {
    /// All shapes, in reporting order.
    pub const ALL: [DmaShape; 3] = [DmaShape::None, DmaShape::Bulk, DmaShape::Gather];

    /// Buckets a run's DMA request count and DRAM read traffic.
    #[must_use]
    pub fn classify(dma_requests: u64, dram_bytes_read: u64) -> Self {
        if dma_requests == 0 {
            DmaShape::None
        } else if dram_bytes_read / dma_requests <= GATHER_BYTES_PER_REQ {
            DmaShape::Gather
        } else {
            DmaShape::Bulk
        }
    }

    /// Stable lowercase name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            DmaShape::None => "none",
            DmaShape::Bulk => "bulk",
            DmaShape::Gather => "gather",
        }
    }
}

/// How many launches a case chained (WRAM/MRAM persist across launches;
/// the NN-inference workloads stage multi-kernel pipelines this way).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChainDepth {
    /// One launch.
    Single,
    /// Two or more launches of the same loaded program.
    Chained,
}

impl ChainDepth {
    /// All depths, in reporting order.
    pub const ALL: [ChainDepth; 2] = [ChainDepth::Single, ChainDepth::Chained];

    /// Buckets a case's launch count.
    #[must_use]
    pub fn classify(launches: u32) -> Self {
        if launches > 1 {
            ChainDepth::Chained
        } else {
            ChainDepth::Single
        }
    }

    /// Stable lowercase name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ChainDepth::Single => "single",
            ChainDepth::Chained => "chained",
        }
    }
}

/// Classifies one decoded instruction's hazard kind from decoded facts
/// alone (see the module docs for why duplicates are recoverable).
#[must_use]
pub fn instr_hazard(d: &DecodedInstr) -> HazardKind {
    if d.rf_hazard == 0 {
        return HazardKind::None;
    }
    let mut even = 0u32;
    let mut odd = 0u32;
    let mut mask = d.src_mask;
    while mask != 0 {
        let r = mask.trailing_zeros();
        if r.is_multiple_of(2) {
            even += 1;
        } else {
            odd += 1;
        }
        mask &= mask - 1;
    }
    let from_mask = even.saturating_sub(1) + odd.saturating_sub(1);
    if u32::from(d.rf_hazard) > from_mask {
        HazardKind::DupSource
    } else {
        HazardKind::SameBank
    }
}

fn class_idx(c: InstrClass) -> usize {
    match c {
        InstrClass::Arithmetic => 0,
        InstrClass::LoadStore => 1,
        InstrClass::Dma => 2,
        InstrClass::Control => 3,
        InstrClass::Sync => 4,
        InstrClass::Other => 5,
    }
}

fn class_name(c: InstrClass) -> &'static str {
    match c {
        InstrClass::Arithmetic => "arithmetic",
        InstrClass::LoadStore => "load-store",
        InstrClass::Dma => "dma",
        InstrClass::Control => "control",
        InstrClass::Sync => "sync",
        InstrClass::Other => "other",
    }
}

fn hazard_idx(h: HazardKind) -> usize {
    match h {
        HazardKind::None => 0,
        HazardKind::SameBank => 1,
        HazardKind::DupSource => 2,
    }
}

/// Whether a (class, hazard) cell is reachable at all: `sync` and `other`
/// instructions read at most one register, so only the hazard-free column
/// exists for them. 14 of the 18 cells are reachable.
#[must_use]
pub fn class_hazard_reachable(class: InstrClass, hz: HazardKind) -> bool {
    match class {
        InstrClass::Sync | InstrClass::Other => hz == HazardKind::None,
        _ => true,
    }
}

/// Number of reachable (class × hazard) cells.
#[must_use]
pub fn reachable_class_hazard_cells() -> u32 {
    let mut n = 0;
    for class in InstrClass::ALL {
        for hz in HazardKind::ALL {
            if class_hazard_reachable(class, hz) {
                n += 1;
            }
        }
    }
    n
}

/// Hit counts over the full 6 × 3 × 3 × 3 cell space, plus the per-case
/// (DMA shape × chain depth) grid.
#[derive(Debug, Clone, Default)]
pub struct CoverageMap {
    hits: [[[[u64; 3]; 3]; 3]; 6],
    shape_hits: [[u64; 2]; 3],
    cases: u64,
}

impl CoverageMap {
    /// An empty map.
    #[must_use]
    pub fn new() -> Self {
        CoverageMap::default()
    }

    /// Records one case: every static instruction of `decoded`, crossed
    /// with the run's memory pressure and tasklet bucket.
    pub fn record_program(&mut self, decoded: &DecodedProgram, tasklets: u32, mem: MemPressure) {
        let mi = MemPressure::ALL.iter().position(|&m| m == mem).expect("mem in ALL");
        let bucket = TaskletBucket::classify(tasklets);
        let bi = TaskletBucket::ALL.iter().position(|&b| b == bucket).expect("bucket in ALL");
        for pc in 0..decoded.len() as u32 {
            let d = decoded.get(pc).expect("pc < len");
            let hz = instr_hazard(d);
            self.hits[class_idx(d.class)][hazard_idx(hz)][mi][bi] += 1;
        }
        self.cases += 1;
    }

    /// Records one case's DMA shape × chain depth cell (one hit per case,
    /// unlike the per-instruction class × hazard grid).
    pub fn record_shape(&mut self, shape: DmaShape, depth: ChainDepth) {
        let si = DmaShape::ALL.iter().position(|&s| s == shape).expect("shape in ALL");
        let di = ChainDepth::ALL.iter().position(|&d| d == depth).expect("depth in ALL");
        self.shape_hits[si][di] += 1;
    }

    /// Hit count of one (DMA shape × chain depth) cell.
    #[must_use]
    pub fn shape_hits(&self, shape: DmaShape, depth: ChainDepth) -> u64 {
        let si = DmaShape::ALL.iter().position(|&s| s == shape).expect("shape in ALL");
        let di = ChainDepth::ALL.iter().position(|&d| d == depth).expect("depth in ALL");
        self.shape_hits[si][di]
    }

    /// The unhit (DMA shape × chain depth) cells, in reporting order. All
    /// six cells are reachable (a chained program may issue no DMA).
    #[must_use]
    pub fn unhit_shape_chain(&self) -> Vec<(DmaShape, ChainDepth)> {
        let mut out = Vec::new();
        for shape in DmaShape::ALL {
            for depth in ChainDepth::ALL {
                if self.shape_hits(shape, depth) == 0 {
                    out.push((shape, depth));
                }
            }
        }
        out
    }

    /// Picks a shape focus for the next batch: a random unhit (shape ×
    /// depth) cell, or `None` once the grid is saturated.
    #[must_use]
    pub fn pick_shape_focus(&self, rng: &mut StdRng) -> Option<(DmaShape, ChainDepth)> {
        let unhit = self.unhit_shape_chain();
        if unhit.is_empty() {
            None
        } else {
            Some(*rng.choose(&unhit))
        }
    }

    /// Number of cases recorded.
    #[must_use]
    pub fn cases(&self) -> u64 {
        self.cases
    }

    /// Total hits in one (class × hazard) cell, summed over the dynamic
    /// axes.
    #[must_use]
    pub fn class_hazard_hits(&self, class: InstrClass, hz: HazardKind) -> u64 {
        self.hits[class_idx(class)][hazard_idx(hz)].iter().flatten().sum()
    }

    /// (hit, reachable) cell counts of the class × hazard projection.
    #[must_use]
    pub fn class_hazard_coverage(&self) -> (u32, u32) {
        let mut hit = 0;
        for class in InstrClass::ALL {
            for hz in HazardKind::ALL {
                if class_hazard_reachable(class, hz) && self.class_hazard_hits(class, hz) > 0 {
                    hit += 1;
                }
            }
        }
        (hit, reachable_class_hazard_cells())
    }

    /// The reachable-but-unhit (class × hazard) cells, in reporting order.
    #[must_use]
    pub fn unhit_class_hazard(&self) -> Vec<(InstrClass, HazardKind)> {
        let mut out = Vec::new();
        for class in InstrClass::ALL {
            for hz in HazardKind::ALL {
                if class_hazard_reachable(class, hz) && self.class_hazard_hits(class, hz) == 0 {
                    out.push((class, hz));
                }
            }
        }
        out
    }

    /// Picks a generation focus: a random unhit reachable cell, or `None`
    /// once the projection is saturated (unfocused exploration then).
    #[must_use]
    pub fn pick_focus(&self, rng: &mut StdRng) -> Option<(InstrClass, HazardKind)> {
        let unhit = self.unhit_class_hazard();
        if unhit.is_empty() {
            None
        } else {
            Some(*rng.choose(&unhit))
        }
    }

    /// Hit count of a fully-qualified cell.
    #[must_use]
    pub fn cell_hits(
        &self,
        class: InstrClass,
        hz: HazardKind,
        mem: MemPressure,
        bucket: TaskletBucket,
    ) -> u64 {
        let mi = MemPressure::ALL.iter().position(|&m| m == mem).expect("mem in ALL");
        let bi = TaskletBucket::ALL.iter().position(|&b| b == bucket).expect("bucket in ALL");
        self.hits[class_idx(class)][hazard_idx(hz)][mi][bi]
    }

    /// JSON report: the class × hazard projection with reachability, plus
    /// every nonzero fully-qualified cell.
    #[must_use]
    pub fn json(&self) -> Json {
        let (hit, reachable) = self.class_hazard_coverage();
        let mut proj = Vec::new();
        for class in InstrClass::ALL {
            for hz in HazardKind::ALL {
                proj.push(Json::obj([
                    ("class", Json::Str(class_name(class).into())),
                    ("hazard", Json::Str(hz.as_str().into())),
                    ("reachable", Json::Bool(class_hazard_reachable(class, hz))),
                    ("hits", Json::UInt(self.class_hazard_hits(class, hz))),
                ]));
            }
        }
        let mut cells = Vec::new();
        for class in InstrClass::ALL {
            for hz in HazardKind::ALL {
                for mem in MemPressure::ALL {
                    for bucket in TaskletBucket::ALL {
                        let n = self.cell_hits(class, hz, mem, bucket);
                        if n > 0 {
                            cells.push(Json::obj([
                                ("class", Json::Str(class_name(class).into())),
                                ("hazard", Json::Str(hz.as_str().into())),
                                ("mem", Json::Str(mem.as_str().into())),
                                ("tasklets", Json::Str(bucket.as_str().into())),
                                ("hits", Json::UInt(n)),
                            ]));
                        }
                    }
                }
            }
        }
        let mut shape_cells = Vec::new();
        for shape in DmaShape::ALL {
            for depth in ChainDepth::ALL {
                shape_cells.push(Json::obj([
                    ("shape", Json::Str(shape.as_str().into())),
                    ("chain", Json::Str(depth.as_str().into())),
                    ("hits", Json::UInt(self.shape_hits(shape, depth))),
                ]));
            }
        }
        Json::obj([
            ("cases", Json::UInt(self.cases)),
            ("class_hazard_hit", Json::UInt(u64::from(hit))),
            ("class_hazard_reachable", Json::UInt(u64::from(reachable))),
            (
                "class_hazard_pct",
                Json::Num(if reachable == 0 {
                    0.0
                } else {
                    100.0 * f64::from(hit) / f64::from(reachable)
                }),
            ),
            ("class_hazard", Json::Arr(proj)),
            ("shape_chain", Json::Arr(shape_cells)),
            ("cells", Json::Arr(cells)),
        ])
    }

    /// Human-readable class × hazard matrix (`-` marks unreachable cells).
    #[must_use]
    pub fn table(&self) -> Table {
        let mut t = Table::new(&["class", "none", "same-bank", "dup-source"]);
        for class in InstrClass::ALL {
            let cell = |hz| {
                if class_hazard_reachable(class, hz) {
                    self.class_hazard_hits(class, hz).to_string()
                } else {
                    "-".to_string()
                }
            };
            t.row_owned(vec![
                class_name(class).to_string(),
                cell(HazardKind::None),
                cell(HazardKind::SameBank),
                cell(HazardKind::DupSource),
            ]);
        }
        t
    }

    /// Human-readable DMA shape × chain depth matrix.
    #[must_use]
    pub fn shape_table(&self) -> Table {
        let mut t = Table::new(&["dma shape", "single", "chained"]);
        for shape in DmaShape::ALL {
            t.row_owned(vec![
                shape.as_str().to_string(),
                self.shape_hits(shape, ChainDepth::Single).to_string(),
                self.shape_hits(shape, ChainDepth::Chained).to_string(),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_isa::{AluOp, Instruction, Operand, Reg};

    fn decoded(instrs: &[Instruction]) -> DecodedProgram {
        DecodedProgram::decode(instrs)
    }

    #[test]
    fn hazard_classification_from_decoded_facts() {
        let prog = decoded(&[
            // r1 + r2: different banks.
            Instruction::Alu {
                op: AluOp::Add,
                rd: Reg::r(0),
                ra: Reg::r(1),
                rb: Operand::Reg(Reg::r(2)),
            },
            // r2 + r4: both even.
            Instruction::Alu {
                op: AluOp::Add,
                rd: Reg::r(0),
                ra: Reg::r(2),
                rb: Operand::Reg(Reg::r(4)),
            },
            // r6 + r6: duplicate.
            Instruction::Alu {
                op: AluOp::Add,
                rd: Reg::r(0),
                ra: Reg::r(6),
                rb: Operand::Reg(Reg::r(6)),
            },
        ]);
        assert_eq!(instr_hazard(prog.get(0).unwrap()), HazardKind::None);
        assert_eq!(instr_hazard(prog.get(1).unwrap()), HazardKind::SameBank);
        assert_eq!(instr_hazard(prog.get(2).unwrap()), HazardKind::DupSource);
    }

    #[test]
    fn fourteen_class_hazard_cells_are_reachable() {
        assert_eq!(reachable_class_hazard_cells(), 14);
        assert!(!class_hazard_reachable(InstrClass::Sync, HazardKind::SameBank));
        assert!(!class_hazard_reachable(InstrClass::Other, HazardKind::DupSource));
        assert!(class_hazard_reachable(InstrClass::Dma, HazardKind::DupSource));
    }

    #[test]
    fn pressure_and_bucket_classification() {
        assert_eq!(MemPressure::classify(0, 8), MemPressure::Idle);
        assert_eq!(MemPressure::classify(16, 8), MemPressure::Streaming);
        assert_eq!(MemPressure::classify(17, 8), MemPressure::Burst);
        assert_eq!(TaskletBucket::classify(1), TaskletBucket::Single);
        assert_eq!(TaskletBucket::classify(4), TaskletBucket::Few);
        assert_eq!(TaskletBucket::classify(16), TaskletBucket::Many);
    }

    #[test]
    fn recording_marks_cells_and_focus_targets_unhit() {
        let mut map = CoverageMap::new();
        let prog = decoded(&[Instruction::Alu {
            op: AluOp::Add,
            rd: Reg::r(0),
            ra: Reg::r(2),
            rb: Operand::Reg(Reg::r(4)),
        }]);
        map.record_program(&prog, 4, MemPressure::Idle);
        assert_eq!(map.cases(), 1);
        assert_eq!(map.class_hazard_hits(InstrClass::Arithmetic, HazardKind::SameBank), 1);
        let (hit, reachable) = map.class_hazard_coverage();
        assert_eq!((hit, reachable), (1, 14));
        let unhit = map.unhit_class_hazard();
        assert_eq!(unhit.len(), 13);
        assert!(!unhit.contains(&(InstrClass::Arithmetic, HazardKind::SameBank)));
        let mut rng = StdRng::seed_from_u64(7);
        let focus = map.pick_focus(&mut rng).unwrap();
        assert!(unhit.contains(&focus));
    }

    #[test]
    fn report_shapes_render() {
        let map = CoverageMap::new();
        let j = map.json();
        assert!(j.render().contains("class_hazard_reachable"));
        assert!(j.render().contains("shape_chain"));
        assert!(map.table().render().contains("dup-source"));
        assert!(map.shape_table().render().contains("gather"));
    }

    #[test]
    fn dma_shape_and_chain_depth_classification() {
        assert_eq!(DmaShape::classify(0, 0), DmaShape::None);
        // 8 requests averaging 8 bytes each: gather.
        assert_eq!(DmaShape::classify(8, 64), DmaShape::Gather);
        // 4 requests averaging 256 bytes each: bulk.
        assert_eq!(DmaShape::classify(4, 1024), DmaShape::Bulk);
        assert_eq!(ChainDepth::classify(1), ChainDepth::Single);
        assert_eq!(ChainDepth::classify(3), ChainDepth::Chained);
    }

    #[test]
    fn shape_recording_marks_cells_and_focus_targets_unhit() {
        let mut map = CoverageMap::new();
        assert_eq!(map.unhit_shape_chain().len(), 6);
        map.record_shape(DmaShape::Gather, ChainDepth::Chained);
        assert_eq!(map.shape_hits(DmaShape::Gather, ChainDepth::Chained), 1);
        let unhit = map.unhit_shape_chain();
        assert_eq!(unhit.len(), 5);
        assert!(!unhit.contains(&(DmaShape::Gather, ChainDepth::Chained)));
        let mut rng = StdRng::seed_from_u64(9);
        let focus = map.pick_shape_focus(&mut rng).unwrap();
        assert!(unhit.contains(&focus));
    }
}
