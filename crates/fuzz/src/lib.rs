//! # pim-fuzz
//!
//! Coverage-guided structured fuzzing and conformance testing for the
//! whole executor stack.
//!
//! The repo carries three independent executors that must agree on every
//! program — the timing-free `pim-ref` oracle, the naive per-cycle
//! reference loop, and the optimized pre-decoded fast loop (plus the SIMT
//! front-end) — and the interesting divergences hide in exactly the
//! corners fixed test suites do not reach: duplicate-source register-file
//! hazards, DMA bursts against a busy memory engine, barrier/mutex
//! interleavings at odd tasklet counts. This crate closes that gap with
//! four cooperating pieces:
//!
//! * [`gen`] — a seeded, structured program generator over the full
//!   `pim-isa` surface. Programs are *schedule-independent by
//!   construction* (private WRAM slabs and MRAM windows, mutex-protected
//!   commutative shared updates, barriers between phases), so any
//!   divergence indicts an executor, never the program.
//! * [`coverage`] — a coverage map over (instruction class × hazard kind ×
//!   memory pressure × tasklet bucket) cells, harvested from each case's
//!   [`pim_isa::DecodedProgram`] and run metrics; the campaign biases
//!   generation toward unhit cells.
//! * [`gauntlet`] — the metamorphic conformance checks every generated
//!   program must pass: oracle equality, naive-vs-fast stats equality,
//!   trace-sink invisibility, and tasklet-schedule invariance.
//! * [`shrink`] + [`corpus`] — failures are delta-debugged down to minimal
//!   repros (blocks, then instructions, then operands, then tasklets) and
//!   written to a committed text corpus that replays deterministically in
//!   `cargo test`.
//!
//! [`campaign`] ties it together on the `pimulator` job engine, and
//! [`cli`] exposes it as `pimsim fuzz`, including the `--mutate`
//! self-check that arms a seeded scoreboard bug and proves the harness
//! detects it.

pub mod campaign;
pub mod cli;
pub mod corpus;
pub mod coverage;
pub mod gauntlet;
pub mod gen;
pub mod shrink;

use pim_asm::DpuProgram;
use pim_dpu::{DpuConfig, IlpFeatures, SimtConfig};

/// Which executor configuration a fuzz case targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecMode {
    /// The paper-baseline scalar pipeline.
    Scalar,
    /// All Fig 12 ILP features on (forwarding, unified RF, superscalar,
    /// double frequency).
    Ilp,
    /// The SIMT front-end with default coalescing.
    Simt,
}

impl ExecMode {
    /// All modes, in reporting order.
    pub const ALL: [ExecMode; 3] = [ExecMode::Scalar, ExecMode::Ilp, ExecMode::Simt];

    /// Stable lowercase name (used in corpus files and reports).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ExecMode::Scalar => "scalar",
            ExecMode::Ilp => "ilp",
            ExecMode::Simt => "simt",
        }
    }

    /// Parses [`ExecMode::as_str`] output back.
    ///
    /// # Errors
    ///
    /// Returns the offending string when it names no mode.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "scalar" => Ok(ExecMode::Scalar),
            "ilp" => Ok(ExecMode::Ilp),
            "simt" => Ok(ExecMode::Simt),
            other => Err(format!("unknown exec mode `{other}` (expected scalar|ilp|simt)")),
        }
    }

    /// The simulator configuration this mode runs under, bounded so a
    /// runaway generated program errors out instead of hanging a worker.
    #[must_use]
    pub fn config(self, tasklets: u32) -> DpuConfig {
        let mut cfg = match self {
            ExecMode::Scalar => DpuConfig::paper_baseline(tasklets),
            ExecMode::Ilp => DpuConfig::paper_baseline(tasklets).with_ilp(IlpFeatures {
                data_forwarding: true,
                unified_rf: true,
                superscalar: true,
                double_frequency: true,
            }),
            ExecMode::Simt => DpuConfig::paper_baseline(tasklets).with_simt(SimtConfig::default()),
        };
        cfg.max_cycles = 50_000_000;
        cfg
    }

    /// Whether the mode has a naive-loop timing reference (the SIMT
    /// front-end has a single implementation).
    #[must_use]
    pub fn has_naive_loop(self) -> bool {
        !matches!(self, ExecMode::Simt)
    }
}

/// One generated (or corpus-loaded) conformance case: a program plus the
/// execution context it must hold up under.
#[derive(Debug, Clone)]
pub struct FuzzCase {
    /// The program under test (numeric branch targets, ready to load).
    pub program: DpuProgram,
    /// Tasklet count the case runs with.
    pub tasklets: u32,
    /// Executor configuration.
    pub mode: ExecMode,
    /// Number of chained launches of the loaded program (≥ 1). WRAM and
    /// MRAM persist between launches, mirroring `Dpu::launch` relaunch
    /// semantics; register files and PCs are re-armed each time.
    pub launches: u32,
    /// Human-readable provenance (`seed 0x… scalar/4`, corpus filename…).
    pub label: String,
}

impl FuzzCase {
    /// The simulator configuration for this case.
    #[must_use]
    pub fn config(&self) -> DpuConfig {
        self.mode.config(self.tasklets)
    }

    /// Effective launch count — a zero (e.g. from a hand-edited corpus
    /// file) still means one launch.
    #[must_use]
    pub fn launch_count(&self) -> u32 {
        self.launches.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_names_round_trip() {
        for m in ExecMode::ALL {
            assert_eq!(ExecMode::parse(m.as_str()).unwrap(), m);
        }
        assert!(ExecMode::parse("warp").is_err());
    }

    #[test]
    fn mode_configs_bound_runaway_programs() {
        for m in ExecMode::ALL {
            let cfg = m.config(4);
            assert_eq!(cfg.n_tasklets, 4);
            assert!(cfg.max_cycles <= 50_000_000);
        }
        assert!(ExecMode::Scalar.config(2).simt.is_none());
        assert!(ExecMode::Simt.config(2).simt.is_some());
        assert!(ExecMode::Ilp.config(2).ilp.unified_rf);
    }
}
