//! The `pimsim fuzz` driver: flag parsing, campaign execution, report
//! rendering, and repro persistence.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use crate::campaign::{run_campaign, CampaignOptions, CampaignReport};
use crate::shrink::DEFAULT_SHRINK_EVALS;

const USAGE: &str = "usage: pimsim fuzz [--seed N] [--budget N] [--jobs N] [--corpus DIR] \
                     [--mutate] [--json] [--out FILE]";

/// Parsed `pimsim fuzz` options.
#[derive(Debug, Clone)]
struct FuzzOptions {
    seed: u64,
    budget: u32,
    jobs: Option<usize>,
    corpus: Option<PathBuf>,
    mutate: bool,
    json: bool,
    out: Option<PathBuf>,
}

impl FuzzOptions {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut opts = FuzzOptions {
            seed: 0,
            budget: 96,
            jobs: None,
            corpus: None,
            mutate: false,
            json: false,
            out: None,
        };
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--seed" => {
                    let v = it.next().ok_or("--seed needs a value")?;
                    opts.seed = v.parse().map_err(|e| format!("bad --seed `{v}`: {e}"))?;
                }
                "--budget" => {
                    let v = it.next().ok_or("--budget needs a value")?;
                    opts.budget = v.parse().map_err(|e| format!("bad --budget `{v}`: {e}"))?;
                }
                "--jobs" => {
                    let v = it.next().ok_or("--jobs needs a value")?;
                    let n: usize = v.parse().map_err(|e| format!("bad --jobs `{v}`: {e}"))?;
                    opts.jobs = Some(n.max(1));
                }
                "--corpus" => {
                    opts.corpus = Some(PathBuf::from(it.next().ok_or("--corpus needs a dir")?));
                }
                "--mutate" => opts.mutate = true,
                "--json" => opts.json = true,
                "--out" => {
                    opts.out = Some(PathBuf::from(it.next().ok_or("--out needs a file")?));
                }
                other => {
                    return Err(format!(
                        "unknown flag `{other}` (expected --seed/--budget/--jobs/--corpus/\
                         --mutate/--json/--out)"
                    ));
                }
            }
        }
        Ok(opts)
    }
}

fn write_with_parents(path: &Path, contents: &str) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, contents)
}

/// Prints to stdout, tolerating a closed pipe (`pimsim fuzz | head`).
fn emit(text: &str) {
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let _ = out.write_all(text.as_bytes());
}

fn render_failures(report: &CampaignReport) -> String {
    let mut s = String::new();
    for f in &report.failures {
        s.push_str(&format!(
            "FAIL [{}] {} — {}\n  shrunk to {} instructions, {} tasklet(s) ({})\n",
            f.invariant.as_str(),
            f.label,
            f.detail,
            f.shrunk.program.instrs.len(),
            f.shrunk.tasklets,
            f.repro_name,
        ));
    }
    s
}

/// The `pimsim fuzz` entry point.
///
/// Exit status: `2` for usage errors, failure for campaign errors, a
/// conformance failure in a normal campaign, or an *undetected* mutation
/// in a `--mutate` campaign; success otherwise.
#[must_use]
pub fn run_with_args(args: &[String]) -> ExitCode {
    let opts = match FuzzOptions::parse(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("pimsim fuzz: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let campaign = CampaignOptions {
        seed: opts.seed,
        budget: opts.budget,
        jobs: opts.jobs,
        corpus: opts.corpus.clone(),
        mutate: opts.mutate,
        shrink_evals: DEFAULT_SHRINK_EVALS,
    };
    let report = match run_campaign(&campaign) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("pimsim fuzz: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Persist minimized repros into the corpus so the next `cargo test`
    // replays them (skipped for the self-check's intentional bug).
    if !opts.mutate {
        if let Some(dir) = &opts.corpus {
            for f in &report.failures {
                let path = dir.join(&f.repro_name);
                if let Err(err) = write_with_parents(&path, &f.repro_text) {
                    eprintln!("pimsim fuzz: could not write {}: {err}", path.display());
                    return ExitCode::FAILURE;
                }
                eprintln!("wrote {}", path.display());
            }
        }
    }

    let doc = report.json();
    if let Some(out) = &opts.out {
        if let Err(err) = write_with_parents(out, &doc.render_pretty()) {
            eprintln!("pimsim fuzz: could not write {}: {err}", out.display());
            return ExitCode::FAILURE;
        }
        if !opts.json {
            eprintln!("wrote {}", out.display());
        }
    }
    if opts.json {
        emit(&format!("{}\n", doc.render_pretty()));
    } else {
        emit(&format!("{}\n{}", report.table(), render_failures(&report)));
    }

    if opts.mutate {
        if report.mutation_detected() {
            let shrunk = report
                .failures
                .first()
                .map(|f| {
                    format!(
                        "shrunk repro ({} instructions):\n{}",
                        f.shrunk.program.instrs.len(),
                        pim_asm::disassemble(&f.shrunk.program)
                    )
                })
                .unwrap_or_default();
            emit(&format!(
                "mutation self-check: detected the seeded scoreboard bug after {} cases\n{shrunk}",
                report.generated
            ));
            ExitCode::SUCCESS
        } else {
            eprintln!(
                "pimsim fuzz: mutation self-check FAILED — the seeded bug survived {} cases",
                report.generated
            );
            ExitCode::FAILURE
        }
    } else if report.failures_seen > 0 {
        eprintln!("pimsim fuzz: {} conformance failure(s)", report.failures_seen);
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<FuzzOptions, String> {
        let v: Vec<String> = args.iter().map(|s| (*s).to_string()).collect();
        FuzzOptions::parse(&v)
    }

    #[test]
    fn defaults_are_the_smoke_configuration() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.seed, 0);
        assert_eq!(o.budget, 96);
        assert!(o.jobs.is_none() && o.corpus.is_none() && !o.mutate && !o.json);
    }

    #[test]
    fn all_flags_parse() {
        let o = parse(&[
            "--seed",
            "7",
            "--budget",
            "12",
            "--jobs",
            "3",
            "--corpus",
            "c",
            "--mutate",
            "--json",
            "--out",
            "r/fuzz.json",
        ])
        .unwrap();
        assert_eq!(o.seed, 7);
        assert_eq!(o.budget, 12);
        assert_eq!(o.jobs, Some(3));
        assert_eq!(o.corpus.as_deref(), Some(Path::new("c")));
        assert!(o.mutate && o.json);
        assert_eq!(o.out.as_deref(), Some(Path::new("r/fuzz.json")));
    }

    #[test]
    fn bad_flags_are_rejected() {
        assert!(parse(&["--frobnicate"]).is_err());
        assert!(parse(&["--seed"]).is_err());
        assert!(parse(&["--budget", "many"]).is_err());
    }
}
