//! The committed regression corpus: plain-text entries under
//! `tests/corpus/` that replay deterministically in `cargo test`.
//!
//! Two entry kinds share one file format, a header of `; key: value`
//! comment lines (the assembler treats `;` lines as comments, so a whole
//! entry is also a valid assembly file):
//!
//! * **seed** entries pin a generator seed + context; replay regenerates
//!   the program (generation is deterministic) and runs the gauntlet.
//! * **program** entries carry an explicit disassembly — the shape the
//!   shrinker emits for minimized repros — and replay assembles the body
//!   (the assembler round-trip guarantee makes this exact).
//!
//! Repro filenames are content-addressed (`repro-<invariant>-<hash>`), so
//! re-finding a known bug is idempotent and two campaigns never collide.

use std::path::Path;

use crate::gen::{generate, GenOptions};
use crate::{ExecMode, FuzzCase};
use pim_asm::assemble;

/// First line of every corpus entry.
pub const HEADER: &str = "; pim-fuzz corpus v1";

/// One parsed corpus entry.
#[derive(Debug, Clone)]
pub enum CorpusEntry {
    /// Regenerate from the (deterministic) generator.
    Seed {
        /// Generator seed.
        seed: u64,
        /// Tasklet count.
        tasklets: u32,
        /// Executor mode.
        mode: ExecMode,
        /// Chained launch count (absent in older entries → 1).
        launches: u32,
    },
    /// Assemble the carried program text.
    Program {
        /// Tasklet count.
        tasklets: u32,
        /// Executor mode.
        mode: ExecMode,
        /// Chained launch count (absent in older entries → 1).
        launches: u32,
        /// Invariant the repro originally broke, if recorded.
        invariant: Option<String>,
        /// The full entry text (headers + disassembly), assembler-ready.
        text: String,
    },
}

/// FNV-1a 64-bit hash (the corpus's content-addressing primitive).
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Renders a seed entry. The `; launches:` line is emitted only for
/// chained cases, so single-launch entries keep the historical format.
#[must_use]
pub fn render_seed(seed: u64, tasklets: u32, mode: ExecMode, launches: u32) -> String {
    let chain = if launches > 1 { format!("; launches: {launches}\n") } else { String::new() };
    format!(
        "{HEADER}\n; kind: seed\n; seed: {seed:#x}\n; tasklets: {tasklets}\n; mode: {}\n{chain}",
        mode.as_str()
    )
}

/// Renders a minimized-repro program entry (header + disassembly).
#[must_use]
pub fn render_repro(case: &FuzzCase, invariant: &str) -> String {
    let chain = if case.launch_count() > 1 {
        format!("; launches: {}\n", case.launch_count())
    } else {
        String::new()
    };
    format!(
        "{HEADER}\n; kind: program\n; tasklets: {}\n; mode: {}\n{chain}; invariant: {invariant}\n{}",
        case.tasklets,
        case.mode.as_str(),
        pim_asm::disassemble(&case.program)
    )
}

/// Content-addressed filename for a rendered repro entry.
#[must_use]
pub fn repro_filename(text: &str, invariant: &str) -> String {
    format!("repro-{invariant}-{:016x}.corpus", fnv1a(text.as_bytes()))
}

fn header_value<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    line.strip_prefix("; ")?.strip_prefix(key)?.strip_prefix(':').map(str::trim)
}

/// Parses one corpus entry.
///
/// # Errors
///
/// Reports a missing/garbled header, an unknown kind or mode, or
/// unparseable numeric fields.
pub fn parse_entry(text: &str) -> Result<CorpusEntry, String> {
    if text.lines().next().map(str::trim) != Some(HEADER) {
        return Err(format!("missing `{HEADER}` header line"));
    }
    let mut kind = None;
    let mut seed = None;
    let mut tasklets = None;
    let mut mode = None;
    let mut launches = None;
    let mut invariant = None;
    for line in text.lines().skip(1) {
        let line = line.trim();
        if let Some(v) = header_value(line, "kind") {
            kind = Some(v.to_string());
        } else if let Some(v) = header_value(line, "seed") {
            let digits = v.strip_prefix("0x").unwrap_or(v);
            seed =
                Some(u64::from_str_radix(digits, 16).map_err(|e| format!("bad seed `{v}`: {e}"))?);
        } else if let Some(v) = header_value(line, "tasklets") {
            tasklets = Some(v.parse::<u32>().map_err(|e| format!("bad tasklets `{v}`: {e}"))?);
        } else if let Some(v) = header_value(line, "mode") {
            mode = Some(ExecMode::parse(v)?);
        } else if let Some(v) = header_value(line, "launches") {
            let n = v.parse::<u32>().map_err(|e| format!("bad launches `{v}`: {e}"))?;
            if n == 0 {
                return Err("`; launches:` must be at least 1".into());
            }
            launches = Some(n);
        } else if let Some(v) = header_value(line, "invariant") {
            invariant = Some(v.to_string());
        } else if !line.starts_with(';') && !line.is_empty() {
            break; // program body begins
        }
    }
    let tasklets = tasklets.ok_or("missing `; tasklets:` header")?;
    let mode = mode.ok_or("missing `; mode:` header")?;
    let launches = launches.unwrap_or(1);
    match kind.as_deref() {
        Some("seed") => {
            let seed = seed.ok_or("seed entry missing `; seed:` header")?;
            Ok(CorpusEntry::Seed { seed, tasklets, mode, launches })
        }
        Some("program") => {
            Ok(CorpusEntry::Program { tasklets, mode, launches, invariant, text: text.to_string() })
        }
        Some(other) => Err(format!("unknown corpus kind `{other}`")),
        None => Err("missing `; kind:` header".into()),
    }
}

/// Materializes an entry into a runnable case. `label` should carry
/// provenance (usually the filename).
///
/// # Errors
///
/// Reports assembly errors in program entries.
pub fn entry_case(entry: &CorpusEntry, label: &str) -> Result<FuzzCase, String> {
    match entry {
        CorpusEntry::Seed { seed, tasklets, mode, launches } => {
            let mut case = generate(
                *seed,
                &GenOptions {
                    tasklets: *tasklets,
                    mode: *mode,
                    focus: None,
                    gather: false,
                    launches: *launches,
                },
            );
            case.label = format!("{label} ({})", case.label);
            Ok(case)
        }
        CorpusEntry::Program { tasklets, mode, launches, text, .. } => {
            let program = assemble(text).map_err(|e| format!("{label}: {e}"))?;
            Ok(FuzzCase {
                program,
                tasklets: *tasklets,
                mode: *mode,
                launches: *launches,
                label: label.into(),
            })
        }
    }
}

/// Loads every `*.corpus` file in `dir`, sorted by filename (replay order
/// is part of determinism).
///
/// # Errors
///
/// Reports an unreadable directory or file, or an unparseable entry
/// (naming the file).
pub fn load_dir(dir: &Path) -> Result<Vec<(String, CorpusEntry)>, String> {
    let rd = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read corpus dir {}: {e}", dir.display()))?;
    let mut names: Vec<String> = Vec::new();
    for de in rd {
        let de = de.map_err(|e| format!("cannot read corpus dir {}: {e}", dir.display()))?;
        let name = de.file_name().to_string_lossy().into_owned();
        if name.ends_with(".corpus") {
            names.push(name);
        }
    }
    names.sort();
    let mut out = Vec::with_capacity(names.len());
    for name in names {
        let path = dir.join(&name);
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let entry = parse_entry(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        out.push((name, entry));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_entries_round_trip() {
        let text = render_seed(0xD1FF_0007, 8, ExecMode::Ilp, 1);
        assert!(!text.contains("launches"), "single-launch entries keep the historical format");
        match parse_entry(&text).unwrap() {
            CorpusEntry::Seed { seed, tasklets, mode, launches } => {
                assert_eq!(seed, 0xD1FF_0007);
                assert_eq!(tasklets, 8);
                assert_eq!(mode, ExecMode::Ilp);
                assert_eq!(launches, 1);
            }
            other => panic!("expected seed entry, got {other:?}"),
        }
    }

    #[test]
    fn chained_seed_entries_round_trip_the_launch_count() {
        let text = render_seed(0xBEEF, 4, ExecMode::Scalar, 3);
        match parse_entry(&text).unwrap() {
            CorpusEntry::Seed { launches, .. } => assert_eq!(launches, 3),
            other => panic!("expected seed entry, got {other:?}"),
        }
        let case = entry_case(&parse_entry(&text).unwrap(), "c.corpus").unwrap();
        assert_eq!(case.launches, 3);
        assert!(parse_entry(
            &render_seed(1, 2, ExecMode::Scalar, 1).replace("; mode", "; launches: 0\n; mode")
        )
        .is_err());
    }

    #[test]
    fn program_entries_reassemble_the_exact_instructions() {
        let case = generate(
            11,
            &GenOptions {
                tasklets: 2,
                mode: ExecMode::Scalar,
                focus: None,
                gather: false,
                launches: 2,
            },
        );
        let text = render_repro(&case, "naive-fast");
        let entry = parse_entry(&text).unwrap();
        let replayed = entry_case(&entry, "x.corpus").unwrap();
        assert_eq!(replayed.program.instrs, case.program.instrs);
        assert_eq!(replayed.tasklets, 2);
        assert_eq!(replayed.launches, 2, "repro entries carry the chain depth");
        match entry {
            CorpusEntry::Program { invariant, .. } => {
                assert_eq!(invariant.as_deref(), Some("naive-fast"));
            }
            other => panic!("expected program entry, got {other:?}"),
        }
    }

    #[test]
    fn repro_filenames_are_content_addressed() {
        let a = repro_filename("abc", "oracle");
        let b = repro_filename("abc", "oracle");
        let c = repro_filename("abd", "oracle");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.starts_with("repro-oracle-") && a.ends_with(".corpus"));
    }

    #[test]
    fn malformed_entries_are_rejected_with_context() {
        assert!(parse_entry("nope").is_err());
        assert!(parse_entry(&format!("{HEADER}\n; kind: seed\n")).is_err());
        assert!(parse_entry(&format!("{HEADER}\n; kind: warp\n; tasklets: 2\n; mode: scalar\n"))
            .is_err());
    }
}
