//! Seeded, structured, coverage-biasable program generation.
//!
//! The generator emits *schedule-independent* SPMD kernels over the full
//! `pim-isa` surface: every tasklet computes in a private WRAM slab and a
//! private MRAM window, shared state changes only under a mutex with one
//! commutative-associative operator per program, heap blocks receive
//! address-derived (never arrival-order-derived) values, and barriers
//! separate the phases. Any end-state or timing divergence between
//! executors therefore indicts an executor, never the program.
//!
//! Program bodies are assembled from a table of *snippets*, each tagged
//! with the (instruction class × hazard kind) coverage cells it can hit —
//! duplicate-source ALU ops, same-bank stores, duplicate-pointer DMA,
//! divergent branches, subroutine calls, heap allocation, DMA bursts. A
//! campaign passes the currently-unhit cell as [`GenOptions::focus`] and
//! the generator biases snippet selection toward it.

use crate::coverage::HazardKind;
use crate::{ExecMode, FuzzCase};
use pim_asm::{Barrier, HeapAllocator, KernelBuilder, Mutex};
use pim_isa::{AluOp, Cond, InstrClass};
use pim_rng::StdRng;

/// Per-tasklet private WRAM slab size in bytes.
pub const SLAB_BYTES: i32 = 256;
/// Per-tasklet private MRAM window stride in bytes.
pub const MRAM_WINDOW: i32 = 1024;
/// Base MRAM address of the first tasklet's window.
pub const MRAM_BASE: i32 = 4096;

/// Commutative-associative operators safe for cross-tasklet accumulation:
/// the final shared value is a fold independent of update order.
const SHARED_OPS: [AluOp; 4] = [AluOp::Add, AluOp::Xor, AluOp::Min, AluOp::Max];

const PRIVATE_OPS: [AluOp; 10] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::Xor,
    AluOp::And,
    AluOp::Or,
    AluOp::Mul,
    AluOp::Sll,
    AluOp::Srl,
    AluOp::Min,
    AluOp::Max,
];

const DMA_LENS: [i32; 4] = [8, 32, 128, 256];

/// What to generate: execution context plus an optional coverage cell to
/// bias toward.
#[derive(Debug, Clone, Copy)]
pub struct GenOptions {
    /// Tasklet count the program runs with.
    pub tasklets: u32,
    /// Executor configuration the case targets.
    pub mode: ExecMode,
    /// Coverage cell to bias snippet selection toward, if any.
    pub focus: Option<(InstrClass, HazardKind)>,
    /// Bias snippet selection toward small data-dependent gather probes
    /// (the `DmaGather` snippet: 8-byte `ldma`s at value-derived offsets
    /// inside the private MRAM window). `false` leaves the historical
    /// draw sequence untouched, so committed seed corpus entries
    /// regenerate byte-identically.
    pub gather: bool,
    /// Number of chained launches the emitted case requests (≥ 1; the
    /// gauntlet re-launches the same loaded program with WRAM/MRAM
    /// persisting).
    pub launches: u32,
}

/// One body snippet the generator can emit, tagged (via
/// [`Snippet::hits`]) with the coverage cells it reaches.
///
/// Register-bank parity is what distinguishes the hazard columns: the
/// named registers allocate in order, so `t`/`v`/`i`/`s1` sit in the even
/// bank and `p`/`w`/`s0`/`s2` in the odd bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Snippet {
    ArithImm,
    ArithSameBank,
    ArithDup,
    CounterMix,
    WramRoundTrip,
    StoreSameBank,
    StoreDup,
    ByteLoads,
    BranchSkip,
    BranchSameBank,
    BranchDup,
    Call,
    DmaNone,
    DmaSameBank,
    DmaDup,
    DmaBurst,
    /// Small `ldma`s at data-dependent offsets: irregular gather traffic.
    /// Deliberately *not* in [`BODY_SNIPPETS`] — the base draw sequence
    /// (and thus every committed seed corpus entry) stays byte-identical;
    /// gather cases come only from [`GenOptions::gather`] biasing.
    DmaGather,
    HeapBlock,
    Divergent,
}

const BODY_SNIPPETS: [Snippet; 18] = [
    Snippet::ArithImm,
    Snippet::ArithSameBank,
    Snippet::ArithDup,
    Snippet::CounterMix,
    Snippet::WramRoundTrip,
    Snippet::StoreSameBank,
    Snippet::StoreDup,
    Snippet::ByteLoads,
    Snippet::BranchSkip,
    Snippet::BranchSameBank,
    Snippet::BranchDup,
    Snippet::Call,
    Snippet::DmaNone,
    Snippet::DmaSameBank,
    Snippet::DmaDup,
    Snippet::DmaBurst,
    Snippet::HeapBlock,
    Snippet::Divergent,
];

impl Snippet {
    /// The (class, hazard) coverage cells this snippet's emitted
    /// instructions land in (used for focus biasing).
    fn hits(self, class: InstrClass, hz: HazardKind) -> bool {
        use HazardKind as H;
        use InstrClass as C;
        match self {
            Snippet::ArithImm | Snippet::CounterMix => (class, hz) == (C::Arithmetic, H::None),
            Snippet::ArithSameBank => (class, hz) == (C::Arithmetic, H::SameBank),
            Snippet::ArithDup => (class, hz) == (C::Arithmetic, H::DupSource),
            Snippet::WramRoundTrip | Snippet::ByteLoads => (class, hz) == (C::LoadStore, H::None),
            Snippet::StoreSameBank => (class, hz) == (C::LoadStore, H::SameBank),
            Snippet::StoreDup | Snippet::HeapBlock => (class, hz) == (C::LoadStore, H::DupSource),
            Snippet::BranchSkip | Snippet::Divergent => (class, hz) == (C::Control, H::None),
            Snippet::BranchSameBank => (class, hz) == (C::Control, H::SameBank),
            Snippet::BranchDup => (class, hz) == (C::Control, H::DupSource),
            Snippet::Call => class == C::Control && hz == H::None,
            Snippet::DmaNone | Snippet::DmaGather => (class, hz) == (C::Dma, H::None),
            Snippet::DmaSameBank => (class, hz) == (C::Dma, H::SameBank),
            Snippet::DmaDup | Snippet::DmaBurst => class == C::Dma && hz != H::SameBank,
        }
    }
}

/// Generates one random schedule-independent program for the given
/// context, deterministically from `seed`.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn generate(seed: u64, opts: &GenOptions) -> FuzzCase {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = opts.tasklets;
    let mut k = KernelBuilder::new();
    let slab = k.global_zeroed("slab", (SLAB_BYTES * n as i32) as u32);
    let shared = k.global_zeroed("shared", 4);
    let arena = k.global_zeroed("arena", 4096);
    let bar = Barrier::alloc(&mut k, n);
    let mutex = Mutex::alloc(&mut k);
    let heap = HeapAllocator::alloc(&mut k);
    let shared_op = *rng.choose(&SHARED_OPS);
    // Allocation order fixes bank parity: even bank t/v/i/s1, odd p/w/s0/s2.
    let [t, p, v, w, i, s0, s1, s2] = k.regs(["t", "p", "v", "w", "i", "s0", "s1", "s2"]);
    // One fixed heap block size per program keeps the allocated address
    // set schedule-independent (same-size blocks are interchangeable).
    let heap_block = 8 * rng.gen_range(1i32..9);
    let subr = k.fresh_label("subr");
    let mut called_subr = false;

    // Private slab pointer and a tid-derived working value.
    k.tid(t);
    k.mul(p, t, SLAB_BYTES);
    k.add(p, p, slab as i32);
    k.mul(v, t, rng.gen_range(3i32..999));
    k.add(v, v, rng.gen_range(1i32..1000));

    // Tasklet 0 seeds the heap cursor; a barrier publishes it.
    let init_done = k.fresh_label("heap_init_done");
    k.branch(Cond::Ne, t, 0, &init_done);
    heap.init(&mut k, arena, [s0, s1]);
    k.place(&init_done);
    if n > 1 {
        bar.wait(&mut k, [s0, s1, s2]);
    }

    let focus_pool: Vec<Snippet> = match opts.focus {
        Some((class, hz)) => BODY_SNIPPETS.iter().copied().filter(|s| s.hits(class, hz)).collect(),
        None => Vec::new(),
    };

    let phases = rng.gen_range(1usize..4);
    for phase in 0..phases {
        // Phase body: a bounded private loop of random snippets.
        let iters = rng.gen_range(1i32..8);
        k.movi(i, iters);
        let top = k.label_here("phase_top");
        let mut heap_this_phase = false;
        for _ in 0..rng.gen_range(1usize..8) {
            let mut snip = if !focus_pool.is_empty() && rng.gen_ratio(3, 4) {
                *rng.choose(&focus_pool)
            } else {
                *rng.choose(&BODY_SNIPPETS)
            };
            // The gather knob is checked *after* the base draw (and only
            // when set) so a `gather: false` case consumes exactly the
            // historical RNG sequence.
            if opts.gather && rng.gen_ratio(1, 2) {
                snip = Snippet::DmaGather;
            }
            // `mem_alloc` is a bump allocator that cannot fail (or free):
            // unbounded allocation would walk the cursor off the end of the
            // arena into the barrier words behind it. One site per phase
            // (plus the first-iteration guard below) bounds heap use to
            // 3 phases x 16 tasklets x 64 B < the 4 KiB arena.
            if snip == Snippet::HeapBlock {
                if heap_this_phase {
                    snip = Snippet::StoreDup;
                } else {
                    heap_this_phase = true;
                }
            }
            match snip {
                // Pure arithmetic on the private value (no RF hazard:
                // immediate operand).
                Snippet::ArithImm => {
                    k.alu(*rng.choose(&PRIVATE_OPS), v, v, rng.gen_range(-900i32..900));
                }
                // v and i share the even bank: structural RF hazard.
                Snippet::ArithSameBank => k.alu(*rng.choose(&PRIVATE_OPS), v, v, i),
                // Duplicate source: w read twice by one instruction.
                Snippet::ArithDup => k.alu(*rng.choose(&PRIVATE_OPS), v, w, w),
                // Mix the loop counter in through a second register.
                Snippet::CounterMix => {
                    k.alu(*rng.choose(&PRIVATE_OPS), w, v, rng.gen_range(-900i32..900));
                    k.alu(AluOp::Xor, v, v, w);
                }
                // WRAM word round-trip inside the private slab.
                Snippet::WramRoundTrip => {
                    let off = 4 * rng.gen_range(0i32..SLAB_BYTES / 4);
                    k.sw(v, p, off);
                    k.lw(w, p, off);
                    k.add(v, v, w);
                }
                // w and p share the odd bank: hazardous store.
                Snippet::StoreSameBank => {
                    let off = 4 * rng.gen_range(0i32..SLAB_BYTES / 4);
                    k.mov(w, v);
                    k.sw(w, p, off);
                    k.lw(w, p, off);
                    k.alu(AluOp::Xor, v, v, w);
                }
                // Store reads p twice (value and base): duplicate source.
                Snippet::StoreDup => {
                    let off = rng.gen_range(0i32..SLAB_BYTES);
                    k.sb(p, p, off);
                    k.lbu(w, p, off);
                    k.add(v, v, w);
                }
                // Byte store + sign/zero-extending loads.
                Snippet::ByteLoads => {
                    let off = rng.gen_range(0i32..SLAB_BYTES);
                    k.sb(v, p, off);
                    if rng.gen_range(0u8..2) == 0 {
                        k.lbu(w, p, off);
                    } else {
                        k.lb(w, p, off);
                    }
                    k.alu(AluOp::Xor, v, v, w);
                }
                // Data-dependent forward branch over a side effect.
                Snippet::BranchSkip => {
                    let skip = k.fresh_label("skip");
                    let cond = *rng.choose(&[Cond::Eq, Cond::Ne, Cond::Lt, Cond::Geu]);
                    k.branch(cond, v, rng.gen_range(-5i32..50), &skip);
                    k.alu(*rng.choose(&PRIVATE_OPS), v, v, t);
                    k.place(&skip);
                }
                // Compare two even-bank registers: hazardous branch.
                Snippet::BranchSameBank => {
                    let skip = k.fresh_label("skip");
                    let cond = *rng.choose(&[Cond::Lt, Cond::Geu, Cond::Ne]);
                    k.branch(cond, v, i, &skip);
                    k.alu(*rng.choose(&PRIVATE_OPS), v, v, i);
                    k.place(&skip);
                }
                // v compared against itself: duplicate-source branch
                // (always taken — the guarded op is deliberately dead).
                Snippet::BranchDup => {
                    let skip = k.fresh_label("skip");
                    k.branch(Cond::Eq, v, v, &skip);
                    k.alu(*rng.choose(&PRIVATE_OPS), v, v, 13);
                    k.place(&skip);
                }
                // Subroutine call through the link register.
                Snippet::Call => {
                    k.jal(s2, &subr);
                    called_subr = true;
                }
                // DMA with even/odd pointer pair: no RF hazard.
                Snippet::DmaNone => {
                    let len = *rng.choose(&DMA_LENS);
                    k.mul(s1, t, MRAM_WINDOW);
                    k.add(s1, s1, MRAM_BASE + phase as i32 * 256);
                    k.sdma(p, s1, len);
                    k.ldma(p, s1, len);
                }
                // Both DMA pointers in the odd bank: hazardous DMA.
                Snippet::DmaSameBank => {
                    let len = *rng.choose(&DMA_LENS);
                    k.mul(w, t, MRAM_WINDOW);
                    k.add(w, w, MRAM_BASE + phase as i32 * 256);
                    k.sdma(p, w, len);
                    k.ldma(p, w, len);
                }
                // One register as both WRAM and MRAM pointer: the slab
                // address is valid (and private) in both spaces.
                Snippet::DmaDup => {
                    let len = *rng.choose(&[8i32, 32, 128, 256]);
                    k.sdma(p, p, len);
                    k.ldma(p, p, len);
                }
                // Small probes at data-dependent (value-derived) offsets
                // inside the private MRAM window: the irregular gather
                // pattern of sparse kernels. Deterministic because the
                // window and slab are private and `v` evolves from
                // tid-derived state only.
                Snippet::DmaGather => {
                    let probes = rng.gen_range(2i32..6);
                    k.mul(w, t, MRAM_WINDOW);
                    k.add(w, w, MRAM_BASE);
                    for _ in 0..probes {
                        // 8-aligned offset in [0, MRAM_WINDOW - 8].
                        k.alu(AluOp::And, s1, v, MRAM_WINDOW - 8);
                        k.add(s1, s1, w);
                        k.ldma(p, s1, 8);
                        k.lw(s0, p, 0);
                        k.alu(AluOp::Xor, v, v, s0);
                        k.add(v, v, 0x9e37);
                    }
                }
                // Back-to-back transfers streaming through the private
                // MRAM window: sustained memory-engine pressure.
                Snippet::DmaBurst => {
                    let len = *rng.choose(&[32i32, 64, 128, 256]);
                    let beats = rng.gen_range(2i32..5).min(1024 / len);
                    k.mul(s1, t, MRAM_WINDOW);
                    k.add(s1, s1, MRAM_BASE);
                    for _ in 0..beats {
                        k.sdma(p, s1, len);
                        k.add(s1, s1, len);
                    }
                }
                // Heap block with an address-derived payload: the block
                // address set is schedule-independent (one size fits all),
                // so writing each block's own address keeps the final
                // image deterministic under any allocation order.
                Snippet::HeapBlock => {
                    // Allocate only on the first loop iteration (`i` still
                    // holds `iters`) so repeated trips round the phase loop
                    // do not multiply heap use.
                    let skip = k.fresh_label("heap_skip");
                    k.branch(Cond::Ne, i, iters, &skip);
                    k.movi(s1, heap_block);
                    heap.mem_alloc(&mut k, s0, s1, s2);
                    k.sw(s0, s0, 0);
                    k.place(&skip);
                }
                // Tid-parity divergence: SIMT warps split and reconverge.
                Snippet::Divergent => {
                    let other = k.fresh_label("lane_odd");
                    let merge = k.fresh_label("lane_merge");
                    k.alu(AluOp::And, w, t, 1);
                    k.branch(Cond::Ne, w, 0, &other);
                    k.alu(*rng.choose(&PRIVATE_OPS), v, v, rng.gen_range(1i32..100));
                    k.jump(&merge);
                    k.place(&other);
                    k.alu(*rng.choose(&PRIVATE_OPS), v, v, rng.gen_range(1i32..100));
                    k.place(&merge);
                }
            }
        }
        k.sub(i, i, 1);
        k.branch(Cond::Ne, i, 0, &top);
        // Publish the private value into the slab.
        k.sw(v, p, 4 * (phase as i32 % (SLAB_BYTES / 4)));

        // Mutex-protected commutative shared update.
        let force_sync = matches!(opts.focus, Some((InstrClass::Sync, _)));
        if force_sync || rng.gen_range(0u8..3) > 0 {
            mutex.lock(&mut k);
            k.movi(s0, shared as i32);
            k.lw(s1, s0, 0);
            k.alu(shared_op, s1, s1, v);
            k.sw(s1, s0, 0);
            mutex.unlock(&mut k);
        }

        // Barrier between phases (and before stop) when tasklets share.
        if n > 1 {
            bar.wait(&mut k, [s0, s1, s2]);
        }
    }
    k.stop();
    if called_subr {
        k.place(&subr);
        k.alu(*rng.choose(&PRIVATE_OPS), v, v, 7);
        k.jr(s2);
    }
    let program = k.build().expect("generated program builds");
    let launches = opts.launches.max(1);
    let chain = if launches > 1 { format!(" x{launches}") } else { String::new() };
    FuzzCase {
        program,
        tasklets: n,
        mode: opts.mode,
        launches,
        label: format!("seed {seed:#x} {}/{n}{chain}", opts.mode.as_str()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_isa::{DecodedProgram, Reg};

    fn bank_parities_are_as_documented() -> ([Reg; 4], [Reg; 4]) {
        let mut k = KernelBuilder::new();
        let [t, p, v, w, i, s0, s1, s2] = k.regs(["t", "p", "v", "w", "i", "s0", "s1", "s2"]);
        ([t, v, i, s1], [p, w, s0, s2])
    }

    #[test]
    fn register_allocation_order_fixes_bank_parity() {
        let (even, odd) = bank_parities_are_as_documented();
        for r in even {
            assert_eq!(r.index() % 2, 0, "{r:?} must be even-bank");
        }
        for r in odd {
            assert_eq!(r.index() % 2, 1, "{r:?} must be odd-bank");
        }
    }

    fn base_opts(tasklets: u32) -> GenOptions {
        GenOptions { tasklets, mode: ExecMode::Scalar, focus: None, gather: false, launches: 1 }
    }

    #[test]
    fn generation_is_deterministic() {
        let opts = base_opts(4);
        let a = generate(42, &opts);
        let b = generate(42, &opts);
        assert_eq!(a.program.instrs, b.program.instrs);
        assert_eq!(a.program.wram_init, b.program.wram_init);
        assert_eq!(a.launches, 1);
    }

    #[test]
    fn distinct_seeds_give_distinct_programs() {
        let opts = base_opts(4);
        assert_ne!(generate(1, &opts).program.instrs, generate(2, &opts).program.instrs);
    }

    #[test]
    fn gather_off_means_no_gather_and_no_draw_perturbation() {
        // With the knob off the draw sequence is untouched, so the knob
        // can never change what committed seed entries regenerate to.
        for s in 0..8u64 {
            let a = generate(s, &base_opts(2));
            let b = generate(s, &GenOptions { gather: false, ..base_opts(2) });
            assert_eq!(a.program.instrs, b.program.instrs);
        }
    }

    #[test]
    fn gather_bias_emits_small_data_dependent_dmas() {
        use pim_isa::{Instruction, Operand};
        let opts = GenOptions { gather: true, ..base_opts(2) };
        let hits = (0..10u64)
            .filter(|&s| {
                generate(s, &opts)
                    .program
                    .instrs
                    .iter()
                    .any(|ins| matches!(ins, Instruction::Ldma { len: Operand::Imm(8), .. }))
            })
            .count();
        assert!(hits >= 8, "gather bias produced gather DMAs in only {hits}/10 programs");
    }

    #[test]
    fn requested_launches_land_in_the_case_and_label() {
        let case = generate(5, &GenOptions { launches: 3, ..base_opts(2) });
        assert_eq!(case.launches, 3);
        assert!(case.label.ends_with("x3"), "label {} should record the chain", case.label);
        // Zero is clamped: a case always launches at least once.
        assert_eq!(generate(5, &GenOptions { launches: 0, ..base_opts(2) }).launch_count(), 1);
    }

    #[test]
    fn focus_biases_generation_toward_the_cell() {
        use crate::coverage::{instr_hazard, HazardKind};
        // A cell the unfocused generator hits rarely: duplicate-source DMA.
        let opts =
            GenOptions { focus: Some((InstrClass::Dma, HazardKind::DupSource)), ..base_opts(2) };
        let hits = (0..20u64)
            .filter(|&s| {
                let case = generate(s, &opts);
                let d = DecodedProgram::decode(&case.program.instrs);
                (0..d.len() as u32).any(|pc| {
                    let di = d.get(pc).unwrap();
                    di.class == InstrClass::Dma && instr_hazard(di) == HazardKind::DupSource
                })
            })
            .count();
        assert!(hits >= 15, "focused generation hit the cell only {hits}/20 times");
    }
}
