//! Campaign orchestration: corpus replay + coverage-guided generation on
//! the shared job engine, with deterministic results at any worker count.
//!
//! Determinism is load-bearing (CI compares reports byte-for-byte across
//! `--jobs` values), so the campaign is structured as serial decisions
//! around parallel execution: every random draw — case seeds, contexts,
//! focus cells — happens serially on the master RNG *before* a batch is
//! handed to [`pimulator::jobs::JobRunner::map`] (which restores item
//! order), and coverage/failure folding happens serially after. The
//! report carries no wall-clock times and no worker counts.
//!
//! With [`CampaignOptions::mutate`] set, the seeded scoreboard bug in
//! `pim-dpu` is armed for the campaign's duration and the report records
//! whether the fuzzer caught it — the harness's self-check.

use std::collections::BTreeMap;
use std::path::PathBuf;

use crate::corpus;
use crate::coverage::{ChainDepth, CoverageMap, DmaShape};
use crate::gauntlet::{run_gauntlet, CheckOutcome, Invariant};
use crate::gen::{generate, GenOptions};
use crate::shrink::{shrink, DEFAULT_SHRINK_EVALS};
use crate::{ExecMode, FuzzCase};
use pim_isa::DecodedProgram;
use pim_rng::StdRng;
use pimulator::jobs::JobRunner;
use pimulator::report::{Json, Table};

/// Tasklet counts the campaign samples from.
const TASKLET_CHOICES: [u32; 5] = [1, 2, 4, 8, 16];

/// Cases handed to the job engine per round; focus selection re-reads
/// coverage between rounds, so this is the feedback granularity.
const BATCH: u32 = 32;

/// Most failures shrunk/reported per campaign (the rest are counted).
const MAX_REPORTED_FAILURES: usize = 5;

/// What to run.
#[derive(Debug, Clone)]
pub struct CampaignOptions {
    /// Master seed: campaigns with equal seeds are identical.
    pub seed: u64,
    /// Number of programs to generate.
    pub budget: u32,
    /// Worker threads (`None` = all cores). Never affects results.
    pub jobs: Option<usize>,
    /// Corpus directory to replay before generating (and to write new
    /// repros into).
    pub corpus: Option<PathBuf>,
    /// Arm the seeded scoreboard bug and self-check detection.
    pub mutate: bool,
    /// Gauntlet-evaluation budget per shrink.
    pub shrink_evals: u32,
}

impl CampaignOptions {
    /// Smoke-sized defaults (the PR-CI configuration).
    #[must_use]
    pub fn smoke(seed: u64) -> Self {
        CampaignOptions {
            seed,
            budget: 96,
            jobs: None,
            corpus: None,
            mutate: false,
            shrink_evals: DEFAULT_SHRINK_EVALS,
        }
    }
}

/// One reported (shrunk) failure.
#[derive(Debug, Clone)]
pub struct CampaignFailure {
    /// Provenance of the original failing case.
    pub label: String,
    /// The invariant that broke.
    pub invariant: Invariant,
    /// First observed divergence.
    pub detail: String,
    /// Instruction count before shrinking.
    pub original_instrs: usize,
    /// The minimized case.
    pub shrunk: FuzzCase,
    /// Rendered corpus entry for the minimized case.
    pub repro_text: String,
    /// Content-addressed corpus filename for the repro.
    pub repro_name: String,
}

/// Everything a campaign produced. Rendering is deterministic: equal
/// seeds and budgets give byte-identical reports at any `jobs` value.
#[derive(Debug)]
pub struct CampaignReport {
    /// Master seed.
    pub seed: u64,
    /// Requested generation budget.
    pub budget: u32,
    /// Programs actually generated (mutate campaigns stop early).
    pub generated: u32,
    /// Corpus entries replayed.
    pub replayed: u32,
    /// Cases whose ground truth could not be established.
    pub invalid: u32,
    /// Total conformance failures observed (reported + counted).
    pub failures_seen: u32,
    /// Shrunk, reportable failures (at most [`MAX_REPORTED_FAILURES`]).
    pub failures: Vec<CampaignFailure>,
    /// The coverage map over all passing cases.
    pub coverage: CoverageMap,
    /// Event counters aggregated over all passing traced runs.
    pub counters: BTreeMap<&'static str, u64>,
    /// Whether the scoreboard bug was armed.
    pub mutate: bool,
}

impl CampaignReport {
    /// Whether the armed mutation was caught (always false when
    /// [`CampaignReport::mutate`] is off).
    #[must_use]
    pub fn mutation_detected(&self) -> bool {
        self.mutate && self.failures_seen > 0
    }

    /// The machine-readable report (no timings, no worker counts).
    #[must_use]
    pub fn json(&self) -> Json {
        let failures = self.failures.iter().map(|f| {
            Json::obj([
                ("label", Json::Str(f.label.clone())),
                ("invariant", Json::Str(f.invariant.as_str().into())),
                ("detail", Json::Str(f.detail.clone())),
                ("original_instrs", Json::UInt(f.original_instrs as u64)),
                ("shrunk_instrs", Json::UInt(f.shrunk.program.instrs.len() as u64)),
                ("shrunk_tasklets", Json::UInt(u64::from(f.shrunk.tasklets))),
                ("repro", Json::Str(f.repro_name.clone())),
            ])
        });
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| ((*k).to_string(), Json::UInt(*v)))
            .collect::<Vec<_>>();
        Json::obj([
            ("seed", Json::UInt(self.seed)),
            ("budget", Json::UInt(u64::from(self.budget))),
            ("generated", Json::UInt(u64::from(self.generated))),
            ("replayed", Json::UInt(u64::from(self.replayed))),
            ("invalid", Json::UInt(u64::from(self.invalid))),
            ("failures_seen", Json::UInt(u64::from(self.failures_seen))),
            ("mutate", Json::Bool(self.mutate)),
            ("mutation_detected", Json::Bool(self.mutation_detected())),
            ("failures", Json::arr(failures)),
            ("coverage", self.coverage.json()),
            ("counters", Json::Obj(counters)),
        ])
    }

    /// Human-readable summary: campaign table + coverage matrix.
    #[must_use]
    pub fn table(&self) -> String {
        let mut t = Table::new(&["metric", "value"]);
        let (hit, reachable) = self.coverage.class_hazard_coverage();
        t.row_owned(vec!["seed".into(), format!("{:#x}", self.seed)]);
        t.row_owned(vec!["generated".into(), self.generated.to_string()]);
        t.row_owned(vec!["replayed".into(), self.replayed.to_string()]);
        t.row_owned(vec!["invalid".into(), self.invalid.to_string()]);
        t.row_owned(vec!["failures".into(), self.failures_seen.to_string()]);
        t.row_owned(vec!["class x hazard coverage".into(), format!("{hit}/{reachable} cells")]);
        format!(
            "{}\n{}\n{}",
            t.render(),
            self.coverage.table().render(),
            self.coverage.shape_table().render()
        )
    }
}

/// Disarms the scoreboard bug on every exit path.
struct MutationGuard;

impl Drop for MutationGuard {
    fn drop(&mut self) {
        pim_dpu::mutation::set_scoreboard_bug(false);
    }
}

/// Runs a campaign: corpus replay (unless mutating), then coverage-guided
/// generation in batches, then shrinking of any failures.
///
/// # Errors
///
/// Reports an unreadable or unparseable corpus; conformance failures are
/// *results*, not errors.
#[allow(clippy::too_many_lines)]
pub fn run_campaign(opts: &CampaignOptions) -> Result<CampaignReport, String> {
    let _guard = MutationGuard;
    pim_dpu::mutation::set_scoreboard_bug(opts.mutate);

    let runner = JobRunner::new(opts.jobs);
    let mut coverage = CoverageMap::new();
    let mut counters: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut invalid = 0u32;
    let mut failures_seen = 0u32;
    // (failing case, invariant, detail) awaiting shrinking.
    let mut raw_failures: Vec<(FuzzCase, Invariant, String)> = Vec::new();

    let fold = |case: &FuzzCase,
                outcome: CheckOutcome,
                coverage: &mut CoverageMap,
                counters: &mut BTreeMap<&'static str, u64>,
                invalid: &mut u32,
                failures_seen: &mut u32,
                raw: &mut Vec<(FuzzCase, Invariant, String)>| {
        match outcome {
            CheckOutcome::Pass(info) => {
                let decoded = DecodedProgram::decode(&case.program.instrs);
                coverage.record_program(&decoded, case.tasklets, info.mem);
                coverage.record_shape(info.shape, info.chain);
                for (k, v) in info.metrics.counters() {
                    *counters.entry(k).or_insert(0) += v;
                }
            }
            CheckOutcome::Fail(f) => {
                *failures_seen += 1;
                if raw.len() < MAX_REPORTED_FAILURES {
                    raw.push((case.clone(), f.invariant, f.detail));
                }
            }
            CheckOutcome::Invalid(_) => *invalid += 1,
        }
    };

    // Corpus replay first: known repros must stay fixed. Skipped when
    // mutating — the self-check must prove *generation* finds the bug.
    let mut replayed = 0u32;
    if !opts.mutate {
        if let Some(dir) = &opts.corpus {
            let entries = corpus::load_dir(dir)?;
            let cases: Vec<FuzzCase> = entries
                .iter()
                .map(|(name, e)| corpus::entry_case(e, name))
                .collect::<Result<_, _>>()?;
            let outcomes = runner.map(&cases, |_, case| run_gauntlet(case));
            for (case, outcome) in cases.iter().zip(outcomes) {
                fold(
                    case,
                    outcome,
                    &mut coverage,
                    &mut counters,
                    &mut invalid,
                    &mut failures_seen,
                    &mut raw_failures,
                );
            }
            replayed = entries.len() as u32;
        }
    }

    // Coverage-guided generation, batch-wise.
    let mut master = StdRng::seed_from_u64(opts.seed);
    let mut generated = 0u32;
    while generated < opts.budget {
        if opts.mutate && failures_seen > 0 {
            break; // self-check satisfied; no need to spend the budget
        }
        let batch = BATCH.min(opts.budget - generated);
        let specs: Vec<(u64, GenOptions)> = (0..batch)
            .map(|_| {
                let case_seed = master.next_u64();
                let tasklets = *master.choose(&TASKLET_CHOICES);
                let mode = match master.gen_range(0u8..4) {
                    0 | 1 => ExecMode::Scalar,
                    2 => ExecMode::Ilp,
                    _ => ExecMode::Simt,
                };
                let focus = coverage.pick_focus(&mut master);
                // Bias toward unhit (DMA shape x chain depth) buckets; once
                // all six are hit, keep a trickle of gather/chained cases so
                // those paths stay exercised for the rest of the campaign.
                let (gather, launches) = match coverage.pick_shape_focus(&mut master) {
                    Some((shape, chain)) => (
                        shape == DmaShape::Gather,
                        if chain == ChainDepth::Chained { master.gen_range(2u32..4) } else { 1 },
                    ),
                    None => (
                        master.gen_ratio(1, 4),
                        if master.gen_ratio(1, 4) { master.gen_range(2u32..4) } else { 1 },
                    ),
                };
                (case_seed, GenOptions { tasklets, mode, focus, gather, launches })
            })
            .collect();
        let outcomes = runner.map(&specs, |_, (case_seed, gen_opts)| {
            let case = generate(*case_seed, gen_opts);
            let outcome = run_gauntlet(&case);
            (case, outcome)
        });
        for (case, outcome) in outcomes {
            fold(
                &case,
                outcome,
                &mut coverage,
                &mut counters,
                &mut invalid,
                &mut failures_seen,
                &mut raw_failures,
            );
        }
        generated += batch;
    }

    // Shrink what failed (serial: shrinking is itself gauntlet-driven).
    let failures = raw_failures
        .into_iter()
        .map(|(case, invariant, detail)| {
            let original_instrs = case.program.instrs.len();
            let shrunk = shrink(&case, invariant, opts.shrink_evals);
            let repro_text = corpus::render_repro(&shrunk, invariant.as_str());
            let repro_name = corpus::repro_filename(&repro_text, invariant.as_str());
            CampaignFailure {
                label: case.label,
                invariant,
                detail,
                original_instrs,
                shrunk,
                repro_text,
                repro_name,
            }
        })
        .collect();

    Ok(CampaignReport {
        seed: opts.seed,
        budget: opts.budget,
        generated,
        replayed,
        invalid,
        failures_seen,
        failures,
        coverage,
        counters,
        mutate: opts.mutate,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(seed: u64) -> CampaignOptions {
        CampaignOptions { budget: 8, ..CampaignOptions::smoke(seed) }
    }

    #[test]
    fn campaigns_are_deterministic_across_worker_counts() {
        let serial = run_campaign(&CampaignOptions { jobs: Some(1), ..tiny(7) }).unwrap();
        let parallel = run_campaign(&CampaignOptions { jobs: Some(4), ..tiny(7) }).unwrap();
        assert_eq!(serial.json().render_pretty(), parallel.json().render_pretty());
    }

    #[test]
    fn clean_campaigns_report_no_failures() {
        let r = run_campaign(&tiny(3)).unwrap();
        assert_eq!(r.failures_seen, 0, "{:#?}", r.failures);
        assert_eq!(r.generated, 8);
        assert!(!r.mutation_detected());
        assert!(r.coverage.cases() > 0);
    }

    #[test]
    fn campaigns_exercise_the_shape_chain_buckets() {
        let r =
            run_campaign(&CampaignOptions { budget: 32, ..CampaignOptions::smoke(11) }).unwrap();
        // One shape/chain record per passing case.
        let mut total = 0u64;
        for s in DmaShape::ALL {
            for c in ChainDepth::ALL {
                total += r.coverage.shape_hits(s, c);
            }
        }
        assert_eq!(total, r.coverage.cases());
        let chained: u64 =
            DmaShape::ALL.iter().map(|&s| r.coverage.shape_hits(s, ChainDepth::Chained)).sum();
        assert!(chained > 0, "biasing never produced a passing chained case");
    }

    #[test]
    fn missing_corpus_dir_is_an_error() {
        let opts =
            CampaignOptions { corpus: Some(PathBuf::from("/nonexistent/corpus/dir")), ..tiny(1) };
        assert!(run_campaign(&opts).is_err());
    }
}
