//! The job engine must be bit-reproducible: a figure regenerated on a
//! parallel worker pool has to match a single-worker run byte for byte,
//! in both the human-readable table and the JSON document. Anything less
//! means thread scheduling leaked into the results.

use pim_bench::{experiment_by_name, run_experiment, DriverOptions};
use prim_suite::DatasetSize;

fn reports_for(name: &str, threads: usize) -> (String, String) {
    let e = experiment_by_name(name).expect("experiment is registered");
    let opts = DriverOptions {
        size: Some(DatasetSize::Tiny),
        threads: Some(threads),
        ..DriverOptions::default()
    };
    let report = run_experiment(e, &opts).expect("experiment runs");
    (report.text, report.json.render_pretty())
}

#[test]
fn parallel_runs_are_byte_identical_to_serial() {
    for name in ["fig05_utilization", "fig12_ilp_ablation"] {
        let (serial_text, serial_json) = reports_for(name, 1);
        let (parallel_text, parallel_json) = reports_for(name, 8);
        assert_eq!(serial_text, parallel_text, "{name}: table rows diverged");
        assert_eq!(serial_json, parallel_json, "{name}: JSON diverged");
    }
}
