//! Extension families: sparse BSR and quantized NN-inference kernels. Thin wrapper over the
//! shared `pim_bench` driver; accepts `--size tiny|single|multi`, `--threads N`, `--json`,
//! `--out DIR`.

fn main() -> std::process::ExitCode {
    pim_bench::run_cli("exp_sparse_nn")
}
