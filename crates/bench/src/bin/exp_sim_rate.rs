//! Measures the **§III-D simulation rate** in KIPS (kilo simulated
//! instructions per wall-clock second). The paper reports ≈3 KIPS for its
//! (Python-frontend) PIMulator; this Rust implementation is substantially
//! faster, which EXPERIMENTS.md records as an expected deviation.

use std::time::Instant;

use pim_bench::parse_size_arg;
use pim_dpu::DpuConfig;
use prim_suite::{workload_by_name, DatasetSize, RunConfig};

fn main() {
    let size = parse_size_arg(DatasetSize::SingleDpu);
    println!("== §III-D: simulation rate ({size:?}) ==");
    for name in ["VA", "GEMV", "BS", "RED"] {
        let w = workload_by_name(name).expect("workload");
        let start = Instant::now();
        let run = w
            .run(size, &RunConfig::single(DpuConfig::paper_baseline(16)))
            .expect("simulation");
        let wall = start.elapsed().as_secs_f64();
        let instrs = run.merged().instructions;
        println!(
            "{name:8} {instrs:>12} instructions in {wall:>7.2}s = {:>9.1} KIPS",
            instrs as f64 / wall / 1e3
        );
    }
    println!("(paper's PIMulator: ~3 KIPS)");
}
