//! Regenerates the **§V-C multi-tenancy (transparency) study**: a
//! memory-bound and a compute-bound kernel (the paper's BS+TS pairing)
//! sharing one DPU, plus the scratchpad-capacity failure that makes
//! transparent co-location impossible under the baseline programming model
//! — and the cache-centric escape hatch.

use pimulator::experiments::multi_tenant;
use pimulator::report::speedup;

fn main() {
    println!("== §V-C: multi-tenant co-location ==");
    let r = multi_tenant().expect("simulation");
    println!("memory-bound tenant alone (8 tasklets)  : {:>9} cycles", r.alone_mem_cycles);
    println!("compute-bound tenant alone (8 tasklets) : {:>9} cycles", r.alone_compute_cycles);
    println!("co-located: memory tenant finished at   : {:>9} cycles", r.coloc_mem_finish);
    println!("co-located: compute tenant finished at  : {:>9} cycles", r.coloc_compute_finish);
    println!("co-located makespan                     : {:>9} cycles", r.coloc_makespan);
    println!(
        "consolidation gain vs time-slicing      : {}",
        speedup(r.consolidation_gain)
    );
    println!();
    println!("scratchpad transparency failure (combined 80 KB working set):");
    println!("  -> {}", r.scratchpad_overflow_error);
    println!(
        "same tenants under the cache-centric model: {}",
        if r.cache_mode_colocates { "co-locate fine" } else { "still fail" }
    );
    println!("\n(paper §V-C: scratchpad-centric co-location requires intrusive");
    println!(" program changes and fails on WRAM capacity; on-demand caches");
    println!(" restore transparency.)");
}
