//! Regenerates **Fig 7**: how many tasklets were issuable each cycle
//! (binned) plus the average, at 16 tasklets.

use pim_bench::parse_size_arg;
use pimulator::experiments::fig07_tlp_histogram;
use pimulator::report::{pct, Table};
use prim_suite::DatasetSize;

fn main() {
    let size = parse_size_arg(DatasetSize::SingleDpu);
    println!("== Fig 7: issuable-tasklet histogram @16 tasklets ({size:?}) ==");
    let rows = fig07_tlp_histogram(size, 16).expect("simulation");
    // Bin exactly as the paper plots: 0 / 1 / 2 / 3 / 4 / 5-8 / 9-16.
    let bins: &[(usize, usize, &str)] = &[
        (0, 0, "0"),
        (1, 1, "1"),
        (2, 2, "2"),
        (3, 3, "3"),
        (4, 4, "4"),
        (5, 8, "5-8"),
        (9, 16, "9-16"),
    ];
    let mut header = vec!["workload"];
    header.extend(bins.iter().map(|b| b.2));
    header.push("avg issuable");
    let mut t = Table::new(&header);
    for r in rows {
        let mut cells = vec![r.workload.clone()];
        for (lo, hi, _) in bins {
            let f: f64 = r.fractions.iter().skip(*lo).take(hi - lo + 1).sum();
            cells.push(pct(f));
        }
        cells.push(format!("{:.2}", r.mean));
        t.row_owned(cells);
    }
    print!("{}", t.render());
}
