//! Fig 5: compute & MRAM-read-bandwidth utilization. Thin wrapper over the shared `pim_bench` driver; accepts
//! `--size tiny|single|multi`, `--threads N`, `--json`, `--out DIR`.

fn main() -> std::process::ExitCode {
    pim_bench::run_cli("fig05_utilization")
}
