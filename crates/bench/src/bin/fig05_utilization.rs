//! Regenerates **Fig 5**: PrIM compute utilization and MRAM read-bandwidth
//! utilization at 1/4/16 tasklets on a single DPU.

use pim_bench::{parse_size_arg, PAPER_THREADS};
use pimulator::experiments::fig05_utilization;
use pimulator::report::{pct, Table};
use prim_suite::DatasetSize;

fn main() {
    let size = parse_size_arg(DatasetSize::SingleDpu);
    println!("== Fig 5: compute & MRAM-read-bandwidth utilization ({size:?}) ==");
    let rows = fig05_utilization(size, &PAPER_THREADS).expect("simulation");
    let mut t = Table::new(&["workload", "threads", "compute util", "mem read util"]);
    for r in rows {
        t.row_owned(vec![
            r.workload,
            r.threads.to_string(),
            pct(r.compute_util),
            pct(r.mem_util),
        ]);
    }
    print!("{}", t.render());
}
