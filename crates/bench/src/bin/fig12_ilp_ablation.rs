//! Regenerates **Fig 12**: the additive ILP ablation — data forwarding (D),
//! unified RF (R), 2-way superscalar (S), 700 MHz (F) — with the runtime
//! breakdown at each design point.

use pim_bench::parse_size_arg;
use pimulator::experiments::fig12_ilp_ablation;
use pimulator::report::{pct, speedup, Table};
use prim_suite::DatasetSize;

fn main() {
    let size = parse_size_arg(DatasetSize::SingleDpu);
    println!("== Fig 12: ILP ablation @16 tasklets ({size:?}) ==");
    let rows = fig12_ilp_ablation(size, 16).expect("simulation");
    let mut t = Table::new(&[
        "workload", "design", "speedup", "active", "idle(mem)", "idle(revolver)", "idle(RF)",
    ]);
    let mut max_speedup: f64 = 1.0;
    let mut sum = 0.0;
    let mut n = 0u32;
    for r in &rows {
        if r.label == "Base+DRSF" {
            max_speedup = max_speedup.max(r.speedup);
            sum += r.speedup;
            n += 1;
        }
    }
    for r in rows {
        t.row_owned(vec![
            r.workload,
            r.label,
            speedup(r.speedup),
            pct(r.breakdown.active),
            pct(r.breakdown.idle_memory),
            pct(r.breakdown.idle_revolver),
            pct(r.breakdown.idle_rf),
        ]);
    }
    print!("{}", t.render());
    println!(
        "\nBase+DRSF speedup: avg {} / max {}  (paper: avg 2.7x, max 6.2x)",
        speedup(sum / f64::from(n.max(1))),
        speedup(max_speedup)
    );
}
