//! Fig 9: instruction mix. Thin wrapper over the shared `pim_bench` driver; accepts
//! `--size tiny|single|multi`, `--threads N`, `--json`, `--out DIR`.

fn main() -> std::process::ExitCode {
    pim_bench::run_cli("fig09_instr_mix")
}
