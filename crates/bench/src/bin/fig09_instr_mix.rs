//! Regenerates **Fig 9**: the instruction mix (arith / WRAM load-store /
//! DMA / control / sync / other) at 1/4/16 tasklets.

use pim_bench::{parse_size_arg, PAPER_THREADS};
use pim_isa::InstrClass;
use pimulator::experiments::fig09_instr_mix;
use pimulator::report::{pct, Table};
use prim_suite::DatasetSize;

fn main() {
    let size = parse_size_arg(DatasetSize::SingleDpu);
    println!("== Fig 9: instruction mix ({size:?}) ==");
    let mut header = vec!["workload".to_string(), "threads".to_string()];
    header.extend(InstrClass::ALL.iter().map(|c| c.label().to_string()));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new(&header_refs);
    for r in fig09_instr_mix(size, &PAPER_THREADS).expect("simulation") {
        let mut cells = vec![r.workload.clone(), r.threads.to_string()];
        cells.extend(r.fractions.iter().map(|f| pct(*f)));
        t.row_owned(cells);
    }
    print!("{}", t.render());
}
