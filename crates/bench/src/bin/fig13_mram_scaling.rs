//! Regenerates **Fig 13**: speedup when scaling MRAM-to-WRAM bandwidth
//! ×1–×4 under the baseline DPU and the fully ILP-enhanced DPU.

use pim_bench::parse_size_arg;
use pimulator::experiments::fig13_mram_scaling;
use pimulator::report::{speedup, Table};
use prim_suite::DatasetSize;

fn main() {
    let size = parse_size_arg(DatasetSize::SingleDpu);
    println!("== Fig 13: MRAM bandwidth scaling @16 tasklets ({size:?}) ==");
    let rows =
        fig13_mram_scaling(size, 16, &[1.0, 2.0, 3.0, 4.0]).expect("simulation");
    let mut t = Table::new(&["workload", "design", "x1", "x2", "x3", "x4"]);
    let mut current: Option<(String, String, Vec<String>)> = None;
    for r in rows {
        match &mut current {
            Some((w, c, cells)) if *w == r.workload && *c == r.config => {
                cells.push(speedup(r.speedup));
            }
            _ => {
                if let Some((w, c, cells)) = current.take() {
                    let mut row = vec![w, c];
                    row.extend(cells);
                    t.row_owned(row);
                }
                current = Some((r.workload, r.config, vec![speedup(r.speedup)]));
            }
        }
    }
    if let Some((w, c, cells)) = current.take() {
        let mut row = vec![w, c];
        row.extend(cells);
        t.row_owned(row);
    }
    print!("{}", t.render());
}
