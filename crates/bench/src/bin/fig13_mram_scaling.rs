//! Fig 13: MRAM bandwidth scaling @16 tasklets. Thin wrapper over the shared `pim_bench` driver; accepts
//! `--size tiny|single|multi`, `--threads N`, `--json`, `--out DIR`.

fn main() -> std::process::ExitCode {
    pim_bench::run_cli("fig13_mram_scaling")
}
