//! Regenerates **Fig 10**: strong scaling of PrIM across 1/16/64 DPUs with
//! the end-to-end latency split into input transfer / kernel / output
//! transfer.

use pim_bench::parse_size_arg;
use pimulator::experiments::fig10_strong_scaling;
use pimulator::report::{pct, speedup, Table};
use prim_suite::DatasetSize;

fn main() {
    let size = parse_size_arg(DatasetSize::MultiDpu);
    println!("== Fig 10: multi-DPU strong scaling ({size:?}) ==");
    // The paper sweeps 1/16/64 DPUs on the multi-DPU datasets; the tiny
    // smoke datasets only split 4 ways.
    let dpus: &[u32] = if size == DatasetSize::Tiny { &[1, 2, 4] } else { &[1, 16, 64] };
    let rows = fig10_strong_scaling(size, dpus, 16).expect("simulation");
    let mut t = Table::new(&[
        "workload", "DPUs", "CPU->DPU", "kernel", "DPU->CPU", "total ms", "speedup",
    ]);
    for r in rows {
        let total = r.to_dpu_ns + r.kernel_ns + r.from_dpu_ns;
        t.row_owned(vec![
            r.workload,
            r.n_dpus.to_string(),
            pct(r.to_dpu_ns / total),
            pct(r.kernel_ns / total),
            pct(r.from_dpu_ns / total),
            format!("{:.3}", total / 1e6),
            speedup(r.speedup),
        ]);
    }
    print!("{}", t.render());
}
