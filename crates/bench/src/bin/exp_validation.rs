//! Regenerates the **§III-C validation** in its hardware-free form: the
//! paper cross-validates 710 single-DPU and 387 multi-DPU data points
//! against real UPMEM DIMMs (output data *and* execution time); without
//! hardware, this binary sweeps the same axes — every PrIM workload ×
//! tasklet counts 1/2/4/8/16/24 × two dataset sizes × several DPU counts —
//! and bit-compares every run's output against the reference
//! implementation.

use pim_dpu::DpuConfig;
use prim_suite::{all_workloads, DatasetSize, RunConfig};

fn main() {
    let mut total = 0u32;
    let mut ok = 0u32;
    let mut failures: Vec<String> = Vec::new();
    // Single-DPU matrix.
    for size in [DatasetSize::Tiny, DatasetSize::SingleDpu] {
        for w in all_workloads() {
            for t in [1u32, 2, 4, 8, 16, 24] {
                total += 1;
                match w.run(size, &RunConfig::single(DpuConfig::paper_baseline(t))) {
                    Ok(run) if run.validation.is_ok() => ok += 1,
                    Ok(run) => failures.push(format!(
                        "{} {size:?} @{t}t: {}",
                        w.name(),
                        run.validation.unwrap_err()
                    )),
                    Err(e) => failures.push(format!("{} {size:?} @{t}t: fault {e}", w.name())),
                }
            }
        }
    }
    // Multi-DPU matrix (strong scaling on the single-DPU datasets).
    for d in [4u32, 16] {
        for w in all_workloads() {
            total += 1;
            match w.run(
                DatasetSize::SingleDpu,
                &RunConfig::multi(d, DpuConfig::paper_baseline(16)),
            ) {
                Ok(run) if run.validation.is_ok() => ok += 1,
                Ok(run) => failures.push(format!(
                    "{} x{d}: {}",
                    w.name(),
                    run.validation.unwrap_err()
                )),
                Err(e) => failures.push(format!("{} x{d}: fault {e}", w.name())),
            }
        }
    }
    println!("== §III-C validation sweep (functional, hardware-free) ==");
    println!("{ok}/{total} data points bit-exact against the reference implementations");
    for f in &failures {
        println!("FAILED: {f}");
    }
    println!(
        "(paper: 710 single-DPU points at 98.4% time-correlation; this \
         reproduction substitutes output-exactness, per DESIGN.md §1)"
    );
    assert!(failures.is_empty(), "{} validation failures", failures.len());
}
