//! Fig 15: cache-centric vs scratchpad-centric. Thin wrapper over the shared `pim_bench` driver; accepts
//! `--size tiny|single|multi`, `--threads N`, `--json`, `--out DIR`.

fn main() -> std::process::ExitCode {
    pim_bench::run_cli("fig15_cache_vs_scratchpad")
}
