//! Regenerates **Fig 15**: execution time of the cache-centric DPU
//! normalized to the scratchpad-centric baseline, per workload and tasklet
//! count (< 100% means the on-demand caches win).

use pim_bench::{parse_size_arg, PAPER_THREADS};
use pimulator::experiments::fig15_cache_vs_scratchpad;
use pimulator::report::{pct, Table};
use prim_suite::DatasetSize;

fn main() {
    let size = parse_size_arg(DatasetSize::SingleDpu);
    println!("== Fig 15: cache-centric vs scratchpad-centric ({size:?}) ==");
    let rows = fig15_cache_vs_scratchpad(size, &PAPER_THREADS).expect("simulation");
    let mut t = Table::new(&["workload", "threads", "cache time / scratchpad time"]);
    for r in rows {
        t.row_owned(vec![r.workload, r.threads.to_string(), pct(r.normalized_time)]);
    }
    print!("{}", t.render());
}
