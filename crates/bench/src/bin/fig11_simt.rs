//! Regenerates **Fig 11**: GEMV on the SIMT-extended DPU — Base, 16-wide
//! SIMT, +address coalescing, +4x/+16x MRAM bandwidth.

use pim_bench::parse_size_arg;
use pimulator::experiments::fig11_simt;
use pimulator::report::{speedup, Table};
use prim_suite::DatasetSize;

fn main() {
    let size = parse_size_arg(DatasetSize::SingleDpu);
    println!("== Fig 11: SIMT case study on GEMV ({size:?}) ==");
    let rows = fig11_simt(size, 16).expect("simulation");
    let mut t = Table::new(&["design point", "IPC", "speedup vs Base"]);
    for r in rows {
        t.row_owned(vec![r.label, format!("{:.2}", r.ipc), speedup(r.speedup)]);
    }
    print!("{}", t.render());
}
