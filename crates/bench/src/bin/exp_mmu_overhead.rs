//! Regenerates the **§V-C MMU study**: the slowdown from translating every
//! MRAM access through a 16-entry-TLB MMU (paper: avg 0.8%, max 14.1%).

use pim_bench::parse_size_arg;
use pimulator::experiments::mmu_overhead;
use pimulator::report::{pct, Table};
use prim_suite::DatasetSize;

fn main() {
    let size = parse_size_arg(DatasetSize::SingleDpu);
    println!("== §V-C: MMU address-translation overhead @16 tasklets ({size:?}) ==");
    let rows = mmu_overhead(size, 16).expect("simulation");
    let mut t = Table::new(&["workload", "overhead", "TLB hit rate"]);
    let (mut sum, mut max) = (0.0f64, 0.0f64);
    for r in &rows {
        sum += r.overhead;
        max = max.max(r.overhead);
    }
    let n = rows.len() as f64;
    for r in rows {
        t.row_owned(vec![r.workload, pct(r.overhead), pct(r.tlb_hit_rate)]);
    }
    print!("{}", t.render());
    println!(
        "\naverage overhead {} / max {}  (paper: avg 0.8%, max 14.1%)",
        pct(sum / n),
        pct(max)
    );
}
