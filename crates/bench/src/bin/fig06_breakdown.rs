//! Regenerates **Fig 6**: DPU runtime broken into active vs
//! idle(memory / revolver / RF) cycles at 1/4/16 tasklets.

use pim_bench::{parse_size_arg, PAPER_THREADS};
use pimulator::experiments::fig06_breakdown;
use pimulator::report::{pct, Table};
use prim_suite::DatasetSize;

fn main() {
    let size = parse_size_arg(DatasetSize::SingleDpu);
    println!("== Fig 6: runtime breakdown ({size:?}) ==");
    let rows = fig06_breakdown(size, &PAPER_THREADS).expect("simulation");
    let mut t = Table::new(&["workload", "threads", "active", "idle(mem)", "idle(revolver)", "idle(RF)"]);
    for r in rows {
        t.row_owned(vec![
            r.workload,
            r.threads.to_string(),
            pct(r.active),
            pct(r.idle_memory),
            pct(r.idle_revolver),
            pct(r.idle_rf),
        ]);
    }
    print!("{}", t.render());
}
