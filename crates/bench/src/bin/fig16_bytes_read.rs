//! Regenerates **Fig 16**: DRAM bytes read and execution time for BS and
//! UNI under the scratchpad-centric and cache-centric models.

use pim_bench::{parse_size_arg, PAPER_THREADS};
use pimulator::experiments::fig16_bytes_read;
use pimulator::report::Table;
use prim_suite::DatasetSize;

fn main() {
    let size = parse_size_arg(DatasetSize::SingleDpu);
    println!("== Fig 16: DRAM bytes read, scratchpad vs cache ({size:?}) ==");
    let rows = fig16_bytes_read(size, &PAPER_THREADS).expect("simulation");
    let mut t = Table::new(&[
        "workload",
        "threads",
        "scratchpad bytes",
        "cache bytes",
        "ratio",
        "scratchpad ms",
        "cache ms",
    ]);
    for r in rows {
        t.row_owned(vec![
            r.workload,
            r.threads.to_string(),
            r.scratchpad_bytes.to_string(),
            r.cache_bytes.to_string(),
            format!("{:.2}x", r.scratchpad_bytes as f64 / r.cache_bytes.max(1) as f64),
            format!("{:.3}", r.scratchpad_ns / 1e6),
            format!("{:.3}", r.cache_ns / 1e6),
        ]);
    }
    print!("{}", t.render());
}
