//! Fig 16: DRAM bytes read, scratchpad vs cache. Thin wrapper over the shared `pim_bench` driver; accepts
//! `--size tiny|single|multi`, `--threads N`, `--json`, `--out DIR`.

fn main() -> std::process::ExitCode {
    pim_bench::run_cli("fig16_bytes_read")
}
