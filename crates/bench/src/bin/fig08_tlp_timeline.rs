//! Regenerates **Fig 8**: issuable-thread count over time (10k-cycle
//! windows) for BS, GEMV, and SCAN-SSA at 16 tasklets.

use pim_bench::parse_size_arg;
use pimulator::experiments::fig08_tlp_timeline;
use prim_suite::DatasetSize;

fn main() {
    let size = parse_size_arg(DatasetSize::SingleDpu);
    println!("== Fig 8: TLP over time @16 tasklets ({size:?}) ==");
    let rows = fig08_tlp_timeline(size, 16).expect("simulation");
    for r in rows {
        println!("\n{} (windows of {} cycles):", r.workload, r.window);
        // Print as a coarse ASCII sparkline plus the raw series.
        let marks = "_123456789ABCDEFG";
        let line: String = r
            .series
            .iter()
            .map(|&v| {
                let idx = (v.round() as usize).min(16);
                marks.chars().nth(idx).unwrap_or('?')
            })
            .collect();
        println!("  sparkline(avg issuable/window): {line}");
        let preview: Vec<String> =
            r.series.iter().take(24).map(|v| format!("{v:.1}")).collect();
        println!("  first windows: {}", preview.join(" "));
    }
}
