//! The `pimsim bench` micro-harness: simulator-throughput tracking.
//!
//! Measures how fast the *simulator* runs (wall time), not how fast the
//! simulated hardware is: every workload is seeded and deterministic, so
//! its simulated cycle/instruction counts are fixed, and the interesting
//! output is simulated kilo-cycles per wall-second and instructions per
//! wall-second. The suite is all 16 PrIM kernels, the sparse BSR and
//! quantized NN-inference extension families, plus two synthetics that
//! stress the memory engine (`DMA-HEAVY`) and the scheduler's
//! acquire/release retry path (`BARRIER-HEAVY`).
//!
//! Every workload is measured twice — once under the configured executor
//! (the compiled tier in the paper baseline) and once forced onto the
//! decoded fast loop — so each row carries the compiled-over-fast speedup
//! alongside the absolute rates. Both legs must agree on the simulated
//! instruction/cycle counts (asserted), which makes the bench itself a
//! coarse differential check of the executor tiers.
//!
//! Results are written to `BENCH.json` so the perf trajectory is tracked
//! across PRs; `--baseline OLD.json` prints per-workload speedups against
//! a previous run **and turns them into a regression gate**: any workload
//! whose instrs/sec drops more than 10% against the baseline (ignoring
//! rows too fast to time reliably) fails the run with a nonzero exit.
//! CI validates the schema with `--quick`.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use pim_asm::{DpuProgram, KernelBuilder};
use pim_dpu::{Dpu, DpuConfig, ExecTier, SimError};
use pim_isa::Cond;
use pimulator::experiments as exp;
use pimulator::jobs::SimJob;
use pimulator::pim_host::ChannelMode;
use pimulator::report::Json;
use prim_suite::{extended_workloads, workload_by_name, DatasetSize, RunConfig};

use crate::{parse_size_value, size_label};

/// Schema tag written to (and required in) `BENCH.json`. `/3` added the
/// required `channels` rows (simulated wall time per channel mode).
pub const BENCH_SCHEMA: &str = "pim-bench/3";

/// Rows whose wall time (in either run) falls under this threshold are
/// exempt from the `--baseline` regression gate: sub-50ms measurements on
/// quick-mode datasets are dominated by timer and allocator noise.
pub const MIN_REGRESSION_WALL: f64 = 0.05;

/// Maximum tolerated instrs/sec drop against the baseline (fractional).
pub const MAX_REGRESSION: f64 = 0.10;

/// Tasklet count every benchmark runs at (the paper's full-occupancy
/// configuration).
pub const BENCH_TASKLETS: u32 = 16;

/// One measured workload: fixed simulated work plus the median wall time
/// it took the simulator to produce it.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Workload name (`VA` … `UNI`, `DMA-HEAVY`, `BARRIER-HEAVY`).
    pub name: String,
    /// `"prim"` or `"synthetic"`.
    pub kind: &'static str,
    /// Tasklets per DPU.
    pub tasklets: u32,
    /// Simulated instructions executed (identical across reps).
    pub instructions: u64,
    /// Simulated core cycles (identical across reps).
    pub cycles: u64,
    /// Median-of-k wall seconds under the configured executor (the
    /// compiled tier in the paper baseline).
    pub wall_seconds: f64,
    /// Median-of-k wall seconds with the executor forced onto the decoded
    /// fast loop ([`ExecTier::Fast`]); same simulated work by assertion.
    pub wall_seconds_fast: f64,
}

impl Measurement {
    /// Simulated kilo-cycles advanced per wall-second.
    #[must_use]
    pub fn kilo_cycles_per_sec(&self) -> f64 {
        self.cycles as f64 / self.wall_seconds / 1e3
    }

    /// Simulated instructions executed per wall-second.
    #[must_use]
    pub fn instrs_per_sec(&self) -> f64 {
        self.instructions as f64 / self.wall_seconds
    }

    /// Simulated instructions per wall-second on the fast-loop leg.
    #[must_use]
    pub fn instrs_per_sec_fast(&self) -> f64 {
        self.instructions as f64 / self.wall_seconds_fast
    }

    /// Configured-executor throughput over fast-loop throughput (the
    /// compiled-over-fast speedup in the paper baseline).
    #[must_use]
    pub fn compiled_speedup(&self) -> f64 {
        self.wall_seconds_fast / self.wall_seconds
    }
}

/// Median of `walls` (mean of the middle two for even counts).
fn median(walls: &mut [f64]) -> f64 {
    walls.sort_by(f64::total_cmp);
    let n = walls.len();
    if n % 2 == 1 {
        walls[n / 2]
    } else {
        (walls[n / 2 - 1] + walls[n / 2]) / 2.0
    }
}

/// Measures one PrIM workload end-to-end (dataset staging, simulation,
/// host transfers, and reference validation) `reps` times under `cfg`,
/// plus `reps` more with the executor forced onto the fast loop.
///
/// # Errors
///
/// Propagates the simulation fault, if any.
///
/// # Panics
///
/// Panics if the workload name is unknown or the simulated
/// instruction/cycle counts are not identical across reps and executor
/// tiers (the workloads are seeded and deterministic, and the tiers are
/// byte-identical by construction).
pub fn measure_prim(
    name: &str,
    size: DatasetSize,
    cfg: &DpuConfig,
    reps: usize,
) -> Result<Measurement, SimError> {
    let job = SimJob::single(name, size, cfg.clone());
    let fast_job = SimJob::single(name, size, cfg.clone().with_exec_tier(ExecTier::Fast));
    let mut walls = Vec::with_capacity(reps);
    let mut walls_fast = Vec::with_capacity(reps);
    let mut sim: Option<(u64, u64)> = None;
    let check = |got: (u64, u64), sim: &mut Option<(u64, u64)>| match *sim {
        None => *sim = Some(got),
        Some(prev) => {
            assert_eq!(prev, got, "{name}: simulated work must not vary across reps/tiers");
        }
    };
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let out = job.execute()?;
        walls.push(start.elapsed().as_secs_f64());
        check((out.stats.instructions, out.stats.cycles), &mut sim);
        let start = Instant::now();
        let out = fast_job.execute()?;
        walls_fast.push(start.elapsed().as_secs_f64());
        check((out.stats.instructions, out.stats.cycles), &mut sim);
    }
    let (instructions, cycles) = sim.expect("at least one rep ran");
    Ok(Measurement {
        name: name.to_string(),
        kind: "prim",
        tasklets: cfg.n_tasklets,
        instructions,
        cycles,
        wall_seconds: median(&mut walls),
        wall_seconds_fast: median(&mut walls_fast),
    })
}

/// The two synthetic stress kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Synthetic {
    /// Each tasklet streams `ldma`/`sdma` blocks back and forth: the run is
    /// dominated by memory-engine and DRAM-bank events.
    DmaHeavy,
    /// Every tasklet fights over one atomic bit around a tiny critical
    /// section: the run is dominated by acquire-retry issue slots.
    BarrierHeavy,
}

impl Synthetic {
    /// Report name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Synthetic::DmaHeavy => "DMA-HEAVY",
            Synthetic::BarrierHeavy => "BARRIER-HEAVY",
        }
    }

    /// Per-tasklet loop iterations at the given dataset size.
    fn iterations(self, size: DatasetSize) -> i32 {
        match (self, size) {
            (Synthetic::DmaHeavy, DatasetSize::Tiny) => 4,
            (Synthetic::DmaHeavy, DatasetSize::SingleDpu) => 64,
            (Synthetic::DmaHeavy, DatasetSize::MultiDpu) => 128,
            (Synthetic::BarrierHeavy, DatasetSize::Tiny) => 32,
            (Synthetic::BarrierHeavy, DatasetSize::SingleDpu) => 512,
            (Synthetic::BarrierHeavy, DatasetSize::MultiDpu) => 1024,
        }
    }
}

/// DMA block size of [`Synthetic::DmaHeavy`], in bytes.
const DMA_BLOCK: u32 = 2048;

/// Builds the synthetic kernel for `n_tasklets` tasklets.
fn synthetic_kernel(which: Synthetic, size: DatasetSize, n_tasklets: u32) -> DpuProgram {
    let iters = which.iterations(size);
    let mut k = KernelBuilder::new();
    match which {
        Synthetic::DmaHeavy => {
            let buf = k.alloc_wram(DMA_BLOCK * n_tasklets, 8);
            let [t, w, m, i] = k.regs(["t", "w", "m", "i"]);
            k.tid(t);
            k.mul(w, t, DMA_BLOCK as i32);
            k.add(w, w, buf as i32);
            // Disjoint MRAM stream per tasklet.
            k.mul(m, t, iters * DMA_BLOCK as i32);
            k.movi(i, iters);
            let top = k.label_here("stream");
            k.ldma(w, m, DMA_BLOCK as i32);
            k.sdma(w, m, DMA_BLOCK as i32);
            k.add(m, m, DMA_BLOCK as i32);
            k.sub(i, i, 1);
            k.branch(Cond::Ne, i, 0, &top);
            k.stop();
        }
        Synthetic::BarrierHeavy => {
            let bit = k.alloc_atomic_bit();
            let ctr = k.global_zeroed("counter", 4);
            let [i, a, v] = k.regs(["i", "a", "v"]);
            k.movi(a, ctr as i32);
            k.movi(i, iters);
            let top = k.label_here("contend");
            k.acquire(bit as i32);
            k.lw(v, a, 0);
            k.add(v, v, 1);
            k.sw(v, a, 0);
            k.release(bit as i32);
            k.sub(i, i, 1);
            k.branch(Cond::Ne, i, 0, &top);
            k.stop();
        }
    }
    k.build().expect("synthetic kernel builds")
}

/// Measures a synthetic kernel: program load is outside the timed region,
/// each rep times one [`Dpu::launch`].
///
/// # Errors
///
/// Propagates the simulation fault, if any.
///
/// # Panics
///
/// Panics if the simulated cycle count varies across reps.
pub fn measure_synthetic(
    which: Synthetic,
    size: DatasetSize,
    cfg: &DpuConfig,
    reps: usize,
) -> Result<Measurement, SimError> {
    let program = synthetic_kernel(which, size, cfg.n_tasklets);
    let mut dpu = Dpu::new(cfg.clone());
    dpu.load_program(&program)?;
    let mut fast_dpu = Dpu::new(cfg.clone().with_exec_tier(ExecTier::Fast));
    fast_dpu.load_program(&program)?;
    let mut walls = Vec::with_capacity(reps);
    let mut walls_fast = Vec::with_capacity(reps);
    let mut sim: Option<(u64, u64)> = None;
    let check = |got: (u64, u64), sim: &mut Option<(u64, u64)>| match *sim {
        None => *sim = Some(got),
        Some(prev) => {
            assert_eq!(
                prev,
                got,
                "{}: simulated work must not vary across reps/tiers",
                which.name()
            );
        }
    };
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let stats = dpu.launch()?;
        walls.push(start.elapsed().as_secs_f64());
        check((stats.instructions, stats.cycles), &mut sim);
        let start = Instant::now();
        let stats = fast_dpu.launch()?;
        walls_fast.push(start.elapsed().as_secs_f64());
        check((stats.instructions, stats.cycles), &mut sim);
    }
    let (instructions, cycles) = sim.expect("at least one rep ran");
    Ok(Measurement {
        name: which.name().to_string(),
        kind: "synthetic",
        tasklets: cfg.n_tasklets,
        instructions,
        cycles,
        wall_seconds: median(&mut walls),
        wall_seconds_fast: median(&mut walls_fast),
    })
}

/// The `rank` synthetic: one DPU population launched twice — through the
/// SoA batch executor and through the per-DPU path — on identical staged
/// inputs. Both launches produce byte-identical simulated results
/// (asserted), so the wall-time ratio isolates the executor itself. The
/// headline metric is **DPU-steps/sec**: aggregate simulated DPU cycles
/// advanced per wall-second.
#[derive(Debug, Clone)]
pub struct RankMeasurement {
    /// Population size (DPUs launched together).
    pub dpus: u32,
    /// SoA batch size of the batched launch.
    pub batch_dpus: u32,
    /// Tasklets per DPU.
    pub tasklets: u32,
    /// Simulated instructions per launch, summed across the population.
    pub instructions: u64,
    /// Simulated DPU cycles per launch, summed across the population.
    pub cycles: u64,
    /// Median-of-k wall seconds of the batched launch.
    pub wall_seconds_batched: f64,
    /// Median-of-k wall seconds of the per-DPU launch.
    pub wall_seconds_per_dpu: f64,
}

impl RankMeasurement {
    /// Aggregate simulated DPU cycles advanced per wall-second, batched.
    #[must_use]
    pub fn dpu_steps_per_sec_batched(&self) -> f64 {
        self.cycles as f64 / self.wall_seconds_batched
    }

    /// Aggregate simulated DPU cycles advanced per wall-second, per-DPU.
    #[must_use]
    pub fn dpu_steps_per_sec_per_dpu(&self) -> f64 {
        self.cycles as f64 / self.wall_seconds_per_dpu
    }

    /// Batched throughput over per-DPU throughput.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.wall_seconds_per_dpu / self.wall_seconds_batched
    }
}

/// Population size of the `rank` synthetic at each dataset size.
fn rank_population_size(size: DatasetSize) -> u32 {
    match size {
        DatasetSize::Tiny => 128,
        DatasetSize::SingleDpu => 512,
        DatasetSize::MultiDpu => 1024,
    }
}

/// Measures the `rank` synthetic: stages the population once per path
/// (outside the timed region), then times `reps` whole-population launches
/// through each executor and reports the medians.
///
/// # Errors
///
/// Propagates the simulation fault, if any.
///
/// # Panics
///
/// Panics if the two executors (or two reps) disagree on the simulated
/// instruction/cycle totals — they are byte-identical by construction.
pub fn measure_rank(size: DatasetSize, reps: usize) -> Result<RankMeasurement, SimError> {
    let dpus = rank_population_size(size);
    let batch_dpus = exp::DEFAULT_RANK_BATCH;
    let mut batched = exp::rank_population(0, dpus, batch_dpus)?;
    let mut per_dpu = exp::rank_population(0, dpus, 0)?;
    let mut walls_batched = Vec::with_capacity(reps);
    let mut walls_per_dpu = Vec::with_capacity(reps);
    let mut sim: Option<(u64, u64)> = None;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let rb = batched.launch_all()?;
        walls_batched.push(start.elapsed().as_secs_f64());
        let start = Instant::now();
        let rp = per_dpu.launch_all()?;
        walls_per_dpu.push(start.elapsed().as_secs_f64());
        let got = (rb.total_instructions(), rb.per_dpu.iter().map(|s| s.cycles).sum::<u64>());
        let got_p = (rp.total_instructions(), rp.per_dpu.iter().map(|s| s.cycles).sum::<u64>());
        assert_eq!(got, got_p, "RANK: batched and per-DPU launches disagree on simulated work");
        match sim {
            None => sim = Some(got),
            Some(prev) => {
                assert_eq!(prev, got, "RANK: simulated work must not vary across reps");
            }
        }
    }
    let (instructions, cycles) = sim.expect("at least one rep ran");
    Ok(RankMeasurement {
        dpus,
        batch_dpus,
        tasklets: exp::rank_config(0).n_tasklets,
        instructions,
        cycles,
        wall_seconds_batched: median(&mut walls_batched),
        wall_seconds_per_dpu: median(&mut walls_per_dpu),
    })
}

/// One channel-mode row: the **simulated** end-to-end wall time of a
/// transfer-bound workload under one channel mode. Unlike the throughput
/// rows, these are properties of the simulated machine, not the
/// simulator — fixed for a given `(workload, shape, mode, size)` — so
/// the bench doubles as a pinned record of the channel model's effect.
#[derive(Debug, Clone)]
pub struct ChannelMeasurement {
    /// Workload name.
    pub workload: String,
    /// Channel-mode label (`blocking` | `broadcast` | `overlapped`).
    pub channel: &'static str,
    /// Tasklets per DPU.
    pub tasklets: u32,
    /// DPUs the run spans.
    pub n_dpus: u32,
    /// Simulated end-to-end wall time.
    pub wall_ns: f64,
    /// Simulated wall of the same shape under the blocking mode.
    pub blocking_wall_ns: f64,
}

impl ChannelMeasurement {
    /// Simulated end-to-end win over the blocking mode (1.0 for the
    /// blocking row itself).
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.blocking_wall_ns / self.wall_ns
    }
}

/// Workloads the channel rows cover: both are transfer-bound, so the
/// mode shows through in the end-to-end wall.
pub const CHANNEL_WORKLOADS: [&str; 2] = ["VA", "SEL"];

/// DPUs the channel rows span (per-rank overlap needs a population).
pub const CHANNEL_DPUS: u32 = 4;

/// Measures [`CHANNEL_WORKLOADS`] under all three channel modes at the
/// bench shape (16 tasklets × [`CHANNEL_DPUS`] DPUs), in mode-major
/// order with blocking first.
///
/// # Errors
///
/// Propagates the simulation fault, if any.
///
/// # Panics
///
/// Panics if a channel workload is missing from the suite.
pub fn channel_rows(size: DatasetSize) -> Result<Vec<ChannelMeasurement>, SimError> {
    let cfg = DpuConfig::paper_baseline(BENCH_TASKLETS);
    let mut out = Vec::new();
    for name in CHANNEL_WORKLOADS {
        let w = workload_by_name(name).expect("channel workload exists");
        let mut blocking_wall = 0.0f64;
        for mode in [ChannelMode::Blocking, ChannelMode::Broadcast, ChannelMode::Overlapped] {
            let rc = RunConfig::multi(CHANNEL_DPUS, cfg.clone()).with_channel(mode);
            let run = w.run(size, &rc)?;
            let wall = run.timeline.wall_ns();
            if mode == ChannelMode::Blocking {
                blocking_wall = wall;
            }
            out.push(ChannelMeasurement {
                workload: name.to_string(),
                channel: mode.label(),
                tasklets: BENCH_TASKLETS,
                n_dpus: CHANNEL_DPUS,
                wall_ns: wall,
                blocking_wall_ns: blocking_wall,
            });
        }
    }
    Ok(out)
}

/// Options of `pimsim bench`.
#[derive(Debug, Clone)]
pub struct BenchOptions {
    /// Dataset size (default single; `--quick` forces tiny).
    pub size: DatasetSize,
    /// Wall-time repetitions per workload (median is reported).
    pub reps: usize,
    /// Where the JSON document is written.
    pub out: PathBuf,
    /// Print the JSON document instead of the table.
    pub json_stdout: bool,
    /// A previous `BENCH.json` to compare instrs/sec against.
    pub baseline: Option<PathBuf>,
}

impl Default for BenchOptions {
    fn default() -> Self {
        BenchOptions {
            size: DatasetSize::SingleDpu,
            reps: 3,
            out: PathBuf::from("BENCH.json"),
            json_stdout: false,
            baseline: None,
        }
    }
}

impl BenchOptions {
    /// Parses the `pimsim bench` flag set.
    ///
    /// # Errors
    ///
    /// Returns a usage message on an unknown flag or malformed value.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut o = BenchOptions::default();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--quick" => {
                    o.size = DatasetSize::Tiny;
                    o.reps = 1;
                }
                "--size" => {
                    let v = it.next().ok_or("--size needs a value (tiny|single|multi)")?;
                    o.size = parse_size_value(v)?;
                }
                "--reps" => {
                    let v = it.next().ok_or("--reps needs a number")?;
                    let n: usize =
                        v.parse().map_err(|_| format!("--reps: `{v}` is not a number"))?;
                    if n == 0 {
                        return Err("--reps must be at least 1".to_string());
                    }
                    o.reps = n;
                }
                "--out" => o.out = PathBuf::from(it.next().ok_or("--out needs a file path")?),
                "--json" => o.json_stdout = true,
                "--baseline" => {
                    o.baseline = Some(PathBuf::from(it.next().ok_or("--baseline needs a file")?));
                }
                other => {
                    return Err(format!(
                        "unknown flag `{other}` (expected \
                         --quick/--size/--reps/--out/--json/--baseline)"
                    ))
                }
            }
        }
        Ok(o)
    }
}

/// Runs the full suite (16 dense PrIM kernels + 4 extension kernels + 2
/// synthetics) and returns the measurements in suite order.
///
/// # Errors
///
/// Propagates the first simulation fault.
pub fn run_suite(size: DatasetSize, reps: usize) -> Result<Vec<Measurement>, SimError> {
    let cfg = DpuConfig::paper_baseline(BENCH_TASKLETS);
    let mut out = Vec::new();
    for w in extended_workloads() {
        out.push(measure_prim(w.name(), size, &cfg, reps)?);
    }
    for s in [Synthetic::DmaHeavy, Synthetic::BarrierHeavy] {
        out.push(measure_synthetic(s, size, &cfg, reps)?);
    }
    Ok(out)
}

/// Renders the `BENCH.json` document.
#[must_use]
pub fn bench_json(
    size: DatasetSize,
    reps: usize,
    rows: &[Measurement],
    channels: &[ChannelMeasurement],
    rank: &RankMeasurement,
) -> Json {
    Json::obj([
        ("schema", Json::from(BENCH_SCHEMA)),
        ("size", Json::from(size_label(size))),
        ("reps", Json::UInt(reps as u64)),
        (
            "workloads",
            Json::Arr(
                rows.iter()
                    .map(|m| {
                        Json::obj([
                            ("name", Json::from(m.name.as_str())),
                            ("kind", Json::from(m.kind)),
                            ("tasklets", Json::from(m.tasklets)),
                            ("instructions", Json::UInt(m.instructions)),
                            ("cycles", Json::UInt(m.cycles)),
                            ("wall_seconds", Json::from(m.wall_seconds)),
                            ("wall_seconds_fast", Json::from(m.wall_seconds_fast)),
                            ("kilo_cycles_per_sec", Json::from(m.kilo_cycles_per_sec())),
                            ("instrs_per_sec", Json::from(m.instrs_per_sec())),
                            ("instrs_per_sec_fast", Json::from(m.instrs_per_sec_fast())),
                            ("compiled_speedup", Json::from(m.compiled_speedup())),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "channels",
            Json::Arr(
                channels
                    .iter()
                    .map(|c| {
                        Json::obj([
                            ("workload", Json::from(c.workload.as_str())),
                            ("channel", Json::from(c.channel)),
                            ("tasklets", Json::from(c.tasklets)),
                            ("n_dpus", Json::from(c.n_dpus)),
                            ("wall_ns", Json::from(c.wall_ns)),
                            ("speedup_vs_blocking", Json::from(c.speedup())),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "rank",
            Json::obj([
                ("dpus", Json::from(rank.dpus)),
                ("batch_dpus", Json::from(rank.batch_dpus)),
                ("tasklets", Json::from(rank.tasklets)),
                ("instructions", Json::UInt(rank.instructions)),
                ("cycles", Json::UInt(rank.cycles)),
                ("wall_seconds_batched", Json::from(rank.wall_seconds_batched)),
                ("wall_seconds_per_dpu", Json::from(rank.wall_seconds_per_dpu)),
                ("dpu_steps_per_sec_batched", Json::from(rank.dpu_steps_per_sec_batched())),
                ("dpu_steps_per_sec_per_dpu", Json::from(rank.dpu_steps_per_sec_per_dpu())),
                ("speedup", Json::from(rank.speedup())),
            ]),
        ),
    ])
}

/// Validates a parsed `BENCH.json` document against the schema `pimsim
/// bench` writes (used by the CI smoke step and by `--baseline` loading).
///
/// # Errors
///
/// Returns a description of the first violation.
pub fn validate_bench_json(doc: &Json) -> Result<(), String> {
    let Json::Obj(top) = doc else {
        return Err("top level must be an object".to_string());
    };
    let field = |name: &str| -> Result<&Json, String> {
        top.iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing top-level field `{name}`"))
    };
    match field("schema")? {
        Json::Str(s) if s == BENCH_SCHEMA => {}
        other => return Err(format!("schema must be \"{BENCH_SCHEMA}\", got {}", other.render())),
    }
    if !matches!(field("size")?, Json::Str(_)) {
        return Err("`size` must be a string".to_string());
    }
    if !matches!(field("reps")?, Json::UInt(r) if *r >= 1) {
        return Err("`reps` must be a positive integer".to_string());
    }
    let Json::Arr(rows) = field("workloads")? else {
        return Err("`workloads` must be an array".to_string());
    };
    if rows.is_empty() {
        return Err("`workloads` must not be empty".to_string());
    }
    for (i, row) in rows.iter().enumerate() {
        let Json::Obj(pairs) = row else {
            return Err(format!("workloads[{i}] must be an object"));
        };
        let get = |name: &str| pairs.iter().find(|(k, _)| k == name).map(|(_, v)| v);
        let Some(Json::Str(name)) = get("name") else {
            return Err(format!("workloads[{i}] needs a string `name`"));
        };
        for key in ["instructions", "cycles"] {
            match get(key) {
                Some(Json::UInt(v)) if *v > 0 => {}
                _ => return Err(format!("{name}: `{key}` must be a positive integer")),
            }
        }
        for key in [
            "wall_seconds",
            "wall_seconds_fast",
            "kilo_cycles_per_sec",
            "instrs_per_sec",
            "instrs_per_sec_fast",
            "compiled_speedup",
        ] {
            match get(key) {
                Some(Json::Num(v)) if v.is_finite() && *v > 0.0 => {}
                _ => return Err(format!("{name}: `{key}` must be a positive number")),
            }
        }
    }
    // The extension families are part of the measured suite: documents
    // written before they landed fail validation so CI catches a stale
    // `BENCH.json` (or a bench binary that silently dropped them).
    for required in ["SpMV-BSR", "ATTN"] {
        let present = rows.iter().any(|row| {
            matches!(row, Json::Obj(pairs)
                if pairs.iter().any(|(k, v)| k == "name" && matches!(v, Json::Str(s) if s == required)))
        });
        if !present {
            return Err(format!("`workloads` is missing the required `{required}` row"));
        }
    }
    // The channel rows are required and must cover every mode: a bench
    // binary that silently dropped the channel-model sweep (or a document
    // written before it landed) fails validation in the CI smoke step.
    let Json::Arr(channels) = field("channels")? else {
        return Err("`channels` must be an array".to_string());
    };
    if channels.is_empty() {
        return Err("`channels` must not be empty".to_string());
    }
    for (i, row) in channels.iter().enumerate() {
        let Json::Obj(pairs) = row else {
            return Err(format!("channels[{i}] must be an object"));
        };
        let get = |name: &str| pairs.iter().find(|(k, _)| k == name).map(|(_, v)| v);
        for key in ["workload", "channel"] {
            if !matches!(get(key), Some(Json::Str(_))) {
                return Err(format!("channels[{i}] needs a string `{key}`"));
            }
        }
        for key in ["wall_ns", "speedup_vs_blocking"] {
            match get(key) {
                Some(Json::Num(v)) if v.is_finite() && *v > 0.0 => {}
                _ => return Err(format!("channels[{i}]: `{key}` must be a positive number")),
            }
        }
    }
    for mode in ["blocking", "broadcast", "overlapped"] {
        let present = channels.iter().any(|row| {
            matches!(row, Json::Obj(pairs)
                if pairs.iter().any(|(k, v)| k == "channel" && matches!(v, Json::Str(s) if s == mode)))
        });
        if !present {
            return Err(format!("`channels` is missing `{mode}` rows"));
        }
    }
    // The `rank` entry (SoA batch executor throughput) is required: the CI
    // bench smoke step fails on documents written without it.
    let Json::Obj(rank) = field("rank")? else {
        return Err("`rank` must be an object".to_string());
    };
    let get = |name: &str| rank.iter().find(|(k, _)| k == name).map(|(_, v)| v);
    for key in ["dpus", "batch_dpus", "instructions", "cycles"] {
        match get(key) {
            Some(Json::UInt(v)) if *v > 0 => {}
            _ => return Err(format!("rank: `{key}` must be a positive integer")),
        }
    }
    for key in [
        "wall_seconds_batched",
        "wall_seconds_per_dpu",
        "dpu_steps_per_sec_batched",
        "dpu_steps_per_sec_per_dpu",
        "speedup",
    ] {
        match get(key) {
            Some(Json::Num(v)) if v.is_finite() && *v > 0.0 => {}
            _ => return Err(format!("rank: `{key}` must be a positive number")),
        }
    }
    Ok(())
}

/// Extracts `name → (instrs_per_sec, wall_seconds)` from a validated
/// `BENCH.json`.
fn instr_rates(doc: &Json) -> Vec<(String, f64, f64)> {
    let mut out = Vec::new();
    if let Json::Obj(top) = doc {
        if let Some((_, Json::Arr(rows))) = top.iter().find(|(k, _)| k == "workloads") {
            for row in rows {
                if let Json::Obj(pairs) = row {
                    let get = |name: &str| pairs.iter().find(|(k, _)| k == name).map(|(_, v)| v);
                    if let (Some(Json::Str(name)), Some(Json::Num(ips)), Some(Json::Num(wall))) =
                        (get("name"), get("instrs_per_sec"), get("wall_seconds"))
                    {
                        out.push((name.clone(), *ips, *wall));
                    }
                }
            }
        }
    }
    out
}

/// The `--baseline` regression gate: every workload present in both runs
/// whose instrs/sec dropped more than [`MAX_REGRESSION`] against the
/// baseline, as human-readable violation lines. Rows measured under
/// [`MIN_REGRESSION_WALL`] seconds in either run are exempt — their wall
/// time is timer noise, not executor throughput.
#[must_use]
pub fn regression_failures(rows: &[Measurement], baseline: &Json) -> Vec<String> {
    let mut out = Vec::new();
    for (name, base_ips, base_wall) in instr_rates(baseline) {
        let Some(m) = rows.iter().find(|m| m.name == name) else {
            continue;
        };
        if m.wall_seconds < MIN_REGRESSION_WALL || base_wall < MIN_REGRESSION_WALL {
            continue;
        }
        let ips = m.instrs_per_sec();
        if ips < base_ips * (1.0 - MAX_REGRESSION) {
            out.push(format!(
                "{name}: {ips:.0} instrs/s is {:.1}% below the baseline's {base_ips:.0}",
                (1.0 - ips / base_ips) * 100.0
            ));
        }
    }
    out
}

/// Renders the human-readable table, with baseline speedups when given.
#[must_use]
pub fn bench_table(
    size: DatasetSize,
    reps: usize,
    rows: &[Measurement],
    channels: &[ChannelMeasurement],
    rank: &RankMeasurement,
    baseline: Option<&Json>,
) -> String {
    use std::fmt::Write as _;
    let base_rates = baseline.map(instr_rates);
    let mut text = format!("== pimsim bench ({} size, median of {reps}) ==\n", size_label(size));
    for m in rows {
        let _ = write!(
            text,
            "{:14} {:>12} instrs {:>12} cycles in {:>8.3}s = {:>10.1} Kcyc/s, {:>11.0} instrs/s \
             ({:.2}x vs fast)",
            m.name,
            m.instructions,
            m.cycles,
            m.wall_seconds,
            m.kilo_cycles_per_sec(),
            m.instrs_per_sec(),
            m.compiled_speedup()
        );
        if let Some(rates) = &base_rates {
            if let Some((_, old, _)) = rates.iter().find(|(n, _, _)| *n == m.name) {
                let _ = write!(text, "  ({:.2}x vs baseline)", m.instrs_per_sec() / old);
            }
        }
        text.push('\n');
    }
    for c in channels {
        let _ = writeln!(
            text,
            "CHANNEL {:6} {:>10} @ {} tasklets x {} DPUs: simulated {:>10.3} ms ({:.2}x vs \
             blocking)",
            c.workload,
            c.channel,
            c.tasklets,
            c.n_dpus,
            c.wall_ns / 1e6,
            c.speedup()
        );
    }
    let _ = writeln!(
        text,
        "RANK           {} DPUs (batch {}): batched {:>8.2} M DPU-steps/s vs per-DPU {:>8.2} M \
         ({:.2}x)",
        rank.dpus,
        rank.batch_dpus,
        rank.dpu_steps_per_sec_batched() / 1e6,
        rank.dpu_steps_per_sec_per_dpu() / 1e6,
        rank.speedup()
    );
    text
}

/// `pimsim bench`: runs the suite, prints the table (or JSON), writes and
/// re-validates the `BENCH.json` document.
#[must_use]
pub fn run_bench_with_args(args: &[String]) -> ExitCode {
    let opts = match BenchOptions::parse(args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            eprintln!(
                "usage: pimsim bench [--quick] [--size tiny|single|multi] [--reps K] [--out \
                 FILE] [--json] [--baseline FILE]"
            );
            return ExitCode::from(2);
        }
    };
    let baseline = match &opts.baseline {
        None => None,
        Some(path) => match std::fs::read_to_string(path).map_err(|e| e.to_string()).and_then(|s| {
            let doc = Json::parse(&s)?;
            validate_bench_json(&doc)?;
            Ok(doc)
        }) {
            Ok(doc) => Some(doc),
            Err(e) => {
                eprintln!("pimsim bench: bad baseline {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        },
    };
    let rows = match run_suite(opts.size, opts.reps) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("pimsim bench: simulation fault: {e}");
            return ExitCode::FAILURE;
        }
    };
    let channels = match channel_rows(opts.size) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("pimsim bench: channel sweep fault: {e}");
            return ExitCode::FAILURE;
        }
    };
    let rank = match measure_rank(opts.size, opts.reps) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("pimsim bench: rank synthetic fault: {e}");
            return ExitCode::FAILURE;
        }
    };
    let doc = bench_json(opts.size, opts.reps, &rows, &channels, &rank);
    let pretty = doc.render_pretty();
    {
        use std::io::Write as _;
        let table = bench_table(opts.size, opts.reps, &rows, &channels, &rank, baseline.as_ref());
        let out = if opts.json_stdout { &pretty } else { &table };
        let _ = std::io::stdout().write_all(out.as_bytes());
    }
    if let Err(e) = crate::write_with_parents(&opts.out, &pretty) {
        eprintln!("pimsim bench: could not write {}: {e}", opts.out.display());
        return ExitCode::FAILURE;
    }
    // Round-trip the file through the schema validator so CI catches a
    // malformed document at write time, not at first consumption.
    let check = std::fs::read_to_string(&opts.out)
        .map_err(|e| e.to_string())
        .and_then(|s| Json::parse(&s))
        .and_then(|d| validate_bench_json(&d));
    match check {
        Ok(()) => eprintln!("wrote {} (schema {BENCH_SCHEMA} OK)", opts.out.display()),
        Err(e) => {
            eprintln!("pimsim bench: {} failed schema validation: {e}", opts.out.display());
            return ExitCode::FAILURE;
        }
    }
    if let Some(base) = &baseline {
        let failures = regression_failures(&rows, base);
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("pimsim bench: REGRESSION {f}");
            }
            eprintln!(
                "pimsim bench: {} workload(s) regressed more than {:.0}% vs the baseline",
                failures.len(),
                MAX_REGRESSION * 100.0
            );
            return ExitCode::FAILURE;
        }
        eprintln!(
            "baseline check OK (no workload regressed more than {:.0}%)",
            MAX_REGRESSION * 100.0
        );
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_parse_quick_and_flags() {
        let args: Vec<String> =
            ["--quick", "--out", "x.json", "--reps", "5"].iter().map(|s| s.to_string()).collect();
        let o = BenchOptions::parse(&args).unwrap();
        assert_eq!(o.size, DatasetSize::Tiny);
        assert_eq!(o.reps, 5, "--reps after --quick overrides the quick rep count");
        assert_eq!(o.out, PathBuf::from("x.json"));
        assert!(BenchOptions::parse(&["--reps".to_string(), "0".to_string()]).is_err());
        assert!(BenchOptions::parse(&["--what".to_string()]).is_err());
    }

    #[test]
    fn median_of_even_and_odd() {
        assert!((median(&mut [3.0, 1.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!((median(&mut [4.0, 1.0, 2.0, 3.0]) - 2.5).abs() < 1e-12);
    }

    fn example_rank() -> RankMeasurement {
        RankMeasurement {
            dpus: 128,
            batch_dpus: 64,
            tasklets: 8,
            instructions: 100_000,
            cycles: 200_000,
            wall_seconds_batched: 0.1,
            wall_seconds_per_dpu: 0.3,
        }
    }

    fn example_rows() -> Vec<Measurement> {
        ["VA", "SpMV-BSR", "ATTN"]
            .iter()
            .map(|name| Measurement {
                name: name.to_string(),
                kind: "prim",
                tasklets: 16,
                instructions: 1000,
                cycles: 2000,
                wall_seconds: 0.5,
                wall_seconds_fast: 0.75,
            })
            .collect()
    }

    fn example_channels() -> Vec<ChannelMeasurement> {
        ["blocking", "broadcast", "overlapped"]
            .iter()
            .map(|mode| ChannelMeasurement {
                workload: "VA".to_string(),
                channel: mode,
                tasklets: 16,
                n_dpus: 4,
                wall_ns: if *mode == "blocking" { 3000.0 } else { 2000.0 },
                blocking_wall_ns: 3000.0,
            })
            .collect()
    }

    #[test]
    fn regression_gate_flags_slowdowns_and_skips_noise() {
        let rows = example_rows();
        let baseline =
            bench_json(DatasetSize::Tiny, 1, &rows, &example_channels(), &example_rank());
        // Identical run: nothing regresses.
        assert!(regression_failures(&rows, &baseline).is_empty());
        // 2x slower on one workload: flagged by name.
        let mut slow = example_rows();
        slow[0].wall_seconds = 1.0;
        let failures = regression_failures(&slow, &baseline);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("VA"), "failure names the workload: {}", failures[0]);
        // Same slowdown under the noise floor: exempt.
        let mut noisy = example_rows();
        for m in &mut noisy {
            m.wall_seconds = MIN_REGRESSION_WALL / 10.0;
        }
        let noisy_base =
            bench_json(DatasetSize::Tiny, 1, &noisy, &example_channels(), &example_rank());
        let mut noisy_slow = noisy.clone();
        noisy_slow[0].wall_seconds *= 2.0;
        assert!(regression_failures(&noisy_slow, &noisy_base).is_empty());
    }

    #[test]
    fn bench_json_round_trips_and_validates() {
        let doc =
            bench_json(DatasetSize::Tiny, 1, &example_rows(), &example_channels(), &example_rank());
        validate_bench_json(&doc).unwrap();
        let reparsed = Json::parse(&doc.render_pretty()).unwrap();
        validate_bench_json(&reparsed).unwrap();
    }

    #[test]
    fn validator_requires_the_extension_rows() {
        let dense_only: Vec<Measurement> =
            example_rows().into_iter().filter(|m| m.name == "VA").collect();
        let doc =
            bench_json(DatasetSize::Tiny, 1, &dense_only, &example_channels(), &example_rank());
        let err = validate_bench_json(&doc).unwrap_err();
        assert!(err.contains("SpMV-BSR"), "error names the missing row: {err}");
    }

    #[test]
    fn validator_rejects_bad_documents() {
        assert!(validate_bench_json(&Json::Arr(vec![])).is_err());
        let no_rows = Json::obj([
            ("schema", Json::from(BENCH_SCHEMA)),
            ("size", Json::from("tiny")),
            ("reps", Json::UInt(1)),
            ("workloads", Json::Arr(vec![])),
        ]);
        assert!(validate_bench_json(&no_rows).is_err());
        let bad_schema = Json::obj([
            ("schema", Json::from("nope")),
            ("size", Json::from("tiny")),
            ("reps", Json::UInt(1)),
            ("workloads", Json::Arr(vec![Json::obj([("name", Json::from("VA"))])])),
        ]);
        assert!(validate_bench_json(&bad_schema).is_err());
    }

    #[test]
    fn validator_requires_the_rank_entry() {
        let Json::Obj(pairs) =
            bench_json(DatasetSize::Tiny, 1, &example_rows(), &example_channels(), &example_rank())
        else {
            panic!("bench_json renders an object");
        };
        let without_rank = Json::Obj(pairs.into_iter().filter(|(k, _)| k != "rank").collect());
        let err = validate_bench_json(&without_rank).unwrap_err();
        assert!(err.contains("rank"), "error names the missing entry: {err}");
    }

    #[test]
    fn rank_synthetic_measures_identical_simulated_work() {
        let m = measure_rank(DatasetSize::Tiny, 1).unwrap();
        assert_eq!(m.dpus, 128);
        assert!(m.instructions > 0 && m.cycles > 0);
        assert!(m.wall_seconds_batched > 0.0 && m.wall_seconds_per_dpu > 0.0);
    }

    #[test]
    fn synthetics_are_deterministic_and_measurable() {
        let cfg = DpuConfig::paper_baseline(4);
        for s in [Synthetic::DmaHeavy, Synthetic::BarrierHeavy] {
            let m = measure_synthetic(s, DatasetSize::Tiny, &cfg, 2).unwrap();
            assert!(m.instructions > 0 && m.cycles > 0, "{} ran", s.name());
            assert!(m.wall_seconds > 0.0);
        }
    }
}
