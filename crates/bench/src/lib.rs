//! # pim-bench
//!
//! The figure/table regeneration harness: one binary per figure of the
//! paper's evaluation (`fig05_utilization` … `fig16_bytes_read`,
//! `exp_mmu_overhead`, `exp_sim_rate`), plus criterion micro-benchmarks.
//!
//! Every binary accepts `--size tiny|single|multi` (default `single`, the
//! paper's single-DPU Table II datasets) so the full regeneration can be
//! smoke-tested quickly with `--size tiny`.

use prim_suite::DatasetSize;

/// Parses the common `--size` argument from `std::env::args`.
///
/// # Panics
///
/// Panics with a usage message on an unknown size.
#[must_use]
pub fn parse_size_arg(default: DatasetSize) -> DatasetSize {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--size" {
            let v = args.next().unwrap_or_default();
            return match v.as_str() {
                "tiny" => DatasetSize::Tiny,
                "single" => DatasetSize::SingleDpu,
                "multi" => DatasetSize::MultiDpu,
                other => panic!("unknown --size `{other}` (expected tiny|single|multi)"),
            };
        }
    }
    default
}

/// The thread counts the paper sweeps (shown as 1/4/16 in the figures).
pub const PAPER_THREADS: [u32; 3] = [1, 4, 16];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_size_passes_through() {
        assert_eq!(parse_size_arg(DatasetSize::Tiny), DatasetSize::Tiny);
    }
}
