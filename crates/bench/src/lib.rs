//! # pim-bench
//!
//! The figure/table regeneration harness. All experiments share one
//! driver: a registry entry per figure (`fig05_utilization` …
//! `exp_validation`), common flag parsing (`--size tiny|single|multi`,
//! `--threads N`, `--json`, `--out DIR`), execution through the parallel
//! [`JobRunner`], and dual output — the human-readable table on stdout
//! plus machine-readable `results/<name>.json`.
//!
//! The per-figure binaries (`cargo run --release -p pim-bench --bin
//! fig05_utilization`) and the `pimsim exp <name>` subcommand are both
//! thin wrappers over [`run_with_args`].

pub mod perf;
pub mod tune;

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use pim_dpu::{DpuConfig, SimError};
use pim_isa::InstrClass;
use pimulator::experiments as exp;
use pimulator::jobs::JobRunner;
use pimulator::pim_trace::MetricsSink;
use pimulator::report::{pct, speedup, Json, Table};
use pimulator::trace::{chrome_trace, JobTrace};
use prim_suite::DatasetSize;

/// Parses the common `--size` argument from `std::env::args`.
///
/// # Panics
///
/// Panics with a usage message on an unknown size.
#[must_use]
pub fn parse_size_arg(default: DatasetSize) -> DatasetSize {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--size" {
            return parse_size(it.next().map_or("", String::as_str));
        }
    }
    default
}

fn parse_size(v: &str) -> DatasetSize {
    parse_size_value(v).unwrap_or_else(|msg| panic!("{msg}"))
}

fn parse_size_value(v: &str) -> Result<DatasetSize, String> {
    match v {
        "tiny" => Ok(DatasetSize::Tiny),
        "single" => Ok(DatasetSize::SingleDpu),
        "multi" => Ok(DatasetSize::MultiDpu),
        other => Err(format!("unknown --size `{other}` (expected tiny|single|multi)")),
    }
}

fn size_label(size: DatasetSize) -> &'static str {
    match size {
        DatasetSize::Tiny => "tiny",
        DatasetSize::SingleDpu => "single",
        DatasetSize::MultiDpu => "multi",
    }
}

/// The thread counts the paper sweeps (shown as 1/4/16 in the figures).
pub const PAPER_THREADS: [u32; 3] = [1, 4, 16];

/// Everything an experiment needs at run time.
#[derive(Debug)]
pub struct ExpContext {
    /// The worker pool all simulations go through.
    pub rt: JobRunner,
    /// Dataset size to run at.
    pub size: DatasetSize,
    /// Tuned-config table from `--tuned FILE`, when given. Experiments
    /// that sweep execution shapes (e.g. `exp_transfer_study`) take
    /// their per-workload `(tasklets, n_dpus)` from it instead of the
    /// built-in defaults.
    pub tuned: Option<tune::TunedTable>,
}

/// What an experiment produces: the full human-readable text (header line
/// included, exactly what the binary prints) and the JSON document written
/// to `results/<name>.json`.
#[derive(Debug, Clone)]
pub struct ExpReport {
    /// Human-readable output.
    pub text: String,
    /// Machine-readable output.
    pub json: Json,
}

/// A registry entry: one figure or study of the paper's evaluation.
pub struct Experiment {
    /// Stable name — the binary name, the `pimsim exp` argument, and the
    /// JSON file stem.
    pub name: &'static str,
    /// One-line description shown by `pimsim exp --list`.
    pub title: &'static str,
    /// Dataset size used when `--size` is not given.
    pub default_size: DatasetSize,
    /// Runs the experiment.
    pub run: fn(&ExpContext) -> Result<ExpReport, SimError>,
}

/// All experiments, in paper order.
#[must_use]
pub fn experiments() -> &'static [Experiment] {
    const REGISTRY: &[Experiment] = &[
        Experiment {
            name: "fig05_utilization",
            title: "Fig 5: compute & MRAM-read-bandwidth utilization",
            default_size: DatasetSize::SingleDpu,
            run: run_fig05,
        },
        Experiment {
            name: "fig06_breakdown",
            title: "Fig 6: runtime breakdown",
            default_size: DatasetSize::SingleDpu,
            run: run_fig06,
        },
        Experiment {
            name: "fig07_tlp_histogram",
            title: "Fig 7: issuable-tasklet histogram @16 tasklets",
            default_size: DatasetSize::SingleDpu,
            run: run_fig07,
        },
        Experiment {
            name: "fig08_tlp_timeline",
            title: "Fig 8: TLP over time @16 tasklets",
            default_size: DatasetSize::SingleDpu,
            run: run_fig08,
        },
        Experiment {
            name: "fig09_instr_mix",
            title: "Fig 9: instruction mix",
            default_size: DatasetSize::SingleDpu,
            run: run_fig09,
        },
        Experiment {
            name: "fig10_strong_scaling",
            title: "Fig 10: multi-DPU strong scaling",
            default_size: DatasetSize::MultiDpu,
            run: run_fig10,
        },
        Experiment {
            name: "fig11_simt",
            title: "Fig 11: SIMT case study on GEMV",
            default_size: DatasetSize::SingleDpu,
            run: run_fig11,
        },
        Experiment {
            name: "fig12_ilp_ablation",
            title: "Fig 12: ILP ablation @16 tasklets",
            default_size: DatasetSize::SingleDpu,
            run: run_fig12,
        },
        Experiment {
            name: "fig13_mram_scaling",
            title: "Fig 13: MRAM bandwidth scaling @16 tasklets",
            default_size: DatasetSize::SingleDpu,
            run: run_fig13,
        },
        Experiment {
            name: "fig15_cache_vs_scratchpad",
            title: "Fig 15: cache-centric vs scratchpad-centric",
            default_size: DatasetSize::SingleDpu,
            run: run_fig15,
        },
        Experiment {
            name: "fig16_bytes_read",
            title: "Fig 16: DRAM bytes read, scratchpad vs cache",
            default_size: DatasetSize::SingleDpu,
            run: run_fig16,
        },
        Experiment {
            name: "exp_mmu_overhead",
            title: "\u{a7}V-C: MMU address-translation overhead @16 tasklets",
            default_size: DatasetSize::SingleDpu,
            run: run_mmu,
        },
        Experiment {
            name: "exp_multi_tenant",
            title: "\u{a7}V-C: multi-tenant co-location",
            default_size: DatasetSize::SingleDpu,
            run: run_multi_tenant,
        },
        Experiment {
            name: "exp_serving",
            title: "Serving: saturation sweep (throughput plateau, p99 knee)",
            default_size: DatasetSize::SingleDpu,
            run: run_serving,
        },
        Experiment {
            name: "exp_serving_faults",
            title: "Serving: fault campaigns (retry, degradation, conservation)",
            default_size: DatasetSize::SingleDpu,
            run: run_serving_faults,
        },
        Experiment {
            name: "exp_rank_scale",
            title: "Rank scale: batched SoA execution of whole-rank populations",
            default_size: DatasetSize::MultiDpu,
            run: run_rank_scale,
        },
        Experiment {
            name: "exp_sparse_nn",
            title: "Extension: sparse BSR & quantized NN-inference families",
            default_size: DatasetSize::Tiny,
            run: run_sparse_nn,
        },
        Experiment {
            name: "exp_transfer_study",
            title: "Channel study: blocking vs broadcast vs overlapped host transfers",
            default_size: DatasetSize::Tiny,
            run: run_transfer_study,
        },
        Experiment {
            name: "exp_sim_rate",
            title: "\u{a7}III-D: simulation rate",
            default_size: DatasetSize::SingleDpu,
            run: run_sim_rate,
        },
        Experiment {
            name: "exp_validation",
            title: "\u{a7}III-C validation sweep (functional, hardware-free)",
            default_size: DatasetSize::SingleDpu,
            run: run_validation,
        },
    ];
    REGISTRY
}

/// Looks up an experiment by its stable name.
#[must_use]
pub fn experiment_by_name(name: &str) -> Option<&'static Experiment> {
    experiments().iter().find(|e| e.name == name)
}

// ---------------------------------------------------------------------
// The driver
// ---------------------------------------------------------------------

/// Parsed common flags.
#[derive(Debug, Clone, Default)]
pub struct DriverOptions {
    /// `--size tiny|single|multi` (experiment default when absent).
    pub size: Option<DatasetSize>,
    /// `--threads N` worker cap (`available_parallelism` when absent).
    pub threads: Option<usize>,
    /// `--json`: print the JSON document to stdout instead of the table.
    pub json_stdout: bool,
    /// `--out DIR`: where `<name>.json` is written (default `results`).
    pub out_dir: PathBuf,
    /// `--trace FILE`: run with event tracing and write a Chrome
    /// trace-event document there (parent directories are created).
    pub trace: Option<PathBuf>,
    /// `--tuned FILE`: tuned-config table from `pimsim tune`, loaded
    /// (and schema-checked) at parse time so a stale or malformed table
    /// fails before any simulation runs.
    pub tuned: Option<tune::TunedTable>,
}

impl DriverOptions {
    /// Parses the common flag set.
    ///
    /// # Errors
    ///
    /// Returns a usage message on an unknown flag or malformed value.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut opts =
            DriverOptions { out_dir: PathBuf::from("results"), ..DriverOptions::default() };
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--size" => {
                    let v = it.next().ok_or("--size needs a value (tiny|single|multi)")?;
                    opts.size = Some(parse_size_value(v)?);
                }
                "--threads" => {
                    let v = it.next().ok_or("--threads needs a number")?;
                    let n: usize =
                        v.parse().map_err(|_| format!("--threads: `{v}` is not a number"))?;
                    if n == 0 {
                        return Err("--threads must be at least 1".to_string());
                    }
                    opts.threads = Some(n);
                }
                "--json" => opts.json_stdout = true,
                "--out" => {
                    opts.out_dir = PathBuf::from(it.next().ok_or("--out needs a directory")?);
                }
                "--trace" => {
                    opts.trace = Some(PathBuf::from(it.next().ok_or("--trace needs a file path")?));
                }
                "--tuned" => {
                    let p =
                        PathBuf::from(it.next().ok_or("--tuned needs a tuned-table file path")?);
                    opts.tuned = Some(tune::TunedTable::load(&p)?);
                }
                other => {
                    return Err(format!(
                        "unknown flag `{other}` (expected \
                         --size/--threads/--json/--out/--trace/--tuned)"
                    ))
                }
            }
        }
        Ok(opts)
    }
}

/// Per-DPU event-ring capacity used by `--trace` and `pimsim trace`: deep
/// enough to keep the whole steady state of the tiny/single sweeps while
/// bounding memory on the long ones (the ring keeps the most recent
/// events; drops are counted and reported).
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

/// Runs one experiment under the given options and returns its report.
/// This is the pure core of the driver — no printing, no filesystem.
///
/// # Errors
///
/// Propagates the experiment's simulation fault.
pub fn run_experiment(e: &Experiment, opts: &DriverOptions) -> Result<ExpReport, SimError> {
    run_experiment_with_traces(e, opts).map(|(report, _)| report)
}

/// Like [`run_experiment`], but when `opts.trace` is set the whole sweep
/// runs with event tracing enabled and every job's labelled trace is
/// returned alongside the report (empty otherwise).
///
/// # Errors
///
/// Propagates the experiment's simulation fault.
pub fn run_experiment_with_traces(
    e: &Experiment,
    opts: &DriverOptions,
) -> Result<(ExpReport, Vec<JobTrace>), SimError> {
    let mut rt = JobRunner::new(opts.threads);
    if opts.trace.is_some() {
        rt = rt.collecting_traces(DEFAULT_TRACE_CAPACITY);
    }
    let ctx =
        ExpContext { rt, size: opts.size.unwrap_or(e.default_size), tuned: opts.tuned.clone() };
    let report = (e.run)(&ctx)?;
    Ok((report, ctx.rt.collected_traces()))
}

/// Writes `contents` to `path`, creating any missing parent directories
/// first (so `--out results/nested/dir` and `--trace a/b/trace.json` work
/// on a fresh checkout).
fn write_with_parents(path: &Path, contents: &str) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, contents)
}

/// The shared binary entry point: parses `args`, runs experiment `name`,
/// prints the table (or the JSON document under `--json`), and writes
/// `<out>/<name>.json`.
#[must_use]
pub fn run_with_args(name: &str, args: &[String]) -> ExitCode {
    let Some(e) = experiment_by_name(name) else {
        eprintln!("unknown experiment `{name}`; available:");
        for e in experiments() {
            eprintln!("  {:26} {}", e.name, e.title);
        }
        return ExitCode::FAILURE;
    };
    let opts = match DriverOptions::parse(args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            eprintln!(
                "usage: {name} [--size tiny|single|multi] [--threads N] [--json] [--out DIR] \
                 [--trace FILE] [--tuned FILE]"
            );
            return ExitCode::FAILURE;
        }
    };
    let (mut report, traces) = match run_experiment_with_traces(e, &opts) {
        Ok(r) => r,
        Err(err) => {
            eprintln!("{name}: simulation fault: {err}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(trace_path) = &opts.trace {
        let doc = chrome_trace(&traces);
        if let Err(err) = write_with_parents(trace_path, &doc.render_pretty()) {
            eprintln!("{name}: could not write {}: {err}", trace_path.display());
            return ExitCode::FAILURE;
        }
        // Record where the trace went in the machine-readable results.
        if let Json::Obj(pairs) = &mut report.json {
            pairs.push(("trace".to_string(), Json::from(trace_path.display().to_string())));
        }
        if !opts.json_stdout {
            eprintln!("wrote {}", trace_path.display());
        }
    }
    let pretty = report.json.render_pretty();
    {
        // Tolerate a closed pipe (`pimsim exp ... | head`): losing stdout
        // mid-table is the downstream reader's choice, not a fault.
        use std::io::Write;
        let out = if opts.json_stdout { &pretty } else { &report.text };
        let _ = std::io::stdout().write_all(out.as_bytes());
    }
    let path = opts.out_dir.join(format!("{name}.json"));
    if let Err(err) = write_with_parents(&path, &pretty) {
        eprintln!("{name}: could not write {}: {err}", path.display());
        return ExitCode::FAILURE;
    }
    if !opts.json_stdout {
        eprintln!("wrote {}", path.display());
    }
    ExitCode::SUCCESS
}

/// Parses the `pimsim trace` flag set: the common `--size`/`--threads`
/// plus `--out FILE` naming the Chrome trace file.
fn parse_trace_args(args: &[String]) -> Result<(DriverOptions, Option<PathBuf>), String> {
    let mut opts = DriverOptions { out_dir: PathBuf::from("results"), ..DriverOptions::default() };
    let mut out = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--size" => {
                let v = it.next().ok_or("--size needs a value (tiny|single|multi)")?;
                opts.size = Some(parse_size_value(v)?);
            }
            "--threads" => {
                let v = it.next().ok_or("--threads needs a number")?;
                let n: usize =
                    v.parse().map_err(|_| format!("--threads: `{v}` is not a number"))?;
                if n == 0 {
                    return Err("--threads must be at least 1".to_string());
                }
                opts.threads = Some(n);
            }
            "--out" => out = Some(PathBuf::from(it.next().ok_or("--out needs a file path")?)),
            other => {
                return Err(format!("unknown flag `{other}` (expected --size/--threads/--out)"))
            }
        }
    }
    Ok((opts, out))
}

/// The `pimsim trace <exp>` entry point: runs the experiment with event
/// tracing, writes the Chrome trace-event file (default
/// `results/<name>.trace.json`), and prints a metrics summary folded from
/// every retained event.
#[must_use]
pub fn run_trace_with_args(name: &str, args: &[String]) -> ExitCode {
    let Some(e) = experiment_by_name(name) else {
        eprintln!("unknown experiment `{name}`; available:");
        for e in experiments() {
            eprintln!("  {:26} {}", e.name, e.title);
        }
        return ExitCode::FAILURE;
    };
    let (mut opts, out) = match parse_trace_args(args) {
        Ok(v) => v,
        Err(msg) => {
            eprintln!("{msg}");
            eprintln!(
                "usage: pimsim trace {name} [--size tiny|single|multi] [--threads N] [--out FILE]"
            );
            return ExitCode::FAILURE;
        }
    };
    let path = out.unwrap_or_else(|| opts.out_dir.join(format!("{name}.trace.json")));
    opts.trace = Some(path.clone());
    let (_, traces) = match run_experiment_with_traces(e, &opts) {
        Ok(v) => v,
        Err(err) => {
            eprintln!("{name}: simulation fault: {err}");
            return ExitCode::FAILURE;
        }
    };
    let doc = chrome_trace(&traces);
    if let Err(err) = write_with_parents(&path, &doc.render_pretty()) {
        eprintln!("{name}: could not write {}: {err}", path.display());
        return ExitCode::FAILURE;
    }
    let mut text = format!("== trace: {name} ==\n");
    for jt in &traces {
        let _ = writeln!(
            text,
            "{:24} {:>8} events retained, {:>6} dropped",
            jt.label,
            jt.trace.event_count(),
            jt.trace.dropped()
        );
    }
    let mut totals = MetricsSink::new();
    for jt in &traces {
        totals.absorb(&jt.trace.host);
        for d in &jt.trace.per_dpu {
            totals.absorb(&d.events);
        }
    }
    let _ = writeln!(text, "metrics over retained events:");
    for (k, v) in totals.counters() {
        let _ = writeln!(text, "  {k:24} {v}");
    }
    {
        use std::io::Write;
        let _ = std::io::stdout().write_all(text.as_bytes());
    }
    eprintln!("wrote {}", path.display());
    ExitCode::SUCCESS
}

/// Serve-only driver knobs parsed alongside [`DriverOptions`].
#[derive(Debug, Clone, Default)]
struct ServeDriverOptions {
    /// `--checkpoint-every MS`: checkpoint cadence in simulated ms
    /// (0 = disabled); snapshots land at `<out>/serve_<name>.ckpt<k>.json`.
    checkpoint_every_ms: u64,
    /// `--resume FILE`: continue from a checkpoint document instead of
    /// starting at virtual time zero.
    resume: Option<PathBuf>,
    /// `--tuned FILE`: a `pimsim tune` table; its policy and channel mode
    /// for the scenario's dominant workload are applied unless the
    /// matching explicit flag overrides them.
    tuned: Option<PathBuf>,
    /// Whether `--channel` was given explicitly (wins over `--tuned`).
    channel_given: bool,
}

/// Parses the `pimsim serve` flag set: the serving knobs
/// (`--seed/--duration-ms/--load/--policy/--faults`), the
/// checkpoint/restore knobs (`--checkpoint-every/--resume`), plus the
/// common `--threads/--json/--out/--trace`.
fn parse_serve_args(
    args: &[String],
) -> Result<(pim_serve::ServeOptions, ServeDriverOptions, DriverOptions), String> {
    let mut serve = pim_serve::ServeOptions::default();
    let mut drv = ServeDriverOptions::default();
    let mut opts = DriverOptions { out_dir: PathBuf::from("results"), ..DriverOptions::default() };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                let v = it.next().ok_or("--seed needs a number")?;
                serve.seed = v.parse().map_err(|_| format!("--seed: `{v}` is not a number"))?;
            }
            "--duration-ms" => {
                let v = it.next().ok_or("--duration-ms needs a number")?;
                serve.duration_ms =
                    v.parse().map_err(|_| format!("--duration-ms: `{v}` is not a number"))?;
            }
            "--load" => {
                let v = it.next().ok_or("--load needs a number")?;
                let load: f64 = v.parse().map_err(|_| format!("--load: `{v}` is not a number"))?;
                // `is_finite` also rejects NaN; `inf` would otherwise be
                // accepted and collapse the mean arrival gap to zero.
                if !load.is_finite() || load <= 0.0 {
                    return Err("--load must be a positive finite number".to_string());
                }
                serve.load = load;
            }
            "--faults" => {
                let v = it.next().ok_or("--faults needs a spec (k=v,... or `none`)")?;
                if v != "none" {
                    // Parse errors already carry the `--faults:` prefix.
                    serve.faults = Some(pim_serve::FaultSpec::parse(v)?);
                }
            }
            "--checkpoint-every" => {
                let v = it.next().ok_or("--checkpoint-every needs a number of ms")?;
                drv.checkpoint_every_ms =
                    v.parse().map_err(|_| format!("--checkpoint-every: `{v}` is not a number"))?;
                if drv.checkpoint_every_ms == 0 {
                    return Err("--checkpoint-every must be at least 1 ms".to_string());
                }
            }
            "--resume" => {
                drv.resume =
                    Some(PathBuf::from(it.next().ok_or("--resume needs a checkpoint file path")?));
            }
            "--channel" => {
                let v =
                    it.next().ok_or("--channel needs a mode (blocking|broadcast|overlapped)")?;
                serve.channel = pimulator::pim_host::ChannelMode::by_name(v)
                    .map_err(|e| format!("--channel: {e}"))?;
                drv.channel_given = true;
            }
            "--tuned" => {
                drv.tuned =
                    Some(PathBuf::from(it.next().ok_or("--tuned needs a tuned-table file path")?));
            }
            "--policy" => {
                let v = it.next().ok_or("--policy needs a name")?;
                if pim_serve::policy_by_name(v).is_none() {
                    return Err(format!(
                        "--policy: unknown policy `{v}` (expected fifo|size_class|weighted_fair)"
                    ));
                }
                serve.policy = Some(v.clone());
            }
            "--threads" => {
                let v = it.next().ok_or("--threads needs a number")?;
                let n: usize =
                    v.parse().map_err(|_| format!("--threads: `{v}` is not a number"))?;
                if n == 0 {
                    return Err("--threads must be at least 1".to_string());
                }
                serve.threads = Some(n);
            }
            "--json" => opts.json_stdout = true,
            "--out" => {
                opts.out_dir = PathBuf::from(it.next().ok_or("--out needs a directory")?);
            }
            "--trace" => {
                opts.trace = Some(PathBuf::from(it.next().ok_or("--trace needs a file path")?));
                serve.trace_capacity = DEFAULT_TRACE_CAPACITY;
            }
            other => {
                return Err(format!(
                    "unknown flag `{other}` (expected --seed/--duration-ms/--load/--policy/\
                     --faults/--channel/--tuned/--checkpoint-every/--resume/--threads/--json/\
                     --out/--trace)"
                ))
            }
        }
    }
    Ok((serve, drv, opts))
}

/// The `pimsim serve <scenario>` entry point: runs one serving scenario,
/// prints the per-tenant table (or the JSON document under `--json`),
/// and writes `<out>/serve_<scenario>.json`. With `--trace FILE` the
/// composition profiles run with event tracing and a Chrome trace-event
/// document lands there.
#[must_use]
pub fn run_serve_with_args(name: &str, args: &[String]) -> ExitCode {
    let Some(scenario) = pim_serve::scenario_by_name(name) else {
        eprintln!("unknown scenario `{name}`; available:");
        for s in pim_serve::scenarios() {
            eprintln!("  {:26} {}", s.name, s.title);
        }
        return ExitCode::FAILURE;
    };
    let (mut serve_opts, drv, opts) = match parse_serve_args(args) {
        Ok(v) => v,
        Err(msg) => {
            eprintln!("{msg}");
            eprintln!(
                "usage: pimsim serve {name} [--seed N] [--duration-ms M] [--load X] \
                 [--policy P] [--faults SPEC] [--channel MODE] [--tuned FILE] \
                 [--checkpoint-every MS] [--resume FILE] \
                 [--threads N] [--json] [--out DIR] [--trace FILE]"
            );
            return ExitCode::FAILURE;
        }
    };
    if let Some(tuned_path) = &drv.tuned {
        let table = match tune::TunedTable::load(tuned_path) {
            Ok(t) => t,
            Err(err) => {
                eprintln!("serve {name}: {err}");
                return ExitCode::FAILURE;
            }
        };
        match table.entry_for_scenario(scenario) {
            Ok(entry) => {
                // Explicit flags outrank the table.
                if serve_opts.policy.is_none() {
                    serve_opts.policy = Some(entry.policy.clone());
                }
                if !drv.channel_given {
                    serve_opts.channel = entry.channel;
                }
                if !opts.json_stdout {
                    eprintln!(
                        "tuned: {} -> policy={} channel={}",
                        entry.workload,
                        entry.policy,
                        entry.channel.label()
                    );
                }
            }
            Err(err) => {
                eprintln!("serve {name}: {err}");
                return ExitCode::FAILURE;
            }
        }
    }
    // Checkpoints are rendered as they are cut and written once the run
    // finishes, as `<out>/serve_<name>.ckpt<k>.json` in cut order.
    let mut snapshots: Vec<String> = Vec::new();
    let mut sink = |ck: &pim_serve::Checkpoint| snapshots.push(ck.to_json().render_pretty());
    let result = if let Some(ckpt_path) = &drv.resume {
        let text = match std::fs::read_to_string(ckpt_path) {
            Ok(t) => t,
            Err(err) => {
                eprintln!("serve {name}: could not read {}: {err}", ckpt_path.display());
                return ExitCode::FAILURE;
            }
        };
        let ck = match Json::parse(&text)
            .map_err(|e| e.to_string())
            .and_then(|doc| pim_serve::Checkpoint::from_json(&doc))
        {
            Ok(ck) => ck,
            Err(err) => {
                eprintln!("serve {name}: {} is not a checkpoint: {err}", ckpt_path.display());
                return ExitCode::FAILURE;
            }
        };
        if let Err(err) = ck.validate(
            scenario.name,
            pim_serve::resolved_policy_name(scenario, &serve_opts),
            serve_opts.seed,
            serve_opts.load,
            pim_serve::resolved_duration_ns(scenario, &serve_opts),
            &pim_serve::fault_label(&serve_opts),
            pim_serve::channel_label(&serve_opts),
        ) {
            eprintln!("serve {name}: checkpoint does not match this run: {err}");
            return ExitCode::FAILURE;
        }
        pim_serve::resume_scenario(scenario, &serve_opts, &ck, drv.checkpoint_every_ms, &mut sink)
    } else {
        pim_serve::run_scenario_with_checkpoints(
            scenario,
            &serve_opts,
            drv.checkpoint_every_ms,
            &mut sink,
        )
    };
    let out = match result {
        Ok(o) => o,
        Err(err) => {
            eprintln!("serve {name}: simulation fault: {err}");
            return ExitCode::FAILURE;
        }
    };
    for (k, rendered) in snapshots.iter().enumerate() {
        let path = opts.out_dir.join(format!("serve_{name}.ckpt{k}.json"));
        if let Err(err) = write_with_parents(&path, rendered) {
            eprintln!("serve {name}: could not write {}: {err}", path.display());
            return ExitCode::FAILURE;
        }
        if !opts.json_stdout {
            eprintln!("wrote {}", path.display());
        }
    }
    let mut doc = pim_serve::outcome_json(&out);
    if let Some(trace_path) = &opts.trace {
        let trace_doc = chrome_trace(&out.traces);
        if let Err(err) = write_with_parents(trace_path, &trace_doc.render_pretty()) {
            eprintln!("serve {name}: could not write {}: {err}", trace_path.display());
            return ExitCode::FAILURE;
        }
        if let Json::Obj(pairs) = &mut doc {
            pairs.push(("trace".to_string(), Json::from(trace_path.display().to_string())));
        }
        if !opts.json_stdout {
            eprintln!("wrote {}", trace_path.display());
        }
    }
    let pretty = doc.render_pretty();
    {
        use std::io::Write;
        let text = pim_serve::outcome_table(&out);
        let printed = if opts.json_stdout { &pretty } else { &text };
        let _ = std::io::stdout().write_all(printed.as_bytes());
    }
    let path = opts.out_dir.join(format!("serve_{name}.json"));
    if let Err(err) = write_with_parents(&path, &pretty) {
        eprintln!("serve {name}: could not write {}: {err}", path.display());
        return ExitCode::FAILURE;
    }
    if !opts.json_stdout {
        eprintln!("wrote {}", path.display());
    }
    ExitCode::SUCCESS
}

/// Entry point for the per-figure binaries: [`run_with_args`] over
/// `std::env::args`.
#[must_use]
pub fn run_cli(name: &str) -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    run_with_args(name, &args)
}

fn header(title: &str, size: DatasetSize) -> String {
    format!("== {title} ({size:?}) ==\n")
}

fn json_doc(name: &str, size: DatasetSize, rows: Json, extra: Vec<(&str, Json)>) -> Json {
    let mut pairs = vec![
        ("experiment".to_string(), Json::from(name)),
        ("size".to_string(), Json::from(size_label(size))),
        ("rows".to_string(), rows),
    ];
    for (k, v) in extra {
        pairs.push((k.to_string(), v));
    }
    Json::Obj(pairs)
}

// ---------------------------------------------------------------------
// Per-experiment table + JSON formatting
// ---------------------------------------------------------------------

fn run_fig05(ctx: &ExpContext) -> Result<ExpReport, SimError> {
    let rows = exp::fig05_utilization(&ctx.rt, ctx.size, &PAPER_THREADS)?;
    let mut t = Table::new(&["workload", "threads", "compute util", "mem read util"]);
    let mut json_rows = Vec::new();
    for r in rows {
        t.row_owned(vec![
            r.workload.clone(),
            r.threads.to_string(),
            pct(r.compute_util),
            pct(r.mem_util),
        ]);
        json_rows.push(Json::obj([
            ("workload", Json::from(r.workload)),
            ("threads", Json::from(r.threads)),
            ("compute_util", Json::from(r.compute_util)),
            ("mem_read_util", Json::from(r.mem_util)),
        ]));
    }
    Ok(ExpReport {
        text: header("Fig 5: compute & MRAM-read-bandwidth utilization", ctx.size) + &t.render(),
        json: json_doc("fig05_utilization", ctx.size, Json::Arr(json_rows), vec![]),
    })
}

fn run_fig06(ctx: &ExpContext) -> Result<ExpReport, SimError> {
    let rows = exp::fig06_breakdown(&ctx.rt, ctx.size, &PAPER_THREADS)?;
    let mut t =
        Table::new(&["workload", "threads", "active", "idle(mem)", "idle(revolver)", "idle(RF)"]);
    let mut json_rows = Vec::new();
    for r in rows {
        t.row_owned(vec![
            r.workload.clone(),
            r.threads.to_string(),
            pct(r.active),
            pct(r.idle_memory),
            pct(r.idle_revolver),
            pct(r.idle_rf),
        ]);
        json_rows.push(breakdown_json(&r));
    }
    Ok(ExpReport {
        text: header("Fig 6: runtime breakdown", ctx.size) + &t.render(),
        json: json_doc("fig06_breakdown", ctx.size, Json::Arr(json_rows), vec![]),
    })
}

fn breakdown_json(r: &exp::BreakdownRow) -> Json {
    Json::obj([
        ("workload", Json::from(r.workload.clone())),
        ("threads", Json::from(r.threads)),
        ("active", Json::from(r.active)),
        ("idle_memory", Json::from(r.idle_memory)),
        ("idle_revolver", Json::from(r.idle_revolver)),
        ("idle_rf", Json::from(r.idle_rf)),
    ])
}

fn run_fig07(ctx: &ExpContext) -> Result<ExpReport, SimError> {
    let rows = exp::fig07_tlp_histogram(&ctx.rt, ctx.size, 16)?;
    // Bin exactly as the paper plots: 0 / 1 / 2 / 3 / 4 / 5-8 / 9-16.
    let bins: &[(usize, usize, &str)] = &[
        (0, 0, "0"),
        (1, 1, "1"),
        (2, 2, "2"),
        (3, 3, "3"),
        (4, 4, "4"),
        (5, 8, "5-8"),
        (9, 16, "9-16"),
    ];
    let mut hdr = vec!["workload"];
    hdr.extend(bins.iter().map(|b| b.2));
    hdr.push("avg issuable");
    let mut t = Table::new(&hdr);
    let mut json_rows = Vec::new();
    for r in rows {
        let mut cells = vec![r.workload.clone()];
        let mut binned = Vec::new();
        for (lo, hi, label) in bins {
            let f: f64 = r.fractions.iter().skip(*lo).take(hi - lo + 1).sum();
            cells.push(pct(f));
            binned.push(((*label).to_string(), Json::from(f)));
        }
        cells.push(format!("{:.2}", r.mean));
        t.row_owned(cells);
        json_rows.push(Json::obj([
            ("workload", Json::from(r.workload)),
            ("bins", Json::Obj(binned)),
            ("fractions", Json::arr(r.fractions.iter().map(|&f| Json::from(f)))),
            ("mean_issuable", Json::from(r.mean)),
        ]));
    }
    Ok(ExpReport {
        text: header("Fig 7: issuable-tasklet histogram @16 tasklets", ctx.size) + &t.render(),
        json: json_doc("fig07_tlp_histogram", ctx.size, Json::Arr(json_rows), vec![]),
    })
}

fn run_fig08(ctx: &ExpContext) -> Result<ExpReport, SimError> {
    let rows = exp::fig08_tlp_timeline(&ctx.rt, ctx.size, 16)?;
    let mut text = header("Fig 8: TLP over time @16 tasklets", ctx.size);
    let mut json_rows = Vec::new();
    for r in rows {
        let _ = writeln!(text, "\n{} (windows of {} cycles):", r.workload, r.window);
        // Coarse ASCII sparkline plus the first raw windows.
        let marks = "_123456789ABCDEFG";
        let line: String = r
            .series
            .iter()
            .map(|&v| {
                let idx = (v.round() as usize).min(16);
                marks.chars().nth(idx).unwrap_or('?')
            })
            .collect();
        let _ = writeln!(text, "  sparkline(avg issuable/window): {line}");
        let preview: Vec<String> = r.series.iter().take(24).map(|v| format!("{v:.1}")).collect();
        let _ = writeln!(text, "  first windows: {}", preview.join(" "));
        json_rows.push(Json::obj([
            ("workload", Json::from(r.workload)),
            ("window_cycles", Json::from(r.window)),
            ("series", Json::arr(r.series.iter().map(|&v| Json::from(f64::from(v))))),
        ]));
    }
    Ok(ExpReport {
        text,
        json: json_doc("fig08_tlp_timeline", ctx.size, Json::Arr(json_rows), vec![]),
    })
}

fn run_fig09(ctx: &ExpContext) -> Result<ExpReport, SimError> {
    let rows = exp::fig09_instr_mix(&ctx.rt, ctx.size, &PAPER_THREADS)?;
    let mut hdr = vec!["workload".to_string(), "threads".to_string()];
    hdr.extend(InstrClass::ALL.iter().map(|c| c.label().to_string()));
    let hdr_refs: Vec<&str> = hdr.iter().map(String::as_str).collect();
    let mut t = Table::new(&hdr_refs);
    let mut json_rows = Vec::new();
    for r in rows {
        let mut cells = vec![r.workload.clone(), r.threads.to_string()];
        cells.extend(r.fractions.iter().map(|f| pct(*f)));
        t.row_owned(cells);
        let mix: Vec<(String, Json)> = InstrClass::ALL
            .iter()
            .zip(r.fractions)
            .map(|(c, f)| (c.label().to_string(), Json::from(f)))
            .collect();
        json_rows.push(Json::obj([
            ("workload", Json::from(r.workload)),
            ("threads", Json::from(r.threads)),
            ("mix", Json::Obj(mix)),
        ]));
    }
    Ok(ExpReport {
        text: header("Fig 9: instruction mix", ctx.size) + &t.render(),
        json: json_doc("fig09_instr_mix", ctx.size, Json::Arr(json_rows), vec![]),
    })
}

fn run_fig10(ctx: &ExpContext) -> Result<ExpReport, SimError> {
    // The paper sweeps 1/16/64 DPUs on the multi-DPU datasets; the tiny
    // smoke datasets only split 4 ways.
    let dpus: &[u32] = if ctx.size == DatasetSize::Tiny { &[1, 2, 4] } else { &[1, 16, 64] };
    let rows = exp::fig10_strong_scaling(&ctx.rt, ctx.size, dpus, 16)?;
    let mut t =
        Table::new(&["workload", "DPUs", "CPU->DPU", "kernel", "DPU->CPU", "total ms", "speedup"]);
    let mut json_rows = Vec::new();
    for r in rows {
        let total = r.to_dpu_ns + r.kernel_ns + r.from_dpu_ns;
        t.row_owned(vec![
            r.workload.clone(),
            r.n_dpus.to_string(),
            pct(r.to_dpu_ns / total),
            pct(r.kernel_ns / total),
            pct(r.from_dpu_ns / total),
            format!("{:.3}", total / 1e6),
            speedup(r.speedup),
        ]);
        json_rows.push(Json::obj([
            ("workload", Json::from(r.workload)),
            ("n_dpus", Json::from(r.n_dpus)),
            ("to_dpu_ns", Json::from(r.to_dpu_ns)),
            ("kernel_ns", Json::from(r.kernel_ns)),
            ("from_dpu_ns", Json::from(r.from_dpu_ns)),
            ("speedup", Json::from(r.speedup)),
        ]));
    }
    Ok(ExpReport {
        text: header("Fig 10: multi-DPU strong scaling", ctx.size) + &t.render(),
        json: json_doc("fig10_strong_scaling", ctx.size, Json::Arr(json_rows), vec![]),
    })
}

fn run_fig11(ctx: &ExpContext) -> Result<ExpReport, SimError> {
    let rows = exp::fig11_simt(&ctx.rt, ctx.size, 16)?;
    let mut t = Table::new(&["design point", "IPC", "speedup vs Base"]);
    let mut json_rows = Vec::new();
    for r in rows {
        t.row_owned(vec![r.label.clone(), format!("{:.2}", r.ipc), speedup(r.speedup)]);
        json_rows.push(Json::obj([
            ("design", Json::from(r.label)),
            ("ipc", Json::from(r.ipc)),
            ("speedup", Json::from(r.speedup)),
        ]));
    }
    Ok(ExpReport {
        text: header("Fig 11: SIMT case study on GEMV", ctx.size) + &t.render(),
        json: json_doc("fig11_simt", ctx.size, Json::Arr(json_rows), vec![]),
    })
}

fn run_fig12(ctx: &ExpContext) -> Result<ExpReport, SimError> {
    let rows = exp::fig12_ilp_ablation(&ctx.rt, ctx.size, 16)?;
    let mut t = Table::new(&[
        "workload",
        "design",
        "speedup",
        "active",
        "idle(mem)",
        "idle(revolver)",
        "idle(RF)",
    ]);
    let (mut sum, mut max_speedup, mut n) = (0.0f64, 1.0f64, 0u32);
    for r in &rows {
        if r.label == "Base+DRSF" {
            max_speedup = max_speedup.max(r.speedup);
            sum += r.speedup;
            n += 1;
        }
    }
    let mut json_rows = Vec::new();
    for r in rows {
        t.row_owned(vec![
            r.workload.clone(),
            r.label.clone(),
            speedup(r.speedup),
            pct(r.breakdown.active),
            pct(r.breakdown.idle_memory),
            pct(r.breakdown.idle_revolver),
            pct(r.breakdown.idle_rf),
        ]);
        json_rows.push(Json::obj([
            ("workload", Json::from(r.workload)),
            ("design", Json::from(r.label)),
            ("speedup", Json::from(r.speedup)),
            ("breakdown", breakdown_json(&r.breakdown)),
        ]));
    }
    let avg = sum / f64::from(n.max(1));
    let text = header("Fig 12: ILP ablation @16 tasklets", ctx.size)
        + &t.render()
        + &format!(
            "\nBase+DRSF speedup: avg {} / max {}  (paper: avg 2.7x, max 6.2x)\n",
            speedup(avg),
            speedup(max_speedup)
        );
    let summary = Json::obj([
        ("avg_drsf_speedup", Json::from(avg)),
        ("max_drsf_speedup", Json::from(max_speedup)),
    ]);
    Ok(ExpReport {
        text,
        json: json_doc(
            "fig12_ilp_ablation",
            ctx.size,
            Json::Arr(json_rows),
            vec![("summary", summary)],
        ),
    })
}

fn run_fig13(ctx: &ExpContext) -> Result<ExpReport, SimError> {
    let scales = [1.0, 2.0, 3.0, 4.0];
    let rows = exp::fig13_mram_scaling(&ctx.rt, ctx.size, 16, &scales)?;
    let mut t = Table::new(&["workload", "design", "x1", "x2", "x3", "x4"]);
    let mut json_rows = Vec::new();
    // One table row per (workload, design) group of `scales.len()` points.
    for group in rows.chunks(scales.len()) {
        let mut cells = vec![group[0].workload.clone(), group[0].config.clone()];
        cells.extend(group.iter().map(|r| speedup(r.speedup)));
        t.row_owned(cells);
        json_rows.push(Json::obj([
            ("workload", Json::from(group[0].workload.clone())),
            ("design", Json::from(group[0].config.clone())),
            (
                "speedups",
                Json::Obj(
                    group
                        .iter()
                        .map(|r| (format!("x{}", r.scale as u32), Json::from(r.speedup)))
                        .collect(),
                ),
            ),
        ]));
    }
    Ok(ExpReport {
        text: header("Fig 13: MRAM bandwidth scaling @16 tasklets", ctx.size) + &t.render(),
        json: json_doc("fig13_mram_scaling", ctx.size, Json::Arr(json_rows), vec![]),
    })
}

fn run_fig15(ctx: &ExpContext) -> Result<ExpReport, SimError> {
    let rows = exp::fig15_cache_vs_scratchpad(&ctx.rt, ctx.size, &PAPER_THREADS)?;
    let mut t = Table::new(&["workload", "threads", "cache time / scratchpad time"]);
    let mut json_rows = Vec::new();
    for r in rows {
        t.row_owned(vec![r.workload.clone(), r.threads.to_string(), pct(r.normalized_time)]);
        json_rows.push(Json::obj([
            ("workload", Json::from(r.workload)),
            ("threads", Json::from(r.threads)),
            ("cache_over_scratchpad_time", Json::from(r.normalized_time)),
        ]));
    }
    Ok(ExpReport {
        text: header("Fig 15: cache-centric vs scratchpad-centric", ctx.size) + &t.render(),
        json: json_doc("fig15_cache_vs_scratchpad", ctx.size, Json::Arr(json_rows), vec![]),
    })
}

fn run_fig16(ctx: &ExpContext) -> Result<ExpReport, SimError> {
    let rows = exp::fig16_bytes_read(&ctx.rt, ctx.size, &PAPER_THREADS)?;
    let mut t = Table::new(&[
        "workload",
        "threads",
        "scratchpad bytes",
        "cache bytes",
        "ratio",
        "scratchpad ms",
        "cache ms",
    ]);
    let mut json_rows = Vec::new();
    for r in rows {
        t.row_owned(vec![
            r.workload.clone(),
            r.threads.to_string(),
            r.scratchpad_bytes.to_string(),
            r.cache_bytes.to_string(),
            format!("{:.2}x", r.scratchpad_bytes as f64 / r.cache_bytes.max(1) as f64),
            format!("{:.3}", r.scratchpad_ns / 1e6),
            format!("{:.3}", r.cache_ns / 1e6),
        ]);
        json_rows.push(Json::obj([
            ("workload", Json::from(r.workload)),
            ("threads", Json::from(r.threads)),
            ("scratchpad_bytes", Json::from(r.scratchpad_bytes)),
            ("cache_bytes", Json::from(r.cache_bytes)),
            ("scratchpad_ns", Json::from(r.scratchpad_ns)),
            ("cache_ns", Json::from(r.cache_ns)),
        ]));
    }
    Ok(ExpReport {
        text: header("Fig 16: DRAM bytes read, scratchpad vs cache", ctx.size) + &t.render(),
        json: json_doc("fig16_bytes_read", ctx.size, Json::Arr(json_rows), vec![]),
    })
}

fn run_mmu(ctx: &ExpContext) -> Result<ExpReport, SimError> {
    let rows = exp::mmu_overhead(&ctx.rt, ctx.size, 16)?;
    let mut t = Table::new(&["workload", "overhead", "TLB hit rate"]);
    let (mut sum, mut max) = (0.0f64, 0.0f64);
    for r in &rows {
        sum += r.overhead;
        max = max.max(r.overhead);
    }
    let n = rows.len() as f64;
    let mut json_rows = Vec::new();
    for r in rows {
        t.row_owned(vec![r.workload.clone(), pct(r.overhead), pct(r.tlb_hit_rate)]);
        json_rows.push(Json::obj([
            ("workload", Json::from(r.workload)),
            ("overhead", Json::from(r.overhead)),
            ("tlb_hit_rate", Json::from(r.tlb_hit_rate)),
        ]));
    }
    let text = header("\u{a7}V-C: MMU address-translation overhead @16 tasklets", ctx.size)
        + &t.render()
        + &format!(
            "\naverage overhead {} / max {}  (paper: avg 0.8%, max 14.1%)\n",
            pct(sum / n),
            pct(max)
        );
    let summary =
        Json::obj([("avg_overhead", Json::from(sum / n)), ("max_overhead", Json::from(max))]);
    Ok(ExpReport {
        text,
        json: json_doc(
            "exp_mmu_overhead",
            ctx.size,
            Json::Arr(json_rows),
            vec![("summary", summary)],
        ),
    })
}

fn run_multi_tenant(ctx: &ExpContext) -> Result<ExpReport, SimError> {
    let r = exp::multi_tenant()?;
    let mut text = String::from("== \u{a7}V-C: multi-tenant co-location ==\n");
    let _ = writeln!(
        text,
        "memory-bound tenant alone (8 tasklets)  : {:>9} cycles",
        r.alone_mem_cycles
    );
    let _ = writeln!(
        text,
        "compute-bound tenant alone (8 tasklets) : {:>9} cycles",
        r.alone_compute_cycles
    );
    let _ = writeln!(
        text,
        "co-located: memory tenant finished at   : {:>9} cycles",
        r.coloc_mem_finish
    );
    let _ = writeln!(
        text,
        "co-located: compute tenant finished at  : {:>9} cycles",
        r.coloc_compute_finish
    );
    let _ =
        writeln!(text, "co-located makespan                     : {:>9} cycles", r.coloc_makespan);
    let _ = writeln!(
        text,
        "consolidation gain vs time-slicing      : {}",
        speedup(r.consolidation_gain)
    );
    let _ = writeln!(text);
    let _ = writeln!(text, "scratchpad transparency failure (combined 80 KB working set):");
    let _ = writeln!(text, "  -> {}", r.scratchpad_overflow_error);
    let _ = writeln!(
        text,
        "same tenants under the cache-centric model: {}",
        if r.cache_mode_colocates { "co-locate fine" } else { "still fail" }
    );
    let _ = writeln!(text, "\n(paper \u{a7}V-C: scratchpad-centric co-location requires intrusive");
    let _ = writeln!(text, " program changes and fails on WRAM capacity; on-demand caches");
    let _ = writeln!(text, " restore transparency.)");
    let json = json_doc(
        "exp_multi_tenant",
        ctx.size,
        Json::arr([Json::obj([
            ("alone_mem_cycles", Json::from(r.alone_mem_cycles)),
            ("alone_compute_cycles", Json::from(r.alone_compute_cycles)),
            ("coloc_mem_finish", Json::from(r.coloc_mem_finish)),
            ("coloc_compute_finish", Json::from(r.coloc_compute_finish)),
            ("coloc_makespan", Json::from(r.coloc_makespan)),
            ("consolidation_gain", Json::from(r.consolidation_gain)),
            ("scratchpad_overflow_error", Json::from(r.scratchpad_overflow_error)),
            ("cache_mode_colocates", Json::from(r.cache_mode_colocates)),
        ])]),
        vec![],
    );
    Ok(ExpReport { text, json })
}

fn run_serving(ctx: &ExpContext) -> Result<ExpReport, SimError> {
    use pim_serve::{run_scenario, scenario_by_name, ServeOptions};

    // Sweep the load multiplier across the saturation point of the demo
    // scenario: throughput should plateau once the rank saturates while
    // the aggregate p99 knees upward — the classic serving curve, here
    // produced entirely from cycle-level composition profiles.
    let scenario = scenario_by_name("demo").expect("demo scenario exists");
    let duration_ms: u64 = if ctx.size == DatasetSize::Tiny { 2 } else { 20 };
    let loads = [0.25, 0.5, 1.0, 2.0, 4.0];
    let mut t = Table::new(&[
        "load",
        "offered",
        "admitted",
        "rejected",
        "completed",
        "rps",
        "p50_us",
        "p99_us",
    ]);
    let mut json_rows = Vec::new();
    for &load in &loads {
        let opts = ServeOptions {
            duration_ms,
            load,
            threads: Some(ctx.rt.workers()),
            ..ServeOptions::default()
        };
        let out = run_scenario(scenario, &opts)?;
        let (p50, p95, p99) = out.aggregate_latency().total.slo_triple();
        t.row_owned(vec![
            format!("{load}"),
            out.offered().to_string(),
            out.admitted().to_string(),
            out.rejected().to_string(),
            out.completed().to_string(),
            format!("{:.0}", out.throughput_rps()),
            format!("{:.1}", p50 as f64 / 1000.0),
            format!("{:.1}", p99 as f64 / 1000.0),
        ]);
        json_rows.push(Json::obj([
            ("load", Json::from(load)),
            ("offered", Json::UInt(out.offered())),
            ("admitted", Json::UInt(out.admitted())),
            ("rejected", Json::UInt(out.rejected())),
            ("completed", Json::UInt(out.completed())),
            ("throughput_rps", Json::from(out.throughput_rps())),
            ("p50_ns", Json::UInt(p50)),
            ("p95_ns", Json::UInt(p95)),
            ("p99_ns", Json::UInt(p99)),
        ]));
    }
    Ok(ExpReport {
        text: header("Serving: saturation sweep (throughput plateau, p99 knee)", ctx.size)
            + &t.render(),
        json: json_doc(
            "exp_serving",
            ctx.size,
            Json::Arr(json_rows),
            vec![("scenario", Json::from(scenario.name)), ("duration_ms", Json::UInt(duration_ms))],
        ),
    })
}

fn run_serving_faults(ctx: &ExpContext) -> Result<ExpReport, SimError> {
    use pim_serve::{run_scenario, scenario_by_name, FaultSpec, ServeOptions};

    // Sweep fault campaigns over the faulty scenario at fixed load: a
    // clean baseline, a transient-retry regime, a stuck-DPU regime, and
    // a rank-outage regime. Every row must conserve requests (admitted =
    // completed + failed) — the differential suite pins that; here the
    // sweep shows the throughput/p99 cost of each failure mode.
    let scenario = scenario_by_name("faulty").expect("faulty scenario exists");
    let duration_ms: u64 = if ctx.size == DatasetSize::Tiny { 2 } else { 10 };
    let campaigns: [(&str, &str); 4] = [
        ("clean", "seed=9"),
        ("transient", "seed=9,transient=60"),
        ("stuck", "seed=9,stuck=25,timeout_us=2000"),
        ("rank_outage", "seed=9,outages=2,outage_ms=1,rank_dpus=4"),
    ];
    let mut t = Table::new(&[
        "campaign",
        "admitted",
        "completed",
        "failed",
        "retried",
        "degraded",
        "rps",
        "p99_us",
    ]);
    let mut json_rows = Vec::new();
    for (label, spec_text) in campaigns {
        let spec = FaultSpec::parse(spec_text).expect("campaign spec parses");
        let opts = ServeOptions {
            duration_ms,
            threads: Some(ctx.rt.workers()),
            faults: Some(spec),
            ..ServeOptions::default()
        };
        let out = run_scenario(scenario, &opts)?;
        debug_assert_eq!(out.admitted(), out.completed() + out.failed());
        let (_, _, p99) = out.aggregate_latency().total.slo_triple();
        t.row_owned(vec![
            label.to_string(),
            out.admitted().to_string(),
            out.completed().to_string(),
            out.failed().to_string(),
            out.retried().to_string(),
            out.degraded().to_string(),
            format!("{:.0}", out.throughput_rps()),
            format!("{:.1}", p99 as f64 / 1000.0),
        ]);
        json_rows.push(Json::obj([
            ("campaign", Json::from(label)),
            ("faults", Json::from(spec.label())),
            ("offered", Json::UInt(out.offered())),
            ("admitted", Json::UInt(out.admitted())),
            ("completed", Json::UInt(out.completed())),
            ("failed", Json::UInt(out.failed())),
            ("retried", Json::UInt(out.retried())),
            ("degraded", Json::UInt(out.degraded())),
            ("throughput_rps", Json::from(out.throughput_rps())),
            ("p99_ns", Json::UInt(p99)),
        ]));
    }
    Ok(ExpReport {
        text: header("Serving: fault campaigns (retry, degradation, conservation)", ctx.size)
            + &t.render(),
        json: json_doc(
            "exp_serving_faults",
            ctx.size,
            Json::Arr(json_rows),
            vec![("scenario", Json::from(scenario.name)), ("duration_ms", Json::UInt(duration_ms))],
        ),
    })
}

fn run_transfer_study(ctx: &ExpContext) -> Result<ExpReport, SimError> {
    use pimulator::pim_host::ChannelMode;
    use prim_suite::{workload_by_name, RunConfig};

    // The transfer-bound slice of the suite: host payloads dominate (or
    // rival) kernel time, so the channel mode is the knob that moves the
    // end-to-end wall. Each workload runs at one shape — the tuned one
    // when `--tuned` is given, the fixed study default otherwise — under
    // all three channel modes.
    const WORKLOADS: [&str; 6] = ["VA", "SEL", "UNI", "TRNS", "SCAN-SSA", "BS"];
    const MODES: [ChannelMode; 3] =
        [ChannelMode::Blocking, ChannelMode::Broadcast, ChannelMode::Overlapped];

    struct Case {
        workload: &'static str,
        tasklets: u32,
        n_dpus: u32,
        mode: ChannelMode,
    }
    let mut cases = Vec::new();
    for name in WORKLOADS {
        let w = workload_by_name(name).expect("study workload exists");
        let (tasklets, n_dpus) = match ctx.tuned.as_ref().and_then(|t| t.entry(name)) {
            Some(e) => (e.tasklets, e.n_dpus),
            None => (16, if w.supports_multi_dpu() { 4 } else { 1 }),
        };
        for mode in MODES {
            cases.push(Case { workload: name, tasklets, n_dpus, mode });
        }
    }
    let runs = ctx.rt.map(&cases, |_, c| {
        let w = workload_by_name(c.workload).expect("study workload exists");
        let cfg = DpuConfig::paper_baseline(c.tasklets);
        let rc =
            if c.n_dpus == 1 { RunConfig::single(cfg) } else { RunConfig::multi(c.n_dpus, cfg) };
        let run = w.run(ctx.size, &rc.with_channel(c.mode))?;
        Ok(run.timeline)
    });

    let mut t = Table::new(&[
        "workload",
        "tasklets",
        "dpus",
        "channel",
        "to_ms",
        "kernel_ms",
        "from_ms",
        "wall_ms",
        "vs blocking",
    ]);
    let mut json_rows = Vec::new();
    let mut blocking_wall = 0.0f64;
    for (c, tl) in cases.iter().zip(runs) {
        let tl = tl?;
        let wall = tl.wall_ns();
        // The grid emits blocking first per workload, so the baseline is
        // always set before the v2 rows of the same workload render.
        if c.mode == ChannelMode::Blocking {
            blocking_wall = wall;
        }
        t.row_owned(vec![
            c.workload.to_string(),
            c.tasklets.to_string(),
            c.n_dpus.to_string(),
            c.mode.label().to_string(),
            format!("{:.4}", tl.to_dpu_ns / 1e6),
            format!("{:.4}", tl.kernel_ns / 1e6),
            format!("{:.4}", tl.from_dpu_ns / 1e6),
            format!("{:.4}", wall / 1e6),
            format!("{:.2}x", blocking_wall / wall),
        ]);
        json_rows.push(Json::obj([
            ("workload", Json::from(c.workload)),
            ("tasklets", Json::from(c.tasklets)),
            ("n_dpus", Json::from(c.n_dpus)),
            ("channel", Json::from(c.mode.label())),
            ("to_dpu_ns", Json::from(tl.to_dpu_ns)),
            ("kernel_ns", Json::from(tl.kernel_ns)),
            ("from_dpu_ns", Json::from(tl.from_dpu_ns)),
            ("wall_ns", Json::from(wall)),
            ("speedup_vs_blocking", Json::from(blocking_wall / wall)),
        ]));
    }
    Ok(ExpReport {
        text: header("Channel study: blocking vs broadcast vs overlapped host transfers", ctx.size)
            + &t.render(),
        json: json_doc(
            "exp_transfer_study",
            ctx.size,
            Json::Arr(json_rows),
            vec![("tuned", Json::from(ctx.tuned.is_some()))],
        ),
    })
}

fn run_rank_scale(ctx: &ExpContext) -> Result<ExpReport, SimError> {
    let mut text = header("Rank scale: batched SoA execution of whole-rank populations", ctx.size);
    let rows = exp::exp_rank_scale(&ctx.rt, ctx.size)?;
    let mut json_rows = Vec::new();
    for r in &rows {
        let _ = writeln!(
            text,
            "{ranks:>3} rank(s) {dpus:>6} DPUs  {instrs:>12} instructions  {cycles:>14} cycles  kernel {ms:>9.3} ms  checksum {sum:#010x}",
            ranks = r.ranks,
            dpus = r.dpus,
            instrs = r.instructions,
            cycles = r.cycles,
            ms = r.kernel_ns / 1e6,
            sum = r.checksum,
        );
        json_rows.push(Json::obj([
            ("ranks", Json::from(r.ranks)),
            ("dpus", Json::from(r.dpus)),
            ("instructions", Json::from(r.instructions)),
            ("cycles", Json::from(r.cycles)),
            ("kernel_ns", Json::from(r.kernel_ns)),
            ("checksum", Json::from(r.checksum)),
        ]));
    }
    let _ = writeln!(
        text,
        "(population sharded {batch} DPUs/batch; rows are simulated quantities, identical across --threads)",
        batch = exp::DEFAULT_RANK_BATCH,
    );
    Ok(ExpReport {
        text,
        json: json_doc(
            "exp_rank_scale",
            ctx.size,
            Json::Arr(json_rows),
            vec![
                ("dpus_per_rank", Json::from(exp::DPUS_PER_RANK)),
                ("batch_dpus", Json::from(exp::DEFAULT_RANK_BATCH)),
            ],
        ),
    })
}

fn run_sim_rate(ctx: &ExpContext) -> Result<ExpReport, SimError> {
    let mut text = header("\u{a7}III-D: simulation rate", ctx.size);
    let mut json_rows = Vec::new();
    let reps = 3;
    for name in ["VA", "GEMV", "BS", "RED"] {
        // Before/after on the same simulated work: the naive per-cycle
        // reference loop (`DpuConfig::naive_loop`) vs the optimized
        // scheduler. Both are timing-identical (see
        // `tests/loop_differential.rs`), so `instructions` is shared.
        let cfg = DpuConfig::paper_baseline(16);
        let naive = perf::measure_prim(name, ctx.size, &cfg.clone().with_naive_loop(), reps)?;
        let fast = perf::measure_prim(name, ctx.size, &cfg, reps)?;
        assert_eq!(
            (naive.instructions, naive.cycles),
            (fast.instructions, fast.cycles),
            "{name}: naive and optimized loops disagree on simulated work"
        );
        let kips_naive = naive.instrs_per_sec() / 1e3;
        let kips = fast.instrs_per_sec() / 1e3;
        let speedup = kips / kips_naive;
        let _ = writeln!(
            text,
            "{name:8} {instrs:>12} instructions  naive {kips_naive:>9.1} KIPS -> optimized {kips:>9.1} KIPS ({speedup:.2}x)",
            instrs = fast.instructions,
        );
        json_rows.push(Json::obj([
            ("workload", Json::from(name)),
            ("instructions", Json::from(fast.instructions)),
            ("wall_seconds_naive", Json::from(naive.wall_seconds)),
            ("wall_seconds", Json::from(fast.wall_seconds)),
            ("kips_naive", Json::from(kips_naive)),
            ("kips", Json::from(kips)),
            ("speedup", Json::from(speedup)),
        ]));
    }
    let _ = writeln!(text, "(paper's PIMulator: ~3 KIPS; `pimsim bench` runs the full suite)");
    Ok(ExpReport { text, json: json_doc("exp_sim_rate", ctx.size, Json::Arr(json_rows), vec![]) })
}

fn run_sparse_nn(ctx: &ExpContext) -> Result<ExpReport, SimError> {
    use prim_suite::{workload_by_name, RunConfig};

    // The extension families under a tasklet sweep plus one strong-scaled
    // point: sparse BSR exercises the irregular-gather DMA path, the
    // quantized NN kernels exercise chained launches with host staging.
    struct Case {
        workload: &'static str,
        threads: u32,
        n_dpus: u32,
    }
    const FAMILY: &[&str] = &["SpMV-BSR", "SpMM-BSR", "MLP-Q", "ATTN"];
    let mut cases = Vec::new();
    for &w in FAMILY {
        for t in [1u32, 8, 16] {
            cases.push(Case { workload: w, threads: t, n_dpus: 1 });
        }
        cases.push(Case { workload: w, threads: 16, n_dpus: 4 });
    }
    let measured: Vec<Result<(u64, u64, u64, u64), SimError>> = ctx.rt.map(&cases, |_, c| {
        let w = workload_by_name(c.workload).expect("workload exists");
        let cfg = DpuConfig::paper_baseline(c.threads);
        let run_cfg =
            if c.n_dpus == 1 { RunConfig::single(cfg) } else { RunConfig::multi(c.n_dpus, cfg) };
        let run = w.run(ctx.size, &run_cfg)?;
        // Like the figure sweeps, a validation miss is a bug, not data.
        run.validation.as_ref().expect("extension outputs are bit-exact against the reference");
        let instructions: u64 = run.per_dpu.iter().map(|s| s.instructions).sum();
        let cycles: u64 = run.per_dpu.iter().map(|s| s.cycles).max().unwrap_or(0);
        let dma: u64 = run.per_dpu.iter().map(|s| s.dma_requests).sum();
        let bytes: u64 = run.per_dpu.iter().map(|s| s.dram.bytes_read).sum();
        Ok((instructions, cycles, dma, bytes))
    });
    let mut t = Table::new(&[
        "workload",
        "family",
        "threads",
        "dpus",
        "instructions",
        "cycles",
        "dma reqs",
        "rd B/req",
    ]);
    let mut json_rows = Vec::new();
    for (c, m) in cases.iter().zip(measured) {
        let (instructions, cycles, dma, bytes) = m?;
        let family = workload_by_name(c.workload).expect("workload exists").family();
        t.row_owned(vec![
            c.workload.to_string(),
            family.label().to_string(),
            c.threads.to_string(),
            c.n_dpus.to_string(),
            instructions.to_string(),
            cycles.to_string(),
            dma.to_string(),
            format!("{:.1}", bytes as f64 / dma.max(1) as f64),
        ]);
        json_rows.push(Json::obj([
            ("workload", Json::from(c.workload)),
            ("family", Json::from(family.label())),
            ("threads", Json::from(c.threads)),
            ("dpus", Json::from(c.n_dpus)),
            ("instructions", Json::UInt(instructions)),
            ("cycles", Json::UInt(cycles)),
            ("dma_requests", Json::UInt(dma)),
            ("mram_bytes_read", Json::UInt(bytes)),
            ("validated", Json::Bool(true)),
        ]));
    }
    Ok(ExpReport {
        text: header("Extension: sparse BSR & quantized NN-inference families", ctx.size)
            + &t.render(),
        json: json_doc("exp_sparse_nn", ctx.size, Json::Arr(json_rows), vec![]),
    })
}

fn run_validation(ctx: &ExpContext) -> Result<ExpReport, SimError> {
    use prim_suite::{all_workloads, workload_by_name, RunConfig};

    // The full cross-product the paper validates (§III-C), as independent
    // cases fanned out over the worker pool. Unlike the figure sweeps,
    // validation *collects* failures instead of panicking on them.
    struct Case {
        workload: String,
        size: DatasetSize,
        threads: u32,
        n_dpus: u32,
    }
    let mut cases = Vec::new();
    let sizes: &[DatasetSize] = if ctx.size == DatasetSize::Tiny {
        &[DatasetSize::Tiny]
    } else {
        &[DatasetSize::Tiny, DatasetSize::SingleDpu]
    };
    for &size in sizes {
        for w in all_workloads() {
            for t in [1u32, 2, 4, 8, 16, 24] {
                cases.push(Case { workload: w.name().to_string(), size, threads: t, n_dpus: 1 });
            }
        }
    }
    for d in [4u32, 16] {
        for w in all_workloads() {
            cases.push(Case {
                workload: w.name().to_string(),
                size: ctx.size,
                threads: 16,
                n_dpus: d,
            });
        }
    }
    let verdicts: Vec<Option<String>> = ctx.rt.map(&cases, |_, c| {
        let w = workload_by_name(&c.workload).expect("workload exists");
        let cfg = DpuConfig::paper_baseline(c.threads);
        let run_cfg =
            if c.n_dpus == 1 { RunConfig::single(cfg) } else { RunConfig::multi(c.n_dpus, cfg) };
        let tag = if c.n_dpus == 1 {
            format!("{} {:?} @{}t", c.workload, c.size, c.threads)
        } else {
            format!("{} x{}", c.workload, c.n_dpus)
        };
        match w.run(c.size, &run_cfg) {
            Ok(run) => match run.validation {
                Ok(()) => None,
                Err(e) => Some(format!("{tag}: {e}")),
            },
            Err(e) => Some(format!("{tag}: fault {e}")),
        }
    });
    let failures: Vec<&String> = verdicts.iter().flatten().collect();
    let total = cases.len();
    let ok = total - failures.len();
    let mut text = String::from("== \u{a7}III-C validation sweep (functional, hardware-free) ==\n");
    let _ =
        writeln!(text, "{ok}/{total} data points bit-exact against the reference implementations");
    for f in &failures {
        let _ = writeln!(text, "FAILED: {f}");
    }
    let _ = writeln!(
        text,
        "(paper: 710 single-DPU points at 98.4% time-correlation; this \
         reproduction substitutes output-exactness, per DESIGN.md \u{a7}1)"
    );
    assert!(failures.is_empty(), "{} validation failures", failures.len());
    let json = json_doc(
        "exp_validation",
        ctx.size,
        Json::arr([]),
        vec![(
            "summary",
            Json::obj([
                ("total", Json::from(total as u64)),
                ("passed", Json::from(ok as u64)),
                ("failures", Json::arr(failures.iter().map(|f| Json::from(f.as_str())))),
            ]),
        )],
    );
    Ok(ExpReport { text, json })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_size_passes_through() {
        assert_eq!(parse_size_arg(DatasetSize::Tiny), DatasetSize::Tiny);
    }

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        let names: Vec<&str> = experiments().iter().map(|e| e.name).collect();
        let mut dedup = names.to_vec();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "duplicate experiment names");
        assert!(experiment_by_name("fig05_utilization").is_some());
        assert!(experiment_by_name("nope").is_none());
    }

    #[test]
    fn driver_options_parse_the_full_flag_set() {
        let args: Vec<String> =
            ["--size", "tiny", "--threads", "3", "--json", "--out", "/tmp/r", "--trace", "t.json"]
                .iter()
                .map(ToString::to_string)
                .collect();
        let o = DriverOptions::parse(&args).unwrap();
        assert_eq!(o.size, Some(DatasetSize::Tiny));
        assert_eq!(o.threads, Some(3));
        assert!(o.json_stdout);
        assert_eq!(o.out_dir, PathBuf::from("/tmp/r"));
        assert_eq!(o.trace, Some(PathBuf::from("t.json")));
        assert!(DriverOptions::parse(&["--threads".to_string(), "0".to_string()]).is_err());
        assert!(DriverOptions::parse(&["--trace".to_string()]).is_err());
        assert!(DriverOptions::parse(&["--what".to_string()]).is_err());
    }

    #[test]
    fn trace_args_parse_and_reject() {
        let args: Vec<String> = ["--size", "tiny", "--threads", "2", "--out", "x/t.json"]
            .iter()
            .map(ToString::to_string)
            .collect();
        let (o, out) = parse_trace_args(&args).unwrap();
        assert_eq!(o.size, Some(DatasetSize::Tiny));
        assert_eq!(o.threads, Some(2));
        assert_eq!(out, Some(PathBuf::from("x/t.json")));
        assert!(parse_trace_args(&["--json".to_string()]).is_err());
    }

    #[test]
    fn traced_experiment_yields_job_traces() {
        let e = experiment_by_name("fig11_simt").unwrap();
        let opts = DriverOptions {
            size: Some(DatasetSize::Tiny),
            threads: Some(2),
            trace: Some(PathBuf::from("unused.json")),
            ..DriverOptions::default()
        };
        let (_, traces) = run_experiment_with_traces(e, &opts).unwrap();
        assert!(!traces.is_empty());
        assert!(traces.iter().all(|t| t.trace.event_count() > 0));
        // Untraced runs return no traces.
        let opts = DriverOptions { trace: None, ..opts };
        let (_, none) = run_experiment_with_traces(e, &opts).unwrap();
        assert!(none.is_empty());
    }

    #[test]
    fn fig11_report_has_table_and_json() {
        let e = experiment_by_name("fig11_simt").unwrap();
        let opts = DriverOptions {
            size: Some(DatasetSize::Tiny),
            threads: Some(2),
            ..DriverOptions::default()
        };
        let r = run_experiment(e, &opts).unwrap();
        assert!(r.text.contains("SIMT+AC+16x"));
        let rendered = r.json.render();
        assert!(rendered.starts_with(r#"{"experiment":"fig11_simt","size":"tiny""#));
        assert!(rendered.contains(r#""design":"SIMT+AC""#));
    }
}
