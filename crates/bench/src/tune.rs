//! `pimsim tune`: a deterministic per-workload autotuner over the
//! execution knobs the rest of the harness exposes — tasklet count, DPU
//! count, and the v2 channel mode — plus a scheduler-policy
//! recommendation derived from the workload's serving proxy class.
//!
//! The tuner sweeps a fixed grid per workload through the parallel
//! [`JobRunner`] and scores every point by **simulated** end-to-end wall
//! time ([`ExecutionTimeline::wall_ns`]), so the emitted table
//! (`results/tuned.json`, schema [`TUNE_SCHEMA`]) is a pure function of
//! `(workload set, grid, size)`: byte-identical at any `--threads`
//! value. Ties break to the earlier grid point. `pimsim serve --tuned
//! FILE` and `pimsim exp --tuned FILE` consume the table; stale or
//! mismatched documents are rejected with a typed error, mirroring the
//! checkpoint `--resume` validation.
//!
//! The policy column is *derived*, not searched: the serving scheduler
//! only matters under multi-tenant load, which a single-workload sweep
//! cannot observe. The mapping follows the proxy-class shape —
//! memory-bound classes batch best by size (`size_class`), compute-bound
//! classes are latency-critical (`fifo`), and everything else gets the
//! fairness-preserving default (`weighted_fair`).

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use pim_dpu::{DpuConfig, SimError};
use pim_serve::kernels::{request_classes, KernelKind};
use pimulator::jobs::JobRunner;
use pimulator::pim_host::ChannelMode;
use pimulator::report::{Json, Table};
use prim_suite::{extended_workloads, workload_by_name, DatasetSize, RunConfig};

use crate::{parse_size_value, size_label, write_with_parents};

/// Schema tag written to (and required in) a tuned table.
pub const TUNE_SCHEMA: &str = "pim-tune/1";

/// One tuned configuration: the winning grid point of one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct TunedEntry {
    /// Canonical workload name (as [`Workload::name`] spells it).
    pub workload: String,
    /// Family label (`dense` | `sparse` | `nn-inference`).
    pub family: String,
    /// Winning tasklet count.
    pub tasklets: u32,
    /// Winning DPU count.
    pub n_dpus: u32,
    /// Winning channel mode.
    pub channel: ChannelMode,
    /// Derived scheduler policy (see the module docs).
    pub policy: String,
    /// Simulated wall time of the winning point.
    pub wall_ns: f64,
    /// Simulated wall time of the best *blocking* point — the tuned
    /// legacy configuration, the denominator of [`TunedEntry::speedup`].
    pub blocking_wall_ns: f64,
}

impl TunedEntry {
    /// End-to-end win of the tuned channel mode over the tuned legacy
    /// (blocking) configuration.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.blocking_wall_ns / self.wall_ns
    }
}

/// A full tuned-config table: what `results/tuned.json` holds.
#[derive(Debug, Clone, PartialEq)]
pub struct TunedTable {
    /// Dataset size the sweep ran at.
    pub size: DatasetSize,
    /// One entry per tuned workload, in sweep order.
    pub entries: Vec<TunedEntry>,
}

impl TunedTable {
    /// The entry of `name` (resolved through the workload registry, so
    /// aliases like `SpMV-CSR` find their canonical row).
    #[must_use]
    pub fn entry(&self, name: &str) -> Option<&TunedEntry> {
        let canonical = workload_by_name(name)?.name().to_string();
        self.entries.iter().find(|e| e.workload == canonical)
    }

    /// The entry `pimsim serve --tuned` applies: the scenario's dominant
    /// workload by `tenant share × mix weight` (ties keep the earlier
    /// tenant/mix position). Every workload any tenant mixes must be
    /// covered, or the whole table is rejected — a stale table silently
    /// tuning half a scenario would be worse than no table.
    ///
    /// # Errors
    ///
    /// Returns a description naming the uncovered workloads.
    pub fn entry_for_scenario(
        &self,
        scenario: &pim_serve::Scenario,
    ) -> Result<&TunedEntry, String> {
        let mut missing: Vec<&str> = Vec::new();
        let mut best: Option<(&TunedEntry, u64)> = None;
        for t in scenario.tenants {
            for (w, weight) in t.mix {
                let Some(entry) = self.entry(w) else {
                    missing.push(w);
                    continue;
                };
                let score = u64::from(t.share) * u64::from(*weight);
                let better = match &best {
                    None => true,
                    Some((_, s)) => score > *s,
                };
                if better {
                    best = Some((entry, score));
                }
            }
        }
        if !missing.is_empty() {
            missing.sort_unstable();
            missing.dedup();
            return Err(format!(
                "tuned table does not cover workload(s) {} of scenario `{}` \
                 (re-run `pimsim tune`)",
                missing.join(", "),
                scenario.name
            ));
        }
        best.map(|(e, _)| e)
            .ok_or_else(|| format!("scenario `{}` has no tenant mixes", scenario.name))
    }

    /// Renders the table document.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::from(TUNE_SCHEMA)),
            ("size", Json::from(size_label(self.size))),
            (
                "workloads",
                Json::Arr(
                    self.entries
                        .iter()
                        .map(|e| {
                            Json::obj([
                                ("workload", Json::from(e.workload.as_str())),
                                ("family", Json::from(e.family.as_str())),
                                ("tasklets", Json::from(e.tasklets)),
                                ("n_dpus", Json::from(e.n_dpus)),
                                ("channel", Json::from(e.channel.label())),
                                ("policy", Json::from(e.policy.as_str())),
                                ("wall_ns", Json::from(e.wall_ns)),
                                ("blocking_wall_ns", Json::from(e.blocking_wall_ns)),
                                ("speedup", Json::from(e.speedup())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses a table document, rejecting anything that is not a
    /// well-formed [`TUNE_SCHEMA`] table.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation.
    pub fn from_json(doc: &Json) -> Result<Self, String> {
        let Json::Obj(top) = doc else {
            return Err("tuned table must be a JSON object".to_string());
        };
        let field = |name: &str| -> Result<&Json, String> {
            top.iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("tuned table is missing `{name}`"))
        };
        match field("schema")? {
            Json::Str(s) if s == TUNE_SCHEMA => {}
            other => {
                return Err(format!(
                    "unsupported tuned-table schema {} (expected \"{TUNE_SCHEMA}\")",
                    other.render()
                ))
            }
        }
        let Json::Str(size_text) = field("size")? else {
            return Err("tuned table `size` must be a string".to_string());
        };
        let size = parse_size_value(size_text).map_err(|e| format!("tuned table: {e}"))?;
        let Json::Arr(rows) = field("workloads")? else {
            return Err("tuned table `workloads` must be an array".to_string());
        };
        let mut entries = Vec::with_capacity(rows.len());
        for (i, row) in rows.iter().enumerate() {
            let Json::Obj(pairs) = row else {
                return Err(format!("tuned table workloads[{i}] must be an object"));
            };
            let get = |name: &str| pairs.iter().find(|(k, _)| k == name).map(|(_, v)| v);
            let str_field = |name: &str| -> Result<String, String> {
                match get(name) {
                    Some(Json::Str(s)) => Ok(s.clone()),
                    _ => Err(format!("tuned table workloads[{i}] needs a string `{name}`")),
                }
            };
            let uint_field = |name: &str| -> Result<u32, String> {
                match get(name) {
                    Some(Json::UInt(v)) if *v > 0 => Ok(*v as u32),
                    _ => {
                        Err(format!("tuned table workloads[{i}] needs a positive integer `{name}`"))
                    }
                }
            };
            let num_field = |name: &str| -> Result<f64, String> {
                match get(name) {
                    Some(Json::Num(v)) if v.is_finite() && *v > 0.0 => Ok(*v),
                    Some(Json::UInt(v)) => Ok(*v as f64),
                    _ => {
                        Err(format!("tuned table workloads[{i}] needs a positive number `{name}`"))
                    }
                }
            };
            let workload = str_field("workload")?;
            let channel = ChannelMode::by_name(&str_field("channel")?)
                .map_err(|e| format!("tuned table workloads[{i}] ({workload}): {e}"))?;
            let policy = str_field("policy")?;
            if pim_serve::policy_by_name(&policy).is_none() {
                return Err(format!(
                    "tuned table workloads[{i}] ({workload}) names unknown policy `{policy}`"
                ));
            }
            entries.push(TunedEntry {
                workload,
                family: str_field("family")?,
                tasklets: uint_field("tasklets")?,
                n_dpus: uint_field("n_dpus")?,
                channel,
                policy,
                wall_ns: num_field("wall_ns")?,
                blocking_wall_ns: num_field("blocking_wall_ns")?,
            });
        }
        Ok(TunedTable { size, entries })
    }

    /// Reads and parses a table file.
    ///
    /// # Errors
    ///
    /// Returns a description of the I/O, parse, or schema failure,
    /// prefixed with the path.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("could not read {}: {e}", path.display()))?;
        let doc = Json::parse(&text).map_err(|e| format!("{} is not JSON: {e}", path.display()))?;
        Self::from_json(&doc).map_err(|e| format!("{}: {e}", path.display()))
    }
}

/// The derived scheduler policy of one workload (see the module docs).
#[must_use]
pub fn derived_policy(workload: &str) -> &'static str {
    let kind = request_classes()
        .iter()
        .find(|c| c.workload.eq_ignore_ascii_case(workload))
        .map(|c| c.kind);
    match kind {
        Some(KernelKind::MemBound) => "size_class",
        Some(KernelKind::ComputeBound) => "fifo",
        _ => "weighted_fair",
    }
}

/// Options of `pimsim tune`.
#[derive(Debug, Clone)]
pub struct TuneOptions {
    /// Dataset size the sweep runs at (default tiny; the tuned table is a
    /// configuration artifact, not a performance figure).
    pub size: DatasetSize,
    /// `--quick`: a reduced grid for the CI smoke step.
    pub quick: bool,
    /// Worker threads (`None` ⇒ default).
    pub threads: Option<usize>,
    /// Workloads to tune (`None` ⇒ the full extended suite).
    pub workloads: Option<Vec<String>>,
    /// Where the table is written.
    pub out: PathBuf,
    /// Print the JSON document instead of the table.
    pub json_stdout: bool,
}

impl Default for TuneOptions {
    fn default() -> Self {
        TuneOptions {
            size: DatasetSize::Tiny,
            quick: false,
            threads: None,
            workloads: None,
            out: PathBuf::from("results/tuned.json"),
            json_stdout: false,
        }
    }
}

impl TuneOptions {
    /// Parses the `pimsim tune` flag set.
    ///
    /// # Errors
    ///
    /// Returns a usage message on an unknown flag or malformed value.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut o = TuneOptions::default();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--quick" => o.quick = true,
                "--size" => {
                    let v = it.next().ok_or("--size needs a value (tiny|single|multi)")?;
                    o.size = parse_size_value(v)?;
                }
                "--threads" => {
                    let v = it.next().ok_or("--threads needs a number")?;
                    let n: usize =
                        v.parse().map_err(|_| format!("--threads: `{v}` is not a number"))?;
                    if n == 0 {
                        return Err("--threads must be at least 1".to_string());
                    }
                    o.threads = Some(n);
                }
                "--workloads" => {
                    let v = it.next().ok_or("--workloads needs a comma-separated list")?;
                    let names: Vec<String> = v
                        .split(',')
                        .map(str::trim)
                        .filter(|s| !s.is_empty())
                        .map(String::from)
                        .collect();
                    if names.is_empty() {
                        return Err("--workloads needs at least one name".to_string());
                    }
                    o.workloads = Some(names);
                }
                "--out" => o.out = PathBuf::from(it.next().ok_or("--out needs a file path")?),
                "--json" => o.json_stdout = true,
                other => {
                    return Err(format!(
                        "unknown flag `{other}` (expected \
                         --quick/--size/--threads/--workloads/--out/--json)"
                    ))
                }
            }
        }
        Ok(o)
    }
}

/// One grid point of the sweep.
#[derive(Debug, Clone, Copy)]
struct GridPoint {
    tasklets: u32,
    n_dpus: u32,
    channel: ChannelMode,
}

/// The grid for one workload, in tie-break order (earlier wins ties).
/// Blocking points come first at every `(tasklets, n_dpus)` shape so the
/// legacy baseline is always present.
fn grid(quick: bool, multi_dpu: bool) -> Vec<GridPoint> {
    let tasklets: &[u32] = if quick { &[8, 16] } else { &[4, 8, 16] };
    let dpus: &[u32] = match (quick, multi_dpu) {
        (_, false) => &[1],
        (true, true) => &[1, 4],
        (false, true) => &[1, 4],
    };
    let modes: &[ChannelMode] = if quick {
        &[ChannelMode::Blocking, ChannelMode::Overlapped]
    } else {
        &[ChannelMode::Blocking, ChannelMode::Broadcast, ChannelMode::Overlapped]
    };
    let mut out = Vec::new();
    for &t in tasklets {
        for &d in dpus {
            for &m in modes {
                out.push(GridPoint { tasklets: t, n_dpus: d, channel: m });
            }
        }
    }
    out
}

/// Runs the sweep and builds the table.
///
/// # Errors
///
/// Returns the first unknown workload name as `Err(String)`, or
/// propagates a simulation fault as `Ok(Err(SimError))`-collapsed —
/// both render as a failed run.
pub fn run_tune(opts: &TuneOptions) -> Result<TunedTable, String> {
    let names: Vec<String> = match &opts.workloads {
        Some(list) => {
            // Canonicalize up front so unknown names fail before any
            // simulation runs.
            let mut canonical = Vec::with_capacity(list.len());
            for n in list {
                let w = workload_by_name(n)
                    .ok_or_else(|| format!("unknown workload `{n}` (see `pimsim list`)"))?;
                canonical.push(w.name().to_string());
            }
            canonical
        }
        None => extended_workloads().iter().map(|w| w.name().to_string()).collect(),
    };

    struct Case {
        workload: String,
        point: GridPoint,
    }
    let mut cases = Vec::new();
    for name in &names {
        let w = workload_by_name(name).expect("canonicalized above");
        for point in grid(opts.quick, w.supports_multi_dpu()) {
            cases.push(Case { workload: name.clone(), point });
        }
    }

    let runner = JobRunner::new(opts.threads);
    let walls: Vec<Result<f64, SimError>> = runner.map(&cases, |_, c| {
        let w = workload_by_name(&c.workload).expect("workload exists");
        let cfg = DpuConfig::paper_baseline(c.point.tasklets);
        let rc = if c.point.n_dpus == 1 {
            RunConfig::single(cfg)
        } else {
            RunConfig::multi(c.point.n_dpus, cfg)
        };
        let run = w.run(opts.size, &rc.with_channel(c.point.channel))?;
        run.validation.as_ref().expect("tuned runs stay bit-exact against the reference");
        Ok(run.timeline.wall_ns())
    });

    let mut entries = Vec::with_capacity(names.len());
    for name in &names {
        let w = workload_by_name(name).expect("workload exists");
        let mut best: Option<(GridPoint, f64)> = None;
        let mut best_blocking: Option<f64> = None;
        for (c, wall) in cases.iter().zip(&walls) {
            if c.workload != *name {
                continue;
            }
            let wall = match wall {
                Ok(w) => *w,
                Err(e) => return Err(format!("{name}: simulation fault: {e}")),
            };
            // Strict `<` keeps the earliest grid point on ties.
            if best.as_ref().is_none() || wall < best.as_ref().unwrap().1 {
                best = Some((c.point, wall));
            }
            if c.point.channel == ChannelMode::Blocking && best_blocking.is_none_or(|b| wall < b) {
                best_blocking = Some(wall);
            }
        }
        let (point, wall_ns) = best.expect("every workload has grid points");
        entries.push(TunedEntry {
            workload: name.clone(),
            family: w.family().label().to_string(),
            tasklets: point.tasklets,
            n_dpus: point.n_dpus,
            channel: point.channel,
            policy: derived_policy(name).to_string(),
            wall_ns,
            blocking_wall_ns: best_blocking.expect("the grid always contains blocking points"),
        });
    }
    Ok(TunedTable { size: opts.size, entries })
}

/// Renders the human-readable table.
#[must_use]
pub fn tune_table_text(table: &TunedTable) -> String {
    let mut t = Table::new(&[
        "workload",
        "family",
        "tasklets",
        "dpus",
        "channel",
        "policy",
        "wall_ms",
        "vs blocking",
    ]);
    for e in &table.entries {
        t.row_owned(vec![
            e.workload.clone(),
            e.family.clone(),
            e.tasklets.to_string(),
            e.n_dpus.to_string(),
            e.channel.label().to_string(),
            e.policy.clone(),
            format!("{:.4}", e.wall_ns / 1e6),
            format!("{:.2}x", e.speedup()),
        ]);
    }
    format!("== pimsim tune ({} size) ==\n{}", size_label(table.size), t.render())
}

/// The `pimsim tune` entry point: sweeps, prints, writes the table.
#[must_use]
pub fn run_tune_with_args(args: &[String]) -> ExitCode {
    let opts = match TuneOptions::parse(args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            eprintln!(
                "usage: pimsim tune [--quick] [--size tiny|single|multi] [--threads N] \
                 [--workloads A,B,...] [--out FILE] [--json]"
            );
            return ExitCode::from(2);
        }
    };
    let table = match run_tune(&opts) {
        Ok(t) => t,
        Err(msg) => {
            eprintln!("pimsim tune: {msg}");
            return ExitCode::FAILURE;
        }
    };
    let pretty = table.to_json().render_pretty();
    {
        use std::io::Write as _;
        let text = tune_table_text(&table);
        let out = if opts.json_stdout { &pretty } else { &text };
        let _ = std::io::stdout().write_all(out.as_bytes());
    }
    if let Err(e) = write_with_parents(&opts.out, &pretty) {
        eprintln!("pimsim tune: could not write {}: {e}", opts.out.display());
        return ExitCode::FAILURE;
    }
    // Round-trip through the parser so a table that would be rejected at
    // consumption time fails at write time instead.
    match TunedTable::load(&opts.out) {
        Ok(back) if back == table => {
            eprintln!("wrote {} (schema {TUNE_SCHEMA} OK)", opts.out.display());
            ExitCode::SUCCESS
        }
        Ok(_) => {
            eprintln!("pimsim tune: {} did not round-trip", opts.out.display());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("pimsim tune: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_table() -> TunedTable {
        let opts = TuneOptions {
            quick: true,
            threads: Some(2),
            workloads: Some(vec!["VA".into(), "GEMV".into()]),
            ..TuneOptions::default()
        };
        run_tune(&opts).unwrap()
    }

    #[test]
    fn options_parse_and_reject() {
        let args: Vec<String> =
            ["--quick", "--workloads", "VA, GEMV", "--out", "x.json", "--threads", "2"]
                .iter()
                .map(ToString::to_string)
                .collect();
        let o = TuneOptions::parse(&args).unwrap();
        assert!(o.quick);
        assert_eq!(o.workloads, Some(vec!["VA".to_string(), "GEMV".to_string()]));
        assert_eq!(o.out, PathBuf::from("x.json"));
        assert!(TuneOptions::parse(&["--threads".to_string(), "0".to_string()]).is_err());
        assert!(TuneOptions::parse(&["--what".to_string()]).is_err());
    }

    #[test]
    fn unknown_workload_is_rejected_before_any_simulation() {
        let opts = TuneOptions { workloads: Some(vec!["NOPE".into()]), ..TuneOptions::default() };
        let err = run_tune(&opts).unwrap_err();
        assert!(err.contains("NOPE"), "error names the workload: {err}");
    }

    #[test]
    fn table_is_byte_identical_across_thread_counts() {
        let render = |threads: usize| {
            let opts = TuneOptions {
                quick: true,
                threads: Some(threads),
                workloads: Some(vec!["VA".into(), "GEMV".into()]),
                ..TuneOptions::default()
            };
            run_tune(&opts).unwrap().to_json().render_pretty()
        };
        let one = render(1);
        assert_eq!(one, render(4));
        assert_eq!(one, render(8));
    }

    #[test]
    fn table_round_trips_through_json() {
        let table = quick_table();
        let back = TunedTable::from_json(&table.to_json()).unwrap();
        assert_eq!(back, table);
    }

    #[test]
    fn tuned_wall_never_exceeds_the_blocking_wall() {
        for e in &quick_table().entries {
            assert!(
                e.wall_ns <= e.blocking_wall_ns,
                "{}: the grid contains every blocking point, so the winner \
                 cannot lose to one",
                e.workload
            );
        }
    }

    #[test]
    fn derived_policies_follow_the_class_shape() {
        assert_eq!(derived_policy("BS"), "size_class");
        assert_eq!(derived_policy("GEMV"), "fifo");
        assert_eq!(derived_policy("BFS"), "weighted_fair");
    }

    #[test]
    fn from_json_rejects_wrong_schema_and_garbage() {
        let err = TunedTable::from_json(&Json::obj([
            ("schema", Json::from("pim-tune/0")),
            ("size", Json::from("tiny")),
            ("workloads", Json::Arr(vec![])),
        ]))
        .unwrap_err();
        assert!(err.contains("schema"), "{err}");
        assert!(TunedTable::from_json(&Json::Arr(vec![])).is_err());
    }

    #[test]
    fn scenario_lookup_finds_the_dominant_workload_and_flags_gaps() {
        let table = quick_table();
        let tiny = pim_serve::scenario_by_name("tiny").unwrap();
        // Tiny mixes BS/VA/TS; only VA and GEMV are tuned here.
        let err = table.entry_for_scenario(tiny).unwrap_err();
        assert!(err.contains("BS") && err.contains("TS"), "{err}");

        let full =
            run_tune(&TuneOptions { quick: true, threads: Some(4), ..TuneOptions::default() })
                .unwrap();
        let entry = full.entry_for_scenario(tiny).unwrap();
        // All tiny scores tie at 1; the first tenant's first mix wins.
        assert_eq!(entry.workload, "BS");
        // Aliases resolve to canonical rows.
        assert!(full.entry("SpMV-CSR").is_some());
    }
}
