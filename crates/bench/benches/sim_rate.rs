//! Micro-benchmarks (plain `harness = false` timing, no external harness):
//! end-to-end simulator throughput (the §III-D "simulation rate") and the
//! hot component models. Run with `cargo bench -p pim-bench`.

use std::time::Instant;

use pim_asm::KernelBuilder;
use pim_cache::{Cache, CacheConfig};
use pim_dpu::{Dpu, DpuConfig};
use pim_dram::{Access, DramBank, DramConfig};
use pim_isa::{AluOp, Cond, Instruction};
use prim_suite::{workload_by_name, DatasetSize, RunConfig};

/// Times `iters` repetitions of `f`, reporting ns/iter and a derived
/// elements/second rate when `elements` is non-zero.
fn bench<R>(name: &str, iters: u32, elements: u64, mut f: impl FnMut() -> R) {
    // One warm-up iteration keeps lazy init out of the measurement.
    std::hint::black_box(f());
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    let total = start.elapsed();
    let per_iter = total / iters;
    if elements > 0 {
        let rate = elements as f64 / per_iter.as_secs_f64();
        println!("{name:32} {per_iter:>12.2?}/iter  {:>10.2} Melem/s", rate / 1e6);
    } else {
        println!("{name:32} {per_iter:>12.2?}/iter");
    }
}

/// A compute-heavy kernel of a known instruction count, for a clean
/// instructions-per-second measurement.
fn alu_kernel(iters: i32) -> pim_asm::DpuProgram {
    let mut k = KernelBuilder::new();
    let [a, b, i] = k.regs(["a", "b", "i"]);
    k.movi(a, 1);
    k.movi(i, iters);
    let top = k.label_here("loop");
    k.alu(AluOp::Add, b, a, 7);
    k.alu(AluOp::Xor, b, a, 3);
    k.alu(AluOp::Mul, b, a, 5);
    k.sub(i, i, 1);
    k.branch(Cond::Ne, i, 0, &top);
    k.stop();
    k.build().expect("bench kernel builds")
}

fn main() {
    // `cargo bench` passes `--bench`; `cargo test --benches` passes
    // `--test-threads` etc. — in test mode just smoke-run nothing.
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    println!("== pim-bench micro-benchmarks ==");

    let program = alu_kernel(2000);
    // ~16 × 5 × 2000 instructions per launch.
    bench("dpu_16t_alu_kernel", 20, 16 * 5 * 2000, || {
        let mut dpu = Dpu::new(DpuConfig::paper_baseline(16));
        dpu.load_program(&program).unwrap();
        dpu.launch().unwrap()
    });

    for name in ["VA", "GEMV", "BS"] {
        let w = workload_by_name(name).unwrap();
        bench(&format!("workload_tiny/{name}"), 10, 0, || {
            w.run(DatasetSize::Tiny, &RunConfig::single(DpuConfig::paper_baseline(16))).unwrap()
        });
    }

    bench("dram_streaming_1024_bursts", 50, 1024, || {
        let mut bank = DramBank::new(DramConfig::ddr4_2400());
        let mut done = Vec::new();
        for i in 0..1024u32 {
            bank.enqueue(Access::read((i * 64) % (1 << 20), 64), 0);
        }
        bank.advance_to(u64::MAX / 2, &mut done);
        done
    });

    bench("dcache_4096_accesses", 200, 4096, || {
        let mut cache = Cache::new(CacheConfig::paper_dcache());
        for i in 0..4096u32 {
            cache.access((i * 37) % (1 << 18), i % 3 == 0);
        }
        *cache.stats()
    });

    let instr = Instruction::Alu {
        op: AluOp::Add,
        rd: pim_isa::Reg::r(1),
        ra: pim_isa::Reg::r(2),
        rb: pim_isa::Operand::Imm(42),
    };
    bench("isa_encode_decode", 1_000_000, 0, || {
        Instruction::decode(std::hint::black_box(instr.encode())).unwrap()
    });
}
