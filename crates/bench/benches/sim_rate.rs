//! Criterion micro-benchmarks: end-to-end simulator throughput (the
//! §III-D "simulation rate") and the hot component models.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pim_asm::KernelBuilder;
use pim_cache::{Cache, CacheConfig};
use pim_dpu::{Dpu, DpuConfig};
use pim_dram::{Access, DramBank, DramConfig};
use pim_isa::{AluOp, Cond, Instruction};
use prim_suite::{workload_by_name, DatasetSize, RunConfig};

/// A compute-heavy kernel of a known instruction count, for a clean
/// instructions-per-second measurement.
fn alu_kernel(iters: i32) -> pim_asm::DpuProgram {
    let mut k = KernelBuilder::new();
    let [a, b, i] = k.regs(["a", "b", "i"]);
    k.movi(a, 1);
    k.movi(i, iters);
    let top = k.label_here("loop");
    k.alu(AluOp::Add, b, a, 7);
    k.alu(AluOp::Xor, b, a, 3);
    k.alu(AluOp::Mul, b, a, 5);
    k.sub(i, i, 1);
    k.branch(Cond::Ne, i, 0, &top);
    k.stop();
    k.build().expect("bench kernel builds")
}

fn bench_sim_rate(c: &mut Criterion) {
    let program = alu_kernel(2000);
    let mut group = c.benchmark_group("sim_rate");
    // ~16 × 5 × 2000 instructions per launch.
    group.throughput(Throughput::Elements(16 * 5 * 2000));
    group.bench_function("dpu_16t_alu_kernel", |b| {
        b.iter(|| {
            let mut dpu = Dpu::new(DpuConfig::paper_baseline(16));
            dpu.load_program(&program).unwrap();
            dpu.launch().unwrap()
        });
    });
    group.finish();
}

fn bench_workload(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload_tiny");
    group.sample_size(10);
    for name in ["VA", "GEMV", "BS"] {
        group.bench_function(name, |b| {
            let w = workload_by_name(name).unwrap();
            b.iter(|| {
                w.run(DatasetSize::Tiny, &RunConfig::single(DpuConfig::paper_baseline(16)))
                    .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_dram_bank(c: &mut Criterion) {
    let mut group = c.benchmark_group("dram_bank");
    group.throughput(Throughput::Elements(1024));
    group.bench_function("streaming_1024_bursts", |b| {
        b.iter(|| {
            let mut bank = DramBank::new(DramConfig::ddr4_2400());
            let mut done = Vec::new();
            for i in 0..1024u32 {
                bank.enqueue(Access::read((i * 64) % (1 << 20), 64), 0);
            }
            bank.advance_to(u64::MAX / 2, &mut done);
            done
        });
    });
    group.finish();
}

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache");
    group.throughput(Throughput::Elements(4096));
    group.bench_function("dcache_4096_accesses", |b| {
        b.iter(|| {
            let mut cache = Cache::new(CacheConfig::paper_dcache());
            for i in 0..4096u32 {
                cache.access((i * 37) % (1 << 18), i % 3 == 0);
            }
            *cache.stats()
        });
    });
    group.finish();
}

fn bench_encode_decode(c: &mut Criterion) {
    let instr = Instruction::Alu {
        op: AluOp::Add,
        rd: pim_isa::Reg::r(1),
        ra: pim_isa::Reg::r(2),
        rb: pim_isa::Operand::Imm(42),
    };
    c.bench_function("isa_encode_decode", |b| {
        b.iter(|| Instruction::decode(std::hint::black_box(instr.encode())).unwrap());
    });
}

criterion_group!(
    benches,
    bench_sim_rate,
    bench_workload,
    bench_dram_bank,
    bench_cache,
    bench_encode_decode
);
criterion_main!(benches);
